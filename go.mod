module replicatree

go 1.24
