package replicatree

import (
	"fmt"

	"replicatree/internal/tree"
)

// The FlowEngine keeps the panic contract of internal code: evaluating
// a replica set of the wrong size, passing a nil capacity function
// under the upwards or multiple policies, or passing an unknown policy
// is a programming error and panics. EvalPlacement and CheckPlacement
// are the error-returning entry points for untrusted input (files,
// flags, network payloads): they validate every argument first, so
// malformed input yields an error, never a panic.

// EvalPlacement evaluates replica set r on t under policy p with
// optional QoS/bandwidth constraints c (nil = unconstrained), guarding
// every argument. capOf maps 1-based modes to capacities and may be nil
// only under PolicyClosest, whose routing ignores capacities. The
// returned loads are freshly allocated (callers evaluating many sets on
// one tree should hold a FlowEngine instead).
func EvalPlacement(t *Tree, r *Replicas, p Policy, capOf func(mode uint8) int, c *Constraints) (FlowResult, error) {
	if err := checkArgs(t, r, p, capOf, c, p != PolicyClosest); err != nil {
		return FlowResult{}, err
	}
	res := tree.NewEngine(t).EvalConstrained(r, p, capOf, c)
	res.Loads = append([]int(nil), res.Loads...)
	return res, nil
}

// CheckPlacement validates replica set r on t under policy p with
// optional QoS/bandwidth constraints c (nil = unconstrained), guarding
// every argument; capOf is required under every policy (the closest
// policy needs it for the capacity check). It returns nil for a valid
// placement and a CapacityError, QoSError or BandwidthError describing
// the first violation otherwise.
func CheckPlacement(t *Tree, r *Replicas, p Policy, capOf func(mode uint8) int, c *Constraints) error {
	if err := checkArgs(t, r, p, capOf, c, true); err != nil {
		return err
	}
	return tree.NewEngine(t).ValidateConstrained(r, p, capOf, c)
}

func checkArgs(t *Tree, r *Replicas, p Policy, capOf func(mode uint8) int, c *Constraints, needCaps bool) error {
	if t == nil {
		return fmt.Errorf("replicatree: nil tree")
	}
	if r == nil {
		return fmt.Errorf("replicatree: nil replica set")
	}
	if r.N() != t.N() {
		return fmt.Errorf("replicatree: replica set covers %d nodes, tree has %d", r.N(), t.N())
	}
	if !p.Valid() {
		return fmt.Errorf("replicatree: unknown access policy %v", p)
	}
	if capOf == nil && needCaps {
		return fmt.Errorf("replicatree: the %v policy needs a capacity function", p)
	}
	if err := c.Validate(t); err != nil {
		return err
	}
	return nil
}
