// Command replicatool solves individual replica placement instances from
// the command line. Trees and pre-existing deployments are JSON files
// (see internal/tree's format: {"parents": [-1, 0, ...], "clients":
// [[2], [], [7], ...]} and {"modes": [0, 1, ...]}). Tree files may
// additionally carry QoS and bandwidth constraints (arXiv 0706.3350):
// an optional "qos" field with one bound per client (0 = unbounded)
// and an optional "bandwidth" field with one capacity per upward link
// (negative = unbounded).
//
// Subcommands:
//
//	gen       generate a random tree JSON on stdout
//	mincost   solve MinCost-WithPre (or NoPre without -existing)
//	minpower  solve MinPower / MinPower-BoundedCost
//	pareto    print the full cost/power Pareto front
//	greedy    run the greedy baseline (or the exact QoS DP with -exact)
//	check     validate a placement against a tree
//	drift     replay a demand-drift sequence with one incremental solver
//	serve     run the placement-as-a-service daemon (alias of replicaserved)
//
// minpower and pareto accept -stats to include the solver's SolveStats
// (recomputed tables, root cells scanned/repriced, merge cells scanned,
// rows run compressed, fold suffixes replayed) in the output, and
// drift accepts -power to replay the sequence through the incremental
// power DP, reporting the per-step root-scan counters; drift -stats
// adds the per-step merge-layer counters too; drift -fail injects a
// stochastic node-fault schedule (-mttf/-mttr) so every step's re-solve
// places around the currently down nodes. The exact solvers take
// -workers to parallelise the post-order DP waves (0 = all CPUs);
// results are bit-identical for every worker count.
//
// The greedy and check subcommands accept -policy closest|upwards|multiple
// to place and validate under the access policies of arXiv cs/0611034
// (the exact solvers assume the closest policy), and -qos/-bw to
// override the instance's constraints with uniform ones. greedy -exact
// runs the exact polynomial algorithm of arXiv 0706.3350 instead of
// the greedy baseline (closest policy only). The mincost, minpower and
// pareto solvers are unconstrained and ignore any constraints in the
// instance (a note is printed when they do).
//
// Examples:
//
//	replicatool gen -nodes 50 -shape fat -seed 7 -qos 3 -bw 40 > tree.json
//	replicatool mincost -tree tree.json -w 10 -create 0.1 -delete 0.01
//	replicatool minpower -tree tree.json -caps 5,10 -bound 25
//	replicatool pareto -tree tree.json -caps 5,10
//	replicatool greedy -tree tree.json -w 10 -exact
//	replicatool check -tree tree.json -placement sol.json -qos 3
//	replicatool drift -tree tree.json -w 10 -steps 20 -k 3
//	replicatool drift -tree tree.json -w 10 -steps 20 -fail -mttf 30 -mttr 5
//	replicatool drift -tree tree.json -power -caps 5,10 -steps 20 -k 3
//	replicatool minpower -tree tree.json -caps 5,10 -stats
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"replicatree"
	"replicatree/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "mincost":
		err = cmdMinCost(os.Args[2:])
	case "minpower", "pareto":
		err = cmdMinPower(os.Args[1], os.Args[2:])
	case "greedy":
		err = cmdGreedy(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "drift":
		err = cmdDrift(os.Args[2:])
	case "serve":
		err = serve.Run(os.Args[2:], os.Stdout, os.Stderr)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "replicatool: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: replicatool <gen|mincost|minpower|pareto|greedy|check|drift|serve> [flags]")
	fmt.Fprintln(os.Stderr, "run 'replicatool <subcommand> -h' for flags")
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	nodes := fs.Int("nodes", 50, "number of internal nodes")
	shapeF := fs.String("shape", "fat", "tree shape: fat (6-9 children) or high (2-4)")
	reqMax := fs.Int("reqmax", 6, "maximum client request count")
	seed := fs.Uint64("seed", 1, "random seed")
	qos := fs.Int("qos", 0, "uniform per-client QoS bound to embed (0 = none)")
	bw := fs.Int("bw", -1, "uniform per-link bandwidth to embed (negative = none)")
	fs.Parse(args)

	var cfg replicatree.GenConfig
	switch *shapeF {
	case "fat":
		cfg = replicatree.FatConfig(*nodes)
	case "high":
		cfg = replicatree.HighConfig(*nodes)
	default:
		return fmt.Errorf("replicatool: unknown shape %q", *shapeF)
	}
	cfg.ReqMax = *reqMax
	t, err := replicatree.GenerateTree(cfg, replicatree.NewRNG(*seed))
	if err != nil {
		return err
	}
	var cons *replicatree.Constraints
	cons = applyUniformConstraints(t, cons, *qos, *bw)
	return replicatree.WriteInstanceJSON(os.Stdout, t, cons)
}

// loadInstance reads a tree file together with any embedded QoS and
// bandwidth constraints (nil when the file carries none).
func loadInstance(path string) (*replicatree.Tree, *replicatree.Constraints, error) {
	if path == "" {
		return nil, nil, fmt.Errorf("replicatool: -tree is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return replicatree.ReadInstanceJSON(f)
}

// loadTree reads a tree file for the unconstrained solvers, noting
// ignored constraints on stderr.
func loadTree(path string) (*replicatree.Tree, error) {
	t, cons, err := loadInstance(path)
	if err != nil {
		return nil, err
	}
	if cons != nil {
		fmt.Fprintln(os.Stderr, "replicatool: note: this solver is unconstrained; ignoring the instance's QoS/bandwidth constraints")
	}
	return t, nil
}

// applyUniformConstraints overlays uniform -qos/-bw flag values (qos >
// 0, bw >= 0) on the instance's constraints, materialising a set when
// needed.
func applyUniformConstraints(t *replicatree.Tree, cons *replicatree.Constraints, qos, bw int) *replicatree.Constraints {
	if qos <= 0 && bw < 0 {
		return cons
	}
	if cons == nil {
		cons = replicatree.NewConstraints(t)
	} else {
		cons = cons.Clone()
	}
	if qos > 0 {
		cons.SetUniformQoS(t, qos)
	}
	if bw >= 0 {
		cons.SetUniformBandwidth(bw)
	}
	return cons
}

func loadExisting(path string, t *replicatree.Tree) (*replicatree.Replicas, error) {
	if path == "" {
		return replicatree.ReplicasOf(t), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return replicatree.ReadReplicasJSON(f, t)
}

func parseCaps(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	caps := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("replicatool: invalid capacity %q", p)
		}
		caps = append(caps, v)
	}
	return caps, nil
}

// emit prints a result object as indented JSON.
func emit(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// workersFlag registers the shared -workers flag of the exact solvers.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "parallel solve workers (0 = all CPUs; results are identical for every count)")
}

func cmdMinCost(args []string) error {
	fs := flag.NewFlagSet("mincost", flag.ExitOnError)
	treeF := fs.String("tree", "", "tree JSON file")
	existingF := fs.String("existing", "", "pre-existing replicas JSON file")
	w := fs.Int("w", 10, "server capacity W")
	create := fs.Float64("create", 0.1, "creation cost")
	del := fs.Float64("delete", 0.01, "deletion cost")
	workers := workersFlag(fs)
	fs.Parse(args)

	t, err := loadTree(*treeF)
	if err != nil {
		return err
	}
	existing, err := loadExisting(*existingF, t)
	if err != nil {
		return err
	}
	solver := replicatree.NewMinCostSolver(t)
	solver.SetWorkers(*workers)
	res, err := solver.Solve(existing, *w, replicatree.SimpleCost{Create: *create, Delete: *del})
	if err != nil {
		return err
	}
	return emit(struct {
		Cost     float64               `json:"cost"`
		Servers  int                   `json:"servers"`
		Reused   int                   `json:"reused"`
		New      int                   `json:"new"`
		Replicas *replicatree.Replicas `json:"replicas"`
	}{res.Cost, res.Servers, res.Reused, res.New, res.Placement})
}

func powerSetup(fs *flag.FlagSet) (treeF, existingF *string, caps *string, static, alpha *float64, create, del, change *float64) {
	treeF = fs.String("tree", "", "tree JSON file")
	existingF = fs.String("existing", "", "pre-existing replicas JSON file")
	caps = fs.String("caps", "5,10", "mode capacities W_1,...,W_M")
	static = fs.Float64("static", 12.5, "static power P(static)")
	alpha = fs.Float64("alpha", 3, "dynamic power exponent")
	create = fs.Float64("create", 0.1, "per-mode creation cost")
	del = fs.Float64("delete", 0.01, "per-mode deletion cost")
	change = fs.Float64("change", 0.001, "mode change cost")
	return
}

func cmdMinPower(sub string, args []string) error {
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	treeF, existingF, capsF, static, alpha, create, del, change := powerSetup(fs)
	bound := fs.Float64("bound", math.Inf(1), "cost bound (minpower only; +Inf = unconstrained)")
	stats := fs.Bool("stats", false, "include the solver's SolveStats (recomputed tables, root cells scanned/repriced, merge-layer counters) in the output")
	workers := workersFlag(fs)
	fs.Parse(args)

	t, err := loadTree(*treeF)
	if err != nil {
		return err
	}
	existing, err := loadExisting(*existingF, t)
	if err != nil {
		return err
	}
	caps, err := parseCaps(*capsF)
	if err != nil {
		return err
	}
	pm, err := replicatree.NewPowerModel(caps, *static, *alpha)
	if err != nil {
		return err
	}
	cm := replicatree.UniformModalCost(len(caps), *create, *del, *change)
	dp := replicatree.NewPowerDP(t)
	dp.SetWorkers(*workers)
	solver, err := dp.Solve(replicatree.PowerProblem{
		Existing: existing, Power: pm, Cost: cm,
	})
	if err != nil {
		return err
	}

	var st *statsOut
	if *stats {
		st = newStatsOut(dp.Stats())
	}
	if sub == "pareto" {
		if st != nil {
			return emit(struct {
				Front []replicatree.ParetoPoint `json:"front"`
				Stats *statsOut                 `json:"stats"`
			}{solver.Front(), st})
		}
		return emit(solver.Front())
	}
	res, ok := solver.Best(*bound)
	if !ok {
		return fmt.Errorf("replicatool: no solution within cost bound %v (cheapest is %v)",
			*bound, solver.Front()[0].Cost)
	}
	return emit(struct {
		Power    float64               `json:"power"`
		Cost     float64               `json:"cost"`
		Servers  int                   `json:"servers"`
		Replicas *replicatree.Replicas `json:"replicas"`
		Stats    *statsOut             `json:"stats,omitempty"`
	}{res.Power, res.Cost, res.Placement.Count(), res.Placement, st})
}

// statsOut is the JSON shape of a solver's SolveStats.
type statsOut struct {
	Nodes             int `json:"nodes"`
	Recomputed        int `json:"recomputed_tables"`
	RootCellsScanned  int `json:"root_cells_scanned"`
	RootCellsRepriced int `json:"root_cells_repriced"`
	// Merge-layer counters: table cells the merge kernels touched
	// (breakpoint runs for compressed steps), DP rows run in compressed
	// form, and merge steps replayed by partial suffix folds at
	// high-fanout nodes.
	MergeCellsScanned  int `json:"merge_cells_scanned"`
	RowsCompressed     int `json:"rows_compressed"`
	FoldSuffixReplayed int `json:"fold_suffix_replayed"`
}

func newStatsOut(st replicatree.SolveStats) *statsOut {
	return &statsOut{
		Nodes:              st.Nodes,
		Recomputed:         st.Recomputed,
		RootCellsScanned:   st.RootCellsScanned,
		RootCellsRepriced:  st.RootCellsRepriced,
		MergeCellsScanned:  st.MergeCellsScanned,
		RowsCompressed:     st.RowsCompressed,
		FoldSuffixReplayed: st.FoldSuffixReplayed,
	}
}

func cmdGreedy(args []string) error {
	fs := flag.NewFlagSet("greedy", flag.ExitOnError)
	treeF := fs.String("tree", "", "tree JSON file")
	w := fs.Int("w", 10, "server capacity W")
	policyF := fs.String("policy", "closest", "access policy: closest, upwards or multiple")
	qos := fs.Int("qos", 0, "uniform per-client QoS bound (0 = keep the instance's)")
	bw := fs.Int("bw", -1, "uniform per-link bandwidth (negative = keep the instance's)")
	exact := fs.Bool("exact", false, "run the exact QoS DP of arXiv 0706.3350 (closest policy only)")
	workers := workersFlag(fs)
	fs.Parse(args)

	t, cons, err := loadInstance(*treeF)
	if err != nil {
		return err
	}
	cons = applyUniformConstraints(t, cons, *qos, *bw)
	policy, err := replicatree.ParsePolicy(*policyF)
	if err != nil {
		return err
	}
	algorithm := "greedy"
	var sol *replicatree.Replicas
	if *exact {
		if policy != replicatree.PolicyClosest {
			return fmt.Errorf("replicatool: -exact solves the closest policy only (got %v)", policy)
		}
		algorithm = "exact-dp"
		qs := replicatree.NewQoSSolver(t)
		qs.SetWorkers(*workers)
		sol, err = qs.Solve(*w, cons, nil)
	} else {
		sol, err = replicatree.GreedyMinReplicasPolicyConstrained(t, *w, policy, cons)
	}
	if err != nil {
		return err
	}
	return emit(struct {
		Policy      string                `json:"policy"`
		Algorithm   string                `json:"algorithm"`
		Constrained bool                  `json:"constrained"`
		Servers     int                   `json:"servers"`
		Replicas    *replicatree.Replicas `json:"replicas"`
	}{policy.String(), algorithm, cons.Bounded(), sol.Count(), sol})
}

// cmdDrift replays a demand-drift sequence on one tree through a single
// warm incremental solver: every step mutates k random client demands
// in place (Tree.SetDemand) and re-solves incrementally, taking the
// previous step's placement as the pre-existing set. The per-step
// output shows how many of the tree's node tables the solver actually
// rebuilt — the dirty ancestor chains — next to the reconfiguration it
// chose. With -power the replay drives the MinPower-BoundedCost DP
// instead of MinCost, and each step additionally reports how much of
// the root table the incremental root scan re-priced
// (root_cells_scanned / root_cells_repriced).
func cmdDrift(args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	treeF := fs.String("tree", "", "tree JSON file")
	w := fs.Int("w", 10, "server capacity W (mincost mode)")
	steps := fs.Int("steps", 20, "number of drift steps")
	k := fs.Int("k", 3, "client demands redrawn per step")
	reqMax := fs.Int("reqmax", 6, "maximum redrawn request count")
	seed := fs.Uint64("seed", 1, "random seed for the drift sequence")
	create := fs.Float64("create", 0.1, "creation cost")
	del := fs.Float64("delete", 0.01, "deletion cost")
	usePower := fs.Bool("power", false, "replay through the power DP (uses -caps/-static/-alpha/-change)")
	fail := fs.Bool("fail", false, "inject stochastic node failures: each step the masked solver re-places around the down nodes")
	mttf := fs.Float64("mttf", 40, "with -fail: mean steps between node failures")
	mttr := fs.Float64("mttr", 8, "with -fail: mean steps to node recovery")
	capsF := fs.String("caps", "5,10", "mode capacities W_1,...,W_M (power mode)")
	static := fs.Float64("static", 12.5, "static power P(static) (power mode)")
	alpha := fs.Float64("alpha", 3, "dynamic power exponent (power mode)")
	change := fs.Float64("change", 0.001, "mode change cost (power mode)")
	stats := fs.Bool("stats", false, "add the per-step merge-layer counters (cells scanned, rows compressed, fold suffixes replayed)")
	workers := workersFlag(fs)
	fs.Parse(args)

	if *steps <= 0 || *k < 0 || *reqMax < 1 {
		return fmt.Errorf("replicatool: drift needs -steps > 0, -k >= 0 and -reqmax >= 1")
	}
	t, err := loadTree(*treeF)
	if err != nil {
		return err
	}
	var clients [][2]int // (node, client index) pairs eligible for drift
	for j := 0; j < t.N(); j++ {
		for ci := range t.Clients(j) {
			clients = append(clients, [2]int{j, ci})
		}
	}
	if len(clients) == 0 {
		return fmt.Errorf("replicatool: the tree has no clients to drift")
	}
	src := replicatree.NewRNG(*seed)
	drift := func() int {
		changed := 0
		for i := 0; i < *k; i++ {
			pick := clients[src.IntN(len(clients))]
			if t.SetDemand(pick[0], pick[1], src.Between(1, *reqMax)) {
				changed++
			}
		}
		return changed
	}
	if *usePower {
		if *fail {
			return fmt.Errorf("replicatool: -fail replays through the masked mincost solver only (drop -power)")
		}
		caps, err := parseCaps(*capsF)
		if err != nil {
			return err
		}
		pm, err := replicatree.NewPowerModel(caps, *static, *alpha)
		if err != nil {
			return err
		}
		cm := replicatree.UniformModalCost(len(caps), *create, *del, *change)
		return driftPower(t, *steps, drift, pm, cm, *workers, *stats)
	}

	// With -fail, a stochastic node-fault schedule (drawn from the same
	// seed as the drift) advances alongside the demand drift; the solver
	// carries the mask, so every step's placement avoids the currently
	// down nodes and a step's re-solve is charged only the crash/demand
	// ancestor chains. Steps where the outage makes the instance
	// infeasible are reported as such and keep the previous placement.
	var mask *replicatree.FailureMask
	var sched *replicatree.FailureSchedule
	if *fail {
		sched, err = replicatree.StochasticFailures(replicatree.StochasticFailureConfig{
			Nodes: t.N(), Horizon: *steps, MTTF: *mttf, MTTR: *mttr, Seed: *seed,
		})
		if err != nil {
			return err
		}
		mask = replicatree.NewFailureMask(t.N())
	}

	c := replicatree.SimpleCost{Create: *create, Delete: *del}
	solver := replicatree.NewMinCostSolver(t)
	solver.SetWorkers(*workers)
	if mask != nil {
		sched.AdvanceTo(0, mask)
		solver.SetMask(mask)
	}
	res, err := solver.Solve(nil, *w, c)
	if err != nil {
		return err
	}
	placement, spare := res.Placement, replicatree.ReplicasOf(t)

	out := newDriftOut(res.Servers, *stats)
	for s := 1; s <= *steps; s++ {
		changed := drift()
		if mask != nil {
			sched.AdvanceTo(s, mask)
		}
		upd, err := solver.SolveInto(placement, *w, c, spare)
		st := solver.Stats()
		step := driftStep{
			Step: s, Changed: changed,
			Recomputed: st.Recomputed, Nodes: st.Nodes,
		}
		if mask != nil {
			down, masked := mask.DownNodes(), st.MaskedNodes
			step.DownNodes, step.MaskedNodes = &down, &masked
		}
		switch {
		case errors.Is(err, replicatree.ErrInfeasible):
			// The current outage leaves some demand unplaceable; keep
			// the previous placement until nodes recover.
			step.Infeasible = true
			step.Servers, step.Cost = placement.Count(), 0
		case err != nil:
			return err
		default:
			step.Servers, step.Reused, step.Cost = upd.Servers, upd.Reused, upd.Cost
			placement, spare = upd.Placement, placement
		}
		out.account(&step, st)
		out.Steps = append(out.Steps, step)
	}
	return emit(out)
}

type driftStep struct {
	Step       int     `json:"step"`
	Changed    int     `json:"changed_demands"`
	Recomputed int     `json:"recomputed_tables"`
	Nodes      int     `json:"nodes"`
	Servers    int     `json:"servers"`
	Reused     int     `json:"reused"`
	Cost       float64 `json:"cost"`
	// -fail extras: nodes down this step, nodes the solver's mask held
	// down during the re-solve, and whether the outage made the step
	// infeasible (the previous placement is kept).
	DownNodes   *int `json:"down_nodes,omitempty"`
	MaskedNodes *int `json:"masked_nodes,omitempty"`
	Infeasible  bool `json:"infeasible,omitempty"`
	// Power-mode extras: the solution's power and the incremental
	// root-scan counters. Pointers so power mode always emits them —
	// legitimate zeros included (a step whose redraws changed nothing
	// skips the scan) — while mincost mode omits them entirely.
	Power             *float64 `json:"power,omitempty"`
	RootCellsScanned  *int     `json:"root_cells_scanned,omitempty"`
	RootCellsRepriced *int     `json:"root_cells_repriced,omitempty"`
	// -stats extras: the merge-layer counters of the step's re-solve,
	// emitted (zeros included) only when the flag is set.
	MergeCellsScanned  *int `json:"merge_cells_scanned,omitempty"`
	RowsCompressed     *int `json:"rows_compressed,omitempty"`
	FoldSuffixReplayed *int `json:"fold_suffix_replayed,omitempty"`
}

type driftOut struct {
	Initial int         `json:"initial_servers"`
	Steps   []driftStep `json:"steps"`
	// TablesRebuilt sums recomputed tables across steps; a
	// non-incremental replay would rebuild steps × nodes
	// (tables_full_rebuild).
	TablesRebuilt int `json:"tables_rebuilt"`
	TablesFull    int `json:"tables_full_rebuild"`
	// Power mode: total root cells re-priced across steps next to the
	// total the scans covered (unchanged blocks are scanned via a cheap
	// diff but reuse their retained Pareto fronts instead of
	// re-pricing). Pointers so power mode always emits the totals, even
	// when every scan was skipped.
	RootCellsRepriced *int `json:"root_cells_repriced,omitempty"`
	RootCellsScanned  *int `json:"root_cells_scanned,omitempty"`
	// -stats totals of the per-step merge-layer counters.
	MergeCellsScanned  *int `json:"merge_cells_scanned,omitempty"`
	RowsCompressed     *int `json:"rows_compressed,omitempty"`
	FoldSuffixReplayed *int `json:"fold_suffix_replayed,omitempty"`
}

// newDriftOut builds the replay accumulator, wiring the merge-layer
// totals when -stats is set.
func newDriftOut(initial int, stats bool) driftOut {
	out := driftOut{Initial: initial}
	if stats {
		out.MergeCellsScanned = new(int)
		out.RowsCompressed = new(int)
		out.FoldSuffixReplayed = new(int)
	}
	return out
}

// account folds one step's SolveStats into the replay totals and, when
// -stats is on, attaches the step's merge-layer counters.
func (o *driftOut) account(step *driftStep, st replicatree.SolveStats) {
	o.TablesRebuilt += st.Recomputed
	o.TablesFull += st.Nodes
	if o.MergeCellsScanned == nil {
		return
	}
	cells, rows, replayed := st.MergeCellsScanned, st.RowsCompressed, st.FoldSuffixReplayed
	step.MergeCellsScanned, step.RowsCompressed, step.FoldSuffixReplayed = &cells, &rows, &replayed
	*o.MergeCellsScanned += cells
	*o.RowsCompressed += rows
	*o.FoldSuffixReplayed += replayed
}

// driftPower is cmdDrift's power-DP replay: each step re-solves the
// MinPower-BoundedCost program incrementally, taking the previous
// minimal-power placement (with its operating modes) as the
// pre-existing deployment.
func driftPower(t *replicatree.Tree, steps int, drift func() int, pm replicatree.PowerModel, cm replicatree.ModalCost, workers int, stats bool) error {
	dp := replicatree.NewPowerDP(t)
	dp.SetWorkers(workers)
	sol, err := dp.Solve(replicatree.PowerProblem{Power: pm, Cost: cm})
	if err != nil {
		return err
	}
	first := sol.MinPower()
	placement, spare := first.Placement, replicatree.ReplicasOf(t)

	out := newDriftOut(placement.Count(), stats)
	var totalRepriced, totalScanned int
	out.RootCellsRepriced, out.RootCellsScanned = &totalRepriced, &totalScanned
	for s := 1; s <= steps; s++ {
		changed := drift()
		sol, err := dp.Solve(replicatree.PowerProblem{Existing: placement, Power: pm, Cost: cm})
		if err != nil {
			return err
		}
		upd, ok := sol.BestInto(math.Inf(1), spare)
		if !ok {
			return fmt.Errorf("replicatool: drift step %d became infeasible", s)
		}
		st := dp.Stats()
		power, scanned, repriced := upd.Power, st.RootCellsScanned, st.RootCellsRepriced
		step := driftStep{
			Step: s, Changed: changed,
			Recomputed: st.Recomputed, Nodes: st.Nodes,
			Servers: upd.Placement.Count(), Reused: upd.Placement.Reused(placement),
			Cost: upd.Cost, Power: &power,
			RootCellsScanned: &scanned, RootCellsRepriced: &repriced,
		}
		out.account(&step, st)
		out.Steps = append(out.Steps, step)
		totalRepriced += st.RootCellsRepriced
		totalScanned += st.RootCellsScanned
		placement, spare = upd.Placement, placement
	}
	return emit(out)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	treeF := fs.String("tree", "", "tree JSON file")
	placementF := fs.String("placement", "", "placement JSON file")
	capsF := fs.String("caps", "10", "mode capacities W_1,...,W_M")
	policyF := fs.String("policy", "closest", "access policy: closest, upwards or multiple")
	qos := fs.Int("qos", 0, "uniform per-client QoS bound (0 = keep the instance's)")
	bw := fs.Int("bw", -1, "uniform per-link bandwidth (negative = keep the instance's)")
	fs.Parse(args)

	t, cons, err := loadInstance(*treeF)
	if err != nil {
		return err
	}
	cons = applyUniformConstraints(t, cons, *qos, *bw)
	if *placementF == "" {
		return fmt.Errorf("replicatool: -placement is required")
	}
	f, err := os.Open(*placementF)
	if err != nil {
		return err
	}
	defer f.Close()
	placement, err := replicatree.ReadReplicasJSON(f, t)
	if err != nil {
		return err
	}
	caps, err := parseCaps(*capsF)
	if err != nil {
		return err
	}
	policy, err := replicatree.ParsePolicy(*policyF)
	if err != nil {
		return err
	}
	for j := 0; j < t.N(); j++ {
		if m := placement.Mode(j); m != 0 && int(m) > len(caps) {
			return fmt.Errorf("replicatool: node %d uses mode %d, but -caps lists only %d capacities", j, m, len(caps))
		}
	}
	capOf := func(m uint8) int { return caps[m-1] }
	// CheckPlacement guards every argument, so malformed input yields
	// an error instead of tripping the flow engine's panic contract.
	if err := replicatree.CheckPlacement(t, placement, policy, capOf, cons); err != nil {
		return err
	}
	res, err := replicatree.EvalPlacement(t, placement, policy, capOf, cons)
	if err != nil {
		return err
	}
	maxLoad := 0
	for _, l := range res.Loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	constrained := ""
	if cons.Bounded() {
		constrained = " within QoS/bandwidth constraints"
	}
	fmt.Printf("valid under the %s policy%s: %d servers, %d requests served, max load %d\n",
		policy, constrained, placement.Count(), t.TotalRequests(), maxLoad)
	return nil
}
