package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseCaps(t *testing.T) {
	caps, err := parseCaps("5, 10,15")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{5, 10, 15}
	for i := range want {
		if caps[i] != want[i] {
			t.Fatalf("caps = %v", caps)
		}
	}
	if _, err := parseCaps("5,x"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func writeTempTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.json")
	data := `{"parents": [-1, 0, 0], "clients": [[2], [7], [4]]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTree(t *testing.T) {
	path := writeTempTree(t)
	tr, err := loadTree(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 3 || tr.TotalRequests() != 13 {
		t.Fatalf("loaded tree: %v", tr)
	}
	if _, err := loadTree(""); err == nil {
		t.Fatal("missing path accepted")
	}
	if _, err := loadTree(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("absent file accepted")
	}
}

func TestLoadExisting(t *testing.T) {
	path := writeTempTree(t)
	tr, err := loadTree(path)
	if err != nil {
		t.Fatal(err)
	}
	// Empty path yields an empty deployment.
	ex, err := loadExisting("", tr)
	if err != nil || ex.Count() != 0 {
		t.Fatalf("empty existing: %v %v", ex, err)
	}
	repl := filepath.Join(t.TempDir(), "existing.json")
	if err := os.WriteFile(repl, []byte(`{"modes": [0, 1, 0]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ex, err = loadExisting(repl, tr)
	if err != nil || !ex.Has(1) {
		t.Fatalf("existing: %v %v", ex, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"modes": [1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadExisting(bad, tr); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestSubcommandsEndToEnd(t *testing.T) {
	path := writeTempTree(t)
	if err := cmdMinCost([]string{"-tree", path, "-w", "10"}); err != nil {
		t.Fatalf("mincost: %v", err)
	}
	if err := cmdMinPower("minpower", []string{"-tree", path, "-caps", "5,10"}); err != nil {
		t.Fatalf("minpower: %v", err)
	}
	if err := cmdMinPower("pareto", []string{"-tree", path, "-caps", "5,10"}); err != nil {
		t.Fatalf("pareto: %v", err)
	}
	if err := cmdGreedy([]string{"-tree", path, "-w", "10"}); err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if err := cmdGen([]string{"-nodes", "10", "-seed", "3"}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdGen([]string{"-shape", "nope"}); err == nil {
		t.Fatal("bad shape accepted")
	}
	// An unreachable cost bound must surface as an error.
	if err := cmdMinPower("minpower", []string{"-tree", path, "-caps", "5,10", "-bound", "0.5"}); err == nil {
		t.Fatal("impossible bound accepted")
	}
	// check: valid placement passes, invalid fails.
	place := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(place, []byte(`{"modes": [1, 0, 0]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{"-tree", path, "-placement", place, "-caps", "13"}); err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := cmdCheck([]string{"-tree", path, "-placement", place, "-caps", "10"}); err == nil {
		t.Fatal("overloaded placement accepted")
	}
	if err := cmdCheck([]string{"-tree", path, "-caps", "10"}); err == nil {
		t.Fatal("missing placement accepted")
	}
}

func TestDriftEndToEnd(t *testing.T) {
	path := writeTempTree(t)
	if err := cmdDrift([]string{"-tree", path, "-w", "10", "-steps", "5", "-k", "1", "-seed", "3"}); err != nil {
		t.Fatalf("drift: %v", err)
	}
	if err := cmdDrift([]string{"-tree", path, "-steps", "0"}); err == nil {
		t.Fatal("zero steps accepted")
	}
	// A clientless tree cannot drift.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"parents": [-1, 0], "clients": [[], []]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdDrift([]string{"-tree", empty, "-steps", "2"}); err == nil {
		t.Fatal("clientless tree accepted")
	}
}

func TestDriftFailEndToEnd(t *testing.T) {
	path := writeTempTree(t)
	if err := cmdDrift([]string{"-tree", path, "-w", "13", "-steps", "8", "-k", "1", "-seed", "3",
		"-fail", "-mttf", "6", "-mttr", "2"}); err != nil {
		t.Fatalf("drift -fail: %v", err)
	}
	// -fail replays through the masked mincost solver only.
	if err := cmdDrift([]string{"-tree", path, "-power", "-caps", "5,10", "-steps", "2", "-fail"}); err == nil {
		t.Fatal("-fail with -power accepted")
	}
}

func TestDriftPowerEndToEnd(t *testing.T) {
	path := writeTempTree(t)
	if err := cmdDrift([]string{"-tree", path, "-power", "-caps", "5,10", "-steps", "5", "-k", "1", "-seed", "3"}); err != nil {
		t.Fatalf("drift -power: %v", err)
	}
	if err := cmdDrift([]string{"-tree", path, "-power", "-caps", "5,x"}); err == nil {
		t.Fatal("bad capacities accepted")
	}
}

func TestStatsFlagEndToEnd(t *testing.T) {
	path := writeTempTree(t)
	if err := cmdMinPower("minpower", []string{"-tree", path, "-caps", "5,10", "-stats"}); err != nil {
		t.Fatalf("minpower -stats: %v", err)
	}
	if err := cmdMinPower("pareto", []string{"-tree", path, "-caps", "5,10", "-stats"}); err != nil {
		t.Fatalf("pareto -stats: %v", err)
	}
	// drift -stats adds the merge-layer counters in both replay modes.
	if err := cmdDrift([]string{"-tree", path, "-w", "10", "-steps", "3", "-k", "1", "-seed", "3", "-stats"}); err != nil {
		t.Fatalf("drift -stats: %v", err)
	}
	if err := cmdDrift([]string{"-tree", path, "-power", "-caps", "5,10", "-steps", "3", "-k", "1", "-seed", "3", "-stats"}); err != nil {
		t.Fatalf("drift -power -stats: %v", err)
	}
}

func TestWorkersFlagEndToEnd(t *testing.T) {
	path := writeTempTree(t)
	// Every exact-solver subcommand parses -workers; 0 (the default)
	// selects all CPUs, explicit counts pin the wave width.
	for _, w := range []string{"0", "1", "4"} {
		if err := cmdMinCost([]string{"-tree", path, "-w", "10", "-workers", w}); err != nil {
			t.Fatalf("mincost -workers %s: %v", w, err)
		}
		if err := cmdMinPower("minpower", []string{"-tree", path, "-caps", "5,10", "-workers", w}); err != nil {
			t.Fatalf("minpower -workers %s: %v", w, err)
		}
		if err := cmdMinPower("pareto", []string{"-tree", path, "-caps", "5,10", "-workers", w}); err != nil {
			t.Fatalf("pareto -workers %s: %v", w, err)
		}
		if err := cmdGreedy([]string{"-tree", path, "-w", "10", "-exact", "-workers", w}); err != nil {
			t.Fatalf("greedy -exact -workers %s: %v", w, err)
		}
		if err := cmdDrift([]string{"-tree", path, "-w", "10", "-steps", "2", "-workers", w}); err != nil {
			t.Fatalf("drift -workers %s: %v", w, err)
		}
		if err := cmdDrift([]string{"-tree", path, "-power", "-caps", "5,10", "-steps", "2", "-workers", w}); err != nil {
			t.Fatalf("drift -power -workers %s: %v", w, err)
		}
	}
}

func TestPolicyFlagsEndToEnd(t *testing.T) {
	path := writeTempTree(t)
	for _, policy := range []string{"closest", "upwards", "multiple"} {
		if err := cmdGreedy([]string{"-tree", path, "-w", "10", "-policy", policy}); err != nil {
			t.Fatalf("greedy -policy %s: %v", policy, err)
		}
	}
	if err := cmdGreedy([]string{"-tree", path, "-w", "10", "-policy", "nearest"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// A root-only placement overloads under closest at W=10 (13
	// requests) but the relaxed policies cannot fix an overloaded root
	// either; a placement at the root plus node 1 routes around the
	// bottleneck only for upwards/multiple.
	place := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(place, []byte(`{"modes": [1, 0, 0]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{"-tree", path, "-placement", place, "-caps", "10", "-policy", "multiple"}); err == nil {
		t.Fatal("multiple policy served 13 requests on a capacity-10 root")
	}
	if err := cmdCheck([]string{"-tree", path, "-placement", place, "-caps", "13", "-policy", "upwards"}); err != nil {
		t.Fatalf("check -policy upwards: %v", err)
	}
	if err := cmdCheck([]string{"-tree", path, "-placement", place, "-caps", "13", "-policy", "bogus"}); err == nil {
		t.Fatal("unknown check policy accepted")
	}
}

// writeTempInstance writes a constrained instance: a 3-node star whose
// two leaf clients are QoS-bounded and whose links carry bandwidths.
func writeTempInstance(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	data := `{"parents": [-1, 0, 0], "clients": [[2], [7], [4]],
		"qos": [[0], [2], [2]], "bandwidth": [-1, 20, 20]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConstraintFlagsEndToEnd(t *testing.T) {
	path := writeTempInstance(t)
	// The embedded constraints load and both solvers run under them.
	if err := cmdGreedy([]string{"-tree", path, "-w", "10"}); err != nil {
		t.Fatalf("constrained greedy: %v", err)
	}
	if err := cmdGreedy([]string{"-tree", path, "-w", "10", "-exact"}); err != nil {
		t.Fatalf("exact DP: %v", err)
	}
	if err := cmdGreedy([]string{"-tree", path, "-w", "10", "-exact", "-policy", "multiple"}); err == nil {
		t.Fatal("-exact accepted a relaxed policy")
	}
	// gen embeds uniform constraints.
	if err := cmdGen([]string{"-nodes", "8", "-seed", "3", "-qos", "3", "-bw", "25"}); err != nil {
		t.Fatalf("gen with constraints: %v", err)
	}
	// check honours embedded constraints and -qos overrides.
	place := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(place, []byte(`{"modes": [1, 1, 1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{"-tree", path, "-placement", place, "-caps", "13"}); err != nil {
		t.Fatalf("constrained check: %v", err)
	}
	rootOnly := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(rootOnly, []byte(`{"modes": [1, 0, 0]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// The leaf clients' qos of 2 tolerates the root; tightening to 1
	// must reject the root-only placement without panicking.
	if err := cmdCheck([]string{"-tree", path, "-placement", rootOnly, "-caps", "13"}); err != nil {
		t.Fatalf("in-range placement rejected: %v", err)
	}
	if err := cmdCheck([]string{"-tree", path, "-placement", rootOnly, "-caps", "13", "-qos", "1"}); err == nil {
		t.Fatal("QoS-violating placement accepted")
	}
	// A bandwidth override below the leaf demands rejects it too.
	if err := cmdCheck([]string{"-tree", path, "-placement", rootOnly, "-caps", "13", "-bw", "3"}); err == nil {
		t.Fatal("bandwidth-violating placement accepted")
	}
}
