package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, NsPerOp: ns, AllocsPerOp: allocs}
}

func trajectory(sha string, benches ...Benchmark) File {
	return File{SHA: sha, GoVersion: "go1.24", Benchmarks: benches}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	old := trajectory("old",
		bench("BenchmarkA", 100_000, 0),
		bench("BenchmarkB", 500_000, 12),
	)
	new := trajectory("new",
		bench("BenchmarkA", 120_000, 0), // +20% < 40% tolerance
		bench("BenchmarkB", 400_000, 12),
	)
	var sb strings.Builder
	if err := diffFiles(old, new, diffConfig{nsTol: 0.40, minNs: 50_000}, &sb); err != nil {
		t.Fatalf("unexpected regression: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "no regressions") {
		t.Fatalf("missing pass summary:\n%s", sb.String())
	}
}

func TestDiffFailsOnInjectedNsRegression(t *testing.T) {
	old := trajectory("old", bench("BenchmarkHot", 100_000, 0))
	new := trajectory("new", bench("BenchmarkHot", 200_000, 0)) // +100%
	var sb strings.Builder
	err := diffFiles(old, new, diffConfig{nsTol: 0.40, minNs: 50_000}, &sb)
	if err == nil {
		t.Fatalf("injected ns regression not caught:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkHot") || !strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("regression error lacks detail: %v", err)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	// 0 -> 1 allocs must fail even though the ns time improved: this is
	// the cross-commit form of the zero-alloc gate.
	old := trajectory("old", bench("BenchmarkSolverReuse", 400_000, 0))
	new := trajectory("new", bench("BenchmarkSolverReuse", 300_000, 1))
	err := diffFiles(old, new, diffConfig{nsTol: 0.40, minNs: 50_000}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc regression not caught: %v", err)
	}
}

func TestDiffIgnoresNoiseBelowFloor(t *testing.T) {
	// 80ns -> 300ns is +275%, but far below the 50µs noise floor.
	old := trajectory("old", bench("BenchmarkTiny", 80, 0))
	new := trajectory("new", bench("BenchmarkTiny", 300, 0))
	if err := diffFiles(old, new, diffConfig{nsTol: 0.40, minNs: 50_000}, &strings.Builder{}); err != nil {
		t.Fatalf("sub-floor noise failed the diff: %v", err)
	}
}

func TestDiffToleratesAddedAndRetiredBenchmarks(t *testing.T) {
	old := trajectory("old",
		bench("BenchmarkKept", 100_000, 0),
		bench("BenchmarkRetired", 100_000, 0),
	)
	new := trajectory("new",
		bench("BenchmarkKept", 100_000, 0),
		bench("BenchmarkAdded", 900_000, 55),
	)
	var sb strings.Builder
	if err := diffFiles(old, new, diffConfig{nsTol: 0.40, minNs: 50_000}, &sb); err != nil {
		t.Fatalf("membership change failed the diff: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "BenchmarkAdded") || !strings.Contains(out, "BenchmarkRetired") {
		t.Fatalf("membership changes not reported:\n%s", out)
	}
}

func TestDiffAllocTolerance(t *testing.T) {
	old := trajectory("old", bench("BenchmarkLoose", 100_000, 100))
	new := trajectory("new", bench("BenchmarkLoose", 100_000, 109))
	if err := diffFiles(old, new, diffConfig{nsTol: 0.40, allocTol: 0.10, minNs: 50_000}, &strings.Builder{}); err != nil {
		t.Fatalf("within-tolerance alloc growth failed: %v", err)
	}
	if err := diffFiles(old, new, diffConfig{nsTol: 0.40, allocTol: 0.05, minNs: 50_000}, &strings.Builder{}); err == nil {
		t.Fatal("alloc growth beyond tolerance passed")
	}
}

// TestDiffStableTier checks the two-tier ns gate: benchmarks matching
// the stable regex are held to the tight tolerance above the lower
// floor, everything else keeps the loose smoke-run gate.
func TestDiffStableTier(t *testing.T) {
	cfg := diffConfig{
		nsTol: 0.75, allocTol: 0, minNs: 100_000,
		stable:      regexp.MustCompile(`SolverReuse|IncrementalResolve`),
		stableNsTol: 0.30, stableMinNs: 20_000,
	}
	// +50% on a stable benchmark regresses under the tight tier even
	// though the loose tier would wave it through.
	old := trajectory("old", bench("BenchmarkMinCostSolverReuse", 400_000, 0))
	new := trajectory("new", bench("BenchmarkMinCostSolverReuse", 600_000, 0))
	err := diffFiles(old, new, cfg, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "BenchmarkMinCostSolverReuse") {
		t.Fatalf("stable-tier regression not caught: %v", err)
	}
	// The same +50% on a smoke-run benchmark stays within the loose gate.
	old = trajectory("old", bench("BenchmarkFig8", 400_000, 0))
	new = trajectory("new", bench("BenchmarkFig8", 600_000, 0))
	if err := diffFiles(old, new, cfg, &strings.Builder{}); err != nil {
		t.Fatalf("loose tier misapplied to a smoke benchmark: %v", err)
	}
	// The stable tier's lower floor gates benchmarks the loose floor
	// would ignore (50µs-scale solver micros).
	old = trajectory("old", bench("BenchmarkIncrementalResolve/qos/drift3", 30_000, 0))
	new = trajectory("new", bench("BenchmarkIncrementalResolve/qos/drift3", 60_000, 0))
	if err := diffFiles(old, new, cfg, &strings.Builder{}); err == nil {
		t.Fatal("sub-loose-floor stable regression not caught")
	}
	// But genuine sub-floor noise still never fails.
	old = trajectory("old", bench("BenchmarkFlowsSolverReuse", 1_000, 0))
	new = trajectory("new", bench("BenchmarkFlowsSolverReuse", 3_000, 0))
	if err := diffFiles(old, new, cfg, &strings.Builder{}); err != nil {
		t.Fatalf("sub-stable-floor noise failed the diff: %v", err)
	}
}

// TestDiffRunEndToEnd exercises the file-loading path exactly as CI
// invokes it.
func TestDiffRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f File) string {
		raw, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("BENCH_old.json", trajectory("old", bench("BenchmarkX", 100_000, 0)))
	newPath := write("BENCH_new.json", trajectory("new", bench("BenchmarkX", 101_000, 0)))
	if err := diffRun(oldPath, newPath, diffConfig{nsTol: 0.40, minNs: 50_000}, &strings.Builder{}); err != nil {
		t.Fatalf("clean end-to-end diff failed: %v", err)
	}
	badPath := write("BENCH_bad.json", trajectory("bad", bench("BenchmarkX", 500_000, 3)))
	if err := diffRun(oldPath, badPath, diffConfig{nsTol: 0.40, minNs: 50_000}, &strings.Builder{}); err == nil {
		t.Fatal("regressed end-to-end diff passed")
	}
	if err := diffRun(filepath.Join(dir, "missing.json"), newPath, diffConfig{nsTol: 0.40, minNs: 50_000}, &strings.Builder{}); err == nil {
		t.Fatal("missing baseline file did not error")
	}
}
