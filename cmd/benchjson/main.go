// Command benchjson records one point of the repository's performance
// trajectory. It runs `go test -bench` over the module (or parses a
// pre-captured benchmark log) and writes BENCH_<sha>.json holding
// ns/op, B/op and allocs/op — plus any custom b.ReportMetric series —
// for every benchmark, so successive commits can be diffed without
// re-running old revisions. CI regenerates and uploads the file on
// every push.
//
// It doubles as the zero-allocation gate: with -assert-zero, any
// matching benchmark reporting nonzero allocs/op fails the run, which
// keeps the arena-backed solvers (and the flow engine) honest.
//
// With -diff it instead compares two trajectory files and exits
// nonzero on a regression, closing the loop CI-side: the PR job diffs
// the pull request's smoke run against the base branch's uploaded
// artifact. ns/op regressions beyond -ns-tol (on benchmarks slower
// than the -min-ns noise floor) and allocs/op regressions beyond
// -alloc-tol fail the run; benchmarks present in only one file are
// reported but never fail, so adding or retiring benchmarks does not
// break the gate.
//
// Usage:
//
//	benchjson                        # run the default set, write BENCH_<sha>.json
//	benchjson -bench 'Reuse' -benchtime 10x
//	go test -run '^$' -bench . -benchmem ./... | benchjson -in - -assert-zero 'SolverReuse'
//	benchjson -diff -ns-tol 0.40 old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every reported unit, including the three above and
	// any custom b.ReportMetric series (e.g. "gap-vs-optimal-%").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<sha>.json payload.
type File struct {
	SHA        string      `json:"sha"`
	GoVersion  string      `json:"go_version"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		bench      = flag.String("bench", ".", "benchmark regex passed to go test -bench")
		benchtime  = flag.String("benchtime", "1x", "benchtime passed to go test")
		in         = flag.String("in", "", "parse this pre-captured benchmark log instead of running go test (\"-\" = stdin)")
		out        = flag.String("out", ".", "directory receiving BENCH_<sha>.json")
		sha        = flag.String("sha", "", "commit id for the file name (default: git rev-parse --short=12 HEAD)")
		assertZero = flag.String("assert-zero", "", "fail if a benchmark matching this regex reports nonzero allocs/op")
		diffMode   = flag.Bool("diff", false, "compare two BENCH_*.json files (benchjson -diff old.json new.json) and fail on regressions")
		nsTol      = flag.Float64("ns-tol", 0.40, "-diff: fractional ns/op regression tolerance (0.40 = +40%)")
		allocTol   = flag.Float64("alloc-tol", 0, "-diff: fractional allocs/op regression tolerance (0 = any increase fails)")
		minNs      = flag.Float64("min-ns", 50000, "-diff: ignore ns/op regressions on benchmarks faster than this floor (timer noise)")
		stable     = flag.String("stable", "", "-diff: regex of benchmarks measured at a longer -benchtime; they use the tighter -stable-ns-tol/-stable-min-ns gate")
		stableTol  = flag.Float64("stable-ns-tol", 0.35, "-diff: ns/op tolerance for benchmarks matching -stable")
		stableMin  = flag.Float64("stable-min-ns", 20000, "-diff: noise floor for benchmarks matching -stable")
	)
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: benchjson -diff old.json new.json")
			os.Exit(2)
		}
		cfg := diffConfig{nsTol: *nsTol, allocTol: *allocTol, minNs: *minNs,
			stableNsTol: *stableTol, stableMinNs: *stableMin}
		if *stable != "" {
			re, err := regexp.Compile(*stable)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: bad -stable regex:", err)
				os.Exit(2)
			}
			cfg.stable = re
		}
		if err := diffRun(flag.Arg(0), flag.Arg(1), cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*bench, *benchtime, *in, *out, *sha, *assertZero); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, in, out, sha, assertZero string) error {
	var log io.Reader
	switch in {
	case "":
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
			"-benchtime", benchtime, "-benchmem", "./...")
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -bench: %w", err)
		}
		log = strings.NewReader(string(raw))
	case "-":
		log = os.Stdin
	default:
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		log = f
	}

	benches, err := parseBenchLog(log)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}

	if sha == "" {
		sha = headSHA()
	}
	payload := File{SHA: sha, GoVersion: runtime.Version(), Benchmarks: benches}
	path := filepath.Join(out, "BENCH_"+sha+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", path, len(benches))

	if assertZero != "" {
		re, err := regexp.Compile(assertZero)
		if err != nil {
			return fmt.Errorf("bad -assert-zero regex: %w", err)
		}
		var dirty []string
		matched := 0
		for _, b := range benches {
			if !re.MatchString(b.Name) {
				continue
			}
			matched++
			if b.AllocsPerOp != 0 {
				dirty = append(dirty, fmt.Sprintf("%s: %v allocs/op", b.Name, b.AllocsPerOp))
			}
		}
		if matched == 0 {
			return fmt.Errorf("-assert-zero %q matched no benchmark", assertZero)
		}
		if len(dirty) > 0 {
			return fmt.Errorf("allocation regression:\n  %s", strings.Join(dirty, "\n  "))
		}
		fmt.Printf("benchjson: %d benchmarks matching %q at 0 allocs/op\n", matched, assertZero)
	}
	return nil
}

// benchLine matches `BenchmarkName-8   100   123 ns/op   ...`; the
// -GOMAXPROCS suffix is optional (it is absent with GOMAXPROCS=1).
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseBenchLog extracts the benchmark results from `go test -bench`
// output: one line per benchmark, value/unit pairs after the iteration
// count. Non-benchmark lines (package headers, PASS/ok) are skipped.
// When the same benchmark appears more than once — CI concatenates the
// 1x smoke log with the -benchtime=5x re-run of the stable micros — the
// later, higher-precision measurement supersedes the earlier one.
func parseBenchLog(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	byName := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		b := Benchmark{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("line %q: odd value/unit field count", sc.Text())
		}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q: %w", sc.Text(), fields[i], err)
			}
			unit := fields[i+1]
			b.Metrics[unit] = v
			switch unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if at, ok := byName[b.Name]; ok {
			out[at] = b
		} else {
			byName[b.Name] = len(out)
			out = append(out, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// headSHA returns the short commit id, or "worktree" outside a
// repository so local runs still produce a usable file name.
func headSHA() string {
	raw, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "worktree"
	}
	return strings.TrimSpace(string(raw))
}
