package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
)

// regression describes one benchmark that got worse beyond tolerance.
type regression struct {
	name   string
	metric string // "ns/op" or "allocs/op"
	old    float64
	new    float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %s %v -> %v (%+.1f%%)", r.name, r.metric, r.old, r.new, pct(r.old, r.new))
}

// pct returns the relative change from old to new in percent (+ =
// slower/more).
func pct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return (new/old - 1) * 100
}

// diffConfig carries the regression thresholds of one diff run. The
// base ns tolerance/floor applies to every benchmark; names matching
// the optional stable regex — benchmarks CI measures with a longer
// -benchtime, so their timings are far less noisy — are held to the
// tighter stableNsTol above the (lower) stableMinNs floor instead.
type diffConfig struct {
	nsTol    float64
	allocTol float64
	minNs    float64

	stable      *regexp.Regexp
	stableNsTol float64
	stableMinNs float64
}

// nsGate returns the ns tolerance and noise floor applying to name.
func (c diffConfig) nsGate(name string) (tol, floor float64) {
	if c.stable != nil && c.stable.MatchString(name) {
		return c.stableNsTol, c.stableMinNs
	}
	return c.nsTol, c.minNs
}

// diffRun loads two trajectory files and compares them; see diffFiles.
func diffRun(oldPath, newPath string, cfg diffConfig, w io.Writer) error {
	oldF, err := loadFile(oldPath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", oldPath, err)
	}
	newF, err := loadFile(newPath)
	if err != nil {
		return fmt.Errorf("candidate %s: %w", newPath, err)
	}
	return diffFiles(oldF, newF, cfg, w)
}

func loadFile(path string) (File, error) {
	var f File
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, err
	}
	return f, nil
}

// diffFiles prints a per-benchmark comparison of two trajectory points
// and returns an error listing every regression:
//
//   - ns/op worse than old*(1+tol) on benchmarks whose new time is at
//     least the noise floor (single-iteration smoke runs on shared CI
//     runners are noisy; sub-floor benchmarks are reported but never
//     fail). Benchmarks matching cfg.stable use the tighter
//     stableNsTol/stableMinNs pair — CI runs them at -benchtime=5x, so
//     their timings support a much smaller tolerance;
//   - allocs/op worse than old*(1+allocTol). Allocation counts are
//     deterministic, so the default tolerance 0 fails any increase —
//     including the 0 -> n case the zero-alloc gate cares about.
//
// Benchmarks present in only one file are noted but never regress, so
// the gate survives adding or retiring benchmarks.
func diffFiles(oldF, newF File, cfg diffConfig, w io.Writer) error {
	oldBy := make(map[string]Benchmark, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}

	var regs []regression
	var added, removed []string
	seen := make(map[string]bool, len(newF.Benchmarks))

	fmt.Fprintf(w, "benchjson diff: %s (%s) -> %s (%s)\n", oldF.SHA, oldF.GoVersion, newF.SHA, newF.GoVersion)
	fmt.Fprintf(w, "%-55s %15s %15s %9s %11s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "allocs/op")
	for _, nb := range newF.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			added = append(added, nb.Name)
			continue
		}
		mark := ""
		nsTol, minNs := cfg.nsGate(nb.Name)
		if nb.NsPerOp >= minNs && nb.NsPerOp > ob.NsPerOp*(1+nsTol) {
			regs = append(regs, regression{nb.Name, "ns/op", ob.NsPerOp, nb.NsPerOp})
			mark = "  << ns regression"
		}
		if nb.AllocsPerOp > ob.AllocsPerOp*(1+cfg.allocTol) {
			regs = append(regs, regression{nb.Name, "allocs/op", ob.AllocsPerOp, nb.AllocsPerOp})
			mark += "  << alloc regression"
		}
		fmt.Fprintf(w, "%-55s %15.0f %15.0f %8.1f%% %5.0f->%-5.0f%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, pct(ob.NsPerOp, nb.NsPerOp),
			ob.AllocsPerOp, nb.AllocsPerOp, mark)
	}
	for _, ob := range oldF.Benchmarks {
		if !seen[ob.Name] {
			removed = append(removed, ob.Name)
		}
	}
	if len(added) > 0 {
		fmt.Fprintf(w, "new benchmarks (no baseline): %s\n", strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		fmt.Fprintf(w, "retired benchmarks (baseline only): %s\n", strings.Join(removed, ", "))
	}

	if len(regs) > 0 {
		lines := make([]string, len(regs))
		for i, r := range regs {
			lines[i] = r.String()
		}
		return fmt.Errorf("%d regression(s):\n  %s", len(regs), strings.Join(lines, "\n  "))
	}
	fmt.Fprintf(w, "no regressions (ns tolerance %+.0f%% above %v ns floor, alloc tolerance %+.0f%%",
		cfg.nsTol*100, cfg.minNs, cfg.allocTol*100)
	if cfg.stable != nil {
		fmt.Fprintf(w, "; stable tier %+.0f%% above %v ns", cfg.stableNsTol*100, cfg.stableMinNs)
	}
	fmt.Fprintln(w, ")")
	return nil
}
