package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: replicatree
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMinCostSolverReuse-8 	      50	    466828 ns/op	       0 B/op	       0 allocs/op
BenchmarkPowerSolverReuse-8   	      50	  98810751 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig4-8               	       1	 923031266 ns/op	         4.159 avg-extra-reuse	        13.00 max-extra-reuse	234180248 B/op	 2854546 allocs/op
BenchmarkFlows/fat100/closest-8         	14440257	        82.41 ns/op	       0 B/op	       0 allocs/op
BenchmarkTreeGeneration
BenchmarkTreeGeneration-8     	   37676	     31950 ns/op
PASS
ok  	replicatree	12.345s
`

func TestParseBenchLog(t *testing.T) {
	benches, err := parseBenchLog(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(benches))
	}
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}

	mc := byName["BenchmarkMinCostSolverReuse"]
	if mc.Iterations != 50 || mc.NsPerOp != 466828 || mc.AllocsPerOp != 0 || mc.BytesPerOp != 0 {
		t.Fatalf("MinCostSolverReuse parsed as %+v", mc)
	}

	fig := byName["BenchmarkFig4"]
	if fig.AllocsPerOp != 2854546 {
		t.Fatalf("Fig4 allocs/op = %v, want 2854546", fig.AllocsPerOp)
	}
	if got := fig.Metrics["avg-extra-reuse"]; got != 4.159 {
		t.Fatalf("Fig4 avg-extra-reuse = %v, want 4.159", got)
	}
	if got := fig.Metrics["max-extra-reuse"]; got != 13 {
		t.Fatalf("Fig4 max-extra-reuse = %v, want 13", got)
	}

	sub := byName["BenchmarkFlows/fat100/closest"]
	if sub.NsPerOp != 82.41 {
		t.Fatalf("sub-benchmark ns/op = %v, want 82.41", sub.NsPerOp)
	}

	gen := byName["BenchmarkTreeGeneration"]
	if gen.NsPerOp != 31950 || gen.AllocsPerOp != 0 {
		t.Fatalf("TreeGeneration parsed as %+v", gen)
	}
}

// TestParseBenchLogDeduplicates pins the concatenated-log contract: CI
// appends the -benchtime=5x stable re-run after the 1x smoke log, and
// the later measurement must supersede the earlier one.
func TestParseBenchLogDeduplicates(t *testing.T) {
	log := `BenchmarkMinCostSolverReuse-8 	 1	  900000 ns/op	  128 B/op	  2 allocs/op
BenchmarkFig4-8 	 1	 923031266 ns/op	 0 B/op	 0 allocs/op
BenchmarkMinCostSolverReuse-8 	 5	  466828 ns/op	  0 B/op	  0 allocs/op
`
	benches, err := parseBenchLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (duplicate collapsed)", len(benches))
	}
	if benches[0].Name != "BenchmarkMinCostSolverReuse" || benches[1].Name != "BenchmarkFig4" {
		t.Fatalf("order not preserved: %v, %v", benches[0].Name, benches[1].Name)
	}
	if b := benches[0]; b.Iterations != 5 || b.NsPerOp != 466828 || b.AllocsPerOp != 0 {
		t.Fatalf("duplicate not superseded by the later line: %+v", b)
	}
}

func TestParseBenchLogRejectsMalformedPairs(t *testing.T) {
	if _, err := parseBenchLog(strings.NewReader("BenchmarkBroken-8 10 123 ns/op 77\n")); err == nil {
		t.Fatal("expected an error for an odd value/unit field count")
	}
}
