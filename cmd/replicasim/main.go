// Command replicasim regenerates the figures of the paper's evaluation
// (Section 5). Each figure id selects the corresponding experiment:
//
//	4  Experiment 1, fat trees   (reuse of pre-existing servers vs E)
//	5  Experiment 2, fat trees   (dynamic updates, cumulative reuse)
//	6  Experiment 1, high trees
//	7  Experiment 2, high trees
//	8  Experiment 3, fat trees   (inverse power vs cost bound)
//	9  Experiment 3, no pre-existing servers
//	10 Experiment 3, high trees
//	11 Experiment 3, expensive creations/deletions
//
// -policies runs the companion access-policy comparison (Closest vs
// Upwards vs Multiple, arXiv cs/0611034) instead of a paper figure.
// -qos runs the QoS/bandwidth constraint study (arXiv 0706.3350):
// replica counts with and without constraints on the paper's fat and
// high trees, exact DP vs constrained greedy.
// -failures runs the availability study: nodes crash and recover
// stochastically (-mttf/-mttr mean steps), and the exact DP, the
// greedy baseline, and the availability-hedged greedy are compared on
// expected and simulated demand loss, with the online repair loop
// unless -repair=false.
//
// By default a reduced tree count keeps runs interactive; -full uses the
// paper's exact scale (200 trees for Experiments 1-2, 100 for
// Experiment 3). -scale reproduces the in-text scalability timings.
//
// Usage:
//
//	replicasim -fig 8 -full
//	replicasim -all
//	replicasim -scale -full
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"replicatree/internal/exper"
)

func main() {
	var (
		figs      = flag.String("fig", "", "comma-separated figure ids to regenerate (4-11)")
		all       = flag.Bool("all", false, "regenerate every figure")
		scale     = flag.Bool("scale", false, "run the Section 5.2 scalability measurements")
		intervals = flag.Bool("intervals", false, "run the Section 6 lazy-vs-systematic update-interval study")
		policies  = flag.Bool("policies", false, "compare the Closest/Upwards/Multiple access policies (cs/0611034)")
		qos       = flag.Bool("qos", false, "compare replica counts with and without QoS/bandwidth constraints (0706.3350)")
		failures  = flag.Bool("failures", false, "run the availability/failure-injection study")
		mttf      = flag.Float64("mttf", 0, "with -failures: mean steps between node failures (0 = default)")
		mttr      = flag.Float64("mttr", 0, "with -failures: mean steps to node recovery (0 = default)")
		repair    = flag.Bool("repair", true, "with -failures: also simulate the online repair loop")
		full      = flag.Bool("full", false, "use the paper's full tree counts and instance sizes")
		trees     = flag.Int("trees", 0, "override the number of trees per experiment")
		seed      = flag.Uint64("seed", exper.DefaultSeed, "random seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	)
	flag.Parse()

	ids, err := parseFigs(*figs, *all)
	if err != nil {
		fatal(err)
	}
	if len(ids) == 0 && !*scale && !*intervals && !*policies && !*qos && !*failures {
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		if err := runFigure(id, *full, *trees, *seed, *workers); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *policies {
		for _, high := range []bool{false, true} {
			if err := runPolicyComparison(high, *full, *trees, *seed, *workers); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}

	if *qos {
		for _, high := range []bool{false, true} {
			if err := runQoSComparison(high, *full, *trees, *seed, *workers); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}

	if *failures {
		for _, high := range []bool{false, true} {
			if err := runAvailability(high, *full, *trees, *seed, *workers, *mttf, *mttr, *repair); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}

	if *intervals {
		regimes := []struct {
			name string
			cfg  exper.IntervalConfig
		}{
			{"cheap updates (create=0.25)", exper.DefaultIntervals()},
			{"expensive updates (create=1)", exper.ExpensiveIntervals()},
		}
		for _, reg := range regimes {
			cfg := reg.cfg
			if !*full {
				cfg.Trees = 10
			}
			applyCommon(&cfg.Trees, &cfg.Seed, &cfg.Workers, *trees, *seed, *workers)
			res, err := exper.RunIntervals(cfg)
			if err != nil {
				fatal(err)
			}
			title := fmt.Sprintf(
				"=== Update-interval study (paper §6), %s: %d trees of %d nodes, %d steps, drift %.0f%% ===",
				reg.name, cfg.Trees, cfg.Gen.Nodes, cfg.Horizon, cfg.DriftProb*100)
			if err := res.Report(os.Stdout, title); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}

	if *scale {
		cfg := exper.QuickScale()
		if *full {
			cfg = exper.PaperScale()
		}
		cfg.Seed = *seed
		rows, err := exper.RunScale(cfg)
		if err != nil {
			fatal(err)
		}
		if err := exper.ReportScale(os.Stdout, rows); err != nil {
			fatal(err)
		}
	}
}

func parseFigs(spec string, all bool) ([]int, error) {
	if all {
		return []int{4, 5, 6, 7, 8, 9, 10, 11}, nil
	}
	if spec == "" {
		return nil, nil
	}
	var ids []int
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 4 || id > 11 {
			return nil, fmt.Errorf("replicasim: invalid figure id %q (want 4-11)", part)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

func runFigure(id int, full bool, trees int, seed uint64, workers int) error {
	switch id {
	case 4, 6:
		cfg := exper.DefaultExp1(id == 6, pick(full, 1, 5))
		cfg.Trees = pick(full, 200, 50)
		applyCommon(&cfg.Trees, &cfg.Seed, &cfg.Workers, trees, seed, workers)
		res, err := exper.RunExp1(cfg)
		if err != nil {
			return err
		}
		return res.Report(os.Stdout, title(id, fmt.Sprintf(
			"Experiment 1 (%s trees): %d trees of %d nodes, W=%d",
			shape(id == 6), cfg.Trees, cfg.Gen.Nodes, cfg.W)))
	case 5, 7:
		cfg := exper.DefaultExp2(id == 7)
		cfg.Trees = pick(full, 200, 50)
		applyCommon(&cfg.Trees, &cfg.Seed, &cfg.Workers, trees, seed, workers)
		res, err := exper.RunExp2(cfg)
		if err != nil {
			return err
		}
		return res.Report(os.Stdout, title(id, fmt.Sprintf(
			"Experiment 2 (%s trees): %d trees, %d update steps",
			shape(id == 7), cfg.Trees, cfg.Steps)))
	case 8, 9, 10, 11:
		var cfg exper.Exp3Config
		var variant string
		switch id {
		case 8:
			cfg, variant = exper.DefaultExp3(), "fat trees"
		case 9:
			cfg, variant = exper.Exp3Fig9(), "no pre-existing servers"
		case 10:
			cfg, variant = exper.Exp3Fig10(), "high trees"
		case 11:
			cfg, variant = exper.Exp3Fig11(), "create=delete=1, changed=0.1"
		}
		cfg.Trees = pick(full, 100, 25)
		applyCommon(&cfg.Trees, &cfg.Seed, &cfg.Workers, trees, seed, workers)
		res, err := exper.RunExp3(cfg)
		if err != nil {
			return err
		}
		return res.Report(os.Stdout, title(id, fmt.Sprintf(
			"Experiment 3 (%s): %d trees of %d nodes, %d pre-existing",
			variant, cfg.Trees, cfg.Gen.Nodes, cfg.Pre)))
	}
	return fmt.Errorf("replicasim: unknown figure %d", id)
}

// runPolicyComparison runs the cross-policy experiment on fat or high
// trees and reports it.
func runPolicyComparison(high, full bool, trees int, seed uint64, workers int) error {
	cfg := exper.DefaultPolicyCompare(high)
	if !full {
		cfg.Trees = 10
	}
	applyCommon(&cfg.Trees, &cfg.Seed, &cfg.Workers, trees, seed, workers)
	res, err := exper.RunPolicyCompare(cfg)
	if err != nil {
		return err
	}
	return res.Report(os.Stdout, fmt.Sprintf(
		"=== Access-policy comparison (%s trees): %d trees of %d nodes ===",
		shape(high), cfg.Trees, cfg.Gen.Nodes))
}

// runQoSComparison runs the QoS/bandwidth constraint study on fat or
// high trees and reports it.
func runQoSComparison(high, full bool, trees int, seed uint64, workers int) error {
	cfg := exper.DefaultQoSCompare(high)
	if !full {
		cfg.Trees = 10
	}
	applyCommon(&cfg.Trees, &cfg.Seed, &cfg.Workers, trees, seed, workers)
	res, err := exper.RunQoSCompare(cfg)
	if err != nil {
		return err
	}
	return res.Report(os.Stdout, fmt.Sprintf(
		"=== QoS/bandwidth constraint study (%s trees): %d trees of %d nodes, W=%d ===",
		shape(high), cfg.Trees, cfg.Gen.Nodes, cfg.W))
}

// runAvailability runs the failure-injection availability study on fat
// or high trees and reports it.
func runAvailability(high, full bool, trees int, seed uint64, workers int, mttf, mttr float64, repair bool) error {
	cfg := exper.DefaultAvailability(high)
	if !full {
		cfg.Trees = 10
	}
	if mttf > 0 {
		cfg.MTTF = mttf
	}
	if mttr > 0 {
		cfg.MTTR = mttr
	}
	cfg.Repair = repair
	applyCommon(&cfg.Trees, &cfg.Seed, &cfg.Workers, trees, seed, workers)
	res, err := exper.RunAvailability(cfg)
	if err != nil {
		return err
	}
	return res.Report(os.Stdout, fmt.Sprintf(
		"=== Availability under failures (%s trees): %d trees of %d nodes, MTTF %.0f, MTTR %.0f ===",
		shape(high), cfg.Trees, cfg.Gen.Nodes, cfg.MTTF, cfg.MTTR))
}

func applyCommon(cfgTrees *int, cfgSeed *uint64, cfgWorkers *int, trees int, seed uint64, workers int) {
	if trees > 0 {
		*cfgTrees = trees
	}
	*cfgSeed = seed
	*cfgWorkers = workers
}

func pick(full bool, paper, quick int) int {
	if full {
		return paper
	}
	return quick
}

func shape(high bool) string {
	if high {
		return "high"
	}
	return "fat"
}

func title(id int, detail string) string {
	return fmt.Sprintf("=== Figure %d — %s ===", id, detail)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
