package main

import "testing"

func TestParseFigs(t *testing.T) {
	ids, err := parseFigs("", true)
	if err != nil || len(ids) != 8 {
		t.Fatalf("all: %v %v", ids, err)
	}
	ids, err = parseFigs("8, 4,11", false)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 11}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if ids, err = parseFigs("", false); err != nil || ids != nil {
		t.Fatalf("empty spec: %v %v", ids, err)
	}
	for _, bad := range []string{"3", "12", "x", "4,,5"} {
		if _, err := parseFigs(bad, false); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestPickAndShape(t *testing.T) {
	if pick(true, 1, 2) != 1 || pick(false, 1, 2) != 2 {
		t.Fatal("pick wrong")
	}
	if shape(true) != "high" || shape(false) != "fat" {
		t.Fatal("shape wrong")
	}
}

func TestRunFigureSmall(t *testing.T) {
	// Smoke: every figure id runs at minimal scale.
	for id := 4; id <= 11; id++ {
		if err := runFigure(id, false, 2, 7, 0); err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
	}
	if err := runFigure(99, false, 1, 1, 0); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestPolicyComparisonSmoke(t *testing.T) {
	if err := runPolicyComparison(false, false, 2, 7, 0); err != nil {
		t.Fatalf("policy comparison: %v", err)
	}
}

func TestQoSComparisonSmoke(t *testing.T) {
	if err := runQoSComparison(true, false, 2, 7, 0); err != nil {
		t.Fatalf("qos comparison: %v", err)
	}
}
