// Command replicaserved is the placement-as-a-service daemon: it keeps
// loaded instances' incremental solvers warm and serves placements,
// Pareto fronts and failure evaluations over HTTP/JSON while batching
// concurrent demand drifts into single incremental re-solve ticks.
// `replicatool serve` is an alias for the same daemon.
//
// Endpoints (see internal/serve for the full contract):
//
//	POST   /instances                  load an instance (inline JSON or server-side gen)
//	GET    /instances                  list loaded instances
//	GET    /instances/{id}             instance summary
//	DELETE /instances/{id}             unload an instance
//	POST   /instances/{id}/drift      submit demand edits (batched into ticks)
//	GET    /instances/{id}/placement  current placement snapshot (never blocks)
//	GET    /instances/{id}/front      current cost/power Pareto front
//	GET    /instances/{id}/eval       flow evaluation, optionally with faults (?down=, ?cut=)
//	POST   /instances/{id}/snapshot   persist the session to the -data directory
//	GET    /healthz                    liveness
//	GET    /metrics                    Prometheus-style text metrics
//
// On SIGTERM/SIGINT the daemon drains in-flight requests and, when
// -data is set, snapshots every session for restart continuity.
//
// Example:
//
//	replicaserved -addr 127.0.0.1:0 -data /var/lib/replicaserved
//	curl -X POST localhost:8080/instances -d '{"id":"t1","w":10,
//	  "cost":{"create":0.1,"delete":0.01},"gen":{"nodes":10000,"shape":"scale","seed":7}}'
//	curl -X POST localhost:8080/instances/t1/drift -d '{"edits":[{"node":3,"client":0,"reqs":5}]}'
//	curl localhost:8080/instances/t1/placement
package main

import (
	"fmt"
	"os"

	"replicatree/internal/serve"
)

func main() {
	if err := serve.Run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
