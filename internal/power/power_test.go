package power

import (
	"math"
	"testing"
	"testing/quick"

	"replicatree/internal/tree"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewValidates(t *testing.T) {
	if _, err := New([]int{5, 10}, 12.5, 3); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		caps   []int
		static float64
		alpha  float64
	}{
		{nil, 0, 2},
		{[]int{0, 5}, 0, 2},
		{[]int{10, 5}, 0, 2},
		{[]int{5, 5}, 0, 2},
		{[]int{5}, -1, 2},
		{[]int{5}, 0, 0},
	}
	for i, c := range bad {
		if _, err := New(c.caps, c.static, c.alpha); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad caps did not panic")
		}
	}()
	MustNew(nil, 0, 2)
}

func TestModeFor(t *testing.T) {
	m := MustNew([]int{5, 10}, 0, 2)
	cases := []struct {
		load, mode int
		ok         bool
	}{
		{0, 1, true}, {1, 1, true}, {5, 1, true},
		{6, 2, true}, {10, 2, true},
		{11, 0, false},
	}
	for _, c := range cases {
		mode, ok := m.ModeFor(c.load)
		if mode != c.mode || ok != c.ok {
			t.Errorf("ModeFor(%d) = (%d,%v), want (%d,%v)", c.load, mode, ok, c.mode, c.ok)
		}
	}
}

func TestNodePowerPaperFigure2(t *testing.T) {
	// Figure 2 uses P = 10 + W^2 with modes {7, 10}.
	m := MustNew([]int{7, 10}, 10, 2)
	if got := m.NodePower(1); !almost(got, 59) {
		t.Fatalf("NodePower(1) = %v, want 59", got)
	}
	if got := m.NodePower(2); !almost(got, 110) {
		t.Fatalf("NodePower(2) = %v, want 110", got)
	}
	// The paper's inequality motivating the example:
	// two mode-1 servers consume more than one mode-2 server.
	if 2*m.NodePower(1) <= m.NodePower(2) {
		t.Fatal("2*P(W1) should exceed P(W2) in the Figure 2 model")
	}
}

func TestNodePowerPaperExperiment3(t *testing.T) {
	// Experiment 3 uses P_i = W1^3/10 + W_i^3 with modes {5, 10}.
	m := MustNew([]int{5, 10}, math.Pow(5, 3)/10, 3)
	if got := m.NodePower(1); !almost(got, 12.5+125) {
		t.Fatalf("NodePower(1) = %v, want 137.5", got)
	}
	if got := m.NodePower(2); !almost(got, 12.5+1000) {
		t.Fatalf("NodePower(2) = %v, want 1012.5", got)
	}
}

func TestOfCounts(t *testing.T) {
	m := MustNew([]int{5, 10}, 1, 2)
	// 2 servers at mode 1 (1+25 each), 1 at mode 2 (1+100).
	if got := m.OfCounts([]int{2, 1}); !almost(got, 2*26+101) {
		t.Fatalf("OfCounts = %v, want 153", got)
	}
	if got := m.OfCounts([]int{0, 0}); got != 0 {
		t.Fatalf("OfCounts(empty) = %v", got)
	}
}

func TestOfReplicas(t *testing.T) {
	m := MustNew([]int{5, 10}, 0, 2)
	r := tree.NewReplicas(4)
	r.Set(0, 2)
	r.Set(2, 1)
	if got := m.OfReplicas(r); !almost(got, 125) {
		t.Fatalf("OfReplicas = %v, want 125", got)
	}
}

// fig2Tree reproduces the Figure 2 topology: root r with its own client,
// node A under r, nodes B and C under A with 3 and 7 requests below.
func fig2Tree(rootReq int) *tree.Tree {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	cc := b.AddNode(a)
	b.AddClient(bb, 3)
	b.AddClient(cc, 7)
	if rootReq > 0 {
		b.AddClient(b.Root(), rootReq)
	}
	return b.MustBuild()
}

func TestAssignModes(t *testing.T) {
	m := MustNew([]int{7, 10}, 10, 2)
	tr := fig2Tree(4)
	sol := tree.ReplicasOf(tr)
	sol.Set(3, 1) // C carries 7 -> mode 1
	sol.Set(0, 1) // root carries 3+4=7 -> mode 1
	if err := m.AssignModes(tr, sol); err != nil {
		t.Fatal(err)
	}
	if sol.Mode(3) != 1 || sol.Mode(0) != 1 {
		t.Fatalf("modes = %v", sol)
	}
	// Placing only at A forces mode 2 (10 requests ≤ W2).
	sol2 := tree.ReplicasOf(tr)
	sol2.Set(1, 1)
	sol2.Set(0, 1)
	if err := m.AssignModes(tr, sol2); err != nil {
		t.Fatal(err)
	}
	if sol2.Mode(1) != 2 {
		t.Fatalf("A mode = %d, want 2", sol2.Mode(1))
	}
}

func TestAssignModesErrors(t *testing.T) {
	m := MustNew([]int{7, 10}, 10, 2)
	tr := fig2Tree(11)
	sol := tree.ReplicasOf(tr)
	sol.Set(1, 1) // root's 11 requests unserved
	if err := m.AssignModes(tr, sol); err == nil {
		t.Fatal("unserved requests accepted")
	}
	sol.Set(0, 1) // root now carries 11 > W2
	if err := m.AssignModes(tr, sol); err == nil {
		t.Fatal("overload accepted")
	}
}

func TestEvaluateDoesNotMutate(t *testing.T) {
	m := MustNew([]int{7, 10}, 10, 2)
	tr := fig2Tree(4)
	sol := tree.ReplicasOf(tr)
	sol.Set(1, 1)
	sol.Set(0, 1)
	out, p, err := m.Evaluate(tr, sol)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Mode(1) != 1 {
		t.Fatal("Evaluate mutated its input")
	}
	if out.Mode(1) != 2 {
		t.Fatalf("Evaluate mode = %d", out.Mode(1))
	}
	// A at mode 2 (10+100) + root at mode 1 (10+49) = 169.
	if !almost(p, 169) {
		t.Fatalf("Evaluate power = %v, want 169", p)
	}
}

// Property: ModeFor returns the minimal covering mode.
func TestQuickModeForMinimal(t *testing.T) {
	m := MustNew([]int{3, 7, 12, 20}, 0, 2)
	f := func(load uint8) bool {
		l := int(load) % 25
		mode, ok := m.ModeFor(l)
		if l > 20 {
			return !ok
		}
		if !ok || m.Cap(mode) < l {
			return false
		}
		// No smaller mode covers the load.
		return mode == 1 || m.Cap(mode-1) < l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: power is monotone in mode and in counts.
func TestQuickPowerMonotone(t *testing.T) {
	m := MustNew([]int{2, 5, 9}, 4, 2.5)
	for mode := 2; mode <= 3; mode++ {
		if m.NodePower(mode) <= m.NodePower(mode-1) {
			t.Fatalf("NodePower not increasing at mode %d", mode)
		}
	}
	f := func(a, b, c uint8) bool {
		base := []int{int(a % 50), int(b % 50), int(c % 50)}
		more := []int{base[0] + 1, base[1], base[2]}
		return m.OfCounts(more) > m.OfCounts(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
