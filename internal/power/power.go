// Package power implements the paper's multi-modal power-consumption
// model (Section 2.2): a server operating at mode m with capacity W_m
// dissipates P_static + W_m^α, where α ∈ [2,3] is the model exponent.
// Modes are load-determined: a server processing q requests runs at the
// smallest mode whose capacity covers q.
package power

import (
	"fmt"
	"math"
	"sort"

	"replicatree/internal/tree"
)

// Model describes the mode set and the power function.
type Model struct {
	// Caps holds the request capacities W_1 < W_2 < … < W_M.
	Caps []int
	// Static is P(static), the constant power of a powered-on server.
	Static float64
	// Alpha is the dynamic-power exponent (the paper uses values in
	// [2,3]).
	Alpha float64
}

// New validates and returns a model.
func New(caps []int, static, alpha float64) (Model, error) {
	m := Model{Caps: append([]int(nil), caps...), Static: static, Alpha: alpha}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// MustNew is New for statically correct model literals.
func MustNew(caps []int, static, alpha float64) Model {
	m, err := New(caps, static, alpha)
	if err != nil {
		panic(err)
	}
	return m
}

// Validate checks that capacities are positive and strictly increasing
// and that the power parameters are sane.
func (m Model) Validate() error {
	if len(m.Caps) == 0 {
		return fmt.Errorf("power: no modes")
	}
	if m.Caps[0] <= 0 {
		return fmt.Errorf("power: non-positive capacity W1=%d", m.Caps[0])
	}
	if !sort.IntsAreSorted(m.Caps) {
		return fmt.Errorf("power: capacities not increasing: %v", m.Caps)
	}
	for i := 1; i < len(m.Caps); i++ {
		if m.Caps[i] == m.Caps[i-1] {
			return fmt.Errorf("power: duplicate capacity %d", m.Caps[i])
		}
	}
	if m.Static < 0 {
		return fmt.Errorf("power: negative static power %v", m.Static)
	}
	if m.Alpha <= 0 {
		return fmt.Errorf("power: non-positive alpha %v", m.Alpha)
	}
	return nil
}

// M returns the number of modes.
func (m Model) M() int { return len(m.Caps) }

// Equal reports whether two models describe the same mode capacities
// and power function. The incremental power solver uses it to decide
// whether its cached subtree tables survive a model swap.
func (m Model) Equal(o Model) bool {
	if len(m.Caps) != len(o.Caps) || m.Static != o.Static || m.Alpha != o.Alpha {
		return false
	}
	for i := range m.Caps {
		if m.Caps[i] != o.Caps[i] {
			return false
		}
	}
	return true
}

// MaxCap returns W_M, the capacity of the fastest mode.
func (m Model) MaxCap() int { return m.Caps[len(m.Caps)-1] }

// Cap returns the capacity of the 1-based mode.
func (m Model) Cap(mode int) int { return m.Caps[mode-1] }

// ModeFor returns the smallest 1-based mode whose capacity covers load
// (mode 1 for an idle server). ok is false when load exceeds W_M, in
// which case no single server can carry it.
func (m Model) ModeFor(load int) (mode int, ok bool) {
	for i, c := range m.Caps {
		if load <= c {
			return i + 1, true
		}
	}
	return 0, false
}

// NodePower returns the power dissipated by one server operating at the
// 1-based mode: P_static + W_mode^α.
func (m Model) NodePower(mode int) float64 {
	return m.Static + math.Pow(float64(m.Cap(mode)), m.Alpha)
}

// OfCounts returns the total power of countByMode[i] servers operating at
// mode i+1 (Equation (3)).
func (m Model) OfCounts(countByMode []int) float64 {
	total := 0.0
	for i, n := range countByMode {
		if n != 0 {
			total += float64(n) * m.NodePower(i+1)
		}
	}
	return total
}

// OfReplicas returns the total power of a solution whose modes are
// already assigned.
func (m Model) OfReplicas(sol *tree.Replicas) float64 {
	return m.OfCounts(sol.CountByMode(m.M()))
}

// AssignModes sets the mode of every equipped node in sol to the
// load-determined mode under the closest policy on t (the paper's rule:
// W_{i-1} < req ≤ W_i ⇒ mode W_i). It fails if some requests are
// unserved or some server's load exceeds W_M.
func (m Model) AssignModes(t *tree.Tree, sol *tree.Replicas) error {
	loads, unserved := tree.Flows(t, sol)
	if unserved > 0 {
		return &tree.CapacityError{Node: -1, Load: unserved}
	}
	for j := 0; j < t.N(); j++ {
		if !sol.Has(j) {
			continue
		}
		mode, ok := m.ModeFor(loads[j])
		if !ok {
			return &tree.CapacityError{Node: j, Load: loads[j], Cap: m.MaxCap()}
		}
		sol.Set(j, uint8(mode))
	}
	return nil
}

// Evaluate assigns load-determined modes on a copy of sol and returns the
// copy together with its total power.
func (m Model) Evaluate(t *tree.Tree, sol *tree.Replicas) (*tree.Replicas, float64, error) {
	out := sol.Clone()
	if err := m.AssignModes(t, out); err != nil {
		return nil, 0, err
	}
	return out, m.OfReplicas(out), nil
}

// AssignModesEngine assigns load-determined modes under an arbitrary
// access policy, reusing the caller's flow engine (sol must be sized
// for the engine's tree). Routing is first evaluated with every server
// at the fastest mode W_M; each server then gets the smallest mode
// covering its observed load, and the assignment is re-validated under
// the resulting per-mode capacities. Under the upwards policy the
// best-fit routing can shift when capacities shrink, so modes are
// escalated one step at a time until the placement validates again
// (reaching W_M everywhere reproduces the initial routing, which makes
// the loop terminate with a valid assignment whenever one step-one
// routing existed).
func (m Model) AssignModesEngine(e *tree.Engine, sol *tree.Replicas, p tree.Policy) error {
	t := e.Tree()
	if p == tree.PolicyClosest {
		return m.AssignModes(t, sol)
	}
	res := e.EvalUniform(sol, p, m.MaxCap())
	if res.Unserved > 0 {
		return &tree.CapacityError{Node: -1, Load: res.Unserved, Policy: p}
	}
	for j := 0; j < t.N(); j++ {
		if !sol.Has(j) {
			continue
		}
		mode, ok := m.ModeFor(res.Loads[j])
		if !ok {
			return &tree.CapacityError{Node: j, Load: res.Loads[j], Cap: m.MaxCap(), Policy: p}
		}
		sol.Set(j, uint8(mode))
	}
	capOf := func(mode uint8) int { return m.Cap(int(mode)) }
	for e.Validate(sol, p, capOf) != nil {
		raised := false
		for j := 0; j < t.N(); j++ {
			if sol.Has(j) && int(sol.Mode(j)) < m.M() {
				sol.Set(j, sol.Mode(j)+1)
				raised = true
			}
		}
		if !raised {
			// Every server already runs at W_M; cannot happen after a
			// successful max-capacity evaluation above.
			return &tree.CapacityError{Node: -1, Load: 1, Policy: p}
		}
	}
	return nil
}
