package core

// This file holds the breakpoint-compressed merge kernel of the power
// dynamic program and the lazy provenance reconstruction it relies on.
//
// Without pre-existing servers every reuse dimension of a table
// collapses to 1, so a node's table is a stack of rows along the n_M
// axis — the innermost, stride-1 field: row index = flat / rowLen.
// Along n_M each row obeys the monotone contract of breakrow.go (one
// more mode-M server, the largest capacity, can always absorb an
// unserved subtree) but only up to the row's effective length
// rowLen - Σ(other new counts): past it the subtree's node count
// admits no placement by pigeonhole, so the tail is identically
// unreached. The kernel therefore encodes and convolves rows within
// their effective lengths and re-fills the tails on decode. Both
// properties are verified at encode time; any violation falls back to
// the dense kernel, keeping compression exact unconditionally.
//
// A merge folds every (acc row, child row) pair into output rows:
//
//   - the no-place and mode-M place options land in the coordinate-sum
//     row, and their contribution is exactly bpPlaceMerge — the capped
//     min-plus convolution plus the equip point one cell right;
//   - a mode-m place (m < M) lands in the sum row bumped by one in
//     field m and contributes the acc row shifted to the first child
//     cell mode m can carry (bpShift) — the staircase the dense
//     kernel's placeBump writes draw.
//
// Output rows accumulate the pair contributions with envMin. The
// result is cell-identical to the dense kernel; provenance is not
// materialised — reconstruction re-derives a cell's decision lazily
// from the step's retained row snapshots, scanning candidates in the
// dense kernel's (acc cell, child cell, mode) order.

// maxPowerDigits bounds the mode count the compressed power kernel
// handles with stack-allocated digit vectors; larger instances (far
// beyond the paper's experiments, and intractable for the dense DP
// anyway) fall back to the dense kernel.
const maxPowerDigits = 16

// bumpDigits advances a row-major digit vector with the given radix,
// maintaining the digit sum. Returns false when the vector wraps.
func bumpDigits(dig []int32, radix int32, sum *int32) bool {
	for f := len(dig) - 1; f >= 0; f-- {
		dig[f]++
		*sum++
		if dig[f] < radix {
			return true
		}
		*sum -= dig[f]
		dig[f] = 0
	}
	return false
}

// encodeTableRows encodes every n_M row of a no-pre power table,
// clipped to its effective length, appending the runs to *runs with
// per-row offsets in *off. Returns false when any row violates the
// monotone contract or holds a reached value past its effective
// length — the caller must then run the dense kernel.
func encodeTableRows(tab []int32, rows int, rowLen int32, M int, off *[]int32, runs *[]bpRun, tmp *[]bpRun) bool {
	*off = grown(*off, rows+1)
	(*off)[0] = 0
	*runs = (*runs)[:0]
	var dig [maxPowerDigits]int32
	dg := dig[:M-1]
	sum := int32(0)
	for r := 0; r < rows; r++ {
		base := r * int(rowLen)
		eff := max(rowLen-sum, 0)
		enc, ok := encodeRuns32(tab[base:base+int(eff)], pUnreached, *tmp)
		*runs = append(*runs, enc...)
		*tmp = enc[:0]
		if !ok {
			return false
		}
		(*off)[r+1] = int32(len(*runs))
		for i := base + int(eff); i < base+int(rowLen); i++ {
			if tab[i] != pUnreached {
				return false
			}
		}
		bumpDigits(dg, rowLen, &sum)
	}
	return true
}

// mergeCompressed is the breakpoint-compressed counterpart of
// mergeSequential/mergeParallel for merges without pre-existing
// servers. It reads the dense acc and child tables, computes in
// runs-space and decodes the dense output, so everything around the
// merge (retained tables, the root fold, the root scan) is untouched.
// Returns false — with out unwritten — when a row fails the monotone
// verification, in which case the caller runs the dense kernel.
func (d *PowerDP) mergeCompressed(step *pStep, acc []int32, accShape shape, chVals []int32, chShape, outShape shape, out []int32, sc *bpScratch, ms *mergeStats) bool {
	M := d.M
	if M-1 > maxPowerDigits {
		return false
	}
	accLen, chLen, outLen := accShape.dims[M-1], chShape.dims[M-1], outShape.dims[M-1]
	accRows := accShape.size / int(accLen)
	chRows := chShape.size / int(chLen)
	outRows := outShape.size / int(outLen)

	if !encodeTableRows(acc, accRows, accLen, M, &sc.accOff, &sc.accRuns, &sc.tmp) {
		return false
	}
	if !encodeTableRows(chVals, chRows, chLen, M, &sc.cols, &sc.colRuns, &sc.tmp) {
		return false
	}
	ms.rows += accRows + chRows

	// Per (child row, mode m < M): the first child cell mode m can
	// carry — a suffix of the row's feasible cells, since values only
	// shrink rightward. -1 when even the smallest value exceeds the cap.
	caps := d.prob.Power.Caps
	sc.modeStarts = grown(sc.modeStarts, chRows*(M-1))
	for r := 0; r < chRows; r++ {
		cRuns := sc.colRuns[sc.cols[r]:sc.cols[r+1]]
		for m := 1; m < M; m++ {
			s := int32(-1)
			for _, run := range cRuns {
				if run.val <= int64(caps[m-1]) {
					s = run.start
					break
				}
			}
			sc.modeStarts[r*(M-1)+(m-1)] = s
		}
	}

	sc.rows = grownKeep(sc.rows, outRows)
	rows := sc.rows[:outRows]
	for r := range rows {
		rows[r] = rows[r][:0]
	}

	// Row-space weights: the output row index moves by outW[f] when
	// field f's coordinate moves by one. Digit sums never carry — the
	// per-field out dimension exceeds the acc and child dimensions
	// combined — so row indices add componentwise.
	var outW [maxPowerDigits]int32
	w := int32(1)
	for f := M - 2; f >= 0; f-- {
		outW[f] = w
		w *= outLen
	}

	outN := outLen - 1
	wmSum := int64(d.wm)
	var aDig, cDig [maxPowerDigits]int32
	ad := aDig[:M-1]
	sumA := int32(0)
	for ar := 0; ar < accRows; ar++ {
		aRuns := sc.accRuns[sc.accOff[ar]:sc.accOff[ar+1]]
		if len(aRuns) != 0 {
			baseA := int32(0)
			for f := 0; f < M-1; f++ {
				baseA += ad[f] * outW[f]
			}
			cd := cDig[:M-1]
			for f := range cd {
				cd[f] = 0
			}
			sumC := int32(0)
			for cr := 0; cr < chRows; cr++ {
				cRuns := sc.colRuns[sc.cols[cr]:sc.cols[cr+1]]
				if len(cRuns) != 0 {
					baseC := int32(0)
					for f := 0; f < M-1; f++ {
						baseC += cd[f] * outW[f]
					}
					row0 := baseA + baseC
					s0 := sumA + sumC
					ms.cells += len(aRuns) + len(cRuns)
					res := bpPlaceMerge(aRuns, cRuns, wmSum, outN-s0, sc)
					rows[row0], sc.tmp = envMinInto(rows[row0], res, sc.tmp)
					if lim := outN - s0 - 1; lim >= 0 {
						for m := 1; m < M; m++ {
							sm := sc.modeStarts[cr*(M-1)+(m-1)]
							if sm < 0 {
								continue
							}
							sh := bpShift(aRuns, sm, lim, sc.ch)
							r := row0 + outW[m-1]
							rows[r], sc.tmp = envMinInto(rows[r], sh, sc.tmp)
							sc.ch = sh[:0]
						}
					}
				}
				bumpDigits(cd, chLen, &sumC)
			}
		}
		bumpDigits(ad, accLen, &sumA)
	}

	// Decode the accumulated rows into the dense output and snapshot
	// the step's inputs and outputs for lazy provenance and suffix
	// replays.
	step.comp = true
	step.accLen, step.chLen, step.outLen = accLen, chLen, outLen
	step.inOff = append(step.inOff[:0], sc.accOff[:accRows+1]...)
	step.inRuns = append(step.inRuns[:0], sc.accRuns...)
	step.chOff = append(step.chOff[:0], sc.cols[:chRows+1]...)
	step.chRuns = append(step.chRuns[:0], sc.colRuns...)
	step.outOff = grown(step.outOff, outRows+1)
	step.outOff[0] = 0
	step.outRuns = step.outRuns[:0]
	od := aDig[:M-1]
	for f := range od {
		od[f] = 0
	}
	sumO := int32(0)
	for r := 0; r < outRows; r++ {
		eff := max(outLen-sumO, 0)
		base := r * int(outLen)
		decodeRuns32(rows[r], out[base:base+int(eff)], pUnreached)
		for i := base + int(eff); i < base+int(outLen); i++ {
			out[i] = pUnreached
		}
		step.outRuns = append(step.outRuns, rows[r]...)
		step.outOff[r+1] = int32(len(step.outRuns))
		bumpDigits(od, outLen, &sumO)
	}
	return true
}

// envMinInto folds src into the accumulated row acc, using spare as
// the envMin destination, and returns the new row plus the displaced
// buffer (so the two storages ping-pong without allocating).
func envMinInto(acc, src, spare []bpRun) (row, next []bpRun) {
	if len(acc) == 0 {
		return append(acc, src...), spare
	}
	return envMin(acc, src, spare[:0]), acc
}

// decodeStep expands the output snapshot of a compressed merge step
// back into a dense table — the accumulated input of the step after
// it, used by the suffix replays of solveNode — restoring the
// unreached tails past each row's effective length.
func decodeStep(step *pStep, dst []int32, M int) {
	outLen := step.outLen
	rows := len(step.outOff) - 1
	var dig [maxPowerDigits]int32
	dg := dig[:M-1]
	sum := int32(0)
	for r := 0; r < rows; r++ {
		eff := max(outLen-sum, 0)
		base := r * int(outLen)
		decodeRuns32(step.outRuns[step.outOff[r]:step.outOff[r+1]], dst[base:base+int(eff)], pUnreached)
		for i := base + int(eff); i < base+int(outLen); i++ {
			dst[i] = pUnreached
		}
		bumpDigits(dg, outLen, &sum)
	}
}

// lazyProv re-derives the provenance of one output cell of a
// compressed merge step: the first (acc cell, child cell, mode) triple
// in the dense kernel's scan order — exactly the packProv order — that
// achieves the cell's value. Returns noProv when the cell is
// unreached.
func (st *pStep) lazyProv(cell int32, caps []int, M int) uint64 {
	accLen, chLen, outLen := st.accLen, st.chLen, st.outLen
	outRow := cell / outLen
	k := cell % outLen
	vstar := bpAt(st.outRuns[st.outOff[outRow]:st.outOff[outRow+1]], k)
	if vstar >= bpInfVal {
		return noProv
	}

	// Child row-space weights.
	var chW [maxPowerDigits]int32
	w := int32(1)
	for f := M - 2; f >= 0; f-- {
		chW[f] = w
		w *= chLen
	}

	// Decompose the output row and walk the acc rows inside the
	// componentwise box [0, min(outDig, accLen-1)] in ascending flat
	// order — ascending acc cell, the leading key of packProv.
	var outDig, aDig, limDig, cDig [maxPowerDigits]int32
	rem := outRow
	for f := M - 2; f >= 0; f-- {
		outDig[f] = rem % outLen
		rem /= outLen
	}
	for f := 0; f < M-1; f++ {
		limDig[f] = min(outDig[f], accLen-1)
	}

	for {
		arIdx, sumA := int32(0), int32(0)
		for f := 0; f < M-1; f++ {
			arIdx = arIdx*accLen + aDig[f]
			sumA += aDig[f]
		}
		aRuns := st.inRuns[st.inOff[arIdx]:st.inOff[arIdx+1]]
		if len(aRuns) != 0 {
			// Child digits for the no-place and mode-M options; a mode-m
			// place reduces digit m-1 by one, which may repair a single
			// out-of-range digit.
			raw, sumC, bad := int32(0), int32(0), int32(-1)
			for f := 0; f < M-1; f++ {
				c := outDig[f] - aDig[f]
				cDig[f] = c
				raw += c * chW[f]
				sumC += c
				if c >= chLen {
					if bad == -1 {
						bad = int32(f)
					} else {
						bad = -2
					}
				}
			}
			if p := st.lazyProvRow(aRuns, arIdx, sumA, k, vstar, raw, sumC, bad, cDig[:M-1], chW[:M-1], caps, M); p != noProv {
				return p
			}
		}
		f := M - 2
		for ; f >= 0; f-- {
			if aDig[f] < limDig[f] {
				aDig[f]++
				break
			}
			aDig[f] = 0
		}
		if f < 0 {
			return noProv
		}
	}
}

// lazyProvRow scans one acc row's runs, in ascending cell order, for
// the first run holding a provenance candidate of the target cell, and
// returns the minimal candidate of that run (later runs only produce
// larger packed triples).
func (st *pStep) lazyProvRow(aRuns []bpRun, arIdx, sumA, k int32, vstar int64, raw, sumC, bad int32, cDig []int32, chW []int32, caps []int, M int) uint64 {
	accLen, chLen := st.accLen, st.chLen
	accEff := accLen - sumA
	aFlatBase := int(arIdx) * int(accLen)
	for p := range aRuns {
		aS := aRuns[p].start
		aE := accEff
		if p+1 < len(aRuns) {
			aE = aRuns[p+1].start
		}
		a := aRuns[p].val
		best := noProv

		// No-place: a child cell with value exactly vstar - a at c = k-i.
		if bad == -1 && a <= vstar {
			cRuns := st.chRuns[st.chOff[raw]:st.chOff[raw+1]]
			chEff := chLen - sumC
			target := vstar - a
			for q := range cRuns {
				if cRuns[q].val > target {
					continue
				}
				if cRuns[q].val == target {
					cl := cRuns[q].start
					cr := chEff - 1
					if q+1 < len(cRuns) {
						cr = cRuns[q+1].start - 1
					}
					iMin := max(aS, k-cr)
					if iMin < aE && iMin <= k-cl {
						best = min(best, packProv(aFlatBase+int(iMin), int(raw)*int(chLen)+int(k-iMin), 0))
					}
				}
				break
			}
		}

		if a == vstar {
			// Mode-M place: any feasible child cell at c = k-1-i.
			if bad == -1 {
				cRuns := st.chRuns[st.chOff[raw]:st.chOff[raw+1]]
				if len(cRuns) != 0 {
					chEff := chLen - sumC
					cFirst, cLast := cRuns[0].start, chEff-1
					iMin := max(aS, k-1-cLast)
					if iMin < aE && iMin <= k-1-cFirst {
						best = min(best, packProv(aFlatBase+int(iMin), int(raw)*int(chLen)+int(k-1-iMin), uint8(M)))
					}
				}
			}
			// Mode-m place (m < M): child cells mode m can carry, at
			// c = k-i, in the row with digit m-1 reduced by one.
			for m := 1; m < M; m++ {
				ok := cDig[m-1] >= 1 && (bad == -1 || (bad == int32(m-1) && cDig[m-1] == chLen))
				if !ok {
					continue
				}
				crIdx := raw - chW[m-1]
				cRuns := st.chRuns[st.chOff[crIdx]:st.chOff[crIdx+1]]
				sm := int32(-1)
				for _, run := range cRuns {
					if run.val <= int64(caps[m-1]) {
						sm = run.start
						break
					}
				}
				if sm < 0 {
					continue
				}
				chEff := chLen - (sumC - 1)
				iMin := max(aS, k-(chEff-1))
				if iMin < aE && iMin <= k-sm {
					best = min(best, packProv(aFlatBase+int(iMin), int(crIdx)*int(chLen)+int(k-iMin), uint8(m)))
				}
			}
		}

		if best != noProv {
			return best
		}
	}
	return noProv
}
