// Package core implements the paper's primary contribution: exact
// dynamic-programming algorithms for replica placement and update in
// tree networks.
//
//   - MinCost solves MinCost-WithPre (Theorem 1): given pre-existing
//     servers, find a placement of minimal reconfiguration cost
//     cost(R) = R + (R−e)·create + (E−e)·delete. The classical
//     MinCost-NoPre problem is the E=∅ special case.
//   - SolvePower solves MinPower and MinPower-BoundedCost (Theorem 3)
//     for a fixed number of server modes, with or without pre-existing
//     servers, and exposes the full cost/power Pareto front. MinPower
//     with an arbitrary number of modes is NP-complete (Theorem 2, see
//     package npc); the algorithm here is exponential in M only.
//
// Both dynamic programs assume the closest access policy
// (tree.PolicyClosest): Lemma 1's "requests traversing a node" argument
// relies on every request being absorbed by the first equipped ancestor.
// They are not valid under the relaxed upwards/multiple policies of
// tree.Policy; for those, the exhaustive BruteFeasible /
// BruteMinReplicasPolicy searches in this package are the exact
// (exponential) references, and the greedy and heuristic packages
// provide polynomial baselines.
//
// Both algorithms follow the paper's structure — a bottom-up traversal
// that merges children one at a time, where the table entry for a given
// "server budget" in a subtree records the minimal number of requests
// forced to traverse the subtree's root (Lemma 1) — with two
// implementation refinements documented in DESIGN.md: tables are bounded
// by per-subtree counts rather than global ones, and solutions are
// reconstructed from per-merge back-pointers instead of per-cell request
// vectors.
//
// # The monotone-row contract
//
// Every DP row produced by the solvers — traversals indexed by server
// budget in MinCost and QoS, and by the count of top-mode servers (the
// innermost axis) in the no-pre power tables — obeys one invariant:
// infeasible cells form a prefix of the row, and past it the values are
// non-increasing in the budget (equipping one more server never forces
// more requests upward). Such a row is stored exactly as its
// breakpoints: the short list of (start, value) runs where the value
// changes (breakrow.go). Rows at least minDenseWidth wide run the merge
// kernels directly on runs — min-plus convolution, pointwise minimum
// and prefix folds are linear in the number of breakpoints instead of
// the row width — while narrow rows keep the dense kernels. The
// contract is verified at encode time (a violating row falls back to
// dense, so compression is exact unconditionally), decisions are
// reconstructed lazily from the runs, and results are byte-identical to
// the dense kernels — same placements, fronts and tie-breaks — which
// the compressed_test.go differential suite enforces across drift
// sequences and worker counts. In the power tables the invariant holds
// within each row's effective length (the node budget left after the
// other mode counts); the tail beyond it is unreachable by pigeonhole,
// which the encoder also verifies cell by cell.
package core
