// Package core implements the paper's primary contribution: exact
// dynamic-programming algorithms for replica placement and update in
// tree networks.
//
//   - MinCost solves MinCost-WithPre (Theorem 1): given pre-existing
//     servers, find a placement of minimal reconfiguration cost
//     cost(R) = R + (R−e)·create + (E−e)·delete. The classical
//     MinCost-NoPre problem is the E=∅ special case.
//   - SolvePower solves MinPower and MinPower-BoundedCost (Theorem 3)
//     for a fixed number of server modes, with or without pre-existing
//     servers, and exposes the full cost/power Pareto front. MinPower
//     with an arbitrary number of modes is NP-complete (Theorem 2, see
//     package npc); the algorithm here is exponential in M only.
//
// Both dynamic programs assume the closest access policy
// (tree.PolicyClosest): Lemma 1's "requests traversing a node" argument
// relies on every request being absorbed by the first equipped ancestor.
// They are not valid under the relaxed upwards/multiple policies of
// tree.Policy; for those, the exhaustive BruteFeasible /
// BruteMinReplicasPolicy searches in this package are the exact
// (exponential) references, and the greedy and heuristic packages
// provide polynomial baselines.
//
// Both algorithms follow the paper's structure — a bottom-up traversal
// that merges children one at a time, where the table entry for a given
// "server budget" in a subtree records the minimal number of requests
// forced to traverse the subtree's root (Lemma 1) — with two
// implementation refinements documented in DESIGN.md: tables are bounded
// by per-subtree counts rather than global ones, and solutions are
// reconstructed from per-merge back-pointers instead of per-cell request
// vectors.
package core
