package core

import (
	"fmt"
	"math"

	"replicatree/internal/cost"
	"replicatree/internal/tree"
)

// maxReferenceNodes bounds the faithful implementation: with global
// table dimensions its running time is the paper's full
// O(N·(N−E+1)²·(E+1)²) on every instance, so it is kept to sizes where
// that is still fast enough for differential tests.
const maxReferenceNodes = 48

// MinCostPaperReference solves MinCost-WithPre with a line-by-line
// transcription of the paper's Algorithms 1-4: every node carries a
// table over the GLOBAL dimensions (E+1)×(N−E+1) (not the
// subtree-bounded ones the optimised MinCost uses), solutions are
// carried as per-cell request vectors req_j(e,n)(j'), and the root scan
// evaluates exactly the paper's three cost branches.
//
// It exists as a reference oracle: tests check the optimised MinCost
// against it, and BenchmarkAblationPaperReference quantifies what the
// subtree-bounded tables and back-pointer reconstruction buy.
//
// Three conscious repairs of the printed pseudo-code: a request vector
// entry distinguishes "no server" (-1) from "server with zero load"
// (0), where Algorithm 4's reconstruction (req > 0) would silently
// drop zero-load servers its own scan had priced; like the paper (but
// unlike the optimised MinCost), a pre-existing root with zero
// traversing requests is never kept, so the two implementations are
// only compared for delete <= 1 where that branch cannot win; and
// Algorithm 4's running minimum starts at infinity rather than the
// paper's N·(1+create+delete) seed — the seed is a valid upper bound
// on the optimal cost but not a strict one (equip every node: exactly
// N servers, N−E creations, E deletions ≥ the optimum), so a strict
// less-than against it rejects every candidate whenever the optimum
// attains the bound (e.g. any tree whose only solution equips all
// nodes, with delete = 0) and misreports the instance as infeasible.
func MinCostPaperReference(t *tree.Tree, existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	if t.N() > maxReferenceNodes {
		return nil, fmt.Errorf("core: paper-reference solver limited to %d nodes, got %d", maxReferenceNodes, t.N())
	}
	if existing.N() != t.N() {
		return nil, fmt.Errorf("core: existing set covers %d nodes, tree has %d", existing.N(), t.N())
	}
	if W <= 0 {
		return nil, fmt.Errorf("core: non-positive capacity %d", W)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}

	r := &refDP{
		t:        t,
		existing: existing,
		w:        W,
		e:        existing.Count(),
	}
	r.nMax = t.N() - r.e // the paper's N − E
	r.init()
	if err := r.main(t.Root()); err != nil {
		return nil, err
	}
	return r.replicaUpdate(c)
}

// refDP mirrors the paper's variables: minr[j][e][n] and
// req[j][e][n][j'], with minr = W+1 marking "no solution" and
// req = -1 marking "no server at j'".
type refDP struct {
	t        *tree.Tree
	existing *tree.Replicas
	w        int
	e        int // E
	nMax     int // N − E

	minr [][][]int
	req  [][][][]int16
}

// init is Algorithm 1: allocate and default every table.
func (r *refDP) init() {
	n := r.t.N()
	r.minr = make([][][]int, n)
	r.req = make([][][][]int16, n)
	for j := 0; j < n; j++ {
		r.minr[j] = make([][]int, r.e+1)
		r.req[j] = make([][][]int16, r.e+1)
		for e := 0; e <= r.e; e++ {
			r.minr[j][e] = make([]int, r.nMax+1)
			r.req[j][e] = make([][]int16, r.nMax+1)
			for nn := 0; nn <= r.nMax; nn++ {
				r.minr[j][e][nn] = r.w + 1 // no solution
			}
		}
	}
}

// main is Algorithm 2: initialise from client children, then merge
// internal children one by one.
func (r *refDP) main(j int) error {
	client := r.t.ClientSum(j)
	r.minr[j][0][0] = client
	r.req[j][0][0] = r.emptyReq()
	if client > r.w {
		return fmt.Errorf("core: %w", ErrInfeasible)
	}
	for _, i := range r.t.Children(j) {
		if err := r.main(i); err != nil {
			return err
		}
		r.merge(j, i)
	}
	return nil
}

func (r *refDP) emptyReq() []int16 {
	req := make([]int16, r.t.N())
	for i := range req {
		req[i] = -1
	}
	return req
}

// merge is Algorithm 3 with the paper's own optimisation of moving the
// O(N) request-vector copy out of the quadruple loop: the loop records
// the best provenance per (e, n) and a second pass materialises the
// request vectors.
func (r *refDP) merge(j, i int) {
	childPre := r.existing.Has(i)

	// Duplicate the table of node j (tminr/treq) and clean it up.
	tminr := make([][]int, r.e+1)
	treq := make([][][]int16, r.e+1)
	for e := 0; e <= r.e; e++ {
		tminr[e] = append([]int(nil), r.minr[j][e]...)
		treq[e] = r.req[j][e]
		r.req[j][e] = make([][]int16, r.nMax+1)
		for nn := 0; nn <= r.nMax; nn++ {
			r.minr[j][e][nn] = r.w + 1
		}
	}

	type choice struct {
		ePrev, nPrev int
		place        bool
	}
	best := make([][]choice, r.e+1)
	for e := range best {
		best[e] = make([]choice, r.nMax+1)
	}

	// Try all solutions with e existing and n new replicas.
	for e := 0; e <= r.e; e++ {
		for n := 0; n <= r.nMax; n++ {
			for ep := 0; ep <= e; ep++ {
				for np := 0; np <= n; np++ {
					tv := tminr[ep][np]
					if tv > r.w {
						continue
					}
					// e' existing and n' new on the children already
					// processed, the rest in the subtree of i, no
					// replica on i.
					cv := r.minr[i][e-ep][n-np]
					if cv <= r.w && cv+tv <= min(r.w, r.minr[j][e][n]) {
						r.minr[j][e][n] = cv + tv
						best[e][n] = choice{ePrev: ep, nPrev: np}
					}
					// Replica on i.
					if childPre && ep < e {
						if r.minr[i][e-ep-1][n-np] <= r.w && tv <= r.minr[j][e][n] {
							r.minr[j][e][n] = tv
							best[e][n] = choice{ePrev: ep, nPrev: np, place: true}
						}
					} else if !childPre && np < n {
						if r.minr[i][e-ep][n-np-1] <= r.w && tv <= r.minr[j][e][n] {
							r.minr[j][e][n] = tv
							best[e][n] = choice{ePrev: ep, nPrev: np, place: true}
						}
					}
				}
			}
		}
	}

	// Second pass: copy the request vectors of the winning choices.
	for e := 0; e <= r.e; e++ {
		for n := 0; n <= r.nMax; n++ {
			if r.minr[j][e][n] > r.w {
				continue
			}
			ch := best[e][n]
			ce, cn := e-ch.ePrev, n-ch.nPrev
			if ch.place {
				if childPre {
					ce--
				} else {
					cn--
				}
			}
			req := append([]int16(nil), treq[ch.ePrev][ch.nPrev]...)
			for _, jp := range r.t.SubtreeNodes(i) {
				req[jp] = r.req[i][ce][cn][jp]
			}
			if ch.place {
				req[i] = int16(r.minr[i][ce][cn])
			} else {
				req[i] = -1
			}
			r.req[j][e][n] = req
		}
	}
}

// replicaUpdate is Algorithm 4: scan the root table with the paper's
// three cost branches and rebuild the replica set from the request
// vector.
func (r *refDP) replicaUpdate(c cost.Simple) (*MinCostResult, error) {
	root := r.t.Root()
	rootPre := r.existing.Has(root)
	cmin := math.Inf(1) // see the repair note: the paper's seed bound is not strict
	bestE, bestN := -1, -1
	bestServers, bestReused := 0, 0
	placeRoot := false

	for e := 0; e <= r.e; e++ {
		for n := 0; n <= r.nMax; n++ {
			v := r.minr[root][e][n]
			var cc float64
			var servers, reused int
			var withRoot bool
			switch {
			case v == 0:
				servers, reused, withRoot = e+n, e, false
				cc = c.Of(servers, reused, r.e)
			case v <= r.w && rootPre:
				servers, reused, withRoot = e+n+1, e+1, true
				cc = c.Of(servers, reused, r.e)
			case v <= r.w:
				servers, reused, withRoot = e+n+1, e, true
				cc = c.Of(servers, reused, r.e)
			default:
				continue
			}
			if cc < cmin {
				cmin = cc
				bestE, bestN = e, n
				bestServers, bestReused = servers, reused
				placeRoot = withRoot
			}
		}
	}
	if bestE < 0 {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}

	placement := tree.NewReplicas(r.t.N())
	req := r.req[root][bestE][bestN]
	for j := 0; j < r.t.N(); j++ {
		if req[j] >= 0 {
			placement.Set(j, 1)
		}
	}
	if placeRoot {
		placement.Set(root, 1)
	}
	return &MinCostResult{
		Placement: placement,
		Cost:      cmin,
		Servers:   bestServers,
		Reused:    bestReused,
		New:       bestServers - bestReused,
	}, nil
}
