package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// fig1Tree is the paper's Figure 1 topology: root (node 0) with an
// optional client, child A=1, grandchildren B=2 (client 4) and C=3
// (client 7). The pre-existing server sits on B.
func fig1Tree(rootReq int) (*tree.Tree, *tree.Replicas) {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	cc := b.AddNode(a)
	b.AddClient(bb, 4)
	b.AddClient(cc, 7)
	if rootReq > 0 {
		b.AddClient(b.Root(), rootReq)
	}
	t := b.MustBuild()
	ex := tree.ReplicasOf(t)
	ex.Set(bb, 1)
	return t, ex
}

// TestPaperFigure1 encodes the running example of Section 3.1: with two
// root requests the pre-existing server at B should be reused; with four
// root requests it becomes useless and the optimum places new servers at
// C and the root.
func TestPaperFigure1(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	const A, B, C = 1, 2, 3

	tr, ex := fig1Tree(2)
	res, err := MinCost(tr, ex, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	// {B, root}: 2 servers, 1 reused: 2 + 0.1 = 2.1.
	if !almost(res.Cost, 2.1) {
		t.Fatalf("cost = %v, want 2.1", res.Cost)
	}
	if !res.Placement.Has(B) || !res.Placement.Has(0) || res.Placement.Count() != 2 {
		t.Fatalf("placement = %v, want {B, root}", res.Placement)
	}
	if res.Reused != 1 || res.Servers != 2 {
		t.Fatalf("servers=%d reused=%d", res.Servers, res.Reused)
	}

	tr, ex = fig1Tree(4)
	res, err = MinCost(tr, ex, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	// {C, root}: 2 servers, 0 reused, 1 deleted: 2 + 0.2 + 0.01 = 2.21.
	if !almost(res.Cost, 2.21) {
		t.Fatalf("cost = %v, want 2.21", res.Cost)
	}
	if !res.Placement.Has(C) || !res.Placement.Has(0) || res.Placement.Has(B) || res.Placement.Has(A) {
		t.Fatalf("placement = %v, want {C, root}", res.Placement)
	}
	if err := tree.ValidateUniform(tr, res.Placement, 10); err != nil {
		t.Fatal(err)
	}
}

func TestMinCostNoPreMatchesGreedy(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		tr := tree.MustGenerate(tree.FatConfig(60), rng.Derive(seed, 3))
		want, err := greedy.MinReplicas(tr, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MinReplicaCount(tr, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Count() {
			t.Fatalf("seed %d: DP count %d, greedy %d", seed, got, want.Count())
		}
	}
}

func TestMinCostValidatesArgs(t *testing.T) {
	tr, ex := fig1Tree(2)
	if _, err := MinCost(tr, tree.NewReplicas(2), 10, cost.Simple{}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := MinCost(tr, ex, 0, cost.Simple{}); err == nil {
		t.Error("W=0 accepted")
	}
	if _, err := MinCost(tr, ex, 10, cost.Simple{Create: -1}); err == nil {
		t.Error("negative create accepted")
	}
	if _, err := MinCost(tr, ex, math.MaxInt32, cost.Simple{}); err == nil {
		t.Error("overflow-prone capacity accepted")
	}
}

func TestMinCostInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	b.AddClient(0, 50)
	tr := b.MustBuild()
	_, err := MinCost(tr, nil, 10, cost.Simple{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestMinCostEmptyTree(t *testing.T) {
	b := tree.NewBuilder()
	b.AddNode(0)
	tr := b.MustBuild()
	res, err := MinCost(tr, nil, 5, cost.Simple{Create: 0.1, Delete: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 0 || res.Cost != 0 {
		t.Fatalf("empty tree: %+v", res)
	}
}

// TestMinCostKeepsUselessServersWhenDeleteIsExpensive exercises the root
// scan extension: with delete > 1 it is cheaper to keep a pre-existing
// server running idle than to delete it.
func TestMinCostKeepsUselessServersWhenDeleteIsExpensive(t *testing.T) {
	// Root pre-existing, no clients at all.
	b := tree.NewBuilder()
	b.AddNode(0)
	tr := b.MustBuild()
	ex := tree.ReplicasOf(tr)
	ex.Set(0, 1)
	res, err := MinCost(tr, ex, 10, cost.Simple{Create: 0.1, Delete: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Has(0) || !almost(res.Cost, 1) {
		t.Fatalf("want idle root kept at cost 1, got %v cost %v", res.Placement, res.Cost)
	}

	// Same with a non-root pre-existing server (handled by the merge).
	ex2 := tree.ReplicasOf(tr)
	ex2.Set(1, 1)
	res, err = MinCost(tr, ex2, 10, cost.Simple{Create: 0.1, Delete: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Has(1) || !almost(res.Cost, 1) {
		t.Fatalf("want idle child kept at cost 1, got %v cost %v", res.Placement, res.Cost)
	}

	// With cheap deletion both are dropped.
	res, err = MinCost(tr, ex2, 10, cost.Simple{Create: 0.1, Delete: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Count() != 0 || !almost(res.Cost, 0.01) {
		t.Fatalf("want empty placement at cost 0.01, got %v cost %v", res.Placement, res.Cost)
	}
}

func TestMinCostDeterministic(t *testing.T) {
	tr := tree.MustGenerate(tree.FatConfig(80), rng.New(5))
	ex, err := tree.RandomReplicas(tr, 20, 1, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	a, err := MinCost(tr, ex, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCost(tr, ex, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Placement.Equal(b.Placement) || a.Cost != b.Cost {
		t.Fatal("two runs differ")
	}
}

func TestMinCostSolutionAlwaysValid(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		src := rng.Derive(seed, 4)
		tr := tree.MustGenerate(tree.FatConfig(1+src.IntN(120)), src)
		ex, err := tree.RandomReplicas(tr, src.IntN(tr.N()+1), 1, src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MinCost(tr, ex, 10, cost.Simple{Create: 0.1, Delete: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.ValidateUniform(tr, res.Placement, 10); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Reported numbers must match the placement.
		if res.Servers != res.Placement.Count() || res.Reused != res.Placement.Reused(ex) {
			t.Fatalf("seed %d: stats mismatch", seed)
		}
	}
}

// randomSmallInstance draws instances small enough for brute force.
func randomSmallInstance(seed uint64) (*tree.Tree, *tree.Replicas, int, cost.Simple) {
	src := rng.Derive(seed, 5)
	cfg := tree.GenConfig{
		Nodes:       1 + src.IntN(10),
		MinChildren: 1 + src.IntN(2),
		MaxChildren: 3,
		ClientProb:  0.7,
		ReqMin:      1,
		ReqMax:      6,
	}
	tr := tree.MustGenerate(cfg, src)
	ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()+1), 1, src)
	W := 4 + src.IntN(9)
	// Include delete > 1 occasionally to exercise the keep-idle branch.
	c := cost.Simple{
		Create: float64(src.IntN(30)) / 20,
		Delete: float64(src.IntN(30)) / 20,
	}
	return tr, ex, W, c
}

// Property: the DP cost equals the exhaustive optimum, for arbitrary
// small instances including delete-dominant cost settings.
func TestQuickMinCostMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		tr, ex, W, c := randomSmallInstance(seed)
		want, errB := BruteMinCost(tr, ex, W, c)
		got, errD := MinCost(tr, ex, W, c)
		if errB != nil || errD != nil {
			return errors.Is(errB, ErrInfeasible) == errors.Is(errD, ErrInfeasible)
		}
		if !almost(got.Cost, want.Cost) {
			t.Logf("seed %d: DP cost %v, brute %v", seed, got.Cost, want.Cost)
			return false
		}
		// The DP's own placement must realise its reported cost.
		if tree.ValidateUniform(tr, got.Placement, W) != nil {
			return false
		}
		return almost(c.OfReplicas(got.Placement, ex), got.Cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property: with zero prices the DP minimises the number of servers and
// matches the greedy count.
func TestQuickMinCostCountMatchesGreedy(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 6)
		tr := tree.MustGenerate(tree.FatConfig(1+src.IntN(80)), src)
		W := 7 + src.IntN(6)
		g, errG := greedy.MinReplicas(tr, W)
		count, errD := MinReplicaCount(tr, W)
		if errG != nil || errD != nil {
			return (errG != nil) == (errD != nil)
		}
		return count == g.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding pre-existing servers never increases the optimal cost
// when deletion is free.
func TestQuickPreExistingNeverHurtsWithFreeDelete(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 7)
		tr := tree.MustGenerate(tree.FatConfig(1+src.IntN(60)), src)
		c := cost.Simple{Create: 0.5, Delete: 0}
		base, err := MinCost(tr, nil, 10, c)
		if err != nil {
			return false
		}
		ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()+1), 1, src)
		withPre, err := MinCost(tr, ex, 10, c)
		if err != nil {
			return false
		}
		return withPre.Cost <= base.Cost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimum never pays more than the greedy placement
// evaluated with the same cost model.
func TestQuickMinCostBeatsGreedyWitness(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 8)
		tr := tree.MustGenerate(tree.FatConfig(1+src.IntN(80)), src)
		ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()+1), 1, src)
		c := cost.Simple{Create: 0.1, Delete: 0.01}
		g, errG := greedy.MinReplicas(tr, 10)
		opt, errD := MinCost(tr, ex, 10, c)
		if errG != nil || errD != nil {
			return (errG != nil) && (errD != nil)
		}
		return opt.Cost <= c.OfReplicas(g, ex)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteMinCostRejectsLargeTrees(t *testing.T) {
	tr := tree.MustGenerate(tree.FatConfig(maxBruteNodes+1), rng.New(1))
	if _, err := BruteMinCost(tr, nil, 10, cost.Simple{}); err == nil {
		t.Fatal("large tree accepted")
	}
}
