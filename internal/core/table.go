package core

import "fmt"

// maxTableCells bounds the size of any single DP table. The power DP is
// exponential in the number of modes; instances whose tables exceed this
// bound return an error instead of exhausting memory.
const maxTableCells = 1 << 27

// shape describes a dense multi-dimensional DP table in row-major order
// (last field fastest). Dims are exclusive bounds: a field with bound b
// takes values 0..b-1.
type shape struct {
	dims    []int32
	strides []int32
	size    int
}

func newShape(dims []int32) (shape, error) {
	return fillShape(dims, make([]int32, len(dims)))
}

// fillShape is newShape with caller-provided stride storage, so arena
// allocators can build shapes without a heap allocation.
func fillShape(dims, strides []int32) (shape, error) {
	s := shape{dims: dims, strides: strides}
	size := int64(1)
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i] < 1 {
			return shape{}, fmt.Errorf("core: non-positive table dimension %d", dims[i])
		}
		s.strides[i] = int32(size)
		size *= int64(dims[i])
		if size > maxTableCells {
			return shape{}, fmt.Errorf("core: DP table would need %d+ cells (limit %d); reduce tree size, modes or pre-existing servers", size, maxTableCells)
		}
	}
	s.size = int(size)
	return s, nil
}

// odometer iterates the cells of a table in flat (row-major) order while
// maintaining the cell's coordinates and the corresponding partial index
// in another table's stride space. This lets merge loops add two cells'
// output positions without per-cell multiplication.
type odometer struct {
	dims   []int32
	ostr   []int32 // stride of each field in the output space
	coords []int32
	out    int32 // sum over fields of coords[f]*ostr[f]
}

func newOdometer(dims, outStrides []int32) *odometer {
	return &odometer{dims: dims, ostr: outStrides, coords: make([]int32, len(dims))}
}

// init readies a caller-owned odometer with caller-provided coordinate
// storage (zeroed here), avoiding the heap allocations of newOdometer in
// arena-backed merge loops.
func (o *odometer) init(dims, outStrides, coords []int32) {
	o.dims, o.ostr, o.coords = dims, outStrides, coords
	o.reset()
}

// odometerAt returns an odometer positioned at the given flat index,
// enabling parallel workers to scan disjoint table ranges.
func odometerAt(dims, outStrides []int32, flat int) *odometer {
	o := newOdometer(dims, outStrides)
	// Row-major decomposition of flat into coordinates: a field's own
	// stride is the product of the trailing dimensions.
	own := make([]int32, len(dims))
	s := int32(1)
	for f := len(dims) - 1; f >= 0; f-- {
		own[f] = s
		s *= dims[f]
	}
	rem := int32(flat)
	for f := 0; f < len(dims); f++ {
		o.coords[f] = rem / own[f]
		rem %= own[f]
		o.out += o.coords[f] * outStrides[f]
	}
	return o
}

// next advances to the following cell, returning false after the last
// cell wraps around to all-zero coordinates.
func (o *odometer) next() bool {
	for f := len(o.dims) - 1; f >= 0; f-- {
		o.coords[f]++
		o.out += o.ostr[f]
		if o.coords[f] < o.dims[f] {
			return true
		}
		o.coords[f] = 0
		o.out -= o.dims[f] * o.ostr[f]
	}
	return false
}

// reset returns the odometer to the all-zero cell.
func (o *odometer) reset() {
	for f := range o.coords {
		o.coords[f] = 0
	}
	o.out = 0
}
