package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// fig2Instance is the paper's Figure 2 running example: modes {7, 10},
// power 10 + W², root with rootReq requests, A under the root, B (3
// requests) and C (7 requests) under A.
func fig2Instance(rootReq int) (*tree.Tree, power.Model) {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	cc := b.AddNode(a)
	b.AddClient(bb, 3)
	b.AddClient(cc, 7)
	if rootReq > 0 {
		b.AddClient(b.Root(), rootReq)
	}
	return b.MustBuild(), power.MustNew([]int{7, 10}, 10, 2)
}

func freeCost(modes int) cost.Modal { return cost.UniformModal(modes, 0, 0, 0) }

// TestPaperFigure2 encodes the running example of Section 4.1: with four
// root requests the optimum lets 3 requests traverse A (server at C at
// mode W1 plus the root at W1, power 118); with ten root requests the
// root is saturated, forcing a W2 server at A (power 220).
func TestPaperFigure2(t *testing.T) {
	const A, B, C = 1, 2, 3

	tr, pm := fig2Instance(4)
	s, err := SolvePower(PowerProblem{Tree: tr, Power: pm, Cost: freeCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	res := s.MinPower()
	if !almost(res.Power, 118) {
		t.Fatalf("power = %v, want 118 (2 servers at W1)", res.Power)
	}
	if !res.Placement.Has(C) || !res.Placement.Has(0) || res.Placement.Count() != 2 {
		t.Fatalf("placement = %v, want {C, root}", res.Placement)
	}
	if res.Placement.Mode(C) != 1 || res.Placement.Mode(0) != 1 {
		t.Fatalf("modes = %v, want both W1", res.Placement)
	}

	tr, pm = fig2Instance(10)
	s, err = SolvePower(PowerProblem{Tree: tr, Power: pm, Cost: freeCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	res = s.MinPower()
	if !almost(res.Power, 220) {
		t.Fatalf("power = %v, want 220 (A and root at W2)", res.Power)
	}
	if !res.Placement.Has(A) || res.Placement.Mode(A) != 2 {
		t.Fatalf("placement = %v, want A at W2", res.Placement)
	}
	_ = B
}

// TestFigure2SingleServerBeatsTwoSlow checks the example's power
// comparison: one W2 server at A consumes less than W1 servers at both B
// and C (10 + 100 < 2·(10 + 49)).
func TestFigure2SingleServerBeatsTwoSlow(t *testing.T) {
	_, pm := fig2Instance(0)
	if pm.NodePower(2) >= 2*pm.NodePower(1) {
		t.Fatalf("model broken: P(W2)=%v, 2P(W1)=%v", pm.NodePower(2), 2*pm.NodePower(1))
	}
}

func TestSolvePowerValidatesArgs(t *testing.T) {
	tr, pm := fig2Instance(4)
	if _, err := SolvePower(PowerProblem{Tree: nil, Power: pm, Cost: freeCost(2)}); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := SolvePower(PowerProblem{Tree: tr, Existing: tree.NewReplicas(2), Power: pm, Cost: freeCost(2)}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := SolvePower(PowerProblem{Tree: tr, Power: power.Model{}, Cost: freeCost(2)}); err == nil {
		t.Error("invalid power model accepted")
	}
	if _, err := SolvePower(PowerProblem{Tree: tr, Power: pm, Cost: freeCost(3)}); err == nil {
		t.Error("mode count mismatch accepted")
	}
	ex := tree.ReplicasOf(tr)
	ex.Set(0, 3)
	if _, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: freeCost(2)}); err == nil {
		t.Error("existing mode above M accepted")
	}
}

func TestSolvePowerInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	b.AddClient(0, 11)
	tr := b.MustBuild()
	_, err := SolvePower(PowerProblem{Tree: tr, Power: power.MustNew([]int{7, 10}, 10, 2), Cost: freeCost(2)})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestFrontShape(t *testing.T) {
	tr, pm := fig2Instance(4)
	cm := cost.UniformModal(2, 0.5, 0.1, 0.05)
	ex := tree.ReplicasOf(tr)
	ex.Set(2, 1)
	s, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	front := s.Front()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for i := 1; i < len(front); i++ {
		if front[i].Cost <= front[i-1].Cost {
			t.Fatalf("front costs not increasing: %v", front)
		}
		if front[i].Power >= front[i-1].Power {
			t.Fatalf("front powers not decreasing: %v", front)
		}
	}
	// Every front point is achievable at exactly its cost.
	for i, pt := range front {
		res, ok := s.Best(pt.Cost)
		if !ok {
			t.Fatalf("front point %d not reachable", i)
		}
		if !almost(res.Power, pt.Power) || !almost(res.Cost, pt.Cost) {
			t.Fatalf("Best(%v) = (%v,%v), want (%v,%v)", pt.Cost, res.Cost, res.Power, pt.Cost, pt.Power)
		}
		at := s.At(i)
		if !almost(at.Power, pt.Power) {
			t.Fatalf("At(%d) power %v, want %v", i, at.Power, pt.Power)
		}
	}
	// Below the cheapest cost there is no solution.
	if _, ok := s.Best(front[0].Cost - 1e-6); ok {
		t.Fatal("solution below minimal cost")
	}
}

func TestBestMonotoneInBound(t *testing.T) {
	tr, pm := fig2Instance(4)
	cm := cost.UniformModal(2, 0.5, 0.1, 0.05)
	s, err := SolvePower(PowerProblem{Tree: tr, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for bound := 1.0; bound < 8; bound += 0.25 {
		res, ok := s.Best(bound)
		if !ok {
			continue
		}
		if res.Power > prev+1e-9 {
			t.Fatalf("power increased with larger bound at %v", bound)
		}
		prev = res.Power
	}
}

// TestReusedServerStaysAtInitialModeForFree exercises the subtle case
// where keeping a reused server at its (higher) initial mode avoids the
// change cost: with a tight bound the optimum pays more power instead.
func TestReusedServerStaysAtInitialModeForFree(t *testing.T) {
	// Single node with a 3-request client; pre-existing server at the
	// root with initial mode 2. Downgrading to W1 costs 10, staying
	// costs nothing.
	b := tree.NewBuilder()
	b.AddClient(0, 3)
	tr := b.MustBuild()
	pm := power.MustNew([]int{5, 10}, 0, 2)
	cm := cost.Modal{
		Create: []float64{0, 0},
		Delete: []float64{0, 0},
		Change: [][]float64{{0, 10}, {10, 0}},
	}
	ex := tree.ReplicasOf(tr)
	ex.Set(0, 2)
	s, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	// Bound 1: only the stay-at-mode-2 reuse is affordable (cost 1).
	res, ok := s.Best(1)
	if !ok {
		t.Fatal("no solution at bound 1")
	}
	if res.Placement.Mode(0) != 2 || !almost(res.Power, 100) {
		t.Fatalf("bound 1: mode %d power %v, want mode 2 power 100", res.Placement.Mode(0), res.Power)
	}
	// Bound 11: paying the downgrade halves the power.
	res, ok = s.Best(11)
	if !ok {
		t.Fatal("no solution at bound 11")
	}
	if res.Placement.Mode(0) != 1 || !almost(res.Power, 25) {
		t.Fatalf("bound 11: mode %d power %v, want mode 1 power 25", res.Placement.Mode(0), res.Power)
	}
}

func TestSingleModeMatchesMinCost(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		src := rng.Derive(seed, 9)
		tr := tree.MustGenerate(tree.FatConfig(1+src.IntN(40)), src)
		ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()/2+1), 1, src)
		sc := cost.Simple{Create: 0.1, Delete: 0.01}
		mc, err := MinCost(tr, ex, 10, sc)
		if err != nil {
			t.Fatal(err)
		}
		pm := power.MustNew([]int{10}, 1, 2)
		cm := cost.UniformModal(1, 0.1, 0.01, 0)
		s, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
		if err != nil {
			t.Fatal(err)
		}
		// With one mode, power = count · NodePower(1); the minimal cost
		// on the front must equal the MinCost optimum.
		front := s.Front()
		if !almost(front[0].Cost, mc.Cost) {
			t.Fatalf("seed %d: modal min cost %v, MinCost %v", seed, front[0].Cost, mc.Cost)
		}
	}
}

func randomPowerInstance(seed uint64) (*tree.Tree, *tree.Replicas, power.Model, cost.Modal) {
	src := rng.Derive(seed, 10)
	cfg := tree.GenConfig{
		Nodes:       1 + src.IntN(8),
		MinChildren: 1 + src.IntN(2),
		MaxChildren: 3,
		ClientProb:  0.7,
		ReqMin:      1,
		ReqMax:      6,
	}
	tr := tree.MustGenerate(cfg, src)
	M := 2 + src.IntN(2) // 2 or 3 modes
	caps := make([]int, M)
	c := 3 + src.IntN(4)
	for i := range caps {
		caps[i] = c
		c += 2 + src.IntN(4)
	}
	pm := power.MustNew(caps, float64(src.IntN(20)), 2+src.Float64())
	cm := cost.UniformModal(M,
		float64(src.IntN(20))/10,
		float64(src.IntN(20))/10,
		float64(src.IntN(10))/10)
	ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()+1), M, src)
	return tr, ex, pm, cm
}

// Property: the DP agrees with brute force over subsets × mode vectors
// for every cost bound, including tight and unreachable ones.
func TestQuickPowerMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		tr, ex, pm, cm := randomPowerInstance(seed)
		cands, err := BrutePowerCandidates(tr, ex, pm, cm)
		if err != nil {
			t.Log(err)
			return false
		}
		s, errS := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
		if len(cands) == 0 {
			return errors.Is(errS, ErrInfeasible)
		}
		if errS != nil {
			t.Logf("seed %d: DP failed but brute found %d candidates: %v", seed, len(cands), errS)
			return false
		}
		// Probe bounds around every distinct candidate cost.
		costs := map[float64]bool{}
		for _, c := range cands {
			costs[c.Cost] = true
		}
		bounds := []float64{math.Inf(1)}
		for c := range costs {
			bounds = append(bounds, c+1e-9, c-1e-7)
		}
		sort.Float64s(bounds)
		for _, bound := range bounds {
			want, wantOK := BruteBestPower(cands, bound)
			got, gotOK := s.Best(bound)
			if wantOK != gotOK {
				t.Logf("seed %d bound %v: brute found=%v DP found=%v", seed, bound, wantOK, gotOK)
				return false
			}
			if !wantOK {
				continue
			}
			if !almost(got.Power, want.Power) {
				t.Logf("seed %d bound %v: DP power %v, brute %v", seed, bound, got.Power, want.Power)
				return false
			}
			if got.Cost > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: reconstructed placements are valid and realise the reported
// cost and power exactly.
func TestQuickPowerReconstructionConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 11)
		tr := tree.MustGenerate(tree.PowerConfig(1+src.IntN(30)), src)
		pm := power.MustNew([]int{5, 10}, 12.5, 3)
		cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
		ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()/3+1), 2, src)
		s, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		for i := range s.Front() {
			res := s.At(i)
			if tree.Validate(tr, res.Placement, func(m uint8) int { return pm.Cap(int(m)) }) != nil {
				t.Logf("seed %d point %d: invalid placement", seed, i)
				return false
			}
			cc, err := cm.OfReplicas(res.Placement, ex)
			if err != nil || !almost(cc, res.Cost) {
				t.Logf("seed %d point %d: cost %v vs reported %v", seed, i, cc, res.Cost)
				return false
			}
			if !almost(pm.OfReplicas(res.Placement), res.Power) {
				t.Logf("seed %d point %d: power mismatch", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimal DP never consumes more power than the greedy
// sweep at the same cost bound (the paper's Experiment 3 relation).
func TestQuickPowerBeatsGreedySweep(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 12)
		tr := tree.MustGenerate(tree.PowerConfig(1+src.IntN(40)), src)
		pm := power.MustNew([]int{5, 10}, 12.5, 3)
		cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
		ex, _ := tree.RandomReplicas(tr, src.IntN(min(6, tr.N()+1)), 2, src)
		s, errS := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
		for bound := 5.0; bound <= 30; bound += 5 {
			gr, err := greedy.PowerSweep(tr, ex, pm, cm, bound)
			if err != nil {
				return false
			}
			if !gr.Found {
				continue
			}
			if errS != nil {
				return false // greedy found a solution, DP must too
			}
			res, ok := s.Best(bound)
			if !ok || res.Power > gr.Power+1e-9 {
				t.Logf("seed %d bound %v: DP %v vs GR %v", seed, bound, res, gr.Power)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePowerDeterministic(t *testing.T) {
	tr := tree.MustGenerate(tree.PowerConfig(40), rng.New(21))
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	ex, _ := tree.RandomReplicas(tr, 5, 2, rng.New(22))
	a, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Front(), b.Front()
	if len(fa) != len(fb) {
		t.Fatalf("front lengths differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("front point %d differs", i)
		}
		if !a.At(i).Placement.Equal(b.At(i).Placement) {
			t.Fatalf("placement %d differs", i)
		}
	}
}
