package core

import (
	"fmt"
	"math"

	"replicatree/internal/cost"
	"replicatree/internal/tree"
)

// ErrInfeasible is returned when no placement can serve every client.
// It is the shared tree.ErrInfeasible sentinel, so it also matches the
// greedy and heuristic layers' infeasibility errors.
var ErrInfeasible = tree.ErrInfeasible

const invalid = int32(-1)

// MinCostResult is an optimal solution to MinCost-WithPre.
type MinCostResult struct {
	// Placement is the optimal replica set R (every replica at mode 1).
	Placement *tree.Replicas
	// Cost is the value of Equation (2) for the placement.
	Cost float64
	// Servers, Reused and New are R, e and R−e.
	Servers int
	Reused  int
	New     int
}

// MinCost solves the MinCost-WithPre problem (Theorem 1): find a replica
// placement for t under capacity W that serves every client with the
// closest policy and minimises
//
//	cost(R) = R + (R−e)·create + (E−e)·delete,
//
// where e is the number of reused servers of the pre-existing set. A nil
// existing set solves the classical MinCost-NoPre problem. The dynamic
// program is exact only under tree.PolicyClosest (see the package
// documentation); use BruteMinReplicasPolicy to cross-check other
// access policies on small trees. The worst
// case running time is O(N·(N−E+1)²·(E+1)²) = O(N⁵) as in the paper;
// subtree-bounded tables make typical instances far cheaper.
func MinCost(t *tree.Tree, existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	if existing.N() != t.N() {
		return nil, fmt.Errorf("core: existing set covers %d nodes, tree has %d", existing.N(), t.N())
	}
	if W <= 0 {
		return nil, fmt.Errorf("core: non-positive capacity %d", W)
	}
	if W > math.MaxInt32/4 {
		return nil, fmt.Errorf("core: capacity %d too large", W)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if m := t.MaxClientSum(); m > W {
		return nil, fmt.Errorf("core: a node's clients demand %d > W=%d: %w", m, W, ErrInfeasible)
	}

	d := &mcDP{t: t, existing: existing, w: int32(W)}
	d.run()
	return d.scanRoot(c)
}

// MinReplicaCount returns the minimal number of servers needed to serve
// every client with capacity W (the classical MinCost-NoPre objective).
func MinReplicaCount(t *tree.Tree, W int) (int, error) {
	res, err := MinCost(t, nil, W, cost.Simple{})
	if err != nil {
		return 0, err
	}
	return res.Servers, nil
}

// mcDec records, for one cell of a post-merge table, where its value
// came from: the cell of the accumulated table before the merge and
// whether a replica was placed on the merged child.
type mcDec struct {
	ePrev, nPrev int32
	place        bool
}

// mcStep is the decision table produced by merging one child.
type mcStep struct {
	dimE, dimN int32
	decs       []mcDec
}

// mcDP carries the state of the MinCost dynamic program.
type mcDP struct {
	t        *tree.Tree
	existing *tree.Replicas
	w        int32

	// Per node: final table (freed once merged into the parent), its
	// dimensions, and the per-merge decision tables for reconstruction.
	vals  [][]int32
	dimE  []int32
	dimN  []int32
	steps [][]mcStep

	placement *tree.Replicas
}

func (d *mcDP) run() {
	n := d.t.N()
	d.vals = make([][]int32, n)
	d.dimE = make([]int32, n)
	d.dimN = make([]int32, n)
	d.steps = make([][]mcStep, n)

	for _, j := range d.t.PostOrder() {
		// Base: no internal children merged yet; the only cell is
		// (0,0) holding the requests of j's own clients (Algorithm 2).
		accE, accN := int32(0), int32(0)
		acc := []int32{int32(d.t.ClientSum(j))}
		for _, ch := range d.t.Children(j) {
			acc, accE, accN = d.merge(j, ch, acc, accE, accN)
		}
		d.vals[j], d.dimE[j], d.dimN[j] = acc, accE, accN
	}
}

// merge combines the accumulated table of node j (dimensions accE×accN,
// exclusive upper bounds accE+1 and accN+1 on coordinates) with the
// final table of child ch, considering for every split the option of
// placing a replica on ch itself (Algorithm 3).
func (d *mcDP) merge(j, ch int, acc []int32, accE, accN int32) ([]int32, int32, int32) {
	chE, chN := d.dimE[ch], d.dimN[ch]
	chVals := d.vals[ch]
	childPre := d.existing.Has(ch)

	outE := accE + chE
	outN := accN + chN
	if childPre {
		outE++
	} else {
		outN++
	}
	out := make([]int32, (outE+1)*(outN+1))
	for i := range out {
		out[i] = invalid
	}
	decs := make([]mcDec, len(out))
	ostride := outN + 1

	update := func(e, n, v int32, dec mcDec) {
		idx := e*ostride + n
		if out[idx] == invalid || v < out[idx] {
			out[idx] = v
			decs[idx] = dec
		}
	}

	for e := int32(0); e <= accE; e++ {
		for n := int32(0); n <= accN; n++ {
			a := acc[e*(accN+1)+n]
			if a == invalid {
				continue
			}
			dec := mcDec{ePrev: e, nPrev: n}
			decP := mcDec{ePrev: e, nPrev: n, place: true}
			for ec := int32(0); ec <= chE; ec++ {
				for nc := int32(0); nc <= chN; nc++ {
					cv := chVals[ec*(chN+1)+nc]
					if cv == invalid {
						continue
					}
					// No replica on ch: its traversing requests join ours
					// and must still fit one upstream server.
					if a+cv <= d.w {
						update(e+ec, n+nc, a+cv, dec)
					}
					// Replica on ch absorbs cv (cv <= W by construction).
					if childPre {
						update(e+ec+1, n+nc, a, decP)
					} else {
						update(e+ec, n+nc+1, a, decP)
					}
				}
			}
		}
	}

	d.steps[j] = append(d.steps[j], mcStep{dimE: outE, dimN: outN, decs: decs})
	d.vals[ch] = nil // the child's table is no longer needed
	return out, outE, outN
}

// scanRoot evaluates every root-table cell with and without a replica on
// the root itself (Algorithm 4) and reconstructs the cheapest solution.
// In addition to the paper's branches, a pre-existing root may be kept
// as a server even when minr = 0, which is cheaper whenever delete > 1.
func (d *mcDP) scanRoot(c cost.Simple) (*MinCostResult, error) {
	r := d.t.Root()
	E := d.existing.Count()
	rootPre := d.existing.Has(r)
	dimE, dimN := d.dimE[r], d.dimN[r]
	vals := d.vals[r]

	bestCost := math.Inf(1)
	bestE, bestN := int32(-1), int32(-1)
	bestPlaceRoot := false
	var bestServers, bestReused int

	consider := func(e, n int32, placeRoot bool) {
		servers := int(e) + int(n)
		reused := int(e)
		if placeRoot {
			servers++
			if rootPre {
				reused++
			}
		}
		cc := c.Of(servers, reused, E)
		if cc < bestCost {
			bestCost = cc
			bestE, bestN, bestPlaceRoot = e, n, placeRoot
			bestServers, bestReused = servers, reused
		}
	}

	for e := int32(0); e <= dimE; e++ {
		for n := int32(0); n <= dimN; n++ {
			v := vals[e*(dimN+1)+n]
			if v == invalid {
				continue
			}
			if v == 0 {
				consider(e, n, false)
			}
			if v <= d.w {
				consider(e, n, true)
			}
		}
	}
	if bestE < 0 {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}

	d.placement = tree.NewReplicas(d.t.N())
	if bestPlaceRoot {
		d.placement.Set(r, 1)
	}
	d.rebuild(r, bestE, bestN)
	return &MinCostResult{
		Placement: d.placement,
		Cost:      bestCost,
		Servers:   bestServers,
		Reused:    bestReused,
		New:       bestServers - bestReused,
	}, nil
}

// rebuild unwinds the merge decisions of node j for target cell (e, n),
// equipping children along the way and recursing into their subtrees.
func (d *mcDP) rebuild(j int, e, n int32) {
	steps := d.steps[j]
	kids := d.t.Children(j)
	for s := len(steps) - 1; s >= 0; s-- {
		st := steps[s]
		dec := st.decs[e*(st.dimN+1)+n]
		ch := kids[s]
		ce, cn := e-dec.ePrev, n-dec.nPrev
		if dec.place {
			d.placement.Set(ch, 1)
			if d.existing.Has(ch) {
				ce--
			} else {
				cn--
			}
		}
		d.rebuild(ch, ce, cn)
		e, n = dec.ePrev, dec.nPrev
	}
	if e != 0 || n != 0 {
		panic(fmt.Sprintf("core: reconstruction reached invalid base (%d,%d) at node %d", e, n, j))
	}
}
