package core

import (
	"fmt"
	"math"

	"replicatree/internal/cost"
	"replicatree/internal/tree"
)

// ErrInfeasible is returned when no placement can serve every client.
// It is the shared tree.ErrInfeasible sentinel, so it also matches the
// greedy and heuristic layers' infeasibility errors.
var ErrInfeasible = tree.ErrInfeasible

const invalid = int32(-1)

// MinCostResult is an optimal solution to MinCost-WithPre.
type MinCostResult struct {
	// Placement is the optimal replica set R (every replica at mode 1).
	Placement *tree.Replicas
	// Cost is the value of Equation (2) for the placement.
	Cost float64
	// Servers, Reused and New are R, e and R−e.
	Servers int
	Reused  int
	New     int
}

// MinCost solves the MinCost-WithPre problem (Theorem 1): find a replica
// placement for t under capacity W that serves every client with the
// closest policy and minimises
//
//	cost(R) = R + (R−e)·create + (E−e)·delete,
//
// where e is the number of reused servers of the pre-existing set. A nil
// existing set solves the classical MinCost-NoPre problem. The dynamic
// program is exact only under tree.PolicyClosest (see the package
// documentation); use BruteMinReplicasPolicy to cross-check other
// access policies on small trees. The worst
// case running time is O(N·(N−E+1)²·(E+1)²) = O(N⁵) as in the paper;
// subtree-bounded tables make typical instances far cheaper.
//
// MinCost builds a fresh solver per call; hot loops solving many
// instances on the same tree should hold a MinCostSolver instead.
func MinCost(t *tree.Tree, existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	return NewMinCostSolver(t).Solve(existing, W, c)
}

// MinReplicaCount returns the minimal number of servers needed to serve
// every client with capacity W (the classical MinCost-NoPre objective).
func MinReplicaCount(t *tree.Tree, W int) (int, error) {
	res, err := MinCost(t, nil, W, cost.Simple{})
	if err != nil {
		return 0, err
	}
	return res.Servers, nil
}

// mcDec records, for one cell of a post-merge table, where its value
// came from: the cell of the accumulated table before the merge and
// whether a replica was placed on the merged child.
type mcDec struct {
	ePrev, nPrev int32
	place        bool
}

// mcStep is the decision table produced by merging one child.
type mcStep struct {
	dimE, dimN int32
	decs       []mcDec
}

// MinCostSolver solves MinCost-WithPre instances on one tree. All
// dynamic-program tables live in two flat arenas grown monotonically
// to the high-water mark of past solves, so after two warm-up solves
// of an instance shape every further Solve performs no heap allocation
// (use SolveInto with a caller-owned destination to avoid the result
// placement allocation too). A solver is not safe for concurrent use;
// run one per goroutine.
type MinCostSolver struct {
	t     *tree.Tree
	empty *tree.Replicas // stands in for a nil existing set

	// Per node: final table (vals), its dimensions, and the per-merge
	// decision tables for reconstruction.
	vals  [][]int32
	dimE  []int32
	dimN  []int32
	steps [][]mcStep

	ints arena[int32]
	decs arena[mcDec]

	// Per solve:
	existing  *tree.Replicas
	w         int32
	placement *tree.Replicas
}

// NewMinCostSolver returns a reusable solver for MinCost instances on t.
func NewMinCostSolver(t *tree.Tree) *MinCostSolver {
	n := t.N()
	return &MinCostSolver{
		t:     t,
		empty: tree.NewReplicas(n),
		vals:  make([][]int32, n),
		dimE:  make([]int32, n),
		dimN:  make([]int32, n),
		steps: make([][]mcStep, n),
	}
}

// Solve runs the dynamic program and returns a freshly allocated
// result. See SolveInto for the allocation-free variant.
func (s *MinCostSolver) Solve(existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	res, err := s.SolveInto(existing, W, c, nil)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// SolveInto runs the dynamic program and writes the optimal placement
// into dst (allocated fresh when nil; reset first otherwise). dst must
// not alias existing: the reconstruction reads the pre-existing set
// while writing the placement. The returned result's Placement field is
// dst.
func (s *MinCostSolver) SolveInto(existing *tree.Replicas, W int, c cost.Simple, dst *tree.Replicas) (MinCostResult, error) {
	t := s.t
	if existing == nil {
		existing = s.empty
	}
	if existing.N() != t.N() {
		return MinCostResult{}, fmt.Errorf("core: existing set covers %d nodes, tree has %d", existing.N(), t.N())
	}
	if dst != nil {
		if dst.N() != t.N() {
			return MinCostResult{}, fmt.Errorf("core: destination set covers %d nodes, tree has %d", dst.N(), t.N())
		}
		if dst == existing {
			return MinCostResult{}, fmt.Errorf("core: destination set aliases the existing set")
		}
	}
	if W <= 0 {
		return MinCostResult{}, fmt.Errorf("core: non-positive capacity %d", W)
	}
	if W > math.MaxInt32/4 {
		return MinCostResult{}, fmt.Errorf("core: capacity %d too large", W)
	}
	if err := c.Validate(); err != nil {
		return MinCostResult{}, err
	}
	if m := t.MaxClientSum(); m > W {
		return MinCostResult{}, fmt.Errorf("core: a node's clients demand %d > W=%d: %w", m, W, ErrInfeasible)
	}
	// dst is only touched once every input check has passed, so a
	// failed call leaves a reused destination's previous contents
	// intact.
	if dst == nil {
		dst = tree.ReplicasOf(t)
	} else {
		dst.Reset()
	}

	s.existing, s.w, s.placement = existing, int32(W), dst
	s.ints.reset()
	s.decs.reset()
	s.run()
	res, err := s.scanRoot(c)
	s.existing, s.placement = nil, nil
	if err != nil {
		return MinCostResult{}, err
	}
	return res, nil
}

func (s *MinCostSolver) run() {
	for _, j := range s.t.PostOrder() {
		// Base: no internal children merged yet; the only cell is
		// (0,0) holding the requests of j's own clients (Algorithm 2).
		accE, accN := int32(0), int32(0)
		acc := s.ints.alloc(1)
		acc[0] = int32(s.t.ClientSum(j))
		s.steps[j] = s.steps[j][:0]
		for _, ch := range s.t.Children(j) {
			acc, accE, accN = s.merge(j, ch, acc, accE, accN)
		}
		s.vals[j], s.dimE[j], s.dimN[j] = acc, accE, accN
	}
}

// merge combines the accumulated table of node j (dimensions accE×accN,
// exclusive upper bounds accE+1 and accN+1 on coordinates) with the
// final table of child ch, considering for every split the option of
// placing a replica on ch itself (Algorithm 3).
func (s *MinCostSolver) merge(j, ch int, acc []int32, accE, accN int32) ([]int32, int32, int32) {
	chE, chN := s.dimE[ch], s.dimN[ch]
	chVals := s.vals[ch]
	childPre := s.existing.Has(ch)

	outE := accE + chE
	outN := accN + chN
	if childPre {
		outE++
	} else {
		outN++
	}
	out := s.ints.alloc(int(outE+1) * int(outN+1))
	for i := range out {
		out[i] = invalid
	}
	// Stale decision cells are never read: the reconstruction only
	// follows cells whose value was written this solve, and every value
	// write refreshes its decision.
	decs := s.decs.alloc(len(out))
	ostride := outN + 1

	update := func(e, n, v int32, dec mcDec) {
		idx := e*ostride + n
		if out[idx] == invalid || v < out[idx] {
			out[idx] = v
			decs[idx] = dec
		}
	}

	for e := int32(0); e <= accE; e++ {
		for n := int32(0); n <= accN; n++ {
			a := acc[e*(accN+1)+n]
			if a == invalid {
				continue
			}
			dec := mcDec{ePrev: e, nPrev: n}
			decP := mcDec{ePrev: e, nPrev: n, place: true}
			for ec := int32(0); ec <= chE; ec++ {
				for nc := int32(0); nc <= chN; nc++ {
					cv := chVals[ec*(chN+1)+nc]
					if cv == invalid {
						continue
					}
					// No replica on ch: its traversing requests join ours
					// and must still fit one upstream server.
					if a+cv <= s.w {
						update(e+ec, n+nc, a+cv, dec)
					}
					// Replica on ch absorbs cv (cv <= W by construction).
					if childPre {
						update(e+ec+1, n+nc, a, decP)
					} else {
						update(e+ec, n+nc+1, a, decP)
					}
				}
			}
		}
	}

	s.steps[j] = append(s.steps[j], mcStep{dimE: outE, dimN: outN, decs: decs})
	s.vals[ch] = nil // the child's table is no longer needed
	return out, outE, outN
}

// scanRoot evaluates every root-table cell with and without a replica on
// the root itself (Algorithm 4) and reconstructs the cheapest solution.
// In addition to the paper's branches, a pre-existing root may be kept
// as a server even when minr = 0, which is cheaper whenever delete > 1.
func (s *MinCostSolver) scanRoot(c cost.Simple) (MinCostResult, error) {
	r := s.t.Root()
	E := s.existing.Count()
	rootPre := s.existing.Has(r)
	dimE, dimN := s.dimE[r], s.dimN[r]
	vals := s.vals[r]

	bestCost := math.Inf(1)
	bestE, bestN := int32(-1), int32(-1)
	bestPlaceRoot := false
	var bestServers, bestReused int

	consider := func(e, n int32, placeRoot bool) {
		servers := int(e) + int(n)
		reused := int(e)
		if placeRoot {
			servers++
			if rootPre {
				reused++
			}
		}
		cc := c.Of(servers, reused, E)
		if cc < bestCost {
			bestCost = cc
			bestE, bestN, bestPlaceRoot = e, n, placeRoot
			bestServers, bestReused = servers, reused
		}
	}

	for e := int32(0); e <= dimE; e++ {
		for n := int32(0); n <= dimN; n++ {
			v := vals[e*(dimN+1)+n]
			if v == invalid {
				continue
			}
			if v == 0 {
				consider(e, n, false)
			}
			if v <= s.w {
				consider(e, n, true)
			}
		}
	}
	if bestE < 0 {
		return MinCostResult{}, fmt.Errorf("core: %w", ErrInfeasible)
	}

	if bestPlaceRoot {
		s.placement.Set(r, 1)
	}
	s.rebuild(r, bestE, bestN)
	return MinCostResult{
		Placement: s.placement,
		Cost:      bestCost,
		Servers:   bestServers,
		Reused:    bestReused,
		New:       bestServers - bestReused,
	}, nil
}

// rebuild unwinds the merge decisions of node j for target cell (e, n),
// equipping children along the way and recursing into their subtrees.
func (s *MinCostSolver) rebuild(j int, e, n int32) {
	steps := s.steps[j]
	kids := s.t.Children(j)
	for st := len(steps) - 1; st >= 0; st-- {
		step := steps[st]
		dec := step.decs[e*(step.dimN+1)+n]
		ch := kids[st]
		ce, cn := e-dec.ePrev, n-dec.nPrev
		if dec.place {
			s.placement.Set(ch, 1)
			if s.existing.Has(ch) {
				ce--
			} else {
				cn--
			}
		}
		s.rebuild(ch, ce, cn)
		e, n = dec.ePrev, dec.nPrev
	}
	if e != 0 || n != 0 {
		panic(fmt.Sprintf("core: reconstruction reached invalid base (%d,%d) at node %d", e, n, j))
	}
}
