package core

import (
	"fmt"
	"math"

	"replicatree/internal/cost"
	"replicatree/internal/tree"
)

// ErrInfeasible is returned when no placement can serve every client.
// It is the shared tree.ErrInfeasible sentinel, so it also matches the
// greedy and heuristic layers' infeasibility errors.
var ErrInfeasible = tree.ErrInfeasible

const invalid = int32(-1)

// MinCostResult is an optimal solution to MinCost-WithPre.
type MinCostResult struct {
	// Placement is the optimal replica set R (every replica at mode 1).
	Placement *tree.Replicas
	// Cost is the value of Equation (2) for the placement.
	Cost float64
	// Servers, Reused and New are R, e and R−e.
	Servers int
	Reused  int
	New     int
}

// MinCost solves the MinCost-WithPre problem (Theorem 1): find a replica
// placement for t under capacity W that serves every client with the
// closest policy and minimises
//
//	cost(R) = R + (R−e)·create + (E−e)·delete,
//
// where e is the number of reused servers of the pre-existing set. A nil
// existing set solves the classical MinCost-NoPre problem. The dynamic
// program is exact only under tree.PolicyClosest (see the package
// documentation); use BruteMinReplicasPolicy to cross-check other
// access policies on small trees. The worst
// case running time is O(N·(N−E+1)²·(E+1)²) = O(N⁵) as in the paper;
// subtree-bounded tables make typical instances far cheaper.
//
// MinCost builds a fresh solver per call; hot loops solving many
// instances on the same tree should hold a MinCostSolver instead.
func MinCost(t *tree.Tree, existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	return NewMinCostSolver(t).Solve(existing, W, c)
}

// MinReplicaCount returns the minimal number of servers needed to serve
// every client with capacity W (the classical MinCost-NoPre objective).
func MinReplicaCount(t *tree.Tree, W int) (int, error) {
	res, err := MinCost(t, nil, W, cost.Simple{})
	if err != nil {
		return 0, err
	}
	return res.Servers, nil
}

// mcDec records, for one cell of a post-merge table, where its value
// came from: the cell of the accumulated table before the merge and
// whether a replica was placed on the merged child.
type mcDec struct {
	ePrev, nPrev int32
	place        bool
}

// mcStep is the decision table produced by merging one child.
type mcStep struct {
	dimE, dimN int32
	decs       []mcDec
}

// MinCostSolver solves MinCost-WithPre instances on one tree. Merge
// intermediates live in a flat arena and every node's final table and
// reconstruction back-pointers in retained per-node buffers, all grown
// monotonically to the high-water mark of past solves: after two
// warm-up solves of an instance shape every further Solve performs no
// heap allocation (use SolveInto with a caller-owned destination to
// avoid the result placement allocation too).
//
// The retained tables make solves incremental. A solve reuses every
// cached subtree table whose inputs did not change since the previous
// solve and recomputes only the dirty ancestor chains: demand edits
// through tree.Tree.SetDemand (or any mutator that advances the demand
// generations) dirty the touched node upward, membership changes of
// the pre-existing set dirty the changed node's parent upward, and a
// different capacity W invalidates everything. The cost model never
// invalidates tables (only the root scan prices it), so sweeping costs
// over a static tree re-solves in O(root-table) time. Use Invalidate
// after mutating state the solver cannot observe, and Reset to rebind
// the solver to another tree while keeping its buffers.
//
// A solver is not safe for concurrent use; run one per goroutine.
type MinCostSolver struct {
	t     *tree.Tree
	empty *tree.Replicas // stands in for a nil existing set

	// Per node, retained across solves: final table (vals), its
	// dimensions, and the per-merge decision tables for reconstruction
	// (steps[j] has exactly one entry per child of j).
	vals  [][]int32
	dimE  []int32
	dimN  []int32
	steps [][]mcStep

	ints arena[int32] // merge intermediates, recycled every solve

	// Incremental bookkeeping: which demands each cached table reflects,
	// the previous solve's pre-existing membership, and its capacity.
	track      dirtyTracker
	lastHas    []bool
	lastW      int32
	recomputed int

	// Per solve:
	existing  *tree.Replicas
	w         int32
	placement *tree.Replicas
}

// NewMinCostSolver returns a reusable solver for MinCost instances on t.
func NewMinCostSolver(t *tree.Tree) *MinCostSolver {
	s := &MinCostSolver{}
	s.Reset(t)
	return s
}

// Reset rebinds the solver to tree t, keeping every retained buffer as
// scratch for the new tree, so sweeping many trees of similar shape
// through one solver skips most warm-up allocations. The first solve
// after a Reset recomputes every table, even when t is the tree the
// solver was already bound to (which makes Reset(sameTree) an explicit
// full invalidation; see Invalidate for the cheaper flag-only form).
func (s *MinCostSolver) Reset(t *tree.Tree) {
	n := t.N()
	s.t = t
	if s.empty == nil || s.empty.N() != n {
		s.empty = tree.NewReplicas(n)
	}
	s.vals = grownKeep(s.vals, n)
	s.dimE = grown(s.dimE, n)
	s.dimN = grown(s.dimN, n)
	s.steps = grownKeep(s.steps, n)
	for j := 0; j < n; j++ {
		s.steps[j] = grownKeep(s.steps[j], len(t.Children(j)))
	}
	s.lastHas = grown(s.lastHas, n)
	s.track.bind(n)
}

// Invalidate discards the validity of every cached subtree table,
// forcing the next solve to recompute the whole tree. It is needed
// only after out-of-band mutations the solver cannot observe (demand
// edits through SetDemand/SetClientRequests and pre-existing set
// changes are detected automatically).
func (s *MinCostSolver) Invalidate() { s.track.invalidate() }

// Stats profiles the most recent completed solve: how many of the
// tree's node tables it actually recomputed.
func (s *MinCostSolver) Stats() SolveStats {
	return SolveStats{Nodes: s.t.N(), Recomputed: s.recomputed}
}

// Solve runs the dynamic program and returns a freshly allocated
// result. See SolveInto for the allocation-free variant.
func (s *MinCostSolver) Solve(existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	res, err := s.SolveInto(existing, W, c, nil)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// SolveInto runs the dynamic program and writes the optimal placement
// into dst (allocated fresh when nil; reset first otherwise). dst must
// not alias existing: the reconstruction reads the pre-existing set
// while writing the placement. The returned result's Placement field is
// dst.
func (s *MinCostSolver) SolveInto(existing *tree.Replicas, W int, c cost.Simple, dst *tree.Replicas) (MinCostResult, error) {
	t := s.t
	if existing == nil {
		existing = s.empty
	}
	if existing.N() != t.N() {
		return MinCostResult{}, fmt.Errorf("core: existing set covers %d nodes, tree has %d", existing.N(), t.N())
	}
	if dst != nil {
		if dst.N() != t.N() {
			return MinCostResult{}, fmt.Errorf("core: destination set covers %d nodes, tree has %d", dst.N(), t.N())
		}
		if dst == existing {
			return MinCostResult{}, fmt.Errorf("core: destination set aliases the existing set")
		}
	}
	if W <= 0 {
		return MinCostResult{}, fmt.Errorf("core: non-positive capacity %d", W)
	}
	if W > math.MaxInt32/4 {
		return MinCostResult{}, fmt.Errorf("core: capacity %d too large", W)
	}
	if err := c.Validate(); err != nil {
		return MinCostResult{}, err
	}
	if m := t.MaxClientSum(); m > W {
		return MinCostResult{}, fmt.Errorf("core: a node's clients demand %d > W=%d: %w", m, W, ErrInfeasible)
	}
	// dst is only touched once every input check has passed, so a
	// failed call leaves a reused destination's previous contents
	// intact.
	if dst == nil {
		dst = tree.ReplicasOf(t)
	} else {
		dst.Reset()
	}

	s.existing, s.w, s.placement = existing, int32(W), dst

	// Decide which cached tables survive: demands via generation
	// stamps, the pre-existing set by content diff (it dirties the
	// parent: a node's own table ignores its own membership), W by full
	// invalidation. The cost model only prices the root scan below.
	t0 := s.t
	s.track.mark(t0, s.w != s.lastW)
	for j := 0; j < t0.N(); j++ {
		if s.lastHas[j] != existing.Has(j) {
			s.track.markParent(t0, j)
		}
	}
	s.track.propagate(t0)

	s.ints.reset()
	s.run()

	// The tables now reflect the current inputs even if the root scan
	// finds the instance infeasible, so commit before scanning.
	s.lastW = s.w
	for j := 0; j < t0.N(); j++ {
		s.lastHas[j] = existing.Has(j)
	}
	s.track.commit(t0)

	res, err := s.scanRoot(c)
	s.existing, s.placement = nil, nil
	if err != nil {
		return MinCostResult{}, err
	}
	return res, nil
}

func (s *MinCostSolver) run() {
	s.recomputed = 0
	for _, j := range s.t.PostOrder() {
		if !s.track.dirty[j] {
			continue
		}
		s.recomputed++
		kids := s.t.Children(j)
		if len(kids) == 0 {
			// A leaf's final table is the single base cell (0,0) holding
			// the requests of j's own clients (Algorithm 2).
			s.vals[j] = grown(s.vals[j], 1)
			s.vals[j][0] = int32(s.t.ClientSum(j))
			s.dimE[j], s.dimN[j] = 0, 0
			continue
		}
		accE, accN := int32(0), int32(0)
		acc := s.ints.alloc(1)
		acc[0] = int32(s.t.ClientSum(j))
		for st, ch := range kids {
			acc, accE, accN = s.merge(j, st, ch, acc, accE, accN, st == len(kids)-1)
		}
		s.dimE[j], s.dimN[j] = accE, accN
	}
}

// merge combines the accumulated table of node j (dimensions accE×accN,
// exclusive upper bounds accE+1 and accN+1 on coordinates) with the
// final table of child ch — the st-th child of j — considering for
// every split the option of placing a replica on ch itself (Algorithm
// 3). The last merge writes straight into j's retained final table;
// earlier ones use arena intermediates.
func (s *MinCostSolver) merge(j, st, ch int, acc []int32, accE, accN int32, last bool) ([]int32, int32, int32) {
	chE, chN := s.dimE[ch], s.dimN[ch]
	chVals := s.vals[ch]
	childPre := s.existing.Has(ch)

	outE := accE + chE
	outN := accN + chN
	if childPre {
		outE++
	} else {
		outN++
	}
	cells := int(outE+1) * int(outN+1)
	var out []int32
	if last {
		s.vals[j] = grown(s.vals[j], cells)
		out = s.vals[j]
	} else {
		out = s.ints.alloc(cells)
	}
	for i := range out {
		out[i] = invalid
	}
	// Stale decision cells are never read: the reconstruction only
	// follows cells whose value was written when the table was last
	// rebuilt, and every value write refreshes its decision.
	step := &s.steps[j][st]
	step.dimE, step.dimN = outE, outN
	step.decs = grown(step.decs, cells)
	decs := step.decs
	ostride := outN + 1

	update := func(e, n, v int32, dec mcDec) {
		idx := e*ostride + n
		if out[idx] == invalid || v < out[idx] {
			out[idx] = v
			decs[idx] = dec
		}
	}

	for e := int32(0); e <= accE; e++ {
		for n := int32(0); n <= accN; n++ {
			a := acc[e*(accN+1)+n]
			if a == invalid {
				continue
			}
			dec := mcDec{ePrev: e, nPrev: n}
			decP := mcDec{ePrev: e, nPrev: n, place: true}
			for ec := int32(0); ec <= chE; ec++ {
				for nc := int32(0); nc <= chN; nc++ {
					cv := chVals[ec*(chN+1)+nc]
					if cv == invalid {
						continue
					}
					// No replica on ch: its traversing requests join ours
					// and must still fit one upstream server.
					if a+cv <= s.w {
						update(e+ec, n+nc, a+cv, dec)
					}
					// Replica on ch absorbs cv (cv <= W by construction).
					if childPre {
						update(e+ec+1, n+nc, a, decP)
					} else {
						update(e+ec, n+nc+1, a, decP)
					}
				}
			}
		}
	}

	return out, outE, outN
}

// scanRoot evaluates every root-table cell with and without a replica on
// the root itself (Algorithm 4) and reconstructs the cheapest solution.
// In addition to the paper's branches, a pre-existing root may be kept
// as a server even when minr = 0, which is cheaper whenever delete > 1.
func (s *MinCostSolver) scanRoot(c cost.Simple) (MinCostResult, error) {
	r := s.t.Root()
	E := s.existing.Count()
	rootPre := s.existing.Has(r)
	dimE, dimN := s.dimE[r], s.dimN[r]
	vals := s.vals[r]

	bestCost := math.Inf(1)
	bestE, bestN := int32(-1), int32(-1)
	bestPlaceRoot := false
	var bestServers, bestReused int

	consider := func(e, n int32, placeRoot bool) {
		servers := int(e) + int(n)
		reused := int(e)
		if placeRoot {
			servers++
			if rootPre {
				reused++
			}
		}
		cc := c.Of(servers, reused, E)
		if cc < bestCost {
			bestCost = cc
			bestE, bestN, bestPlaceRoot = e, n, placeRoot
			bestServers, bestReused = servers, reused
		}
	}

	for e := int32(0); e <= dimE; e++ {
		for n := int32(0); n <= dimN; n++ {
			v := vals[e*(dimN+1)+n]
			if v == invalid {
				continue
			}
			if v == 0 {
				consider(e, n, false)
			}
			if v <= s.w {
				consider(e, n, true)
			}
		}
	}
	if bestE < 0 {
		return MinCostResult{}, fmt.Errorf("core: %w", ErrInfeasible)
	}

	if bestPlaceRoot {
		s.placement.Set(r, 1)
	}
	s.rebuild(r, bestE, bestN)
	return MinCostResult{
		Placement: s.placement,
		Cost:      bestCost,
		Servers:   bestServers,
		Reused:    bestReused,
		New:       bestServers - bestReused,
	}, nil
}

// rebuild unwinds the merge decisions of node j for target cell (e, n),
// equipping children along the way and recursing into their subtrees.
func (s *MinCostSolver) rebuild(j int, e, n int32) {
	steps := s.steps[j]
	kids := s.t.Children(j)
	for st := len(steps) - 1; st >= 0; st-- {
		step := steps[st]
		dec := step.decs[e*(step.dimN+1)+n]
		ch := kids[st]
		ce, cn := e-dec.ePrev, n-dec.nPrev
		if dec.place {
			s.placement.Set(ch, 1)
			if s.existing.Has(ch) {
				ce--
			} else {
				cn--
			}
		}
		s.rebuild(ch, ce, cn)
		e, n = dec.ePrev, dec.nPrev
	}
	if e != 0 || n != 0 {
		panic(fmt.Sprintf("core: reconstruction reached invalid base (%d,%d) at node %d", e, n, j))
	}
}
