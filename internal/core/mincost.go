package core

import (
	"context"
	"fmt"
	"math"

	"replicatree/internal/cost"
	"replicatree/internal/tree"
)

// ErrInfeasible is returned when no placement can serve every client.
// It is the shared tree.ErrInfeasible sentinel, so it also matches the
// greedy and heuristic layers' infeasibility errors.
var ErrInfeasible = tree.ErrInfeasible

const invalid = int32(-1)

// MinCostResult is an optimal solution to MinCost-WithPre.
type MinCostResult struct {
	// Placement is the optimal replica set R (every replica at mode 1).
	Placement *tree.Replicas
	// Cost is the value of Equation (2) for the placement.
	Cost float64
	// Servers, Reused and New are R, e and R−e.
	Servers int
	Reused  int
	New     int
}

// MinCost solves the MinCost-WithPre problem (Theorem 1): find a replica
// placement for t under capacity W that serves every client with the
// closest policy and minimises
//
//	cost(R) = R + (R−e)·create + (E−e)·delete,
//
// where e is the number of reused servers of the pre-existing set. A nil
// existing set solves the classical MinCost-NoPre problem. The dynamic
// program is exact only under tree.PolicyClosest (see the package
// documentation); use BruteMinReplicasPolicy to cross-check other
// access policies on small trees. The worst
// case running time is O(N·(N−E+1)²·(E+1)²) = O(N⁵) as in the paper;
// subtree-bounded tables make typical instances far cheaper.
//
// MinCost builds a fresh solver per call; hot loops solving many
// instances on the same tree should hold a MinCostSolver instead.
func MinCost(t *tree.Tree, existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	return NewMinCostSolver(t).Solve(existing, W, c)
}

// MinReplicaCount returns the minimal number of servers needed to serve
// every client with capacity W (the classical MinCost-NoPre objective).
func MinReplicaCount(t *tree.Tree, W int) (int, error) {
	res, err := MinCost(t, nil, W, cost.Simple{})
	if err != nil {
		return 0, err
	}
	return res.Servers, nil
}

// mcDec records, for one cell of a post-merge table, where its value
// came from: the cell of the accumulated table before the merge and
// whether a replica was placed on the merged child.
type mcDec struct {
	ePrev, nPrev int32
	place        bool
}

// mcStep is the decision table produced by merging one child. A step
// run by the dense kernel stores one mcDec per output cell; a step run
// by the compressed kernel (comp) stores breakpoint snapshots of its
// accumulator input (inRuns) and output (runs) instead — decisions are
// reconstructed lazily from the snapshots (see lazyDec), and the
// output snapshot doubles as the restart point for partial fold
// replays (see solveNode).
type mcStep struct {
	dimE, dimN int32
	decs       []mcDec
	comp       bool
	inRuns     []bpRun
	runs       []bpRun
}

// MinCostSolver solves MinCost-WithPre instances on one tree. Merge
// intermediates live in a flat arena and every node's final table and
// reconstruction back-pointers in retained per-node buffers, all grown
// monotonically to the high-water mark of past solves: after two
// warm-up solves of an instance shape every further Solve performs no
// heap allocation (use SolveInto with a caller-owned destination to
// avoid the result placement allocation too).
//
// The retained tables make solves incremental. A solve reuses every
// cached subtree table whose inputs did not change since the previous
// solve and recomputes only the dirty ancestor chains: demand edits
// through tree.Tree.SetDemand (or any mutator that advances the demand
// generations) dirty the touched node upward, membership changes of
// the pre-existing set dirty the changed node's parent upward, and a
// different capacity W invalidates everything. The cost model never
// invalidates tables (only the root scan prices it), so sweeping costs
// over a static tree re-solves in O(root-table) time. Use Invalidate
// after mutating state the solver cannot observe, and Reset to rebind
// the solver to another tree while keeping its buffers.
//
// A solver is not safe for concurrent use; run one per goroutine.
type MinCostSolver struct {
	t     *tree.Tree
	empty *tree.Replicas // stands in for a nil existing set

	// Per node, retained across solves: final table (vals), its
	// dimensions, and the per-merge decision tables for reconstruction
	// (steps[j] has exactly one entry per child of j).
	vals  [][]int32
	dimE  []int32
	dimN  []int32
	steps [][]mcStep

	// Merge intermediates live in flat arenas, one per worker so the
	// wave-parallel pass allocates without synchronisation. They are
	// recycled per node (not per solve): intermediates never outlive
	// the node whose merges produced them — the fold's final merge
	// writes into the retained vals[j] — so each arena only needs to
	// fit the largest single node, not the whole sweep, which is what
	// keeps mega-tree solves in O(max node) scratch memory.
	arenas []arena[int32]

	// Wave-parallel scheduler (see SetWorkers and waveSched).
	wave waveSched

	// Compressed-merge scratch and merge-layer counters, one per
	// worker like the arenas.
	bps    []bpScratch
	mstats []mergeStats

	// Server-count cap for mega trees (see serverCap): table cells
	// with more than capB new servers are provably never optimal, so
	// the n dimension of every table is clamped to capB, turning the
	// O(N²) worst-case merge volume into O(N·capB). 0 means uncapped.
	capB     int32
	lastCapB int32
	escUB    []int32 // scratch for the greedy feasibility pass

	// Incremental bookkeeping: which demands each cached table reflects,
	// the previous solve's pre-existing membership, and its capacity.
	track      dirtyTracker
	lastHas    []bool
	lastW      int32
	recomputed int

	// Fault-mask view (see SetMask): the mask read at the start of the
	// current solve, the previous solve's view for staleness diffing,
	// and the count of masked nodes for Stats.
	mask      tree.FaultMask
	downNow   []bool
	lastDown  []bool
	maskedCnt int

	// fullSolve is set for the duration of one solve when every table
	// must be rebuilt (W or capB changed, or no valid previous solve):
	// partial fold replays are then disabled even at nodes whose
	// children look clean.
	fullSolve bool

	// Cooperative cancellation (see SetContext and cancelGate).
	cancel cancelGate

	// Per solve:
	existing  *tree.Replicas
	w         int32
	placement *tree.Replicas
}

// NewMinCostSolver returns a reusable solver for MinCost instances on t.
func NewMinCostSolver(t *tree.Tree) *MinCostSolver {
	s := &MinCostSolver{
		arenas: make([]arena[int32], 1),
		bps:    make([]bpScratch, 1),
		mstats: make([]mergeStats, 1),
	}
	s.wave.workers = 1
	s.Reset(t)
	return s
}

// SetWorkers sets the number of workers for the bottom-up pass
// (workers <= 0 selects runtime.GOMAXPROCS(0); 1, the default, runs
// sequentially without goroutines). Each height wave of the tree is
// fanned across the workers: a node's table depends only on its
// children's retained tables, every child sits in a strictly lower
// wave, and each dirty node is computed by exactly one worker into its
// own per-node buffers — so results are bit-identical for every worker
// count (see waveSched). Incremental solves keep their advantage: only
// the dirty nodes of each wave are dispatched.
func (s *MinCostSolver) SetWorkers(workers int) {
	n := s.wave.setWorkers(workers, func(w, i int) {
		s.solveNode(s.wave.dirtyIdx[i], w)
	})
	s.arenas = grownKeep(s.arenas, n)[:n]
	s.bps = grownKeep(s.bps, n)[:n]
	s.mstats = grownKeep(s.mstats, n)[:n]
}

// Reset rebinds the solver to tree t, keeping every retained buffer as
// scratch for the new tree, so sweeping many trees of similar shape
// through one solver skips most warm-up allocations. The first solve
// after a Reset recomputes every table, even when t is the tree the
// solver was already bound to (which makes Reset(sameTree) an explicit
// full invalidation; see Invalidate for the cheaper flag-only form).
func (s *MinCostSolver) Reset(t *tree.Tree) {
	n := t.N()
	s.t = t
	if s.empty == nil || s.empty.N() != n {
		s.empty = tree.NewReplicas(n)
	}
	s.vals = grownKeep(s.vals, n)
	s.dimE = grown(s.dimE, n)
	s.dimN = grown(s.dimN, n)
	s.steps = grownKeep(s.steps, n)
	for j := 0; j < n; j++ {
		s.steps[j] = grownKeep(s.steps[j], len(t.Children(j)))
	}
	s.lastHas = grown(s.lastHas, n)
	s.downNow = grown(s.downNow, n)
	s.lastDown = grown(s.lastDown, n)
	s.track.bind(n)
}

// SetMask points the solver at a fault-mask view consulted at the start
// of every solve: a node the mask reports down cannot host a replica,
// while its clients' demand is unchanged — they still route to their
// nearest live equipped ancestor, so the returned placement stays valid
// under the closest policy both during and after the outage. Only
// NodeUp is consulted; link cuts are a routing concern the solver
// cannot hedge against (a placement inside a severed subtree would be
// sized for that subtree only, and invalid once the link returns).
// A nil mask (the default) restores the unmasked program.
//
// The mask is diffed like the pre-existing set: a node whose up/down
// state changed since the previous solve dirties its parent's chain
// only, so a crash or recovery re-solves in O(depth) tables. The mask
// is read once per solve; mutating it mid-solve is a race.
func (s *MinCostSolver) SetMask(m tree.FaultMask) { s.mask = m }

// Invalidate discards the validity of every cached subtree table,
// forcing the next solve to recompute the whole tree. It is needed
// only after out-of-band mutations the solver cannot observe (demand
// edits through SetDemand/SetClientRequests and pre-existing set
// changes are detected automatically).
func (s *MinCostSolver) Invalidate() { s.track.invalidate() }

// SetContext installs a context consulted by every following Solve at
// coarse checkpoints — between height waves on the parallel path,
// every cancelStride node tables on the sequential one. Once the
// context is cancelled the in-flight solve stops within one checkpoint
// and returns the context's error, with nothing committed: the solver
// stays repairable, and the next Solve (under a live context) lands on
// results byte-identical to a solve that was never interrupted. A nil
// context — the default — disables the checkpoints entirely.
func (s *MinCostSolver) SetContext(ctx context.Context) { s.cancel.set(ctx) }

// Stats profiles the most recent completed solve: how many of the
// tree's node tables it actually recomputed.
func (s *MinCostSolver) Stats() SolveStats {
	st := SolveStats{Nodes: s.t.N(), Recomputed: s.recomputed, MaskedNodes: s.maskedCnt}
	for i := range s.mstats {
		s.mstats[i].addTo(&st)
	}
	return st
}

// Solve runs the dynamic program and returns a freshly allocated
// result. See SolveInto for the allocation-free variant.
func (s *MinCostSolver) Solve(existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	res, err := s.SolveInto(existing, W, c, nil)
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// SolveInto runs the dynamic program and writes the optimal placement
// into dst (allocated fresh when nil; reset first otherwise). dst must
// not alias existing: the reconstruction reads the pre-existing set
// while writing the placement. The returned result's Placement field is
// dst.
func (s *MinCostSolver) SolveInto(existing *tree.Replicas, W int, c cost.Simple, dst *tree.Replicas) (MinCostResult, error) {
	t := s.t
	if existing == nil {
		existing = s.empty
	}
	if existing.N() != t.N() {
		return MinCostResult{}, fmt.Errorf("core: existing set covers %d nodes, tree has %d", existing.N(), t.N())
	}
	if dst != nil {
		if dst.N() != t.N() {
			return MinCostResult{}, fmt.Errorf("core: destination set covers %d nodes, tree has %d", dst.N(), t.N())
		}
		if dst == existing {
			return MinCostResult{}, fmt.Errorf("core: destination set aliases the existing set")
		}
	}
	if W <= 0 {
		return MinCostResult{}, fmt.Errorf("core: non-positive capacity %d", W)
	}
	if W > math.MaxInt32/4 {
		return MinCostResult{}, fmt.Errorf("core: capacity %d too large", W)
	}
	if err := c.Validate(); err != nil {
		return MinCostResult{}, err
	}
	if m := t.MaxClientSum(); m > W {
		return MinCostResult{}, fmt.Errorf("core: a node's clients demand %d > W=%d: %w", m, W, ErrInfeasible)
	}
	if s.mask != nil {
		if sz, ok := s.mask.(interface{ N() int }); ok && sz.N() < t.N() {
			return MinCostResult{}, fmt.Errorf("core: fault mask covers %d nodes, tree has %d", sz.N(), t.N())
		}
	}
	// dst is only touched once every input check has passed, so a
	// failed call leaves a reused destination's previous contents
	// intact.
	if dst == nil {
		dst = tree.ReplicasOf(t)
	} else {
		dst.Reset()
	}

	s.existing, s.w, s.placement = existing, int32(W), dst

	// Snapshot the mask before anything reads it: updateCap's greedy
	// feasibility pass must avoid down hosts, and the staleness diff
	// below compares against the previous solve's snapshot.
	s.maskedCnt = 0
	for j := 0; j < t.N(); j++ {
		down := s.mask != nil && !s.mask.NodeUp(j)
		s.downNow[j] = down
		if down {
			s.maskedCnt++
		}
	}
	s.updateCap(c)

	// Decide which cached tables survive: demands via generation
	// stamps, the pre-existing set and the fault mask by content diff
	// (each dirties the parent: a node's own table ignores both its own
	// membership and its own up/down state), W and the cap (both reshape
	// every table) by full invalidation. The cost model only prices the
	// root scan below.
	t0 := s.t
	s.fullSolve = s.w != s.lastW || s.capB != s.lastCapB || !s.track.solved
	s.track.mark(t0, s.fullSolve)
	for j := 0; j < t0.N(); j++ {
		if s.lastHas[j] != existing.Has(j) || s.lastDown[j] != s.downNow[j] {
			s.track.markParent(t0, j)
		}
	}
	s.track.propagate(t0)

	if err := s.run(); err != nil {
		// Cancelled between checkpoints: the tables rebuilt so far are
		// exact, and nothing below was committed, so the next solve
		// re-dirties and recomputes a superset of the interrupted work.
		s.existing, s.placement = nil, nil
		return MinCostResult{}, err
	}

	// The tables now reflect the current inputs even if the root scan
	// finds the instance infeasible, so commit before scanning.
	s.lastW = s.w
	s.lastCapB = s.capB
	for j := 0; j < t0.N(); j++ {
		s.lastHas[j] = existing.Has(j)
		s.lastDown[j] = s.downNow[j]
	}
	s.track.commit(t0)

	res, err := s.scanRoot(c)
	s.existing, s.placement = nil, nil
	if err != nil {
		return MinCostResult{}, err
	}
	return res, nil
}

func (s *MinCostSolver) run() error {
	for i := range s.mstats {
		s.mstats[i] = mergeStats{}
	}
	var runErr error
	if s.wave.workers > 1 {
		var ok bool
		s.recomputed, ok = s.wave.run(s.t, s.track.dirty, s.t.Waves(), s.cancel.done)
		if !ok {
			runErr = s.cancel.ctx.Err()
		}
	} else {
		s.recomputed = 0
		for _, j := range s.t.PostOrder() {
			if !s.track.dirty[j] {
				continue
			}
			if s.recomputed%cancelStride == 0 {
				if err := s.cancel.err(); err != nil {
					runErr = err
					break
				}
			}
			s.recomputed++
			s.solveNode(j, 0)
		}
	}
	// A per-node reset grows a buffer to the need of the node handled
	// before it, so the growth owed to each arena's last node would
	// otherwise be deferred into a later solve's first reset — a
	// one-off allocation there (all-clean solves never reset, so it
	// can land in a timed region). Flush it inside this solve instead.
	for i := range s.arenas {
		s.arenas[i].reset()
	}
	return runErr
}

// solveNode rebuilds node j's table from its children's (Algorithms 2
// and 3) using worker w's arena and scratch.
//
// A dirty node need not re-run its whole child fold: when its own
// demand is unchanged and the fold prefix up to the first stale child
// (dirty, or with changed pre-existing membership) ran compressed last
// time, the prefix's retained output snapshot is the exact accumulator
// at that point, so only the fold suffix is re-merged. This is what
// turns a one-child drift under a high-fanout node from an O(children)
// re-fold into an O(suffix) one; the snapshots stay valid by induction
// because any input change to a prefix step makes that step stale and
// moves the restart point before it.
func (s *MinCostSolver) solveNode(j, w int) {
	ar, sc, ms := &s.arenas[w], &s.bps[w], &s.mstats[w]
	kids := s.t.Children(j)
	if len(kids) == 0 {
		// A leaf's final table is the single base cell (0,0) holding
		// the requests of j's own clients (Algorithm 2).
		s.vals[j] = grown(s.vals[j], 1)
		s.vals[j][0] = int32(s.t.ClientSum(j))
		s.dimE[j], s.dimN[j] = 0, 0
		return
	}
	start := 0
	if !s.fullSolve && s.t.DemandGen(j) == s.track.seen[j] {
		start = len(kids)
		for st, ch := range kids {
			if s.track.dirty[ch] || s.lastHas[ch] != s.existing.Has(ch) || s.lastDown[ch] != s.downNow[ch] {
				start = st
				break
			}
		}
		if start == len(kids) {
			// Nothing this table depends on changed; it was dirtied
			// spuriously. Keep it as is.
			return
		}
		if start > 0 && !s.steps[j][start-1].comp {
			start = 0 // no snapshot to restart from
		}
	}
	ar.reset()
	var acc []int32
	var accE, accN int32
	if start == 0 {
		acc = ar.alloc(1)
		acc[0] = int32(s.t.ClientSum(j))
	} else {
		prev := &s.steps[j][start-1]
		accE, accN = prev.dimE, prev.dimN
		acc = ar.alloc(int(accN) + 1)
		decodeRuns32(prev.runs, acc, invalid)
		ms.replayed += len(kids) - start
	}
	for st := start; st < len(kids); st++ {
		acc, accE, accN = s.merge(j, st, kids[st], acc, accE, accN, st == len(kids)-1, ar, sc, ms)
	}
	s.dimE[j], s.dimN[j] = accE, accN
}

// merge combines the accumulated table of node j (dimensions accE×accN,
// exclusive upper bounds accE+1 and accN+1 on coordinates) with the
// final table of child ch — the st-th child of j — considering for
// every split the option of placing a replica on ch itself (Algorithm
// 3). The last merge writes straight into j's retained final table;
// earlier ones use arena intermediates. The new-server dimension is
// clamped to capB when the cap is active: a dropped cell holds more
// than capB new servers, its every completion costs more than capB
// lives... see serverCap for why such cells are never optimal, and
// note the clamp is monotone (a parent cell at n draws only on child
// cells at n' <= n), so the kept cells are exact.
func (s *MinCostSolver) merge(j, st, ch int, acc []int32, accE, accN int32, last bool, ar *arena[int32], sc *bpScratch, ms *mergeStats) ([]int32, int32, int32) {
	chE, chN := s.dimE[ch], s.dimN[ch]
	chVals := s.vals[ch]
	childPre := s.existing.Has(ch)
	chDown := s.downNow[ch]

	outE := accE + chE
	outN := accN + chN
	switch {
	case chDown:
		// A down child cannot host a replica, so the place option is
		// dropped and neither axis grows on its account.
	case childPre:
		outE++
	default:
		outN++
	}
	if b := s.capB; b > 0 && outN > b {
		outN = b
	}
	cells := int(outE+1) * int(outN+1)
	var out []int32
	if last {
		s.vals[j] = grown(s.vals[j], cells)
		out = s.vals[j]
	} else {
		out = ar.alloc(cells)
	}
	step := &s.steps[j][st]
	step.dimE, step.dimN = outE, outN
	// Wide single-row merges (no pre-existing axis on either side, live
	// child — the breakpoint kernel always folds the place option) run
	// on breakpoints; everything else takes the dense kernel below.
	if accE == 0 && chE == 0 && !childPre && !chDown && int(outN)+1 >= minDenseWidth &&
		s.mergeCompressed(step, acc, chVals, out, accN, chN, outN, sc, ms) {
		return out, outE, outN
	}
	step.comp = false
	ms.cells += int(accE+1) * int(accN+1) * int(chE+1) * int(chN+1)
	for i := range out {
		out[i] = invalid
	}
	// Stale decision cells are never read: the reconstruction only
	// follows cells whose value was written when the table was last
	// rebuilt, and every value write refreshes its decision.
	step.decs = grown(step.decs, cells)
	decs := step.decs
	ostride := outN + 1

	update := func(e, n, v int32, dec mcDec) {
		if n > outN { // beyond the server-count cap; never optimal
			return
		}
		idx := e*ostride + n
		if out[idx] == invalid || v < out[idx] {
			out[idx] = v
			decs[idx] = dec
		}
	}

	for e := int32(0); e <= accE; e++ {
		for n := int32(0); n <= accN; n++ {
			a := acc[e*(accN+1)+n]
			if a == invalid {
				continue
			}
			dec := mcDec{ePrev: e, nPrev: n}
			decP := mcDec{ePrev: e, nPrev: n, place: true}
			// Past outN - n every cell this child row could write lies
			// beyond the cap; skipping the range outright (rather than
			// letting update reject cell by cell) halves the work of
			// the capB-wide merges at the top of a mega tree.
			ncHi := chN
			if lim := outN - n; lim < ncHi {
				ncHi = lim
			}
			for ec := int32(0); ec <= chE; ec++ {
				for nc := int32(0); nc <= ncHi; nc++ {
					cv := chVals[ec*(chN+1)+nc]
					if cv == invalid {
						continue
					}
					// No replica on ch: its traversing requests join ours
					// and must still fit one upstream server.
					if a+cv <= s.w {
						update(e+ec, n+nc, a+cv, dec)
					}
					// Replica on ch absorbs cv (cv <= W by construction),
					// unless the fault mask holds ch down.
					switch {
					case chDown:
					case childPre:
						update(e+ec+1, n+nc, a, decP)
					default:
						update(e+ec, n+nc+1, a, decP)
					}
				}
			}
		}
	}

	return out, outE, outN
}

// mergeCompressed runs one fold step on breakpoints: encode both input
// rows, fold them with bpPlaceMerge, decode into the dense output row.
// The dense tables around the kernel are untouched — children are read
// dense, the output lands dense — so the root scan, the incremental
// bookkeeping and the parallel pass see exactly the representation
// they always did. Returns false (leaving out unwritten) when either
// input row fails the monotone-contract check, which sends the caller
// to the dense kernel; compression is therefore exact unconditionally.
func (s *MinCostSolver) mergeCompressed(step *mcStep, acc, chVals, out []int32, accN, chN, outN int32, sc *bpScratch, ms *mergeStats) bool {
	aRuns, okA := encodeRuns32(acc[:accN+1], invalid, sc.acc)
	sc.acc = aRuns
	if !okA {
		return false
	}
	cRuns, okC := encodeRuns32(chVals[:chN+1], invalid, sc.ch)
	sc.ch = cRuns
	if !okC {
		return false
	}
	ms.cells += len(aRuns) + len(cRuns)
	ms.rows += 2
	var res []bpRun
	if len(aRuns) > 0 && len(cRuns) > 0 {
		res = bpPlaceMerge(aRuns, cRuns, int64(s.w), outN, sc)
	}
	step.comp = true
	step.inRuns = append(step.inRuns[:0], aRuns...)
	step.runs = append(step.runs[:0], res...)
	decodeRuns32(res, out[:outN+1], invalid)
	return true
}

// lazyDec reconstructs the decision of cell (0, k) of compressed step
// st of node j: the decision the dense kernel would have recorded. The
// dense merge writes cells in acc-coordinate order (n1 ascending; for
// equal n1 the place option lands before the no-place option, its
// child coordinate being one smaller) and only overwrites on a strict
// improvement, so the recorded decision is the first candidate in that
// order achieving the cell's final value. The snapshots make that
// candidate directly computable: acc runs partition n1 into disjoint
// ascending intervals, every candidate from a run with value above the
// cell's is beaten, and within a run the matching child cells form one
// interval of the (monotone, still retained) dense child row.
func (s *MinCostSolver) lazyDec(j, st int, step *mcStep, ch int, k int32) mcDec {
	v := bpAt(step.runs, k)
	if v >= bpInfVal {
		panic(fmt.Sprintf("core: reconstruction reached infeasible cell (0,%d) at node %d", k, j))
	}
	chVals := s.vals[ch]
	chN := s.dimN[ch]
	cFirst := firstFeasible32(chVals[:chN+1])
	accN := int32(0)
	if st > 0 {
		accN = s.steps[j][st-1].dimN
	}
	noPlaceOK := v <= int64(s.w)
	inRuns := step.inRuns
	for p := range inRuns {
		rs, va := inRuns[p].start, inRuns[p].val
		if va > v {
			continue // every candidate of this run is beaten
		}
		re := accN
		if p+1 < len(inRuns) {
			re = inRuns[p+1].start - 1
		}
		// Earliest n1 in [rs, re] whose place option hits k: the child
		// cell k-1-n1 must be feasible (within [cFirst, chN]).
		n1p := int32(-1)
		if va == v {
			if lo, hi := max(rs, k-1-chN), min(re, k-1-cFirst); lo <= hi {
				n1p = lo
			}
		}
		// Earliest n1 whose no-place option hits k with the final
		// value: the child cell k-n1 must hold exactly v-va.
		n1n := int32(-1)
		if noPlaceOK {
			if cl, cr, ok := valueRun32(chVals, cFirst, chN, int32(v-va)); ok {
				if lo, hi := max(rs, k-cr), min(re, k-cl); lo <= hi {
					n1n = lo
				}
			}
		}
		switch {
		case n1p >= 0 && (n1n < 0 || n1p <= n1n):
			return mcDec{nPrev: n1p, place: true}
		case n1n >= 0:
			return mcDec{nPrev: n1n}
		}
		// Later runs hold strictly larger n1, so the first run with any
		// candidate owns the decision; keep scanning only on none.
	}
	panic(fmt.Sprintf("core: no decision for cell (0,%d) at node %d step %d", k, j, st))
}

// firstFeasible32 returns the index of the first non-invalid cell of a
// monotone row (its length when the whole row is infeasible).
func firstFeasible32(row []int32) int32 {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] == invalid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// valueRun32 locates the cell interval [cl, cr] of a monotone row
// holding exactly value v, searching the feasible region [first, last].
func valueRun32(row []int32, first, last, v int32) (cl, cr int32, ok bool) {
	lo, hi := first, last+1
	for lo < hi {
		mid := (lo + hi) >> 1
		if row[mid] <= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo > last || row[lo] != v {
		return 0, 0, false
	}
	cl = lo
	hi = last + 1
	for lo < hi {
		mid := (lo + hi) >> 1
		if row[mid] < v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return cl, lo - 1, true
}

// scanRoot evaluates every root-table cell with and without a replica on
// the root itself (Algorithm 4) and reconstructs the cheapest solution.
// In addition to the paper's branches, a pre-existing root may be kept
// as a server even when minr = 0, which is cheaper whenever delete > 1.
func (s *MinCostSolver) scanRoot(c cost.Simple) (MinCostResult, error) {
	r := s.t.Root()
	E := s.existing.Count()
	rootPre := s.existing.Has(r)
	dimE, dimN := s.dimE[r], s.dimN[r]
	vals := s.vals[r]

	bestCost := math.Inf(1)
	bestE, bestN := int32(-1), int32(-1)
	bestPlaceRoot := false
	var bestServers, bestReused int

	consider := func(e, n int32, placeRoot bool) {
		servers := int(e) + int(n)
		reused := int(e)
		if placeRoot {
			servers++
			if rootPre {
				reused++
			}
		}
		cc := c.Of(servers, reused, E)
		if cc < bestCost {
			bestCost = cc
			bestE, bestN, bestPlaceRoot = e, n, placeRoot
			bestServers, bestReused = servers, reused
		}
	}

	rootUp := !s.downNow[r]
	for e := int32(0); e <= dimE; e++ {
		for n := int32(0); n <= dimN; n++ {
			v := vals[e*(dimN+1)+n]
			if v == invalid {
				continue
			}
			if v == 0 {
				consider(e, n, false)
			}
			if v <= s.w && rootUp {
				consider(e, n, true)
			}
		}
	}
	if bestE < 0 {
		return MinCostResult{}, fmt.Errorf("core: %w", ErrInfeasible)
	}

	if bestPlaceRoot {
		s.placement.Set(r, 1)
	}
	s.rebuild(r, bestE, bestN)
	return MinCostResult{
		Placement: s.placement,
		Cost:      bestCost,
		Servers:   bestServers,
		Reused:    bestReused,
		New:       bestServers - bestReused,
	}, nil
}

// minCapNodes is the tree size from which the server-count cap
// activates. Paper-scale instances (tens to hundreds of nodes) run
// uncapped — their tables are small and the cap would only add a cache
// dimension — while mega trees need it: uncapped, the n dimension of a
// table grows with the subtree size and the total merge volume is
// O(N²). It is a variable so tests can lower it to cross-check capped
// against uncapped solves on small trees.
var minCapNodes = 4096

// updateCap maintains capB, the clamp on the new-server dimension of
// every table. Correctness: serverCap returns the server count of a
// concrete feasible placement, so with non-negative prices (enforced
// by cost.Simple.Validate) the optimum costs at most
// costUB = c.Of(ub, 0, E) — reused servers only lower the cost. Any
// table cell with n new servers completes only to solutions with at
// least n new servers, each costing at least n; for n > capB >=
// floor(costUB) that is strictly more than costUB >= bestCost, so no
// dropped cell can be optimal or even tie the optimum: values,
// placements and tie-breaks are identical to the uncapped program.
//
// The cap is part of every table's shape, so changing it forces a full
// recompute (SolveInto treats capB like W). To keep cost sweeps and
// demand drift from thrashing the cache, the cap is sticky: it only
// ever grows, and any growth is by at least a 9/8 factor, bounding the
// number of reshapes over any sweep by log_{9/8} of the range — a cap
// larger than the current bound stays exact, just less tight. The cap
// is otherwise kept exact rather than rounded up: the merges above the
// cap's activation depth cost O(capB²), so a 2× rounding slack (the
// old next-power-of-two policy) made the top of a mega tree ~4× more
// expensive than the bound justifies.
func (s *MinCostSolver) updateCap(c cost.Simple) {
	if s.t.N() < minCapNodes {
		s.capB = 0
		return
	}
	ub, ok := s.serverCap()
	if !ok {
		// The greedy pass found no feasible placement under the mask, so
		// there is no sound upper bound; run uncapped. The sticky-growth
		// rule is bypassed on purpose: a retained cap derived from an
		// earlier (differently masked) instance may under-bound this one.
		s.capB = 0
		return
	}
	costUB := c.Of(ub, 0, s.existing.Count())
	b := int32(math.MaxInt32 / 4)
	if costUB < float64(b) {
		b = int32(costUB)
	}
	if b < 1 {
		b = 1
	}
	if b <= s.capB {
		return
	}
	if min := s.capB + (s.capB+7)/8; b < min {
		b = min
	}
	s.capB = b
}

// serverCap returns the server count of a concrete feasible placement,
// built by an O(N) greedy pass: climbing bottom-up, each node
// accumulates the demand escaping its children and equips any child
// whose escaped demand no longer fits the running total, then the root
// is equipped if demand still escapes. By induction every escaped
// demand is at most W (the base case is MaxClientSum <= W, checked
// before solving), so under the closest policy every equipped node
// carries at most W and the placement is valid — making the count an
// upper bound on the optimal server count.
//
// Under a fault mask the greedy pass must not equip down nodes: their
// escaped demand is carried upward instead, which can break the
// induction (a carried pile may exceed W with no live host below it).
// ok reports whether the placement stayed feasible; a false return
// means the pass proves nothing and the caller must run uncapped.
// Without a mask ok is always true and the count is byte-identical to
// the pre-mask pass.
func (s *MinCostSolver) serverCap() (cnt int, ok bool) {
	t := s.t
	s.escUB = grown(s.escUB, t.N())
	esc := s.escUB
	ok = true
	for _, j := range t.PostOrder() {
		e := int32(t.ClientSum(j))
		for _, c := range t.Children(j) {
			if e+esc[c] > s.w && !s.downNow[c] && esc[c] <= s.w {
				cnt++
			} else {
				e += esc[c]
			}
		}
		if e > s.w {
			// Only reachable under a mask: a down child's overflow was
			// forcibly carried here and j cannot absorb it either (an
			// equipped closest-policy server takes everything passing
			// through, so equipping j would carry e > W).
			ok = false
		}
		esc[j] = e
	}
	if esc[t.Root()] > 0 {
		if s.downNow[t.Root()] {
			ok = false
		} else {
			cnt++
		}
	}
	return cnt, ok
}

// rebuild unwinds the merge decisions of node j for target cell (e, n),
// equipping children along the way and recursing into their subtrees.
func (s *MinCostSolver) rebuild(j int, e, n int32) {
	steps := s.steps[j]
	kids := s.t.Children(j)
	for st := len(steps) - 1; st >= 0; st-- {
		step := &steps[st]
		ch := kids[st]
		var dec mcDec
		if step.comp {
			// Compressed steps have no e axis; reaching one with e != 0
			// would mean the shape bookkeeping is broken.
			if e != 0 {
				panic(fmt.Sprintf("core: compressed step with e=%d at node %d", e, j))
			}
			dec = s.lazyDec(j, st, step, ch, n)
		} else {
			dec = step.decs[e*(step.dimN+1)+n]
		}
		ce, cn := e-dec.ePrev, n-dec.nPrev
		if dec.place {
			s.placement.Set(ch, 1)
			if s.existing.Has(ch) {
				ce--
			} else {
				cn--
			}
		}
		s.rebuild(ch, ce, cn)
		e, n = dec.ePrev, dec.nPrev
	}
	if e != 0 || n != 0 {
		panic(fmt.Sprintf("core: reconstruction reached invalid base (%d,%d) at node %d", e, n, j))
	}
}
