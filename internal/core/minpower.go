package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"

	"replicatree/internal/cost"
	"replicatree/internal/par"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// PowerProblem is an instance of MinPower-BoundedCost (Section 4.3). A
// nil Existing set gives the NoPre variant; otherwise the modes stored
// in Existing are the initial operating modes of the pre-existing
// servers.
type PowerProblem struct {
	// Tree may be nil when solving through a PowerDP, which supplies
	// its own tree.
	Tree     *tree.Tree
	Existing *tree.Replicas
	Power    power.Model
	Cost     cost.Modal
	// Workers > 1 parallelises the large table merges across that many
	// goroutines (0 or 1 = sequential). Results are identical either
	// way: the parallel path resolves ties with the same deterministic
	// provenance order the sequential scan produces. Leave it at 0
	// when the caller already runs many solvers concurrently, as the
	// experiment harness does; the parallel path also trades the
	// sequential path's allocation-freeness for wall-clock.
	//
	// Workers is independent of the subtree-level parallelism selected
	// with PowerDP.SetWorkers: when the wave scheduler is active it
	// accelerates only the root fold and the root scan — non-root
	// merges already run node-parallel and never nest a second fan-out.
	Workers int
}

// PowerResult is one optimal placement with its exact cost and power.
type PowerResult struct {
	// Placement holds the solution servers with their operating modes.
	Placement *tree.Replicas
	Cost      float64
	Power     float64
}

// ParetoPoint is one non-dominated (cost, power) trade-off.
type ParetoPoint struct {
	Cost  float64
	Power float64
}

// PowerSolver holds the output of one run of the power dynamic program.
// A single run answers MinPower, MinPower-BoundedCost for every bound,
// and the full Pareto front, because the root table enumerates every
// achievable server-count vector (Theorem 3). A PowerSolver returned by
// a PowerDP borrows that solver's scratch and stays valid only until
// the next PowerDP.Solve call.
type PowerSolver struct {
	prob      PowerProblem
	front     []frontEntry // ascending cost, strictly descending power
	steps     [][]pStep    // reconstruction back-pointers per node
	rootOrder []int        // root fold position -> child position (empty = natural)
}

type frontEntry struct {
	cost     float64
	power    float64
	rootCell int32
	rootMode uint8 // 0 = no server on the root
}

// pUnreached marks table cells with no feasible solution. Valid entries
// are at most W_M, so any value above wm is "unreached"; MaxInt32 makes
// the parallel atomic-min loops branch-free.
const pUnreached = int32(math.MaxInt32)

// noProv marks cells whose provenance has not been written.
const noProv = ^uint64(0)

// packProv encodes where a cell's value came from: the flat cell of the
// accumulated table before the merge, the flat cell of the merged
// child's final table, and the mode of a server placed on the child
// (0 = none). Both flat indices fit in 27 bits (maxTableCells), so the
// triple packs into one uint64 ordered exactly like the sequential
// scan: ascending accumulated cell, then child cell.
func packProv(aFlat, cFlat int, mode uint8) uint64 {
	return uint64(aFlat)<<35 | uint64(cFlat)<<8 | uint64(mode)
}

func unpackProv(p uint64) (aFlat, cFlat int32, mode uint8) {
	return int32(p >> 35), int32(p >> 8 & (1<<27 - 1)), uint8(p)
}

// pStep is the decision table produced by merging one child: packed
// provenance per cell of the post-merge table. A step merged by the
// compressed kernel (comp == true) materialises no provenance;
// instead it snapshots its encoded input, child and output rows
// (minpower_compress.go), from which reconstruction re-derives any
// cell's decision lazily and a suffix replay re-seeds the fold.
type pStep struct {
	prov []uint64

	comp                    bool
	accLen, chLen, outLen   int32 // n_M-axis widths of the merged tables
	inOff, chOff, outOff    []int32
	inRuns, chRuns, outRuns []bpRun
}

// SolvePower runs the MinPower-BoundedCost dynamic program. The table of
// a node is indexed by the full count vector (n_1..n_M, e_{i→i'}): new
// servers per operating mode and reused pre-existing servers per
// (initial mode, operating mode) pair; each cell keeps the minimal
// number of requests traversing the node (the Lemma 1 argument applies
// per vector because cost and power are functions of the vector alone).
// A server placed on a node with traversing load q may operate at any
// mode whose capacity covers q — the paper's "try all possible modes"
// loop — which subsumes the load-determined minimal mode and lets a
// reused server stay at its initial mode free of change cost.
//
// The complexity matches Theorem 3: O(N^{2M+1}) without pre-existing
// servers and O(N^{2M²+2M+1}) with them, in the worst case; per-subtree
// dimension bounds make typical instances far cheaper, and large merges
// run in parallel when Workers > 1.
//
// The program is exact only under the closest access policy
// (tree.PolicyClosest); see the package documentation for the relaxed
// policies.
//
// SolvePower builds a fresh PowerDP per call; hot loops solving many
// instances on the same tree should hold one PowerDP instead.
func SolvePower(p PowerProblem) (*PowerSolver, error) {
	if p.Tree == nil {
		return nil, fmt.Errorf("core: nil tree")
	}
	sol, err := NewPowerDP(p.Tree).Solve(p)
	if err != nil {
		return nil, err
	}
	// Detach the solution view from the throwaway PowerDP: the copy
	// keeps only the front and the provenance tables alive, letting
	// the value tables (about half the DP's memory) be collected while
	// the caller holds the solver.
	detached := *sol
	return &detached, nil
}

// PowerDP is a reusable MinPower-BoundedCost solver for one tree.
// Merge intermediates live in flat arenas and every node's final
// table, shape and provenance in retained per-node buffers, all grown
// monotonically to the high-water mark of past solves, so after two
// warm-up solves of an instance shape every further sequential Solve
// performs no heap allocation.
//
// The retained tables make solves incremental, mode-indexed shapes
// included: demand edits through tree.Tree.SetDemand dirty the touched
// node's ancestor chain, a changed initial mode of a pre-existing
// server dirties its parent's chain (the mode re-dimensions every
// ancestor's count vector, which is exactly the set of tables the
// chain covers), and a different power model invalidates everything.
// The cost model never invalidates tables — only the root scan prices
// it — so sweeping cost models re-solves in O(root-table) time. Use
// Invalidate after mutations the solver cannot observe, and Reset to
// rebind the solver to another tree while keeping its buffers.
//
// The PowerSolver a Solve returns aliases the solver's scratch: it is
// invalidated by the next Solve (or Reset). A PowerDP is not safe for
// concurrent use; run one per goroutine.
type PowerDP struct {
	t     *tree.Tree
	empty *tree.Replicas

	// Per-solve configuration.
	prob    PowerProblem
	M       int   // number of modes
	nf      int   // number of vector fields, M + M²
	wm      int32 // W_M
	workers int

	// Per node, retained across solves: final table, its shape, the
	// per-merge provenance tables (steps[j] has one entry per child of
	// j), and the subtree (exclusive) counts of non-pre-existing nodes
	// and of pre-existing nodes per initial mode.
	shapes []shape
	vals   [][]int32
	steps  [][]pStep
	newCnt []int32
	preCnt [][]int32

	// Incremental bookkeeping.
	track      dirtyTracker
	lastMode   []uint8
	lastPower  power.Model
	fullSolve  bool // this solve rebuilds every table (set per Solve)
	noPre      bool // no pre-existing servers: compressed merges allowed
	recomputed int

	// Root-scan state (minpower_root.go): retained partial root merges,
	// the previous solve's final root table and per-block Pareto fronts
	// for the incremental delta-priced scan, plus the pricing context
	// those fronts were computed under.
	rootSteps      []rootStep
	rootRecomputed bool
	blocks         []rootBlock
	prevRoot       []int32
	prevDims       []int32
	cw, pw         []float64 // per-field cost/power weights
	baseC          float64   // count-independent cost term (deletions)
	totalPre       []int
	scanOK         bool
	scanCost       cost.Modal
	scanPower      power.Model
	scanMode0      uint8
	scanPre        []int
	rootScanned    int
	rootRepriced   int

	// Merge intermediates, one arena per wave worker (arenas[0] also
	// serves the sequential path and the root fold). Arenas reset per
	// node — intermediates never outlive a node's computation, the
	// final merge writes into the retained vals[j] — so each arena
	// sizes to the largest single node, not a whole solve.
	arenas   []arena[int32]
	bps      []bpScratch  // compressed-merge scratch, parallel to arenas
	mstats   []mergeStats // per-worker merge counters, parallel to arenas
	wave     waveSched
	waveErrs []error // first error per wave worker

	// Volatility-ordered root fold (minpower_root.go): how often each
	// root child's subtree was observed changed since the last Reset,
	// the fold order derived from those counts, and how many fold steps
	// the last solve reused.
	volCount     []int64
	rootOrder    []int // fold position -> child position (empty = natural)
	rootRetained int

	cands []frontEntry // root-scan candidates, high-water reused
	front []frontEntry // pruned Pareto front, high-water reused
	sol   PowerSolver

	// Cooperative cancellation (see SetContext and cancelGate).
	cancel cancelGate
}

// NewPowerDP returns a reusable power solver for t.
func NewPowerDP(t *tree.Tree) *PowerDP {
	d := &PowerDP{
		arenas: make([]arena[int32], 1),
		bps:    make([]bpScratch, 1),
		mstats: make([]mergeStats, 1),
	}
	d.wave.workers = 1
	d.Reset(t)
	return d
}

// SetWorkers selects the worker count of the subtree-parallel bottom-up
// pass (see waveSched): 1 — the default — keeps the sequential
// post-order walk, <= 0 selects runtime.GOMAXPROCS(0). The root keeps
// its sequential retained-prefix fold either way; only the non-root
// waves fan out. Results are bit-identical for every worker count.
func (d *PowerDP) SetWorkers(workers int) {
	n := d.wave.setWorkers(workers, func(w, i int) {
		j := d.wave.dirtyIdx[i]
		if err := d.solveNode(j, w, false); err != nil && d.waveErrs[w] == nil {
			d.waveErrs[w] = err
		}
	})
	d.arenas = grownKeep(d.arenas, n)[:n]
	d.bps = grownKeep(d.bps, n)[:n]
	d.mstats = grownKeep(d.mstats, n)[:n]
	d.waveErrs = grownKeep(d.waveErrs, n)[:n]
}

// Reset rebinds the solver to tree t, keeping every retained buffer as
// scratch for the new tree, so sweeping many trees of similar shape
// through one solver skips most warm-up allocations. The first solve
// after a Reset recomputes every table, and any PowerSolver returned
// by an earlier Solve is invalidated.
func (d *PowerDP) Reset(t *tree.Tree) {
	n := t.N()
	d.t = t
	if d.empty == nil || d.empty.N() != n {
		d.empty = tree.NewReplicas(n)
	}
	d.shapes = grownKeep(d.shapes, n)
	d.vals = grownKeep(d.vals, n)
	d.steps = grownKeep(d.steps, n)
	for j := 0; j < n; j++ {
		d.steps[j] = grownKeep(d.steps[j], len(t.Children(j)))
	}
	d.newCnt = grown(d.newCnt, n)
	d.preCnt = grownKeep(d.preCnt, n)
	d.lastMode = grown(d.lastMode, n)
	K := len(t.Children(t.Root()))
	d.rootSteps = grownKeep(d.rootSteps, K)

	// Volatility-ordered root fold: rebind-time is the one moment the
	// fold order may change (every retained root step is invalid anyway),
	// so sort the children by how often their subtrees were observed
	// changed since the last Reset, coldest first. The churning child
	// then sits late in the fold and the retained-prefix restart of
	// runRoot skips the stable majority. Reordering cannot change the
	// front: the merge fold is commutative and associative on table
	// values (a min-plus convolution over disjoint count coordinates),
	// so only the provenance path differs — and reconstruction follows
	// the same order via PowerSolver.rootOrder.
	d.rootOrder = nil
	if K > 1 && K == len(d.volCount) {
		order := make([]int, K)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return d.volCount[order[a]] < d.volCount[order[b]]
		})
		for i, st := range order {
			if i != st {
				d.rootOrder = order
				break
			}
		}
	}
	d.volCount = grown(d.volCount, K)
	for i := range d.volCount {
		d.volCount[i] = 0
	}

	d.scanOK = false
	d.track.bind(n)
}

// Invalidate discards the validity of every cached subtree table and
// of the retained root-scan state, forcing the next solve to recompute
// and re-price the whole tree like a cold solver. Demand edits through
// SetDemand/SetClientRequests, pre-existing mode changes, power-model
// swaps and cost-model changes are detected automatically and do not
// need it.
func (d *PowerDP) Invalidate() {
	d.track.invalidate()
	d.scanOK = false
}

// SetContext installs a context consulted by every following Solve at
// coarse checkpoints: between height waves (or per node on the
// sequential pass), between the merge fold steps of the root, and
// between the blocks of the root scan. A cancelled context aborts the
// in-flight solve within one checkpoint and returns the context's
// error; like any mid-tree solve error the abort invalidates the
// retained tables, so the next solve under a live context recomputes
// from scratch and byte-matches a never-interrupted cold solve. A nil
// context — the default — disables the checkpoints.
func (d *PowerDP) SetContext(ctx context.Context) { d.cancel.set(ctx) }

// Stats profiles the most recent completed solve: how many of the
// tree's node tables it actually recomputed, and how much of the root
// scan it had to re-price (see SolveStats).
func (d *PowerDP) Stats() SolveStats {
	st := SolveStats{
		Nodes:             d.t.N(),
		Recomputed:        d.recomputed,
		RootCellsScanned:  d.rootScanned,
		RootCellsRepriced: d.rootRepriced,
		RootMergeRetained: d.rootRetained,
	}
	for i := range d.mstats {
		d.mstats[i].addTo(&st)
	}
	return st
}

// retainShape copies a shape built from arena storage into node j's
// retained shape buffers.
func (d *PowerDP) retainShape(j int, sh shape) {
	s := &d.shapes[j]
	s.dims = append(s.dims[:0], sh.dims...)
	s.strides = append(s.strides[:0], sh.strides...)
	s.size = sh.size
}

// Solve runs the dynamic program for one problem instance on the
// solver's tree (p.Tree may be nil or must match it). The returned
// PowerSolver is owned by the PowerDP and valid until the next Solve.
func (d *PowerDP) Solve(p PowerProblem) (*PowerSolver, error) {
	if p.Tree == nil {
		p.Tree = d.t
	} else if p.Tree != d.t {
		return nil, fmt.Errorf("core: PowerDP bound to a different tree")
	}
	if p.Existing == nil {
		p.Existing = d.empty
	}
	if p.Existing.N() != p.Tree.N() {
		return nil, fmt.Errorf("core: existing set covers %d nodes, tree has %d", p.Existing.N(), p.Tree.N())
	}
	if err := p.Power.Validate(); err != nil {
		return nil, err
	}
	if err := p.Cost.Validate(); err != nil {
		return nil, err
	}
	if p.Cost.M() != p.Power.M() {
		return nil, fmt.Errorf("core: cost model has %d modes, power model %d", p.Cost.M(), p.Power.M())
	}
	M := p.Power.M()
	if M > 255 {
		return nil, fmt.Errorf("core: %d modes not supported", M)
	}
	for j := 0; j < p.Tree.N(); j++ {
		if int(p.Existing.Mode(j)) > M {
			return nil, fmt.Errorf("core: pre-existing server at node %d has mode %d > M=%d", j, p.Existing.Mode(j), M)
		}
	}
	if p.Power.MaxCap() > math.MaxInt32/4 {
		return nil, fmt.Errorf("core: capacity %d too large", p.Power.MaxCap())
	}
	if m := p.Tree.MaxClientSum(); m > p.Power.MaxCap() {
		return nil, fmt.Errorf("core: a node's clients demand %d > W_M=%d: %w", m, p.Power.MaxCap(), ErrInfeasible)
	}
	workers := p.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}

	d.prob, d.M, d.nf, d.wm, d.workers = p, M, M+M*M, int32(p.Power.MaxCap()), workers
	d.noPre = p.Existing.Count() == 0

	// Demands dirty their ancestor chain; a changed initial mode of a
	// pre-existing server dirties its parent's chain (a node's own
	// table never depends on its own mode, but every ancestor's count
	// vector does); a different power model reshapes every table. The
	// cost model only prices the root scan below.
	t0 := p.Tree
	d.fullSolve = !p.Power.Equal(d.lastPower) || !d.track.solved
	d.track.mark(t0, d.fullSolve)
	for j := 0; j < t0.N(); j++ {
		if d.lastMode[j] != p.Existing.Mode(j) {
			d.track.markParent(t0, j)
		}
	}
	d.track.propagate(t0)

	if err := d.run(); err != nil {
		// A mid-tree failure (table-size overflow) has already
		// overwritten some retained tables for the failed instance;
		// nothing was committed, so force the next solve to rebuild
		// everything rather than mix instances.
		d.track.invalidate()
		return nil, err
	}

	// Commit before the root scan: the tables are valid even when the
	// scan finds the instance infeasible. The model copy reuses the
	// retained capacity slice so a steady-state solve stays alloc-free
	// and later in-place mutations of the caller's slice cannot alias.
	d.lastPower = power.Model{
		Caps:   append(d.lastPower.Caps[:0], p.Power.Caps...),
		Static: p.Power.Static,
		Alpha:  p.Power.Alpha,
	}
	for j := 0; j < t0.N(); j++ {
		d.lastMode[j] = p.Existing.Mode(j)
	}
	d.track.commit(t0)

	if err := d.scanRoot(); err != nil {
		// Cancelled mid-scan: the subtree tables above were committed
		// and stay exact, but some retained block fronts were already
		// overwritten; scanOK is false, so the next solve re-prices the
		// whole root table.
		return nil, err
	}
	if len(d.front) == 0 {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}
	d.sol = PowerSolver{prob: p, front: d.front, steps: d.steps, rootOrder: d.rootOrder}
	return &d.sol, nil
}

// fieldNew returns the vector field of n_m (1-based mode m).
func (d *PowerDP) fieldNew(m int) int { return m - 1 }

// fieldReuse returns the vector field of e_{i→m} (1-based modes).
func (d *PowerDP) fieldReuse(i, m int) int { return d.M + (i-1)*d.M + (m - 1) }

// nodeDims fills dims with the table dimensions for the subtree of j
// (node j excluded): every n_m field is bounded by the number of
// non-pre nodes, every e_{i→m} field by the number of pre-existing
// nodes with initial mode i.
func (d *PowerDP) nodeDims(dims []int32, newCnt int32, preCnt []int32) {
	for m := 1; m <= d.M; m++ {
		dims[d.fieldNew(m)] = newCnt + 1
	}
	for i := 1; i <= d.M; i++ {
		for m := 1; m <= d.M; m++ {
			dims[d.fieldReuse(i, m)] = preCnt[i-1] + 1
		}
	}
}

func (d *PowerDP) run() error {
	t := d.prob.Tree
	d.recomputed = 0
	d.rootRecomputed = false
	for i := range d.mstats {
		d.mstats[i] = mergeStats{}
	}
	root := t.Root()

	if d.wave.workers > 1 {
		// Every non-root node lies in waves 0..Waves()-2 — the root is
		// provably the sole member of the last wave — so the scheduler
		// covers exactly the generic nodes and the root's retained-prefix
		// fold runs sequentially on the caller afterwards, where its big
		// merges may still fan out via mergeParallel.
		for w := range d.waveErrs {
			d.waveErrs[w] = nil
		}
		var ok bool
		d.recomputed, ok = d.wave.run(t, d.track.dirty, t.Waves()-1, d.cancel.done)
		for _, err := range d.waveErrs {
			if err != nil {
				return err
			}
		}
		if !ok {
			return d.cancel.ctx.Err()
		}
		// Flush the growth owed to each wave arena's last node into
		// this solve (see MinCostSolver.run). arenas[0] needs no flush:
		// runRoot resets it unconditionally on every solve.
		for i := 1; i < len(d.arenas); i++ {
			d.arenas[i].reset()
		}
		return d.runRoot()
	}

	for _, j := range t.PostOrder() {
		if j == root {
			// The root keeps its partial merges across solves so a
			// single dirty child only re-runs the merge suffix from
			// that child onward (minpower_root.go).
			if err := d.runRoot(); err != nil {
				return err
			}
			continue
		}
		if !d.track.dirty[j] {
			continue
		}
		// Power tables are expensive enough that a per-node poll is
		// invisible, and it keeps cancellation latency at one table.
		if err := d.cancel.err(); err != nil {
			return err
		}
		d.recomputed++
		if err := d.solveNode(j, 0, true); err != nil {
			return err
		}
	}
	return nil
}

// solveNode rebuilds the final table of non-root node j, drawing merge
// intermediates from worker w's arena (reset here, per node). allowPar
// gates mergeInto's within-merge fan-out: wave workers pass false so a
// parallel sweep never nests a second one. When only a suffix of the
// child fold is stale and the preceding step was merged compressed,
// the fold restarts from its retained snapshot instead of from
// scratch.
func (d *PowerDP) solveNode(j, w int, allowPar bool) error {
	t := d.prob.Tree
	ar, sc, ms := &d.arenas[w], &d.bps[w], &d.mstats[w]
	ar.reset()
	kids := t.Children(j)
	accNew := int32(0)
	accPre := ar.alloc(d.M)
	for i := range accPre {
		accPre[i] = 0
	}

	if len(kids) == 0 {
		// A leaf's final table is the single base cell holding the
		// requests of j's own clients.
		accDims := ar.alloc(d.nf)
		for f := range accDims {
			accDims[f] = 1
		}
		accShape, err := fillShape(accDims, ar.alloc(d.nf))
		if err != nil {
			return err
		}
		d.vals[j] = grown(d.vals[j], 1)
		d.vals[j][0] = int32(t.ClientSum(j))
		d.retainShape(j, accShape)
		d.newCnt[j] = accNew
		d.preCnt[j] = append(d.preCnt[j][:0], accPre...)
		return nil
	}

	// First stale fold step: the node's own demand rewrites the base
	// cell (step 0), a dirty child subtree or a flipped pre-existing
	// mode invalidates its step and everything after. Restarting
	// mid-fold needs the preceding step's compressed snapshot to
	// re-seed the accumulated table.
	start := 0
	if !d.fullSolve && t.DemandGen(j) == d.track.seen[j] {
		start = len(kids)
		for st, ch := range kids {
			if d.track.dirty[ch] || d.lastMode[ch] != d.prob.Existing.Mode(ch) {
				start = st
				break
			}
		}
		if start == len(kids) {
			return nil // spurious dirty; the retained table is exact
		}
		if start > 0 && !d.steps[j][start-1].comp {
			start = 0
		}
	}

	var acc []int32
	var accShape shape
	var err error
	if start == 0 {
		accDims := ar.alloc(d.nf)
		for f := range accDims {
			accDims[f] = 1
		}
		if accShape, err = fillShape(accDims, ar.alloc(d.nf)); err != nil {
			return err
		}
		acc = ar.alloc(1)
		acc[0] = int32(t.ClientSum(j))
	} else {
		// Prefix-fold the already-merged children's counts (their
		// subtrees and modes are unchanged, so the retained per-child
		// counts still apply), then decode the snapshot of the last
		// clean step into the accumulated table.
		for _, ch := range kids[:start] {
			accNew += d.newCnt[ch]
			for i := range accPre {
				accPre[i] += d.preCnt[ch][i]
			}
			if m0 := int(d.prob.Existing.Mode(ch)); m0 == 0 {
				accNew++
			} else {
				accPre[m0-1]++
			}
		}
		accDims := ar.alloc(d.nf)
		d.nodeDims(accDims, accNew, accPre)
		if accShape, err = fillShape(accDims, ar.alloc(d.nf)); err != nil {
			return err
		}
		acc = ar.alloc(accShape.size)
		decodeStep(&d.steps[j][start-1], acc, d.M)
		ms.replayed += len(kids) - start
	}
	for st := start; st < len(kids); st++ {
		acc, accShape, err = d.merge(j, st, kids[st], acc, accShape, &accNew, accPre, st == len(kids)-1, ar, allowPar, sc, ms)
		if err != nil {
			return err
		}
	}
	d.retainShape(j, accShape)
	d.newCnt[j] = accNew
	d.preCnt[j] = append(d.preCnt[j][:0], accPre...)
	return nil
}

// childDims computes the accumulated subtree counts after folding child
// ch and the resulting table shape (backed by ar).
func (d *PowerDP) childDims(ch int, accNew int32, accPre []int32, ar *arena[int32]) (int32, []int32, shape, error) {
	outNew := accNew + d.newCnt[ch]
	outPre := ar.alloc(d.M)
	for i := range outPre {
		outPre[i] = accPre[i] + d.preCnt[ch][i]
	}
	if chMode0 := int(d.prob.Existing.Mode(ch)); chMode0 == 0 {
		outNew++
	} else {
		outPre[chMode0-1]++
	}
	outDims := ar.alloc(d.nf)
	d.nodeDims(outDims, outNew, outPre)
	outShape, err := fillShape(outDims, ar.alloc(d.nf))
	return outNew, outPre, outShape, err
}

// merge folds child ch — the st-th child of j — into the accumulated
// table of node j, updating the accumulated subtree counts in place.
// The last merge writes straight into j's retained final table;
// earlier ones use arena intermediates.
func (d *PowerDP) merge(j, st, ch int, acc []int32, accShape shape, accNew *int32, accPre []int32, last bool, ar *arena[int32], allowPar bool, sc *bpScratch, ms *mergeStats) ([]int32, shape, error) {
	outNew, outPre, outShape, err := d.childDims(ch, *accNew, accPre, ar)
	if err != nil {
		return nil, shape{}, err
	}
	var out []int32
	if last {
		d.vals[j] = grown(d.vals[j], outShape.size)
		out = d.vals[j]
	} else {
		out = ar.alloc(outShape.size)
	}
	d.mergeInto(j, st, ch, acc, accShape, outShape, out, ar, allowPar, sc, ms)
	*accNew = outNew
	copy(accPre, outPre)
	return out, outShape, nil
}

// mergeInto runs the actual table merge of child ch — the st-th child
// of j — into out (sized outShape.size), refreshing the step's
// provenance table.
func (d *PowerDP) mergeInto(j, st, ch int, acc []int32, accShape, outShape shape, out []int32, ar *arena[int32], allowPar bool, sc *bpScratch, ms *mergeStats) {
	chShape := d.shapes[ch]
	chVals := d.vals[ch]
	chMode0 := int(d.prob.Existing.Mode(ch)) // 0 when ch is not pre-existing

	step := &d.steps[j][st]
	if d.noPre && int(outShape.dims[d.M-1]) >= minDenseWidth &&
		d.mergeCompressed(step, acc, accShape, chVals, chShape, outShape, out, sc, ms) {
		return
	}
	step.comp = false
	ms.cells += accShape.size * chShape.size

	for i := range out {
		out[i] = pUnreached
	}
	// Stale provenance cells are never read: the reconstruction only
	// follows cells whose value was written when the table was last
	// rebuilt, and every value write refreshes its provenance.
	step.prov = grown(step.prov, outShape.size)
	prov := step.prov
	for i := range prov {
		prov[i] = noProv
	}

	// Precompute the output-stride bump of placing the child's server
	// at each mode.
	placeBump := ar.alloc(d.M + 1)
	placeBump[0] = 0
	for m := 1; m <= d.M; m++ {
		if chMode0 == 0 {
			placeBump[m] = outShape.strides[d.fieldNew(m)]
		} else {
			placeBump[m] = outShape.strides[d.fieldReuse(chMode0, m)]
		}
	}

	// The merge work is |acc|·|child|·(M+1); go parallel only when it
	// pays for the second provenance pass and the goroutine fan-out.
	const parallelThreshold = 1 << 22
	work := int64(accShape.size) * int64(chShape.size) * int64(d.M+1)
	if allowPar && d.workers > 1 && work >= parallelThreshold {
		d.mergeParallel(acc, accShape, chVals, chShape, outShape, out, prov, placeBump)
	} else {
		d.mergeSequential(acc, accShape, chVals, chShape, outShape, out, prov, placeBump, ar)
	}
}

// mergeSequential is the single-goroutine merge: first writer of the
// minimal value wins, which by scan order is the smallest (accumulated
// cell, child cell) pair — the same order packProv encodes.
func (d *PowerDP) mergeSequential(acc []int32, accShape shape, chVals []int32, chShape shape, outShape shape, out []int32, prov []uint64, placeBump []int32, ar *arena[int32]) {
	pm := d.prob.Power
	update := func(idx int32, v int32, p uint64) {
		if v < out[idx] {
			out[idx] = v
			prov[idx] = p
		}
	}
	var ao, co odometer
	ao.init(accShape.dims, outShape.strides, ar.alloc(len(accShape.dims)))
	co.init(chShape.dims, outShape.strides, ar.alloc(len(chShape.dims)))
	for aFlat := 0; aFlat < accShape.size; aFlat++ {
		a := acc[aFlat]
		if a <= d.wm {
			co.reset()
			for cFlat := 0; cFlat < chShape.size; cFlat++ {
				cv := chVals[cFlat]
				if cv <= d.wm {
					base := ao.out + co.out
					if a+cv <= d.wm {
						update(base, a+cv, packProv(aFlat, cFlat, 0))
					}
					minMode, ok := pm.ModeFor(int(cv))
					if ok {
						for m := minMode; m <= d.M; m++ {
							update(base+placeBump[m], a, packProv(aFlat, cFlat, uint8(m)))
						}
					}
				}
				co.next()
			}
		}
		ao.next()
	}
}

// mergeParallel splits the accumulated table across workers in two
// phases: an atomic-min pass over the values, then an atomic-min pass
// over the packed provenance of value-optimal transitions. Both minima
// are order-free, so the result is identical to the sequential merge.
func (d *PowerDP) mergeParallel(acc []int32, accShape shape, chVals []int32, chShape shape, outShape shape, out []int32, prov []uint64, placeBump []int32) {
	pm := d.prob.Power
	chunks := d.workers * 4
	chunkSize := (accShape.size + chunks - 1) / chunks

	scan := func(chunk int, visit func(base int32, aFlat, cFlat int, a, cv int32)) {
		lo := chunk * chunkSize
		hi := min(lo+chunkSize, accShape.size)
		if lo >= hi {
			return
		}
		ao := odometerAt(accShape.dims, outShape.strides, lo)
		co := newOdometer(chShape.dims, outShape.strides)
		for aFlat := lo; aFlat < hi; aFlat++ {
			a := acc[aFlat]
			if a <= d.wm {
				co.reset()
				for cFlat := 0; cFlat < chShape.size; cFlat++ {
					cv := chVals[cFlat]
					if cv <= d.wm {
						visit(ao.out+co.out, aFlat, cFlat, a, cv)
					}
					co.next()
				}
			}
			ao.next()
		}
	}

	// Phase 1: minimal values.
	par.ForEach(chunks, d.workers, func(chunk int) {
		scan(chunk, func(base int32, aFlat, cFlat int, a, cv int32) {
			if a+cv <= d.wm {
				atomicMinInt32(&out[base], a+cv)
			}
			minMode, ok := pm.ModeFor(int(cv))
			if ok {
				for m := minMode; m <= d.M; m++ {
					atomicMinInt32(&out[base+placeBump[m]], a)
				}
			}
		})
	})
	// Phase 2: minimal provenance among value-optimal transitions.
	par.ForEach(chunks, d.workers, func(chunk int) {
		scan(chunk, func(base int32, aFlat, cFlat int, a, cv int32) {
			if a+cv <= d.wm && out[base] == a+cv {
				atomicMinUint64(&prov[base], packProv(aFlat, cFlat, 0))
			}
			minMode, ok := pm.ModeFor(int(cv))
			if ok {
				for m := minMode; m <= d.M; m++ {
					idx := base + placeBump[m]
					if out[idx] == a {
						atomicMinUint64(&prov[idx], packProv(aFlat, cFlat, uint8(m)))
					}
				}
			}
		})
	})
}

func atomicMinInt32(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if v >= cur || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

func atomicMinUint64(addr *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(addr)
		if v >= cur || atomic.CompareAndSwapUint64(addr, cur, v) {
			return
		}
	}
}

// paretoPrune keeps the non-dominated candidates of d.cands in d.front,
// sorted by ascending cost with strictly descending power. Costs within
// frontEps are treated as equal so that floating-point jitter in summed
// prices does not produce near-duplicate front points.
func (d *PowerDP) paretoPrune() {
	const frontEps = 1e-9
	front := d.front[:0]
	if len(d.cands) == 0 {
		d.front = front
		return
	}
	slices.SortFunc(d.cands, func(a, b frontEntry) int {
		if a.cost != b.cost {
			if a.cost < b.cost {
				return -1
			}
			return 1
		}
		if a.power != b.power {
			if a.power < b.power {
				return -1
			}
			return 1
		}
		return 0
	})
	bestPower := math.Inf(1)
	for _, c := range d.cands {
		if c.power >= bestPower-frontEps {
			continue
		}
		if n := len(front); n > 0 && c.cost <= front[n-1].cost+frontEps {
			// Same cost up to jitter but strictly less power:
			// replace the kept entry.
			front[n-1] = c
		} else {
			front = append(front, c)
		}
		bestPower = c.power
	}
	d.front = front
}

// Front returns the cost/power Pareto front, ascending in cost.
func (s *PowerSolver) Front() []ParetoPoint {
	return s.FrontInto(make([]ParetoPoint, 0, len(s.front)))
}

// FrontInto is Front with a caller-owned destination slice: the front is
// written into dst[:0] (growing it only when its capacity is too small)
// and returned, so per-solve front reads in sweep loops stay
// allocation-free once dst has grown to the high-water front size.
func (s *PowerSolver) FrontInto(dst []ParetoPoint) []ParetoPoint {
	dst = dst[:0]
	for _, f := range s.front {
		dst = append(dst, ParetoPoint{Cost: f.cost, Power: f.power})
	}
	return dst
}

// Best returns the minimal-power solution whose cost does not exceed
// bound, or found == false when the bound is unreachable. Among equal
// power values the cheaper solution wins.
func (s *PowerSolver) Best(bound float64) (*PowerResult, bool) {
	res, ok := s.BestInto(bound, nil)
	if !ok {
		return nil, false
	}
	return &res, true
}

// BestInto is Best with a caller-owned destination placement (allocated
// fresh when nil; reset first otherwise), enabling allocation-free
// sweeps over many cost bounds. The returned result's Placement field
// is dst. Like the flow engine's hot-path methods it panics on the
// programming error of a destination sized for a different tree; use
// Best for untrusted destinations.
func (s *PowerSolver) BestInto(bound float64, dst *tree.Replicas) (PowerResult, bool) {
	// The front is sorted by ascending cost with descending power, so
	// the best affordable entry is the last one within the bound.
	idx := sort.Search(len(s.front), func(i int) bool { return s.front[i].cost > bound }) - 1
	if idx < 0 {
		return PowerResult{}, false
	}
	return s.reconstruct(s.front[idx], dst), true
}

// MinPower returns the minimal-power solution regardless of cost (the
// plain MinPower objective, NP-complete for arbitrary M per Theorem 2).
func (s *PowerSolver) MinPower() *PowerResult {
	res, _ := s.Best(math.Inf(1))
	return res
}

// At reconstructs the i-th point of the Pareto front.
func (s *PowerSolver) At(i int) *PowerResult {
	res := s.reconstruct(s.front[i], nil)
	return &res
}

func (s *PowerSolver) reconstruct(f frontEntry, dst *tree.Replicas) PowerResult {
	if dst == nil {
		dst = tree.ReplicasOf(s.prob.Tree)
	} else {
		if dst.N() != s.prob.Tree.N() {
			panic(fmt.Sprintf("core: destination set covers %d nodes, tree has %d", dst.N(), s.prob.Tree.N()))
		}
		dst.Reset()
	}
	if f.rootMode != 0 {
		dst.Set(s.prob.Tree.Root(), f.rootMode)
	}
	s.rebuild(s.prob.Tree.Root(), f.rootCell, dst)
	return PowerResult{Placement: dst, Cost: f.cost, Power: f.power}
}

// rebuild unwinds the merge decisions of node j for the given flat
// cell, in reverse fold order — which at the root may be the
// volatility-derived permutation rather than child order.
func (s *PowerSolver) rebuild(j int, cell int32, placement *tree.Replicas) {
	steps := s.steps[j]
	kids := s.prob.Tree.Children(j)
	atRoot := len(s.rootOrder) == len(steps) && len(steps) > 0 && j == s.prob.Tree.Root()
	for q := len(steps) - 1; q >= 0; q-- {
		st := q
		if atRoot {
			st = s.rootOrder[q]
		}
		var p uint64
		if steps[st].comp {
			// Compressed merges materialise no provenance table; derive
			// this cell's decision from the step's row snapshots.
			p = steps[st].lazyProv(cell, s.prob.Power.Caps, s.prob.Power.M())
		} else {
			p = steps[st].prov[cell]
		}
		if p == noProv {
			panic(fmt.Sprintf("core: power reconstruction hit an unreached cell at node %d", j))
		}
		aPrev, cCell, mode := unpackProv(p)
		ch := kids[st]
		if mode != 0 {
			placement.Set(ch, mode)
		}
		s.rebuild(ch, cCell, placement)
		cell = aPrev
	}
	if cell != 0 {
		panic(fmt.Sprintf("core: power reconstruction reached invalid base cell %d at node %d", cell, j))
	}
}
