package core

import (
	"fmt"

	"replicatree/internal/tree"
)

// This file implements the polynomial-time exact algorithm of
// Rehn-Sonigo, "Optimal Replica Placement in Tree Networks with QoS and
// Bandwidth Constraints and the Closest Allocation Policy" (arXiv
// 0706.3350): minimal replica counting under the closest policy with
// per-client QoS (distance) bounds and per-link bandwidths.
//
// The dynamic program exploits the closest policy's structure: all flow
// escaping a subtree is absorbed at the same node — the first equipped
// proper ancestor of the subtree's root. A subtree state is therefore
// fully described by (replicas used, escaped flow, depth requirement),
// where the requirement is the minimal depth the absorbing ancestor may
// have without violating any contributing client's QoS bound. For a
// fixed replica count and requirement, less escaped flow is always at
// least as good (capacity, bandwidth and downstream sums are all
// monotone in it), so each node keeps one table
//
//	tab[r][L] = minimal escaped flow of the subtree using r replicas,
//	            requiring the first equipped proper ancestor to sit at
//	            depth >= some bound <= L
//
// built bottom-up with a knapsack merge over the children (checking
// each child link's bandwidth as its flow crosses) and two closures per
// node: equip it (all traversing flow absorbed, load <= W, nothing
// escapes) or let the flow pass (possible only while every contributing
// client's QoS still tolerates a higher server).

const qInf = int(1) << 60

const (
	qNone uint8 = iota
	qEquip
	qEscape
)

// MinReplicasQoS returns a replica set of minimal cardinality serving
// every client under the closest policy with uniform capacity W, every
// client within its QoS bound and every link within its bandwidth
// (every replica at mode 1). A nil constraint set solves the classical
// problem (and then agrees with greedy.MinReplicas, which the tests
// check). It returns ErrInfeasible when no placement at all serves the
// instance.
//
// Time and memory are O(N²·H) in the worst case (H the tree height),
// the polynomial bound of the paper: comfortably fast on the
// evaluation's 100-node trees, but not intended for degenerate
// path-shaped instances with thousands of nodes.
func MinReplicasQoS(t *tree.Tree, W int, c *tree.Constraints) (*tree.Replicas, error) {
	if W <= 0 {
		return nil, fmt.Errorf("core: non-positive capacity %d", W)
	}
	if err := c.Validate(t); err != nil {
		return nil, err
	}
	if c == nil {
		c = tree.NewConstraints(t)
	}
	d := &qosDP{t: t, w: W, c: c}
	d.run()

	root := t.Root()
	best := -1
	for r := 0; r < len(d.tab[root]); r++ {
		if d.tab[root][r][0] == 0 {
			best = r
			break
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}
	res := tree.ReplicasOf(t)
	d.build(res, root, best, 0)
	// The tables are exact by construction; re-validate as a cheap
	// guard against implementation drift.
	if err := tree.ValidateConstrained(t, res, tree.PolicyClosest, W, c); err != nil {
		return nil, fmt.Errorf("core: MinReplicasQoS produced an invalid placement (bug): %w", err)
	}
	return res, nil
}

type qosDP struct {
	t *tree.Tree
	w int
	c *tree.Constraints

	size []int
	// tab[j][r][L] and choice[j][r][L]: see the file comment. Rows run
	// L = 0..max(depth(j)-1, 0): an escaping flow must be absorbed by a
	// proper ancestor, so deeper requirements are unsatisfiable.
	tab    [][][]int
	choice [][][]uint8
	// splits[j][i][r][L]: replicas assigned to children(j)[i] in the
	// accumulated-merge cell (r, L) after merging children 0..i.
	splits [][][][]int
}

func (d *qosDP) run() {
	t := d.t
	n := t.N()
	d.size = make([]int, n)
	d.tab = make([][][]int, n)
	d.choice = make([][][]uint8, n)
	d.splits = make([][][][]int, n)

	for _, j := range t.PostOrder() {
		D := t.Depth(j)
		kids := t.Children(j)
		accRows := D + 1 // child requirements live in 0..D

		// Knapsack merge of the children: acc[r][L] is the minimal sum
		// of child flows using r replicas below, every child bound <= L
		// and every child link within its bandwidth.
		acc := [][]int{make([]int, accRows)} // acc[0][*] = 0
		sz := 0
		d.splits[j] = make([][][]int, len(kids))
		for ci, child := range kids {
			csz := d.size[child]
			bw := d.c.Bandwidth(child)
			next := make([][]int, sz+csz+1)
			spl := make([][]int, sz+csz+1)
			for r := range next {
				next[r] = make([]int, accRows)
				spl[r] = make([]int, accRows)
				for L := range next[r] {
					next[r][L] = qInf
				}
			}
			for r1 := 0; r1 <= sz; r1++ {
				for r2 := 0; r2 <= csz; r2++ {
					for L := 0; L < accRows; L++ {
						a := acc[r1][L]
						f := d.tab[child][r2][L]
						if a >= qInf || f >= qInf || (bw >= 0 && f > bw) {
							continue
						}
						if v := a + f; v < next[r1+r2][L] {
							next[r1+r2][L] = v
							spl[r1+r2][L] = r2
						}
					}
				}
			}
			acc = next
			d.splits[j][ci] = spl
			sz += csz
		}
		d.size[j] = sz + 1

		own := t.ClientSum(j)
		ownL := 0 // minimal server depth the node's own clients tolerate
		for k, dem := range t.Clients(j) {
			if dem > 0 {
				if l := d.c.MinServerDepth(j, k, D); l > ownL {
					ownL = l
				}
			}
		}

		rows := max(D-1, 0) + 1
		tab := make([][]int, d.size[j]+1)
		ch := make([][]uint8, d.size[j]+1)
		for r := range tab {
			tab[r] = make([]int, rows)
			ch[r] = make([]uint8, rows)
			for L := range tab[r] {
				tab[r][L] = qInf
			}
			// Equip j: the whole traversing flow is absorbed here, so
			// nothing escapes and no requirement remains (own clients
			// are 1 hop away, within any positive QoS bound).
			if r >= 1 {
				if a := acc[r-1][D]; a < qInf && own+a <= d.w {
					for L := range tab[r] {
						tab[r][L] = 0
						ch[r][L] = qEquip
					}
				}
			}
			// Let the flow pass: only while every contributing client
			// tolerates a server at depth <= D-1.
			if j != t.Root() {
				for L := ownL; L < rows && r <= sz; L++ {
					if a := acc[r][L]; a < qInf {
						if f := own + a; f < tab[r][L] {
							tab[r][L] = f
							ch[r][L] = qEscape
						}
					}
				}
			} else if own == 0 && r <= sz && acc[r][0] == 0 && tab[r][0] > 0 {
				// The root has no ancestor: passing is only "nothing to
				// pass".
				tab[r][0] = 0
				ch[r][0] = qEscape
			}
		}
		d.tab[j] = tab
		d.choice[j] = ch
	}
}

// build reconstructs the placement behind tab[j][r][L] into res.
func (d *qosDP) build(res *tree.Replicas, j, r, L int) {
	kids := d.t.Children(j)
	accR, accRow := r, L
	if d.choice[j][r][L] == qEquip {
		res.Set(j, 1)
		accR, accRow = r-1, d.t.Depth(j)
	}
	for i := len(kids) - 1; i >= 0; i-- {
		r2 := d.splits[j][i][accR][accRow]
		d.build(res, kids[i], r2, accRow)
		accR -= r2
	}
}
