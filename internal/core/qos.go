package core

import (
	"context"
	"fmt"

	"replicatree/internal/tree"
)

// This file implements the polynomial-time exact algorithm of
// Rehn-Sonigo, "Optimal Replica Placement in Tree Networks with QoS and
// Bandwidth Constraints and the Closest Allocation Policy" (arXiv
// 0706.3350): minimal replica counting under the closest policy with
// per-client QoS (distance) bounds and per-link bandwidths.
//
// The dynamic program exploits the closest policy's structure: all flow
// escaping a subtree is absorbed at the same node — the first equipped
// proper ancestor of the subtree's root. A subtree state is therefore
// fully described by (replicas used, escaped flow, depth requirement),
// where the requirement is the minimal depth the absorbing ancestor may
// have without violating any contributing client's QoS bound. For a
// fixed replica count and requirement, less escaped flow is always at
// least as good (capacity, bandwidth and downstream sums are all
// monotone in it), so each node keeps one table
//
//	tab[r][L] = minimal escaped flow of the subtree using r replicas,
//	            requiring the first equipped proper ancestor to sit at
//	            depth >= some bound <= L
//
// built bottom-up with a knapsack merge over the children (checking
// each child link's bandwidth as its flow crosses) and two closures per
// node: equip it (all traversing flow absorbed, load <= W, nothing
// escapes) or let the flow pass (possible only while every contributing
// client's QoS still tolerates a higher server).
//
// Every per-node table is a flat row-major slice (row r at offset
// r*rowWidth, the same index-addressed layout the shape type gives the
// power tables) held in a retained buffer so it can carry over to the
// next solve; only the knapsack-merge intermediates live in the
// solver's per-solve arena.

const qInf = int(1) << 60

const (
	qNone uint8 = iota
	qEquip
	qEscape
)

// MinReplicasQoS returns a replica set of minimal cardinality serving
// every client under the closest policy with uniform capacity W, every
// client within its QoS bound and every link within its bandwidth
// (every replica at mode 1). A nil constraint set solves the classical
// problem (and then agrees with greedy.MinReplicas, which the tests
// check). It returns ErrInfeasible when no placement at all serves the
// instance.
//
// Time and memory are O(N²·H) in the worst case (H the tree height),
// the polynomial bound of the paper: comfortably fast on the
// evaluation's 100-node trees, but not intended for degenerate
// path-shaped instances with thousands of nodes.
//
// MinReplicasQoS builds a fresh solver per call; hot loops sweeping
// many constraint sets on the same tree should hold a QoSSolver
// instead.
func MinReplicasQoS(t *tree.Tree, W int, c *tree.Constraints) (*tree.Replicas, error) {
	return NewQoSSolver(t).Solve(W, c, nil)
}

// QoSSolver solves constrained replica-counting instances on one tree.
// Merge intermediates live in a flat arena and every node's tables in
// retained per-node buffers, all grown monotonically to the high-water
// mark of past solves, so after two warm-up solves of an instance shape
// every further Solve with a caller-owned destination performs no heap
// allocation.
//
// The retained tables make solves incremental: demand edits through
// tree.Tree.SetDemand dirty only the touched node's ancestor chain,
// while a different capacity W or constraint set (a different
// *tree.Constraints, or the same one mutated — detected through
// Constraints.Generation) invalidates every table. Use Invalidate
// after mutations the solver cannot observe, and Reset to rebind it to
// another tree while keeping its buffers.
//
// A solver is not safe for concurrent use; run one per goroutine.
type QoSSolver struct {
	t             *tree.Tree
	eng           *tree.Engine
	unconstrained *tree.Constraints

	// Per node, retained across solves: replica capacity of the subtree
	// including the node, its flat tab/choice block ((size+1) rows of
	// width max(depth-1,0)+1), and — indexed by the CHILD's id — the
	// flat split table of the merge that folded that child into its
	// parent (rows of width depth(child), the parent's accumulator
	// width).
	size    []int
	tabs    [][]int
	choices [][]uint8
	splits  [][]int

	// Knapsack-merge intermediates, one arena per worker, recycled per
	// node (intermediates never outlive the node whose merges produced
	// them, so each arena sizes to the largest single node).
	arenas []arena[int]

	// Wave-parallel scheduler (see SetWorkers and waveSched).
	wave waveSched

	// Compressed-merge scratch and merge-layer counters, one per
	// worker like the arenas, plus the per-child compressed fold-step
	// snapshots (indexed by the CHILD's id, like splits).
	bps    []bpScratch
	mstats []mergeStats
	qsteps []qStep

	// Incremental bookkeeping.
	track      dirtyTracker
	lastW      int
	lastC      *tree.Constraints
	lastCGen   uint64
	recomputed int

	// Cooperative cancellation (see SetContext and cancelGate).
	cancel cancelGate

	// Per solve:
	w         int
	c         *tree.Constraints
	fullSolve bool
}

// qStep is the retained snapshot of one compressed knapsack fold step
// (the merge of one child into its parent's accumulator): breakpoint
// runs of every requirement column of the accumulator before (inRuns)
// and after (outRuns) the merge, concatenated with per-column offsets.
// comp marks whether the step's last run was compressed; dense steps
// record their splits in QoSSolver.splits instead, compressed ones
// reconstruct them lazily (lazySplit) and restart partial fold replays
// from their output snapshot.
type qStep struct {
	comp    bool
	inOff   []int32
	inRuns  []bpRun
	outOff  []int32
	outRuns []bpRun
}

// NewQoSSolver returns a reusable constrained-counting solver for t.
func NewQoSSolver(t *tree.Tree) *QoSSolver {
	s := &QoSSolver{
		arenas: make([]arena[int], 1),
		bps:    make([]bpScratch, 1),
		mstats: make([]mergeStats, 1),
	}
	s.wave.workers = 1
	s.Reset(t)
	return s
}

// SetWorkers sets the number of workers for the bottom-up pass
// (workers <= 0 selects runtime.GOMAXPROCS(0); 1, the default, runs
// sequentially without goroutines). Results are bit-identical for
// every worker count; see waveSched and MinCostSolver.SetWorkers.
func (s *QoSSolver) SetWorkers(workers int) {
	n := s.wave.setWorkers(workers, func(w, i int) {
		s.solveNode(s.wave.dirtyIdx[i], w)
	})
	s.arenas = grownKeep(s.arenas, n)[:n]
	s.bps = grownKeep(s.bps, n)[:n]
	s.mstats = grownKeep(s.mstats, n)[:n]
}

// Reset rebinds the solver to tree t, keeping every retained buffer as
// scratch for the new tree, so sweeping many trees of similar shape
// through one solver skips most warm-up allocations. The first solve
// after a Reset recomputes every table.
func (s *QoSSolver) Reset(t *tree.Tree) {
	n := t.N()
	s.t = t
	if s.eng == nil {
		s.eng = tree.NewEngine(t)
	} else {
		s.eng.Reset(t)
	}
	if s.unconstrained == nil {
		s.unconstrained = tree.NewConstraints(t)
	} else {
		s.unconstrained.Reset(t)
	}
	s.size = grown(s.size, n)
	s.tabs = grownKeep(s.tabs, n)
	s.choices = grownKeep(s.choices, n)
	s.splits = grownKeep(s.splits, n)
	s.qsteps = grownKeep(s.qsteps, n)
	s.lastC = nil
	s.track.bind(n)
}

// Invalidate discards the validity of every cached subtree table,
// forcing the next solve to recompute the whole tree. Demand edits
// through SetDemand/SetClientRequests and constraint edits through the
// Constraints setters are detected automatically and do not need it.
func (s *QoSSolver) Invalidate() { s.track.invalidate() }

// SetContext installs a context consulted by every following Solve at
// coarse checkpoints (between height waves on the parallel path, every
// cancelStride node tables on the sequential one). A cancelled context
// aborts the in-flight solve within one checkpoint with nothing
// committed; the solver stays repairable exactly as after a solve
// error. A nil context — the default — disables the checkpoints.
func (s *QoSSolver) SetContext(ctx context.Context) { s.cancel.set(ctx) }

// Stats profiles the most recent completed solve: how many of the
// tree's node tables it actually recomputed.
func (s *QoSSolver) Stats() SolveStats {
	st := SolveStats{Nodes: s.t.N(), Recomputed: s.recomputed}
	for i := range s.mstats {
		s.mstats[i].addTo(&st)
	}
	return st
}

// Solve runs the dynamic program for capacity W under constraints c
// (nil = unconstrained) and writes the minimal placement into dst
// (allocated fresh when nil; reset first otherwise). The returned set
// is dst.
func (s *QoSSolver) Solve(W int, c *tree.Constraints, dst *tree.Replicas) (*tree.Replicas, error) {
	t := s.t
	if W <= 0 {
		return nil, fmt.Errorf("core: non-positive capacity %d", W)
	}
	if err := c.Validate(t); err != nil {
		return nil, err
	}
	if c == nil {
		c = s.unconstrained
	}
	if dst == nil {
		dst = tree.ReplicasOf(t)
	} else {
		if dst.N() != t.N() {
			return nil, fmt.Errorf("core: destination set covers %d nodes, tree has %d", dst.N(), t.N())
		}
		dst.Reset()
	}
	s.w, s.c = W, c

	// Demands dirty their ancestor chain; a different capacity or
	// constraint set reshapes every table. Constraint identity is the
	// pointer plus its mutation generation, so in-place edits between
	// solves are caught too.
	s.fullSolve = W != s.lastW || c != s.lastC || c.Generation() != s.lastCGen || !s.track.solved
	s.track.mark(t, s.fullSolve)
	s.track.propagate(t)

	if err := s.run(); err != nil {
		// Cancelled between checkpoints: nothing was committed, so the
		// next solve re-dirties and recomputes a superset of the
		// interrupted work (see cancel.go).
		return nil, err
	}

	s.lastW, s.lastC, s.lastCGen = W, c, c.Generation()
	s.track.commit(t)

	root := t.Root()
	rootTab := s.tabs[root] // width 1: the root sits at depth 0
	best := -1
	for r := 0; r <= s.size[root]; r++ {
		if rootTab[r] == 0 {
			best = r
			break
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}
	s.build(dst, root, best, 0)
	// The tables are exact by construction; re-validate as a cheap
	// guard against implementation drift.
	if err := s.eng.ValidateUniformConstrained(dst, tree.PolicyClosest, W, c); err != nil {
		return nil, fmt.Errorf("core: MinReplicasQoS produced an invalid placement (bug): %w", err)
	}
	return dst, nil
}

// tabRows returns the row width of node j's tab/choice block: an
// escaping flow must be absorbed by a proper ancestor, so requirements
// live in 0..max(depth(j)-1, 0).
func (s *QoSSolver) tabRows(j int) int { return max(s.t.Depth(j)-1, 0) + 1 }

func (s *QoSSolver) run() error {
	for i := range s.mstats {
		s.mstats[i] = mergeStats{}
	}
	var runErr error
	if s.wave.workers > 1 {
		var ok bool
		s.recomputed, ok = s.wave.run(s.t, s.track.dirty, s.t.Waves(), s.cancel.done)
		if !ok {
			runErr = s.cancel.ctx.Err()
		}
	} else {
		s.recomputed = 0
		for _, j := range s.t.PostOrder() {
			if !s.track.dirty[j] {
				continue
			}
			if s.recomputed%cancelStride == 0 {
				if err := s.cancel.err(); err != nil {
					runErr = err
					break
				}
			}
			s.recomputed++
			s.solveNode(j, 0)
		}
	}
	// Flush the growth owed to each arena's last node into this solve
	// (see MinCostSolver.run): a deferred reset would surface as a
	// one-off allocation in a later solve's timed region.
	for i := range s.arenas {
		s.arenas[i].reset()
	}
	return runErr
}

// solveNode rebuilds node j's table from its children's, carving
// knapsack-merge intermediates out of worker w's arena.
func (s *QoSSolver) solveNode(j, w int) {
	ar, sc, ms := &s.arenas[w], &s.bps[w], &s.mstats[w]
	t := s.t
	ar.reset()
	D := t.Depth(j)
	kids := t.Children(j)
	accRows := D + 1 // child requirements live in 0..D

	// Fold restart point. The knapsack merge never reads node j's own
	// demand (only the closures below do), so a node dirtied by its
	// own clients alone replays zero fold steps; a dirty child
	// restarts the fold at its position, decoding the preceding
	// step's retained output snapshot as the accumulator. Both need
	// the restart predecessor to have run compressed — dense steps
	// keep no snapshot — and any input change to a prefix step dirties
	// its child, which moves the restart before the change.
	start := 0
	if !s.fullSolve && len(kids) > 0 {
		start = len(kids)
		for st, ch := range kids {
			if s.track.dirty[ch] {
				start = st
				break
			}
		}
		if start > 0 && !s.qsteps[kids[start-1]].comp {
			start = 0
		}
	}

	// Knapsack merge of the children: acc cell (r, L) is the
	// minimal sum of child flows using r replicas below, every
	// child bound <= L and every child link within its bandwidth.
	// Every child's tab block has row width accRows too (its depth
	// is D+1), so rows align without re-indexing.
	var acc []int
	sz := 0
	if start == 0 {
		acc = ar.alloc(accRows) // the single r = 0 row, all zero
		for L := range acc {
			acc[L] = 0
		}
	} else {
		for _, ch := range kids[:start] {
			sz += s.size[ch]
		}
		prev := &s.qsteps[kids[start-1]]
		acc = ar.alloc((sz + 1) * accRows)
		for L := 0; L < accRows; L++ {
			decodeRunsIntStrided(prev.outRuns[prev.outOff[L]:prev.outOff[L+1]],
				acc[L:], sz+1, accRows, qInf)
		}
		ms.replayed += len(kids) - start
	}
	for st := start; st < len(kids); st++ {
		child := kids[st]
		csz := s.size[child]
		bw := s.c.Bandwidth(child)
		ctab := s.tabs[child]
		next := ar.alloc((sz + csz + 1) * accRows)
		step := &s.qsteps[child]
		if sz+csz+1 >= minDenseWidth &&
			s.mergeColumns(step, acc, ctab, next, sz, csz, accRows, bw, sc, ms) {
			acc = next
			sz += csz
			continue
		}
		step.comp = false
		ms.cells += (sz + 1) * (csz + 1) * accRows
		for i := range next {
			next[i] = qInf
		}
		// Stale split cells are never read: build only follows
		// cells whose next value was written when the parent's
		// table was last rebuilt, and every value write refreshes
		// its split.
		s.splits[child] = grown(s.splits[child], (sz+csz+1)*accRows)
		spl := s.splits[child]
		for r1 := 0; r1 <= sz; r1++ {
			for r2 := 0; r2 <= csz; r2++ {
				o := (r1 + r2) * accRows
				for L := 0; L < accRows; L++ {
					a := acc[r1*accRows+L]
					f := ctab[r2*accRows+L]
					if a >= qInf || f >= qInf || (bw >= 0 && f > bw) {
						continue
					}
					if v := a + f; v < next[o+L] {
						next[o+L] = v
						spl[o+L] = r2
					}
				}
			}
		}
		acc = next
		sz += csz
	}
	s.size[j] = sz + 1

	own := t.ClientSum(j)
	ownL := 0 // minimal server depth the node's own clients tolerate
	for k, dem := range t.Clients(j) {
		if dem > 0 {
			if l := s.c.MinServerDepth(j, k, D); l > ownL {
				ownL = l
			}
		}
	}

	rows := s.tabRows(j)
	s.tabs[j] = grown(s.tabs[j], (s.size[j]+1)*rows)
	s.choices[j] = grown(s.choices[j], (s.size[j]+1)*rows)
	tab, ch := s.tabs[j], s.choices[j]
	for r := 0; r <= s.size[j]; r++ {
		o := r * rows
		for L := 0; L < rows; L++ {
			tab[o+L] = qInf
		}
		// Equip j: the whole traversing flow is absorbed here, so
		// nothing escapes and no requirement remains (own clients
		// are 1 hop away, within any positive QoS bound).
		if r >= 1 {
			if a := acc[(r-1)*accRows+D]; a < qInf && own+a <= s.w {
				for L := 0; L < rows; L++ {
					tab[o+L] = 0
					ch[o+L] = qEquip
				}
			}
		}
		// Let the flow pass: only while every contributing client
		// tolerates a server at depth <= D-1.
		if j != t.Root() {
			for L := ownL; L < rows && r <= sz; L++ {
				if a := acc[r*accRows+L]; a < qInf {
					if f := own + a; f < tab[o+L] {
						tab[o+L] = f
						ch[o+L] = qEscape
					}
				}
			}
		} else if own == 0 && r <= sz && acc[r*accRows] == 0 && tab[o] > 0 {
			// The root has no ancestor: passing is only "nothing to
			// pass".
			tab[o] = 0
			ch[o] = qEscape
		}
	}
}

// mergeColumns runs one knapsack fold step on breakpoints: every
// requirement column of the accumulator and of the (bandwidth-
// filtered) child table is encoded, convolved with bpConv, decoded
// into the dense next block, and the input/output runs are retained in
// step for lazy split reconstruction and partial fold replays. The
// bandwidth filter is a run-prefix drop: child column values decrease
// with the replica count, so the cells over the link's bandwidth are
// exactly the leading runs. Returns false — sending the caller to the
// dense kernel — when any column violates the monotone contract.
func (s *QoSSolver) mergeColumns(step *qStep, acc, ctab, next []int, sz, csz, accRows, bw int, sc *bpScratch, ms *mergeStats) bool {
	step.inOff = grown(step.inOff, accRows+1)
	inRuns := step.inRuns[:0]
	for L := 0; L < accRows; L++ {
		step.inOff[L] = int32(len(inRuns))
		runs, ok := encodeRunsIntStrided(acc[L:], sz+1, accRows, qInf, sc.tmp)
		sc.tmp = runs
		if !ok {
			step.inRuns = inRuns
			return false
		}
		inRuns = append(inRuns, runs...)
	}
	step.inOff[accRows] = int32(len(inRuns))
	step.inRuns = inRuns

	sc.cols = grown(sc.cols, accRows+1)
	colRuns := sc.colRuns[:0]
	for L := 0; L < accRows; L++ {
		sc.cols[L] = int32(len(colRuns))
		runs, ok := encodeRunsIntStrided(ctab[L:], csz+1, accRows, qInf, sc.tmp)
		sc.tmp = runs
		if !ok {
			sc.colRuns = colRuns
			return false
		}
		if bw >= 0 {
			for len(runs) > 0 && runs[0].val > int64(bw) {
				runs = runs[1:]
			}
		}
		colRuns = append(colRuns, runs...)
	}
	sc.cols[accRows] = int32(len(colRuns))
	sc.colRuns = colRuns

	step.outOff = grown(step.outOff, accRows+1)
	outRuns := step.outRuns[:0]
	for L := 0; L < accRows; L++ {
		step.outOff[L] = int32(len(outRuns))
		aR := step.inRuns[step.inOff[L]:step.inOff[L+1]]
		cR := sc.colRuns[sc.cols[L]:sc.cols[L+1]]
		var res []bpRun
		if len(aR) > 0 && len(cR) > 0 {
			// Sums at or past qInf are infeasible in the dense kernel
			// (they never beat the qInf fill), so cap them out here.
			res = bpConv(aR, cR, int64(qInf)-1, int32(sz+csz), sc)
		}
		ms.cells += len(aR) + len(cR) + len(res)
		outRuns = append(outRuns, res...)
		decodeRunsIntStrided(res, next[L:], sz+csz+1, accRows, qInf)
	}
	step.outOff[accRows] = int32(len(outRuns))
	step.outRuns = outRuns
	step.comp = true
	ms.rows += 2 * accRows
	return true
}

// lazySplit reconstructs the split the dense kernel would have
// recorded for output cell (rp, L) of child's compressed fold step:
// the dense loop visits the cell's candidate splits in ascending r1 =
// rp - r2 order and keeps the first strict improvement, so the
// recorded r2 belongs to the smallest r1 achieving the cell's final
// value. pre is the replica capacity of the accumulator the step
// merged into (the sum of the preceding children's sizes).
func (s *QoSSolver) lazySplit(child, rp, L, accRows, pre int) int {
	step := &s.qsteps[child]
	v := bpAt(step.outRuns[step.outOff[L]:step.outOff[L+1]], int32(rp))
	if v >= bpInfVal {
		panic(fmt.Sprintf("core: reconstruction reached infeasible cell (%d,%d) at child %d", rp, L, child))
	}
	inR := step.inRuns[step.inOff[L]:step.inOff[L+1]]
	ctab := s.tabs[child]
	csz := s.size[child]
	bw := s.c.Bandwidth(child)
	cFirst := firstFeasibleStrided(ctab, L, csz, accRows)
	for p := range inR {
		rs, va := inR[p].start, inR[p].val
		if va > v {
			continue // every candidate of this run is beaten
		}
		re := int32(pre)
		if p+1 < len(inR) {
			re = inR[p+1].start - 1
		}
		cvT := v - va
		if bw >= 0 && cvT > int64(bw) {
			continue // the dense kernel drops over-bandwidth flows
		}
		cl, cr, ok := valueRunStrided(ctab, L, cFirst, int32(csz), accRows, cvT)
		if !ok {
			continue
		}
		if lo, hi := max(rs, int32(rp)-cr), min(re, int32(rp)-cl); lo <= hi {
			return rp - int(lo)
		}
	}
	panic(fmt.Sprintf("core: no split for cell (%d,%d) at child %d", rp, L, child))
}

// firstFeasibleStrided returns the first replica count whose cell in
// column L of a monotone strided block is feasible (csz+1 when none).
func firstFeasibleStrided(tab []int, L, csz, stride int) int32 {
	lo, hi := int32(0), int32(csz+1)
	for lo < hi {
		mid := (lo + hi) >> 1
		if tab[int(mid)*stride+L] >= qInf {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// valueRunStrided locates the replica-count interval [cl, cr] of
// column L holding exactly value v, searching the feasible region
// [first, last] of the monotone strided block.
func valueRunStrided(tab []int, L int, first, last int32, stride int, v int64) (cl, cr int32, ok bool) {
	lo, hi := first, last+1
	for lo < hi {
		mid := (lo + hi) >> 1
		if int64(tab[int(mid)*stride+L]) <= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo > last || int64(tab[int(lo)*stride+L]) != v {
		return 0, 0, false
	}
	cl = lo
	hi = last + 1
	for lo < hi {
		mid := (lo + hi) >> 1
		if int64(tab[int(mid)*stride+L]) < v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return cl, lo - 1, true
}

// build reconstructs the placement behind tab cell (r, L) of node j
// into res.
func (s *QoSSolver) build(res *tree.Replicas, j, r, L int) {
	kids := s.t.Children(j)
	accRows := s.t.Depth(j) + 1
	accR, accRow := r, L
	if s.choices[j][r*s.tabRows(j)+L] == qEquip {
		res.Set(j, 1)
		accR, accRow = r-1, s.t.Depth(j)
	}
	pre := 0
	for _, child := range kids {
		pre += s.size[child]
	}
	for i := len(kids) - 1; i >= 0; i-- {
		child := kids[i]
		pre -= s.size[child]
		var r2 int
		if s.qsteps[child].comp {
			r2 = s.lazySplit(child, accR, accRow, accRows, pre)
		} else {
			r2 = s.splits[child][accR*accRows+accRow]
		}
		s.build(res, child, r2, accRow)
		accR -= r2
	}
}
