package core

import (
	"errors"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/failure"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// These tests pin the masked-solve contract (MinCostSolver.SetMask): a
// warm solver whose mask drifts one crash or recovery at a time must
// return byte-for-byte what a cold solver handed the same mask returns,
// the placement must avoid every down node yet stay valid for the full
// (unmasked) demand, and a single mask flip must re-solve only the
// flipped node's ancestor chain.

// maskedSeqCount returns the number of random crash/recover sequences
// the differential runs; the acceptance bar is at least 50.
func maskedSeqCount(t *testing.T) int {
	if testing.Short() {
		return 50
	}
	return 80
}

// crashStep flips one random node of the mask (crash if up, recover if
// down), avoiding the root with probability 7/8 so most sequences stay
// feasible while root-down infeasibility is still exercised.
func crashStep(m *failure.Mask, n int, src *rng.Source) int {
	j := src.IntN(n)
	if j == 0 && n > 1 && !src.Bool(0.125) {
		j = 1 + src.IntN(n-1)
	}
	if m.NodeUp(j) {
		m.CrashNode(j)
	} else {
		m.RecoverNode(j)
	}
	return j
}

// checkMaskedPlacement verifies the masked solver's contract on one
// solution: no replica on a down node, and the placement serves the
// full demand within W under plain (unmasked) closest routing — which
// is exactly the load model the masked DP accounts, so the placement
// stays valid when the outage ends.
func checkMaskedPlacement(t *testing.T, tr *tree.Tree, m *failure.Mask, r *tree.Replicas, W int) {
	t.Helper()
	for j := 0; j < tr.N(); j++ {
		if r.Has(j) && !m.NodeUp(j) {
			t.Fatalf("replica on down node %d", j)
		}
	}
	e := tree.NewEngine(tr)
	res := e.EvalUniform(r, tree.PolicyClosest, W)
	if res.Unserved != 0 {
		t.Fatalf("masked placement leaves %d unserved under unmasked routing", res.Unserved)
	}
	for j, l := range res.Loads {
		if l > W {
			t.Fatalf("masked placement overloads node %d: %d > W=%d", j, l, W)
		}
	}
}

// TestMaskedMinCostMatchesColdOverCrashSequences is the acceptance
// differential: over at least 50 random crash/recover sequences, an
// incremental masked re-solve after every event must byte-match a cold
// solve of the identically masked instance, with demand drift and
// repair-style pre-existing chaining mixed in.
func TestMaskedMinCostMatchesColdOverCrashSequences(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	W := 10
	for i := 0; i < maskedSeqCount(t); i++ {
		src := rng.Derive(909, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		n := tr.N()
		mask := failure.NewMask(n)
		warm := NewMinCostSolver(tr)
		warm.SetMask(mask)
		existing := tree.ReplicasOf(tr)
		dst := tree.ReplicasOf(tr)
		for step := 0; step < 8; step++ {
			crashStep(mask, n, src)
			if src.Bool(0.3) {
				driftClients(tr, 1+src.IntN(3), src)
			}
			got, gotErr := warm.SolveInto(existing, W, c, dst)

			cold := NewMinCostSolver(tr)
			cold.SetMask(mask)
			want, wantErr := cold.Solve(existing, W, c)

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seq %d step %d: cold err %v, incremental err %v", i, step, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrInfeasible) {
					t.Fatalf("seq %d step %d: non-infeasibility error %v", i, step, gotErr)
				}
				continue
			}
			if !want.Placement.Equal(got.Placement) || want.Cost != got.Cost ||
				want.Servers != got.Servers || want.Reused != got.Reused || want.New != got.New {
				t.Fatalf("seq %d step %d: cold %v (cost %v) != incremental %v (cost %v)",
					i, step, want.Placement, want.Cost, got.Placement, got.Cost)
			}
			checkMaskedPlacement(t, tr, mask, got.Placement, W)
			// Repair chaining: the next solve reuses this solution as its
			// pre-existing set, like netsim's online repair loop does.
			existing, dst = got.Placement, existing
		}
	}
}

// TestMaskedMinCostCappedMatchesUncapped cross-checks the server-count
// cap under masks: with minCapNodes lowered so the cap engages on small
// trees, capped masked solves must byte-match uncapped ones — including
// after the masked greedy feasibility pass fails and forces capB back
// to 0.
func TestMaskedMinCostCappedMatchesUncapped(t *testing.T) {
	saved := minCapNodes
	defer func() { minCapNodes = saved }()

	c := cost.Simple{Create: 0.1, Delete: 0.01}
	W := 10
	for i := 0; i < 25; i++ {
		src := rng.Derive(911, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		n := tr.N()
		mask := failure.NewMask(n)

		minCapNodes = 1
		capped := NewMinCostSolver(tr)
		capped.SetMask(mask)
		existing := tree.ReplicasOf(tr)
		for step := 0; step < 6; step++ {
			crashStep(mask, n, src)

			minCapNodes = 1
			got, gotErr := capped.Solve(existing, W, c)

			minCapNodes = 1 << 30
			cold := NewMinCostSolver(tr)
			cold.SetMask(mask)
			want, wantErr := cold.Solve(existing, W, c)

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seq %d step %d: uncapped err %v, capped err %v", i, step, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !want.Placement.Equal(got.Placement) || want.Cost != got.Cost {
				t.Fatalf("seq %d step %d: uncapped %v (cost %v) != capped %v (cost %v)",
					i, step, want.Placement, want.Cost, got.Placement, got.Cost)
			}
			existing = got.Placement
		}
	}
}

// TestMaskedSolveRecomputesOnlyCrashChain pins the repair-latency
// bound: one crash (or recovery) dirties exactly the failed node's
// parent chain, so the incremental re-solve touches O(depth) tables.
func TestMaskedSolveRecomputesOnlyCrashChain(t *testing.T) {
	src := rng.New(77)
	tr := tree.MustGenerate(tree.FatConfig(120), src)
	mask := failure.NewMask(tr.N())
	solver := NewMinCostSolver(tr)
	solver.SetMask(mask)
	existing := tree.ReplicasOf(tr)
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	if _, err := solver.SolveInto(existing, 10, c, nil); err != nil {
		t.Fatal(err)
	}
	if st := solver.Stats(); st.MaskedNodes != 0 {
		t.Fatalf("all-up solve reports %d masked nodes", st.MaskedNodes)
	}

	for trial := 0; trial < 20; trial++ {
		j := 1 + src.IntN(tr.N()-1)
		if mask.NodeUp(j) {
			mask.CrashNode(j)
		} else {
			mask.RecoverNode(j)
		}
		_, err := solver.SolveInto(existing, 10, c, nil)
		st := solver.Stats()
		if bound := chainBound(tr, []int{tr.Parent(j)}); st.Recomputed > bound {
			t.Fatalf("trial %d: flip of node %d recomputed %d nodes, chain bound is %d",
				trial, j, st.Recomputed, bound)
		}
		if st.MaskedNodes != mask.DownNodes() {
			t.Fatalf("trial %d: stats report %d masked nodes, mask holds %d down",
				trial, st.MaskedNodes, mask.DownNodes())
		}
		if err != nil {
			// The accumulated outages can make the instance infeasible;
			// the tables are still committed and the chain bound above
			// still held, so revert the flip (same chain, same bound on
			// the next solve) and keep going.
			if !errors.Is(err, ErrInfeasible) {
				t.Fatal(err)
			}
			if mask.NodeUp(j) {
				mask.CrashNode(j)
			} else {
				mask.RecoverNode(j)
			}
			if _, err := solver.SolveInto(existing, 10, c, nil); err != nil {
				t.Fatal(err)
			}
			if st := solver.Stats(); st.Recomputed > chainBound(tr, []int{tr.Parent(j)}) {
				t.Fatalf("trial %d: revert of node %d exceeded the chain bound", trial, j)
			}
		}
	}

	// A no-op solve under an unchanged mask reuses every table.
	if _, err := solver.SolveInto(existing, 10, c, nil); err != nil {
		t.Fatal(err)
	}
	if st := solver.Stats(); st.Recomputed != 0 {
		t.Fatalf("no-op masked solve recomputed %d nodes, want 0", st.Recomputed)
	}
}

// TestMaskedRootDownInfeasible pins the degradation edge: when demand
// must escape to the root and the root is down, the solve reports
// ErrInfeasible — and the failed solve leaves the solver's tables
// consistent, so the re-solve after recovery byte-matches a cold one.
func TestMaskedRootDownInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	b.AddClient(b.Root(), 5)
	tr := b.MustBuild()

	mask := failure.NewMask(1)
	mask.CrashNode(0)
	solver := NewMinCostSolver(tr)
	solver.SetMask(mask)
	if _, err := solver.Solve(nil, 10, cost.Simple{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("root-down solve: got %v, want ErrInfeasible", err)
	}

	mask.RecoverNode(0)
	got, err := solver.Solve(nil, 10, cost.Simple{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := MinCost(tr, nil, 10, cost.Simple{})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Placement.Equal(got.Placement) || want.Cost != got.Cost {
		t.Fatalf("retry after infeasible: got %v (cost %v), want %v (cost %v)",
			got.Placement, got.Cost, want.Placement, want.Cost)
	}
}

// TestMaskRejectsUndersizedView pins the guard against a mask whose
// sized view cannot cover the tree (indexing it would panic mid-solve).
func TestMaskRejectsUndersizedView(t *testing.T) {
	src := rng.New(5)
	tr := tree.MustGenerate(tree.FatConfig(10), src)
	solver := NewMinCostSolver(tr)
	solver.SetMask(failure.NewMask(3))
	if _, err := solver.Solve(nil, 10, cost.Simple{}); err == nil {
		t.Fatal("want error for a 3-node mask on a 10-node tree")
	}
}

// TestMinCostRetryAfterErrorMatchesCold is the stale-table regression
// guard for MinCostSolver: a solve that fails input validation must not
// disturb the retained tables, so the next valid solve still runs
// incrementally (recomputing nothing when nothing changed) and
// byte-matches a cold solver.
func TestMinCostRetryAfterErrorMatchesCold(t *testing.T) {
	src := rng.New(31)
	tr := tree.MustGenerate(tree.HighConfig(60), src)
	solver := NewMinCostSolver(tr)
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	if _, err := solver.Solve(nil, 10, c); err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(nil, 0, c); err == nil {
		t.Fatal("want error for W=0")
	}
	if _, err := solver.Solve(nil, 10, cost.Simple{Create: -1}); err == nil {
		t.Fatal("want error for a negative price")
	}
	got, err := solver.Solve(nil, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	if st := solver.Stats(); st.Recomputed != 0 {
		t.Fatalf("retry after rejected calls recomputed %d nodes, want 0", st.Recomputed)
	}
	want, err := MinCost(tr, nil, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Placement.Equal(got.Placement) || want.Cost != got.Cost {
		t.Fatal("retry after rejected calls diverged from a cold solve")
	}
}

// TestQoSRetryAfterInfeasibleMatchesCold is the same guard for
// QoSSolver, through its only post-recompute failure path: a demand
// spike beyond W makes the solve infeasible after the tables were
// already rebuilt; reverting the spike must yield exactly a cold
// solver's placement again.
func TestQoSRetryAfterInfeasibleMatchesCold(t *testing.T) {
	src := rng.New(32)
	tr := tree.MustGenerate(tree.HighConfig(60), src)
	var spikeNode int
	for j := 0; j < tr.N(); j++ {
		if len(tr.Clients(j)) > 0 {
			spikeNode = j
			break
		}
	}
	old := tr.Clients(spikeNode)[0]

	solver := NewQoSSolver(tr)
	first, err := solver.Solve(10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	firstCopy := first.Clone()

	tr.SetDemand(spikeNode, 0, 100) // exceeds W=10: no placement serves it
	if _, err := solver.Solve(10, nil, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("demand spike: got %v, want ErrInfeasible", err)
	}

	tr.SetDemand(spikeNode, 0, old)
	got, err := solver.Solve(10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewQoSSolver(tr).Solve(10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || !got.Equal(firstCopy) {
		t.Fatalf("retry after infeasible: got %v, cold %v, original %v", got, want, firstCopy)
	}
	// Only the spiked node's chain may have been recomputed on retry.
	if st, bound := solver.Stats(), chainBound(tr, []int{spikeNode}); st.Recomputed > bound {
		t.Fatalf("retry recomputed %d nodes, chain bound is %d", st.Recomputed, bound)
	}
}
