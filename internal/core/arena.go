package core

// arena is the flat scratch allocator behind the reusable solvers
// (MinCostSolver, PowerDP, QoSSolver). Each solver owns one arena per
// element type; a solve resets the arena and carves its merge
// intermediates out of one backing buffer (everything that must
// outlive the solve — final node tables, reconstruction back-pointers
// — lives in the retained per-node buffers of incremental.go instead).
// The reset fits the buffer to the high-water mark of the solves
// before it, so the buffer only ever grows: a one-shot solve pays
// nothing for fitting, and from the third solve of a given instance
// shape on (the second still grows the buffer once) every solve runs
// without a single heap allocation.
//
// Slices handed out by alloc stay valid for the whole solve even after
// the buffer is replaced by a later reset's growth (they keep
// referencing the old block); they are invalidated by the next reset,
// which is why solver results that must outlive a solve (placements,
// fronts) are copied out of arena storage.
type arena[T any] struct {
	buf []T
	off int
	// need is the running total requested since the last reset; the
	// next reset grows buf to it.
	need int
}

// reset recycles the buffer for a new solve, first growing it to the
// previous solve's high-water mark.
func (a *arena[T]) reset() {
	if a.need > len(a.buf) {
		a.buf = make([]T, a.need)
	}
	a.off = 0
	a.need = 0
}

// alloc returns a scratch slice of length n with unspecified contents:
// callers must initialise every cell they later read. When the backing
// buffer is exhausted the slice is heap-allocated instead and the next
// reset grows the buffer accordingly.
func (a *arena[T]) alloc(n int) []T {
	a.need += n
	if a.off+n <= len(a.buf) {
		s := a.buf[a.off : a.off+n : a.off+n]
		a.off += n
		return s
	}
	return make([]T, n)
}
