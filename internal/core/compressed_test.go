package core

import (
	"math"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// These tests prove the compression contract: solves running the
// breakpoint-compressed merge kernels must be byte-identical — same
// placements, fronts and costs, same tie-breaks — to solves running
// the dense kernels, over cold solves and drift sequences at every
// worker count. The activation width is forced down to 2 so the small
// differential trees exercise the compressed path in ordinary CI runs
// (the default 64 only engages on at-scale tables), and forced high to
// pin the reference to the dense kernels.

const (
	forceCompressed = 2
	forceDense      = 1 << 30
)

// setDenseWidth swaps the compression activation width, restoring it
// when the test finishes.
func setDenseWidth(t *testing.T, w int) func(int) {
	saved := minDenseWidth
	t.Cleanup(func() { minDenseWidth = saved })
	set := func(w int) { minDenseWidth = w }
	set(w)
	return set
}

func TestMinCostCompressedMatchesDense(t *testing.T) {
	set := setDenseWidth(t, forceDense)
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	compressedRows := 0
	for i := 0; i < reuseTreeCount(t); i++ {
		src := rng.Derive(211, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		dense := NewMinCostSolver(tr)
		workers := []int{1, 2, 8}
		comps := make([]*MinCostSolver, len(workers))
		dsts := make([]*tree.Replicas, len(workers))
		for k, w := range workers {
			comps[k] = NewMinCostSolver(tr)
			comps[k].SetWorkers(w)
			dsts[k] = tree.ReplicasOf(tr)
		}
		existing := tree.ReplicasOf(tr)
		denseDst := tree.ReplicasOf(tr)
		W := 10
		for step := 0; step < 10; step++ {
			driftClients(tr, src.IntN(4), src)
			if step%5 == 4 {
				W = 8 + src.IntN(3)
			}
			set(forceDense)
			want, wantErr := dense.SolveInto(existing, W, c, denseDst)
			set(forceCompressed)
			for k, w := range workers {
				got, gotErr := comps[k].SolveInto(existing, W, c, dsts[k])
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("tree %d step %d workers %d: dense err %v, compressed err %v",
						i, step, w, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !want.Placement.Equal(got.Placement) || want.Cost != got.Cost ||
					want.Servers != got.Servers || want.Reused != got.Reused {
					t.Fatalf("tree %d step %d workers %d: dense %v (cost %v) != compressed %v (cost %v)",
						i, step, w, want.Placement, want.Cost, got.Placement, got.Cost)
				}
				compressedRows += comps[k].Stats().RowsCompressed
			}
			if wantErr != nil {
				continue
			}
			// The second half of each sequence also churns pre-existing
			// membership (solutions feed back as the next existing set),
			// exercising the dense fallback around pre-carrying subtrees
			// next to compressed pre-free ones.
			if step >= 5 {
				existing.Reset()
				for j := 0; j < tr.N(); j++ {
					if want.Placement.Has(j) {
						existing.Set(j, 1)
					}
				}
			}
		}
	}
	if compressedRows == 0 {
		t.Fatal("forced activation width never engaged the compressed kernel")
	}
}

func TestPowerCompressedMatchesDense(t *testing.T) {
	set := setDenseWidth(t, forceDense)
	pm := powerModel2()
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	compressedRows := 0
	for i := 0; i < reuseTreeCount(t)/2; i++ {
		src := rng.Derive(227, i)
		tr := tree.MustGenerate(tree.PowerConfig(18+i%10), src)
		dense := NewPowerDP(tr)
		workers := []int{1, 2, 8}
		comps := make([]*PowerDP, len(workers))
		dsts := make([]*tree.Replicas, len(workers))
		for k, w := range workers {
			comps[k] = NewPowerDP(tr)
			comps[k].SetWorkers(w)
			dsts[k] = tree.ReplicasOf(tr)
		}
		existing := tree.ReplicasOf(tr)
		for step := 0; step < 8; step++ {
			driftClients(tr, src.IntN(3), src)
			if step == 5 && tr.N() > 1 {
				// A pre-existing server disables compression; the solvers
				// must fall back to the dense kernel (and replay across
				// the comp/dense regime change) without diverging.
				existing.Set(1+src.IntN(tr.N()-1), uint8(1+src.IntN(2)))
			}
			if step == 7 {
				existing.Reset() // back to the compressed regime
			}
			prob := PowerProblem{Tree: tr, Existing: existing, Power: pm, Cost: cm}
			set(forceDense)
			want, wantErr := dense.Solve(prob)
			var wantOpt *PowerResult
			var wf []ParetoPoint
			if wantErr == nil {
				wf = want.Front()
				wantOpt = want.MinPower()
			}
			set(forceCompressed)
			for k, w := range workers {
				got, gotErr := comps[k].Solve(prob)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("tree %d step %d workers %d: dense err %v, compressed err %v",
						i, step, w, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				gf := got.Front()
				if len(wf) != len(gf) {
					t.Fatalf("tree %d step %d workers %d: front sizes %d != %d", i, step, w, len(wf), len(gf))
				}
				for q := range wf {
					if wf[q] != gf[q] {
						t.Fatalf("tree %d step %d workers %d: front[%d] %v != %v", i, step, w, q, wf[q], gf[q])
					}
				}
				gotOpt, ok := got.BestInto(math.Inf(1), dsts[k])
				if !ok || !wantOpt.Placement.Equal(gotOpt.Placement) ||
					wantOpt.Cost != gotOpt.Cost || wantOpt.Power != gotOpt.Power {
					t.Fatalf("tree %d step %d workers %d: dense optimum %v != compressed %v",
						i, step, w, wantOpt.Placement, gotOpt.Placement)
				}
				// A mid-front bound exercises lazy provenance on a
				// different root cell than the min-power extreme.
				if len(wf) > 1 {
					bound := wf[len(wf)/2].Cost
					wb, _ := want.Best(bound)
					gb, ok := got.BestInto(bound, dsts[k])
					if !ok || !wb.Placement.Equal(gb.Placement) || wb.Power != gb.Power {
						t.Fatalf("tree %d step %d workers %d: bounded optimum diverges", i, step, w)
					}
				}
				compressedRows += comps[k].Stats().RowsCompressed
			}
		}
	}
	if compressedRows == 0 {
		t.Fatal("forced activation width never engaged the compressed kernel")
	}
}

func TestQoSCompressedMatchesDense(t *testing.T) {
	set := setDenseWidth(t, forceDense)
	compressedRows := 0
	for i := 0; i < reuseTreeCount(t); i++ {
		src := rng.Derive(223, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		cons := tree.NewConstraints(tr)
		cons.SetUniformQoS(tr, 4)
		dense := NewQoSSolver(tr)
		workers := []int{1, 2, 8}
		comps := make([]*QoSSolver, len(workers))
		dsts := make([]*tree.Replicas, len(workers))
		for k, w := range workers {
			comps[k] = NewQoSSolver(tr)
			comps[k].SetWorkers(w)
			dsts[k] = tree.ReplicasOf(tr)
		}
		denseDst := tree.ReplicasOf(tr)
		for step := 0; step < 10; step++ {
			driftClients(tr, src.IntN(4), src)
			if step%4 == 3 {
				cons.SetUniformQoS(tr, 3+src.IntN(3))
			}
			if step == 5 {
				// Constrain a few links so the run-prefix bandwidth
				// filter of the compressed kernel is exercised too.
				for b := 0; b < 3; b++ {
					cons.SetBandwidth(1+src.IntN(tr.N()-1), 4+src.IntN(10))
				}
			}
			set(forceDense)
			want, wantErr := dense.Solve(10, cons, denseDst)
			set(forceCompressed)
			for k, w := range workers {
				got, gotErr := comps[k].Solve(10, cons, dsts[k])
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("tree %d step %d workers %d: dense err %v, compressed err %v",
						i, step, w, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !want.Equal(got) || want.String() != got.String() {
					t.Fatalf("tree %d step %d workers %d: dense %v != compressed %v",
						i, step, w, want, got)
				}
				compressedRows += comps[k].Stats().RowsCompressed
			}
		}
	}
	if compressedRows == 0 {
		t.Fatal("forced activation width never engaged the compressed kernel")
	}
}
