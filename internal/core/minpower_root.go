package core

import (
	"slices"
	"sort"

	"replicatree/internal/par"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// This file holds the root end of the power dynamic program: the
// incremental root merge and the delta-priced, block-sharded root scan.
//
// The root is special twice over. First, its merges fold the largest
// tables of the whole tree, and the generic dirty tracking recomputes a
// node atomically — so a single dirty child used to re-run every root
// merge. The root therefore retains each partial accumulated table
// (rootStep): a re-solve restarts the merge fold at the first child
// whose subtree (or pre-existing mode) changed and replays only the
// suffix.
//
// Second, the root table must be priced — Equations (3) and (4) on the
// global count vector — on every solve, because the cost model
// invalidates no subtree table. Both equations are affine in the count
// vector: cost = baseC + Σ_f cw[f]·v_f and power = Σ_f pw[f]·v_f, with
// per-field weights cw/pw (a server always costs 1 plus its
// create/change price, minus the deletion it avoids when reused; a
// server at mode m always burns NodePower(m)). The scan walks the table
// in row-major order keeping per-field prefix sums of both dot
// products: one odometer step changes one coordinate and resets the
// trailing ones to zero, so the amortised pricing cost per cell is O(1)
// instead of the former O(M²) loop. The prefix sums are folded left to
// right skipping zero coordinates, which makes every cell's price a
// pure function of its coordinates — bit-identical whether the walk
// entered the cell from the previous one or started cold at a shard
// boundary, so fronts match exactly for every worker count.
//
// The scan is sharded into fixed-size blocks of cells fanned across the
// solver's workers. Each block keeps a retained, exactly-pruned local
// Pareto front; the final front is the eps-aware prune of the
// concatenated block fronts, which equals the prune of the full
// candidate list because weak domination is transitive (a locally
// dominated candidate is dominated in the union too). Because a block
// front is a pure function of the block's cell values and the pricing
// context, re-solves diff each block of the recomputed root table
// against the previous solve's copy and reuse the retained front of
// every unchanged block — SolveStats.RootCellsRepriced counts the cells
// of the blocks that actually re-priced. When nothing relevant changed
// at all (clean tables, same cost and power models, same pre-existing
// context) the scan is skipped outright and the previous front stands.

// rootBlockCells is the shard granularity of the root scan. Small
// enough that localized table changes leave most blocks untouched,
// large enough that per-block bookkeeping stays negligible.
const rootBlockCells = 2048

// rootStep retains the accumulated table of the root merge fold after
// one child has been folded in, together with the accumulated subtree
// counts entering the next step.
type rootStep struct {
	out    []int32
	shape  shape
	accNew int32
	accPre []int32
}

// rootBlock is one shard of the root scan: a retained local Pareto
// front plus the walker scratch of the goroutine that scans it.
type rootBlock struct {
	front    []frontEntry
	repriced bool
	// Walker scratch: cell coordinates and the per-field prefix sums of
	// the cost/power dot products (cs[f+1] folds fields 0..f).
	coords []int32
	cs, ps []float64
}

// foldPos returns the child position folded at root merge step q (the
// volatility-derived permutation of Reset, or the natural order).
func (d *PowerDP) foldPos(q int) int {
	if len(d.rootOrder) > 0 {
		return d.rootOrder[q]
	}
	return q
}

// runRoot recomputes the root's final table, restarting the merge fold
// at the first fold step whose inputs changed and keeping every earlier
// partial merge from the previous solve. The fold visits the children
// in d.rootOrder (coldest subtree first, see Reset), so a churning
// child invalidates only the tail of the fold; rootSteps and the stale
// detection are indexed by fold position, the provenance steps by child
// position.
func (d *PowerDP) runRoot() error {
	t := d.prob.Tree
	j := t.Root()
	kids := t.Children(j)
	K := len(kids)
	d.rootRetained = 0
	ar := &d.arenas[0]
	ar.reset()

	if K == 0 {
		if !d.track.dirty[j] {
			return nil
		}
		d.recomputed++
		d.rootRecomputed = true
		accDims := ar.alloc(d.nf)
		for f := range accDims {
			accDims[f] = 1
		}
		accShape, err := fillShape(accDims, ar.alloc(d.nf))
		if err != nil {
			return err
		}
		d.vals[j] = grown(d.vals[j], 1)
		d.vals[j][0] = int32(t.ClientSum(j))
		d.retainShape(j, accShape)
		d.newCnt[j] = 0
		d.preCnt[j] = grown(d.preCnt[j], d.M)
		for i := range d.preCnt[j] {
			d.preCnt[j][i] = 0
		}
		return nil
	}

	// Record which subtrees changed this solve; the counts drive the
	// fold order picked by the next Reset.
	for st, ch := range kids {
		if d.track.dirty[ch] || d.lastMode[ch] != d.prob.Existing.Mode(ch) {
			d.volCount[st]++
		}
	}

	// First fold step whose retained output is stale: a change to the
	// root's own clients rewrites the base cell (step 0), and a dirty
	// child subtree or a changed pre-existing mode of a child
	// invalidates its own step and everything after it.
	start := 0
	if !d.fullSolve && t.DemandGen(j) == d.track.seen[j] {
		start = K
		for q := 0; q < K; q++ {
			ch := kids[d.foldPos(q)]
			if d.track.dirty[ch] || d.lastMode[ch] != d.prob.Existing.Mode(ch) {
				start = q
				break
			}
		}
	}
	if start >= K {
		d.rootRetained = K
		return nil // every retained root merge is still exact
	}
	d.rootRetained = start
	if start > 0 {
		d.mstats[0].replayed += K - start
	}
	d.recomputed++
	d.rootRecomputed = true

	// Accumulated state entering fold step start.
	var acc []int32
	var accShape shape
	var accNew int32
	accPre := ar.alloc(d.M)
	if start == 0 {
		acc = ar.alloc(1)
		acc[0] = int32(t.ClientSum(j))
		for i := range accPre {
			accPre[i] = 0
		}
		accDims := ar.alloc(d.nf)
		for f := range accDims {
			accDims[f] = 1
		}
		var err error
		accShape, err = fillShape(accDims, ar.alloc(d.nf))
		if err != nil {
			return err
		}
	} else {
		rs := &d.rootSteps[start-1]
		acc, accShape, accNew = rs.out, rs.shape, rs.accNew
		copy(accPre, rs.accPre)
	}

	for q := start; q < K; q++ {
		// The root folds the largest merges of the tree, so poll the
		// cancellation gate between fold steps (one merge block).
		if err := d.cancel.err(); err != nil {
			return err
		}
		st := d.foldPos(q)
		ch := kids[st]
		outNew, outPre, outShape, err := d.childDims(ch, accNew, accPre, ar)
		if err != nil {
			return err
		}
		var out []int32
		if q == K-1 {
			d.vals[j] = grown(d.vals[j], outShape.size)
			out = d.vals[j]
		} else {
			rs := &d.rootSteps[q]
			rs.out = grown(rs.out, outShape.size)
			out = rs.out
		}
		d.mergeInto(j, st, ch, acc, accShape, outShape, out, ar, true, &d.bps[0], &d.mstats[0])
		if q < K-1 {
			// Retain this partial merge for future restarts.
			rs := &d.rootSteps[q]
			rs.shape.dims = append(rs.shape.dims[:0], outShape.dims...)
			rs.shape.strides = append(rs.shape.strides[:0], outShape.strides...)
			rs.shape.size = outShape.size
			rs.accNew = outNew
			rs.accPre = append(rs.accPre[:0], outPre...)
			acc, accShape = rs.out, rs.shape
		} else {
			acc, accShape = out, outShape
		}
		accNew = outNew
		copy(accPre, outPre)
	}
	d.retainShape(j, accShape)
	d.newCnt[j] = accNew
	d.preCnt[j] = append(d.preCnt[j][:0], accPre...)
	return nil
}

// fillWeights computes the per-field affine pricing weights of
// Equations (3) and (4) and the count-independent deletion term.
func (d *PowerDP) fillWeights() {
	cm, pm := d.prob.Cost, d.prob.Power
	d.cw = grown(d.cw, d.nf)
	d.pw = grown(d.pw, d.nf)
	for m := 1; m <= d.M; m++ {
		np := pm.NodePower(m)
		d.cw[d.fieldNew(m)] = 1 + cm.Create[m-1]
		d.pw[d.fieldNew(m)] = np
		for i := 1; i <= d.M; i++ {
			d.cw[d.fieldReuse(i, m)] = 1 + cm.Change[i-1][m-1] - cm.Delete[i-1]
			d.pw[d.fieldReuse(i, m)] = np
		}
	}
	base := 0.0
	for i := 1; i <= d.M; i++ {
		base += cm.Delete[i-1] * float64(d.totalPre[i-1])
	}
	d.baseC = base
}

// scanRoot prices the root table and stores the Pareto front in d.front
// ordered by ascending cost and strictly descending power, reusing as
// much of the previous solve's scan as the changed inputs allow. It
// polls the solver's cancellation gate between scan blocks; a non-nil
// error means the scan was abandoned mid-sweep with scanOK left false,
// so the next solve re-prices every block.
func (d *PowerDP) scanRoot() error {
	t := d.prob.Tree
	r := t.Root()
	rootMode0 := d.prob.Existing.Mode(r)
	sh := d.shapes[r]
	vals := d.vals[r]

	d.totalPre = grown(d.totalPre, d.M)
	for i := range d.totalPre {
		d.totalPre[i] = 0
	}
	for j := 0; j < t.N(); j++ {
		if m := d.prob.Existing.Mode(j); m != tree.NoMode {
			d.totalPre[m-1]++
		}
	}

	// The retained block fronts (and the full previous front) are valid
	// only under the pricing context they were computed with.
	sameContext := d.scanOK && d.prob.Power.Equal(d.scanPower) && d.prob.Cost.Equal(d.scanCost) &&
		rootMode0 == d.scanMode0 && slices.Equal(d.totalPre, d.scanPre)
	if sameContext && !d.rootRecomputed {
		// Clean tables, identical pricing: the previous front stands.
		d.rootScanned, d.rootRepriced = 0, 0
		return nil
	}

	d.fillWeights()
	canDiff := sameContext && slices.Equal(sh.dims, d.prevDims)

	// The sweep below overwrites retained block fronts in place, so the
	// scan state is invalid until it completes; flipping scanOK first
	// makes a cancelled sweep safe — the next solve sees sameContext
	// false and re-prices every block.
	d.scanOK = false

	nb := (sh.size + rootBlockCells - 1) / rootBlockCells
	d.blocks = grownKeep(d.blocks, nb)
	blocks := d.blocks[:nb]
	if d.workers > 1 && nb > 1 {
		if !par.ForEachCancel(nb, d.workers, d.cancel.done, func(bi int) {
			d.scanOneBlock(bi, vals, sh, rootMode0, canDiff)
		}) {
			return d.cancel.ctx.Err()
		}
	} else {
		// The sequential path avoids the fan-out closure so warm solves
		// stay allocation-free.
		for bi := 0; bi < nb; bi++ {
			if err := d.cancel.err(); err != nil {
				return err
			}
			d.scanOneBlock(bi, vals, sh, rootMode0, canDiff)
		}
	}

	repriced := 0
	cands := d.cands[:0]
	for bi := range blocks {
		if blocks[bi].repriced {
			repriced += min((bi+1)*rootBlockCells, sh.size) - bi*rootBlockCells
		}
		cands = append(cands, blocks[bi].front...)
	}
	d.cands = cands
	d.paretoPrune()
	d.rootScanned, d.rootRepriced = sh.size, repriced

	// Retain the scanned table and its pricing context for the next
	// solve's diff.
	d.prevRoot = grown(d.prevRoot, sh.size)
	copy(d.prevRoot, vals[:sh.size])
	d.prevDims = append(d.prevDims[:0], sh.dims...)
	d.scanPower = power.Model{
		Caps:   append(d.scanPower.Caps[:0], d.prob.Power.Caps...),
		Static: d.prob.Power.Static,
		Alpha:  d.prob.Power.Alpha,
	}
	d.retainScanCost()
	d.scanMode0 = rootMode0
	d.scanPre = append(d.scanPre[:0], d.totalPre...)
	d.scanOK = true
	return nil
}

// retainScanCost deep-copies the solve's cost model into retained
// buffers, so later in-place mutations of the caller's slices cannot
// alias the equality check.
func (d *PowerDP) retainScanCost() {
	cm := d.prob.Cost
	d.scanCost.Create = append(d.scanCost.Create[:0], cm.Create...)
	d.scanCost.Delete = append(d.scanCost.Delete[:0], cm.Delete...)
	rows := grownKeep(d.scanCost.Change, len(cm.Change))
	for i := range cm.Change {
		rows[i] = append(rows[i][:0], cm.Change[i]...)
	}
	d.scanCost.Change = rows
}

// scanOneBlock diffs block bi of the root table against the previous
// solve's copy and re-prices it only when some cell changed (or no diff
// is possible).
func (d *PowerDP) scanOneBlock(bi int, vals []int32, sh shape, mode0 uint8, canDiff bool) {
	blk := &d.blocks[bi]
	lo := bi * rootBlockCells
	hi := min(lo+rootBlockCells, sh.size)
	if canDiff && slices.Equal(vals[lo:hi], d.prevRoot[lo:hi]) {
		blk.repriced = false // retained front still exact
		return
	}
	blk.repriced = true
	d.scanBlock(blk, lo, hi, vals, sh, mode0)
}

// scanBlock walks the cells [lo, hi) of the root table, pricing every
// feasible (cell, root placement) candidate with the prefix-sum walker
// and keeping the block's exact Pareto front in blk.front.
func (d *PowerDP) scanBlock(blk *rootBlock, lo, hi int, vals []int32, sh shape, mode0 uint8) {
	nf := d.nf
	blk.coords = grown(blk.coords, nf)
	blk.cs = grown(blk.cs, nf+1)
	blk.ps = grown(blk.ps, nf+1)
	coords, cs, ps := blk.coords, blk.cs, blk.ps

	// Position the walker at lo: decompose the flat index and fold the
	// prefix sums left to right, skipping zero coordinates so the fold
	// is a pure function of the cell, not of the walk that reached it.
	cs[0], ps[0] = d.baseC, 0
	rem := int32(lo)
	for f := 0; f < nf; f++ {
		c := rem / sh.strides[f]
		rem %= sh.strides[f]
		coords[f] = c
		if c != 0 {
			cs[f+1] = cs[f] + d.cw[f]*float64(c)
			ps[f+1] = ps[f] + d.pw[f]*float64(c)
		} else {
			cs[f+1], ps[f+1] = cs[f], ps[f]
		}
	}

	front := blk.front[:0]
	pm := d.prob.Power
	for flat := lo; flat < hi; flat++ {
		if v := vals[flat]; v <= d.wm {
			c, p := cs[nf], ps[nf]
			if v == 0 {
				front = pushFront(front, frontEntry{cost: c, power: p, rootCell: int32(flat), rootMode: 0})
			}
			if minMode, ok := pm.ModeFor(int(v)); ok {
				for m := minMode; m <= d.M; m++ {
					f := d.fieldNew(m)
					if mode0 != 0 {
						f = d.fieldReuse(int(mode0), m)
					}
					front = pushFront(front, frontEntry{
						cost: c + d.cw[f], power: p + d.pw[f],
						rootCell: int32(flat), rootMode: uint8(m),
					})
				}
			}
		}
		// Advance the odometer and refresh the prefix sums from the
		// bumped field down (trailing fields reset to zero, so their
		// sums propagate unchanged — the skip-zero fold again).
		h := nf - 1
		for ; h >= 0; h-- {
			coords[h]++
			if coords[h] < sh.dims[h] {
				break
			}
			coords[h] = 0
		}
		if h < 0 {
			break // wrapped past the last cell
		}
		cs[h+1] = cs[h] + d.cw[h]*float64(coords[h])
		ps[h+1] = ps[h] + d.pw[h]*float64(coords[h])
		for g := h + 1; g < nf; g++ {
			cs[g+1], ps[g+1] = cs[g], ps[g]
		}
	}
	blk.front = front
}

// pushFront inserts e into a front kept ascending in cost with strictly
// descending power, dropping e when an entry weakly dominates it and
// evicting the entries e dominates. Ties in both fields keep the
// earlier-scanned entry, so a block front is deterministic for the
// block's fixed scan order.
func pushFront(front []frontEntry, e frontEntry) []frontEntry {
	i := sort.Search(len(front), func(k int) bool { return front[k].cost >= e.cost })
	if i > 0 && front[i-1].power <= e.power {
		return front // dominated by a cheaper-or-equal entry
	}
	if i < len(front) && front[i].cost == e.cost && front[i].power <= e.power {
		return front // dominated at equal cost
	}
	j := i
	for j < len(front) && front[j].power >= e.power {
		j++
	}
	if j > i {
		front[i] = e
		return append(front[:i+1], front[j:]...)
	}
	front = append(front, frontEntry{})
	copy(front[i+1:], front[i:])
	front[i] = e
	return front
}
