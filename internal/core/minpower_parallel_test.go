package core

import (
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func TestOdometerAtMatchesSequential(t *testing.T) {
	s, err := newShape([]int32{3, 4, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := newShape([]int32{6, 8, 4, 10})
	if err != nil {
		t.Fatal(err)
	}
	ref := newOdometer(s.dims, big.strides)
	for flat := 0; flat < s.size; flat++ {
		got := odometerAt(s.dims, big.strides, flat)
		if got.out != ref.out {
			t.Fatalf("flat %d: out %d, want %d", flat, got.out, ref.out)
		}
		for f := range ref.coords {
			if got.coords[f] != ref.coords[f] {
				t.Fatalf("flat %d: coords %v, want %v", flat, got.coords, ref.coords)
			}
		}
		ref.next()
	}
}

func TestPackProvRoundTrip(t *testing.T) {
	cases := []struct {
		a, c int
		m    uint8
	}{
		{0, 0, 0},
		{1, 2, 3},
		{maxTableCells - 1, maxTableCells - 1, 255},
		{12345, 678, 2},
	}
	for _, c := range cases {
		a, cc, m := unpackProv(packProv(c.a, c.c, c.m))
		if int(a) != c.a || int(cc) != c.c || m != c.m {
			t.Fatalf("pack(%d,%d,%d) round-tripped to (%d,%d,%d)", c.a, c.c, c.m, a, cc, m)
		}
	}
	// The packing preserves the sequential scan order.
	if packProv(1, 0, 5) <= packProv(0, 99, 0) {
		t.Fatal("accumulated cell must dominate the order")
	}
	if packProv(3, 1, 0) <= packProv(3, 0, 255) {
		t.Fatal("child cell must dominate the mode")
	}
}

// TestParallelPowerMatchesSequential forces the parallel merge path
// (Workers > 1 with instances above the work threshold) and checks the
// entire solver output — front and every reconstructed placement —
// against the sequential run.
func TestParallelPowerMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel-vs-sequential comparison is slow")
	}
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	for seed := uint64(0); seed < 3; seed++ {
		src := rng.Derive(seed, 80)
		// 60-node trees with pre-existing servers produce merges well
		// above the parallel threshold.
		tr := tree.MustGenerate(tree.PowerConfig(60), src)
		ex, _ := tree.RandomReplicas(tr, 6, 2, src)

		seq, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
		if err != nil {
			t.Fatal(err)
		}
		parl, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		fs, fp := seq.Front(), parl.Front()
		if len(fs) != len(fp) {
			t.Fatalf("seed %d: front sizes %d vs %d", seed, len(fs), len(fp))
		}
		for i := range fs {
			if fs[i] != fp[i] {
				t.Fatalf("seed %d: front point %d differs: %+v vs %+v", seed, i, fs[i], fp[i])
			}
			if !seq.At(i).Placement.Equal(parl.At(i).Placement) {
				t.Fatalf("seed %d: placement %d differs", seed, i)
			}
		}
	}
}

// TestParallelPowerSmallInstances exercises Workers > 1 on instances
// below the threshold (sequential path must be taken and results equal).
func TestParallelPowerSmallInstances(t *testing.T) {
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	src := rng.New(81)
	tr := tree.MustGenerate(tree.PowerConfig(15), src)
	seq, err := SolvePower(PowerProblem{Tree: tr, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	parl, err := SolvePower(PowerProblem{Tree: tr, Power: pm, Cost: cm, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.MinPower().Power != parl.MinPower().Power {
		t.Fatal("results differ on small instance")
	}
}

// TestParallelWorkersClamped checks that absurd worker counts are
// clamped rather than spawning runaway goroutines.
func TestParallelWorkersClamped(t *testing.T) {
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	tr := tree.MustGenerate(tree.PowerConfig(12), rng.New(82))
	s, err := SolvePower(PowerProblem{Tree: tr, Power: pm, Cost: cm, Workers: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s.MinPower() == nil {
		t.Fatal("no solution")
	}
}

// TestParallelPowerWideStar forces the parallel path on the star
// topology, whose single giant merge is the best case for chunking.
func TestParallelPowerWideStar(t *testing.T) {
	if testing.Short() {
		t.Skip("wide star comparison is slow")
	}
	b := tree.NewBuilder()
	src := rng.New(83)
	for i := 1; i < 120; i++ {
		leaf := b.AddNode(b.Root())
		b.AddClient(leaf, src.Between(1, 5))
	}
	tr := b.MustBuild()
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	ex, _ := tree.RandomReplicas(tr, 4, 2, src)
	seq, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	parl, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	fs, fp := seq.Front(), parl.Front()
	if len(fs) != len(fp) {
		t.Fatalf("front sizes %d vs %d", len(fs), len(fp))
	}
	for i := range fs {
		if fs[i] != fp[i] {
			t.Fatalf("front point %d differs", i)
		}
		if !seq.At(i).Placement.Equal(parl.At(i).Placement) {
			t.Fatalf("placement %d differs", i)
		}
	}
}
