package core

// This file implements the breakpoint-compressed representation of
// monotone DP rows and the row algebra the solvers' merge kernels run
// on: encode/decode, pointwise minimum, min-plus convolution, and the
// place-aware fold step of the replica merges.
//
// The monotone-row contract. A DP row v(0..n-1) is monotone when
//
//  1. its infeasible cells (cells equal to the solver's sentinel:
//     invalid for MinCostSolver, pUnreached for PowerDP, qInf for
//     QoSSolver) form a prefix of the row, and
//  2. its feasible values are non-increasing left to right.
//
// Every row produced by the three dynamic programs satisfies the
// contract along its resource axis (new servers, mode-M servers,
// replicas): spending one more unit of the resource can always be done
// by equipping the merged child, which never increases the escaping
// load. The contract is nevertheless *verified*, not assumed: encode
// returns ok=false on any violation and the caller falls back to the
// dense kernel, so compression is exact unconditionally — the proof
// only predicts that the fallback never triggers.
//
// Under the contract a width-n row with values in {0..W} carries at
// most W+2 distinct states (W+1 values plus the infeasible prefix), so
// it is represented losslessly by its breakpoints: runs with strictly
// increasing starts and strictly decreasing values, where run p covers
// the cells [start_p, start_{p+1}) and cells before the first start are
// infeasible. All row operations below preserve the invariant by
// construction, which is what makes folds over compressed rows exact
// without re-verification.

import "math"

// bpRun is one breakpoint of a compressed monotone row: the row holds
// val from cell start up to the next run's start (or the row end).
type bpRun struct {
	start int32
	val   int64
}

// bpInfVal is the internal +inf of the row algebra. Strictly larger
// than any encodable value (encode rejects values >= bpInfVal) and
// small enough that sums of two values never overflow int64.
const bpInfVal = int64(1) << 62

// minDenseWidth is the row width from which the solvers' merge kernels
// switch from the dense scan to breakpoint compression. Narrow rows
// (leaf-level tables) stay dense, where the plain loop is cheaper than
// encoding; wide rows — the capB- and subtree-bounded tables near the
// top of a mega tree — compress to at most W+2 runs. It is a variable
// so tests can lower it to force compression on small trees (and raise
// it to force the dense path), cross-checking both kernels on the same
// instances.
var minDenseWidth = 64

// encodeRuns32 compresses a dense int32 row whose infeasible sentinel
// is inval. Returns ok=false — with dst truncated arbitrarily — when
// the row violates the monotone contract (an interior infeasible cell
// or an increasing step); the caller must then use the dense kernel.
func encodeRuns32(row []int32, inval int32, dst []bpRun) ([]bpRun, bool) {
	dst = dst[:0]
	i := 0
	for i < len(row) && row[i] == inval {
		i++
	}
	last := bpInfVal
	for ; i < len(row); i++ {
		if row[i] == inval {
			return dst, false
		}
		v := int64(row[i])
		if v > last {
			return dst, false
		}
		if v < last {
			dst = append(dst, bpRun{start: int32(i), val: v})
			last = v
		}
	}
	return dst, true
}

// decodeRuns32 expands runs into the dense row, filling cells before
// the first run with inval. Exact inverse of encodeRuns32.
func decodeRuns32(runs []bpRun, row []int32, inval int32) {
	end := len(row)
	for p := len(runs) - 1; p >= 0; p-- {
		v := int32(runs[p].val)
		for i := int(runs[p].start); i < end; i++ {
			row[i] = v
		}
		end = int(runs[p].start)
	}
	for i := 0; i < end; i++ {
		row[i] = inval
	}
}

// encodeRunsIntStrided is encodeRuns32 for an int row of n cells laid
// out at the given stride (cell r lives at row[r*stride]), the layout
// of the QoS solver's per-requirement columns. Values at or above
// bpInfVal also fail the encode: they cannot be represented without
// colliding with the internal +inf.
func encodeRunsIntStrided(row []int, n, stride int, inval int, dst []bpRun) ([]bpRun, bool) {
	dst = dst[:0]
	i := 0
	for i < n && row[i*stride] == inval {
		i++
	}
	last := bpInfVal
	for ; i < n; i++ {
		v := int64(row[i*stride])
		if row[i*stride] == inval || v >= bpInfVal || v < math.MinInt64/4 {
			return dst, false
		}
		if v > last {
			return dst, false
		}
		if v < last {
			dst = append(dst, bpRun{start: int32(i), val: v})
			last = v
		}
	}
	return dst, true
}

// decodeRunsIntStrided expands runs into a strided int row of n cells,
// filling cells before the first run with inval.
func decodeRunsIntStrided(runs []bpRun, row []int, n, stride int, inval int) {
	end := n
	for p := len(runs) - 1; p >= 0; p-- {
		v := int(runs[p].val)
		for i := int(runs[p].start); i < end; i++ {
			row[i*stride] = v
		}
		end = int(runs[p].start)
	}
	for i := 0; i < end; i++ {
		row[i*stride] = inval
	}
}

// bpAt returns the row value at cell k, or bpInfVal when k lies in the
// infeasible prefix.
func bpAt(runs []bpRun, k int32) int64 {
	// Binary search for the last run with start <= k.
	lo, hi := 0, len(runs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if runs[mid].start <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return bpInfVal
	}
	return runs[lo-1].val
}

// envMin writes the pointwise minimum of two monotone rows into dst
// (which must not alias a or b) and returns it. Treating the cells
// before a row's first run as +inf makes the minimum of two monotone
// rows monotone again, so the result is in normal form.
func envMin(a, b, dst []bpRun) []bpRun {
	dst = dst[:0]
	i, j := 0, 0
	curA, curB := bpInfVal, bpInfVal
	last := bpInfVal
	for i < len(a) || j < len(b) {
		var s int32
		switch {
		case j >= len(b) || (i < len(a) && a[i].start <= b[j].start):
			s = a[i].start
		default:
			s = b[j].start
		}
		for i < len(a) && a[i].start == s {
			curA = a[i].val
			i++
		}
		for j < len(b) && b[j].start == s {
			curB = b[j].val
			j++
		}
		m := min(curA, curB)
		if m < last {
			dst = append(dst, bpRun{start: s, val: m})
			last = m
		}
	}
	return dst
}

// bpScratch holds the grow-only temporaries of the compressed merge
// kernels, one per worker. Every buffer follows the arena contract:
// reused across merges, never shrunk, so steady-state solves stay
// allocation-free once grown to the high-water mark.
type bpScratch struct {
	acc, ch    []bpRun   // encoded input rows
	frag       []bpRun   // per-run candidate fragment
	res, alt   []bpRun   // fold ping-pong buffers
	tmp        []bpRun   // envMin destination for row accumulation
	rows       [][]bpRun // per-output-row accumulated runs (PowerDP)
	accOff     []int32   // per-row offsets into accRuns (PowerDP/QoS)
	accRuns    []bpRun
	modeStarts []int32 // per (child row, mode) staircase starts (PowerDP)
	cols       []int32 // per-column offsets (QoS)
	colRuns    []bpRun
}

// bpConv computes the min-plus convolution of two monotone rows:
// out[k] = min{a[i]+b[j] : i+j == k, a[i]+b[j] <= maxSum} for
// k <= maxStart. maxStart must not exceed the natural reach
// accN+chN (the sum of the dense rows' last indices): a run claims its
// value to the end of the output, which past the reach no exact dense
// split could produce. The result lands in one of sc's fold buffers
// and is valid until the next bpConv/bpPlaceMerge call on the same
// scratch.
//
// The candidate breakpoints (a_i.start+b_j.start, a_i.val+b_j.val)
// form, for each i, a fragment with increasing starts and decreasing
// values; the convolution is the lower envelope of the fragments. The
// envelope equals the dense convolution because consecutive runs cover
// contiguous index windows: the candidate claimed at any cell k in
// range is achievable by some exact split i+j = k with the same or
// smaller value. Cost is O(|a|·(|b|+R)) with R the result size — both
// bounded by the value range, not the row width.
func bpConv(a, b []bpRun, maxSum int64, maxStart int32, sc *bpScratch) []bpRun {
	res, alt := sc.res[:0], sc.alt[:0]
	for i := range a {
		frag := sc.frag[:0]
		for j := range b {
			s := a[i].start + b[j].start
			if s > maxStart {
				break // starts only grow with j
			}
			v := a[i].val + b[j].val
			if v > maxSum {
				continue // values only shrink with j
			}
			frag = append(frag, bpRun{start: s, val: v})
		}
		sc.frag = frag[:0]
		if len(frag) == 0 {
			continue
		}
		res, alt = envMin(res, frag, alt[:0]), res
	}
	sc.res, sc.alt = alt[:0], res // keep capacities live across calls
	return res
}

// bpPlaceMerge is the fold step of the replica merges on compressed
// rows: the min-plus convolution of acc row a with child row b under
// the load cap maxSum, plus the option of equipping the child itself,
// which absorbs its load entirely — out[k] may also take a[n1] for any
// n1 with a feasible child cell at k-n1-1. b must be non-empty.
//
// Equipping dominates every second-and-later child run (same acc
// value, one extra unit of the resource axis), so each acc run
// contributes at most two breakpoints: the first child run's pair and
// the equip point one cell later. That makes the whole step linear in
// the run counts — independent of the row widths the dense kernel
// pays for. maxStart must not exceed the natural reach accN+chN+1.
func bpPlaceMerge(a, b []bpRun, maxSum int64, maxStart int32, sc *bpScratch) []bpRun {
	res, alt := sc.res[:0], sc.alt[:0]
	for i := range a {
		frag := sc.frag[:0]
		// Only the pair with the child's first run can matter: a pair
		// using any later child run has value >= a[i].val (child
		// values are non-negative) and start past the equip point, so
		// the equip point dominates it.
		if s := a[i].start + b[0].start; s <= maxStart && a[i].val+b[0].val <= maxSum {
			frag = append(frag, bpRun{start: s, val: a[i].val + b[0].val})
		}
		// The equip point: value a[i].val from one cell past the
		// child's first feasible cell. Equipping is never cap-checked —
		// the child's load is absorbed, matching the dense kernel.
		if s := a[i].start + b[0].start + 1; s <= maxStart {
			if n := len(frag); n == 0 || a[i].val < frag[n-1].val {
				frag = append(frag, bpRun{start: s, val: a[i].val})
			}
		}
		sc.frag = frag[:0]
		if len(frag) == 0 {
			continue
		}
		res, alt = envMin(res, frag, alt[:0]), res
	}
	sc.res, sc.alt = alt[:0], res
	return res
}

// bpShift writes a copy of a with every start moved right by delta
// (dropping runs past maxStart) into dst and returns it. This is the
// cross-row staircase of the power merge: equipping the child at a
// lower mode contributes the acc row shifted to the first child cell
// that mode can carry.
func bpShift(a []bpRun, delta, maxStart int32, dst []bpRun) []bpRun {
	dst = dst[:0]
	for i := range a {
		s := a[i].start + delta
		if s > maxStart {
			break
		}
		dst = append(dst, bpRun{start: s, val: a[i].val})
	}
	return dst
}
