package core

import (
	"errors"
	"testing"
	"testing/quick"

	"replicatree/internal/greedy"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func TestMinCostNoPreFigure1(t *testing.T) {
	tr, _ := fig1Tree(2)
	res, err := MinCostNoPre(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 2 {
		t.Fatalf("servers = %d, want 2", res.Servers)
	}
	if err := tree.ValidateUniform(tr, res.Placement, 10); err != nil {
		t.Fatal(err)
	}
	// A single big server suffices at W=13.
	res, err = MinCostNoPre(tr, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 1 || !res.Placement.Has(tr.Root()) {
		t.Fatalf("W=13: %v", res.Placement)
	}
}

func TestMinCostNoPreEdges(t *testing.T) {
	// No clients: zero servers.
	b := tree.NewBuilder()
	b.AddNode(0)
	tr := b.MustBuild()
	res, err := MinCostNoPre(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 0 {
		t.Fatalf("servers = %d", res.Servers)
	}
	// Infeasible.
	b2 := tree.NewBuilder()
	b2.AddClient(0, 9)
	if _, err := MinCostNoPre(b2.MustBuild(), 5); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	// Bad capacity.
	if _, err := MinCostNoPre(tr, 0); err == nil {
		t.Fatal("W=0 accepted")
	}
}

// Property: the three independent solvers of the classical problem —
// Cidon's O(N²) DP, the WithPre DP with E = ∅, and the greedy of [19] —
// agree on the minimal count, and Cidon's placement is valid.
func TestQuickThreeSolversAgree(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 40)
		cfg := tree.GenConfig{
			Nodes:       1 + src.IntN(80),
			MinChildren: 1 + src.IntN(4),
			MaxChildren: 0,
			ClientProb:  0.3 + src.Float64()*0.6,
			ReqMin:      1,
			ReqMax:      1 + src.IntN(8),
		}
		cfg.MaxChildren = cfg.MinChildren + src.IntN(5)
		tr := tree.MustGenerate(cfg, src)
		W := 5 + src.IntN(8)

		cid, errC := MinCostNoPre(tr, W)
		g, errG := greedy.MinReplicas(tr, W)
		wp, errW := MinReplicaCount(tr, W)
		if errC != nil || errG != nil || errW != nil {
			return (errC != nil) == (errG != nil) && (errG != nil) == (errW != nil)
		}
		if tree.ValidateUniform(tr, cid.Placement, W) != nil {
			return false
		}
		return cid.Servers == g.Count() && cid.Servers == wp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
