package core

import (
	"fmt"

	"replicatree/internal/cost"
	"replicatree/internal/tree"
)

// MinCostNoPre solves the classical replica placement problem (minimal
// number of servers, no pre-existing replicas) with the O(N²) dynamic
// program of Cidon, Kutten and Soffer [6], which the paper cites as the
// historical baseline. The table of node j maps the number of servers
// placed strictly inside subtree_j to the minimal number of requests
// that traverse j.
//
// The WithPre program in this package subsumes it (with E = ∅), and the
// greedy in package greedy matches its count in O(N log N); this
// independent implementation exists as a third oracle for
// cross-validation and as the paper's point of comparison.
func MinCostNoPre(t *tree.Tree, W int) (*MinCostResult, error) {
	if W <= 0 {
		return nil, fmt.Errorf("core: non-positive capacity %d", W)
	}
	if m := t.MaxClientSum(); m > W {
		return nil, fmt.Errorf("core: a node's clients demand %d > W=%d: %w", m, W, ErrInfeasible)
	}
	w := int32(W)
	n := t.N()

	type dec struct {
		kPrev int32
		place bool
	}
	type step struct {
		decs []dec
	}
	vals := make([][]int32, n) // minr per server count, per node
	steps := make([][]step, n) // one decision table per merged child

	for _, j := range t.PostOrder() {
		acc := []int32{int32(t.ClientSum(j))}
		for _, ch := range t.Children(j) {
			chVals := vals[ch]
			out := make([]int32, len(acc)+len(chVals))
			decs := make([]dec, len(out))
			for i := range out {
				out[i] = invalid
			}
			update := func(k, v int32, d dec) {
				if out[k] == invalid || v < out[k] {
					out[k] = v
					decs[k] = d
				}
			}
			for k := int32(0); k < int32(len(acc)); k++ {
				a := acc[k]
				if a == invalid {
					continue
				}
				for kc := int32(0); kc < int32(len(chVals)); kc++ {
					cv := chVals[kc]
					if cv == invalid {
						continue
					}
					if a+cv <= w {
						update(k+kc, a+cv, dec{kPrev: k})
					}
					update(k+kc+1, a, dec{kPrev: k, place: true})
				}
			}
			acc = out
			steps[j] = append(steps[j], step{decs: decs})
			vals[ch] = nil
		}
		vals[j] = acc
	}

	// Root scan: the smallest k with zero traversing requests, or k+1
	// with a server on the root.
	root := t.Root()
	bestK, bestServers := int32(-1), -1
	placeRoot := false
	for k := int32(0); k < int32(len(vals[root])); k++ {
		v := vals[root][k]
		if v == invalid {
			continue
		}
		if v == 0 && (bestServers < 0 || int(k) < bestServers) {
			bestK, bestServers, placeRoot = k, int(k), false
		}
		if v <= w && (bestServers < 0 || int(k)+1 < bestServers) {
			bestK, bestServers, placeRoot = k, int(k)+1, true
		}
	}
	if bestServers < 0 {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}

	placement := tree.NewReplicas(n)
	if placeRoot {
		placement.Set(root, 1)
	}
	var rebuild func(j int, k int32)
	rebuild = func(j int, k int32) {
		ss := steps[j]
		kids := t.Children(j)
		for s := len(ss) - 1; s >= 0; s-- {
			d := ss[s].decs[k]
			ch := kids[s]
			kc := k - d.kPrev
			if d.place {
				placement.Set(ch, 1)
				kc--
			}
			rebuild(ch, kc)
			k = d.kPrev
		}
		if k != 0 {
			panic(fmt.Sprintf("core: NoPre reconstruction reached invalid base %d at node %d", k, j))
		}
	}
	rebuild(root, bestK)

	return &MinCostResult{
		Placement: placement,
		Cost:      (cost.Simple{}).Of(bestServers, 0, 0),
		Servers:   bestServers,
		Reused:    0,
		New:       bestServers,
	}, nil
}
