package core

import "replicatree/internal/tree"

// This file holds the machinery shared by the incremental re-solve
// paths of MinCostSolver, QoSSolver and PowerDP. The dynamic programs
// are subtree-decomposable: the table of a node depends only on its own
// client demands, its children's tables, and per-child attributes of
// the instance (pre-existing membership/modes, link bandwidths). When a
// solve changes only a few of those inputs, every table outside the
// ancestor chains of the changed nodes is still exact, so the solvers
// keep all per-node tables in retained buffers across solves and
// recompute only the dirty chains — O(changed nodes × depth) instead of
// O(N) tables per solve.
//
// Staleness is detected per input class:
//
//   - client demands, via tree.Tree.DemandGen stamps (a change at node
//     x dirties x and its ancestors);
//   - pre-existing sets and operating modes, by diffing against a
//     retained copy of the previous solve's set (a change at x dirties
//     parent(x) and above: x's own table never depends on x's
//     membership, only its parent's merge does);
//   - global parameters that reshape every table (capacity W, the power
//     model, a constraint set), by full invalidation;
//   - parameters read only by the root scan (cost models), by nothing:
//     the root scan and the reconstruction run on every solve.
//
// The retained buffers replace the per-solve arenas for everything
// that must outlive a solve (final node tables, reconstruction
// back-pointers); merge intermediates still live in the arenas. Both
// only ever grow, so the zero-allocation steady state of the arena
// contract carries over to incremental solves.

// grown returns a slice of length n with unspecified contents for
// retained per-node DP storage, reusing buf's capacity when possible.
func grown[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// grownKeep is grown preserving the prefix already in buf. Used for
// slices whose elements are themselves retained buffers (per-node
// tables), so a cross-tree rebind keeps every buffer as a capacity
// donor.
func grownKeep[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	out := make([]T, n)
	copy(out, buf)
	return out
}

// SolveStats profiles a reusable solver's most recent completed solve.
type SolveStats struct {
	// Nodes is the number of internal nodes of the bound tree.
	Nodes int
	// Recomputed counts the nodes whose DP tables were rebuilt: equal
	// to Nodes on a cold (or invalidated) solve, the total size of the
	// dirty ancestor chains on an incremental one, and 0 when nothing
	// relevant changed since the previous solve. A partially re-merged
	// power root (see RootCellsRepriced) counts as one recomputed node.
	Recomputed int
	// RootCellsScanned and RootCellsRepriced profile PowerDP's
	// incremental root scan (both stay 0 for MinCostSolver and
	// QoSSolver). Scanned is the size of the root table the scan
	// covered — 0 when the whole scan was skipped because neither the
	// table nor the pricing context changed. Repriced counts the cells
	// whose price candidates were actually recomputed: equal to Scanned
	// on a cold scan (or after a cost-model change), and only the cells
	// of root-table blocks whose values changed on an incremental
	// re-solve — the rest reuse their retained block Pareto fronts.
	RootCellsScanned  int
	RootCellsRepriced int
	// RootMergeRetained counts the fold steps of PowerDP's root merge
	// that were reused from the previous solve instead of re-merged:
	// 0 on a cold solve, the number of root children when the whole
	// fold was skipped, and the length of the still-exact fold prefix
	// on a partial replay. The volatility-ordered fold (see
	// PowerDP.Reset) exists to push this number up. Stays 0 for
	// MinCostSolver and QoSSolver.
	RootMergeRetained int
	// MergeCellsScanned measures the merge work of the solve: table
	// cells visited by dense merge kernels plus breakpoint runs visited
	// by compressed ones. Comparing it against the dense-only volume of
	// a cold solve is the direct read on what row compression saves.
	MergeCellsScanned int
	// RowsCompressed counts the DP rows the merge kernels ran in
	// breakpoint form instead of densely (two rows — accumulator and
	// child — per compressed merge step). 0 when every row sat below
	// the activation width minDenseWidth.
	RowsCompressed int
	// FoldSuffixReplayed counts the merge steps re-executed by partial
	// child-fold replays: a dirty node whose first stale child sits at
	// position s of its fold re-runs only the suffix from s, and those
	// suffix steps land here. Steps of full (position-0) rebuilds do
	// not count, so on drift solves a low number next to a high
	// Recomputed means the retained fold prefixes are doing their job.
	FoldSuffixReplayed int
	// MaskedNodes is the number of nodes the solver's fault mask (see
	// MinCostSolver.SetMask) held down during the solve: 0 without a
	// mask. Stays 0 for QoSSolver and PowerDP, which do not take masks.
	MaskedNodes int
}

// mergeStats accumulates the merge-layer counters of SolveStats per
// worker, so the wave-parallel pass can count without synchronisation.
type mergeStats struct {
	cells    int
	rows     int
	replayed int
}

// addTo folds the worker-local counters into st.
func (m *mergeStats) addTo(st *SolveStats) {
	st.MergeCellsScanned += m.cells
	st.RowsCompressed += m.rows
	st.FoldSuffixReplayed += m.replayed
}

// dirtyTracker decides, at the start of a solve, which nodes' cached
// subtree tables are stale. Not safe for concurrent use (it lives
// inside the solvers, which already are single-goroutine).
type dirtyTracker struct {
	solved bool
	seen   []uint64 // demand generation folded into each node's table
	dirty  []bool
}

// bind sizes the tracker for an n-node tree and forces the next solve
// to be a full one.
func (d *dirtyTracker) bind(n int) {
	d.seen = grown(d.seen, n)
	d.dirty = grown(d.dirty, n)
	d.solved = false
}

// invalidate forces the next solve to recompute every table.
func (d *dirtyTracker) invalidate() { d.solved = false }

// mark seeds the dirty set from the demand generations (or everything,
// when full is set or no valid solve exists yet).
func (d *dirtyTracker) mark(t *tree.Tree, full bool) {
	full = full || !d.solved
	for j := 0; j < t.N(); j++ {
		d.dirty[j] = full || t.DemandGen(j) != d.seen[j]
	}
}

// markParent dirties the parent of j: the hook for per-child inputs
// (membership, modes) that a node's own table does not depend on.
func (d *dirtyTracker) markParent(t *tree.Tree, j int) {
	if p := t.Parent(j); p >= 0 {
		d.dirty[p] = true
	}
}

// propagate pushes dirtiness up the ancestor chains. Walking the
// post-order visits every child before its parent, so one pass
// suffices.
func (d *dirtyTracker) propagate(t *tree.Tree) {
	for _, j := range t.PostOrder() {
		if d.dirty[j] {
			if p := t.Parent(j); p >= 0 {
				d.dirty[p] = true
			}
		}
	}
}

// commit records that every table now reflects the tree's current
// demands. Call only after the recomputation pass succeeded.
func (d *dirtyTracker) commit(t *tree.Tree) {
	for j := 0; j < t.N(); j++ {
		d.seen[j] = t.DemandGen(j)
	}
	d.solved = true
}
