package core

import (
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// samePlacement reports whether two replica sets agree node by node
// (membership and mode).
func samePlacement(n int, a, b *tree.Replicas) bool {
	for j := 0; j < n; j++ {
		if a.Has(j) != b.Has(j) || a.Mode(j) != b.Mode(j) {
			return false
		}
	}
	return true
}

// driftSome flips a few client demands, alternating values with step so
// consecutive calls always change something.
func driftSome(t *tree.Tree, step int) {
	hit := 0
	for j := 0; j < t.N() && hit < 5; j++ {
		if len(t.Clients(j)) > 0 {
			t.SetDemand(j, 0, 1+(j+step)%3)
			hit++
		}
	}
}

// TestWaveParallelDeterminismMinCost checks the subtree-parallel
// MinCost pass against the sequential one: identical costs, server
// counts and placements (including tie-breaks) for every worker count,
// on a cold solve and across incremental drift steps. Run with -race to
// also exercise the scheduler's happens-before edges.
func TestWaveParallelDeterminismMinCost(t *testing.T) {
	src := rng.New(90)
	tr := tree.MustGenerate(tree.FatConfig(300), src)
	existing, err := tree.RandomReplicas(tr, 60, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	c := cost.Simple{Create: 0.1, Delete: 0.01}

	seq := NewMinCostSolver(tr)
	dstSeq := tree.ReplicasOf(tr)
	for _, workers := range []int{2, 8} {
		par := NewMinCostSolver(tr)
		par.SetWorkers(workers)
		dstPar := tree.ReplicasOf(tr)
		for step := 0; step < 6; step++ {
			if step > 0 {
				driftSome(tr, step)
			}
			want, err := seq.SolveInto(existing, 10, c, dstSeq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.SolveInto(existing, 10, c, dstPar)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost || got.Servers != want.Servers || got.Reused != want.Reused {
				t.Fatalf("workers=%d step=%d: got (%v, %d, %d), want (%v, %d, %d)",
					workers, step, got.Cost, got.Servers, got.Reused, want.Cost, want.Servers, want.Reused)
			}
			if !samePlacement(tr.N(), dstPar, dstSeq) {
				t.Fatalf("workers=%d step=%d: placements differ", workers, step)
			}
			// After the cold step both solvers share the same cache
			// state, so incremental steps must recompute identically.
			if pr, sr := par.Stats().Recomputed, seq.Stats().Recomputed; step > 0 && pr != sr {
				t.Fatalf("workers=%d step=%d: recomputed %d, want %d", workers, step, pr, sr)
			}
		}
		// Switching back to one worker tears the pool down and must
		// keep solving correctly.
		par.SetWorkers(1)
		driftSome(tr, 99)
		want, err := seq.SolveInto(existing, 10, c, dstSeq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.SolveInto(existing, 10, c, dstPar)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || !samePlacement(tr.N(), dstPar, dstSeq) {
			t.Fatalf("workers=%d after reverting to 1: solutions differ", workers)
		}
	}
}

// TestWaveParallelDeterminismQoS is the MinCost determinism check for
// the constrained-counting solver.
func TestWaveParallelDeterminismQoS(t *testing.T) {
	tr := tree.MustGenerate(tree.FatConfig(300), rng.New(91))
	cons := tree.NewConstraints(tr)
	cons.SetUniformQoS(tr, 4)

	seq := NewQoSSolver(tr)
	dstSeq := tree.ReplicasOf(tr)
	for _, workers := range []int{2, 8} {
		par := NewQoSSolver(tr)
		par.SetWorkers(workers)
		dstPar := tree.ReplicasOf(tr)
		for step := 0; step < 6; step++ {
			if step > 0 {
				driftSome(tr, step)
			}
			want, err := seq.Solve(10, cons, dstSeq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Solve(10, cons, dstPar)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count() != want.Count() {
				t.Fatalf("workers=%d step=%d: count %d, want %d", workers, step, got.Count(), want.Count())
			}
			if !samePlacement(tr.N(), got, want) {
				t.Fatalf("workers=%d step=%d: placements differ", workers, step)
			}
		}
	}
}

// TestWaveParallelDeterminismPower checks the power DP: byte-identical
// Pareto fronts and identical reconstructions for every worker count,
// cold and across drift steps. The root fold stays sequential either
// way; the wave scheduler covers the rest of the tree.
func TestWaveParallelDeterminismPower(t *testing.T) {
	src := rng.New(92)
	tr := tree.MustGenerate(tree.PowerConfig(40), src)
	existing, err := tree.RandomReplicas(tr, 5, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.MustNew([]int{5, 10}, 10, 2)
	prob := PowerProblem{Existing: existing, Power: pm, Cost: cost.UniformModal(2, 0.5, 0.25, 0.25)}

	seq := NewPowerDP(tr)
	dstSeq := tree.ReplicasOf(tr)
	for _, workers := range []int{2, 8} {
		par := NewPowerDP(tr)
		par.SetWorkers(workers)
		dstPar := tree.ReplicasOf(tr)
		var wantF, gotF []ParetoPoint
		for step := 0; step < 6; step++ {
			if step > 0 {
				driftSome(tr, step)
			}
			ws, err := seq.Solve(prob)
			if err != nil {
				t.Fatal(err)
			}
			wantF = ws.FrontInto(wantF)
			wantRes, ok := ws.BestInto(1e18, dstSeq)
			if !ok {
				t.Fatal("sequential solve found nothing")
			}
			ps, err := par.Solve(prob)
			if err != nil {
				t.Fatal(err)
			}
			gotF = ps.FrontInto(gotF)
			gotRes, ok := ps.BestInto(1e18, dstPar)
			if !ok {
				t.Fatal("parallel solve found nothing")
			}
			if len(gotF) != len(wantF) {
				t.Fatalf("workers=%d step=%d: front size %d, want %d", workers, step, len(gotF), len(wantF))
			}
			for i := range wantF {
				if gotF[i] != wantF[i] {
					t.Fatalf("workers=%d step=%d: front[%d] = %+v, want %+v", workers, step, i, gotF[i], wantF[i])
				}
			}
			if gotRes.Cost != wantRes.Cost || gotRes.Power != wantRes.Power {
				t.Fatalf("workers=%d step=%d: best (%v, %v), want (%v, %v)",
					workers, step, gotRes.Cost, gotRes.Power, wantRes.Cost, wantRes.Power)
			}
			if !samePlacement(tr.N(), dstPar, dstSeq) {
				t.Fatalf("workers=%d step=%d: placements differ", workers, step)
			}
		}
	}
}

// TestMinCostServerCapDifferential lowers the cap activation threshold
// so a paper-sized instance solves with an active new-server cap, and
// cross-checks it against the uncapped program: the cap must be
// invisible — same cost, same server split, same placement — cold and
// across drift steps (where cap stickiness keeps the cache warm).
func TestMinCostServerCapDifferential(t *testing.T) {
	saved := minCapNodes
	defer func() { minCapNodes = saved }()

	src := rng.New(93)
	tr := tree.MustGenerate(tree.FatConfig(300), src)
	existing, err := tree.RandomReplicas(tr, 60, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	c := cost.Simple{Create: 0.1, Delete: 0.01}

	minCapNodes = 50
	capped := NewMinCostSolver(tr)
	dstCap := tree.ReplicasOf(tr)
	minCapNodes = 1 << 30
	uncapped := NewMinCostSolver(tr)
	dstUn := tree.ReplicasOf(tr)

	for step := 0; step < 4; step++ {
		if step > 0 {
			driftSome(tr, step)
		}
		minCapNodes = 50
		got, err := capped.SolveInto(existing, 10, c, dstCap)
		if err != nil {
			t.Fatal(err)
		}
		if capped.capB <= 0 {
			t.Fatal("cap did not activate")
		}
		minCapNodes = 1 << 30
		want, err := uncapped.SolveInto(existing, 10, c, dstUn)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || got.Servers != want.Servers || got.Reused != want.Reused {
			t.Fatalf("step=%d: capped (%v, %d, %d), uncapped (%v, %d, %d)",
				step, got.Cost, got.Servers, got.Reused, want.Cost, want.Servers, want.Reused)
		}
		if !samePlacement(tr.N(), dstCap, dstUn) {
			t.Fatalf("step=%d: placements differ under the cap", step)
		}
	}
	// The cap must actually clamp some table: the optimum uses far
	// fewer servers than the node count, so capB stays well below it.
	if int(capped.capB) >= tr.N() {
		t.Fatalf("capB = %d does not clamp a %d-node tree", capped.capB, tr.N())
	}
}

// TestPowerRootFoldVolatilityOrder drives one hot subtree under the
// root, rebinds via Reset, and checks that the volatility-derived fold
// order pushes the hot child to the end of the fold — so a drift step
// reuses all but one root merge step — while the front stays
// byte-identical to a naturally-ordered solver.
func TestPowerRootFoldVolatilityOrder(t *testing.T) {
	b := tree.NewBuilder()
	var grand []int
	for i := 0; i < 4; i++ {
		c := b.AddNode(b.Root())
		g := b.AddNode(c)
		b.AddClient(g, 2+i)
		grand = append(grand, g)
	}
	tr := b.MustBuild()
	pm := power.MustNew([]int{5, 12}, 10, 2)
	prob := PowerProblem{Power: pm, Cost: freeCost(2)}
	const K = 4
	hot := grand[0] // client under the root's first child

	dp := NewPowerDP(tr)
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		tr.SetDemand(hot, 0, 2+step%2)
		if _, err := dp.Solve(prob); err != nil {
			t.Fatal(err)
		}
	}

	// Rebind: the observed volatility (only child 0 churned) must move
	// the hot child to the last fold position.
	dp.Reset(tr)
	if len(dp.rootOrder) != K || dp.rootOrder[K-1] != 0 {
		t.Fatalf("rootOrder = %v, want the hot child (position 0) folded last", dp.rootOrder)
	}
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	if got := dp.Stats().RootMergeRetained; got != 0 {
		t.Fatalf("cold solve retained %d root merges, want 0", got)
	}

	// A hot-child drift now invalidates only the last fold step.
	tr.SetDemand(hot, 0, 5)
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	if got := dp.Stats().RootMergeRetained; got != K-1 {
		t.Fatalf("RootMergeRetained = %d, want %d", got, K-1)
	}

	// An untouched re-solve keeps the whole fold. Its solver view is
	// the one compared below (a PowerSolver is only valid until the
	// next Solve on its PowerDP).
	sReordered, err := dp.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if got := dp.Stats().RootMergeRetained; got != K {
		t.Fatalf("RootMergeRetained = %d after a clean re-solve, want %d", got, K)
	}

	// The reordered fold must not change the front by a single bit, and
	// its reconstruction must price identically.
	fresh := NewPowerDP(tr)
	sNatural, err := fresh.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	wantF, gotF := sNatural.Front(), sReordered.Front()
	if len(wantF) != len(gotF) {
		t.Fatalf("front size %d, want %d", len(gotF), len(wantF))
	}
	for i := range wantF {
		if gotF[i] != wantF[i] {
			t.Fatalf("front[%d] = %+v, want %+v", i, gotF[i], wantF[i])
		}
	}
	want, got := sNatural.MinPower(), sReordered.MinPower()
	if got.Cost != want.Cost || got.Power != want.Power {
		t.Fatalf("reordered best (%v, %v), natural (%v, %v)", got.Cost, got.Power, want.Cost, want.Power)
	}
}
