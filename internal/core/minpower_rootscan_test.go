package core

import (
	"math"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// These tests pin the incremental root-scan contract of PowerDP: the
// delta-priced, block-sharded scan must return byte-for-byte the front
// a cold solver computes, for any drift sequence, any worker count and
// any mix of table edits with cost-model swaps — while provably
// re-pricing only the root-table blocks whose cells changed
// (SolveStats.RootCellsScanned / RootCellsRepriced).

// frontsEqual fails the test unless the two solvers expose identical
// fronts and reconstruct identical placements at every point.
func frontsEqual(t *testing.T, label string, want, got *PowerSolver) {
	t.Helper()
	wf, gf := want.Front(), got.Front()
	if len(wf) != len(gf) {
		t.Fatalf("%s: front sizes %d != %d", label, len(wf), len(gf))
	}
	for k := range wf {
		if wf[k] != gf[k] {
			t.Fatalf("%s: front[%d] %v != %v", label, k, wf[k], gf[k])
		}
		if !want.At(k).Placement.Equal(got.At(k).Placement) {
			t.Fatalf("%s: placement %d differs", label, k)
		}
	}
}

// TestRootScanIncrementalMatchesCold drives a warm PowerDP through
// random drift steps interleaved with cost-model swaps (which leave
// every subtree table valid and exercise the reprice-without-remerge
// path) and no-op re-solves (the skip-scan path), checking the front
// against a cold solve at every step.
func TestRootScanIncrementalMatchesCold(t *testing.T) {
	pm := powerModel2()
	costs := []cost.Modal{
		cost.UniformModal(2, 0.1, 0.01, 0.001),
		cost.UniformModal(2, 0.6, 0.05, 0.2),
		cost.UniformModal(2, 0, 0, 0),
	}
	for i := 0; i < reuseTreeCount(t)/2; i++ {
		src := rng.Derive(211, i)
		tr := tree.MustGenerate(tree.PowerConfig(16+i%12), src)
		existing, err := tree.RandomReplicas(tr, 3, 2, src)
		if err != nil {
			t.Fatal(err)
		}
		dp := NewPowerDP(tr)
		for step := 0; step < 10; step++ {
			switch step % 4 {
			case 0, 2:
				driftClients(tr, 1+src.IntN(2), src)
			case 1:
				// Cost swap only: tables stay clean, the scan re-prices.
			case 3:
				// Nothing at all: the scan itself is skipped.
			}
			prob := PowerProblem{Tree: tr, Existing: existing, Power: pm, Cost: costs[step%len(costs)]}
			got, gotErr := dp.Solve(prob)
			want, wantErr := SolvePower(prob)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("tree %d step %d: cold err %v, incremental err %v", i, step, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			frontsEqual(t, "incremental", want, got)
		}
	}
}

// TestRootScanParallelDeterministic pins the sharded scan: the front
// and every reconstruction must be identical for any worker count, on
// cold solves and on incremental re-solves alike (the short-suite race
// run covers the goroutine fan-out).
func TestRootScanParallelDeterministic(t *testing.T) {
	pm := powerModel2()
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	src := rng.New(212)
	tr := tree.MustGenerate(tree.PowerConfig(40), src)
	existing, err := tree.RandomReplicas(tr, 4, 2, src)
	if err != nil {
		t.Fatal(err)
	}

	ref := NewPowerDP(tr)
	dps := map[int]*PowerDP{2: NewPowerDP(tr), 8: NewPowerDP(tr)}
	for step := 0; step < 4; step++ {
		if step > 0 {
			driftClients(tr, 2, src)
		}
		want, err := ref.Solve(PowerProblem{Tree: tr, Existing: existing, Power: pm, Cost: cm, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for workers, dp := range dps {
			got, err := dp.Solve(PowerProblem{Tree: tr, Existing: existing, Power: pm, Cost: cm, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			// Both solvers alias scratch, so compare before the next
			// worker count re-solves.
			wf, gf := want.Front(), got.Front()
			if len(wf) != len(gf) {
				t.Fatalf("step %d workers %d: front sizes %d != %d", step, workers, len(wf), len(gf))
			}
			for k := range wf {
				if wf[k] != gf[k] {
					t.Fatalf("step %d workers %d: front[%d] %v != %v", step, workers, k, wf[k], gf[k])
				}
				if !want.At(k).Placement.Equal(got.At(k).Placement) {
					t.Fatalf("step %d workers %d: placement %d differs", step, workers, k)
				}
			}
		}
	}
}

// TestRootCellsRepricedBounds pins the SolveStats contract of the
// incremental scan on a seeded drift sequence: a cold solve prices the
// whole root table, a no-op solve skips the scan, a cost-model swap
// re-prices without recomputing any table, and drift steps re-price at
// most what they scan — strictly less in aggregate, which is the
// "drift reprices fewer root cells than a cold solve" acceptance bound.
func TestRootCellsRepricedBounds(t *testing.T) {
	src := rng.New(2026)
	tr := tree.MustGenerate(tree.PowerConfig(50), src)
	existing, err := tree.RandomReplicas(tr, 5, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	dp := NewPowerDP(tr)
	prob := PowerProblem{Tree: tr, Existing: existing, Power: powerModel2(), Cost: cost.UniformModal(2, 0.1, 0.01, 0.001)}

	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	cold := dp.Stats()
	if cold.RootCellsScanned == 0 || cold.RootCellsRepriced != cold.RootCellsScanned {
		t.Fatalf("cold solve: scanned %d, repriced %d; want a full scan",
			cold.RootCellsScanned, cold.RootCellsRepriced)
	}

	// Nothing changed: the scan is skipped outright.
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	if st := dp.Stats(); st.RootCellsScanned != 0 || st.RootCellsRepriced != 0 {
		t.Fatalf("no-op solve: scanned %d, repriced %d; want 0, 0",
			st.RootCellsScanned, st.RootCellsRepriced)
	}

	// A cost-model swap re-prices everything but recomputes no table.
	swapped := prob
	swapped.Cost = cost.UniformModal(2, 0.9, 0.2, 0.05)
	if _, err := dp.Solve(swapped); err != nil {
		t.Fatal(err)
	}
	if st := dp.Stats(); st.Recomputed != 0 ||
		st.RootCellsScanned != cold.RootCellsScanned || st.RootCellsRepriced != cold.RootCellsScanned {
		t.Fatalf("cost swap: recomputed %d, scanned %d, repriced %d; want 0, %d, %d",
			st.Recomputed, st.RootCellsScanned, st.RootCellsRepriced,
			cold.RootCellsScanned, cold.RootCellsScanned)
	}
	if _, err := dp.Solve(prob); err != nil { // swap back
		t.Fatal(err)
	}

	// Drift steps: never re-price beyond the scan, and strictly less
	// than a cold scan in aggregate (the diff reuses unchanged blocks).
	totalRepriced, steps := 0, 12
	for trial := 0; trial < steps; trial++ {
		driftClients(tr, 1, src)
		if _, err := dp.Solve(prob); err != nil {
			t.Fatal(err)
		}
		st := dp.Stats()
		if st.RootCellsScanned != cold.RootCellsScanned {
			t.Fatalf("trial %d: scanned %d, want %d", trial, st.RootCellsScanned, cold.RootCellsScanned)
		}
		if st.RootCellsRepriced > st.RootCellsScanned {
			t.Fatalf("trial %d: repriced %d > scanned %d", trial, st.RootCellsRepriced, st.RootCellsScanned)
		}
		totalRepriced += st.RootCellsRepriced
	}
	if totalRepriced >= steps*cold.RootCellsScanned {
		t.Fatalf("drift sequence repriced %d cells over %d steps; want < %d (some block reuse)",
			totalRepriced, steps, steps*cold.RootCellsScanned)
	}
}

// TestPushFrontKeepsExactPareto checks the streaming filter against a
// brute-force Pareto computation on adversarial insertion orders.
func TestPushFrontKeepsExactPareto(t *testing.T) {
	src := rng.New(213)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.IntN(24)
		entries := make([]frontEntry, n)
		for i := range entries {
			entries[i] = frontEntry{
				cost:  float64(src.IntN(8)),
				power: float64(src.IntN(8)),
			}
		}
		var front []frontEntry
		for _, e := range entries {
			front = pushFront(front, e)
		}
		// Brute-force: an entry survives iff no other entry weakly
		// dominates it (ties keep exactly one copy).
		for _, e := range entries {
			dominated := false
			for _, o := range entries {
				if (o.cost < e.cost && o.power <= e.power) || (o.cost <= e.cost && o.power < e.power) {
					dominated = true
					break
				}
			}
			found := false
			for _, f := range front {
				if f.cost == e.cost && f.power == e.power {
					found = true
					break
				}
			}
			if dominated && found {
				t.Fatalf("trial %d: dominated entry %v kept in %v", trial, e, front)
			}
			if !dominated && !found {
				t.Fatalf("trial %d: non-dominated entry %v missing from %v", trial, e, front)
			}
		}
		for i := 1; i < len(front); i++ {
			if front[i].cost <= front[i-1].cost || front[i].power >= front[i-1].power {
				t.Fatalf("trial %d: front order broken: %v", trial, front)
			}
		}
	}
}

// TestFrontIntoMatchesFront pins FrontInto: identical content to Front
// and allocation-free once the destination has grown.
func TestFrontIntoMatchesFront(t *testing.T) {
	src := rng.New(214)
	tr := tree.MustGenerate(tree.PowerConfig(30), src)
	existing, err := tree.RandomReplicas(tr, 4, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SolvePower(PowerProblem{
		Tree: tr, Existing: existing,
		Power: powerModel2(), Cost: cost.UniformModal(2, 0.1, 0.01, 0.001),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := s.Front()
	var dst []ParetoPoint
	dst = s.FrontInto(dst)
	if len(dst) != len(want) {
		t.Fatalf("FrontInto returned %d points, Front %d", len(dst), len(want))
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("point %d: %v != %v", i, dst[i], want[i])
		}
	}
	if testing.Short() {
		return
	}
	if n := testing.AllocsPerRun(5, func() {
		dst = s.FrontInto(dst)
	}); n != 0 {
		t.Errorf("warm FrontInto: %v allocs/op, want 0", n)
	}
}

// TestRootScanSkipsAfterReset guards the rebind path: a Reset must drop
// the retained scan context, so the first solve on the new tree cannot
// reuse fronts priced for the old one even when shapes coincide.
func TestRootScanSkipsAfterReset(t *testing.T) {
	pm := powerModel2()
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	a := tree.MustGenerate(tree.PowerConfig(20), rng.New(215))
	b := tree.MustGenerate(tree.PowerConfig(20), rng.New(216))
	dp := NewPowerDP(a)
	if _, err := dp.Solve(PowerProblem{Tree: a, Power: pm, Cost: cm}); err != nil {
		t.Fatal(err)
	}
	dp.Reset(b)
	got, err := dp.Solve(PowerProblem{Tree: b, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolvePower(PowerProblem{Tree: b, Power: pm, Cost: cm})
	if err != nil {
		t.Fatal(err)
	}
	frontsEqual(t, "after Reset", want, got)
	wOpt, gOpt := want.MinPower(), got.MinPower()
	if wOpt.Power != gOpt.Power || math.Abs(wOpt.Cost-gOpt.Cost) > 1e-12 {
		t.Fatalf("rebound optimum (%v, %v) != cold (%v, %v)", gOpt.Cost, gOpt.Power, wOpt.Cost, wOpt.Power)
	}
}
