package core

import (
	"errors"
	"math/rand"
	"testing"

	"replicatree/internal/greedy"
	"replicatree/internal/tree"
)

// randomConstrainedInstance draws a small random tree with random QoS
// bounds and link bandwidths. loose leaves roughly half the clients and
// links unconstrained.
func randomConstrainedInstance(rng *rand.Rand, maxNodes, maxReq int) (*tree.Tree, *tree.Constraints) {
	n := 2 + rng.Intn(maxNodes-1)
	b := tree.NewBuilder()
	nodes := []int{b.Root()}
	for len(nodes) < n {
		p := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, b.AddNode(p))
	}
	for _, j := range nodes {
		for k := rng.Intn(3); k > 0; k-- {
			b.AddClient(j, rng.Intn(maxReq+1))
		}
	}
	t := b.MustBuild()
	c := tree.NewConstraints(t)
	for j := 0; j < t.N(); j++ {
		for k := range t.Clients(j) {
			if rng.Intn(2) == 0 {
				c.SetQoS(j, k, 1+rng.Intn(4))
			}
		}
		if j > 0 && rng.Intn(2) == 0 {
			c.SetBandwidth(j, rng.Intn(8))
		}
	}
	return t, c
}

// TestMinReplicasQoSMatchesBrute cross-validates the polynomial DP
// against exhaustive subset enumeration on random constrained
// instances.
func TestMinReplicasQoSMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		tr, c := randomConstrainedInstance(rng, 9, 4)
		W := 1 + rng.Intn(8)

		brute, errB := BruteMinReplicasConstrained(tr, W, tree.PolicyClosest, c)
		dp, errD := MinReplicasQoS(tr, W, c)
		if (errB == nil) != (errD == nil) {
			t.Fatalf("trial %d: brute err = %v, DP err = %v (tree %v, W=%d)", trial, errB, errD, tr, W)
		}
		if errB != nil {
			if !errors.Is(errD, ErrInfeasible) {
				t.Fatalf("trial %d: DP error %v is not ErrInfeasible", trial, errD)
			}
			continue
		}
		if brute.Count() != dp.Count() {
			t.Fatalf("trial %d: brute needs %d replicas, DP %d (tree %v, W=%d, brute %v, dp %v)",
				trial, brute.Count(), dp.Count(), tr, W, brute, dp)
		}
		if err := tree.ValidateConstrained(tr, dp, tree.PolicyClosest, W, c); err != nil {
			t.Fatalf("trial %d: DP placement invalid: %v", trial, err)
		}
	}
}

// TestMinReplicasQoSUnconstrainedMatchesGreedy checks that with no
// constraints the DP reproduces the optimal unconstrained count of the
// greedy algorithm on larger trees.
func TestMinReplicasQoSUnconstrainedMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tr, _ := randomConstrainedInstance(rng, 40, 5)
		W := 2 + rng.Intn(10)
		g, errG := greedy.MinReplicas(tr, W)
		dp, errD := MinReplicasQoS(tr, W, nil)
		if (errG == nil) != (errD == nil) {
			t.Fatalf("trial %d: greedy err = %v, DP err = %v", trial, errG, errD)
		}
		if errG != nil {
			continue
		}
		if g.Count() != dp.Count() {
			t.Fatalf("trial %d: greedy needs %d replicas, DP %d (tree %v, W=%d)",
				trial, g.Count(), dp.Count(), tr, W)
		}
	}
}

// TestMultipleConstrainedEngineExactVsBrute cross-validates the
// engine's deadline-aware saturating pass for the multiple policy
// against the unit-granularity exhaustive search: the pass is claimed
// to be an exact feasibility test even under QoS and bandwidth
// constraints.
func TestMultipleConstrainedEngineExactVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 250; trial++ {
		tr, c := randomConstrainedInstance(rng, 7, 3)
		W := 1 + rng.Intn(6)
		e := tree.NewEngine(tr)
		n := tr.N()
		for mask := 0; mask < 1<<n; mask++ {
			r := tree.NewReplicas(n)
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					r.Set(j, 1)
				}
			}
			engineOK := e.ValidateUniformConstrained(r, tree.PolicyMultiple, W, c) == nil
			bruteOK, err := BruteFeasibleConstrained(tr, r, tree.PolicyMultiple, W, c)
			if err != nil {
				t.Fatalf("trial %d: brute: %v", trial, err)
			}
			if engineOK != bruteOK {
				t.Fatalf("trial %d mask %b: engine says %v, brute says %v (tree %v, W=%d)",
					trial, mask, engineOK, bruteOK, tr, W)
			}
		}
	}
}

// TestUpwardsConstrainedEngineSound checks that the constrained upwards
// certifier stays sound: whenever it certifies a placement, the
// exhaustive search confirms it.
func TestUpwardsConstrainedEngineSound(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 250; trial++ {
		tr, c := randomConstrainedInstance(rng, 7, 3)
		W := 1 + rng.Intn(6)
		e := tree.NewEngine(tr)
		n := tr.N()
		for mask := 0; mask < 1<<n; mask++ {
			r := tree.NewReplicas(n)
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					r.Set(j, 1)
				}
			}
			if e.ValidateUniformConstrained(r, tree.PolicyUpwards, W, c) != nil {
				continue
			}
			ok, err := BruteFeasibleConstrained(tr, r, tree.PolicyUpwards, W, c)
			if err != nil {
				t.Fatalf("trial %d: brute: %v", trial, err)
			}
			if !ok {
				t.Fatalf("trial %d mask %b: engine certified an infeasible upwards placement (tree %v, W=%d)",
					trial, mask, tr, W)
			}
		}
	}
}

// TestBruteFeasibleConstrainedContainment checks the constraint
// containment property on the exact references: adding constraints can
// only shrink the feasible set, for every policy.
func TestBruteFeasibleConstrainedContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		tr, c := randomConstrainedInstance(rng, 7, 3)
		W := 1 + rng.Intn(6)
		n := tr.N()
		for _, p := range tree.Policies() {
			for mask := 0; mask < 1<<n; mask++ {
				r := tree.NewReplicas(n)
				for j := 0; j < n; j++ {
					if mask&(1<<j) != 0 {
						r.Set(j, 1)
					}
				}
				conOK, err := BruteFeasibleConstrained(tr, r, p, W, c)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !conOK {
					continue
				}
				unOK, err := BruteFeasible(tr, r, p, W)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !unOK {
					t.Fatalf("trial %d policy %v mask %b: constrained-feasible but not unconstrained-feasible",
						trial, p, mask)
				}
			}
		}
	}
}
