package core

import (
	"testing"
	"testing/quick"
)

func TestNewShapeStrides(t *testing.T) {
	s, err := newShape([]int32{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.size != 60 {
		t.Fatalf("size = %d", s.size)
	}
	want := []int32{20, 5, 1}
	for i := range want {
		if s.strides[i] != want[i] {
			t.Fatalf("strides = %v, want %v", s.strides, want)
		}
	}
}

func TestNewShapeErrors(t *testing.T) {
	if _, err := newShape([]int32{3, 0}); err == nil {
		t.Fatal("zero dimension accepted")
	}
	if _, err := newShape([]int32{1 << 14, 1 << 14, 1 << 14}); err == nil {
		t.Fatal("oversized table accepted")
	}
}

func TestOdometerCoversAllCellsInFlatOrder(t *testing.T) {
	s, err := newShape([]int32{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	o := newOdometer(s.dims, s.strides)
	for flat := 0; flat < s.size; flat++ {
		// With ostr = own strides, o.out must equal the flat index.
		if int(o.out) != flat {
			t.Fatalf("cell %d: out = %d", flat, o.out)
		}
		idx := int32(0)
		for f := range o.coords {
			idx += o.coords[f] * s.strides[f]
		}
		if idx != o.out {
			t.Fatalf("cell %d: coords %v inconsistent", flat, o.coords)
		}
		advanced := o.next()
		if advanced != (flat != s.size-1) {
			t.Fatalf("cell %d: next = %v", flat, advanced)
		}
	}
	// After wrap-around the odometer is back at zero.
	if o.out != 0 {
		t.Fatalf("out after wrap = %d", o.out)
	}
}

func TestOdometerCrossSpacePartialIndex(t *testing.T) {
	// Iterating a small table while projecting into a larger table's
	// stride space: the partial index must equal the dot product of the
	// coordinates with the output strides.
	small, err := newShape([]int32{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := newShape([]int32{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	o := newOdometer(small.dims, big.strides)
	for flat := 0; flat < small.size; flat++ {
		want := o.coords[0]*big.strides[0] + o.coords[1]*big.strides[1]
		if o.out != want {
			t.Fatalf("cell %d: out = %d, want %d", flat, o.out, want)
		}
		o.next()
	}
}

func TestOdometerReset(t *testing.T) {
	s, _ := newShape([]int32{3, 3})
	o := newOdometer(s.dims, s.strides)
	o.next()
	o.next()
	o.reset()
	if o.out != 0 || o.coords[0] != 0 || o.coords[1] != 0 {
		t.Fatalf("reset state: out=%d coords=%v", o.out, o.coords)
	}
}

func TestQuickOdometerConsistency(t *testing.T) {
	f := func(d1, d2, d3 uint8) bool {
		dims := []int32{1 + int32(d1%5), 1 + int32(d2%5), 1 + int32(d3%5)}
		s, err := newShape(dims)
		if err != nil {
			return false
		}
		o := newOdometer(s.dims, s.strides)
		count := 0
		for {
			count++
			if int(o.out) != count-1 {
				return false
			}
			if !o.next() {
				break
			}
		}
		return count == s.size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
