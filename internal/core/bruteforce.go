package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// maxBruteNodes bounds the exhaustive solvers; they enumerate all 2^N
// subsets (and all mode assignments) and exist only to verify the
// dynamic programs on small instances.
const maxBruteNodes = 16

// BruteMinCost exhaustively solves MinCost-WithPre by enumerating every
// replica subset. It is exponential and restricted to small trees.
func BruteMinCost(t *tree.Tree, existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	if t.N() > maxBruteNodes {
		return nil, fmt.Errorf("core: BruteMinCost limited to %d nodes, got %d", maxBruteNodes, t.N())
	}
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	E := existing.Count()
	var best *MinCostResult
	n := t.N()
	e := tree.NewEngine(t)
	for mask := 0; mask < 1<<n; mask++ {
		r := tree.NewReplicas(n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				r.Set(j, 1)
			}
		}
		if e.ValidateUniform(r, tree.PolicyClosest, W) != nil {
			continue
		}
		servers := r.Count()
		reused := r.Reused(existing)
		cc := c.Of(servers, reused, E)
		if best == nil || cc < best.Cost {
			best = &MinCostResult{
				Placement: r,
				Cost:      cc,
				Servers:   servers,
				Reused:    reused,
				New:       servers - reused,
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}
	return best, nil
}

// BruteCandidate is one feasible (placement, mode assignment) pair with
// its exact cost and power.
type BruteCandidate struct {
	Placement *tree.Replicas
	Cost      float64
	Power     float64
}

// BrutePowerCandidates enumerates every replica subset and every
// admissible mode assignment (each server may run at any mode whose
// capacity covers its load, matching the dynamic program's model) and
// returns all feasible candidates. Exponential; small trees only.
func BrutePowerCandidates(t *tree.Tree, existing *tree.Replicas, pm power.Model, cm cost.Modal) ([]BruteCandidate, error) {
	if t.N() > maxBruteNodes {
		return nil, fmt.Errorf("core: BrutePowerCandidates limited to %d nodes, got %d", maxBruteNodes, t.N())
	}
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	var out []BruteCandidate
	n := t.N()
	e := tree.NewEngine(t)
	for mask := 0; mask < 1<<n; mask++ {
		r := tree.NewReplicas(n)
		var servers []int
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				r.Set(j, 1)
				servers = append(servers, j)
			}
		}
		res := e.Eval(r, tree.PolicyClosest, nil)
		loads, unserved := res.Loads, res.Unserved
		if unserved > 0 {
			continue
		}
		minModes := make([]int, len(servers))
		feasible := true
		for i, j := range servers {
			m, ok := pm.ModeFor(loads[j])
			if !ok {
				feasible = false
				break
			}
			minModes[i] = m
		}
		if !feasible {
			continue
		}
		// Enumerate all admissible mode vectors.
		var rec func(i int)
		rec = func(i int) {
			if i == len(servers) {
				c, err := cm.OfReplicas(r, existing)
				if err != nil {
					return
				}
				out = append(out, BruteCandidate{
					Placement: r.Clone(),
					Cost:      c,
					Power:     pm.OfReplicas(r),
				})
				return
			}
			for m := minModes[i]; m <= pm.M(); m++ {
				r.Set(servers[i], uint8(m))
				rec(i + 1)
			}
		}
		rec(0)
	}
	return out, nil
}

// BruteBestPower returns the minimal power among candidates whose cost is
// within bound, with the paper's tie-break on cost. found is false when
// no candidate qualifies.
func BruteBestPower(cands []BruteCandidate, bound float64) (best BruteCandidate, found bool) {
	best.Power = math.Inf(1)
	best.Cost = math.Inf(1)
	for _, c := range cands {
		if c.Cost > bound {
			continue
		}
		if c.Power < best.Power || (c.Power == best.Power && c.Cost < best.Cost) {
			best = c
			found = true
		}
	}
	return best, found
}

// BruteFeasible decides exactly whether placement r serves every client
// of t under access policy p with uniform capacity W. Unlike the flow
// engine — whose Upwards pass is a conservative certifier — this is the
// ground truth the policy layer is cross-validated against:
//
//   - Closest: the engine's deterministic evaluation (already exact).
//   - Upwards: exhaustive backtracking over assignments of whole
//     clients to equipped ancestors (the problem is NP-complete).
//   - Multiple: an independent max-flow formulation, checked in tests
//     against the engine's saturating pass (which is exact too).
//
// Exponential for Upwards; restricted to small trees.
func BruteFeasible(t *tree.Tree, r *tree.Replicas, p tree.Policy, W int) (bool, error) {
	if t.N() > maxBruteNodes {
		return false, fmt.Errorf("core: BruteFeasible limited to %d nodes, got %d", maxBruteNodes, t.N())
	}
	if W < 0 {
		return false, fmt.Errorf("core: BruteFeasible with negative capacity %d", W)
	}
	switch p {
	case tree.PolicyClosest:
		return tree.ValidateUniform(t, r, W) == nil, nil
	case tree.PolicyUpwards:
		return upwardsFeasible(t, r, W), nil
	case tree.PolicyMultiple:
		return multipleFeasibleMaxFlow(t, r, W), nil
	default:
		return false, fmt.Errorf("core: BruteFeasible with unknown policy %v", p)
	}
}

// upwardsFeasible searches for an assignment of every client (atomic
// demand) to an equipped node on its path to the root, no server
// exceeding W. Clients are processed in decreasing demand order with a
// residual-capacity bound and a symmetry break for identical clients.
func upwardsFeasible(t *tree.Tree, r *tree.Replicas, W int) bool {
	type item struct {
		node, demand int
	}
	var items []item
	total := 0
	for j := 0; j < t.N(); j++ {
		for _, d := range t.Clients(j) {
			if d > 0 {
				items = append(items, item{j, d})
				total += d
			}
		}
	}
	if total == 0 {
		return true
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].demand != items[b].demand {
			return items[a].demand > items[b].demand
		}
		return items[a].node < items[b].node
	})
	// Candidate servers per item: equipped nodes on the path to the root.
	cands := make([][]int, len(items))
	residual := make(map[int]int)
	for i, it := range items {
		for n := it.node; n >= 0; n = t.Parent(n) {
			if r.Has(n) {
				cands[i] = append(cands[i], n)
				residual[n] = W
			}
		}
		if len(cands[i]) == 0 {
			return false
		}
	}
	free := 0
	for range residual {
		free += W
	}
	remaining := total
	var rec func(i, prevChoice int) bool
	rec = func(i, prevChoice int) bool {
		if i == len(items) {
			return true
		}
		if remaining > free {
			return false
		}
		start := 0
		if i > 0 && items[i] == items[i-1] {
			// Identical clients are interchangeable: only try servers
			// from the previous twin's choice onward.
			start = prevChoice
		}
		for ci := start; ci < len(cands[i]); ci++ {
			s := cands[i][ci]
			if residual[s] < items[i].demand {
				continue
			}
			residual[s] -= items[i].demand
			free -= items[i].demand
			remaining -= items[i].demand
			if rec(i+1, ci) {
				return true
			}
			residual[s] += items[i].demand
			free += items[i].demand
			remaining += items[i].demand
		}
		return false
	}
	return rec(0, 0)
}

// multipleFeasibleMaxFlow decides multiple-policy feasibility as a
// maximum flow: source -> (node with clients, capacity = its demand) ->
// (equipped ancestor, unbounded) -> sink (capacity W per server). The
// placement is feasible iff the max flow saturates every demand.
// Splittable demands make the aggregation per node lossless.
func multipleFeasibleMaxFlow(t *tree.Tree, r *tree.Replicas, W int) bool {
	n := t.N()
	// Vertex ids: 0 = source, 1..n = demand vertices, n+1..2n = server
	// vertices, 2n+1 = sink.
	V := 2*n + 2
	src, sink := 0, 2*n+1
	capacity := make([][]int, V)
	for i := range capacity {
		capacity[i] = make([]int, V)
	}
	total := 0
	for j := 0; j < n; j++ {
		d := t.ClientSum(j)
		if d == 0 {
			continue
		}
		total += d
		capacity[src][1+j] = d
		for a := j; a >= 0; a = t.Parent(a) {
			if r.Has(a) {
				capacity[1+j][n+1+a] = d
			}
		}
	}
	for j := 0; j < n; j++ {
		if r.Has(j) {
			capacity[n+1+j][sink] = W
		}
	}
	flow := 0
	parent := make([]int, V)
	queue := make([]int, 0, V)
	for {
		// BFS for an augmenting path.
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue = append(queue[:0], src)
		for len(queue) > 0 && parent[sink] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < V; v++ {
				if parent[v] < 0 && capacity[u][v] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[sink] < 0 {
			break
		}
		aug := math.MaxInt
		for v := sink; v != src; v = parent[v] {
			if c := capacity[parent[v]][v]; c < aug {
				aug = c
			}
		}
		for v := sink; v != src; v = parent[v] {
			capacity[parent[v]][v] -= aug
			capacity[v][parent[v]] += aug
		}
		flow += aug
	}
	return flow == total
}

// BruteMinReplicasPolicy returns a minimal-cardinality placement that is
// exactly feasible under policy p with uniform capacity W (every replica
// at mode 1; among equal-cardinality placements the smallest node-set
// bitmask wins, i.e. the one concentrated on the lowest node ids).
// Exponential; it exists to cross-validate the greedy policy layer.
func BruteMinReplicasPolicy(t *tree.Tree, W int, p tree.Policy) (*tree.Replicas, error) {
	if t.N() > maxBruteNodes {
		return nil, fmt.Errorf("core: BruteMinReplicasPolicy limited to %d nodes, got %d", maxBruteNodes, t.N())
	}
	n := t.N()
	var best *tree.Replicas
	bestCount := n + 1
	for mask := 0; mask < 1<<n; mask++ {
		count := bits.OnesCount(uint(mask))
		if count >= bestCount {
			continue
		}
		r := tree.NewReplicas(n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				r.Set(j, 1)
			}
		}
		ok, err := BruteFeasible(t, r, p, W)
		if err != nil {
			return nil, err
		}
		if ok {
			best, bestCount = r, count
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}
	return best, nil
}
