package core

import (
	"fmt"
	"math"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// maxBruteNodes bounds the exhaustive solvers; they enumerate all 2^N
// subsets (and all mode assignments) and exist only to verify the
// dynamic programs on small instances.
const maxBruteNodes = 16

// BruteMinCost exhaustively solves MinCost-WithPre by enumerating every
// replica subset. It is exponential and restricted to small trees.
func BruteMinCost(t *tree.Tree, existing *tree.Replicas, W int, c cost.Simple) (*MinCostResult, error) {
	if t.N() > maxBruteNodes {
		return nil, fmt.Errorf("core: BruteMinCost limited to %d nodes, got %d", maxBruteNodes, t.N())
	}
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	E := existing.Count()
	var best *MinCostResult
	n := t.N()
	for mask := 0; mask < 1<<n; mask++ {
		r := tree.NewReplicas(n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				r.Set(j, 1)
			}
		}
		if tree.ValidateUniform(t, r, W) != nil {
			continue
		}
		servers := r.Count()
		reused := r.Reused(existing)
		cc := c.Of(servers, reused, E)
		if best == nil || cc < best.Cost {
			best = &MinCostResult{
				Placement: r,
				Cost:      cc,
				Servers:   servers,
				Reused:    reused,
				New:       servers - reused,
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}
	return best, nil
}

// BruteCandidate is one feasible (placement, mode assignment) pair with
// its exact cost and power.
type BruteCandidate struct {
	Placement *tree.Replicas
	Cost      float64
	Power     float64
}

// BrutePowerCandidates enumerates every replica subset and every
// admissible mode assignment (each server may run at any mode whose
// capacity covers its load, matching the dynamic program's model) and
// returns all feasible candidates. Exponential; small trees only.
func BrutePowerCandidates(t *tree.Tree, existing *tree.Replicas, pm power.Model, cm cost.Modal) ([]BruteCandidate, error) {
	if t.N() > maxBruteNodes {
		return nil, fmt.Errorf("core: BrutePowerCandidates limited to %d nodes, got %d", maxBruteNodes, t.N())
	}
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	var out []BruteCandidate
	n := t.N()
	for mask := 0; mask < 1<<n; mask++ {
		r := tree.NewReplicas(n)
		var servers []int
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				r.Set(j, 1)
				servers = append(servers, j)
			}
		}
		loads, unserved := tree.Flows(t, r)
		if unserved > 0 {
			continue
		}
		minModes := make([]int, len(servers))
		feasible := true
		for i, j := range servers {
			m, ok := pm.ModeFor(loads[j])
			if !ok {
				feasible = false
				break
			}
			minModes[i] = m
		}
		if !feasible {
			continue
		}
		// Enumerate all admissible mode vectors.
		var rec func(i int)
		rec = func(i int) {
			if i == len(servers) {
				c, err := cm.OfReplicas(r, existing)
				if err != nil {
					return
				}
				out = append(out, BruteCandidate{
					Placement: r.Clone(),
					Cost:      c,
					Power:     pm.OfReplicas(r),
				})
				return
			}
			for m := minModes[i]; m <= pm.M(); m++ {
				r.Set(servers[i], uint8(m))
				rec(i + 1)
			}
		}
		rec(0)
	}
	return out, nil
}

// BruteBestPower returns the minimal power among candidates whose cost is
// within bound, with the paper's tie-break on cost. found is false when
// no candidate qualifies.
func BruteBestPower(cands []BruteCandidate, bound float64) (best BruteCandidate, found bool) {
	best.Power = math.Inf(1)
	best.Cost = math.Inf(1)
	for _, c := range cands {
		if c.Cost > bound {
			continue
		}
		if c.Power < best.Power || (c.Power == best.Power && c.Cost < best.Cost) {
			best = c
			found = true
		}
	}
	return best, found
}
