package core

import (
	"errors"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// Adversarial tree shapes: the DP merge behaves very differently on
// deep paths (tables stay large through every merge), stars (one huge
// merge fan-in), caterpillars and brooms. Every solver must agree on
// all of them.

func pathTree(n int, src *rng.Source) *tree.Tree {
	b := tree.NewBuilder()
	node := b.Root()
	for i := 1; i < n; i++ {
		if src.Bool(0.6) {
			b.AddClient(node, src.Between(1, 6))
		}
		node = b.AddNode(node)
	}
	b.AddClient(node, src.Between(1, 6))
	return b.MustBuild()
}

func starTree(n int, src *rng.Source) *tree.Tree {
	b := tree.NewBuilder()
	for i := 1; i < n; i++ {
		leaf := b.AddNode(b.Root())
		b.AddClient(leaf, src.Between(1, 6))
	}
	return b.MustBuild()
}

func caterpillarTree(n int, src *rng.Source) *tree.Tree {
	b := tree.NewBuilder()
	spine := b.Root()
	for b.N() < n {
		leg := b.AddNode(spine)
		b.AddClient(leg, src.Between(1, 6))
		if b.N() < n {
			spine = b.AddNode(spine)
		}
	}
	return b.MustBuild()
}

func broomTree(n int, src *rng.Source) *tree.Tree {
	// A path ending in a star: tables grow down the handle and then
	// one node merges many children.
	b := tree.NewBuilder()
	node := b.Root()
	for i := 0; i < n/2; i++ {
		node = b.AddNode(node)
	}
	for b.N() < n {
		leaf := b.AddNode(node)
		b.AddClient(leaf, src.Between(1, 6))
	}
	return b.MustBuild()
}

func binaryTree(n int, src *rng.Source) *tree.Tree {
	b := tree.NewBuilder()
	for b.N() < n {
		parent := (b.N() - 1) / 2
		j := b.AddNode(parent)
		if src.Bool(0.5) {
			b.AddClient(j, src.Between(1, 6))
		}
	}
	return b.MustBuild()
}

func topologyBattery(t *testing.T, run func(t *testing.T, name string, tr *tree.Tree, src *rng.Source)) {
	t.Helper()
	shapes := []struct {
		name  string
		build func(int, *rng.Source) *tree.Tree
	}{
		{"path", pathTree},
		{"star", starTree},
		{"caterpillar", caterpillarTree},
		{"broom", broomTree},
		{"binary", binaryTree},
	}
	for _, s := range shapes {
		for seed := uint64(0); seed < 4; seed++ {
			src := rng.Derive(seed, 70)
			n := 10 + src.IntN(30)
			tr := s.build(n, src)
			run(t, s.name, tr, src)
		}
	}
}

func TestTopologyMinCostSolversAgree(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	topologyBattery(t, func(t *testing.T, name string, tr *tree.Tree, src *rng.Source) {
		ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()/2+1), 1, src)
		opt, errO := MinCost(tr, ex, 10, c)
		var refCost float64
		var errR error
		if tr.N() <= maxReferenceNodes {
			ref, err := MinCostPaperReference(tr, ex, 10, c)
			errR = err
			if err == nil {
				refCost = ref.Cost
			}
		} else {
			errR, refCost = errO, 0
			if errO == nil {
				refCost = opt.Cost
			}
		}
		g, errG := greedy.MinReplicas(tr, 10)
		cid, errC := MinCostNoPre(tr, 10)

		if (errO != nil) != (errR != nil) || (errG != nil) != (errC != nil) || (errO != nil) != (errG != nil) {
			t.Fatalf("%s: error disagreement: %v %v %v %v", name, errO, errR, errG, errC)
		}
		if errO != nil {
			return
		}
		if !almost(opt.Cost, refCost) {
			t.Fatalf("%s: optimised %v vs reference %v", name, opt.Cost, refCost)
		}
		if g.Count() != cid.Servers {
			t.Fatalf("%s: greedy %d vs cidon %d", name, g.Count(), cid.Servers)
		}
		if err := tree.ValidateUniform(tr, opt.Placement, 10); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	})
}

func TestTopologyPowerSolverValid(t *testing.T) {
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	topologyBattery(t, func(t *testing.T, name string, tr *tree.Tree, src *rng.Source) {
		ex, _ := tree.RandomReplicas(tr, src.IntN(4), 2, src)
		s, err := SolvePower(PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				return
			}
			t.Fatalf("%s: %v", name, err)
		}
		opt := s.MinPower()
		if err := tree.Validate(tr, opt.Placement, func(m uint8) int { return pm.Cap(int(m)) }); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The greedy sweep never beats the optimum.
		gr, err := greedy.PowerSweep(tr, ex, pm, cm, opt.Cost)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gr.Found && gr.Power < opt.Power-1e-9 {
			t.Fatalf("%s: sweep %v beat optimum %v", name, gr.Power, opt.Power)
		}
	})
}

// TestDeepPathRecursion exercises reconstruction on a 600-node path:
// deep recursion must not overflow and the result must stay optimal.
func TestDeepPathRecursion(t *testing.T) {
	src := rng.New(71)
	tr := pathTree(600, src)
	ex, _ := tree.RandomReplicas(tr, 100, 1, src)
	res, err := MinCost(tr, ex, 10, cost.Simple{Create: 0.1, Delete: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.ValidateUniform(tr, res.Placement, 10); err != nil {
		t.Fatal(err)
	}
	g, err := greedy.MinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers > g.Count() {
		t.Fatalf("DP used %d servers, greedy %d", res.Servers, g.Count())
	}
}

// TestWideStarPower exercises one node merging hundreds of children in
// the power DP.
func TestWideStarPower(t *testing.T) {
	src := rng.New(72)
	tr := starTree(150, src)
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	s, err := SolvePower(PowerProblem{Tree: tr, Power: pm, Cost: cost.UniformModal(2, 0.1, 0.01, 0.001)})
	if err != nil {
		t.Fatal(err)
	}
	opt := s.MinPower()
	if err := tree.Validate(tr, opt.Placement, func(m uint8) int { return pm.Cap(int(m)) }); err != nil {
		t.Fatal(err)
	}
}
