package core

import (
	"context"
	"errors"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// These tests pin the cooperative-cancellation contract of the three
// solvers: a solve under a cancelled context returns the context's
// error within one checkpoint (bounded work, asserted via
// SolveStats.Recomputed), and the next solve under a live context
// returns results byte-identical to a solver that was never
// interrupted — the repairable-abort contract of cancel.go.

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// cancelTreeNodes picks the tree size of the bounded-return test: the
// acceptance-sized 10^5 nodes normally, a tenth of that under -short
// (the bound and the repair path are size-independent; only the "a
// cold solve here is genuinely expensive" demonstration needs scale).
func cancelTreeNodes(t *testing.T) int {
	if testing.Short() {
		return 10_000
	}
	return 100_000
}

// TestMinCostCancelBoundedAndRepairable is the acceptance test for
// solver cancellation: cancelling a 10^5-node cold solve returns
// within one checkpoint stride, and the solver byte-matches an
// uninterrupted cold solve on the next call.
func TestMinCostCancelBoundedAndRepairable(t *testing.T) {
	src := rng.New(41)
	tr := tree.MustGenerate(tree.ScalePreset(cancelTreeNodes(t)), src)
	// No pre-existing set and the scale tier's W: mega-tree solves are
	// only tractable on the compressed-merge path (see bench_scale).
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	const W = 100

	ref := NewMinCostSolver(tr)
	dstRef := tree.ReplicasOf(tr)
	want, err := ref.SolveInto(nil, W, c, dstRef)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		s := NewMinCostSolver(tr)
		s.SetWorkers(workers)
		dst := tree.ReplicasOf(tr)
		s.SetContext(cancelledCtx())
		if _, err := s.SolveInto(nil, W, c, dst); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: cancelled solve returned %v, want context.Canceled", workers, err)
		}
		// Bounded return: a pre-cancelled context is observed at the
		// first checkpoint, before any node table is rebuilt.
		if got := s.Stats().Recomputed; got >= cancelStride {
			t.Fatalf("workers=%d: cancelled solve rebuilt %d tables, want < %d (one checkpoint)", workers, got, cancelStride)
		}
		s.SetContext(context.Background())
		got, err := s.SolveInto(nil, W, c, dst)
		if err != nil {
			t.Fatalf("workers=%d: post-cancel solve: %v", workers, err)
		}
		if got.Cost != want.Cost || got.Servers != want.Servers || got.Reused != want.Reused {
			t.Fatalf("workers=%d: post-cancel result (%v, %d, %d), want (%v, %d, %d)",
				workers, got.Cost, got.Servers, got.Reused, want.Cost, want.Servers, want.Reused)
		}
		if !samePlacement(tr.N(), dst, dstRef) {
			t.Fatalf("workers=%d: post-cancel placement differs from uninterrupted solve", workers)
		}
		s.SetWorkers(1)
	}
}

// TestMinCostCancelMidDriftRepairable aborts a *warm* incremental
// solve (dirty ancestor chains pending) and checks the next live solve
// against a twin that was never interrupted — the tracker must
// re-dirty everything the aborted solve left uncommitted.
func TestMinCostCancelMidDriftRepairable(t *testing.T) {
	src := rng.New(42)
	tr := tree.MustGenerate(tree.FatConfig(400), src)
	existing, err := tree.RandomReplicas(tr, 60, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	c := cost.Simple{Create: 0.1, Delete: 0.01}

	a, b := NewMinCostSolver(tr), NewMinCostSolver(tr)
	dstA, dstB := tree.ReplicasOf(tr), tree.ReplicasOf(tr)
	for step := 0; step < 4; step++ {
		if step > 0 {
			driftClients(tr, 3, src)
			// Abort one incremental solve on a; b never sees it.
			a.SetContext(cancelledCtx())
			if _, err := a.SolveInto(existing, 10, c, dstA); !errors.Is(err, context.Canceled) {
				t.Fatalf("step %d: aborted solve returned %v", step, err)
			}
			a.SetContext(nil)
		}
		ra, err := a.SolveInto(existing, 10, c, dstA)
		if err != nil {
			t.Fatalf("step %d: a: %v", step, err)
		}
		rb, err := b.SolveInto(existing, 10, c, dstB)
		if err != nil {
			t.Fatalf("step %d: b: %v", step, err)
		}
		if ra.Cost != rb.Cost || ra.Servers != rb.Servers || !samePlacement(tr.N(), dstA, dstB) {
			t.Fatalf("step %d: repaired solve diverged from uninterrupted twin", step)
		}
	}
}

// TestPowerDPCancelRepairable aborts a PowerDP cold solve, a warm
// drift solve, and a reprice-only solve (cost-model change hits the
// root scan's block sweep, the third checkpoint family), checking the
// front against an uninterrupted twin after every recovery.
func TestPowerDPCancelRepairable(t *testing.T) {
	pm := powerModel2()
	costs := []cost.Modal{
		cost.UniformModal(2, 0.1, 0.01, 0.001),
		cost.UniformModal(2, 0.6, 0.05, 0.2),
	}
	src := rng.New(43)
	tr := tree.MustGenerate(tree.PowerConfig(24), src)
	existing, err := tree.RandomReplicas(tr, 3, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	prob := func(cm cost.Modal) PowerProblem {
		return PowerProblem{Existing: existing, Power: pm, Cost: cm}
	}

	a, b := NewPowerDP(tr), NewPowerDP(tr)

	// Cold abort.
	a.SetContext(cancelledCtx())
	if _, err := a.Solve(prob(costs[0])); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold abort returned %v, want context.Canceled", err)
	}
	if got := a.Stats().Recomputed; got != 0 {
		t.Fatalf("cold abort rebuilt %d tables, want 0", got)
	}
	a.SetContext(context.Background())
	solA, err := a.Solve(prob(costs[0]))
	if err != nil {
		t.Fatal(err)
	}
	solB, err := b.Solve(prob(costs[0]))
	if err != nil {
		t.Fatal(err)
	}
	frontsEqual(t, "after cold abort", solB, solA)

	// Warm abort: dirty chains pending.
	driftClients(tr, 2, src)
	a.SetContext(cancelledCtx())
	if _, err := a.Solve(prob(costs[0])); !errors.Is(err, context.Canceled) {
		t.Fatalf("warm abort returned %v", err)
	}
	a.SetContext(nil)
	if solA, err = a.Solve(prob(costs[0])); err != nil {
		t.Fatal(err)
	}
	if solB, err = b.Solve(prob(costs[0])); err != nil {
		t.Fatal(err)
	}
	frontsEqual(t, "after warm abort", solB, solA)

	// Reprice abort: clean tables, new cost model — the cancellation
	// lands inside the root scan's block sweep and must leave the
	// retained scan state invalid, not half-refreshed.
	a.SetContext(cancelledCtx())
	if _, err := a.Solve(prob(costs[1])); !errors.Is(err, context.Canceled) {
		t.Fatalf("reprice abort returned %v", err)
	}
	a.SetContext(nil)
	if solA, err = a.Solve(prob(costs[1])); err != nil {
		t.Fatal(err)
	}
	if solB, err = b.Solve(prob(costs[1])); err != nil {
		t.Fatal(err)
	}
	frontsEqual(t, "after reprice abort", solB, solA)
}

// TestQoSCancelRepairable aborts QoSSolver solves cold and warm and
// checks the recovered placements against an uninterrupted twin.
func TestQoSCancelRepairable(t *testing.T) {
	src := rng.New(44)
	tr := tree.MustGenerate(tree.FatConfig(300), src)

	a, b := NewQoSSolver(tr), NewQoSSolver(tr)
	dstA, dstB := tree.ReplicasOf(tr), tree.ReplicasOf(tr)

	a.SetContext(cancelledCtx())
	if _, err := a.Solve(12, nil, dstA); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold abort returned %v, want context.Canceled", err)
	}
	if got := a.Stats().Recomputed; got >= cancelStride {
		t.Fatalf("cold abort rebuilt %d tables, want < %d", got, cancelStride)
	}
	a.SetContext(context.Background())
	for step := 0; step < 3; step++ {
		if step > 0 {
			driftClients(tr, 3, src)
			a.SetContext(cancelledCtx())
			if _, err := a.Solve(12, nil, dstA); !errors.Is(err, context.Canceled) {
				t.Fatalf("step %d: warm abort returned %v", step, err)
			}
			a.SetContext(nil)
		}
		if _, err := a.Solve(12, nil, dstA); err != nil {
			t.Fatalf("step %d: a: %v", step, err)
		}
		if _, err := b.Solve(12, nil, dstB); err != nil {
			t.Fatalf("step %d: b: %v", step, err)
		}
		if !samePlacement(tr.N(), dstA, dstB) {
			t.Fatalf("step %d: repaired placement diverged from twin", step)
		}
	}
}
