package core

import (
	"testing"

	"replicatree/internal/greedy"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// smallPolicyTree draws a random tree with at most maxNodes internal
// nodes for exhaustive policy checks.
func smallPolicyTree(seed uint64, maxNodes int) *tree.Tree {
	src := rng.Derive(seed, 7)
	cfg := tree.GenConfig{
		Nodes:       2 + src.IntN(maxNodes-1),
		MinChildren: 1 + src.IntN(2),
		ClientProb:  0.3 + 0.6*src.Float64(),
		ReqMin:      1,
		ReqMax:      1 + src.IntN(6),
	}
	cfg.MaxChildren = cfg.MinChildren + src.IntN(3)
	return tree.MustGenerate(cfg, src)
}

func maskReplicas(n, mask int) *tree.Replicas {
	r := tree.NewReplicas(n)
	for j := 0; j < n; j++ {
		if mask&(1<<j) != 0 {
			r.Set(j, 1)
		}
	}
	return r
}

// The defining containment of cs/0611034, checked against the exact
// exponential searches over every replica subset of random small trees:
// Closest-feasible ⊆ Upwards-feasible ⊆ Multiple-feasible.
func TestPolicyContainmentExact(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		tr := smallPolicyTree(seed, 10)
		W := 3 + int(seed%6)
		for mask := 0; mask < 1<<tr.N(); mask++ {
			r := maskReplicas(tr.N(), mask)
			closest, err := BruteFeasible(tr, r, tree.PolicyClosest, W)
			if err != nil {
				t.Fatal(err)
			}
			upwards, err := BruteFeasible(tr, r, tree.PolicyUpwards, W)
			if err != nil {
				t.Fatal(err)
			}
			multiple, err := BruteFeasible(tr, r, tree.PolicyMultiple, W)
			if err != nil {
				t.Fatal(err)
			}
			if closest && !upwards {
				t.Fatalf("seed %d W=%d mask %b: closest-feasible but not upwards-feasible", seed, W, mask)
			}
			if upwards && !multiple {
				t.Fatalf("seed %d W=%d mask %b: upwards-feasible but not multiple-feasible", seed, W, mask)
			}
		}
	}
}

// The engine's saturating bottom-up pass claims to be an exact
// feasibility test for the multiple policy; cross-check it against the
// independent max-flow formulation on every subset.
func TestEngineMultipleMatchesMaxFlow(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		tr := smallPolicyTree(seed, 10)
		e := tree.NewEngine(tr)
		W := 2 + int(seed%7)
		for mask := 0; mask < 1<<tr.N(); mask++ {
			r := maskReplicas(tr.N(), mask)
			exact, err := BruteFeasible(tr, r, tree.PolicyMultiple, W)
			if err != nil {
				t.Fatal(err)
			}
			engine := e.ValidateUniform(r, tree.PolicyMultiple, W) == nil
			if exact != engine {
				t.Fatalf("seed %d W=%d mask %b: max-flow says %v, engine says %v", seed, W, mask, exact, engine)
			}
		}
	}
}

// The engine's upwards pass is a sound certifier: whenever it validates
// a placement, the exact backtracking search must agree.
func TestEngineUpwardsSound(t *testing.T) {
	certified, exactOnly := 0, 0
	for seed := uint64(0); seed < 25; seed++ {
		tr := smallPolicyTree(seed, 10)
		e := tree.NewEngine(tr)
		W := 2 + int(seed%7)
		for mask := 0; mask < 1<<tr.N(); mask++ {
			r := maskReplicas(tr.N(), mask)
			engine := e.ValidateUniform(r, tree.PolicyUpwards, W) == nil
			exact, err := BruteFeasible(tr, r, tree.PolicyUpwards, W)
			if err != nil {
				t.Fatal(err)
			}
			if engine && !exact {
				t.Fatalf("seed %d W=%d mask %b: engine certified an infeasible upwards placement", seed, W, mask)
			}
			if engine {
				certified++
			}
			if exact && !engine {
				exactOnly++
			}
		}
	}
	if certified == 0 {
		t.Fatal("the upwards certifier never accepted anything; the test is vacuous")
	}
	t.Logf("upwards: %d engine-certified, %d feasible placements the conservative pass missed", certified, exactOnly)
}

// The engine's best-fit-decreasing upwards pass is conservative by
// design. This is the canonical miss: demands {4,3,3} with servers at
// their node (W=6) and the root (W=4) are exactly feasible (3+3 low, 4
// high) but the largest-first pass strands a 3.
func TestEngineUpwardsConservativeExample(t *testing.T) {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	b.AddClient(a, 4)
	b.AddClient(a, 3)
	b.AddClient(a, 3)
	tr := b.MustBuild()
	r := tree.NewReplicas(tr.N())
	r.Set(0, 1) // root, mode 1
	r.Set(1, 2) // A, mode 2
	caps := func(m uint8) int { return []int{4, 6}[m-1] }

	// Exact search (uniform capacities are enough here: swap the modes
	// so both views exist).
	feasible, err := BruteFeasible(tr, maskReplicas(tr.N(), 0b11), tree.PolicyUpwards, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !feasible {
		t.Fatal("exact search rejected a feasible instance")
	}
	if err := tree.NewEngine(tr).Validate(r, tree.PolicyUpwards, caps); err == nil {
		t.Fatal("best-fit-decreasing unexpectedly certified the {4,3,3} instance; update the docs if the pass got smarter")
	}
}

// Greedy policy placements must be valid under their policy and can
// never beat the exact minimal count.
func TestGreedyPolicyAgainstBrute(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		tr := smallPolicyTree(seed, 9)
		e := tree.NewEngine(tr)
		W := 3 + int(seed%5)
		for _, p := range tree.Policies() {
			brute, bruteErr := BruteMinReplicasPolicy(tr, W, p)
			sol, err := greedy.MinReplicasPolicy(tr, W, p)
			if err != nil {
				// The greedy may be conservative under Upwards, but
				// it must not fail when the closest policy succeeds,
				// and under Multiple it fails only on exact
				// infeasibility (the full placement is exact there).
				if p == tree.PolicyMultiple && bruteErr == nil {
					t.Fatalf("seed %d W=%d: greedy multiple failed on a feasible instance: %v", seed, W, err)
				}
				continue
			}
			if verr := e.ValidateUniform(sol, p, W); verr != nil {
				t.Fatalf("seed %d W=%d policy %v: invalid greedy placement: %v", seed, W, p, verr)
			}
			if bruteErr != nil {
				t.Fatalf("seed %d W=%d policy %v: greedy found a placement where brute force found none", seed, W, p)
			}
			if sol.Count() < brute.Count() {
				t.Fatalf("seed %d W=%d policy %v: greedy used %d servers, brute-force minimum is %d",
					seed, W, p, sol.Count(), brute.Count())
			}
			if p == tree.PolicyClosest && sol.Count() != brute.Count() {
				t.Fatalf("seed %d W=%d: closest greedy is optimal but used %d servers vs %d",
					seed, W, sol.Count(), brute.Count())
			}
		}
	}
}

// Relaxed policies strictly enlarge the feasible region: a 6-request
// client at W=5 is infeasible under closest and upwards (the demand is
// atomic) yet served under multiple by splitting across the chain, and
// the {4,3} instance needs upwards routing to become feasible at all.
func TestPolicyStrictSeparationInstances(t *testing.T) {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	b.AddClient(a, 6)
	tr := b.MustBuild()
	const W = 5
	if _, err := BruteMinReplicasPolicy(tr, W, tree.PolicyClosest); err == nil {
		t.Fatal("closest should be infeasible with a 6-request client at W=5")
	}
	if _, err := BruteMinReplicasPolicy(tr, W, tree.PolicyUpwards); err == nil {
		t.Fatal("upwards should be infeasible with a 6-request client at W=5")
	}
	sol, err := BruteMinReplicasPolicy(tr, W, tree.PolicyMultiple)
	if err != nil {
		t.Fatalf("multiple should split the client across the chain: %v", err)
	}
	if sol.Count() != 2 {
		t.Fatalf("multiple minimum = %d servers, want 2", sol.Count())
	}

	// Upwards beats closest: {4,3} at B with B and root equipped, W=5
	// (the engine separation example, now at the counting level).
	b2 := tree.NewBuilder()
	bb := b2.AddNode(b2.AddNode(b2.Root()))
	b2.AddClient(bb, 4)
	b2.AddClient(bb, 3)
	tr2 := b2.MustBuild()
	cl, err := BruteMinReplicasPolicy(tr2, 5, tree.PolicyClosest)
	if err == nil {
		t.Fatalf("closest should be infeasible (7 > 5 at one node), got %v", cl)
	}
	up, err := BruteMinReplicasPolicy(tr2, 5, tree.PolicyUpwards)
	if err != nil || up.Count() != 2 {
		t.Fatalf("upwards minimum = %v, %v; want 2 servers", up, err)
	}
}
