package core

import (
	"math/rand"
	"slices"
	"testing"
)

// randMonotoneRow builds a random row satisfying the monotone contract:
// an infeasible prefix of random length (possibly zero, possibly the
// whole row) followed by non-increasing values in {0..maxV}.
func randMonotoneRow(rng *rand.Rand, width, maxV int, inval int32) []int32 {
	row := make([]int32, width)
	pre := 0
	if width > 0 && rng.Intn(3) == 0 {
		pre = rng.Intn(width + 1)
	}
	for i := 0; i < pre; i++ {
		row[i] = inval
	}
	v := maxV - rng.Intn(maxV/2+1)
	for i := pre; i < width; i++ {
		if rng.Intn(3) == 0 && v > 0 {
			v -= 1 + rng.Intn(min(v, 3))
		}
		row[i] = int32(v)
	}
	return row
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		width := 1 + rng.Intn(200)
		maxV := 1 + rng.Intn(30)
		inval := int32(-1)
		row := randMonotoneRow(rng, width, maxV, inval)
		runs, ok := encodeRuns32(row, inval, nil)
		if !ok {
			t.Fatalf("trial %d: encode rejected a monotone row %v", trial, row)
		}
		if len(runs) > maxV+2 {
			t.Fatalf("trial %d: %d runs for value range %d", trial, len(runs), maxV)
		}
		got := make([]int32, width)
		decodeRuns32(runs, got, inval)
		if !slices.Equal(row, got) {
			t.Fatalf("trial %d: round-trip mismatch\nrow  %v\ngot  %v\nruns %v", trial, row, got, runs)
		}
		// bpAt must agree with the dense row cell by cell.
		for k := 0; k < width; k++ {
			want := bpInfVal
			if row[k] != inval {
				want = int64(row[k])
			}
			if got := bpAt(runs, int32(k)); got != want {
				t.Fatalf("trial %d: bpAt(%d) = %d, want %d", trial, k, got, want)
			}
		}
	}
}

func TestEncodeRejectsNonMonotone(t *testing.T) {
	cases := [][]int32{
		{3, 2, 4},        // increasing step
		{-1, 5, -1, 3},   // interior infeasible cell
		{0, 0, 1},        // increase from zero
		{-1, -1, 2, -1},  // trailing infeasible cell
		{5, -1, 5, 4, 3}, // infeasible after feasible
	}
	for _, row := range cases {
		if _, ok := encodeRuns32(row, -1, nil); ok {
			t.Errorf("encode accepted non-monotone row %v", row)
		}
	}
}

func TestEncodeDecodeStridedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const inval = int(qInf)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(80)
		stride := 1 + rng.Intn(5)
		maxV := 1 + rng.Intn(1000)
		narrow := randMonotoneRow(rng, n, maxV, -1)
		row := make([]int, n*stride)
		for i := range row {
			row[i] = -7 // sentinel for cells outside the column
		}
		for i, v := range narrow {
			if v == -1 {
				row[i*stride] = inval
			} else {
				row[i*stride] = int(v)
			}
		}
		runs, ok := encodeRunsIntStrided(row, n, stride, inval, nil)
		if !ok {
			t.Fatalf("trial %d: encode rejected monotone column", trial)
		}
		got := make([]int, n*stride)
		copy(got, row)
		for i := 0; i < n; i++ {
			got[i*stride] = -99
		}
		decodeRunsIntStrided(runs, got, n, stride, inval)
		if !slices.Equal(row, got) {
			t.Fatalf("trial %d: strided round-trip mismatch", trial)
		}
	}
	// Values at or above bpInfVal are unrepresentable and must fail.
	if _, ok := encodeRunsIntStrided([]int{int(bpInfVal)}, 1, 1, inval, nil); ok {
		t.Error("encode accepted a value >= bpInfVal")
	}
}

// denseAt reads a dense row treating inval as +inf.
func denseAt(row []int32, k int, inval int32) int64 {
	if k < 0 || k >= len(row) || row[k] == inval {
		return bpInfVal
	}
	return int64(row[k])
}

func TestEnvMinMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		width := 1 + rng.Intn(150)
		a := randMonotoneRow(rng, width, 1+rng.Intn(20), -1)
		b := randMonotoneRow(rng, width, 1+rng.Intn(20), -1)
		ra, _ := encodeRuns32(a, -1, nil)
		rb, _ := encodeRuns32(b, -1, nil)
		got := envMin(ra, rb, nil)
		for k := 0; k < width; k++ {
			want := min(denseAt(a, k, -1), denseAt(b, k, -1))
			if g := bpAt(got, int32(k)); g != want {
				t.Fatalf("trial %d: envMin at %d = %d, want %d", trial, k, g, want)
			}
		}
	}
}

// denseConv is the dense reference for bpConv: exact-split min-plus
// convolution under the load cap, evaluated at cells 0..outN.
func denseConv(a, b []int32, maxSum int64, outN int, inval int32) []int64 {
	out := make([]int64, outN+1)
	for k := range out {
		best := bpInfVal
		for i := 0; i <= k; i++ {
			va, vb := denseAt(a, i, inval), denseAt(b, k-i, inval)
			if va == bpInfVal || vb == bpInfVal {
				continue
			}
			if v := va + vb; v <= maxSum && v < best {
				best = v
			}
		}
		out[k] = best
	}
	return out
}

func TestConvMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var sc bpScratch
	for trial := 0; trial < 400; trial++ {
		wA := 1 + rng.Intn(60)
		wB := 1 + rng.Intn(60)
		maxV := 1 + rng.Intn(25)
		a := randMonotoneRow(rng, wA, maxV, -1)
		b := randMonotoneRow(rng, wB, maxV, -1)
		ra, okA := encodeRuns32(a, -1, nil)
		rb, okB := encodeRuns32(b, -1, nil)
		if !okA || !okB {
			t.Fatal("fuzzer produced a non-monotone row")
		}
		maxSum := int64(rng.Intn(2*maxV + 2))
		// Exercise capB-style truncation: outN anywhere up to the
		// natural reach (wA-1)+(wB-1), never past it.
		outN := rng.Intn(wA + wB - 1)
		got := bpConv(ra, rb, maxSum, int32(outN), &sc)
		want := denseConv(a, b, maxSum, outN, -1)
		for k := 0; k <= outN; k++ {
			if g := bpAt(got, int32(k)); g != want[k] {
				t.Fatalf("trial %d: conv at %d = %d, want %d (maxSum=%d outN=%d)\na=%v\nb=%v",
					trial, k, g, want[k], maxSum, outN, a, b)
			}
		}
	}
}

// densePlaceMerge is the dense reference for bpPlaceMerge, mirroring
// the solvers' merge loops: no-place pairs are cap-checked, equipping
// the child absorbs its load and keeps the acc value with one extra
// unit of the resource axis.
func densePlaceMerge(a, b []int32, maxSum int64, outN int, inval int32) []int64 {
	out := make([]int64, outN+1)
	for k := range out {
		out[k] = bpInfVal
	}
	for n1 := 0; n1 < len(a); n1++ {
		va := denseAt(a, n1, inval)
		if va == bpInfVal {
			continue
		}
		for nc := 0; nc < len(b); nc++ {
			vb := denseAt(b, nc, inval)
			if vb == bpInfVal {
				continue
			}
			if v := va + vb; v <= maxSum && n1+nc <= outN && v < out[n1+nc] {
				out[n1+nc] = v
			}
			if k := n1 + nc + 1; k <= outN && va < out[k] {
				out[k] = va
			}
		}
	}
	return out
}

func TestPlaceMergeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	var sc bpScratch
	for trial := 0; trial < 400; trial++ {
		wA := 1 + rng.Intn(60)
		wB := 1 + rng.Intn(60)
		maxV := 1 + rng.Intn(25)
		a := randMonotoneRow(rng, wA, maxV, -1)
		b := randMonotoneRow(rng, wB, maxV, -1)
		// The merge kernels only compress rows with a feasible child
		// cell; retry until b has one.
		for denseAt(b, wB-1, -1) == bpInfVal {
			b = randMonotoneRow(rng, wB, maxV, -1)
		}
		ra, _ := encodeRuns32(a, -1, nil)
		rb, _ := encodeRuns32(b, -1, nil)
		maxSum := int64(rng.Intn(2*maxV + 2))
		outN := rng.Intn(wA + wB) // natural reach (wA-1)+(wB-1)+1
		got := bpPlaceMerge(ra, rb, maxSum, int32(outN), &sc)
		want := densePlaceMerge(a, b, maxSum, outN, -1)
		for k := 0; k <= outN; k++ {
			if g := bpAt(got, int32(k)); g != want[k] {
				t.Fatalf("trial %d: placeMerge at %d = %d, want %d (maxSum=%d outN=%d)\na=%v\nb=%v",
					trial, k, g, want[k], maxSum, outN, a, b)
			}
		}
	}
}

func TestShift(t *testing.T) {
	runs := []bpRun{{0, 9}, {3, 4}, {7, 1}}
	got := bpShift(runs, 2, 8, nil)
	want := []bpRun{{2, 9}, {5, 4}}
	if !slices.Equal(got, want) {
		t.Fatalf("bpShift = %v, want %v", got, want)
	}
	if g := bpShift(runs, 2, 100, nil); !slices.Equal(g, []bpRun{{2, 9}, {5, 4}, {9, 1}}) {
		t.Fatalf("bpShift unclamped = %v", g)
	}
}
