package core

import (
	"errors"
	"testing"
	"testing/quick"

	"replicatree/internal/cost"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func TestPaperReferenceFigure1(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	tr, ex := fig1Tree(2)
	res, err := MinCostPaperReference(tr, ex, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Cost, 2.1) || !res.Placement.Has(2) {
		t.Fatalf("root demand 2: %+v", res)
	}
	tr, ex = fig1Tree(4)
	res, err = MinCostPaperReference(tr, ex, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Cost, 2.21) || !res.Placement.Has(3) {
		t.Fatalf("root demand 4: %+v", res)
	}
}

func TestPaperReferenceValidation(t *testing.T) {
	tr, ex := fig1Tree(2)
	if _, err := MinCostPaperReference(tr, tree.NewReplicas(1), 10, cost.Simple{}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := MinCostPaperReference(tr, ex, 0, cost.Simple{}); err == nil {
		t.Error("W=0 accepted")
	}
	if _, err := MinCostPaperReference(tr, ex, 10, cost.Simple{Delete: -1}); err == nil {
		t.Error("negative price accepted")
	}
	big := tree.MustGenerate(tree.FatConfig(maxReferenceNodes+1), rng.New(1))
	if _, err := MinCostPaperReference(big, nil, 10, cost.Simple{}); err == nil {
		t.Error("oversized tree accepted")
	}
	infeasible := tree.NewBuilder()
	infeasible.AddClient(0, 99)
	if _, err := MinCostPaperReference(infeasible.MustBuild(), nil, 10, cost.Simple{}); !errors.Is(err, ErrInfeasible) {
		t.Error("infeasible instance not reported")
	}
}

// Property: the optimised MinCost and the paper-faithful transcription
// agree on the optimal cost for delete <= 1 (where the paper's root
// scan is complete), and the reference's own placement realises its
// reported cost.
func TestQuickPaperReferenceAgreesWithOptimised(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 60)
		cfg := tree.GenConfig{
			Nodes:       1 + src.IntN(30),
			MinChildren: 1 + src.IntN(3),
			MaxChildren: 0,
			ClientProb:  0.3 + src.Float64()*0.6,
			ReqMin:      1,
			ReqMax:      6,
		}
		cfg.MaxChildren = cfg.MinChildren + src.IntN(5)
		tr := tree.MustGenerate(cfg, src)
		ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()+1), 1, src)
		W := 5 + src.IntN(8)
		c := cost.Simple{
			Create: float64(src.IntN(20)) / 10,
			Delete: float64(src.IntN(10)) / 10, // delete <= 1
		}
		ref, errR := MinCostPaperReference(tr, ex, W, c)
		opt, errO := MinCost(tr, ex, W, c)
		if errR != nil || errO != nil {
			return errors.Is(errR, ErrInfeasible) == errors.Is(errO, ErrInfeasible)
		}
		if !almost(ref.Cost, opt.Cost) {
			t.Logf("seed %d: reference %v, optimised %v", seed, ref.Cost, opt.Cost)
			return false
		}
		if tree.ValidateUniform(tr, ref.Placement, W) != nil {
			return false
		}
		return almost(c.OfReplicas(ref.Placement, ex), ref.Cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperReferenceCostAtSeedBound pins the third pseudo-code repair:
// when the optimal cost exactly attains the paper's N·(1+create+delete)
// initialisation bound of Algorithm 4, the scan must still return it
// instead of reporting infeasibility. A clientful single node with no
// pre-existing servers and delete = 0 costs exactly 1 + create — the
// bound — and previously came back as ErrInfeasible (caught by
// TestQuickPaperReferenceAgreesWithOptimised at quick seeds
// 0xbf66953e8ea1ff7b and 0xc05909af978c13c4).
func TestPaperReferenceCostAtSeedBound(t *testing.T) {
	b := tree.NewBuilder()
	b.AddClient(0, 5)
	tr := b.MustBuild()
	res, err := MinCostPaperReference(tr, nil, 12, cost.Simple{Create: 1.6})
	if err != nil {
		t.Fatalf("cost-at-bound instance reported infeasible: %v", err)
	}
	if !almost(res.Cost, 2.6) || !res.Placement.Has(0) {
		t.Fatalf("cost-at-bound instance solved as %+v", res)
	}
}

// TestPaperReferenceZeroLoadServer pins the pseudo-code repair: a
// reused server carrying zero requests must survive reconstruction.
func TestPaperReferenceZeroLoadServer(t *testing.T) {
	// Child B pre-exists with no clients below it; parent root has a
	// client. With free prices the scan may still select a cell
	// containing B at zero load; the placement must then include B.
	b := tree.NewBuilder()
	bb := b.AddNode(0)
	b.AddClient(0, 3)
	tr := b.MustBuild()
	ex := tree.ReplicasOf(tr)
	ex.Set(bb, 1)
	// Make reuse attractive: deleting costs 1 (the paper's bound).
	c := cost.Simple{Create: 0.9, Delete: 1}
	res, err := MinCostPaperReference(tr, ex, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the scan picked, the reported stats must match the
	// reconstructed placement exactly.
	if res.Placement.Count() != res.Servers {
		t.Fatalf("placement has %d servers, scan priced %d", res.Placement.Count(), res.Servers)
	}
	if res.Placement.Reused(ex) != res.Reused {
		t.Fatalf("placement reuses %d, scan priced %d", res.Placement.Reused(ex), res.Reused)
	}
}
