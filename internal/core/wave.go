package core

import (
	"replicatree/internal/par"
	"replicatree/internal/tree"
)

// waveSched is the subtree-parallel scheduler shared by the three DP
// solvers' bottom-up passes. The tree's height waves (tree.Wave) are
// processed in order: every child lies in a strictly lower wave, so
// once the previous waves are complete, the nodes of one wave have all
// their inputs ready and are independent — each reads only its
// children's retained tables and writes only its own per-node buffers.
// Fanning a wave across a persistent worker pool therefore yields
// results bit-identical to the sequential post-order pass for any
// worker count: there is no cross-node fold, and the pool's done
// hand-off gives the next wave a happens-before edge on all writes.
//
// The scheduler composes with the incremental machinery: only the
// dirty nodes of each wave are dispatched, so a drift step still
// recomputes just the dirty ancestor chains (fanning out their sibling
// recomputes where the chains are bushy enough to pay for the pool
// wake-up).
type waveSched struct {
	workers  int
	pool     *par.Pool
	dirtyIdx []int // dirty nodes of the wave being dispatched
	task     func(w, i int)
}

// setWorkers resolves and installs the worker count (<= 0 selects
// runtime.GOMAXPROCS(0) via the pool; 1 tears the pool down) and the
// task closure, which must solve node dirtyIdx[i] using worker w's
// scratch. It returns the resolved count so the solver can size its
// per-worker arenas.
func (ws *waveSched) setWorkers(workers int, task func(w, i int)) int {
	if ws.pool != nil {
		ws.pool.Close()
		ws.pool = nil
	}
	ws.task = nil
	ws.workers = 1
	if workers == 1 {
		return 1
	}
	ws.pool = par.NewPool(workers)
	ws.workers = ws.pool.Workers()
	ws.task = task
	return ws.workers
}

// run executes one wave-parallel bottom-up pass over the nodes flagged
// in dirty, covering the first waves height levels (pass t.Waves() for
// the whole tree; PowerDP passes one less to leave the root — alone in
// the last wave — to its retained-prefix sequential fold). It returns
// how many nodes it recomputed and whether the pass ran to completion:
// once done closes (nil = never), the pass stops claiming work at the
// next wave boundary — and, within a wide wave, at the pool's next
// chunk claim — so cancellation latency is bounded by one wave chunk.
// Nodes already dispatched finish their table rebuild; the pass never
// abandons a table half-written. Requires a prior setWorkers with
// workers != 1. Thin waves run inline on the caller's goroutine
// (worker 0): drift steps re-solve only sparse ancestor chains, and
// waking the pool costs more than a few table rebuilds.
func (ws *waveSched) run(t *tree.Tree, dirty []bool, waves int, done <-chan struct{}) (int, bool) {
	recomputed := 0
	for h := 0; h < waves; h++ {
		if done != nil {
			select {
			case <-done:
				return recomputed, false
			default:
			}
		}
		wd := ws.dirtyIdx[:0]
		for _, j := range t.Wave(h) {
			if dirty[j] {
				wd = append(wd, j)
			}
		}
		ws.dirtyIdx = wd
		recomputed += len(wd)
		if len(wd) < 4 {
			for i := range wd {
				ws.task(0, i)
			}
			continue
		}
		if !ws.pool.RunCancel(len(wd), done, ws.task) {
			return recomputed, false
		}
	}
	return recomputed, true
}
