package core

import (
	"errors"
	"math"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// powerModel2 is the paper's Experiment 3 model: modes {5, 10} with
// static power 12.5 and α = 3.
func powerModel2() power.Model {
	return power.MustNew([]int{5, 10}, 12.5, 3)
}

// These tests prove the reuse contract of the arena-backed solvers: a
// solver hit many times with different instances must return exactly
// what the one-shot functions (which build a fresh solver per call)
// return, so no scratch state can leak between solves.

const reuseTrees = 100

func reuseTreeCount(t *testing.T) int {
	if testing.Short() {
		return 25
	}
	return reuseTrees
}

// reuseGen draws the i-th differential workload: alternating fat and
// high shapes with drifting sizes, so consecutive solves on one solver
// see different table dimensions.
func reuseGen(i int) tree.GenConfig {
	n := 30 + i%25
	if i%2 == 0 {
		return tree.FatConfig(n)
	}
	return tree.HighConfig(n)
}

func TestMinCostSolverReuseMatchesOneShot(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	for i := 0; i < reuseTreeCount(t); i++ {
		src := rng.Derive(41, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		solver := NewMinCostSolver(tr)
		dst := tree.ReplicasOf(tr)
		for _, combo := range []struct{ e, w int }{
			{0, 10}, {tr.N() / 4, 10}, {tr.N() / 2, 8},
		} {
			existing, err := tree.RandomReplicas(tr, combo.e, 1, src)
			if err != nil {
				t.Fatal(err)
			}
			want, wantErr := MinCost(tr, existing, combo.w, c)
			got, gotErr := solver.SolveInto(existing, combo.w, c, dst)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("tree %d E=%d W=%d: one-shot err %v, reused err %v", i, combo.e, combo.w, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrInfeasible) || !errors.Is(wantErr, ErrInfeasible) {
					t.Fatalf("tree %d E=%d W=%d: non-infeasibility errors %v / %v", i, combo.e, combo.w, wantErr, gotErr)
				}
				continue
			}
			if !want.Placement.Equal(got.Placement) ||
				want.Placement.String() != got.Placement.String() ||
				want.Cost != got.Cost || want.Servers != got.Servers ||
				want.Reused != got.Reused || want.New != got.New {
				t.Fatalf("tree %d E=%d W=%d: one-shot %v (cost %v) != reused %v (cost %v)",
					i, combo.e, combo.w, want.Placement, want.Cost, got.Placement, got.Cost)
			}
		}
	}
}

func TestPowerDPReuseMatchesOneShot(t *testing.T) {
	pm := powerModel2()
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	for i := 0; i < reuseTreeCount(t); i++ {
		src := rng.Derive(43, i)
		gen := tree.PowerConfig(18 + i%12)
		tr := tree.MustGenerate(gen, src)
		dp := NewPowerDP(tr)
		dst := tree.ReplicasOf(tr)
		for _, pre := range []int{0, 3} {
			existing, err := tree.RandomReplicas(tr, pre, 2, src)
			if err != nil {
				t.Fatal(err)
			}
			prob := PowerProblem{Tree: tr, Existing: existing, Power: pm, Cost: cm}
			want, wantErr := SolvePower(prob)
			got, gotErr := dp.Solve(prob)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("tree %d pre=%d: one-shot err %v, reused err %v", i, pre, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			wf, gf := want.Front(), got.Front()
			if len(wf) != len(gf) {
				t.Fatalf("tree %d pre=%d: front sizes %d != %d", i, pre, len(wf), len(gf))
			}
			for k := range wf {
				if wf[k] != gf[k] {
					t.Fatalf("tree %d pre=%d: front[%d] %v != %v", i, pre, k, wf[k], gf[k])
				}
			}
			wantOpt := want.MinPower()
			gotOpt, ok := got.BestInto(math.Inf(1), dst)
			if !ok {
				t.Fatalf("tree %d pre=%d: reused solver lost the unbounded optimum", i, pre)
			}
			if !wantOpt.Placement.Equal(gotOpt.Placement) ||
				wantOpt.Placement.String() != gotOpt.Placement.String() ||
				wantOpt.Cost != gotOpt.Cost || wantOpt.Power != gotOpt.Power {
				t.Fatalf("tree %d pre=%d: optimum %v (%v, %v) != %v (%v, %v)", i, pre,
					wantOpt.Placement, wantOpt.Cost, wantOpt.Power,
					gotOpt.Placement, gotOpt.Cost, gotOpt.Power)
			}
			// A mid-front bound exercises reconstruction of a non-trivial
			// cell through the reused back-pointer tables.
			if len(wf) > 1 {
				bound := wf[len(wf)/2].Cost
				wb, wok := want.Best(bound)
				gb, gok := got.BestInto(bound, dst)
				if wok != gok || !wb.Placement.Equal(gb.Placement) || wb.Power != gb.Power {
					t.Fatalf("tree %d pre=%d bound %v: one-shot and reused Best disagree", i, pre, bound)
				}
			}
		}
	}
}

func TestQoSSolverReuseMatchesOneShot(t *testing.T) {
	for i := 0; i < reuseTreeCount(t); i++ {
		src := rng.Derive(47, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		solver := NewQoSSolver(tr)
		dst := tree.ReplicasOf(tr)
		for _, combo := range []struct{ qos, bw int }{
			{0, -1}, {4, -1}, {2, -1}, {3, 40},
		} {
			var cons *tree.Constraints
			if combo.qos > 0 || combo.bw >= 0 {
				cons = tree.NewConstraints(tr)
				if combo.qos > 0 {
					cons.SetUniformQoS(tr, combo.qos)
				}
				if combo.bw >= 0 {
					cons.SetUniformBandwidth(combo.bw)
				}
			}
			want, wantErr := MinReplicasQoS(tr, 10, cons)
			got, gotErr := solver.Solve(10, cons, dst)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("tree %d qos=%d bw=%d: one-shot err %v, reused err %v",
					i, combo.qos, combo.bw, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(wantErr, ErrInfeasible) || !errors.Is(gotErr, ErrInfeasible) {
					t.Fatalf("tree %d qos=%d bw=%d: non-infeasibility errors %v / %v",
						i, combo.qos, combo.bw, wantErr, gotErr)
				}
				continue
			}
			if !want.Equal(got) || want.String() != got.String() {
				t.Fatalf("tree %d qos=%d bw=%d: one-shot %v != reused %v",
					i, combo.qos, combo.bw, want, got)
			}
		}
	}
}

// TestSolveIntoKeepsDstOnValidationError pins the destination
// contract: a solve rejected by input validation must leave a reused
// destination's previous placement intact, so callers can fall back to
// it.
func TestSolveIntoKeepsDstOnValidationError(t *testing.T) {
	tr := tree.MustGenerate(tree.FatConfig(40), rng.New(7))
	solver := NewMinCostSolver(tr)
	dst := tree.ReplicasOf(tr)
	if _, err := solver.SolveInto(nil, 10, cost.Simple{}, dst); err != nil {
		t.Fatal(err)
	}
	held := dst.Clone()
	if held.Count() == 0 {
		t.Fatal("expected a non-empty placement")
	}
	if _, err := solver.SolveInto(nil, 0, cost.Simple{}, dst); err == nil {
		t.Fatal("expected a validation error for W=0")
	}
	if _, err := solver.SolveInto(nil, 10, cost.Simple{Create: -1}, dst); err == nil {
		t.Fatal("expected a validation error for a negative price")
	}
	if !dst.Equal(held) {
		t.Fatalf("rejected solves changed dst: %v != %v", dst, held)
	}
}

// TestSolverSteadyStateAllocs asserts the arena contract directly: after
// one warm-up solve, further solves of the same instance allocate
// nothing. Skipped in -short runs (the race detector instruments
// allocations).
func TestSolverSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is unreliable under -short/-race")
	}
	src := rng.New(2011)
	tr := tree.MustGenerate(tree.FatConfig(100), src)
	existing, err := tree.RandomReplicas(tr, 25, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	c := cost.Simple{Create: 0.1, Delete: 0.01}

	mc := NewMinCostSolver(tr)
	dst := tree.ReplicasOf(tr)
	if _, err := mc.SolveInto(existing, 10, c, dst); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(3, func() {
		if _, err := mc.SolveInto(existing, 10, c, dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MinCostSolver.SolveInto: %v allocs/op, want 0", n)
	}

	qs := NewQoSSolver(tr)
	cons := tree.NewConstraints(tr)
	cons.SetUniformQoS(tr, 4)
	if _, err := qs.Solve(10, cons, dst); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(3, func() {
		if _, err := qs.Solve(10, cons, dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("QoSSolver.Solve: %v allocs/op, want 0", n)
	}

	ptr := tree.MustGenerate(tree.PowerConfig(50), src)
	pexisting, err := tree.RandomReplicas(ptr, 5, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	dp := NewPowerDP(ptr)
	prob := PowerProblem{Existing: pexisting, Power: powerModel2(), Cost: cost.UniformModal(2, 0.1, 0.01, 0.001)}
	pdst := tree.ReplicasOf(ptr)
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(3, func() {
		sol, err := dp.Solve(prob)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := sol.BestInto(math.Inf(1), pdst); !ok {
			t.Fatal("no solution")
		}
	}); n != 0 {
		t.Errorf("PowerDP.Solve + BestInto: %v allocs/op, want 0", n)
	}
}
