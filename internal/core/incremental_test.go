package core

import (
	"errors"
	"math"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// These tests prove the incremental contract: a solver that carries
// cached subtree tables across solves must return byte-for-byte what a
// cold solver (fresh tables, same inputs) returns, for any sequence of
// demand drifts, pre-existing set changes and parameter swaps — while
// actually recomputing only the dirty ancestor chains.

// driftClients mutates k random client demands of t through SetDemand
// and returns the nodes it touched.
func driftClients(t *tree.Tree, k int, src *rng.Source) []int {
	withClients := make([]int, 0, t.N())
	for j := 0; j < t.N(); j++ {
		if len(t.Clients(j)) > 0 {
			withClients = append(withClients, j)
		}
	}
	var touched []int
	for i := 0; i < k && len(withClients) > 0; i++ {
		j := withClients[src.IntN(len(withClients))]
		ci := src.IntN(len(t.Clients(j)))
		if t.SetDemand(j, ci, src.Between(1, 9)) {
			touched = append(touched, j)
		}
	}
	return touched
}

// chainBound returns the number of nodes on the ancestor chains
// (inclusive) of the touched nodes: the most an incremental solve may
// recompute after only those demands changed.
func chainBound(t *tree.Tree, touched []int) int {
	on := make(map[int]bool)
	for _, j := range touched {
		for n := j; n >= 0; n = t.Parent(n) {
			on[n] = true
		}
	}
	return len(on)
}

func TestMinCostIncrementalMatchesCold(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	for i := 0; i < reuseTreeCount(t); i++ {
		src := rng.Derive(101, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		warm := NewMinCostSolver(tr)
		existing := tree.ReplicasOf(tr)
		dst := tree.ReplicasOf(tr)
		W := 10
		for step := 0; step < 12; step++ {
			driftClients(tr, src.IntN(4), src)
			if step%5 == 4 {
				W = 8 + src.IntN(3) // occasionally reshape every table
			}
			got, gotErr := warm.SolveInto(existing, W, c, dst)
			want, wantErr := MinCost(tr, existing, W, c)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("tree %d step %d: cold err %v, incremental err %v", i, step, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrInfeasible) {
					t.Fatalf("tree %d step %d: non-infeasibility error %v", i, step, gotErr)
				}
				continue
			}
			if !want.Placement.Equal(got.Placement) || want.Cost != got.Cost ||
				want.Servers != got.Servers || want.Reused != got.Reused || want.New != got.New {
				t.Fatalf("tree %d step %d: cold %v (cost %v) != incremental %v (cost %v)",
					i, step, want.Placement, want.Cost, got.Placement, got.Cost)
			}
			// The next solve's pre-existing set is this solution; the
			// diff against the previous existing dirties a few chains.
			existing, dst = got.Placement, existing
		}
	}
}

func TestMinCostIncrementalRecomputesOnlyDirtyChains(t *testing.T) {
	src := rng.New(2024)
	tr := tree.MustGenerate(tree.FatConfig(100), src)
	solver := NewMinCostSolver(tr)
	existing := tree.ReplicasOf(tr)
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	if _, err := solver.SolveInto(existing, 10, c, nil); err != nil {
		t.Fatal(err)
	}
	if st := solver.Stats(); st.Recomputed != tr.N() {
		t.Fatalf("cold solve recomputed %d of %d nodes", st.Recomputed, tr.N())
	}

	// Nothing changed: the re-solve must reuse every table.
	if _, err := solver.SolveInto(existing, 10, c, nil); err != nil {
		t.Fatal(err)
	}
	if st := solver.Stats(); st.Recomputed != 0 {
		t.Fatalf("no-op solve recomputed %d nodes, want 0", st.Recomputed)
	}

	// One changed demand: at most its ancestor chain recomputes.
	for trial := 0; trial < 20; trial++ {
		touched := driftClients(tr, 1, src)
		if _, err := solver.SolveInto(existing, 10, c, nil); err != nil {
			t.Fatal(err)
		}
		if st, bound := solver.Stats(), chainBound(tr, touched); st.Recomputed > bound {
			t.Fatalf("trial %d: recomputed %d nodes, chain bound is %d", trial, st.Recomputed, bound)
		}
	}

	// A pre-existing membership change dirties the parent's chain only.
	node := 1 + src.IntN(tr.N()-1)
	existing.Set(node, 1)
	if _, err := solver.SolveInto(existing, 10, c, nil); err != nil {
		t.Fatal(err)
	}
	if st, bound := solver.Stats(), chainBound(tr, []int{tr.Parent(node)}); st.Recomputed > bound {
		t.Fatalf("membership change recomputed %d nodes, chain bound is %d", st.Recomputed, bound)
	}

	// Invalidate forces the next solve back to a full recompute.
	solver.Invalidate()
	if _, err := solver.SolveInto(existing, 10, c, nil); err != nil {
		t.Fatal(err)
	}
	if st := solver.Stats(); st.Recomputed != tr.N() {
		t.Fatalf("invalidated solve recomputed %d of %d nodes", st.Recomputed, tr.N())
	}
}

func TestQoSIncrementalMatchesCold(t *testing.T) {
	for i := 0; i < reuseTreeCount(t); i++ {
		src := rng.Derive(103, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		warm := NewQoSSolver(tr)
		cons := tree.NewConstraints(tr)
		cons.SetUniformQoS(tr, 4)
		dst := tree.ReplicasOf(tr)
		for step := 0; step < 12; step++ {
			touched := driftClients(tr, src.IntN(4), src)
			if step%4 == 3 {
				// Mutate the shared constraint set in place; the solver
				// must notice through its generation counter.
				cons.SetUniformQoS(tr, 3+src.IntN(3))
			}
			got, gotErr := warm.Solve(10, cons, dst)
			want, wantErr := MinReplicasQoS(tr, 10, cons)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("tree %d step %d: cold err %v, incremental err %v", i, step, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrInfeasible) {
					t.Fatalf("tree %d step %d: non-infeasibility error %v", i, step, gotErr)
				}
				continue
			}
			if !want.Equal(got) || want.String() != got.String() {
				t.Fatalf("tree %d step %d (touched %v): cold %v != incremental %v",
					i, step, touched, want, got)
			}
		}
	}
}

func TestQoSIncrementalRecomputesOnlyDirtyChains(t *testing.T) {
	src := rng.New(2025)
	tr := tree.MustGenerate(tree.FatConfig(100), src)
	solver := NewQoSSolver(tr)
	cons := tree.NewConstraints(tr)
	cons.SetUniformQoS(tr, 4)
	if _, err := solver.Solve(10, cons, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(10, cons, nil); err != nil {
		t.Fatal(err)
	}
	if st := solver.Stats(); st.Recomputed != 0 {
		t.Fatalf("no-op solve recomputed %d nodes, want 0", st.Recomputed)
	}
	for trial := 0; trial < 20; trial++ {
		touched := driftClients(tr, 1, src)
		if _, err := solver.Solve(10, cons, nil); err != nil {
			t.Fatal(err)
		}
		if st, bound := solver.Stats(), chainBound(tr, touched); st.Recomputed > bound {
			t.Fatalf("trial %d: recomputed %d nodes, chain bound is %d", trial, st.Recomputed, bound)
		}
	}
	// An in-place constraint edit invalidates everything.
	cons.SetQoS(tr.Root(), 0, 2)
	if _, err := solver.Solve(10, cons, nil); err == nil {
		if st := solver.Stats(); st.Recomputed != tr.N() {
			t.Fatalf("constraint edit recomputed %d of %d nodes", st.Recomputed, tr.N())
		}
	}
}

func TestPowerIncrementalMatchesCold(t *testing.T) {
	pm := powerModel2()
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	for i := 0; i < reuseTreeCount(t)/2; i++ {
		src := rng.Derive(107, i)
		tr := tree.MustGenerate(tree.PowerConfig(18+i%10), src)
		dp := NewPowerDP(tr)
		existing, err := tree.RandomReplicas(tr, 3, 2, src)
		if err != nil {
			t.Fatal(err)
		}
		dst := tree.ReplicasOf(tr)
		for step := 0; step < 8; step++ {
			driftClients(tr, src.IntN(3), src)
			if step%3 == 2 && tr.N() > 1 {
				// Flip one pre-existing server's membership or mode.
				j := 1 + src.IntN(tr.N()-1)
				if existing.Has(j) {
					existing.Unset(j)
				} else {
					existing.Set(j, uint8(1+src.IntN(2)))
				}
			}
			prob := PowerProblem{Tree: tr, Existing: existing, Power: pm, Cost: cm}
			got, gotErr := dp.Solve(prob)
			want, wantErr := SolvePower(prob)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("tree %d step %d: cold err %v, incremental err %v", i, step, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			wf, gf := want.Front(), got.Front()
			if len(wf) != len(gf) {
				t.Fatalf("tree %d step %d: front sizes %d != %d", i, step, len(wf), len(gf))
			}
			for k := range wf {
				if wf[k] != gf[k] {
					t.Fatalf("tree %d step %d: front[%d] %v != %v", i, step, k, wf[k], gf[k])
				}
			}
			wantOpt := want.MinPower()
			gotOpt, ok := got.BestInto(math.Inf(1), dst)
			if !ok || !wantOpt.Placement.Equal(gotOpt.Placement) ||
				wantOpt.Cost != gotOpt.Cost || wantOpt.Power != gotOpt.Power {
				t.Fatalf("tree %d step %d: cold optimum %v != incremental %v",
					i, step, wantOpt.Placement, gotOpt.Placement)
			}
		}
	}
}

func TestPowerIncrementalRecomputesOnlyDirtyChains(t *testing.T) {
	src := rng.New(2026)
	tr := tree.MustGenerate(tree.PowerConfig(50), src)
	existing, err := tree.RandomReplicas(tr, 5, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	dp := NewPowerDP(tr)
	prob := PowerProblem{Tree: tr, Existing: existing, Power: powerModel2(), Cost: cost.UniformModal(2, 0.1, 0.01, 0.001)}
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	if st := dp.Stats(); st.Recomputed != 0 {
		t.Fatalf("no-op solve recomputed %d nodes, want 0", st.Recomputed)
	}
	for trial := 0; trial < 10; trial++ {
		touched := driftClients(tr, 1, src)
		if _, err := dp.Solve(prob); err != nil {
			t.Fatal(err)
		}
		if st, bound := dp.Stats(), chainBound(tr, touched); st.Recomputed > bound {
			t.Fatalf("trial %d: recomputed %d nodes, chain bound is %d", trial, st.Recomputed, bound)
		}
	}
	// A different power model reshapes every table.
	prob.Power = power.MustNew([]int{5, 12}, 12.5, 3)
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	if st := dp.Stats(); st.Recomputed != tr.N() {
		t.Fatalf("model swap recomputed %d of %d nodes", st.Recomputed, tr.N())
	}
}

// TestPowerFailedSolveInvalidatesTables pins the error-path contract:
// a Solve that dies mid-tree (table-size overflow) has already
// overwritten retained tables for the failed instance, so a following
// solve with the previously valid parameters must rebuild everything
// instead of silently mixing the two instances' tables.
func TestPowerFailedSolveInvalidatesTables(t *testing.T) {
	src := rng.New(2028)
	tr := tree.MustGenerate(tree.PowerConfig(40), src)
	existing, err := tree.RandomReplicas(tr, 6, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	good := PowerProblem{Tree: tr, Existing: existing, Power: powerModel2(), Cost: cost.UniformModal(2, 0.1, 0.01, 0.001)}
	dp := NewPowerDP(tr)
	if _, err := dp.Solve(good); err != nil {
		t.Fatal(err)
	}

	// A 12-mode model explodes the count-vector tables past the
	// maxTableCells bound partway through the post-order.
	caps := make([]int, 12)
	for i := range caps {
		caps[i] = i + 5
	}
	bad := good
	bad.Power = power.MustNew(caps, 12.5, 3)
	bad.Cost = cost.UniformModal(12, 0.1, 0.01, 0.001)
	if _, err := dp.Solve(bad); err == nil {
		t.Skip("expected the 12-mode instance to overflow the table bound")
	}

	got, err := dp.Solve(good)
	if err != nil {
		t.Fatal(err)
	}
	if st := dp.Stats(); st.Recomputed != tr.N() {
		t.Fatalf("solve after a failed run recomputed %d of %d nodes", st.Recomputed, tr.N())
	}
	want, err := SolvePower(good)
	if err != nil {
		t.Fatal(err)
	}
	wOpt, gOpt := want.MinPower(), got.MinPower()
	if !wOpt.Placement.Equal(gOpt.Placement) || wOpt.Power != gOpt.Power || wOpt.Cost != gOpt.Cost {
		t.Fatalf("post-failure solve diverged: fresh %v (%v) != warm %v (%v)",
			wOpt.Placement, wOpt.Power, gOpt.Placement, gOpt.Power)
	}
}

// TestSolverResetRebindsAcrossTrees proves the cross-tree rebind: one
// solver swept over many differently-shaped trees through Reset must
// match one-shot solves on every tree.
func TestSolverResetRebindsAcrossTrees(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	mc := NewMinCostSolver(tree.MustGenerate(tree.FatConfig(10), rng.New(1)))
	qs := NewQoSSolver(tree.MustGenerate(tree.FatConfig(10), rng.New(1)))
	pm := powerModel2()
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	dp := NewPowerDP(tree.MustGenerate(tree.PowerConfig(10), rng.New(1)))

	for i := 0; i < reuseTreeCount(t)/2; i++ {
		src := rng.Derive(109, i)
		tr := tree.MustGenerate(reuseGen(i), src)
		existing, err := tree.RandomReplicas(tr, tr.N()/5, 1, src)
		if err != nil {
			t.Fatal(err)
		}

		mc.Reset(tr)
		want, wantErr := MinCost(tr, existing, 10, c)
		got, gotErr := mc.Solve(existing, 10, c)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("tree %d mincost: cold err %v, rebound err %v", i, wantErr, gotErr)
		}
		if wantErr == nil && (!want.Placement.Equal(got.Placement) || want.Cost != got.Cost) {
			t.Fatalf("tree %d mincost: cold %v != rebound %v", i, want.Placement, got.Placement)
		}

		qs.Reset(tr)
		qWant, qWantErr := MinReplicasQoS(tr, 10, nil)
		qGot, qGotErr := qs.Solve(10, nil, nil)
		if (qWantErr == nil) != (qGotErr == nil) {
			t.Fatalf("tree %d qos: cold err %v, rebound err %v", i, qWantErr, qGotErr)
		}
		if qWantErr == nil && !qWant.Equal(qGot) {
			t.Fatalf("tree %d qos: cold %v != rebound %v", i, qWant, qGot)
		}

		ptr := tree.MustGenerate(tree.PowerConfig(14+i%8), src)
		dp.Reset(ptr)
		prob := PowerProblem{Tree: ptr, Power: pm, Cost: cm}
		pWant, pWantErr := SolvePower(prob)
		pGot, pGotErr := dp.Solve(prob)
		if (pWantErr == nil) != (pGotErr == nil) {
			t.Fatalf("tree %d power: cold err %v, rebound err %v", i, pWantErr, pGotErr)
		}
		if pWantErr == nil {
			wOpt, gOpt := pWant.MinPower(), pGot.MinPower()
			if !wOpt.Placement.Equal(gOpt.Placement) || wOpt.Power != gOpt.Power {
				t.Fatalf("tree %d power: cold %v != rebound %v", i, wOpt.Placement, gOpt.Placement)
			}
		}
	}
}

// TestIncrementalSteadyStateAllocs pins the allocation contract of the
// incremental path: once warm, a drift step (SetDemand + re-solve)
// allocates nothing for any of the three solvers.
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is unreliable under -short/-race")
	}
	src := rng.New(2027)
	tr := tree.MustGenerate(tree.FatConfig(100), src)
	node := -1
	for j := 0; j < tr.N(); j++ {
		if len(tr.Clients(j)) > 0 {
			node = j
			break
		}
	}
	if node < 0 {
		t.Fatal("no clients")
	}
	c := cost.Simple{Create: 0.1, Delete: 0.01}

	mc := NewMinCostSolver(tr)
	dst := tree.ReplicasOf(tr)
	existing := tree.ReplicasOf(tr)
	flip := 1
	if _, err := mc.SolveInto(existing, 10, c, dst); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(5, func() {
		flip = 3 - flip // alternate 1 and 2 so every run dirties the chain
		tr.SetDemand(node, 0, flip)
		if _, err := mc.SolveInto(existing, 10, c, dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("MinCost drift step: %v allocs/op, want 0", n)
	}

	qs := NewQoSSolver(tr)
	cons := tree.NewConstraints(tr)
	cons.SetUniformQoS(tr, 4)
	if _, err := qs.Solve(10, cons, dst); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(5, func() {
		flip = 3 - flip
		tr.SetDemand(node, 0, flip)
		if _, err := qs.Solve(10, cons, dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("QoS drift step: %v allocs/op, want 0", n)
	}

	ptr := tree.MustGenerate(tree.PowerConfig(50), src)
	pnode := -1
	for j := 0; j < ptr.N(); j++ {
		if len(ptr.Clients(j)) > 0 {
			pnode = j
			break
		}
	}
	dp := NewPowerDP(ptr)
	prob := PowerProblem{Existing: nil, Power: powerModel2(), Cost: cost.UniformModal(2, 0.1, 0.01, 0.001)}
	pdst := tree.ReplicasOf(ptr)
	if _, err := dp.Solve(prob); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(5, func() {
		flip = 3 - flip
		ptr.SetDemand(pnode, 0, flip)
		sol, err := dp.Solve(prob)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := sol.BestInto(math.Inf(1), pdst); !ok {
			t.Fatal("no solution")
		}
	}); n != 0 {
		t.Errorf("Power drift step: %v allocs/op, want 0", n)
	}
}
