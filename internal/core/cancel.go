package core

import "context"

// This file holds the cooperative-cancellation machinery shared by the
// three solvers. Each solver owns a cancelGate installed via its
// SetContext method; the bottom-up passes poll it at coarse checkpoints
// — between height waves on the parallel path, every cancelStride node
// tables on the sequential one, and between merge fold steps / scan
// blocks at the power root — so a cancellation is observed within one
// checkpoint's worth of work, never mid-table.
//
// Aborting between checkpoints leaves the solver repairable, the same
// contract as a mid-tree solve error: nothing is committed (neither the
// demand generations nor the previous-instance diff state), so the next
// solve recomputes a superset of the interrupted work and lands on
// tables byte-identical to a solve that was never interrupted. Node
// tables are only ever rebuilt whole, and a rebuilt table is an exact
// function of the node's inputs, so a partially refreshed tree mixes
// exact tables of two generations — harmless, because the uncommitted
// tracker re-dirties every node of the newer generation on the next
// solve.

// cancelStride is how many sequential node solves run between two polls
// of the cancellation gate. Coarse enough that the poll is invisible
// next to a table rebuild, fine enough that cancellation latency stays
// bounded by a few dozen small tables.
const cancelStride = 64

// cancelGate caches a context's done channel so the per-checkpoint poll
// is one non-blocking select with no interface calls on the hot path.
// The zero value is an open gate (never cancelled, zero overhead).
type cancelGate struct {
	ctx  context.Context
	done <-chan struct{}
}

// set installs ctx as the gate's context. A nil ctx — or one that can
// never be cancelled, like context.Background() — disables the gate.
func (g *cancelGate) set(ctx context.Context) {
	if ctx == nil {
		g.ctx, g.done = nil, nil
		return
	}
	g.ctx, g.done = ctx, ctx.Done()
}

// err polls the gate: nil while the context is live, the context's
// error once it was cancelled.
func (g *cancelGate) err() error {
	if g.done == nil {
		return nil
	}
	select {
	case <-g.done:
		return g.ctx.Err()
	default:
		return nil
	}
}
