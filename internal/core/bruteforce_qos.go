package core

import (
	"fmt"
	"math/bits"
	"sort"

	"replicatree/internal/tree"
)

// maxBruteItems bounds the constrained assignment searches: the
// multiple policy is checked at unit granularity, so the search space
// is exponential in the total request count.
const maxBruteItems = 96

// BruteFeasibleConstrained decides exactly whether placement r serves
// every client of t under access policy p with uniform capacity W, QoS
// bounds and link bandwidths c. A nil c is BruteFeasible. Ground truth
// for the constrained flow engine on small trees:
//
//   - Closest: the engine's constrained validation (already exact —
//     routing is forced).
//   - Upwards: exhaustive backtracking over assignments of whole
//     clients to equipped ancestors within their QoS range, tracking
//     per-link residual bandwidth.
//   - Multiple: the same backtracking at unit-request granularity
//     (splitting a client is assigning its unit requests
//     independently), which cross-checks the engine's deadline-aware
//     saturating pass.
func BruteFeasibleConstrained(t *tree.Tree, r *tree.Replicas, p tree.Policy, W int, c *tree.Constraints) (bool, error) {
	if c == nil {
		return BruteFeasible(t, r, p, W)
	}
	if t.N() > maxBruteNodes {
		return false, fmt.Errorf("core: BruteFeasibleConstrained limited to %d nodes, got %d", maxBruteNodes, t.N())
	}
	if W < 0 {
		return false, fmt.Errorf("core: BruteFeasibleConstrained with negative capacity %d", W)
	}
	if err := c.Validate(t); err != nil {
		return false, err
	}
	switch p {
	case tree.PolicyClosest:
		return tree.ValidateConstrained(t, r, tree.PolicyClosest, W, c) == nil, nil
	case tree.PolicyUpwards:
		return assignFeasibleConstrained(t, r, W, c, false)
	case tree.PolicyMultiple:
		return assignFeasibleConstrained(t, r, W, c, true)
	default:
		return false, fmt.Errorf("core: BruteFeasibleConstrained with unknown policy %v", p)
	}
}

// assignFeasibleConstrained searches for an assignment of demands to
// equipped ancestors within their QoS depth range, no server exceeding
// W and no link exceeding its bandwidth. With unit=false demands are
// whole clients (the upwards policy); with unit=true every request is
// assigned independently (the multiple policy).
func assignFeasibleConstrained(t *tree.Tree, r *tree.Replicas, W int, c *tree.Constraints, unit bool) (bool, error) {
	type item struct {
		node, demand, minDepth int
	}
	var items []item
	total := 0
	for j := 0; j < t.N(); j++ {
		for k, d := range t.Clients(j) {
			if d <= 0 {
				continue
			}
			l := c.MinServerDepth(j, k, t.Depth(j))
			if unit {
				for u := 0; u < d; u++ {
					items = append(items, item{j, 1, l})
				}
			} else {
				items = append(items, item{j, d, l})
			}
			total += d
		}
	}
	if total == 0 {
		return true, nil
	}
	if len(items) > maxBruteItems {
		return false, fmt.Errorf("core: constrained search limited to %d demands, got %d", maxBruteItems, len(items))
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].demand != items[b].demand {
			return items[a].demand > items[b].demand
		}
		if items[a].minDepth != items[b].minDepth {
			return items[a].minDepth > items[b].minDepth
		}
		return items[a].node < items[b].node
	})
	// Candidate servers per item: equipped ancestors within the QoS
	// depth range, nearest first. The per-server residual capacity is a
	// slice keyed by node id (-1 = not a candidate of any item): the
	// backtracking below hits it on every assignment attempt, where a
	// map's hashing dominated the whole search.
	cands := make([][]int, len(items))
	residual := make([]int, t.N())
	for n := range residual {
		residual[n] = -1
	}
	free := 0
	for i, it := range items {
		for n := it.node; n >= 0; n = t.Parent(n) {
			if t.Depth(n) < it.minDepth {
				break
			}
			if r.Has(n) {
				cands[i] = append(cands[i], n)
				if residual[n] < 0 {
					residual[n] = W
					free += W
				}
			}
		}
		if len(cands[i]) == 0 {
			return false, nil
		}
	}
	linkRes := make([]int, t.N())
	for j := 1; j < t.N(); j++ {
		linkRes[j] = c.Bandwidth(j)
		if linkRes[j] < 0 {
			linkRes[j] = total // effectively unbounded
		}
	}
	remaining := total
	var rec func(i, prevChoice int) bool
	rec = func(i, prevChoice int) bool {
		if i == len(items) {
			return true
		}
		if remaining > free {
			return false
		}
		start := 0
		if i > 0 && items[i] == items[i-1] {
			// Identical demands are interchangeable: only try servers
			// from the previous twin's choice onward.
			start = prevChoice
		}
		it := items[i]
		for ci := start; ci < len(cands[i]); ci++ {
			s := cands[i][ci]
			if residual[s] < it.demand {
				continue
			}
			ok := true
			for v := it.node; v != s; v = t.Parent(v) {
				if linkRes[v] < it.demand {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			residual[s] -= it.demand
			free -= it.demand
			remaining -= it.demand
			for v := it.node; v != s; v = t.Parent(v) {
				linkRes[v] -= it.demand
			}
			if rec(i+1, ci) {
				return true
			}
			residual[s] += it.demand
			free += it.demand
			remaining += it.demand
			for v := it.node; v != s; v = t.Parent(v) {
				linkRes[v] += it.demand
			}
		}
		return false
	}
	return rec(0, 0), nil
}

// BruteMinReplicasConstrained returns a minimal-cardinality placement
// that is exactly feasible under policy p with uniform capacity W and
// constraints c (every replica at mode 1; ties prefer the placement
// concentrated on the lowest node ids). Exponential; it exists to
// cross-validate MinReplicasQoS and the constrained greedy layer.
func BruteMinReplicasConstrained(t *tree.Tree, W int, p tree.Policy, c *tree.Constraints) (*tree.Replicas, error) {
	if t.N() > maxBruteNodes {
		return nil, fmt.Errorf("core: BruteMinReplicasConstrained limited to %d nodes, got %d", maxBruteNodes, t.N())
	}
	n := t.N()
	var best *tree.Replicas
	bestCount := n + 1
	for mask := 0; mask < 1<<n; mask++ {
		count := bits.OnesCount(uint(mask))
		if count >= bestCount {
			continue
		}
		r := tree.NewReplicas(n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				r.Set(j, 1)
			}
		}
		ok, err := BruteFeasibleConstrained(t, r, p, W, c)
		if err != nil {
			return nil, err
		}
		if ok {
			best, bestCount = r, count
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: %w", ErrInfeasible)
	}
	return best, nil
}
