package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 57
		hit := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hit[i], 1)
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for negative n")
	}
}

func TestMapOrdered(t *testing.T) {
	got := Map(10, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	a := Map(100, 1, func(i int) int { return i * 3 })
	b := Map(100, 8, func(i int) int { return i * 3 })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestMapPooledOrderedAndComplete(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		got := MapPooled(57, workers, func() *int { return new(int) }, func(s *int, i int) int {
			*s++ // per-worker running count; result must not depend on it
			return i * i
		})
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: MapPooled[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapPooledStatePerWorker(t *testing.T) {
	const n, workers = 200, 4
	var created atomic.Int32
	type state struct{ items int32 }
	outs := MapPooled(n, workers, func() *state {
		created.Add(1)
		return &state{}
	}, func(s *state, i int) *state {
		atomic.AddInt32(&s.items, 1) // the state itself is worker-local
		return s
	})
	if c := created.Load(); c < 1 || c > workers {
		t.Fatalf("created %d states, want 1..%d", c, workers)
	}
	// Every item was processed through exactly one of the states.
	total := int32(0)
	seen := map[*state]bool{}
	for _, s := range outs {
		if !seen[s] {
			seen[s] = true
			total += s.items
		}
	}
	if total != n {
		t.Fatalf("states account for %d items, want %d", total, n)
	}
	if len(seen) > int(created.Load()) {
		t.Fatalf("%d distinct states observed, only %d created", len(seen), created.Load())
	}
}

func TestMapPooledZeroItems(t *testing.T) {
	calls := 0
	out := MapPooled(0, 4, func() int { calls++; return 0 }, func(int, int) int { calls++; return 0 })
	if len(out) != 0 || calls != 0 {
		t.Fatalf("n=0: len %d, %d calls", len(out), calls)
	}
}

func TestForEachParallelismIsBounded(t *testing.T) {
	var cur, peak atomic.Int32
	ForEach(64, 4, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if peak.Load() > 4 {
		t.Fatalf("observed %d concurrent workers, limit 4", peak.Load())
	}
}
