package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 57
		hit := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hit[i], 1)
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for negative n")
	}
}

func TestMapOrdered(t *testing.T) {
	got := Map(10, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	a := Map(100, 1, func(i int) int { return i * 3 })
	b := Map(100, 8, func(i int) int { return i * 3 })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestMapPooledOrderedAndComplete(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		got := MapPooled(57, workers, func() *int { return new(int) }, func(s *int, i int) int {
			*s++ // per-worker running count; result must not depend on it
			return i * i
		})
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: MapPooled[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapPooledStatePerWorker(t *testing.T) {
	const n, workers = 200, 4
	var created atomic.Int32
	type state struct{ items int32 }
	outs := MapPooled(n, workers, func() *state {
		created.Add(1)
		return &state{}
	}, func(s *state, i int) *state {
		atomic.AddInt32(&s.items, 1) // the state itself is worker-local
		return s
	})
	if c := created.Load(); c < 1 || c > workers {
		t.Fatalf("created %d states, want 1..%d", c, workers)
	}
	// Every item was processed through exactly one of the states.
	total := int32(0)
	seen := map[*state]bool{}
	for _, s := range outs {
		if !seen[s] {
			seen[s] = true
			total += s.items
		}
	}
	if total != n {
		t.Fatalf("states account for %d items, want %d", total, n)
	}
	if len(seen) > int(created.Load()) {
		t.Fatalf("%d distinct states observed, only %d created", len(seen), created.Load())
	}
}

func TestMapPooledZeroItems(t *testing.T) {
	calls := 0
	out := MapPooled(0, 4, func() int { calls++; return 0 }, func(int, int) int { calls++; return 0 })
	if len(out) != 0 || calls != 0 {
		t.Fatalf("n=0: len %d, %d calls", len(out), calls)
	}
}

func TestForEachParallelismIsBounded(t *testing.T) {
	var cur, peak atomic.Int32
	ForEach(64, 4, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if peak.Load() > 4 {
		t.Fatalf("observed %d concurrent workers, limit 4", peak.Load())
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			ForEach(16, workers, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestMapPooledPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "pooled boom" {
			t.Fatalf("recovered %v, want pooled boom", r)
		}
	}()
	MapPooled(32, 4, func() int { return 0 }, func(_ int, i int) int {
		if i == 13 {
			panic("pooled boom")
		}
		return i
	})
	t.Fatal("MapPooled returned instead of panicking")
}

func TestForEachWorkersDefaultAndClamp(t *testing.T) {
	// workers <= 0 selects GOMAXPROCS(0); just check completion and
	// that the bound respects a tiny n (no goroutine without work).
	hit := make([]int32, 3)
	var cur, peak atomic.Int32
	ForEach(len(hit), -1, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		atomic.AddInt32(&hit[i], 1)
		cur.Add(-1)
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	if peak.Load() > int32(len(hit)) {
		t.Fatalf("observed %d concurrent workers for n=%d", peak.Load(), len(hit))
	}
}

func TestPoolCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
		}
		for _, n := range []int{0, 1, 57, 1000} {
			hit := make([]int32, n)
			p.Run(n, func(w, i int) {
				if w < 0 || w >= workers {
					t.Errorf("worker id %d out of [0,%d)", w, workers)
				}
				atomic.AddInt32(&hit[i], 1)
			})
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestPoolReusableAfterPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			if r := recover(); r != "pool boom" {
				t.Fatalf("recovered %v, want pool boom", r)
			}
		}()
		p.Run(64, func(w, i int) {
			if i == 31 {
				panic("pool boom")
			}
		})
		t.Fatal("Run returned instead of panicking")
	}()
	// The pool must stay usable after a drained panic.
	var count atomic.Int32
	p.Run(64, func(w, i int) { count.Add(1) })
	if count.Load() != 64 {
		t.Fatalf("post-panic Run covered %d indices, want 64", count.Load())
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	var count atomic.Int32
	p.Run(100, func(w, i int) { count.Add(1) })
	if count.Load() != 100 {
		t.Fatalf("covered %d indices, want 100", count.Load())
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	p.Run(10, func(w, i int) {})
	p.Close()
	p.Close()
}

func TestForEachCancelCompletesWithOpenChannel(t *testing.T) {
	done := make(chan struct{})
	for _, workers := range []int{1, 4} {
		var count atomic.Int32
		if !ForEachCancel(100, workers, done, func(i int) { count.Add(1) }) {
			t.Fatalf("workers=%d: reported early stop with an open channel", workers)
		}
		if count.Load() != 100 {
			t.Fatalf("workers=%d: covered %d indices, want 100", workers, count.Load())
		}
	}
}

func TestForEachCancelNilChannelIsForEach(t *testing.T) {
	var count atomic.Int32
	if !ForEachCancel(50, 4, nil, func(i int) { count.Add(1) }) {
		t.Fatal("nil done channel reported early stop")
	}
	if count.Load() != 50 {
		t.Fatalf("covered %d indices, want 50", count.Load())
	}
}

func TestForEachCancelStopsEarly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		done := make(chan struct{})
		var count atomic.Int32
		completed := ForEachCancel(1000, workers, done, func(i int) {
			if count.Add(1) == 10 {
				close(done)
			}
		})
		if completed {
			t.Fatalf("workers=%d: sweep claims completion despite mid-sweep cancel", workers)
		}
		// Items already claimed may still finish; the bound is one
		// in-flight item per worker past the cancellation point.
		if got := count.Load(); got < 10 || got > 10+int32(workers) {
			t.Fatalf("workers=%d: ran %d items, want within [10, %d]", workers, got, 10+workers)
		}
	}
}

func TestForEachCancelPreCancelled(t *testing.T) {
	done := make(chan struct{})
	close(done)
	var count atomic.Int32
	if ForEachCancel(100, 4, done, func(i int) { count.Add(1) }) {
		t.Fatal("pre-cancelled sweep claims completion")
	}
	if count.Load() != 0 {
		t.Fatalf("pre-cancelled sweep ran %d items, want 0", count.Load())
	}
}

func TestPoolRunCancelCompletesWithOpenChannel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var count atomic.Int32
		if !p.RunCancel(100, make(chan struct{}), func(w, i int) { count.Add(1) }) {
			t.Fatalf("workers=%d: reported early stop with an open channel", workers)
		}
		if count.Load() != 100 {
			t.Fatalf("workers=%d: covered %d indices, want 100", workers, count.Load())
		}
		// A cancellable sweep must not poison later plain Runs.
		count.Store(0)
		p.Run(64, func(w, i int) { count.Add(1) })
		if count.Load() != 64 {
			t.Fatalf("workers=%d: post-RunCancel Run covered %d indices, want 64", workers, count.Load())
		}
		p.Close()
	}
}

func TestPoolRunCancelPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		done := make(chan struct{})
		close(done)
		var count atomic.Int32
		if p.RunCancel(1000, done, func(w, i int) { count.Add(1) }) {
			t.Fatalf("workers=%d: pre-cancelled sweep claims completion", workers)
		}
		// Workers check before claiming each chunk, so at most one
		// chunk per worker can slip through the initial race window;
		// with a channel closed before Run, none should.
		if count.Load() != 0 {
			t.Fatalf("workers=%d: pre-cancelled sweep ran %d items, want 0", workers, count.Load())
		}
		p.Close()
	}
}

func TestPoolRunCancelStopsEarly(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	done := make(chan struct{})
	var count atomic.Int32
	var closeOnce sync.Once
	completed := p.RunCancel(100000, done, func(w, i int) {
		if count.Add(1) == 100 {
			closeOnce.Do(func() { close(done) })
		}
	})
	if completed {
		t.Fatal("sweep claims completion despite mid-sweep cancel")
	}
	// In-flight chunks finish; only chunk claims stop. The chunk size
	// for this n is 64, so the tail is bounded by workers*chunk.
	if got := count.Load(); got < 100 || got > 100+4*64 {
		t.Fatalf("ran %d items, want within [100, %d]", got, 100+4*64)
	}
}
