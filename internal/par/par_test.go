package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 57
		hit := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&hit[i], 1)
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for negative n")
	}
}

func TestMapOrdered(t *testing.T) {
	got := Map(10, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	a := Map(100, 1, func(i int) int { return i * 3 })
	b := Map(100, 8, func(i int) int { return i * 3 })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestForEachParallelismIsBounded(t *testing.T) {
	var cur, peak atomic.Int32
	ForEach(64, 4, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
	})
	if peak.Load() > 4 {
		t.Fatalf("observed %d concurrent workers, limit 4", peak.Load())
	}
}
