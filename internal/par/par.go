// Package par provides the bounded fork-join helper used to run
// per-tree simulations in parallel. Work items write into
// caller-preallocated, index-addressed storage and draw randomness from
// per-item derived streams, so results are identical whatever the worker
// count or scheduling order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n), using up to workers
// goroutines (workers <= 0 selects runtime.NumCPU()). It returns after
// every invocation has completed. fn must confine its side effects to
// index-addressed storage to keep the run deterministic.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) with ForEach and collects the results in
// order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapPooled is Map with worker-pinned state: every worker goroutine
// obtains one state from newState and threads it through each item it
// processes, so expensive per-worker resources — arena-backed solvers,
// retained scratch — are built once per worker instead of once per
// item and amortise across the whole sweep. fn must produce an output
// that depends only on the item itself (state reuse has to be
// reset-safe, as the solvers' Reset contract guarantees) so results
// are identical for every worker count and scheduling order.
func MapPooled[S, T any](n, workers int, newState func() S, fn func(state S, i int) T) []T {
	out := make([]T, n)
	if n <= 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		s := newState()
		for i := 0; i < n; i++ {
			out[i] = fn(s, i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := newState()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(s, i)
			}
		}()
	}
	wg.Wait()
	return out
}
