// Package par provides the bounded fork-join helpers used to run
// per-tree simulations and per-subtree DP solves in parallel. Work
// items write into caller-preallocated, index-addressed storage and
// draw randomness from per-item derived streams, so results are
// identical whatever the worker count or scheduling order.
//
// Worker-count semantics, shared by every helper: workers <= 0 selects
// runtime.GOMAXPROCS(0) (the number of goroutines the scheduler will
// actually run, respecting cgroup/taskset limits — not the raw CPU
// count); the count is then clamped to n so no goroutine is spawned
// without work; workers == 1 runs inline on the caller's goroutine. A
// panic in fn is captured and re-raised on the calling goroutine after
// the remaining workers drain, instead of crashing the process from a
// worker (the first panic wins; its stack is preserved via the
// re-panicked value).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// panicBox carries a worker panic back to the waiting caller.
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

func (p *panicBox) capture() {
	if r := recover(); r != nil {
		p.mu.Lock()
		if !p.set {
			p.val, p.set = r, true
		}
		p.mu.Unlock()
	}
}

// rethrow re-raises the first captured panic, if any. Callers invoke it
// after wg.Wait(), whose happens-before edge makes the unguarded reads
// safe.
func (p *panicBox) rethrow() {
	if p.set {
		panic(p.val)
	}
}

// clampWorkers resolves the shared worker-count semantics.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEach invokes fn(i) for every i in [0, n), using up to workers
// goroutines (see the package comment for the worker-count and panic
// semantics). It returns after every invocation has completed. fn must
// confine its side effects to index-addressed storage to keep the run
// deterministic.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers = clampWorkers(workers, n); workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer pb.capture()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
}

// ForEachCancel is ForEach with cooperative cancellation: once done is
// closed, workers stop claiming new items (items already started run to
// completion — fn is never interrupted mid-item). It reports whether
// every item was invoked; false means the sweep stopped early and an
// unspecified subset of items never ran. A nil done channel degrades to
// plain ForEach. The incremental DP solvers use this to abandon a
// bottom-up pass within one item-sized checkpoint of a context
// cancellation, leaving their retained tables repairable (items are
// idempotent per-node rebuilds).
func ForEachCancel(n, workers int, done <-chan struct{}, fn func(i int)) bool {
	if done == nil {
		ForEach(n, workers, fn)
		return true
	}
	if n <= 0 {
		return true
	}
	var stopped atomic.Bool
	body := func(i int) bool {
		select {
		case <-done:
			stopped.Store(true)
			return false
		default:
		}
		fn(i)
		return true
	}
	if workers = clampWorkers(workers, n); workers == 1 {
		for i := 0; i < n; i++ {
			if !body(i) {
				return false
			}
		}
		return true
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer pb.capture()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || !body(i) {
					return
				}
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
	return !stopped.Load()
}

// Map runs fn over [0, n) with ForEach and collects the results in
// order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapPooled is Map with worker-pinned state: every worker goroutine
// obtains one state from newState and threads it through each item it
// processes, so expensive per-worker resources — arena-backed solvers,
// retained scratch — are built once per worker instead of once per
// item and amortise across the whole sweep. fn must produce an output
// that depends only on the item itself (state reuse has to be
// reset-safe, as the solvers' Reset contract guarantees) so results
// are identical for every worker count and scheduling order. Worker
// count and panic semantics are as in the package comment.
func MapPooled[S, T any](n, workers int, newState func() S, fn func(state S, i int) T) []T {
	out := make([]T, n)
	if n <= 0 {
		return out
	}
	if workers = clampWorkers(workers, n); workers == 1 {
		s := newState()
		for i := 0; i < n; i++ {
			out[i] = fn(s, i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var pb panicBox
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer pb.capture()
			s := newState()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(s, i)
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
	return out
}
