package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent team of worker goroutines for repeated
// fork-join sweeps. ForEach spawns fresh goroutines per call, which is
// fine for one-shot sweeps but allocates on every invocation; the
// incremental solvers re-run their bottom-up pass on every drift step
// and are benchmarked under a zero-alloc gate, so they need workers
// that outlive the call. A Pool's steady-state Run performs no heap
// allocations: workers park on pre-allocated channels between runs and
// indices are handed out by an atomic cursor in small chunks (dynamic
// load balancing for the highly uneven per-node work of the DP waves).
//
// Run(n, fn) invokes fn(worker, i) for every i in [0, n), where worker
// is a stable id in [0, Workers()) letting fn address per-worker state
// (arenas, scratch) without synchronisation. The caller's goroutine
// participates as worker 0. As with ForEach, fn must confine its side
// effects to index-addressed or worker-private storage; a panic in fn
// is re-raised on the caller after the sweep drains.
//
// A Pool is not safe for concurrent Run calls. Close releases the
// worker goroutines; a finalizer-style cleanup also releases them when
// a still-open Pool becomes unreachable, so dropping a Pool without
// Close does not leak goroutines.
type Pool struct {
	sh *poolShared
}

// poolShared is the state the worker goroutines reference. It is split
// from Pool so that an unreachable Pool can be collected (triggering
// the cleanup) while its workers still park on the channels below —
// workers must not keep the Pool itself alive.
type poolShared struct {
	workers int
	start   []chan struct{} // one slot per spawned worker (ids 1..workers-1)
	done    chan struct{}

	// Per-run state, written by Run before the workers wake and read
	// only while they run (the channel sends/receives order the
	// accesses).
	fn      func(worker, i int)
	n       int
	chunk   int
	stopC   <-chan struct{} // non-nil only for RunCancel sweeps
	stopped atomic.Bool
	next    atomic.Int64
	pb      panicBox

	closeOnce sync.Once
}

// NewPool returns a pool with the given number of workers (clamped as
// described in the package comment: <= 0 selects runtime.GOMAXPROCS(0)).
// A one-worker pool spawns no goroutines and runs everything inline.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sh := &poolShared{workers: workers, done: make(chan struct{}, workers)}
	for w := 1; w < workers; w++ {
		c := make(chan struct{}, 1)
		sh.start = append(sh.start, c)
		go func() {
			for range c {
				sh.runWorker(w)
				sh.done <- struct{}{}
			}
		}()
	}
	p := &Pool{sh: sh}
	runtime.AddCleanup(p, func(sh *poolShared) { sh.close() }, sh)
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.sh.workers }

// Run invokes fn(worker, i) for every i in [0, n) across the pool's
// workers and returns once all invocations completed. fn is not
// retained after Run returns.
func (p *Pool) Run(n int, fn func(worker, i int)) {
	p.run(n, nil, fn)
}

// RunCancel is Run with cooperative cancellation: once done is closed,
// workers stop claiming new chunks (items already started run to
// completion). It reports whether every item was invoked; false means
// the sweep stopped early and an unspecified subset of items never ran.
// A nil done channel degrades to plain Run. Like Run, the steady state
// performs no heap allocation, which keeps cancellable drift re-solves
// inside the solver zero-alloc gate.
func (p *Pool) RunCancel(n int, done <-chan struct{}, fn func(worker, i int)) bool {
	return p.run(n, done, fn)
}

func (p *Pool) run(n int, done <-chan struct{}, fn func(worker, i int)) bool {
	if n <= 0 {
		return true
	}
	sh := p.sh
	if sh.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return false
				default:
				}
			}
			fn(0, i)
		}
		return true
	}
	sh.fn, sh.n = fn, n
	sh.stopC = done
	sh.stopped.Store(false)
	// Chunked claiming bounds cursor contention on huge sweeps while
	// keeping chunks small enough to balance very uneven item costs.
	sh.chunk = max(1, min(64, n/(sh.workers*4)))
	sh.next.Store(0)
	sh.pb.val, sh.pb.set = nil, false
	for _, c := range sh.start {
		c <- struct{}{}
	}
	sh.runWorker(0)
	for range sh.start {
		<-sh.done
	}
	sh.fn = nil // release fn's captures while the pool idles
	sh.stopC = nil
	sh.pb.rethrow()
	return !sh.stopped.Load()
}

// runWorker drains chunks of the current sweep as worker w.
func (sh *poolShared) runWorker(w int) {
	defer sh.pb.capture()
	fn, n, chunk, stopC := sh.fn, sh.n, sh.chunk, sh.stopC
	for {
		if stopC != nil {
			select {
			case <-stopC:
				sh.stopped.Store(true)
				return
			default:
			}
		}
		lo := int(sh.next.Add(int64(chunk))) - chunk
		if lo >= n {
			return
		}
		for i, hi := lo, min(lo+chunk, n); i < hi; i++ {
			fn(w, i)
		}
	}
}

// Close releases the pool's worker goroutines. The pool must be idle;
// Run must not be called afterwards (it would deadlock waiting on
// parked workers). Close is idempotent.
func (p *Pool) Close() { p.sh.close() }

func (sh *poolShared) close() {
	sh.closeOnce.Do(func() {
		for _, c := range sh.start {
			close(c)
		}
	})
}
