// Package stats provides the small aggregation helpers used by the
// experiment harness: means, standard deviations, and integer-keyed
// histograms averaged across simulation runs.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stdev returns the population standard deviation of xs, or 0 when xs
// has fewer than two values.
func Stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the smallest value, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram counts occurrences of integer values.
type Histogram struct {
	counts map[int]float64
	n      int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]float64)}
}

// Add records one occurrence of v.
func (h *Histogram) Add(v int) { h.AddWeighted(v, 1) }

// AddWeighted records w occurrences of v.
func (h *Histogram) AddWeighted(v int, w float64) {
	h.counts[v] += w
	h.n++
}

// Merge adds every bin of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for v, w := range other.counts {
		h.counts[v] += w
	}
	h.n += other.n
}

// Scale multiplies every bin by f (used to average histograms across
// runs).
func (h *Histogram) Scale(f float64) {
	for v := range h.counts {
		h.counts[v] *= f
	}
}

// Count returns the weight of bin v.
func (h *Histogram) Count(v int) float64 { return h.counts[v] }

// Bins returns the occupied bins in ascending order.
func (h *Histogram) Bins() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
