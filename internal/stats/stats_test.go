package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestStdev(t *testing.T) {
	if Stdev([]float64{5}) != 0 {
		t.Fatal("Stdev of singleton != 0")
	}
	got := Stdev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Stdev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max != 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(2)
	h.Add(2)
	h.Add(-1)
	h.AddWeighted(5, 0.5)
	if h.Count(2) != 2 || h.Count(-1) != 1 || h.Count(5) != 0.5 || h.Count(99) != 0 {
		t.Fatalf("counts wrong: %v %v %v", h.Count(2), h.Count(-1), h.Count(5))
	}
	bins := h.Bins()
	want := []int{-1, 2, 5}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("Bins = %v, want %v", bins, want)
		}
	}
}

func TestHistogramMergeScale(t *testing.T) {
	a := NewHistogram()
	a.Add(1)
	b := NewHistogram()
	b.Add(1)
	b.Add(3)
	a.Merge(b)
	if a.Count(1) != 2 || a.Count(3) != 1 {
		t.Fatalf("merge wrong: %v %v", a.Count(1), a.Count(3))
	}
	a.Scale(0.5)
	if a.Count(1) != 1 || a.Count(3) != 0.5 {
		t.Fatalf("scale wrong: %v %v", a.Count(1), a.Count(3))
	}
}

// Property: mean is within [min, max] and shifting inputs shifts the
// mean.
func TestQuickMeanProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 10
		}
		return math.Abs(Mean(shifted)-(m+10)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
