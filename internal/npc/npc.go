// Package npc materialises the paper's NP-completeness proof for
// MinPower (Theorem 2, Section 4.2): a polynomial reduction from
// 2-Partition. Given integers a_1..a_n with even sum S, it builds the
// Figure 3 tree, the mode set
//
//	W_1 = K,  W_{1+i} = K + a_i·X,  W_{n+2} = K + S·X,
//
// with K = n·S², X = 1/(α·K^{α−1}), no static power, and the threshold
// P_max = (K+S·X)^α + n·K^α + S/2 + (n−1)/n, such that the instance
// admits a placement of power at most P_max iff the integers can be
// split into two halves of equal sum.
//
// The package fixes α = 2, for which X = 1/(2K); scaling every capacity
// and request count by 2K then makes all quantities integers while
// multiplying every power value (and P_max) by the constant (2K)²,
// preserving the reduction exactly. Instances stay small enough that all
// scaled powers are exactly representable in float64.
package npc

import (
	"fmt"
	"math"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// Alpha is the dynamic-power exponent used by the construction.
const Alpha = 2

// maxN bounds instance sizes so that scaled powers (~4K⁴ = 4n⁴S⁸) stay
// exactly representable in float64 and the MinPower tables stay small.
const maxN = 6

// Reduction is a constructed MinPower instance equivalent to a
// 2-Partition instance.
type Reduction struct {
	// A is the 2-Partition input, sorted ascending.
	A []int
	// S is the sum of A; K = n·S²; Scale = 2K (the integer scaling of
	// capacities and requests, valid for α = 2).
	S, K, Scale int
	// Tree is the Figure 3 tree: the root holds a client with
	// (scaled) K + (S/2)·X requests; each ANode[i] holds a client
	// with a_i·X requests and the child BNode[i], which holds a
	// client with K requests.
	Tree           *tree.Tree
	ANodes, BNodes []int
	// Caps are the scaled capacities of the mode set, deduplicated
	// and ascending.
	Caps []int
	// PMax is the scaled power threshold.
	PMax float64
}

// New builds the reduction for a 2-Partition instance. The integers must
// be positive, n must be in [3, maxN], the sum S must be even, and every
// integer must be strictly below S/2.
//
// The last two conditions make explicit what the paper's proof uses
// implicitly: with an odd sum or an element of at least S/2 the
// 2-Partition answer is decidable in linear time (an element above S/2
// makes it "no"; an element equal to S/2 makes it "yes"), and — more
// subtly — with an element a_i ≥ S/2 the capacity W_{1+i} = K + a_i·X
// would suffice for the root's K + (S/2)·X client, breaking the proof's
// step "the root server must run at mode W_{n+2}". 2-Partition remains
// NP-complete under these restrictions, so Theorem 2 is unaffected.
func New(a []int) (*Reduction, error) {
	n := len(a)
	if n < 3 || n > maxN {
		return nil, fmt.Errorf("npc: need between 3 and %d integers, got %d", maxN, n)
	}
	s := 0
	for _, v := range a {
		if v <= 0 {
			return nil, fmt.Errorf("npc: non-positive integer %d", v)
		}
		s += v
	}
	if s%2 != 0 {
		return nil, fmt.Errorf("npc: sum %d is odd; the construction assumes an even sum", s)
	}
	for _, v := range a {
		if 2*v >= s {
			return nil, fmt.Errorf("npc: element %d is at least half the sum %d; such instances are trivially decidable and break the proof's root-mode argument", v, s)
		}
	}
	sorted := append([]int(nil), a...)
	sort.Ints(sorted)

	k := n * s * s
	scale := 2 * k
	twoK2 := 2 * k * k // scaled W_1 = K·2K

	r := &Reduction{A: sorted, S: s, K: k, Scale: scale}

	// Scaled capacities: W_1 = 2K², W_{1+i} = 2K² + a_i, W_{n+2} = 2K² + S.
	capSet := map[int]bool{twoK2: true, twoK2 + s: true}
	for _, v := range sorted {
		capSet[twoK2+v] = true
	}
	for c := range capSet {
		r.Caps = append(r.Caps, c)
	}
	sort.Ints(r.Caps)

	// Figure 3 tree, with scaled request counts.
	b := tree.NewBuilder()
	b.AddClient(b.Root(), twoK2+s/2) // K + (S/2)·X, scaled
	for _, v := range sorted {
		ai := b.AddNode(b.Root())
		b.AddClient(ai, v) // a_i·X, scaled
		bi := b.AddNode(ai)
		b.AddClient(bi, twoK2) // K requests, scaled
		r.ANodes = append(r.ANodes, ai)
		r.BNodes = append(r.BNodes, bi)
	}
	var err error
	r.Tree, err = b.Build()
	if err != nil {
		return nil, err
	}

	// Scaled P_max = (2K²+S)² + n·(2K²)² + (2K)²·(S/2 + (n−1)/n).
	fk := float64(twoK2)
	r.PMax = math.Pow(float64(twoK2+s), Alpha) +
		float64(n)*math.Pow(fk, Alpha) +
		math.Pow(float64(scale), Alpha)*(float64(s)/2+float64(n-1)/float64(n))
	return r, nil
}

// Problem returns the MinPower instance (no pre-existing servers, no
// static power, cost ignored) ready for core.SolvePower.
func (r *Reduction) Problem() core.PowerProblem {
	return core.PowerProblem{
		Tree:  r.Tree,
		Power: power.MustNew(r.Caps, 0, Alpha),
		Cost:  cost.UniformModal(len(r.Caps), 0, 0, 0),
	}
}

// VerifyBounds numerically checks the proof's Equation (5) for every
// integer: (K + a_i·X)^α ≤ K^α + a_i + 1/n (in scaled units), which is
// what makes the power threshold separate partitions from
// non-partitions.
func (r *Reduction) VerifyBounds() error {
	n := len(r.A)
	twoK2 := float64(2 * r.K * r.K)
	scaleA := math.Pow(float64(r.Scale), Alpha)
	for _, v := range r.A {
		lhs := math.Pow(twoK2+float64(v), Alpha)
		rhs := math.Pow(twoK2, Alpha) + scaleA*(float64(v)+1/float64(n))
		if lhs > rhs {
			return fmt.Errorf("npc: equation (5) violated for a_i=%d: %v > %v", v, lhs, rhs)
		}
	}
	return nil
}

// Result is the outcome of solving a reduction.
type Result struct {
	// Solvable reports whether the optimal power is at most PMax,
	// i.e. whether the 2-Partition instance has a solution.
	Solvable bool
	// Power is the optimal total power (scaled units).
	Power float64
	// Partition holds, when Solvable, indices into A whose values sum
	// to S/2 (the set I of the proof: positions where the optimal
	// placement equips the A_i node).
	Partition []int
	// Placement is the optimal replica placement.
	Placement *tree.Replicas
}

// Solve runs the optimal MinPower dynamic program on the constructed
// instance and extracts the partition. Solving is exponential in n (the
// construction uses n+2 modes, and Theorem 2 says this is inherent
// unless P=NP), so only small instances are practical — which is all a
// correctness witness needs.
func (r *Reduction) Solve() (*Result, error) {
	solver, err := core.SolvePower(r.Problem())
	if err != nil {
		return nil, err
	}
	opt := solver.MinPower()
	res := &Result{Power: opt.Power, Placement: opt.Placement}
	// Strict comparison with a tolerance far below the gap: a
	// non-partition overshoots PMax by at least (2K)²/n.
	gap := math.Pow(float64(r.Scale), Alpha) / float64(len(r.A))
	if opt.Power <= r.PMax+gap/2 {
		res.Solvable = true
		part, err := r.ExtractPartition(opt.Placement)
		if err != nil {
			return nil, err
		}
		res.Partition = part
	}
	return res, nil
}

// ExtractPartition maps a placement of power ≤ PMax back to a
// 2-Partition solution: the indices i whose A_i node hosts a server. It
// validates the structural properties established in the proof (a server
// on the root, exactly one server per branch) and that the extracted set
// sums to S/2.
func (r *Reduction) ExtractPartition(placement *tree.Replicas) ([]int, error) {
	if !placement.Has(r.Tree.Root()) {
		return nil, fmt.Errorf("npc: placement has no root server; cannot be within PMax")
	}
	var part []int
	sum := 0
	for i := range r.A {
		onA, onB := placement.Has(r.ANodes[i]), placement.Has(r.BNodes[i])
		if onA == onB {
			return nil, fmt.Errorf("npc: branch %d has %d servers, proof requires exactly one", i, b2i(onA)+b2i(onB))
		}
		if onA {
			part = append(part, i)
			sum += r.A[i]
		}
	}
	if sum != r.S/2 {
		return nil, fmt.Errorf("npc: extracted subset sums to %d, want %d", sum, r.S/2)
	}
	return part, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TwoPartitionExact solves 2-Partition exactly with a subset-sum dynamic
// program, returning a witness subset (indices) or ok = false. It is the
// independent oracle the reduction is tested against.
func TwoPartitionExact(a []int) (subset []int, ok bool) {
	s := 0
	for _, v := range a {
		s += v
	}
	if s%2 != 0 {
		return nil, false
	}
	half := s / 2
	// reach[v] = index of the last element added to reach sum v, or -2
	// when unreached (-1 marks the empty sum).
	reach := make([]int, half+1)
	for i := range reach {
		reach[i] = -2
	}
	reach[0] = -1
	for i, v := range a {
		for t := half; t >= v; t-- {
			if reach[t] == -2 && reach[t-v] != -2 && reach[t-v] != i {
				reach[t] = i
			}
		}
	}
	if reach[half] == -2 {
		return nil, false
	}
	for t := half; t > 0; {
		i := reach[t]
		subset = append(subset, i)
		t -= a[i]
	}
	sort.Ints(subset)
	return subset, true
}
