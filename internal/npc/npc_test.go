package npc

import (
	"testing"
	"testing/quick"

	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func TestNewValidates(t *testing.T) {
	cases := [][]int{
		{},                    // empty
		{4},                   // too few
		{1, 1},                // too few (n >= 3 under the strict precondition)
		{1, 2, 3, 4, 5, 6, 7}, // too many
		{1, -2, 3, 4},         // non-positive
		{0, 2, 2},             // zero
		{1, 2, 4},             // odd sum
		{3, 1, 2},             // 3 = S/2: trivially decidable, breaks root-mode step
		{5, 1, 2},             // 5 > S/2: trivially "no"
	}
	for _, a := range cases {
		if _, err := New(a); err == nil {
			t.Errorf("New(%v) accepted", a)
		}
	}
}

func TestConstructionShape(t *testing.T) {
	r, err := New([]int{4, 1, 3, 2}) // S = 10, max 4 < 5
	if err != nil {
		t.Fatal(err)
	}
	if r.S != 10 || r.K != 4*100 || r.Scale != 2*r.K {
		t.Fatalf("parameters: %+v", r)
	}
	// Sorted copy.
	for i, want := range []int{1, 2, 3, 4} {
		if r.A[i] != want {
			t.Fatalf("A = %v, want sorted", r.A)
		}
	}
	// Tree: root + n A-nodes + n B-nodes.
	if r.Tree.N() != 9 {
		t.Fatalf("tree has %d nodes, want 9", r.Tree.N())
	}
	twoK2 := 2 * r.K * r.K
	if r.Tree.ClientSum(r.Tree.Root()) != twoK2+5 {
		t.Fatalf("root client = %d, want %d", r.Tree.ClientSum(r.Tree.Root()), twoK2+5)
	}
	for i, ai := range r.ANodes {
		if r.Tree.ClientSum(ai) != r.A[i] {
			t.Fatalf("A_%d client = %d, want %d", i, r.Tree.ClientSum(ai), r.A[i])
		}
		bi := r.BNodes[i]
		if r.Tree.Parent(bi) != ai || r.Tree.ClientSum(bi) != twoK2 {
			t.Fatalf("B_%d misplaced or misloaded", i)
		}
	}
	// Capacities: W1, one per distinct a_i, and W_{n+2}.
	want := []int{twoK2, twoK2 + 1, twoK2 + 2, twoK2 + 3, twoK2 + 4, twoK2 + 10}
	if len(r.Caps) != len(want) {
		t.Fatalf("caps = %v, want %v", r.Caps, want)
	}
	for i := range want {
		if r.Caps[i] != want[i] {
			t.Fatalf("caps = %v, want %v", r.Caps, want)
		}
	}
}

func TestConstructionDeduplicatesCapacities(t *testing.T) {
	r, err := New([]int{2, 2, 2}) // duplicates; S = 6
	if err != nil {
		t.Fatal(err)
	}
	twoK2 := 2 * r.K * r.K
	want := []int{twoK2, twoK2 + 2, twoK2 + 6}
	if len(r.Caps) != len(want) {
		t.Fatalf("caps = %v, want %v", r.Caps, want)
	}
	for i := range want {
		if r.Caps[i] != want[i] {
			t.Fatalf("caps = %v, want %v", r.Caps, want)
		}
	}
}

func TestVerifyBounds(t *testing.T) {
	for _, a := range [][]int{{2, 2, 2}, {2, 3, 3}, {1, 2, 2, 3}, {5, 3, 2, 4}} {
		r, err := New(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.VerifyBounds(); err != nil {
			t.Errorf("bounds violated for %v: %v", a, err)
		}
	}
}

func TestSolvePositiveInstance(t *testing.T) {
	r, err := New([]int{2, 2, 3, 3}) // {2,3} vs {2,3}
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solvable {
		t.Fatalf("instance {2,2,3,3} should be solvable, power %v > PMax %v", res.Power, r.PMax)
	}
	sum := 0
	for _, i := range res.Partition {
		sum += r.A[i]
	}
	if sum != r.S/2 {
		t.Fatalf("partition %v sums to %d, want %d", res.Partition, sum, r.S/2)
	}
	if _, err := r.ExtractPartition(res.Placement); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNegativeInstance(t *testing.T) {
	for _, a := range [][]int{{2, 3, 3}, {2, 2, 2}} {
		r, err := New(a)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Solvable {
			t.Fatalf("instance %v should not be solvable, power %v <= PMax %v", a, res.Power, r.PMax)
		}
		if res.Power <= r.PMax {
			t.Fatalf("instance %v: optimal power %v not above PMax %v", a, res.Power, r.PMax)
		}
	}
}

func TestExtractPartitionRejectsBadPlacements(t *testing.T) {
	r, err := New([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// No root server.
	p := tree.ReplicasOf(r.Tree)
	if _, err := r.ExtractPartition(p); err == nil {
		t.Error("missing root server accepted")
	}
	// Both A_0 and B_0 equipped.
	p.Set(r.Tree.Root(), 1)
	p.Set(r.ANodes[0], 1)
	p.Set(r.BNodes[0], 1)
	p.Set(r.BNodes[1], 1)
	p.Set(r.BNodes[2], 1)
	if _, err := r.ExtractPartition(p); err == nil {
		t.Error("double-equipped branch accepted")
	}
	// Valid structure but wrong subset sum: equip every A node.
	p2 := tree.ReplicasOf(r.Tree)
	p2.Set(r.Tree.Root(), 1)
	for _, ai := range r.ANodes {
		p2.Set(ai, 1)
	}
	if _, err := r.ExtractPartition(p2); err == nil {
		t.Error("subset summing to S accepted")
	}
}

func TestTwoPartitionExact(t *testing.T) {
	cases := []struct {
		a  []int
		ok bool
	}{
		{[]int{1, 1}, true},
		{[]int{3, 1}, false},
		{[]int{1, 2, 3}, true},
		{[]int{2, 2, 2}, false},
		{[]int{5, 5, 4, 6}, true},
		{[]int{1, 2}, false}, // odd sum
		{[]int{8, 1, 1, 2}, false},
		{[]int{2, 2, 3, 3}, true},
	}
	for _, c := range cases {
		got, ok := TwoPartitionExact(c.a)
		if ok != c.ok {
			t.Errorf("TwoPartitionExact(%v) ok = %v, want %v", c.a, ok, c.ok)
			continue
		}
		if ok {
			sum, total := 0, 0
			for _, v := range c.a {
				total += v
			}
			seen := map[int]bool{}
			for _, i := range got {
				if seen[i] {
					t.Errorf("TwoPartitionExact(%v) repeats index %d", c.a, i)
				}
				seen[i] = true
				sum += c.a[i]
			}
			if sum != total/2 {
				t.Errorf("TwoPartitionExact(%v) witness sums to %d", c.a, sum)
			}
		}
	}
}

// drawInstance produces a random valid reduction input: n integers with
// an even sum, each strictly below half the sum. ok is false when the
// sampler fails to produce one (the property test then skips the draw).
func drawInstance(src *rng.Source, n int) ([]int, bool) {
	for attempt := 0; attempt < 50; attempt++ {
		a := make([]int, n)
		sum := 0
		for i := range a {
			a[i] = 1 + src.IntN(6)
			sum += a[i]
		}
		if sum%2 != 0 {
			continue
		}
		ok := true
		for _, v := range a {
			if 2*v >= sum {
				ok = false
				break
			}
		}
		if ok {
			return a, true
		}
	}
	return nil, false
}

// Property: the reduction agrees with the exact 2-Partition oracle
// (the "iff" of Theorem 2) on random valid instances.
func TestQuickReductionEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 20)
		n := 3 + src.IntN(2) // 3 or 4 integers keep the DP small
		a, ok := drawInstance(src, n)
		if !ok {
			return true
		}
		r, err := New(a)
		if err != nil {
			t.Logf("seed %d: New(%v): %v", seed, a, err)
			return false
		}
		if err := r.VerifyBounds(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		res, err := r.Solve()
		if err != nil {
			t.Logf("seed %d: Solve: %v", seed, err)
			return false
		}
		_, want := TwoPartitionExact(r.A)
		if res.Solvable != want {
			t.Logf("seed %d: a=%v reduction=%v oracle=%v power=%v pmax=%v",
				seed, r.A, res.Solvable, want, res.Power, r.PMax)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
