package serve

import (
	"fmt"
	"runtime"
	"testing"

	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// BenchmarkServeTick measures one daemon drift tick end to end at the
// scale tier's default 10^4 nodes: apply a small edit batch, re-solve
// the dirty chains incrementally, and publish a fresh snapshot. This is
// the per-tick latency the /metrics histogram reports in production; it
// joins the stable 5x bench tier but not the zero-alloc gate (each tick
// allocates its published snapshot by design).
func BenchmarkServeTick(b *testing.B) {
	const n = 10_000
	t, err := tree.Generate(tree.ScalePreset(n), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	slots := clientSlots(t)
	edits := make([]Edit, 8)
	for i := range edits {
		s := slots[i*len(slots)/len(edits)]
		edits[i] = Edit{Node: s[0], Client: s[1]}
	}
	for _, workers := range []int{1, max(2, runtime.GOMAXPROCS(0))} {
		b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
			sess, err := NewSession("bench", t, nil,
				Options{W: 100, Cost: testCost, Workers: workers}, nil, nil, 0)
			if err != nil {
				b.Fatal(err)
			}
			tick := func(i int) {
				for k := range edits {
					edits[k].Reqs = 1 + (i+k)%2
				}
				if _, err := sess.Drift(edits, nil); err != nil {
					b.Fatal(err)
				}
			}
			for warm := 0; warm < 2; warm++ {
				tick(warm)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tick(i)
			}
		})
	}
}
