// Package serve turns the incremental solver stack into a long-lived
// placement service: the "Continuous Replica Placement Problem" of
// arXiv 1605.04069 as a daemon. A Server hosts named Sessions, each
// wrapping one loaded instance with retained, arena-backed solvers
// (MinCostSolver always; PowerDP when a power model is configured;
// QoSSolver when the instance carries constraints), and exposes an
// HTTP/JSON API to load instances, stream demand drifts, query
// placements, Pareto fronts and masked failure evaluations, and
// snapshot/restore instance+solver state across restarts. Per-tick
// SolveStats and latency histograms surface on a Prometheus-style
// text /metrics endpoint (arXiv 1912.10171's operational metric
// surface next to the paper's power objective).
//
// # Session and consistency model
//
// Every session separates a write side from a read side:
//
//   - The write side — the tree's mutable client demands, the three
//     retained solvers, the flow engine and the chained pre-existing
//     sets — is owned by at most one goroutine at a time, serialised
//     by the session's run lock. Drift submissions do not each take
//     that lock: concurrent Submit calls append their (pre-validated)
//     edits to the current pending batch, and the request that opened
//     the batch becomes the tick leader. The leader acquires the run
//     lock, takes whatever the batch has accumulated by then — every
//     submission that arrived while the previous tick was solving
//     coalesces here — applies all edits through the
//     generation-stamping tree mutators, and runs ONE incremental
//     re-solve per retained solver. Per-tick cost is therefore
//     proportional to the churn of the whole batch (the dirty
//     ancestor chains), not to the tree size and not to the number of
//     coalesced requests. Followers just wait for the leader to close
//     the batch; every drift response carries the tick that
//     incorporated its edits.
//
//   - The read side never touches the run lock: each completed tick
//     publishes an immutable Snapshot (placement modes, cost, power,
//     Pareto front, per-solver SolveStats, tick number) through an
//     atomically swapped pointer, so GET /placement, /front and
//     listing requests return instantly even while a tick is solving.
//     Reads are sequentially consistent with ticks: a snapshot always
//     reflects a prefix of the tick sequence, never a half-applied
//     batch.
//
// Flow evaluations (GET /eval) need a consistent view of the mutable
// demands, so they serialise with ticks on the run lock; they are the
// only reads that can block behind a solve.
//
// Edits are validated against the immutable tree dimensions before
// they join a batch: a malformed drift request is rejected with no
// lock held and no tree mutation, so it can never leave a solver
// mid-mutation or poison the edits of concurrently batched requests.
// Within one tick, edits from different requests targeting the same
// client apply in unspecified order; edits with disjoint targets are
// order-independent (each sets an absolute value), and the batched
// result is byte-identical to applying the union in a single call.
//
// A tick whose re-solve fails (e.g. drifted demand exceeding every
// capacity makes the instance infeasible) keeps the previous snapshot,
// reports the error to every request of the batch, and leaves the
// applied demands in place — they are the instance's current state.
// The solvers commit their incremental trackers before their error
// paths (see internal/core), so the next successful tick re-solves
// exactly the dirty chains accumulated since the last success.
//
// # Snapshots
//
// POST /instances/{id}/snapshot (and, when a data directory is
// configured, shutdown) serialises the session under the run lock: the
// instance (topology, current demands, constraints), the configuration,
// the chained pre-existing sets and the tick counter. Restoring builds
// a fresh session and re-solves cold; the dynamic programs are
// deterministic, so a restored session's placements are byte-identical
// to those of a never-restarted session with the same history, and a
// drift stream can resume where it left off.
//
// # Durability: the drift journal
//
// With a data directory configured, every instance is crash-consistent
// from the moment its load request is acknowledged: loading writes a
// base snapshot plus an empty per-instance write-ahead journal
// (<data>/<id>.wal), and every tick appends its frozen batch — tick
// number, edits, redraws — to the journal and fsyncs BEFORE any demand
// is applied. Journal frames carry a length prefix and a CRC32 of the
// body; a failed append fails the whole tick with nothing applied. The
// durability contract is exactly:
//
//   - A drift response (success or solver failure) means the tick is
//     journaled: a kill -9 at any later point replays it on restart.
//   - A crash mid-append tears the journal tail; recovery truncates
//     the torn frame and comes up at the previous tick — at most the
//     in-flight batch, whose submitters never got a response, is lost.
//
// Recovery restores the newest snapshot and replays every journaled
// tick past it through the normal drift path, so replayed state —
// placement, reused/new split, reconfiguration cost, chained sets,
// Pareto front — is byte-identical to an uninterrupted twin's, and
// failed ticks re-fail identically (their demand edits stay applied,
// exactly as they did live). Taking a snapshot truncates the journal
// under the same run-lock hold that captures the state (temp file +
// fsync + rename + directory fsync first), so a crash at any instant
// leaves either the old snapshot with the full journal or the new
// snapshot with an empty one. internal/exper.RunCrashChaos is the
// standing proof: seeded SIGKILLs inside drift bursts, each recovery
// byte-compared against a twin.
//
// # Overload and cancellation
//
// Sessions defend themselves rather than queue without bound. Each
// instance caps in-flight drift submissions (Options.MaxInflight,
// default DefaultMaxInflight): a submission beyond the cap is shed
// synchronously with ErrOverloaded (HTTP 429 + Retry-After) before it
// joins a batch, so a 10x burst costs the shed requests one atomic
// increment each and no memory. Options.TickTimeout arms a per-tick
// deadline: the retained solvers run under a context and abort at
// cooperative checkpoints, the tick fails with
// context.DeadlineExceeded (HTTP 503 + Retry-After), and the solvers'
// repairable-abort contract (see internal/core) guarantees the next
// tick re-solves the accumulated dirty state exactly. Close — used by
// DELETE — cancels the session context, so an in-flight solve aborts
// at its next checkpoint instead of pinning the instance; later
// submissions get ErrClosed (HTTP 410). Queue depth, shed counts,
// tick aborts and journal fsync latency all surface on /metrics.
package serve
