package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"replicatree/internal/tree"
)

// driftScript is a deterministic drift sequence used to compare a
// restored session against a never-restarted one.
func driftScript(tb testing.TB, s *Session, fromTick int) {
	tb.Helper()
	for i := 0; i < 3; i++ {
		_, err := s.Drift(nil, []Redraw{{Prob: 0.3, Seed: uint64(9000 + fromTick + i), ReqMin: 1, ReqMax: 5}})
		if err != nil {
			tb.Fatalf("scripted drift %d: %v", i, err)
		}
	}
}

// TestSnapshotRestoreDriftEquivalence is the restart-continuity
// contract: snapshot a mid-life session, restore it, drive both the
// original and the restored session through the same drift sequence,
// and require byte-identical published state at every step.
func TestSnapshotRestoreDriftEquivalence(t *testing.T) {
	tr, _ := genPowerTree(t, 31)
	cons := tree.NewConstraints(tr)
	cons.SetUniformQoS(tr, tr.Height()+2)
	opts := Options{
		W: 10, Cost: testCost, Power: testPower(t), PowerChange: 0.05,
		Chain: true, Workers: 1,
	}
	orig, err := NewSession("snap", tr, cons, opts, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	// Age the session so the snapshot captures drifted demands and a
	// chained pre-existing set, not the load-time state.
	driftScript(t, orig, 0)

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if restored.ID() != "snap" {
		t.Fatalf("restored id %q", restored.ID())
	}
	a, b := orig.Snapshot(), restored.Snapshot()
	if a.Tick != b.Tick {
		t.Fatalf("restored at tick %d, original at %d", b.Tick, a.Tick)
	}
	snapshotsEquivalent(t, "immediately after restore", a, b)

	// The futures must now be indistinguishable.
	driftScript(t, orig, 100)
	driftScript(t, restored, 100)
	a, b = orig.Snapshot(), restored.Snapshot()
	if a.Tick != b.Tick {
		t.Fatalf("post-restore ticks diverged: %d vs %d", a.Tick, b.Tick)
	}
	snapshotsEquivalent(t, "after post-restore drifts", a, b)
}

func TestSnapshotRejectsBadInput(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("{")); err == nil {
		t.Errorf("truncated snapshot accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Errorf("future version accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"version": 1, "id": "../evil"}`)); err == nil {
		t.Errorf("path-escaping id accepted")
	}
}

// TestServerSnapshotRoundTrip drives persistence through the HTTP API
// and Server.RestoreAll: snapshot via POST, restore into a second
// server, and check the restored instance serves the same placement.
func TestServerSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, ServerOptions{DataDir: dir})

	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "d1", "w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"chain": true,
		"gen":   map[string]any{"nodes": 200, "shape": "fat", "seed": 9},
	}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	for i := 0; i < 2; i++ {
		if code := doJSON(t, ts, "POST", "/instances/d1/drift", map[string]any{
			"redraw": map[string]any{"prob": 0.25, "seed": 70 + i},
		}, nil); code != http.StatusOK {
			t.Fatalf("drift: status %d", code)
		}
	}
	var saved struct {
		Instance string `json:"instance"`
		Path     string `json:"path"`
	}
	if code := doJSON(t, ts, "POST", "/instances/d1/snapshot", nil, &saved); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if saved.Path != filepath.Join(dir, "d1.snap.json") {
		t.Fatalf("snapshot path %q", saved.Path)
	}
	var before Snapshot
	if code := doJSON(t, ts, "GET", "/instances/d1/placement", nil, &before); code != http.StatusOK {
		t.Fatalf("placement: status %d", code)
	}

	srv2 := NewServer(ServerOptions{DataDir: dir})
	n, err := srv2.RestoreAll()
	if err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d instances, want 1", n)
	}
	after := srv2.Session("d1").Snapshot()
	if after.Tick != before.Tick {
		t.Fatalf("restored tick %d, want %d", after.Tick, before.Tick)
	}
	snapshotsEquivalent(t, "http round trip", &before, after)

	// DELETE must drop the on-disk snapshot so a restart cannot
	// resurrect the instance.
	if code := doJSON(t, ts, "DELETE", "/instances/d1", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if _, err := os.Stat(saved.Path); !os.IsNotExist(err) {
		t.Fatalf("snapshot file survived delete: %v", err)
	}
	srv3 := NewServer(ServerOptions{DataDir: dir})
	if n, err := srv3.RestoreAll(); err != nil || n != 0 {
		t.Fatalf("restore after delete: %d instances, err %v", n, err)
	}
}

// TestRestoreAllMissingDirIsFirstBoot pins that a daemon pointed at a
// fresh data directory comes up empty rather than failing.
func TestRestoreAllMissingDirIsFirstBoot(t *testing.T) {
	srv := NewServer(ServerOptions{DataDir: filepath.Join(t.TempDir(), "nonexistent")})
	if n, err := srv.RestoreAll(); err != nil || n != 0 {
		t.Fatalf("first boot: %d instances, err %v", n, err)
	}
}

// TestLoadSnapshotsRejectsCorrupt pins the all-or-nothing restore: one
// corrupt snapshot file fails the whole load.
func TestLoadSnapshotsRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, ServerOptions{DataDir: dir})
	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "ok1", "w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen": map[string]any{"nodes": 80, "seed": 4},
	}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	if code := doJSON(t, ts, "POST", "/instances/ok1/snapshot", nil, nil); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.snap.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{DataDir: dir})
	if _, err := srv.RestoreAll(); err == nil {
		t.Fatalf("restore over a corrupt snapshot succeeded")
	}
}
