package serve

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Run is the daemon entry point shared by cmd/replicaserved and
// `replicatool serve`: parse flags, optionally restore snapshots,
// listen, serve until SIGINT/SIGTERM, then drain in-flight requests
// and snapshot every session. The listen address is announced on
// stdout as "replicaserved listening on HOST:PORT" so scripts binding
// port 0 can discover the port.
func Run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	data := fs.String("data", "", "snapshot directory; enables POST /instances/{id}/snapshot, restore at startup and snapshot-on-shutdown")
	workers := fs.Int("workers", 1, "default DP workers per loaded instance (0 = all CPUs)")
	noRestore := fs.Bool("norestore", false, "skip restoring snapshots from -data at startup")
	maxNodes := fs.Int("maxnodes", 0, "largest accepted instance (0 = default cap)")
	tickTimeout := fs.Duration("ticktimeout", 0, "per-tick solve deadline; an overrunning tick aborts with 503 (0 = none)")
	maxInflight := fs.Int("maxinflight", 0, "per-instance cap on queued drift submissions before 429 shedding (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}

	srv := NewServer(ServerOptions{
		DataDir:     *data,
		Workers:     *workers,
		MaxNodes:    *maxNodes,
		TickTimeout: *tickTimeout,
		MaxInflight: *maxInflight,
	})
	if *data != "" && !*noRestore {
		n, err := srv.RestoreAll()
		if err != nil {
			return err
		}
		if n > 0 {
			fmt.Fprintf(stdout, "replicaserved restored %d instance(s) from %s\n", n, *data)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replicaserved listening on %s\n", ln.Addr())

	// Slow-client protection: a peer that stalls mid-headers or
	// mid-body must not pin a connection (and its read goroutine)
	// forever. The body timeout stays generous — inline mega-tree
	// instances are hundreds of megabytes on slow links — and no
	// write timeout is set because snapshot responses of such
	// instances are legitimately slow to stream out.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "replicaserved shutting down")

	// Drain in-flight requests (bounded), then snapshot the final,
	// tick-consistent state.
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "replicaserved: shutdown: %v\n", err)
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "replicaserved: serve: %v\n", serveErr)
	}
	if *data != "" {
		if err := srv.SnapshotAll(); err != nil {
			return fmt.Errorf("serve: final snapshot: %w", err)
		}
		fmt.Fprintf(stdout, "replicaserved snapshotted state to %s\n", *data)
	}
	return nil
}
