package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// costJSON and powerJSON are the wire/persistence forms of the cost
// and power models, shared by the load API and the snapshot format.
type costJSON struct {
	Create float64 `json:"create"`
	Delete float64 `json:"delete"`
}

type powerJSON struct {
	Caps   []int   `json:"caps"`
	Static float64 `json:"static"`
	Alpha  float64 `json:"alpha"`
	// Change is the uniform mode-change price of the modal
	// reconfiguration cost (create/delete reuse the simple model's
	// prices).
	Change float64 `json:"change,omitempty"`
}

// snapshotFile is the on-disk session state: configuration, the
// instance with its *current* demands and constraints, the existing
// sets the last solve ran against, and the tick counter. Placements
// are not stored: the dynamic programs are deterministic, so the
// restore's initial solve reproduces them byte-identically.
type snapshotFile struct {
	Version       int             `json:"version"`
	ID            string          `json:"id"`
	W             int             `json:"w"`
	Cost          costJSON        `json:"cost"`
	Power         *powerJSON      `json:"power,omitempty"`
	Chain         bool            `json:"chain,omitempty"`
	Workers       int             `json:"workers,omitempty"`
	Gen           *tree.GenConfig `json:"gen,omitempty"`
	Instance      json.RawMessage `json:"instance"`
	Existing      []int           `json:"existing"`
	PowerExisting []int           `json:"power_existing,omitempty"`
	Tick          uint64          `json:"tick"`
}

const snapshotVersion = 1

// capture serialises the session's durable state. Caller holds the
// run lock (no tick may be half-applied).
//
// The persisted existing sets are the ones the *last solve ran
// against*, not the chained sets of the next tick: the restore replays
// that solve, so everything it derived — placement, reused/new split,
// reconfiguration cost, Pareto front — comes back identical, and chain
// mode then swaps the restored placement forward exactly like the
// original session did. In chain mode the pre-tick set lives in the
// swapped-out scratch buffer.
func (s *Session) capture() (*snapshotFile, error) {
	var inst bytes.Buffer
	if err := tree.WriteInstanceJSON(&inst, s.t, s.cons); err != nil {
		return nil, fmt.Errorf("serve: snapshot instance: %w", err)
	}
	ex := s.exist
	if s.opts.Chain {
		ex = s.scratch
	}
	f := &snapshotFile{
		Version:  snapshotVersion,
		ID:       s.id,
		W:        s.opts.W,
		Cost:     costJSON{Create: s.opts.Cost.Create, Delete: s.opts.Cost.Delete},
		Chain:    s.opts.Chain,
		Workers:  s.opts.Workers,
		Gen:      s.opts.Gen,
		Instance: inst.Bytes(),
		Existing: modesOf(ex),
		Tick:     s.tick,
	}
	if s.opts.Power != nil {
		f.Power = &powerJSON{
			Caps:   append([]int(nil), s.opts.Power.Caps...),
			Static: s.opts.Power.Static,
			Alpha:  s.opts.Power.Alpha,
			Change: s.opts.PowerChange,
		}
		pex := s.powerEx
		if s.opts.Chain {
			pex = s.powerSc
		}
		f.PowerExisting = modesOf(pex)
	}
	return f, nil
}

// WriteSnapshot serialises the session to w as indented JSON, taking
// the run lock so the state is tick-consistent.
func (s *Session) WriteSnapshot(w io.Writer) error {
	s.run.Lock()
	f, err := s.capture()
	s.run.Unlock()
	if err != nil {
		return err
	}
	s.met.snapshots.Add(1)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// replicasFromModes rebuilds a replica set from persisted modes.
func replicasFromModes(modes []int, n int, what string) (*tree.Replicas, error) {
	if modes == nil {
		return nil, nil
	}
	if len(modes) != n {
		return nil, fmt.Errorf("serve: %s covers %d nodes, tree has %d", what, len(modes), n)
	}
	r := tree.NewReplicas(n)
	for j, m := range modes {
		if m < 0 || m > 255 {
			return nil, fmt.Errorf("serve: %s mode %d at node %d out of range", what, m, j)
		}
		if m != 0 {
			r.Set(j, uint8(m))
		}
	}
	return r, nil
}

// decodeSnapshot parses and version-checks a snapshot stream.
func decodeSnapshot(r io.Reader) (*snapshotFile, error) {
	var f snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("serve: decoding snapshot: %w", err)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d", f.Version)
	}
	if err := validateID(f.ID); err != nil {
		return nil, err
	}
	return &f, nil
}

// build rebuilds the snapshotted session, optionally letting mod
// adjust the restored Options (the server applies its operational
// settings — admission caps, tick deadlines — which snapshots
// deliberately do not persist).
func (f *snapshotFile) build(mod func(*Options)) (*Session, error) {
	t, cons, err := tree.ReadInstanceJSON(bytes.NewReader(f.Instance))
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot instance: %w", err)
	}
	opts := Options{
		W:       f.W,
		Cost:    cost.Simple{Create: f.Cost.Create, Delete: f.Cost.Delete},
		Chain:   f.Chain,
		Workers: f.Workers,
		Gen:     f.Gen,
	}
	if f.Power != nil {
		pm, err := power.New(f.Power.Caps, f.Power.Static, f.Power.Alpha)
		if err != nil {
			return nil, err
		}
		opts.Power = &pm
		opts.PowerChange = f.Power.Change
	}
	if mod != nil {
		mod(&opts)
	}
	ex, err := replicasFromModes(f.Existing, t.N(), "existing set")
	if err != nil {
		return nil, err
	}
	pex, err := replicasFromModes(f.PowerExisting, t.N(), "power existing set")
	if err != nil {
		return nil, err
	}
	return NewSession(f.ID, t, cons, opts, ex, pex, f.Tick)
}

// ReadSnapshot rebuilds a session from a snapshot written by
// WriteSnapshot. The restored session re-solves cold at load, so its
// published placement is byte-identical to the one the snapshotted
// session was serving.
func ReadSnapshot(r io.Reader) (*Session, error) {
	f, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	return f.build(nil)
}

// snapshotPath returns the session's snapshot file path under dir.
// Session ids are validated against a path-safe alphabet at load, so
// the join cannot escape dir.
func snapshotPath(dir, id string) string {
	return filepath.Join(dir, id+".snap.json")
}

// syncDir fsyncs a directory so a just-renamed file inside it survives
// a crash (the rename itself is only durable once the directory is).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// saveSnapshot writes the session's snapshot durably (temp file +
// fsync + rename + directory fsync) under dir and returns the final
// path. It holds the run lock across the whole write and, when the
// session journals drifts, resets the write-ahead log under the same
// hold: every journaled tick is covered by the new snapshot and no
// tick can append between the capture and the truncation, so a crash
// at any point leaves either the old snapshot plus the full log or the
// new snapshot plus an empty one.
func saveSnapshot(dir string, s *Session) (string, error) {
	path := snapshotPath(dir, s.id)
	s.run.Lock()
	defer s.run.Unlock()
	f, err := s.capture()
	if err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, "."+s.id+".snap-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	err = enc.Encode(f)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	if s.wal != nil {
		if err := s.wal.reset(); err != nil {
			return "", err
		}
	}
	s.met.snapshots.Add(1)
	return path, nil
}

// restoreSession rebuilds one session from its snapshot file and
// replays every journaled tick past the snapshot through the normal
// tick path, leaving the journal attached (untruncated) so subsequent
// ticks append after the replayed records. mod adjusts the restored
// Options; replay itself always runs without a tick deadline so a
// slow restore cannot diverge from the journaled history.
func restoreSession(dir, name string, mod func(*Options)) (*Session, error) {
	fh, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	f, err := decodeSnapshot(fh)
	fh.Close()
	if err != nil {
		return nil, fmt.Errorf("serve: restoring %s: %w", name, err)
	}
	var opts Options
	sess, err := f.build(func(o *Options) {
		if mod != nil {
			mod(o)
		}
		opts = *o
		o.TickTimeout = 0
	})
	if err != nil {
		return nil, fmt.Errorf("serve: restoring %s: %w", name, err)
	}

	wpath := walPath(dir, f.ID)
	recs, validLen, err := readWAL(wpath)
	if err != nil {
		return nil, fmt.Errorf("serve: restoring %s: %w", name, err)
	}
	for _, rec := range recs {
		if rec.Tick <= f.Tick {
			// Already covered by the snapshot (it was written after
			// these ticks but the log kept their records).
			continue
		}
		res, err := sess.Drift(rec.Edits, rec.Redraws)
		if err != nil && errors.Is(err, ErrBadDrift) {
			return nil, fmt.Errorf("serve: restoring %s: journaled tick %d invalid: %w", name, rec.Tick, err)
		}
		// Solver errors replay exactly as they happened live (the tick
		// failed then too, with its demands applied); keep going.
		if res == nil || res.Tick != rec.Tick {
			return nil, fmt.Errorf("serve: restoring %s: journal replay produced tick %v, record says %d",
				name, res, rec.Tick)
		}
	}
	sess.opts.TickTimeout = opts.TickTimeout

	w, err := openWAL(wpath, validLen)
	if err != nil {
		return nil, fmt.Errorf("serve: restoring %s: %w", name, err)
	}
	sess.attachWAL(w)
	return sess, nil
}

// loadSnapshots restores every *.snap.json under dir (journal replay
// included), returning the restored sessions. A file that fails to
// restore aborts the whole load: a daemon must not silently come up
// with half its instances.
func loadSnapshots(dir string, mod func(*Options)) ([]*Session, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Session
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".snap.json") || strings.HasPrefix(name, ".") {
			continue
		}
		sess, err := restoreSession(dir, name, mod)
		if err != nil {
			return nil, err
		}
		out = append(out, sess)
	}
	return out, nil
}
