package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"replicatree/internal/tree"
)

// doJSON issues one request against the test server and decodes the
// JSON response into out (when non-nil), returning the status code.
func doJSON(tb testing.TB, ts *httptest.Server, method, path string, body any, out any) int {
	tb.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case string:
		rd = strings.NewReader(b)
	default:
		buf, err := json.Marshal(b)
		if err != nil {
			tb.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		tb.Fatalf("request: %v", err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		tb.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatalf("read body: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			tb.Fatalf("%s %s: decoding %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

func newTestServer(tb testing.TB, opts ServerOptions) *httptest.Server {
	tb.Helper()
	ts := httptest.NewServer(NewServer(opts).Handler())
	tb.Cleanup(ts.Close)
	return ts
}

func TestHTTPLifecycle(t *testing.T) {
	ts := newTestServer(t, ServerOptions{})

	var info infoResponse
	code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "t1", "w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen": map[string]any{"nodes": 300, "shape": "fat", "seed": 7},
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	if info.ID != "t1" || info.Nodes != 300 || info.Tick != 0 || info.Servers == 0 {
		t.Fatalf("load response %+v", info)
	}

	var list struct {
		Instances []infoResponse `json:"instances"`
	}
	if code := doJSON(t, ts, "GET", "/instances", nil, &list); code != http.StatusOK || len(list.Instances) != 1 {
		t.Fatalf("list: status %d, %d instances", code, len(list.Instances))
	}
	if code := doJSON(t, ts, "GET", "/instances/t1", nil, &info); code != http.StatusOK || info.ID != "t1" {
		t.Fatalf("info: status %d, id %q", code, info.ID)
	}

	// Find an editable slot from the placement snapshot's tree shape:
	// drift the first client of the generated tree via the API.
	var sn Snapshot
	if code := doJSON(t, ts, "GET", "/instances/t1/placement", nil, &sn); code != http.StatusOK || sn.Tick != 0 {
		t.Fatalf("placement: status %d, tick %d", code, sn.Tick)
	}

	var res TickResult
	code = doJSON(t, ts, "POST", "/instances/t1/drift", map[string]any{
		"redraw": map[string]any{"prob": 0.2, "seed": 42},
	}, &res)
	if code != http.StatusOK || res.Tick != 1 {
		t.Fatalf("drift: status %d, result %+v", code, res)
	}
	if code := doJSON(t, ts, "GET", "/instances/t1/placement", nil, &sn); code != http.StatusOK || sn.Tick != 1 {
		t.Fatalf("placement after drift: status %d, tick %d", code, sn.Tick)
	}

	var ev EvalResult
	if code := doJSON(t, ts, "GET", "/instances/t1/eval?policy=closest", nil, &ev); code != http.StatusOK {
		t.Fatalf("eval: status %d", code)
	}
	if ev.Unserved != 0 || ev.Issued == 0 {
		t.Fatalf("eval result %+v", ev)
	}
	if code := doJSON(t, ts, "GET", "/instances/t1/eval?down=1,2", nil, &ev); code != http.StatusOK {
		t.Fatalf("masked eval: status %d", code)
	}
	if ev.DownNodes != 2 {
		t.Fatalf("masked eval %+v", ev)
	}

	// No power model loaded: the front is a 404.
	if code := doJSON(t, ts, "GET", "/instances/t1/front", nil, nil); code != http.StatusNotFound {
		t.Fatalf("front without power: status %d", code)
	}

	if code := doJSON(t, ts, "DELETE", "/instances/t1", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, ts, "GET", "/instances/t1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("info after delete: status %d", code)
	}
}

func TestHTTPInlineInstanceAndFront(t *testing.T) {
	ts := newTestServer(t, ServerOptions{})

	tr, _ := genPowerTree(t, 23)
	cons := tree.NewConstraints(tr)
	cons.SetUniformQoS(tr, tr.Height()+2)
	var inst bytes.Buffer
	if err := tree.WriteInstanceJSON(&inst, tr, cons); err != nil {
		t.Fatalf("WriteInstanceJSON: %v", err)
	}

	var info infoResponse
	code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "p1", "w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"power":    map[string]any{"caps": []int{5, 10}, "static": 0.5, "alpha": 2, "change": 0.05},
		"chain":    true,
		"instance": json.RawMessage(inst.Bytes()),
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	if !info.Power || !info.Constrained {
		t.Fatalf("load response %+v: want power and constraints", info)
	}

	var front struct {
		Tick  uint64 `json:"tick"`
		Front []struct {
			Cost  float64 `json:"Cost"`
			Power float64 `json:"Power"`
		} `json:"front"`
	}
	if code := doJSON(t, ts, "GET", "/instances/p1/front", nil, &front); code != http.StatusOK {
		t.Fatalf("front: status %d", code)
	}
	if len(front.Front) == 0 {
		t.Fatalf("empty pareto front")
	}

	// An inline-loaded instance has no generator bounds: a bare redraw
	// must be rejected, an explicit-bounds one accepted.
	if code := doJSON(t, ts, "POST", "/instances/p1/drift", map[string]any{
		"redraw": map[string]any{"prob": 0.5, "seed": 1},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("bare redraw on inline instance: status %d", code)
	}
	var res TickResult
	if code := doJSON(t, ts, "POST", "/instances/p1/drift", map[string]any{
		"redraw": map[string]any{"prob": 0.5, "seed": 1, "reqmin": 1, "reqmax": 5},
	}, &res); code != http.StatusOK || res.Tick != 1 {
		t.Fatalf("redraw drift: status %d, %+v", code, res)
	}
}

// TestHTTPErrorPaths covers the handler rejection matrix, and — as the
// lock-leak audit — checks after every rejection that the session still
// ticks cleanly.
func TestHTTPErrorPaths(t *testing.T) {
	ts := newTestServer(t, ServerOptions{})

	load := map[string]any{
		"id": "e1", "w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen": map[string]any{"nodes": 200, "shape": "fat", "seed": 3},
	}
	if code := doJSON(t, ts, "POST", "/instances", load, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"duplicate id", "POST", "/instances", load, http.StatusConflict},
		{"bad json", "POST", "/instances", `{"w": `, http.StatusBadRequest},
		{"unknown field", "POST", "/instances", `{"w": 10, "wat": 1}`, http.StatusBadRequest},
		{"instance and gen both unset", "POST", "/instances",
			map[string]any{"w": 10, "cost": map[string]float64{"create": 0.1}}, http.StatusBadRequest},
		{"bad shape", "POST", "/instances",
			map[string]any{"w": 10, "cost": map[string]float64{"create": 0.1},
				"gen": map[string]any{"nodes": 50, "shape": "blob"}}, http.StatusBadRequest},
		{"bad id", "POST", "/instances",
			map[string]any{"id": "a/b", "w": 10, "cost": map[string]float64{"create": 0.1},
				"gen": map[string]any{"nodes": 50}}, http.StatusBadRequest},
		{"infeasible", "POST", "/instances",
			map[string]any{"id": "inf", "w": 1, "cost": map[string]float64{"create": 0.1},
				"gen": map[string]any{"nodes": 50, "seed": 2, "reqmax": 6}}, http.StatusUnprocessableEntity},
		{"missing instance", "GET", "/instances/nope", nil, http.StatusNotFound},
		{"drift missing instance", "POST", "/instances/nope/drift", map[string]any{}, http.StatusNotFound},
		{"drift bad json", "POST", "/instances/e1/drift", `{`, http.StatusBadRequest},
		{"drift unknown field", "POST", "/instances/e1/drift", `{"editz": []}`, http.StatusBadRequest},
		{"drift bad node", "POST", "/instances/e1/drift",
			map[string]any{"edits": []map[string]int{{"node": 100000, "client": 0, "reqs": 1}}}, http.StatusBadRequest},
		{"drift bad reqs", "POST", "/instances/e1/drift",
			map[string]any{"edits": []map[string]int{{"node": 1, "client": 0, "reqs": -4}}}, http.StatusBadRequest},
		{"drift bad redraw prob", "POST", "/instances/e1/drift",
			map[string]any{"redraw": map[string]any{"prob": 2.0}}, http.StatusBadRequest},
		{"infeasible drift", "POST", "/instances/e1/drift",
			map[string]any{"edits": []map[string]int{{"node": firstClientNode(t, ts, "e1"), "client": 0, "reqs": 50}}},
			http.StatusUnprocessableEntity},
		{"eval bad policy", "GET", "/instances/e1/eval?policy=wat", nil, http.StatusBadRequest},
		{"eval bad id list", "GET", "/instances/e1/eval?down=1,x", nil, http.StatusBadRequest},
		{"eval out of range", "GET", "/instances/e1/eval?down=99999", nil, http.StatusBadRequest},
		{"snapshot disabled", "POST", "/instances/e1/snapshot", nil, http.StatusConflict},
		{"delete missing", "DELETE", "/instances/nope", nil, http.StatusNotFound},
		{"unmatched route", "GET", "/wat", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errBody struct {
				Error string `json:"error"`
			}
			out := any(&errBody)
			if tc.name == "unmatched route" {
				out = nil // ServeMux's own 404 is not JSON
			}
			if code := doJSON(t, ts, tc.method, tc.path, tc.body, out); code != tc.want {
				t.Fatalf("status %d, want %d (error %q)", code, tc.want, errBody.Error)
			}

			// Lock-leak audit: whatever just got rejected, the session
			// must still accept a clean drift immediately (a leaked run
			// or batch lock would deadlock or error here). The
			// infeasible case left a poisoned demand behind; the repair
			// edit below resets it either way.
			var res TickResult
			if code := doJSON(t, ts, "POST", "/instances/e1/drift", map[string]any{
				"edits": []map[string]int{{"node": firstClientNode(t, ts, "e1"), "client": 0, "reqs": 1}},
			}, &res); code != http.StatusOK {
				t.Fatalf("clean drift after rejection: status %d", code)
			}
		})
	}
}

// firstClientNode finds a node with an attached client by probing
// drifts over the API: it walks node ids upward until an edit on
// (node, 0) validates. The probe drift sets that client's demand to 1.
func firstClientNode(tb testing.TB, ts *httptest.Server, id string) int {
	tb.Helper()
	for node := 0; node < 100000; node++ {
		code := doJSON(tb, ts, "POST", "/instances/"+id+"/drift", map[string]any{
			"edits": []map[string]int{{"node": node, "client": 0, "reqs": 1}},
		}, nil)
		if code == http.StatusOK {
			return node
		}
	}
	tb.Fatalf("no client node found")
	return -1
}

func TestHTTPMetrics(t *testing.T) {
	ts := newTestServer(t, ServerOptions{})
	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "m1", "w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen": map[string]any{"nodes": 150, "shape": "high", "seed": 5},
	}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	for i := 0; i < 3; i++ {
		if code := doJSON(t, ts, "POST", "/instances/m1/drift", map[string]any{
			"redraw": map[string]any{"prob": 0.3, "seed": i},
		}, nil); code != http.StatusOK {
			t.Fatalf("drift %d: status %d", i, code)
		}
	}
	if code := doJSON(t, ts, "GET", "/instances/m1/eval", nil, nil); code != http.StatusOK {
		t.Fatalf("eval: status %d", code)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"replicaserved_instances 1",
		`replicaserved_ticks_total{instance="m1"} 3`,
		`replicaserved_drift_requests_total{instance="m1"} 3`,
		`replicaserved_evals_total{instance="m1"} 1`,
		`replicaserved_tables_recomputed_total{instance="m1",solver="mincost"}`,
		`replicaserved_tick_seconds_bucket{instance="m1",le="+Inf"} 3`,
		`replicaserved_tick_seconds_count{instance="m1"} 3`,
		`replicaserved_tick{instance="m1"} 3`,
		`replicaserved_servers{instance="m1",solver="mincost"}`,
		`replicaserved_http_requests_total{method="POST",path="POST /instances/{id}/drift",code="200"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", text)
	}
}

func TestHTTPGenShapes(t *testing.T) {
	ts := newTestServer(t, ServerOptions{})
	for i, shape := range []string{"fat", "high", "power", "scale"} {
		id := fmt.Sprintf("s%d", i)
		if code := doJSON(t, ts, "POST", "/instances", map[string]any{
			"id": id, "w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
			"gen": map[string]any{"nodes": 100, "shape": shape, "seed": 1},
		}, nil); code != http.StatusCreated {
			t.Errorf("shape %q: status %d", shape, code)
		}
	}
}

func TestMaxNodesCap(t *testing.T) {
	ts := newTestServer(t, ServerOptions{MaxNodes: 100})
	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen": map[string]any{"nodes": 101, "seed": 1},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized gen: status %d", code)
	}
	var info infoResponse
	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"w": 10, "cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen": map[string]any{"nodes": 100, "seed": 1},
	}, &info); code != http.StatusCreated {
		t.Fatalf("at-cap gen: status %d", code)
	}
	if info.ID != "i1" {
		t.Fatalf("auto id %q, want i1", info.ID)
	}
}
