package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// walRecords is a small deterministic record set for framing tests.
func walTestRecords() []walRecord {
	return []walRecord{
		{Tick: 1, Edits: []Edit{{Node: 3, Client: 0, Reqs: 5}}},
		{Tick: 2, Redraws: []Redraw{{Prob: 0.25, Seed: 7, ReqMin: 1, ReqMax: 9}}},
		{Tick: 3, Edits: []Edit{{Node: 1, Client: 1, Reqs: 0}, {Node: 2, Client: 0, Reqs: 8}}},
	}
}

func appendAll(t *testing.T, w *wal, recs []walRecord) {
	t.Helper()
	for i := range recs {
		if _, err := w.append(&recs[i]); err != nil {
			t.Fatalf("append record %d: %v", i, err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	w, err := openWAL(path, -1)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	want := walTestRecords()
	appendAll(t, w, want)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, validLen, err := readWAL(path)
	if err != nil {
		t.Fatalf("readWAL: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if validLen != fi.Size() {
		t.Fatalf("valid prefix %d bytes, file has %d", validLen, fi.Size())
	}
}

func TestWALMissingFileIsEmptyLog(t *testing.T) {
	recs, validLen, err := readWAL(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil || recs != nil || validLen != 0 {
		t.Fatalf("missing file: recs=%v len=%d err=%v, want empty", recs, validLen, err)
	}
}

// TestWALTornTail truncates the journal at every byte boundary inside
// the last record: each prefix must decode to exactly the whole
// records it contains, and re-opening with the reported valid length
// must support appending a fresh record after the cut.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.wal")
	w, err := openWAL(path, -1)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	recs := walTestRecords()
	appendAll(t, w, recs)
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// twoLen is where record 3's frame starts: the valid prefix of any
	// file cut inside that frame.
	tmp := filepath.Join(dir, "prefix.wal")
	if err := os.WriteFile(tmp, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	_, twoLen, err := readWAL(tmp)
	if err != nil {
		t.Fatal(err)
	}

	for cut := twoLen; cut < int64(len(data)); cut++ {
		if err := os.WriteFile(tmp, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, validLen, err := readWAL(tmp)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut %d: decoded %d records, want 2", cut, len(got))
		}
		if validLen != twoLen {
			t.Fatalf("cut %d: valid prefix %d, want %d", cut, validLen, twoLen)
		}
	}

	// Recovery truncates the torn tail and appends cleanly after it.
	if err := os.WriteFile(tmp, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, validLen, err := readWAL(tmp)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := openWAL(tmp, validLen)
	if err != nil {
		t.Fatalf("openWAL after tear: %v", err)
	}
	extra := walRecord{Tick: 3, Edits: []Edit{{Node: 9, Client: 0, Reqs: 1}}}
	if _, err := w2.append(&extra); err != nil {
		t.Fatalf("append after tear: %v", err)
	}
	w2.Close()
	got, _, err := readWAL(tmp)
	if err != nil {
		t.Fatal(err)
	}
	want := append(recs[:2:2], extra)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after tear+append:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestWALCRCMismatchEndsLog flips one body byte of the last record: the
// frame fails its checksum and the log ends at the previous record.
func TestWALCRCMismatchEndsLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.wal")
	w, err := openWAL(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, walTestRecords())
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, validLen, err := readWAL(path)
	if err != nil {
		t.Fatalf("readWAL: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d records past a bad checksum, want 2", len(got))
	}
	if validLen >= int64(len(data)) {
		t.Fatalf("valid prefix %d includes the corrupt record", validLen)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.wal")
	w, err := openWAL(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendAll(t, w, walTestRecords())
	if err := w.reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if recs, validLen, err := readWAL(path); err != nil || len(recs) != 0 || validLen != 0 {
		t.Fatalf("after reset: recs=%v len=%d err=%v, want empty", recs, validLen, err)
	}
	rec := walRecord{Tick: 4}
	if _, err := w.append(&rec); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if recs, _, err := readWAL(path); err != nil || len(recs) != 1 || recs[0].Tick != 4 {
		t.Fatalf("after reset+append: recs=%v err=%v", recs, err)
	}
}
