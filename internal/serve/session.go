package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// maxReq bounds per-edit request counts exactly like the solvers bound
// the capacity W: values whose int32 DP encoding could wrap are
// rejected at the API edge.
const maxReq = math.MaxInt32 / 4

// Options configures one session. W and Cost drive the always-present
// MinCost solver; a non-nil Power model additionally retains a PowerDP
// (serving /front and the min-power placement); a QoSSolver is retained
// whenever the loaded instance carries constraints.
type Options struct {
	// W is the uniform server capacity of the MinCost (and QoS)
	// problems.
	W int
	// Cost prices the MinCost reconfiguration (Equation (2)); its
	// Create/Delete prices are reused, uniformly per mode, for the
	// power DP's modal cost.
	Cost cost.Simple
	// Power, when non-nil, enables the MinPower-BoundedCost solver.
	Power *power.Model
	// PowerChange is the uniform mode-change price of the modal cost
	// (only read with Power set).
	PowerChange float64
	// Chain, when true, feeds each tick's placement back as the next
	// tick's pre-existing set (the continuous replica placement mode);
	// false keeps the load-time pre-existing set for every tick.
	Chain bool
	// Workers selects the solvers' subtree-parallel DP worker count
	// (0 = all CPUs, 1 = sequential). Results are bit-identical for
	// every value.
	Workers int
	// Gen optionally retains the generator bounds of a gen-loaded
	// instance so redraw drifts can draw demands without explicit
	// bounds.
	Gen *tree.GenConfig
	// TickTimeout, when positive, bounds each tick's re-solve: a tick
	// that exceeds it aborts at the solvers' next cooperative
	// checkpoint and fails with context.DeadlineExceeded. The batch's
	// demand edits stay applied (they are the instance's current
	// state); the next tick re-solves them on top of whatever the
	// aborted solve left uncommitted, landing on the same placement an
	// uninterrupted solve would have produced.
	TickTimeout time.Duration
	// MaxInflight caps concurrently queued drift submissions (leader
	// plus followers plus arrivals): submissions past the cap are shed
	// with ErrOverloaded instead of growing the pending batch without
	// bound. 0 selects DefaultMaxInflight.
	MaxInflight int
}

// DefaultMaxInflight is the drift admission cap applied when
// Options.MaxInflight is zero.
const DefaultMaxInflight = 256

// Edit sets the absolute request count of one client: client index
// Client of node Node issues Reqs requests from this tick on.
type Edit struct {
	Node   int `json:"node"`
	Client int `json:"client"`
	Reqs   int `json:"reqs"`
}

// Redraw is the randomised drift form: every client's demand is
// redrawn with probability Prob, uniformly in [ReqMin, ReqMax], from
// the deterministic stream seeded by Seed. Zero ReqMin/ReqMax fall
// back to the session's generator bounds (gen-loaded instances only).
type Redraw struct {
	Prob   float64 `json:"prob"`
	Seed   uint64  `json:"seed"`
	ReqMin int     `json:"reqmin,omitempty"`
	ReqMax int     `json:"reqmax,omitempty"`
}

// TickStats bundles the per-solver SolveStats of one tick.
type TickStats struct {
	MinCost core.SolveStats  `json:"mincost"`
	Power   *core.SolveStats `json:"power,omitempty"`
	QoS     *core.SolveStats `json:"qos,omitempty"`
}

// PowerView is the power side of a snapshot: the min-power placement
// of the tick and the full cost/power Pareto front.
type PowerView struct {
	Modes   []int              `json:"modes"`
	Servers int                `json:"servers"`
	Cost    float64            `json:"cost"`
	Power   float64            `json:"power"`
	Front   []core.ParetoPoint `json:"front"`
}

// QoSView is the constrained-counting side of a snapshot.
type QoSView struct {
	Modes   []int `json:"modes"`
	Servers int   `json:"servers"`
}

// Snapshot is the immutable read model published after every
// successful tick. Readers obtain it lock-free; all fields are
// effectively frozen after publication.
type Snapshot struct {
	Tick    uint64     `json:"tick"`
	Modes   []int      `json:"modes"`
	Servers int        `json:"servers"`
	Reused  int        `json:"reused"`
	New     int        `json:"new"`
	Cost    float64    `json:"cost"`
	Power   *PowerView `json:"power,omitempty"`
	QoS     *QoSView   `json:"qos,omitempty"`
	Stats   TickStats  `json:"stats"`
	Changed int        `json:"changed"`
	TookNS  int64      `json:"took_ns"`
}

// TickResult is what one drift submission learns about the tick that
// incorporated its edits.
type TickResult struct {
	Tick     uint64    `json:"tick"`
	Requests int       `json:"requests"` // drift requests coalesced into this tick
	Changed  int       `json:"changed"`  // edits that changed a demand value
	Servers  int       `json:"servers"`
	Cost     float64   `json:"cost"`
	TookNS   int64     `json:"took_ns"`
	Stats    TickStats `json:"stats"`
}

// batch accumulates the drift submissions of one upcoming tick. Edits
// are appended under the batcher lock while the batch is pending; the
// leader freezes it by unpending it, and closes done when the tick has
// completed (b.snap/b.err are immutable from then on).
type batch struct {
	edits    []Edit
	redraws  []Redraw
	requests int
	done     chan struct{}
	snap     *Snapshot
	changed  int
	tick     uint64
	err      error
}

// Session is one loaded instance with its retained solvers. See the
// package documentation for the consistency model.
type Session struct {
	id   string
	opts Options
	t    *tree.Tree
	cons *tree.Constraints

	// Write side, guarded by run (tick leaders, evals, snapshots).
	run     sync.Mutex
	mc      *core.MinCostSolver
	pdp     *core.PowerDP
	qs      *core.QoSSolver
	eng     *tree.Engine
	modal   cost.Modal
	tick    uint64
	cur     *tree.Replicas // latest MinCost placement (one of the two buffers below)
	exist   *tree.Replicas // pre-existing set of the next tick
	scratch *tree.Replicas
	powerEx *tree.Replicas
	powerSc *tree.Replicas
	qosBuf  *tree.Replicas
	front   []core.ParetoPoint // FrontInto scratch

	// wal, when non-nil, journals every frozen batch durably before
	// the leader applies it (guarded by run). Attached by the server
	// when a data directory is configured.
	wal *wal

	// baseCtx is the session's lifetime context: Close cancels it,
	// aborting any in-flight solve at its next cooperative checkpoint.
	// Per-tick deadlines derive from it.
	baseCtx context.Context
	stop    context.CancelFunc
	closed  atomic.Bool

	// Batcher state, guarded by bmu (never held while solving).
	bmu     sync.Mutex
	pending *batch

	// inflight counts drift submissions between admission and
	// response; the admission cap sheds past Options.MaxInflight.
	inflight atomic.Int64

	snap    atomic.Pointer[Snapshot]
	lastErr atomic.Pointer[string]
	met     sessionMetrics
}

// NewSession builds a session over t (with optional constraints),
// validates the configuration and pre-existing sets, and runs the
// initial solve so the first snapshot is published at the given tick
// number (0 for fresh loads; restores pass the persisted counter).
func NewSession(id string, t *tree.Tree, cons *tree.Constraints, opts Options, existing, powerExisting *tree.Replicas, tick uint64) (*Session, error) {
	if opts.W <= 0 {
		return nil, fmt.Errorf("serve: non-positive capacity w=%d", opts.W)
	}
	if opts.W > maxReq {
		return nil, fmt.Errorf("serve: capacity w=%d too large", opts.W)
	}
	if err := opts.Cost.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxInflight < 0 {
		return nil, fmt.Errorf("serve: negative drift admission cap %d", opts.MaxInflight)
	}
	n := t.N()
	s := &Session{id: id, opts: opts, t: t, cons: cons, tick: tick}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.exist = tree.NewReplicas(n)
	if existing != nil {
		if existing.N() != n {
			return nil, fmt.Errorf("serve: existing set covers %d nodes, tree has %d", existing.N(), n)
		}
		s.exist = existing.Clone()
	}
	s.scratch = tree.NewReplicas(n)
	s.mc = core.NewMinCostSolver(t)
	s.mc.SetWorkers(opts.Workers)
	if opts.Power != nil {
		if err := opts.Power.Validate(); err != nil {
			return nil, err
		}
		if opts.PowerChange < 0 {
			return nil, fmt.Errorf("serve: negative mode-change price %v", opts.PowerChange)
		}
		M := len(opts.Power.Caps)
		s.modal = cost.UniformModal(M, opts.Cost.Create, opts.Cost.Delete, opts.PowerChange)
		s.powerEx = tree.NewReplicas(n)
		if powerExisting != nil {
			if powerExisting.N() != n {
				return nil, fmt.Errorf("serve: power existing set covers %d nodes, tree has %d", powerExisting.N(), n)
			}
			for j := 0; j < n; j++ {
				if m := powerExisting.Mode(j); m != tree.NoMode && int(m) > M {
					return nil, fmt.Errorf("serve: power existing mode %d at node %d exceeds M=%d", m, j, M)
				}
			}
			s.powerEx = powerExisting.Clone()
		}
		s.powerSc = tree.NewReplicas(n)
		s.pdp = core.NewPowerDP(t)
		s.pdp.SetWorkers(opts.Workers)
	}
	if cons != nil {
		if err := cons.Validate(t); err != nil {
			return nil, err
		}
		s.qosBuf = tree.NewReplicas(n)
		s.qs = core.NewQoSSolver(t)
		s.qs.SetWorkers(opts.Workers)
	}
	s.eng = tree.NewEngine(t)

	s.run.Lock()
	defer s.run.Unlock()
	snap, err := s.solveLocked(0, tick, false)
	if err != nil {
		return nil, fmt.Errorf("serve: initial solve: %w", err)
	}
	s.publish(snap)
	return s, nil
}

// ID returns the session's instance id.
func (s *Session) ID() string { return s.id }

// Tree returns the session's tree. The caller must not mutate demands
// directly; all mutation goes through Drift.
func (s *Session) Tree() *tree.Tree { return s.t }

// Options returns the session's configuration.
func (s *Session) Options() Options { return s.opts }

// Constrained reports whether the instance carries QoS/bandwidth
// constraints (and therefore a retained QoSSolver).
func (s *Session) Constrained() bool { return s.qs != nil }

// hasSolver reports whether the solver slot si (solverMinCost...) is
// retained by this session; used by the metrics renderer.
func (s *Session) hasSolver(si int) bool {
	switch si {
	case solverMinCost:
		return true
	case solverPower:
		return s.pdp != nil
	case solverQoS:
		return s.qs != nil
	}
	return false
}

// Snapshot returns the latest published snapshot. It never blocks,
// whatever the solve loop is doing.
func (s *Session) Snapshot() *Snapshot { return s.snap.Load() }

// snapshot is the unexported alias the metrics renderer uses.
func (s *Session) snapshot() *Snapshot { return s.snap.Load() }

// LastErr returns the error string of the most recent failed tick, or
// "" after a successful one.
func (s *Session) LastErr() string {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return ""
}

// validateEdits checks every edit against the immutable tree
// dimensions without taking any lock: node and client indices must be
// in range and the value non-negative and bounded. Demand values are
// deliberately not read here (they mutate concurrently).
func (s *Session) validateEdits(edits []Edit) error {
	n := s.t.N()
	for i, e := range edits {
		if e.Node < 0 || e.Node >= n {
			return fmt.Errorf("serve: edit %d: node %d out of range [0,%d)", i, e.Node, n)
		}
		if c := len(s.t.Clients(e.Node)); e.Client < 0 || e.Client >= c {
			return fmt.Errorf("serve: edit %d: node %d has %d clients, got index %d", i, e.Node, c, e.Client)
		}
		if e.Reqs < 0 || e.Reqs > maxReq {
			return fmt.Errorf("serve: edit %d: request count %d out of [0,%d]", i, e.Reqs, maxReq)
		}
	}
	return nil
}

// validateRedraws resolves and checks the redraw bounds.
func (s *Session) validateRedraws(redraws []Redraw) ([]Redraw, error) {
	out := make([]Redraw, 0, len(redraws))
	for i, r := range redraws {
		if r.Prob < 0 || r.Prob > 1 || math.IsNaN(r.Prob) {
			return nil, fmt.Errorf("serve: redraw %d: probability %v out of [0,1]", i, r.Prob)
		}
		if r.ReqMin == 0 && r.ReqMax == 0 {
			if s.opts.Gen == nil {
				return nil, fmt.Errorf("serve: redraw %d: no request bounds and the instance was not generator-loaded; set reqmin/reqmax", i)
			}
			r.ReqMin, r.ReqMax = s.opts.Gen.ReqMin, s.opts.Gen.ReqMax
		}
		if r.ReqMin < 0 || r.ReqMax < r.ReqMin || r.ReqMax > maxReq {
			return nil, fmt.Errorf("serve: redraw %d: bounds [%d,%d] invalid", i, r.ReqMin, r.ReqMax)
		}
		out = append(out, r)
	}
	return out, nil
}

// ErrBadDrift wraps every drift-validation rejection, so transports
// can map it to a client error (HTTP 400) rather than a server one.
var ErrBadDrift = errors.New("invalid drift")

// ErrClosed reports an operation against a session that Close has torn
// down (HTTP 410): the instance was deleted, possibly aborting the
// very tick the request was waiting on.
var ErrClosed = errors.New("serve: instance closed")

// ErrOverloaded reports a drift submission shed by admission control
// (HTTP 429 with Retry-After): the instance already has MaxInflight
// submissions queued behind its solver.
var ErrOverloaded = errors.New("serve: instance overloaded")

// maxInflight resolves the session's drift admission cap.
func (s *Session) maxInflight() int64 {
	if s.opts.MaxInflight > 0 {
		return int64(s.opts.MaxInflight)
	}
	return DefaultMaxInflight
}

// QueueDepth reports how many drift submissions are currently queued
// or solving (the admission-control gauge).
func (s *Session) QueueDepth() int64 { return s.inflight.Load() }

// Drift submits a batch of demand edits and blocks until the tick that
// incorporated them completes, returning that tick's result. Edits are
// validated before they join the shared batch: an invalid submission
// returns ErrBadDrift-wrapped without mutating anything and without
// affecting concurrently submitted batches. Concurrent Drift calls
// coalesce: all submissions that arrive while a tick is solving are
// applied together by the next tick's single incremental re-solve.
func (s *Session) Drift(edits []Edit, redraws []Redraw) (*TickResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := s.validateEdits(edits); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadDrift, err)
	}
	redraws, err := s.validateRedraws(redraws)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadDrift, err)
	}

	// Admission: a submission past the in-flight cap is shed before it
	// can join (and grow) the pending batch, bounding both queue memory
	// and the latency of every admitted request behind the solver.
	depth := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if cap := s.maxInflight(); depth > cap {
		s.met.shed.Add(1)
		return nil, fmt.Errorf("%w: %d drift submissions in flight (cap %d)", ErrOverloaded, depth, cap)
	}

	s.bmu.Lock()
	b := s.pending
	leader := b == nil
	if leader {
		b = &batch{done: make(chan struct{})}
		s.pending = b
	}
	b.edits = append(b.edits, edits...)
	b.redraws = append(b.redraws, redraws...)
	b.requests++
	s.bmu.Unlock()

	if leader {
		s.runTick(b)
	} else {
		<-b.done
	}
	res := &TickResult{Tick: b.tick, Requests: b.requests, Changed: b.changed}
	if b.err != nil {
		return res, b.err
	}
	res.Servers = b.snap.Servers
	res.Cost = b.snap.Cost
	res.TookNS = b.snap.TookNS
	res.Stats = b.snap.Stats
	return res, nil
}

// runTick executes one tick for batch b: freeze the batch, apply its
// edits, re-solve incrementally, publish. Always closes b.done.
func (s *Session) runTick(b *batch) {
	s.run.Lock()
	defer s.run.Unlock()
	defer close(b.done)
	// A panic below still unlocks and closes via the defers above; make
	// sure waiting followers then see an error instead of a nil snap.
	// (Registered last, so it runs before close.)
	defer func() {
		if b.err == nil && b.snap == nil {
			b.err = errors.New("serve: tick aborted")
		}
	}()

	// Freeze: from here arrivals open a new batch (its leader is
	// already queued behind us on the run lock).
	s.bmu.Lock()
	s.pending = nil
	s.bmu.Unlock()

	if s.closed.Load() {
		b.err = ErrClosed
		return
	}

	start := time.Now()

	// Journal the frozen batch before any demand mutation: once the
	// fsync returns, a crash at ANY later point replays this tick from
	// the log. On journal failure the tick fails without applying
	// anything — an unjournaled mutation would be lost by a crash.
	if s.wal != nil {
		walStart := time.Now()
		n, err := s.wal.append(&walRecord{Tick: s.tick + 1, Edits: b.edits, Redraws: b.redraws})
		if err != nil {
			s.met.walFailures.Add(1)
			msg := err.Error()
			s.lastErr.Store(&msg)
			b.err = err
			return
		}
		s.met.walFsyncSeconds.observe(time.Since(walStart))
		s.met.walRecords.Add(1)
		s.met.walBytes.Add(uint64(n))
	}

	changed := 0
	for _, e := range b.edits {
		if s.t.SetDemand(e.Node, e.Client, e.Reqs) {
			changed++
		}
	}
	for _, r := range b.redraws {
		cfg := tree.GenConfig{ReqMin: r.ReqMin, ReqMax: r.ReqMax}
		changed += tree.DriftRequests(s.t, cfg, r.Prob, rng.New(r.Seed))
	}
	b.changed = changed

	s.tick++
	b.tick = s.tick
	snap, err := s.solveLocked(changed, b.tick, true)
	took := time.Since(start)

	s.met.ticks.Add(1)
	s.met.driftRequests.Add(uint64(b.requests))
	s.met.driftEdits.Add(uint64(len(b.edits)))
	s.met.driftChanged.Add(uint64(changed))
	s.met.tickSeconds.observe(took)
	if err != nil {
		s.met.tickFailures.Add(1)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.met.tickAborts.Add(1)
		}
		if s.closed.Load() && errors.Is(err, context.Canceled) {
			// The solve was aborted by Close (instance deleted), not by
			// a deadline; tell the waiters the instance is gone.
			err = fmt.Errorf("%w: %w", ErrClosed, err)
		}
		msg := err.Error()
		s.lastErr.Store(&msg)
		b.err = err
		return
	}
	s.lastErr.Store(nil)
	snap.TookNS = took.Nanoseconds()
	s.publish(snap)
	b.snap = snap
}

// solveLocked runs every retained solver once (incrementally) and
// builds the resulting snapshot. Caller holds the run lock. On error
// the session's buffers are unchanged except for solver-internal
// state, which the solvers themselves keep retry-safe (their trackers
// commit before every error path; see internal/core).
//
// deadline arms Options.TickTimeout: drift ticks opt in, the initial
// load solve does not (the deadline protects the tick loop from
// overrunning batches; construction is a synchronous one-off the
// client waits on, and journal replay already runs without it).
func (s *Session) solveLocked(changed int, tick uint64, deadline bool) (*Snapshot, error) {
	ctx, cancel := s.baseCtx, func() {}
	if deadline && s.opts.TickTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.opts.TickTimeout)
	}
	defer cancel()
	s.mc.SetContext(ctx)
	if s.pdp != nil {
		s.pdp.SetContext(ctx)
	}
	if s.qs != nil {
		s.qs.SetContext(ctx)
	}

	res, err := s.mc.SolveInto(s.exist, s.opts.W, s.opts.Cost, s.scratch)
	if err != nil {
		return nil, fmt.Errorf("mincost: %w", err)
	}
	st := TickStats{MinCost: s.mc.Stats()}
	s.cur = s.scratch
	if s.opts.Chain {
		// The new placement becomes the next tick's pre-existing set;
		// the old set's buffer becomes the next scratch.
		s.exist, s.scratch = s.scratch, s.exist
	}

	snap := &Snapshot{
		Tick:    tick,
		Modes:   modesOf(s.cur),
		Servers: res.Servers,
		Reused:  res.Reused,
		New:     res.New,
		Cost:    res.Cost,
		Changed: changed,
	}

	if s.pdp != nil {
		ps, err := s.pdp.Solve(core.PowerProblem{
			Existing: s.powerEx,
			Power:    *s.opts.Power,
			Cost:     s.modal,
		})
		if err != nil {
			return nil, fmt.Errorf("power: %w", err)
		}
		pres, ok := ps.BestInto(math.Inf(1), s.powerSc)
		if !ok {
			return nil, fmt.Errorf("power: %w", core.ErrInfeasible)
		}
		s.front = ps.FrontInto(s.front[:0])
		pst := s.pdp.Stats()
		st.Power = &pst
		pv := &PowerView{
			Modes:   modesOf(s.powerSc),
			Servers: s.powerSc.Count(),
			Cost:    pres.Cost,
			Power:   pres.Power,
			Front:   append([]core.ParetoPoint(nil), s.front...),
		}
		snap.Power = pv
		if s.opts.Chain {
			s.powerEx, s.powerSc = s.powerSc, s.powerEx
		}
	}

	if s.qs != nil {
		qres, err := s.qs.Solve(s.opts.W, s.cons, s.qosBuf)
		if err != nil {
			return nil, fmt.Errorf("qos: %w", err)
		}
		qst := s.qs.Stats()
		st.QoS = &qst
		snap.QoS = &QoSView{Modes: modesOf(qres), Servers: qres.Count()}
	}

	snap.Stats = st
	return snap, nil
}

// Close tears the session down: it cancels the lifetime context —
// aborting any in-flight solve at its next cooperative checkpoint —
// waits for the tick leader to drain, closes the journal and releases
// the solvers' worker pools. Drift and Eval fail with ErrClosed from
// the moment Close starts; a tick aborted by Close reports ErrClosed
// to every waiter of its batch. Close is idempotent and safe to call
// concurrently with any session operation.
func (s *Session) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.stop()
	s.run.Lock()
	defer s.run.Unlock()
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	// SetWorkers(1) tears down the wave pools' goroutines (see
	// waveSched.setWorkers); a fresh nil context detaches the solvers
	// from the cancelled lifetime context.
	s.mc.SetWorkers(1)
	s.mc.SetContext(nil)
	if s.pdp != nil {
		s.pdp.SetWorkers(1)
		s.pdp.SetContext(nil)
	}
	if s.qs != nil {
		s.qs.SetWorkers(1)
		s.qs.SetContext(nil)
	}
}

// attachWAL installs an open journal as the session's write-ahead log;
// every subsequent tick journals its batch before applying it.
func (s *Session) attachWAL(w *wal) {
	s.run.Lock()
	s.wal = w
	s.run.Unlock()
}

// publish installs snap as the session's read model and folds its
// stats into the cumulative metrics.
func (s *Session) publish(snap *Snapshot) {
	s.met.recomputed[solverMinCost].Add(uint64(snap.Stats.MinCost.Recomputed))
	s.met.mergeCells.Add(uint64(snap.Stats.MinCost.MergeCellsScanned))
	s.met.foldReplayed.Add(uint64(snap.Stats.MinCost.FoldSuffixReplayed))
	s.met.maskedNodes.Add(uint64(snap.Stats.MinCost.MaskedNodes))
	if p := snap.Stats.Power; p != nil {
		s.met.recomputed[solverPower].Add(uint64(p.Recomputed))
		s.met.rootRepriced.Add(uint64(p.RootCellsRepriced))
		s.met.mergeCells.Add(uint64(p.MergeCellsScanned))
		s.met.foldReplayed.Add(uint64(p.FoldSuffixReplayed))
	}
	if q := snap.Stats.QoS; q != nil {
		s.met.recomputed[solverQoS].Add(uint64(q.Recomputed))
		s.met.mergeCells.Add(uint64(q.MergeCellsScanned))
		s.met.foldReplayed.Add(uint64(q.FoldSuffixReplayed))
	}
	s.snap.Store(snap)
}

// modesOf copies a replica set's per-node modes into a fresh []int
// (JSON-friendly; uint8 slices would serialise as base64).
func modesOf(r *tree.Replicas) []int {
	out := make([]int, r.N())
	for j := range out {
		out[j] = int(r.Mode(j))
	}
	return out
}

// EvalResult aggregates one masked flow evaluation of the current
// placement (GET /eval). Per-node arrays are omitted deliberately:
// at mega-tree scale they dwarf every other response.
type EvalResult struct {
	Tick         uint64 `json:"tick"`
	Policy       string `json:"policy"`
	Issued       int    `json:"issued"`
	Served       int    `json:"served"`
	Unserved     int    `json:"unserved"`
	FailUnserved int    `json:"fail_unserved"`
	MaxLoad      int    `json:"max_load"`
	Servers      int    `json:"servers"`
	DownNodes    int    `json:"down_nodes"`
	CutLinks     int    `json:"cut_links"`
}

// evalMask is the throwaway FaultMask built from an eval request.
type evalMask struct{ node, link []bool }

func (m *evalMask) NodeUp(j int) bool { return !m.node[j] }
func (m *evalMask) LinkUp(j int) bool { return !m.link[j] }

// Eval evaluates the current placement's request flows under the given
// policy with the given nodes down and links cut. It serialises with
// ticks on the run lock (it must read a consistent demand vector), so
// it can block behind a solve; placement reads that don't need flows
// should use Snapshot instead.
func (s *Session) Eval(policy tree.Policy, down, cuts []int) (*EvalResult, error) {
	n := s.t.N()
	for _, j := range down {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("%w: down node %d out of range [0,%d)", ErrBadDrift, j, n)
		}
	}
	for _, j := range cuts {
		if j <= 0 || j >= n {
			return nil, fmt.Errorf("%w: cut link %d out of range [1,%d)", ErrBadDrift, j, n)
		}
	}
	var mask tree.FaultMask
	if len(down) > 0 || len(cuts) > 0 {
		m := &evalMask{node: make([]bool, n), link: make([]bool, n)}
		for _, j := range down {
			m.node[j] = true
		}
		for _, j := range cuts {
			m.link[j] = true
		}
		mask = m
	}

	s.run.Lock()
	defer s.run.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.met.evals.Add(1)
	r := s.eng.EvalUniformMasked(s.cur, policy, s.opts.W, mask)
	maxLoad := 0
	served := 0
	for _, l := range r.Loads {
		served += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	return &EvalResult{
		Tick:         s.tick,
		Policy:       policy.String(),
		Issued:       r.Issued,
		Served:       served,
		Unserved:     r.Unserved,
		FailUnserved: r.FailUnserved,
		MaxLoad:      maxLoad,
		Servers:      s.cur.Count(),
		DownNodes:    len(down),
		CutLinks:     len(cuts),
	}, nil
}
