package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServerFrom serves an existing Server so tests can reach both
// the HTTP surface and the in-process sessions behind it.
func newTestServerFrom(tb testing.TB, srv *Server) *httptest.Server {
	tb.Helper()
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	return ts
}

func jsonBody(tb testing.TB, v any) io.Reader {
	tb.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		tb.Fatalf("marshal: %v", err)
	}
	return bytes.NewReader(buf)
}

// newPowerSession builds a power+chain session over a deterministic
// 50-node power tree — the fullest per-tick state (placement, chained
// sets, Pareto front) for robustness comparisons.
func newPowerSession(tb testing.TB, id string, opts Options) *Session {
	tb.Helper()
	tr, cfg := genPowerTree(tb, 77)
	opts.W, opts.Cost = 10, testCost
	opts.Power, opts.PowerChange = testPower(tb), 0.05
	opts.Chain = true
	opts.Gen = &cfg
	sess, err := NewSession(id, tr, nil, opts, nil, nil, 0)
	if err != nil {
		tb.Fatalf("NewSession: %v", err)
	}
	return sess
}

// TestTickDeadlineAbortsAndRepairs pins the per-tick deadline: a tick
// that cannot finish inside TickTimeout fails with
// context.DeadlineExceeded, its demand edits stay applied, and the
// next unconstrained tick lands on the same state as a twin that was
// never interrupted.
func TestTickDeadlineAbortsAndRepairs(t *testing.T) {
	a := newPowerSession(t, "dead-a", Options{})
	b := newPowerSession(t, "dead-b", Options{})
	defer a.Close()
	defer b.Close()

	slot := clientSlots(a.Tree())[0]
	edits := []Edit{{Node: slot[0], Client: slot[1], Reqs: 7}}

	// An already-expired deadline aborts at the solvers' first
	// cooperative checkpoint.
	a.opts.TickTimeout = time.Nanosecond
	_, err := a.Drift(edits, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline tick returned %v, want context.DeadlineExceeded", err)
	}
	if got := a.met.tickAborts.Load(); got != 1 {
		t.Errorf("tickAborts = %d, want 1", got)
	}
	if a.LastErr() == "" {
		t.Errorf("LastErr empty after a deadline abort")
	}

	// Repair: the aborted tick applied its edits but never solved or
	// chained, so the next tick solves the cumulative demands against
	// the pre-abort sets — exactly what a twin sees taking all the
	// edits in one batch.
	a.opts.TickTimeout = 0
	more := []Edit{{Node: slot[0], Client: slot[1], Reqs: 2}}
	if _, err := a.Drift(more, nil); err != nil {
		t.Fatalf("repair drift: %v", err)
	}
	if _, err := b.Drift(append(append([]Edit{}, edits...), more...), nil); err != nil {
		t.Fatalf("twin drift: %v", err)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	// The aborted tick still consumed a tick number (journal replay
	// depends on that), so a is one tick ahead of the twin.
	if sa.Tick != 2 || sb.Tick != 1 {
		t.Fatalf("ticks %d/%d, want 2/1", sa.Tick, sb.Tick)
	}
	snapshotsEquivalent(t, "after deadline repair", sb, sa)
}

// TestCloseAbortsAndRejects pins Session.Close: in-flight and later
// submissions fail with ErrClosed, Close is idempotent, and Eval on a
// closed session is rejected.
func TestCloseAbortsAndRejects(t *testing.T) {
	sess := newPowerSession(t, "close", Options{Workers: 4})
	slot := clientSlots(sess.Tree())[0]

	// Hold the run lock so a drift leader is provably parked mid-queue
	// when Close lands.
	sess.run.Lock()
	done := make(chan error, 1)
	go func() {
		_, err := sess.Drift([]Edit{{Node: slot[0], Client: slot[1], Reqs: 3}}, nil)
		done <- err
	}()
	waitFor(t, "drift queued", func() bool { return sess.QueueDepth() == 1 })

	go sess.Close() // blocks on the run lock behind the parked leader
	waitFor(t, "close observed", func() bool { return sess.closed.Load() })
	sess.run.Unlock()

	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("parked drift returned %v, want ErrClosed", err)
	}
	sess.Close() // idempotent, already closed
	if _, err := sess.Drift(nil, []Redraw{{Prob: 0.5, Seed: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("drift after close returned %v, want ErrClosed", err)
	}
	if _, err := sess.Eval(0, nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("eval after close returned %v, want ErrClosed", err)
	}
}

// waitFor polls cond for up to ~5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestAdmissionShedsDeterministically holds the run lock, fires a 10x
// over-cap burst, and requires exactly cap admissions: every other
// submission is shed with ErrOverloaded while the queue stays bounded.
func TestAdmissionShedsDeterministically(t *testing.T) {
	tr, _ := genTestTree(t, 120, 5)
	const cap = 4
	sess, err := NewSession("adm", tr, nil,
		Options{W: 10, Cost: testCost, Workers: 1, MaxInflight: cap}, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()

	const burst = 10 * cap
	sess.run.Lock()
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			_, err := sess.Drift(nil, []Redraw{{Prob: 0.1, Seed: seed, ReqMin: 1, ReqMax: 9}})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("burst drift: %v", err)
			}
		}(uint64(i))
	}
	// Admissions saturate at the cap; everyone else sheds synchronously.
	waitFor(t, "burst resolved", func() bool {
		return sess.QueueDepth() == cap && shed.Load() == burst-cap
	})
	if depth := sess.QueueDepth(); depth != cap {
		t.Errorf("queue depth %d with the solver parked, want cap %d", depth, cap)
	}
	sess.run.Unlock()
	wg.Wait()

	if got, want := ok.Load(), int64(cap); got != want {
		t.Errorf("admitted %d submissions, want %d", got, want)
	}
	if got := sess.met.shed.Load(); got != burst-cap {
		t.Errorf("shed metric %d, want %d", got, burst-cap)
	}
	waitFor(t, "queue drained", func() bool { return sess.QueueDepth() == 0 })

	// The instance keeps serving after the burst.
	if _, err := sess.Drift(nil, []Redraw{{Prob: 0.2, Seed: 99, ReqMin: 1, ReqMax: 9}}); err != nil {
		t.Fatalf("post-burst drift: %v", err)
	}
}

// TestHTTPOverloadAndDeleteRace exercises the transport mapping of the
// robustness errors: 429 + Retry-After for shed drifts, and DELETE
// racing an in-flight tick — the delete must win promptly, abort the
// solve, and fully release the session (a reload of the same id
// succeeds).
func TestHTTPOverloadAndDeleteRace(t *testing.T) {
	srv := NewServer(ServerOptions{MaxInflight: 1})
	ts := newTestServerFrom(t, srv)

	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "race", "w": 10, "chain": true,
		"cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen":  map[string]any{"nodes": 300, "shape": "fat", "seed": 4},
	}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	sess := srv.Session("race")

	// Park a drift leader on the run lock, then overload.
	sess.run.Lock()
	first := make(chan int, 1)
	go func() {
		first <- doJSON(t, ts, "POST", "/instances/race/drift",
			map[string]any{"redraw": map[string]any{"prob": 0.3, "seed": 1}}, nil)
	}()
	waitFor(t, "leader parked", func() bool { return sess.QueueDepth() == 1 })

	req, err := http.NewRequest("POST", ts.URL+"/instances/race/drift",
		jsonBody(t, map[string]any{"redraw": map[string]any{"prob": 0.3, "seed": 2}}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap drift: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}

	// DELETE while the first drift is still parked: the drift must be
	// aborted with 410 (Gone) and the delete must succeed.
	delDone := make(chan int, 1)
	go func() { delDone <- doJSON(t, ts, "DELETE", "/instances/race", nil, nil) }()
	waitFor(t, "close initiated", func() bool { return sess.closed.Load() })
	sess.run.Unlock()

	if code := <-delDone; code != http.StatusOK {
		t.Fatalf("racing delete: status %d", code)
	}
	if code := <-first; code != http.StatusGone {
		t.Fatalf("aborted drift: status %d, want 410", code)
	}
	if code := doJSON(t, ts, "GET", "/instances/race", nil, nil); code != http.StatusNotFound {
		t.Fatalf("info after delete: status %d, want 404", code)
	}

	// The id is fully released: reloading it works.
	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "race", "w": 10,
		"cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen":  map[string]any{"nodes": 300, "shape": "fat", "seed": 4},
	}, nil); code != http.StatusCreated {
		t.Fatalf("reload after delete: status %d", code)
	}
}

// TestNoGoroutineLeaks loads, drifts (including a failing tick and a
// deadline abort), snapshots and deletes sessions with parallel
// solvers, then requires the goroutine count to return to baseline:
// worker pools, tick leaders and journal handles must all be released.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	dir := t.TempDir()
	srv := NewServer(ServerOptions{DataDir: dir, Workers: 4})
	ts := newTestServerFrom(t, srv)
	for i := 0; i < 3; i++ {
		if code := doJSON(t, ts, "POST", "/instances", map[string]any{
			"id": fmt.Sprintf("leak%d", i), "w": 10, "chain": true,
			"cost": map[string]float64{"create": 0.1, "delete": 0.01},
			"gen":  map[string]any{"nodes": 200, "shape": "fat", "seed": 10 + i},
		}, nil); code != http.StatusCreated {
			t.Fatalf("load %d: status %d", i, code)
		}
		if code := doJSON(t, ts, "POST", fmt.Sprintf("/instances/leak%d/drift", i),
			map[string]any{"redraw": map[string]any{"prob": 0.2, "seed": 5}}, nil); code != http.StatusOK {
			t.Fatalf("drift %d: status %d", i, code)
		}
	}
	// Failure paths must not leak either: an infeasible tick...
	node := firstClientNode(t, ts, "leak0")
	if code := doJSON(t, ts, "POST", "/instances/leak0/drift", map[string]any{
		"edits": []map[string]int{{"node": node, "client": 0, "reqs": 50}},
	}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible drift: status %d, want 422", code)
	}
	// ...and a deadline-aborted tick. (Probe for the client slot before
	// arming the deadline: under it every solving drift 503s.)
	node1 := firstClientNode(t, ts, "leak1")
	leak1 := srv.Session("leak1")
	leak1.opts.TickTimeout = time.Nanosecond
	if code := doJSON(t, ts, "POST", "/instances/leak1/drift", map[string]any{
		"edits": []map[string]int{{"node": node1, "client": 0, "reqs": 3}},
	}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("deadline drift: status %d, want 503", code)
	}
	leak1.opts.TickTimeout = 0

	for i := 0; i < 3; i++ {
		if code := doJSON(t, ts, "DELETE", fmt.Sprintf("/instances/leak%d", i), nil, nil); code != http.StatusOK {
			t.Fatalf("delete %d: status %d", i, code)
		}
	}
	ts.Close()

	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// TestCrashRecoveryByteIdentical simulates kill -9 in-process: a
// journaling server is abandoned without any shutdown snapshot, a
// fresh server restores from the same directory, and its replayed
// state must be byte-identical — placement, chained sets (via the next
// ticks) and Pareto front — to the abandoned twin's. A torn journal
// tail (crash mid-append) must roll back exactly one tick.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(ServerOptions{DataDir: dir})
	ts := newTestServerFrom(t, srv)

	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "crash", "w": 10, "chain": true,
		"cost":  map[string]float64{"create": 0.1, "delete": 0.01},
		"power": map[string]any{"caps": []int{5, 10}, "static": 0.5, "alpha": 2, "change": 0.05},
		"gen":   map[string]any{"nodes": 30, "shape": "power", "seed": 77},
	}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	// Durability starts at load.
	if _, err := os.Stat(snapshotPath(dir, "crash")); err != nil {
		t.Fatalf("no base snapshot after load: %v", err)
	}
	if _, err := os.Stat(walPath(dir, "crash")); err != nil {
		t.Fatalf("no journal after load: %v", err)
	}

	const drifts = 8
	for i := 0; i < drifts; i++ {
		if code := doJSON(t, ts, "POST", "/instances/crash/drift", map[string]any{
			"redraw": map[string]any{"prob": 0.1, "seed": 100 + i},
		}, nil); code != http.StatusOK {
			t.Fatalf("drift %d: status %d", i, code)
		}
	}
	live := srv.Session("crash").Snapshot()
	// "Crash": no SnapshotAll, no Close — the directory holds only the
	// load-time snapshot plus the drift journal.

	srv2 := NewServer(ServerOptions{DataDir: dir})
	if n, err := srv2.RestoreAll(); err != nil || n != 1 {
		t.Fatalf("restore: %d instances, err %v", n, err)
	}
	restored := srv2.Session("crash")
	got := restored.Snapshot()
	if got.Tick != live.Tick {
		t.Fatalf("restored tick %d, want %d", got.Tick, live.Tick)
	}
	snapshotsEquivalent(t, "replayed state", live, got)

	// Post-recovery convergence: both twins take the same next drift.
	if _, err := srv.Session("crash").Drift(nil, []Redraw{{Prob: 0.3, Seed: 999, ReqMin: 1, ReqMax: 9}}); err != nil {
		t.Fatalf("live drift: %v", err)
	}
	if _, err := restored.Drift(nil, []Redraw{{Prob: 0.3, Seed: 999, ReqMin: 1, ReqMax: 9}}); err != nil {
		t.Fatalf("restored drift: %v", err)
	}
	snapshotsEquivalent(t, "post-recovery tick", srv.Session("crash").Snapshot(), restored.Snapshot())

	// Torn tail: chop bytes off the journal's last record — recovery
	// must come up at the previous tick, not fail.
	wpath := walPath(dir, "crash")
	data, err := os.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wpath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	srv3 := NewServer(ServerOptions{DataDir: dir})
	if n, err := srv3.RestoreAll(); err != nil || n != 1 {
		t.Fatalf("torn-tail restore: %d instances, err %v", n, err)
	}
	if tick := srv3.Session("crash").Snapshot().Tick; tick != live.Tick {
		t.Fatalf("torn-tail restore at tick %d, want %d (one tick rolled back)", tick, live.Tick)
	}
}

// TestSnapshotResetsJournal pins the snapshot/journal atomicity: an
// explicit snapshot truncates the journal, and a restore from the new
// snapshot alone reproduces the state.
func TestSnapshotResetsJournal(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(ServerOptions{DataDir: dir})
	ts := newTestServerFrom(t, srv)

	if code := doJSON(t, ts, "POST", "/instances", map[string]any{
		"id": "snapwal", "w": 10, "chain": true,
		"cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen":  map[string]any{"nodes": 150, "shape": "fat", "seed": 3},
	}, nil); code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}
	for i := 0; i < 4; i++ {
		if code := doJSON(t, ts, "POST", "/instances/snapwal/drift", map[string]any{
			"redraw": map[string]any{"prob": 0.25, "seed": 40 + i},
		}, nil); code != http.StatusOK {
			t.Fatalf("drift %d: status %d", i, code)
		}
	}
	if recs, _, err := readWAL(walPath(dir, "snapwal")); err != nil || len(recs) != 4 {
		t.Fatalf("journal before snapshot: %d records, err %v, want 4", len(recs), err)
	}
	if code := doJSON(t, ts, "POST", "/instances/snapwal/snapshot", nil, nil); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if recs, validLen, err := readWAL(walPath(dir, "snapwal")); err != nil || len(recs) != 0 || validLen != 0 {
		t.Fatalf("journal after snapshot: %d records (%d bytes), err %v, want empty", len(recs), validLen, err)
	}
	live := srv.Session("snapwal").Snapshot()

	srv2 := NewServer(ServerOptions{DataDir: dir})
	if n, err := srv2.RestoreAll(); err != nil || n != 1 {
		t.Fatalf("restore: %d instances, err %v", n, err)
	}
	got := srv2.Session("snapwal").Snapshot()
	if got.Tick != live.Tick {
		t.Fatalf("restored tick %d, want %d", got.Tick, live.Tick)
	}
	snapshotsEquivalent(t, "snapshot-only restore", live, got)

	// DELETE drops the journal alongside the snapshot.
	if code := doJSON(t, ts, "DELETE", "/instances/snapwal", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if _, err := os.Stat(walPath(dir, "snapwal")); !os.IsNotExist(err) {
		t.Fatalf("journal survived delete: %v", err)
	}
}
