package serve

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

var testCost = cost.Simple{Create: 0.1, Delete: 0.01}

// genTestTree generates a fat tree deterministically for tests.
func genTestTree(tb testing.TB, nodes int, seed uint64) (*tree.Tree, tree.GenConfig) {
	tb.Helper()
	cfg := tree.FatConfig(nodes)
	t, err := tree.Generate(cfg, rng.New(seed))
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	return t, cfg
}

// clientSlots lists every (node, client-index) demand slot of t.
func clientSlots(t *tree.Tree) [][2]int {
	var out [][2]int
	for j := 0; j < t.N(); j++ {
		for k := range t.Clients(j) {
			out = append(out, [2]int{j, k})
		}
	}
	return out
}

// testPower returns a 2-mode power model. Power-enabled sessions in
// tests stay at the paper's experiment scale (~50-node trees, few
// modes): the modal DP's table budget is per-mode-count exponential
// once a chained pre-existing set is tracked.
func testPower(tb testing.TB) *power.Model {
	tb.Helper()
	pm, err := power.New([]int{5, 10}, 0.5, 2)
	if err != nil {
		tb.Fatalf("power.New: %v", err)
	}
	return &pm
}

// genPowerTree generates a paper-scale power-experiment tree.
func genPowerTree(tb testing.TB, seed uint64) (*tree.Tree, tree.GenConfig) {
	tb.Helper()
	cfg := tree.PowerConfig(50)
	t, err := tree.Generate(cfg, rng.New(seed))
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	return t, cfg
}

func snapshotsEquivalent(tb testing.TB, what string, a, b *Snapshot) {
	tb.Helper()
	if !reflect.DeepEqual(a.Modes, b.Modes) {
		tb.Errorf("%s: placement modes differ", what)
	}
	if a.Servers != b.Servers || a.Cost != b.Cost || a.Reused != b.Reused || a.New != b.New {
		tb.Errorf("%s: mincost summary differs: (%d, %g, %d, %d) vs (%d, %g, %d, %d)",
			what, a.Servers, a.Cost, a.Reused, a.New, b.Servers, b.Cost, b.Reused, b.New)
	}
	if (a.Power == nil) != (b.Power == nil) {
		tb.Fatalf("%s: power view presence differs", what)
	}
	if a.Power != nil {
		if !reflect.DeepEqual(a.Power.Modes, b.Power.Modes) {
			tb.Errorf("%s: power modes differ", what)
		}
		if a.Power.Cost != b.Power.Cost || a.Power.Power != b.Power.Power || a.Power.Servers != b.Power.Servers {
			tb.Errorf("%s: power summary differs", what)
		}
		if !reflect.DeepEqual(a.Power.Front, b.Power.Front) {
			tb.Errorf("%s: pareto fronts differ: %d vs %d points", what, len(a.Power.Front), len(b.Power.Front))
		}
	}
	if (a.QoS == nil) != (b.QoS == nil) {
		tb.Fatalf("%s: qos view presence differs", what)
	}
	if a.QoS != nil && !reflect.DeepEqual(a.QoS.Modes, b.QoS.Modes) {
		tb.Errorf("%s: qos modes differ", what)
	}
}

// TestConcurrentDriftOneTickMatchesSingleCall is the drift-batching
// contract: concurrent submissions that land in one tick must produce a
// state byte-identical to one Drift call carrying all their edits. The
// run lock is held while the submitters pile up, so every submission
// provably coalesces into a single batch. Chain mode plus power and QoS
// solvers make the equivalence cover all retained per-tick state.
func TestConcurrentDriftOneTickMatchesSingleCall(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tr, _ := genPowerTree(t, 11)
			cons := tree.NewConstraints(tr)
			cons.SetUniformQoS(tr, tr.Height()+2)
			opts := Options{
				W: 10, Cost: testCost, Power: testPower(t), PowerChange: 0.05,
				Chain: true, Workers: workers,
			}
			sess, err := NewSession("conc", tr, cons, opts, nil, nil, 0)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}

			tr2 := tr.Clone()
			cons2 := tree.NewConstraints(tr2)
			cons2.SetUniformQoS(tr2, tr2.Height()+2)
			twin, err := NewSession("twin", tr2, cons2, opts, nil, nil, 0)
			if err != nil {
				t.Fatalf("NewSession(twin): %v", err)
			}
			snapshotsEquivalent(t, "initial", sess.Snapshot(), twin.Snapshot())

			slots := clientSlots(tr)
			const nDrifts = 16
			if len(slots) < nDrifts {
				t.Fatalf("tree has only %d client slots", len(slots))
			}
			edits := make([]Edit, nDrifts)
			for i := range edits {
				s := slots[i*len(slots)/nDrifts]
				edits[i] = Edit{Node: s[0], Client: s[1], Reqs: 1 + (i*5)%9}
			}

			// Hold the run lock so the elected leader blocks and every
			// submission joins the same pending batch.
			sess.run.Lock()
			var wg sync.WaitGroup
			results := make([]*TickResult, nDrifts)
			errs := make([]error, nDrifts)
			for i := range edits {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = sess.Drift([]Edit{edits[i]}, nil)
				}(i)
			}
			for {
				sess.bmu.Lock()
				n := 0
				if sess.pending != nil {
					n = sess.pending.requests
				}
				sess.bmu.Unlock()
				if n == nDrifts {
					break
				}
				runtime.Gosched()
			}
			sess.run.Unlock()
			wg.Wait()

			for i, err := range errs {
				if err != nil {
					t.Fatalf("drift %d: %v", i, err)
				}
			}
			for i, res := range results {
				if res.Tick != 1 || res.Requests != nDrifts {
					t.Fatalf("drift %d: tick %d with %d requests, want one tick with %d",
						i, res.Tick, res.Requests, nDrifts)
				}
			}

			if _, err := twin.Drift(edits, nil); err != nil {
				t.Fatalf("twin drift: %v", err)
			}
			snapshotsEquivalent(t, "after batch", sess.Snapshot(), twin.Snapshot())

			// One more uncoordinated round: both sessions drift from the
			// now-identical chained state and must stay in lockstep.
			more := []Edit{{Node: edits[0].Node, Client: edits[0].Client, Reqs: 4}}
			if _, err := sess.Drift(more, nil); err != nil {
				t.Fatalf("drift: %v", err)
			}
			if _, err := twin.Drift(more, nil); err != nil {
				t.Fatalf("twin drift: %v", err)
			}
			snapshotsEquivalent(t, "after follow-up", sess.Snapshot(), twin.Snapshot())
		})
	}
}

// TestConcurrentDriftUncoordinated exercises free-running coalescing:
// many goroutines drift distinct slots with no synchronisation, ticks
// form however the race falls, and the final state must still equal a
// cold solve over the final demand vector (chain off makes the final
// state history-independent).
func TestConcurrentDriftUncoordinated(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tr, _ := genTestTree(t, 400, 7)
			sess, err := NewSession("free", tr, nil, Options{W: 10, Cost: testCost, Workers: workers}, nil, nil, 0)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			slots := clientSlots(tr)
			const nDrifts = 32
			edits := make([]Edit, nDrifts)
			for i := range edits {
				s := slots[i*len(slots)/nDrifts]
				edits[i] = Edit{Node: s[0], Client: s[1], Reqs: 1 + (i*3)%6}
			}
			var wg sync.WaitGroup
			results := make([]*TickResult, nDrifts)
			for i := range edits {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					var err error
					results[i], err = sess.Drift([]Edit{edits[i]}, nil)
					if err != nil {
						t.Errorf("drift %d: %v", i, err)
					}
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}

			// Tick bookkeeping: grouped by tick, every member must agree
			// on the tick's result, and request counts must sum to all
			// submissions.
			byTick := map[uint64][]*TickResult{}
			for _, r := range results {
				byTick[r.Tick] = append(byTick[r.Tick], r)
			}
			total := 0
			for tick, rs := range byTick {
				if len(rs) != rs[0].Requests {
					t.Errorf("tick %d: %d members but Requests=%d", tick, len(rs), rs[0].Requests)
				}
				for _, r := range rs[1:] {
					if r.Servers != rs[0].Servers || r.Cost != rs[0].Cost || r.Changed != rs[0].Changed {
						t.Errorf("tick %d: members disagree on the tick result", tick)
					}
				}
				total += rs[0].Requests
			}
			if total != nDrifts {
				t.Errorf("ticks account for %d requests, want %d", total, nDrifts)
			}

			// Final placement equals a cold solve over the final demands.
			ref := tr.Clone()
			for _, e := range edits {
				ref.SetDemand(e.Node, e.Client, e.Reqs)
			}
			want, err := core.MinCost(ref, nil, 10, testCost)
			if err != nil {
				t.Fatalf("reference solve: %v", err)
			}
			sn := sess.Snapshot()
			if !reflect.DeepEqual(sn.Modes, modesOf(want.Placement)) {
				t.Errorf("final placement differs from cold reference")
			}
			if sn.Cost != want.Cost || sn.Servers != want.Servers {
				t.Errorf("final summary (%d, %g) differs from cold reference (%d, %g)",
					sn.Servers, sn.Cost, want.Servers, want.Cost)
			}
		})
	}
}

// TestDriftSequenceMatchesReferenceSolvers replays a deterministic
// edit+redraw drift sequence through a chained session with all three
// solvers retained, checking every tick against one-shot reference
// solvers run on a twin tree. This pins the incremental warm path to
// the cold ground truth.
func TestDriftSequenceMatchesReferenceSolvers(t *testing.T) {
	tr, cfg := genPowerTree(t, 3)
	cons := tree.NewConstraints(tr)
	qosBound := tr.Height() + 2
	cons.SetUniformQoS(tr, qosBound)
	pm := testPower(t)
	opts := Options{
		W: 10, Cost: testCost, Power: pm, PowerChange: 0.05,
		Chain: true, Workers: 1, Gen: &cfg,
	}
	sess, err := NewSession("seq", tr, cons, opts, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}

	refT := tr.Clone()
	refCons := tree.NewConstraints(refT)
	refCons.SetUniformQoS(refT, qosBound)
	modal := cost.UniformModal(len(pm.Caps), testCost.Create, testCost.Delete, 0.05)
	var refEx, refPEx *tree.Replicas

	check := func(tick int) {
		t.Helper()
		mc, err := core.MinCost(refT, refEx, 10, testCost)
		if err != nil {
			t.Fatalf("tick %d: reference mincost: %v", tick, err)
		}
		ps, err := core.SolvePower(core.PowerProblem{Tree: refT, Existing: refPEx, Power: *pm, Cost: modal})
		if err != nil {
			t.Fatalf("tick %d: reference power: %v", tick, err)
		}
		pres, ok := ps.Best(math.Inf(1))
		if !ok {
			t.Fatalf("tick %d: reference power infeasible", tick)
		}
		qres, err := core.MinReplicasQoS(refT, 10, refCons)
		if err != nil {
			t.Fatalf("tick %d: reference qos: %v", tick, err)
		}

		sn := sess.Snapshot()
		if sn.Tick != uint64(tick) {
			t.Fatalf("snapshot at tick %d, want %d", sn.Tick, tick)
		}
		if !reflect.DeepEqual(sn.Modes, modesOf(mc.Placement)) || sn.Cost != mc.Cost {
			t.Errorf("tick %d: mincost placement diverged from reference", tick)
		}
		if !reflect.DeepEqual(sn.Power.Modes, modesOf(pres.Placement)) ||
			sn.Power.Cost != pres.Cost || sn.Power.Power != pres.Power {
			t.Errorf("tick %d: power placement diverged from reference", tick)
		}
		if !reflect.DeepEqual(sn.Power.Front, ps.Front()) {
			t.Errorf("tick %d: pareto front diverged from reference", tick)
		}
		if !reflect.DeepEqual(sn.QoS.Modes, modesOf(qres)) {
			t.Errorf("tick %d: qos placement diverged from reference", tick)
		}

		refEx, refPEx = mc.Placement, pres.Placement
	}
	check(0)

	slots := clientSlots(tr)
	for tick := 1; tick <= 6; tick++ {
		var edits []Edit
		for i := 0; i < 3; i++ {
			s := slots[(tick*17+i*29)%len(slots)]
			edits = append(edits, Edit{Node: s[0], Client: s[1], Reqs: (tick + i) % 7})
		}
		redraws := []Redraw{{Prob: 0.1, Seed: uint64(1000 + tick)}}
		if _, err := sess.Drift(edits, redraws); err != nil {
			t.Fatalf("tick %d: drift: %v", tick, err)
		}

		// Twin application, same order: edits then the redraw stream.
		for _, e := range edits {
			refT.SetDemand(e.Node, e.Client, e.Reqs)
		}
		tree.DriftRequests(refT, tree.GenConfig{ReqMin: cfg.ReqMin, ReqMax: cfg.ReqMax},
			0.1, rng.New(uint64(1000+tick)))
		check(tick)
	}
}

// TestMalformedDriftRejectedMidTick is the handler-audit regression: a
// malformed drift submitted while a tick is in flight must be rejected
// immediately (no lock acquired, no state touched), and the session's
// subsequent ticks must be indistinguishable — including the
// incremental solver's Recomputed work — from a twin that never saw
// the malformed submission.
func TestMalformedDriftRejectedMidTick(t *testing.T) {
	tr, _ := genTestTree(t, 300, 5)
	opts := Options{W: 10, Cost: testCost, Chain: true, Workers: 1}
	sess, err := NewSession("audit", tr, nil, opts, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	twin, err := NewSession("clean", tr.Clone(), nil, opts, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession(twin): %v", err)
	}

	slots := clientSlots(tr)
	tick1 := []Edit{{Node: slots[3][0], Client: slots[3][1], Reqs: 5}}
	tick2 := []Edit{{Node: slots[9][0], Client: slots[9][1], Reqs: 2}}
	bad := []Edit{{Node: tr.N() + 5, Client: 0, Reqs: 1}}

	// Simulate mid-tick: hold the run lock (as a solving leader would)
	// and submit the malformed drift. It must fail fast without waiting
	// for the lock.
	sess.run.Lock()
	done := make(chan error, 1)
	go func() {
		_, err := sess.Drift(bad, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrBadDrift) {
			t.Fatalf("malformed drift: got %v, want ErrBadDrift", err)
		}
	case <-time.After(5 * time.Second):
		sess.run.Unlock()
		t.Fatal("malformed drift blocked on the run lock mid-tick")
	}
	// It must not have opened or joined a batch either.
	sess.bmu.Lock()
	pending := sess.pending
	sess.bmu.Unlock()
	if pending != nil {
		t.Fatal("malformed drift left a pending batch behind")
	}
	sess.run.Unlock()

	// Both sessions run the same clean drifts; the audited one gets the
	// malformed submission interleaved again between them.
	r1, err := sess.Drift(tick1, nil)
	if err != nil {
		t.Fatalf("tick1: %v", err)
	}
	if _, err := sess.Drift(bad, nil); !errors.Is(err, ErrBadDrift) {
		t.Fatalf("interleaved malformed drift: got %v, want ErrBadDrift", err)
	}
	if _, err := sess.Drift([]Edit{}, []Redraw{{Prob: 1.5}}); !errors.Is(err, ErrBadDrift) {
		t.Fatalf("malformed redraw: got %v, want ErrBadDrift", err)
	}
	r2, err := sess.Drift(tick2, nil)
	if err != nil {
		t.Fatalf("tick2: %v", err)
	}

	c1, err := twin.Drift(tick1, nil)
	if err != nil {
		t.Fatalf("twin tick1: %v", err)
	}
	c2, err := twin.Drift(tick2, nil)
	if err != nil {
		t.Fatalf("twin tick2: %v", err)
	}

	// Malformed submissions must not have consumed tick numbers, and
	// the incremental work of the clean ticks must match the clean path
	// exactly: equal Recomputed (the dirty chains are identical) and
	// bounded by the edited nodes' root chains.
	if r1.Tick != c1.Tick || r2.Tick != c2.Tick {
		t.Errorf("ticks diverged: (%d,%d) vs clean (%d,%d)", r1.Tick, r2.Tick, c1.Tick, c2.Tick)
	}
	if r2.Stats.MinCost.Recomputed != c2.Stats.MinCost.Recomputed {
		t.Errorf("tick2 Recomputed %d differs from clean-path %d",
			r2.Stats.MinCost.Recomputed, c2.Stats.MinCost.Recomputed)
	}
	snapshotsEquivalent(t, "after audit sequence", sess.Snapshot(), twin.Snapshot())
	if got, want := sess.met.tickFailures.Load(), uint64(0); got != want {
		t.Errorf("tickFailures = %d, want %d (rejections are not ticks)", got, want)
	}
	if got, want := sess.met.ticks.Load(), twin.met.ticks.Load(); got != want {
		t.Errorf("ticks = %d, want %d", got, want)
	}
}

// TestRecomputedBoundedByDirtyChain pins the incremental contract the
// daemon's per-tick cost relies on: with chain mode off, a tick editing
// a few clients recomputes at most the edited nodes' root chains.
func TestRecomputedBoundedByDirtyChain(t *testing.T) {
	tr, _ := genTestTree(t, 500, 9)
	sess, err := NewSession("bound", tr, nil, Options{W: 10, Cost: testCost, Workers: 1}, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	slots := clientSlots(tr)
	edits := []Edit{
		{Node: slots[5][0], Client: slots[5][1], Reqs: 6},
		{Node: slots[50][0], Client: slots[50][1], Reqs: 0},
	}
	res, err := sess.Drift(edits, nil)
	if err != nil {
		t.Fatalf("drift: %v", err)
	}
	bound := 0
	seen := map[int]bool{}
	for _, e := range edits {
		if !seen[e.Node] {
			seen[e.Node] = true
			bound += tr.Depth(e.Node) + 1
		}
	}
	if got := res.Stats.MinCost.Recomputed; got > bound {
		t.Errorf("Recomputed = %d, want <= dirty-chain bound %d", got, bound)
	}
	if got := res.Stats.MinCost.Recomputed; got == tr.N() {
		t.Errorf("tick re-solved cold (%d nodes); incremental path not engaged", got)
	}
}

// TestTickFailureKeepsPreviousSnapshot drives a tick into an infeasible
// solve (a client demanding more than W) and checks the failure
// contract: the drift call errors, the published snapshot stays the
// previous one, and a repairing drift fully recovers the session.
func TestTickFailureKeepsPreviousSnapshot(t *testing.T) {
	tr, _ := genTestTree(t, 120, 13)
	sess, err := NewSession("fail", tr, nil, Options{W: 10, Cost: testCost, Workers: 1}, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	before := sess.Snapshot()
	slot := clientSlots(tr)[0]

	_, err = sess.Drift([]Edit{{Node: slot[0], Client: slot[1], Reqs: 50}}, nil)
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("infeasible drift: got %v, want ErrInfeasible", err)
	}
	if sn := sess.Snapshot(); sn != before {
		t.Errorf("failed tick replaced the published snapshot")
	}
	if sess.LastErr() == "" {
		t.Errorf("LastErr empty after a failed tick")
	}
	if got := sess.met.tickFailures.Load(); got != 1 {
		t.Errorf("tickFailures = %d, want 1", got)
	}

	// Repair: the failed tick did apply the demand, so the repairing
	// drift must both reset it and solve cleanly.
	res, err := sess.Drift([]Edit{{Node: slot[0], Client: slot[1], Reqs: 2}}, nil)
	if err != nil {
		t.Fatalf("repair drift: %v", err)
	}
	if sess.LastErr() != "" {
		t.Errorf("LastErr = %q after a clean tick", sess.LastErr())
	}
	sn := sess.Snapshot()
	if sn.Tick != res.Tick {
		t.Errorf("snapshot tick %d, want %d", sn.Tick, res.Tick)
	}
	ref := tr.Clone()
	ref.SetDemand(slot[0], slot[1], 2)
	want, err := core.MinCost(ref, nil, 10, testCost)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !reflect.DeepEqual(sn.Modes, modesOf(want.Placement)) {
		t.Errorf("recovered placement differs from reference")
	}
}

// TestValidAndInvalidDriftsInterleaved floods the session with valid
// and invalid submissions concurrently: every invalid one must fail
// with ErrBadDrift, every valid one must succeed, and the final state
// must equal the valid-only reference.
func TestValidAndInvalidDriftsInterleaved(t *testing.T) {
	tr, _ := genTestTree(t, 300, 21)
	sess, err := NewSession("mix", tr, nil, Options{W: 10, Cost: testCost, Workers: 1}, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	slots := clientSlots(tr)
	const half = 16
	var wg sync.WaitGroup
	for i := 0; i < half; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := slots[i*len(slots)/half]
			if _, err := sess.Drift([]Edit{{Node: s[0], Client: s[1], Reqs: 3}}, nil); err != nil {
				t.Errorf("valid drift %d: %v", i, err)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := sess.Drift([]Edit{{Node: -1 - i, Client: 0, Reqs: 1}}, nil); !errors.Is(err, ErrBadDrift) {
				t.Errorf("invalid drift %d: got %v, want ErrBadDrift", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	ref := tr.Clone()
	for i := 0; i < half; i++ {
		s := slots[i*len(slots)/half]
		ref.SetDemand(s[0], s[1], 3)
	}
	want, err := core.MinCost(ref, nil, 10, testCost)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if sn := sess.Snapshot(); !reflect.DeepEqual(sn.Modes, modesOf(want.Placement)) {
		t.Errorf("placement poisoned by rejected drifts")
	}
	if got := sess.met.tickFailures.Load(); got != 0 {
		t.Errorf("tickFailures = %d, want 0", got)
	}
}

// TestEvalMatchesEngine checks Eval against a direct engine run and the
// fault-mask path, plus its id validation.
func TestEvalMatchesEngine(t *testing.T) {
	tr, _ := genTestTree(t, 200, 17)
	sess, err := NewSession("eval", tr, nil, Options{W: 10, Cost: testCost, Workers: 1}, nil, nil, 0)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	res, err := sess.Eval(tree.PolicyClosest, nil, nil)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if res.Issued != tr.TotalRequests() {
		t.Errorf("issued %d, want %d", res.Issued, tr.TotalRequests())
	}
	if res.Unserved != 0 || res.FailUnserved != 0 {
		t.Errorf("optimal placement left %d unserved (%d fault-unserved)", res.Unserved, res.FailUnserved)
	}
	if res.MaxLoad > 10 {
		t.Errorf("max load %d exceeds W=10", res.MaxLoad)
	}

	// Downing every server forces unserved demand.
	sn := sess.Snapshot()
	var servers []int
	for j, m := range sn.Modes {
		if m != 0 {
			servers = append(servers, j)
		}
	}
	down, err := sess.Eval(tree.PolicyClosest, servers, nil)
	if err != nil {
		t.Fatalf("masked eval: %v", err)
	}
	if down.Served != 0 || down.Unserved+down.FailUnserved != down.Issued {
		t.Errorf("all servers down: served %d, unserved %d+%d of %d",
			down.Served, down.Unserved, down.FailUnserved, down.Issued)
	}
	if down.DownNodes != len(servers) {
		t.Errorf("DownNodes = %d, want %d", down.DownNodes, len(servers))
	}

	if _, err := sess.Eval(tree.PolicyClosest, []int{tr.N()}, nil); !errors.Is(err, ErrBadDrift) {
		t.Errorf("out-of-range down node: got %v, want ErrBadDrift", err)
	}
	if _, err := sess.Eval(tree.PolicyClosest, nil, []int{0}); !errors.Is(err, ErrBadDrift) {
		t.Errorf("root link cut: got %v, want ErrBadDrift", err)
	}
}

// TestHistogram pins the bucket-count constant to the bucket table and
// checks observation, rendering and quantile estimation.
func TestHistogram(t *testing.T) {
	if numTickBuckets != len(tickBuckets) {
		t.Fatalf("numTickBuckets = %d, len(tickBuckets) = %d", numTickBuckets, len(tickBuckets))
	}
	var h histogram
	if q := h.quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
	h.observe(50 * time.Microsecond) // below first bound
	h.observe(3 * time.Millisecond)  // in (0.0025, 0.005]
	h.observe(20 * time.Second)      // past the last bound
	if got := h.count.Load(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("first bucket = %d, want 1", got)
	}
	if got := h.counts[numTickBuckets].Load(); got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	if q := h.quantile(0); q != 0.0001 {
		t.Errorf("q0 = %g, want 0.0001", q)
	}
	if q := h.quantile(0.5); q != 0.005 {
		t.Errorf("q50 = %g, want 0.005", q)
	}
	if q := h.quantile(0.99); !math.IsInf(q, 1) {
		t.Errorf("q99 = %g, want +Inf", q)
	}
}

// TestSessionValidation covers NewSession's configuration rejections.
func TestSessionValidation(t *testing.T) {
	tr, _ := genTestTree(t, 60, 1)
	if _, err := NewSession("x", tr, nil, Options{W: 0, Cost: testCost}, nil, nil, 0); err == nil {
		t.Errorf("W=0 accepted")
	}
	if _, err := NewSession("x", tr, nil, Options{W: 10, Cost: cost.Simple{Create: -1}}, nil, nil, 0); err == nil {
		t.Errorf("negative create cost accepted")
	}
	bad := tree.NewReplicas(tr.N() + 1)
	if _, err := NewSession("x", tr, nil, Options{W: 10, Cost: testCost}, bad, nil, 0); err == nil {
		t.Errorf("mis-sized existing set accepted")
	}
	pm := testPower(t)
	wrongMode := tree.NewReplicas(tr.N())
	wrongMode.Set(0, 7)
	if _, err := NewSession("x", tr, nil, Options{W: 10, Cost: testCost, Power: pm}, nil, wrongMode, 0); err == nil {
		t.Errorf("out-of-range power existing mode accepted")
	}
}
