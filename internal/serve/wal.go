package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The drift write-ahead log makes accepted drifts durable before the
// tick leader applies them: one record per tick, framed as an 8-byte
// header (little-endian body length, IEEE CRC32 of the body) followed
// by the JSON body, appended and fsynced before any demand mutation.
// Replay is idempotent — records carry the tick number they produced,
// edits are absolute demand values and redraws are seed-deterministic —
// so restoring the last snapshot and re-driving every journaled record
// with a higher tick through the normal tick path reconstructs the
// session byte-identically, wherever the process was killed.
//
// A crash can leave at most one torn record at the end of the file
// (records are fsynced one at a time); a short or CRC-mismatched tail
// frame therefore marks the end of the log, and the journal is
// truncated back to the last whole record before new ticks append.

// walRecord is one journaled tick: the frozen batch exactly as the
// leader will apply it, stamped with the tick number it produces.
type walRecord struct {
	Tick    uint64   `json:"tick"`
	Edits   []Edit   `json:"edits,omitempty"`
	Redraws []Redraw `json:"redraws,omitempty"`
}

const walHeaderSize = 8

// maxWALRecord bounds a single record frame; a length field beyond it
// is garbage from a torn header, not a real record.
const maxWALRecord = 1 << 30

// walPath returns the session's journal path under dir (ids share the
// path-safe alphabet enforced by validateID).
func walPath(dir, id string) string {
	return filepath.Join(dir, id+".wal")
}

// wal is an open drift journal. The tick leader owns it under the
// session's run lock; there is no internal locking.
type wal struct {
	f   *os.File
	buf []byte // frame scratch, reused across appends
}

// openWAL opens (creating if absent) the journal at path for
// appending. truncateTo >= 0 first truncates the file to that length,
// discarding a torn tail found by a prior readWAL; pass -1 to keep the
// file as is (fresh sessions, whose journal is empty or absent).
func openWAL(path string, truncateTo int64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	if truncateTo >= 0 {
		if err := f.Truncate(truncateTo); err != nil {
			f.Close()
			return nil, fmt.Errorf("serve: truncating journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f}, nil
}

// append journals one record durably: frame, write, fsync. The record
// is recoverable once append returns nil; on error the caller must
// fail the tick without applying the batch.
func (w *wal) append(rec *walRecord) (int, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("serve: encoding journal record: %w", err)
	}
	if len(body) > maxWALRecord {
		return 0, fmt.Errorf("serve: journal record of %d bytes exceeds cap", len(body))
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(body)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(body))
	w.buf = append(w.buf, body...)
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, fmt.Errorf("serve: appending journal record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return 0, fmt.Errorf("serve: syncing journal: %w", err)
	}
	return len(w.buf), nil
}

// reset truncates the journal after a successful durable snapshot: the
// snapshot now covers every journaled tick, so the log restarts empty.
// Caller holds the run lock across the snapshot write and this call,
// so no tick can append a record the truncation would lose.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("serve: resetting journal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close releases the journal's file handle.
func (w *wal) Close() error { return w.f.Close() }

// readWAL decodes every whole record of the journal at path, in append
// order, along with the byte length of the valid prefix (what a
// subsequent openWAL should truncate to). A missing file is an empty
// log. A short or CRC-mismatched tail frame ends the log — that is the
// torn record of a crash mid-append, not corruption — but a frame
// whose checksum matches while its body fails to decode can only be a
// writer bug and fails the read.
func readWAL(path string) ([]walRecord, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: reading journal: %w", err)
	}
	var recs []walRecord
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < walHeaderSize {
			return recs, off, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxWALRecord || int64(len(rest))-walHeaderSize < n {
			return recs, off, nil
		}
		body := rest[walHeaderSize : walHeaderSize+n]
		if crc32.ChecksumIEEE(body) != sum {
			return recs, off, nil
		}
		var rec walRecord
		if err := json.Unmarshal(body, &rec); err != nil {
			return nil, 0, fmt.Errorf("serve: journal record at offset %d: %w", off, err)
		}
		recs = append(recs, rec)
		off += walHeaderSize + n
	}
}
