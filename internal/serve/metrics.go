package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// tickBuckets are the upper bounds of the tick-latency histogram, in
// seconds. The range spans a warm sub-millisecond incremental tick up
// to a cold multi-second mega-tree solve.
var tickBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numTickBuckets must equal len(tickBuckets); a test pins it.
const numTickBuckets = 16

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation and scraping. Counts are per bucket (not cumulative);
// rendering accumulates them into the Prometheus le-form.
type histogram struct {
	counts [numTickBuckets + 1]atomic.Uint64 // one per finite bucket + Inf
	count  atomic.Uint64
	sumNS  atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(tickBuckets, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
}

// write renders the histogram in Prometheus text format under name,
// with labels (no braces; may be empty) applied to every series.
func (h *histogram) write(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, ub := range tickBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, ub, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count.Load())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
	}
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (q in [0,1]), or 0 with no observations and
// +Inf when the quantile falls past the last finite bucket. It is the
// same estimate a Prometheus histogram_quantile over the scraped
// buckets would produce, exposed for in-process reporting.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	cum := uint64(0)
	for i, ub := range tickBuckets {
		cum += h.counts[i].Load()
		if cum > rank {
			return ub
		}
	}
	return math.Inf(1)
}

// sessionMetrics accumulates one session's operational counters. The
// tick leader writes them outside any lock the scraper needs; all
// fields are atomics so scrapes are tear-free under -race.
type sessionMetrics struct {
	ticks         atomic.Uint64
	tickFailures  atomic.Uint64
	tickAborts    atomic.Uint64 // ticks aborted by deadline or Close
	driftRequests atomic.Uint64
	driftEdits    atomic.Uint64
	driftChanged  atomic.Uint64
	shed          atomic.Uint64 // drift submissions shed by admission control
	evals         atomic.Uint64
	snapshots     atomic.Uint64

	// Write-ahead-log counters (only move when a journal is attached).
	walRecords  atomic.Uint64
	walBytes    atomic.Uint64
	walFailures atomic.Uint64

	// Accumulated SolveStats across ticks, per solver where the
	// counter is solver-specific.
	recomputed   [nSolvers]atomic.Uint64
	rootRepriced atomic.Uint64
	foldReplayed atomic.Uint64
	mergeCells   atomic.Uint64
	maskedNodes  atomic.Uint64

	tickSeconds     histogram
	walFsyncSeconds histogram
}

// Solver indices for per-solver metric labels.
const (
	solverMinCost = iota
	solverPower
	solverQoS
	nSolvers
)

var solverNames = [nSolvers]string{"mincost", "power", "qos"}

// httpMetrics counts served requests by route pattern and status code.
type httpMetrics struct {
	mu sync.Mutex
	m  map[string]uint64 // key: `method="GET",path="/healthz",code="200"`
}

func newHTTPMetrics() *httpMetrics { return &httpMetrics{m: make(map[string]uint64)} }

func (h *httpMetrics) inc(method, pattern string, code int) {
	key := fmt.Sprintf("method=%q,path=%q,code=\"%d\"", method, pattern, code)
	h.mu.Lock()
	h.m[key]++
	h.mu.Unlock()
}

func (h *httpMetrics) write(w io.Writer) {
	h.mu.Lock()
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, len(keys))
	for i, k := range keys {
		lines[i] = fmt.Sprintf("replicaserved_http_requests_total{%s} %d", k, h.m[k])
	}
	h.mu.Unlock()
	fmt.Fprintln(w, "# HELP replicaserved_http_requests_total Served HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE replicaserved_http_requests_total counter")
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// writeMetrics renders the whole metric surface in Prometheus text
// exposition format.
func (s *Server) writeMetrics(w io.Writer) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sess := make([]*Session, 0, len(ids))
	sort.Strings(ids)
	for _, id := range ids {
		sess = append(sess, s.sessions[id])
	}
	s.mu.RUnlock()

	fmt.Fprintln(w, "# HELP replicaserved_instances Currently loaded instances.")
	fmt.Fprintln(w, "# TYPE replicaserved_instances gauge")
	fmt.Fprintf(w, "replicaserved_instances %d\n", len(sess))
	s.httpMet.write(w)

	counter := func(name, help string, get func(m *sessionMetrics) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, ss := range sess {
			fmt.Fprintf(w, "%s{instance=%q} %d\n", name, ss.id, get(&ss.met))
		}
	}
	counter("replicaserved_ticks_total", "Completed drift ticks (including failed ones).",
		func(m *sessionMetrics) uint64 { return m.ticks.Load() })
	counter("replicaserved_tick_failures_total", "Ticks whose re-solve returned an error.",
		func(m *sessionMetrics) uint64 { return m.tickFailures.Load() })
	counter("replicaserved_tick_aborts_total", "Ticks aborted by the per-tick deadline or instance deletion.",
		func(m *sessionMetrics) uint64 { return m.tickAborts.Load() })
	counter("replicaserved_drift_shed_total", "Drift submissions shed by admission control (HTTP 429).",
		func(m *sessionMetrics) uint64 { return m.shed.Load() })
	counter("replicaserved_wal_records_total", "Drift batches journaled to the write-ahead log.",
		func(m *sessionMetrics) uint64 { return m.walRecords.Load() })
	counter("replicaserved_wal_bytes_total", "Bytes appended to the write-ahead log.",
		func(m *sessionMetrics) uint64 { return m.walBytes.Load() })
	counter("replicaserved_wal_failures_total", "Ticks failed because their journal append did not complete.",
		func(m *sessionMetrics) uint64 { return m.walFailures.Load() })
	counter("replicaserved_drift_requests_total", "Accepted drift requests (several may coalesce into one tick).",
		func(m *sessionMetrics) uint64 { return m.driftRequests.Load() })
	counter("replicaserved_drift_edits_total", "Demand edits applied by drift ticks.",
		func(m *sessionMetrics) uint64 { return m.driftEdits.Load() })
	counter("replicaserved_drift_changed_total", "Demand edits that actually changed a value.",
		func(m *sessionMetrics) uint64 { return m.driftChanged.Load() })
	counter("replicaserved_evals_total", "Flow evaluations served.",
		func(m *sessionMetrics) uint64 { return m.evals.Load() })
	counter("replicaserved_snapshots_total", "Session snapshots written.",
		func(m *sessionMetrics) uint64 { return m.snapshots.Load() })
	counter("replicaserved_root_cells_repriced_total", "Power root-scan cells repriced (see SolveStats).",
		func(m *sessionMetrics) uint64 { return m.rootRepriced.Load() })
	counter("replicaserved_fold_suffix_replayed_total", "Merge fold suffix steps replayed (see SolveStats).",
		func(m *sessionMetrics) uint64 { return m.foldReplayed.Load() })
	counter("replicaserved_merge_cells_scanned_total", "Merge table cells scanned (see SolveStats).",
		func(m *sessionMetrics) uint64 { return m.mergeCells.Load() })
	counter("replicaserved_masked_nodes_total", "Node-ticks solved with the node held down by a fault mask.",
		func(m *sessionMetrics) uint64 { return m.maskedNodes.Load() })

	fmt.Fprintln(w, "# HELP replicaserved_tables_recomputed_total DP node tables rebuilt, by solver.")
	fmt.Fprintln(w, "# TYPE replicaserved_tables_recomputed_total counter")
	for _, ss := range sess {
		for si, name := range solverNames {
			if !ss.hasSolver(si) {
				continue
			}
			fmt.Fprintf(w, "replicaserved_tables_recomputed_total{instance=%q,solver=%q} %d\n",
				ss.id, name, ss.met.recomputed[si].Load())
		}
	}

	fmt.Fprintln(w, "# HELP replicaserved_tick_seconds Wall-clock latency of drift ticks (apply + re-solve + publish).")
	fmt.Fprintln(w, "# TYPE replicaserved_tick_seconds histogram")
	for _, ss := range sess {
		ss.met.tickSeconds.write(w, "replicaserved_tick_seconds", fmt.Sprintf("instance=%q", ss.id))
	}

	fmt.Fprintln(w, "# HELP replicaserved_wal_fsync_seconds Latency of write-ahead-log append+fsync per tick.")
	fmt.Fprintln(w, "# TYPE replicaserved_wal_fsync_seconds histogram")
	for _, ss := range sess {
		ss.met.walFsyncSeconds.write(w, "replicaserved_wal_fsync_seconds", fmt.Sprintf("instance=%q", ss.id))
	}

	fmt.Fprintln(w, "# HELP replicaserved_drift_queue_depth Drift submissions currently queued or solving.")
	fmt.Fprintln(w, "# TYPE replicaserved_drift_queue_depth gauge")
	for _, ss := range sess {
		fmt.Fprintf(w, "replicaserved_drift_queue_depth{instance=%q} %d\n", ss.id, ss.QueueDepth())
	}

	fmt.Fprintln(w, "# HELP replicaserved_tick Current tick number of the published snapshot.")
	fmt.Fprintln(w, "# TYPE replicaserved_tick gauge")
	for _, ss := range sess {
		if sn := ss.snapshot(); sn != nil {
			fmt.Fprintf(w, "replicaserved_tick{instance=%q} %d\n", ss.id, sn.Tick)
		}
	}
	fmt.Fprintln(w, "# HELP replicaserved_servers Equipped servers of the published placement, by solver.")
	fmt.Fprintln(w, "# TYPE replicaserved_servers gauge")
	for _, ss := range sess {
		if sn := ss.snapshot(); sn != nil {
			fmt.Fprintf(w, "replicaserved_servers{instance=%q,solver=\"mincost\"} %d\n", ss.id, sn.Servers)
			if sn.Power != nil {
				fmt.Fprintf(w, "replicaserved_servers{instance=%q,solver=\"power\"} %d\n", ss.id, sn.Power.Servers)
			}
			if sn.QoS != nil {
				fmt.Fprintf(w, "replicaserved_servers{instance=%q,solver=\"qos\"} %d\n", ss.id, sn.QoS.Servers)
			}
		}
	}
	fmt.Fprintln(w, "# HELP replicaserved_cost Reconfiguration cost of the published placement.")
	fmt.Fprintln(w, "# TYPE replicaserved_cost gauge")
	for _, ss := range sess {
		if sn := ss.snapshot(); sn != nil {
			fmt.Fprintf(w, "replicaserved_cost{instance=%q} %g\n", ss.id, sn.Cost)
		}
	}
	fmt.Fprintln(w, "# HELP replicaserved_power Power draw of the published min-power placement.")
	fmt.Fprintln(w, "# TYPE replicaserved_power gauge")
	for _, ss := range sess {
		if sn := ss.snapshot(); sn != nil && sn.Power != nil {
			fmt.Fprintf(w, "replicaserved_power{instance=%q} %g\n", ss.id, sn.Power.Power)
		}
	}
}
