package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// ServerOptions configures a Server.
type ServerOptions struct {
	// DataDir, when non-empty, enables snapshot persistence: POST
	// /instances/{id}/snapshot writes there, RestoreAll loads from
	// there, and the daemon snapshots every session there on shutdown.
	DataDir string
	// Workers is the default per-session solver worker count for load
	// requests that do not specify one.
	Workers int
	// MaxNodes caps generated and loaded instance sizes (0 = the
	// 5e6 default). Body size is capped proportionally.
	MaxNodes int
	// TickTimeout is applied as Options.TickTimeout to every loaded
	// and restored session (0 = no per-tick deadline).
	TickTimeout time.Duration
	// MaxInflight is applied as Options.MaxInflight to every loaded
	// and restored session (0 = DefaultMaxInflight).
	MaxInflight int
}

const defaultMaxNodes = 5_000_000

// Server hosts named sessions behind the HTTP/JSON API. See the
// package documentation for the endpoint list and consistency model.
type Server struct {
	opts ServerOptions

	mu       sync.RWMutex
	sessions map[string]*Session

	autoID  atomic.Uint64
	httpMet *httpMetrics
	handler http.Handler
}

// NewServer returns a server with no sessions loaded.
func NewServer(opts ServerOptions) *Server {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = defaultMaxNodes
	}
	s := &Server{
		opts:     opts,
		sessions: make(map[string]*Session),
		httpMet:  newHTTPMetrics(),
	}
	s.handler = s.buildHandler()
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Session returns the named session, or nil.
func (s *Server) Session(id string) *Session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

// add inserts a session, failing on a duplicate id.
func (s *Server) add(sess *Session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[sess.id]; ok {
		return fmt.Errorf("serve: instance %q already loaded", sess.id)
	}
	s.sessions[sess.id] = sess
	return nil
}

// remove deletes a session, reporting whether it existed.
func (s *Server) remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	return true
}

// all returns the sessions sorted by id.
func (s *Server) all() []*Session {
	s.mu.RLock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// SnapshotAll writes a snapshot of every loaded session to the data
// directory. It is what the daemon runs on graceful shutdown.
func (s *Server) SnapshotAll() error {
	if s.opts.DataDir == "" {
		return errors.New("serve: no data directory configured")
	}
	if err := os.MkdirAll(s.opts.DataDir, 0o755); err != nil {
		return err
	}
	var firstErr error
	for _, sess := range s.all() {
		if _, err := saveSnapshot(s.opts.DataDir, sess); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// RestoreAll loads every snapshot from the data directory, returning
// how many sessions were restored. Missing directory is not an error
// (first boot).
func (s *Server) RestoreAll() (int, error) {
	if s.opts.DataDir == "" {
		return 0, nil
	}
	if _, err := os.Stat(s.opts.DataDir); os.IsNotExist(err) {
		return 0, nil
	}
	sessions, err := loadSnapshots(s.opts.DataDir, s.sessionDefaults)
	if err != nil {
		return 0, err
	}
	for _, sess := range sessions {
		if err := s.add(sess); err != nil {
			return 0, err
		}
	}
	return len(sessions), nil
}

// sessionDefaults applies the server's operational settings to a
// loaded or restored session's Options.
func (s *Server) sessionDefaults(o *Options) {
	o.TickTimeout = s.opts.TickTimeout
	o.MaxInflight = s.opts.MaxInflight
}

var idPattern = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// validateID enforces the path- and filename-safe instance id alphabet.
func validateID(id string) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("serve: instance id must match %s", idPattern)
	}
	return nil
}

// ---- wire types ----

// genRequest asks the server to generate the instance tree itself
// (deterministic in seed), instead of shipping it inline.
type genRequest struct {
	Nodes      int     `json:"nodes"`
	Shape      string  `json:"shape"` // fat | high | power | scale (default fat)
	Seed       uint64  `json:"seed"`
	ReqMax     int     `json:"reqmax,omitempty"`
	ClientProb float64 `json:"clientprob,omitempty"`
}

// loadRequest is the POST /instances body. Exactly one of Instance
// (inline instance JSON, internal/tree format) and Gen must be set.
type loadRequest struct {
	ID            string          `json:"id,omitempty"`
	W             int             `json:"w"`
	Cost          costJSON        `json:"cost"`
	Power         *powerJSON      `json:"power,omitempty"`
	Chain         bool            `json:"chain,omitempty"`
	Workers       *int            `json:"workers,omitempty"`
	Instance      json.RawMessage `json:"instance,omitempty"`
	Gen           *genRequest     `json:"gen,omitempty"`
	Existing      []int           `json:"existing,omitempty"`
	PowerExisting []int           `json:"power_existing,omitempty"`
}

// driftRequest is the POST /instances/{id}/drift body.
type driftRequest struct {
	Edits  []Edit  `json:"edits,omitempty"`
	Redraw *Redraw `json:"redraw,omitempty"`
}

// infoResponse summarises a session for listing and load responses.
type infoResponse struct {
	ID          string  `json:"id"`
	Nodes       int     `json:"nodes"`
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests"`
	Tick        uint64  `json:"tick"`
	Servers     int     `json:"servers"`
	Cost        float64 `json:"cost"`
	Power       bool    `json:"power"`
	Constrained bool    `json:"constrained"`
	Chain       bool    `json:"chain"`
	W           int     `json:"w"`
	LastErr     string  `json:"last_err,omitempty"`
}

func (s *Server) info(sess *Session) infoResponse {
	sn := sess.Snapshot()
	info := infoResponse{
		ID:          sess.id,
		Nodes:       sess.t.N(),
		Clients:     sess.t.ClientCount(),
		Requests:    sess.t.TotalRequests(),
		Power:       sess.pdp != nil,
		Constrained: sess.Constrained(),
		Chain:       sess.opts.Chain,
		W:           sess.opts.W,
		LastErr:     sess.LastErr(),
	}
	if sn != nil {
		info.Tick = sn.Tick
		info.Servers = sn.Servers
		info.Cost = sn.Cost
	}
	return info
}

// ---- HTTP plumbing ----

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// httpError is an error with an HTTP status.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func errCode(code int, err error) *httpError { return &httpError{code: code, err: err} }

func errf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, err: fmt.Errorf(format, args...)}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// handle adapts an error-returning handler: errors map to a JSON
// {"error": ...} body with the appropriate status, and panics — which
// would otherwise kill the connection with locks already released via
// defers — map to 500.
func (s *Server) handle(fn func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				writeJSON(w, http.StatusInternalServerError,
					map[string]string{"error": fmt.Sprintf("internal panic: %v", p)})
			}
		}()
		if err := fn(w, r); err != nil {
			code := http.StatusInternalServerError
			var he *httpError
			switch {
			case errors.As(err, &he):
				code = he.code
			case errors.Is(err, ErrBadDrift):
				code = http.StatusBadRequest
			case errors.Is(err, core.ErrInfeasible):
				code = http.StatusUnprocessableEntity
			case errors.Is(err, ErrOverloaded):
				code = http.StatusTooManyRequests
			case errors.Is(err, ErrClosed):
				code = http.StatusGone
			case errors.Is(err, context.DeadlineExceeded):
				// The tick's re-solve overran its deadline and aborted;
				// the next tick repairs and retries the solve.
				code = http.StatusServiceUnavailable
			}
			if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, code, map[string]string{"error": err.Error()})
		}
	}
}

// buildHandler wires the routes, the recovery wrapper and the request
// counter.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})
	mux.Handle("POST /instances", s.handle(s.handleLoad))
	mux.Handle("GET /instances", s.handle(s.handleList))
	mux.Handle("GET /instances/{id}", s.handle(s.handleInfo))
	mux.Handle("DELETE /instances/{id}", s.handle(s.handleDelete))
	mux.Handle("POST /instances/{id}/drift", s.handle(s.handleDrift))
	mux.Handle("GET /instances/{id}/placement", s.handle(s.handlePlacement))
	mux.Handle("GET /instances/{id}/front", s.handle(s.handleFront))
	mux.Handle("GET /instances/{id}/eval", s.handle(s.handleEval))
	mux.Handle("POST /instances/{id}/snapshot", s.handle(s.handleSnapshot))

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		mux.ServeHTTP(rec, r)
		pattern := r.Pattern
		if pattern == "" {
			pattern = "unmatched"
		}
		s.httpMet.inc(r.Method, pattern, rec.code)
	})
}

// session resolves the {id} path value or fails with 404.
func (s *Server) session(r *http.Request) (*Session, error) {
	id := r.PathValue("id")
	sess := s.Session(id)
	if sess == nil {
		return nil, errf(http.StatusNotFound, "serve: no instance %q", id)
	}
	return sess, nil
}

// decodeBody strictly decodes a JSON request body into v. The
// ResponseWriter is handed to MaxBytesReader so an over-limit body
// also closes the connection instead of letting the client keep
// streaming into a dead request.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return errf(http.StatusRequestEntityTooLarge, "serve: request body exceeds %d bytes", tooBig.Limit)
		}
		return errf(http.StatusBadRequest, "serve: decoding request: %v", err)
	}
	return nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) error {
	var req loadRequest
	// ~64 bytes of JSON per node is generous for the instance format.
	if err := decodeBody(w, r, &req, int64(s.opts.MaxNodes)*64+1<<20); err != nil {
		return err
	}
	if (req.Instance == nil) == (req.Gen == nil) {
		return errf(http.StatusBadRequest, "serve: exactly one of instance and gen must be set")
	}

	opts := Options{
		W:     req.W,
		Cost:  cost.Simple{Create: req.Cost.Create, Delete: req.Cost.Delete},
		Chain: req.Chain,
	}
	opts.Workers = s.opts.Workers
	if req.Workers != nil {
		opts.Workers = *req.Workers
	}
	s.sessionDefaults(&opts)
	if req.Power != nil {
		pm, err := power.New(req.Power.Caps, req.Power.Static, req.Power.Alpha)
		if err != nil {
			return errCode(http.StatusBadRequest, err)
		}
		opts.Power = &pm
		opts.PowerChange = req.Power.Change
	}

	var t *tree.Tree
	var cons *tree.Constraints
	switch {
	case req.Gen != nil:
		g := req.Gen
		if g.Nodes <= 0 || g.Nodes > s.opts.MaxNodes {
			return errf(http.StatusBadRequest, "serve: gen nodes %d out of [1,%d]", g.Nodes, s.opts.MaxNodes)
		}
		var cfg tree.GenConfig
		switch g.Shape {
		case "", "fat":
			cfg = tree.FatConfig(g.Nodes)
		case "high":
			cfg = tree.HighConfig(g.Nodes)
		case "power":
			cfg = tree.PowerConfig(g.Nodes)
		case "scale":
			cfg = tree.ScalePreset(g.Nodes)
		default:
			return errf(http.StatusBadRequest, "serve: unknown gen shape %q", g.Shape)
		}
		if g.ReqMax > 0 {
			cfg.ReqMax = g.ReqMax
		}
		if g.ClientProb > 0 {
			cfg.ClientProb = g.ClientProb
		}
		var err error
		t, err = tree.Generate(cfg, rng.New(g.Seed))
		if err != nil {
			return errCode(http.StatusBadRequest, err)
		}
		opts.Gen = &cfg
	default:
		var err error
		t, cons, err = tree.ReadInstanceJSON(bytes.NewReader(req.Instance))
		if err != nil {
			return errCode(http.StatusBadRequest, err)
		}
		if t.N() > s.opts.MaxNodes {
			return errf(http.StatusBadRequest, "serve: instance has %d nodes, cap is %d", t.N(), s.opts.MaxNodes)
		}
	}

	id := req.ID
	if id == "" {
		id = fmt.Sprintf("i%d", s.autoID.Add(1))
	}
	if err := validateID(id); err != nil {
		return errCode(http.StatusBadRequest, err)
	}
	ex, err := replicasFromModes(req.Existing, t.N(), "existing set")
	if err != nil {
		return errCode(http.StatusBadRequest, err)
	}
	pex, err := replicasFromModes(req.PowerExisting, t.N(), "power existing set")
	if err != nil {
		return errCode(http.StatusBadRequest, err)
	}

	sess, err := NewSession(id, t, cons, opts, ex, pex, 0)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return errCode(http.StatusUnprocessableEntity, err)
		}
		return errCode(http.StatusBadRequest, err)
	}
	if err := s.add(sess); err != nil {
		sess.Close()
		return errCode(http.StatusConflict, err)
	}
	if s.opts.DataDir != "" {
		// Durability starts at load: write the base snapshot and attach
		// the drift journal before acknowledging, so a crash after the
		// 201 can always recover the instance (snapshot) and every
		// subsequently acknowledged drift (journal replay on top).
		if err := s.persistNew(sess); err != nil {
			s.remove(sess.id)
			sess.Close()
			return fmt.Errorf("serve: persisting new instance: %w", err)
		}
	}
	writeJSON(w, http.StatusCreated, s.info(sess))
	return nil
}

// persistNew writes a fresh session's base snapshot and attaches its
// (empty) drift journal.
func (s *Server) persistNew(sess *Session) error {
	if err := os.MkdirAll(s.opts.DataDir, 0o755); err != nil {
		return err
	}
	if _, err := saveSnapshot(s.opts.DataDir, sess); err != nil {
		return err
	}
	w, err := openWAL(walPath(s.opts.DataDir, sess.id), 0)
	if err != nil {
		return err
	}
	sess.attachWAL(w)
	return nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) error {
	sessions := s.all()
	infos := make([]infoResponse, len(sessions))
	for i, sess := range sessions {
		infos[i] = s.info(sess)
	}
	writeJSON(w, http.StatusOK, map[string]any{"instances": infos})
	return nil
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.session(r)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, s.info(sess))
	return nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	sess := s.Session(id)
	if sess == nil || !s.remove(id) {
		return errf(http.StatusNotFound, "serve: no instance %q", id)
	}
	// Close aborts any in-flight tick at its next solver checkpoint
	// (its waiters get ErrClosed) and releases the session's journal
	// handle and worker pools before we respond.
	sess.Close()
	if s.opts.DataDir != "" {
		// Best-effort: stale state must not resurrect the instance on
		// the next restore.
		os.Remove(snapshotPath(s.opts.DataDir, id))
		os.Remove(walPath(s.opts.DataDir, id))
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
	return nil
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.session(r)
	if err != nil {
		return err
	}
	var req driftRequest
	if err := decodeBody(w, r, &req, 64<<20); err != nil {
		return err
	}
	var redraws []Redraw
	if req.Redraw != nil {
		redraws = []Redraw{*req.Redraw}
	}
	res, err := sess.Drift(req.Edits, redraws)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, res)
	return nil
}

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.session(r)
	if err != nil {
		return err
	}
	sn := sess.Snapshot()
	if sn == nil {
		return errf(http.StatusServiceUnavailable, "serve: no placement published yet")
	}
	writeJSON(w, http.StatusOK, sn)
	return nil
}

func (s *Server) handleFront(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.session(r)
	if err != nil {
		return err
	}
	sn := sess.Snapshot()
	if sn == nil || sn.Power == nil {
		return errf(http.StatusNotFound, "serve: instance %q has no power model", sess.id)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tick": sn.Tick, "front": sn.Power.Front})
	return nil
}

// parseIDList parses a comma-separated node id list query parameter.
func parseIDList(val string) ([]int, error) {
	if val == "" {
		return nil, nil
	}
	parts := strings.Split(val, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("serve: bad node id %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.session(r)
	if err != nil {
		return err
	}
	q := r.URL.Query()
	policy := tree.PolicyClosest
	if p := q.Get("policy"); p != "" {
		policy, err = tree.ParsePolicy(p)
		if err != nil {
			return errCode(http.StatusBadRequest, err)
		}
	}
	down, err := parseIDList(q.Get("down"))
	if err != nil {
		return errCode(http.StatusBadRequest, err)
	}
	cuts, err := parseIDList(q.Get("cut"))
	if err != nil {
		return errCode(http.StatusBadRequest, err)
	}
	res, err := sess.Eval(policy, down, cuts)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, res)
	return nil
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.session(r)
	if err != nil {
		return err
	}
	if s.opts.DataDir == "" {
		return errf(http.StatusConflict, "serve: snapshots disabled: no data directory configured (run with -data)")
	}
	if err := os.MkdirAll(s.opts.DataDir, 0o755); err != nil {
		return err
	}
	path, err := saveSnapshot(s.opts.DataDir, sess)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]string{"instance": sess.id, "path": path})
	return nil
}
