// Package cost implements the paper's two cost functions for replica
// reconfiguration: the simple model of Equation (2),
//
//	cost(R) = R + (R-e)·create + (E-e)·delete,
//
// and the modal model of Equation (4) that additionally prices creating a
// server at a given mode, deleting a pre-existing server at a given mode,
// and changing the mode of a reused server.
package cost

import (
	"fmt"
	"slices"

	"replicatree/internal/tree"
)

// Simple is the paper's Equation (2) cost model: operating any server
// costs 1, creating a new server costs an extra Create, and deleting a
// pre-existing server that is not reused costs Delete.
type Simple struct {
	Create float64
	Delete float64
}

// Of returns the cost of a solution with servers total servers, of which
// reused were pre-existing, against existing pre-existing servers.
func (c Simple) Of(servers, reused, existing int) float64 {
	return float64(servers) +
		float64(servers-reused)*c.Create +
		float64(existing-reused)*c.Delete
}

// OfReplicas evaluates a concrete solution against a pre-existing set.
func (c Simple) OfReplicas(solution, existing *tree.Replicas) float64 {
	return c.Of(solution.Count(), solution.Reused(existing), existing.Count())
}

// PrefersFewServers reports whether create + 2·delete < 1, the paper's
// condition under which replacing two pre-existing servers by one new
// server is always advantageous, i.e. cost minimisation gives priority to
// minimising the total number of servers.
func (c Simple) PrefersFewServers() bool {
	return c.Create+2*c.Delete < 1
}

// Validate rejects negative prices.
func (c Simple) Validate() error {
	if c.Create < 0 || c.Delete < 0 {
		return fmt.Errorf("cost: negative prices create=%v delete=%v", c.Create, c.Delete)
	}
	return nil
}

// Modal is the paper's Equation (4) cost model for servers with M modes.
// All slices use 0-based indexing for 1-based modes: Create[i] prices a
// new server operated at mode i+1, Delete[i] a deleted pre-existing
// server that ran at mode i+1, and Change[i][j] a reused server moved
// from mode i+1 to mode j+1 (Change[i][i] should be 0).
type Modal struct {
	Create []float64
	Delete []float64
	Change [][]float64
}

// UniformModal builds a modal cost with the same create price for every
// mode, the same delete price, and the same change price for every pair
// of distinct modes (diagonal zero). This matches the paper's Experiment
// 3 settings.
func UniformModal(modes int, create, del, change float64) Modal {
	m := Modal{
		Create: make([]float64, modes),
		Delete: make([]float64, modes),
		Change: make([][]float64, modes),
	}
	for i := 0; i < modes; i++ {
		m.Create[i] = create
		m.Delete[i] = del
		m.Change[i] = make([]float64, modes)
		for j := 0; j < modes; j++ {
			if i != j {
				m.Change[i][j] = change
			}
		}
	}
	return m
}

// M returns the number of modes the cost model covers.
func (c Modal) M() int { return len(c.Create) }

// Equal reports whether two modal models price every action
// identically. The incremental power solver uses it to decide whether
// its retained root-scan fronts survive a cost-model swap.
func (c Modal) Equal(o Modal) bool {
	if !slices.Equal(c.Create, o.Create) || !slices.Equal(c.Delete, o.Delete) ||
		len(c.Change) != len(o.Change) {
		return false
	}
	for i := range c.Change {
		if !slices.Equal(c.Change[i], o.Change[i]) {
			return false
		}
	}
	return true
}

// Validate checks shape consistency and non-negative prices.
func (c Modal) Validate() error {
	m := len(c.Create)
	if m == 0 {
		return fmt.Errorf("cost: modal model with zero modes")
	}
	if len(c.Delete) != m || len(c.Change) != m {
		return fmt.Errorf("cost: inconsistent mode counts: create=%d delete=%d change=%d",
			m, len(c.Delete), len(c.Change))
	}
	for i := 0; i < m; i++ {
		if c.Create[i] < 0 || c.Delete[i] < 0 {
			return fmt.Errorf("cost: negative price at mode %d", i+1)
		}
		if len(c.Change[i]) != m {
			return fmt.Errorf("cost: change row %d has %d entries, want %d", i, len(c.Change[i]), m)
		}
		for j := 0; j < m; j++ {
			if c.Change[i][j] < 0 {
				return fmt.Errorf("cost: negative change price %d->%d", i+1, j+1)
			}
		}
	}
	return nil
}

// Tally counts the reconfiguration actions of a solution against a
// pre-existing deployment: ni new servers per final mode, e_{i,i'}
// reused servers per (initial, final) mode pair, and ki dropped
// pre-existing servers per initial mode.
type Tally struct {
	New     []int   // New[i]: new servers operated at mode i+1
	Reuse   [][]int // Reuse[i][j]: reused servers moved from mode i+1 to mode j+1
	Dropped []int   // Dropped[i]: deleted pre-existing servers that ran at mode i+1
}

// NewTally returns a zero tally for a model with the given mode count.
func NewTally(modes int) Tally {
	t := Tally{
		New:     make([]int, modes),
		Reuse:   make([][]int, modes),
		Dropped: make([]int, modes),
	}
	for i := range t.Reuse {
		t.Reuse[i] = make([]int, modes)
	}
	return t
}

// Servers returns the total number of servers R in the tallied solution.
func (t Tally) Servers() int {
	r := 0
	for _, n := range t.New {
		r += n
	}
	for _, row := range t.Reuse {
		for _, e := range row {
			r += e
		}
	}
	return r
}

// Reused returns the number of reused pre-existing servers e.
func (t Tally) Reused() int {
	e := 0
	for _, row := range t.Reuse {
		for _, v := range row {
			e += v
		}
	}
	return e
}

// TallyReplicas compares a solution with a pre-existing deployment and
// counts creations, reuses (with mode transitions) and deletions. Both
// sets must be sized identically and use modes within [1, modes].
func TallyReplicas(solution, existing *tree.Replicas, modes int) (Tally, error) {
	if solution.N() != existing.N() {
		return Tally{}, fmt.Errorf("cost: solution covers %d nodes, existing %d", solution.N(), existing.N())
	}
	t := NewTally(modes)
	for j := 0; j < solution.N(); j++ {
		sm, em := solution.Mode(j), existing.Mode(j)
		if int(sm) > modes || int(em) > modes {
			return Tally{}, fmt.Errorf("cost: node %d uses mode beyond M=%d (solution %d, existing %d)", j, modes, sm, em)
		}
		switch {
		case sm != tree.NoMode && em != tree.NoMode:
			t.Reuse[em-1][sm-1]++
		case sm != tree.NoMode:
			t.New[sm-1]++
		case em != tree.NoMode:
			t.Dropped[em-1]++
		}
	}
	return t, nil
}

// Of evaluates Equation (4) on a tally.
func (c Modal) Of(t Tally) float64 {
	total := float64(t.Servers())
	for i, n := range t.New {
		total += c.Create[i] * float64(n)
	}
	for i, k := range t.Dropped {
		total += c.Delete[i] * float64(k)
	}
	for i, row := range t.Reuse {
		for j, e := range row {
			total += c.Change[i][j] * float64(e)
		}
	}
	return total
}

// OfReplicas evaluates a concrete solution against a pre-existing set.
func (c Modal) OfReplicas(solution, existing *tree.Replicas) (float64, error) {
	t, err := TallyReplicas(solution, existing, c.M())
	if err != nil {
		return 0, err
	}
	return c.Of(t), nil
}
