package cost

import (
	"math"
	"testing"
	"testing/quick"

	"replicatree/internal/tree"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSimpleOf(t *testing.T) {
	c := Simple{Create: 0.1, Delete: 0.01}
	// 5 servers, 2 reused, 4 pre-existing:
	// 5 + 3*0.1 + 2*0.01 = 5.32
	if got := c.Of(5, 2, 4); !almost(got, 5.32) {
		t.Fatalf("Of = %v, want 5.32", got)
	}
	// No pre-existing: cost reduces to R + R*create.
	if got := c.Of(3, 0, 0); !almost(got, 3.3) {
		t.Fatalf("Of = %v, want 3.3", got)
	}
	// Zero prices: cost is just R.
	if got := (Simple{}).Of(7, 3, 5); !almost(got, 7) {
		t.Fatalf("Of = %v, want 7", got)
	}
}

func TestSimpleOfReplicas(t *testing.T) {
	sol := tree.NewReplicas(6)
	sol.Set(0, 1)
	sol.Set(2, 1)
	sol.Set(3, 1)
	ex := tree.NewReplicas(6)
	ex.Set(2, 1)
	ex.Set(4, 1)
	c := Simple{Create: 0.5, Delete: 0.25}
	// R=3, e=1, E=2: 3 + 2*0.5 + 1*0.25 = 4.25
	if got := c.OfReplicas(sol, ex); !almost(got, 4.25) {
		t.Fatalf("OfReplicas = %v, want 4.25", got)
	}
}

func TestPrefersFewServers(t *testing.T) {
	if !(Simple{Create: 0.1, Delete: 0.01}).PrefersFewServers() {
		t.Error("0.1 + 2*0.01 < 1 should prefer few servers")
	}
	if (Simple{Create: 0.5, Delete: 0.3}).PrefersFewServers() {
		t.Error("0.5 + 0.6 >= 1 should not prefer few servers")
	}
}

func TestSimpleValidate(t *testing.T) {
	if err := (Simple{Create: 1, Delete: 0}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Simple{Create: -1}).Validate(); err == nil {
		t.Fatal("negative create accepted")
	}
}

func TestUniformModal(t *testing.T) {
	c := UniformModal(2, 0.1, 0.01, 0.001)
	if c.M() != 2 {
		t.Fatalf("M = %d", c.M())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Change[0][0] != 0 || c.Change[1][1] != 0 {
		t.Fatal("diagonal change costs not zero")
	}
	if c.Change[0][1] != 0.001 || c.Change[1][0] != 0.001 {
		t.Fatal("off-diagonal change costs wrong")
	}
}

func TestModalValidateErrors(t *testing.T) {
	cases := []Modal{
		{},
		{Create: []float64{1}, Delete: []float64{1, 2}, Change: [][]float64{{0}}},
		{Create: []float64{-1}, Delete: []float64{1}, Change: [][]float64{{0}}},
		{Create: []float64{1}, Delete: []float64{1}, Change: [][]float64{{0, 0}}},
		{Create: []float64{1}, Delete: []float64{1}, Change: [][]float64{{-0.5}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTallyReplicas(t *testing.T) {
	sol := tree.NewReplicas(8)
	ex := tree.NewReplicas(8)
	sol.Set(0, 2) // new at mode 2
	sol.Set(1, 1) // new at mode 1
	ex.Set(2, 1)  // dropped mode 1
	ex.Set(3, 2)  // dropped mode 2
	sol.Set(4, 1) // reuse 1->1
	ex.Set(4, 1)
	sol.Set(5, 2) // reuse 1->2 (upgrade)
	ex.Set(5, 1)
	sol.Set(6, 1) // reuse 2->1 (downgrade)
	ex.Set(6, 2)
	tally, err := TallyReplicas(sol, ex, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tally.New[0] != 1 || tally.New[1] != 1 {
		t.Fatalf("New = %v", tally.New)
	}
	if tally.Dropped[0] != 1 || tally.Dropped[1] != 1 {
		t.Fatalf("Dropped = %v", tally.Dropped)
	}
	if tally.Reuse[0][0] != 1 || tally.Reuse[0][1] != 1 || tally.Reuse[1][0] != 1 || tally.Reuse[1][1] != 0 {
		t.Fatalf("Reuse = %v", tally.Reuse)
	}
	if tally.Servers() != 5 {
		t.Fatalf("Servers = %d, want 5", tally.Servers())
	}
	if tally.Reused() != 3 {
		t.Fatalf("Reused = %d, want 3", tally.Reused())
	}
}

func TestTallyReplicasErrors(t *testing.T) {
	if _, err := TallyReplicas(tree.NewReplicas(2), tree.NewReplicas(3), 2); err == nil {
		t.Error("size mismatch accepted")
	}
	sol := tree.NewReplicas(1)
	sol.Set(0, 3)
	if _, err := TallyReplicas(sol, tree.NewReplicas(1), 2); err == nil {
		t.Error("mode above M accepted")
	}
}

func TestModalOf(t *testing.T) {
	c := UniformModal(2, 0.1, 0.01, 0.001)
	tally := NewTally(2)
	tally.New[0] = 2      // 2 new at mode 1
	tally.Reuse[0][1] = 1 // 1 upgraded
	tally.Dropped[1] = 3  // 3 deleted
	// R = 3; cost = 3 + 2*0.1 + 1*0.001 + 3*0.01 = 3.231
	if got := c.Of(tally); !almost(got, 3.231) {
		t.Fatalf("Of = %v, want 3.231", got)
	}
}

func TestModalOfReplicasMatchesSimple(t *testing.T) {
	// With one mode and uniform prices, the modal cost must equal the
	// simple cost for any pair of replica sets.
	f := func(solBits, exBits uint16) bool {
		sol := tree.NewReplicas(16)
		ex := tree.NewReplicas(16)
		for j := 0; j < 16; j++ {
			if solBits&(1<<j) != 0 {
				sol.Set(j, 1)
			}
			if exBits&(1<<j) != 0 {
				ex.Set(j, 1)
			}
		}
		modal := UniformModal(1, 0.3, 0.2, 0)
		simple := Simple{Create: 0.3, Delete: 0.2}
		got, err := modal.OfReplicas(sol, ex)
		if err != nil {
			return false
		}
		return almost(got, simple.OfReplicas(sol, ex))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestModalOfReplicasError(t *testing.T) {
	c := UniformModal(1, 0, 0, 0)
	sol := tree.NewReplicas(1)
	sol.Set(0, 2)
	if _, err := c.OfReplicas(sol, tree.NewReplicas(1)); err == nil {
		t.Fatal("mode above M accepted")
	}
}

// Property: paper Equation (4) computed independently matches Modal.Of.
func TestQuickModalEquationFour(t *testing.T) {
	f := func(n1, n2, e11, e12, e21, e22, k1, k2 uint8) bool {
		c := Modal{
			Create: []float64{0.5, 0.7},
			Delete: []float64{0.2, 0.3},
			Change: [][]float64{{0, 0.05}, {0.04, 0}},
		}
		tally := NewTally(2)
		tally.New[0], tally.New[1] = int(n1%10), int(n2%10)
		tally.Reuse[0][0], tally.Reuse[0][1] = int(e11%10), int(e12%10)
		tally.Reuse[1][0], tally.Reuse[1][1] = int(e21%10), int(e22%10)
		tally.Dropped[0], tally.Dropped[1] = int(k1%10), int(k2%10)
		R := tally.Servers()
		want := float64(R) +
			0.5*float64(tally.New[0]) + 0.7*float64(tally.New[1]) +
			0.2*float64(tally.Dropped[0]) + 0.3*float64(tally.Dropped[1]) +
			0.05*float64(tally.Reuse[0][1]) + 0.04*float64(tally.Reuse[1][0])
		return almost(c.Of(tally), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestModalEqual(t *testing.T) {
	a := UniformModal(2, 0.1, 0.01, 0.001)
	b := UniformModal(2, 0.1, 0.01, 0.001)
	if !a.Equal(b) || !b.Equal(a) || !a.Equal(a) {
		t.Fatal("identical models compare unequal")
	}
	c := UniformModal(2, 0.1, 0.01, 0.002)
	if a.Equal(c) {
		t.Fatal("different change price compares equal")
	}
	d := UniformModal(3, 0.1, 0.01, 0.001)
	if a.Equal(d) {
		t.Fatal("different mode count compares equal")
	}
	e := UniformModal(2, 0.1, 0.01, 0.001)
	e.Delete[1] = 0.5
	if a.Equal(e) {
		t.Fatal("different delete price compares equal")
	}
	if (Modal{}).Equal(a) || !(Modal{}).Equal(Modal{}) {
		t.Fatal("zero-model comparisons broken")
	}
}
