package failure

import (
	"math"
	"reflect"
	"testing"

	"replicatree/internal/tree"
)

func TestMaskTransitions(t *testing.T) {
	m := NewMask(4)
	if !m.NodeUp(2) || !m.LinkUp(3) || m.DownNodes() != 0 {
		t.Fatal("fresh mask not all-up")
	}
	if !m.CrashNode(2) || m.CrashNode(2) {
		t.Fatal("crash should change state once")
	}
	if m.NodeUp(2) || m.DownNodes() != 1 {
		t.Fatal("crash not applied")
	}
	if !m.CutLink(3) || m.CutLinks() != 1 {
		t.Fatal("cut not applied")
	}
	gen := m.Generation()
	if m.RecoverNode(3) { // was already up
		t.Fatal("recovering an up node should be a no-op")
	}
	if m.Generation() != gen {
		t.Fatal("no-op advanced the generation")
	}
	if m.Apply(Event{Kind: NodeCrash, Node: 99}) || m.Apply(Event{Kind: NodeCrash, Node: -1}) {
		t.Fatal("out-of-range events must be rejected")
	}
	c := m.Clone()
	m.Reset()
	if m.DownNodes() != 0 || m.CutLinks() != 0 || !m.NodeUp(2) || !m.LinkUp(3) {
		t.Fatal("reset did not clear the mask")
	}
	if c.NodeUp(2) || c.DownNodes() != 1 || c.CutLinks() != 1 {
		t.Fatal("clone should keep the pre-reset state")
	}

	var nilMask *Mask
	if !nilMask.NodeUp(0) || !nilMask.LinkUp(0) || nilMask.DownNodes() != 0 {
		t.Fatal("nil mask must report all-up")
	}
}

func TestScheduleOrderIndependence(t *testing.T) {
	a := NewSchedule()
	a.Add(3, NodeCrash, 1)
	a.Add(1, NodeCrash, 2)
	a.Add(3, NodeRecover, 2)
	b := NewSchedule()
	b.Add(3, NodeRecover, 2)
	b.Add(3, NodeCrash, 1)
	b.Add(1, NodeCrash, 2)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("canonical order differs: %v vs %v", a.Events(), b.Events())
	}
}

func TestScheduleReplay(t *testing.T) {
	s := NewSchedule()
	s.Add(2, NodeCrash, 1)
	s.Add(5, NodeRecover, 1)
	m := NewMask(3)
	if s.AdvanceTo(1, m) {
		t.Fatal("no event before step 2")
	}
	if !s.AdvanceTo(2, m) || m.NodeUp(1) {
		t.Fatal("crash at step 2 not applied")
	}
	if s.AdvanceTo(4, m) {
		t.Fatal("nothing happens at steps 3-4")
	}
	if !s.AdvanceTo(10, m) || !m.NodeUp(1) {
		t.Fatal("recovery not applied")
	}
	s.Rewind()
	m.Reset()
	if !s.AdvanceTo(10, m) || !m.NodeUp(1) || m.Generation() == 0 {
		t.Fatal("rewound replay should re-apply both events")
	}
}

func TestStochasticDeterministic(t *testing.T) {
	cfg := StochasticConfig{Nodes: 50, Horizon: 500, MTTF: 80, MTTR: 10, Seed: 7}
	a, err := Stochastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stochastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("expected some events over 500 steps at MTTF 80")
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same config must draw the same schedule")
	}
	last := -1
	for _, e := range a.Events() {
		if e.Step < last {
			t.Fatal("events out of order")
		}
		last = e.Step
		if e.Step >= cfg.Horizon {
			t.Fatalf("event at %d beyond horizon %d", e.Step, cfg.Horizon)
		}
		if e.Node == 0 {
			t.Fatal("root must not crash unless CrashRoot is set")
		}
		if e.Kind != NodeCrash && e.Kind != NodeRecover {
			t.Fatalf("unexpected kind %v without Links", e.Kind)
		}
	}

	// Replaying the schedule leaves a consistent mask: every crash is
	// either recovered or still pending, never double-applied.
	m := NewMask(cfg.Nodes)
	a.AdvanceTo(cfg.Horizon, m)
	if m.DownNodes() < 0 || m.DownNodes() > cfg.Nodes {
		t.Fatalf("implausible down count %d", m.DownNodes())
	}

	if _, err := Stochastic(StochasticConfig{Nodes: 0, Horizon: 1, MTTF: 1, MTTR: 1}); err == nil {
		t.Fatal("want error for zero nodes")
	}
	if _, err := Stochastic(StochasticConfig{Nodes: 1, Horizon: 1, MTTF: 0, MTTR: 1}); err == nil {
		t.Fatal("want error for zero MTTF")
	}
}

func TestExpectedUnserved(t *testing.T) {
	// Chain root(0) - 1 - 2, 10 requests at node 2.
	b := tree.NewBuilder()
	n1 := b.AddNode(b.Root())
	n2 := b.AddNode(n1)
	b.AddClient(n2, 10)
	tr := b.MustBuild()

	up := []float64{0.5, 0.9, 0.8}
	r := tree.ReplicasOf(tr)
	r.Set(0, 1)
	r.Set(n1, 1)

	// Closest: served iff access node 2 and forced server 1 are up.
	got, err := ExpectedUnserved(tr, r, up, tree.PolicyClosest)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * (1 - 0.8*0.9)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("closest expected unserved %v, want %v", got, want)
	}

	// Upwards: served iff node 2 is up and not both servers are down.
	got, err = ExpectedUnserved(tr, r, up, tree.PolicyUpwards)
	if err != nil {
		t.Fatal(err)
	}
	want = 10 * (1 - 0.8*(1-(1-0.9)*(1-0.5)))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("upwards expected unserved %v, want %v", got, want)
	}

	// No server at all: everything is expected-unserved.
	empty := tree.ReplicasOf(tr)
	got, err = ExpectedUnserved(tr, empty, up, tree.PolicyClosest)
	if err != nil || got != 10 {
		t.Fatalf("empty placement: got %v, %v; want 10", got, err)
	}

	// Hedging lowers the closest-policy figure: a second server on the
	// path can serve nothing under forced routing, but under upwards it
	// does; under closest only the forced pair matters.
	if _, err := ExpectedUnserved(tr, r, []float64{2, 0, 0}, tree.PolicyClosest); err == nil {
		t.Fatal("want error for probability outside [0,1]")
	}
	if _, err := ExpectedUnserved(tr, r, up[:2], tree.PolicyClosest); err == nil {
		t.Fatal("want error for short probability vector")
	}
}
