package failure

import (
	"fmt"

	"replicatree/internal/tree"
)

// ExpectedUnserved returns the expected demand per time step that
// placement r fails to serve on t when node j is independently up with
// probability up[j] — the availability objective of the Availability
// Aware Continuous Replica Placement Problem (arXiv 1605.04069),
// evaluated against this package's fault model (a down node neither
// serves nor admits its attached clients; links are assumed intact).
//
// Under the closest policy routing is forced, so the demand attached to
// node o is served exactly when o and its forced server are both up:
//
//	E[unserved] = Σ_o d_o · (1 − p_o · p_srv(o))
//
// (p_o alone when o serves itself; d_o outright when no server lies on
// o's path). Under the upwards and multiple policies routing climbs
// past down servers, so demand at o is counted served whenever o is up
// and any equipped node on o's root path is up — a capacity-relaxed
// optimistic bound (capacity contention among survivors is ignored;
// the netsim failure replay measures the exact figure):
//
//	E[unserved] = Σ_o d_o · (1 − p_o · (1 − Π_{s on path, equipped} (1 − p_s)))
//
// Lower is better; hedged placements (greedy.HedgePlacement) buy their
// advantage here by keeping several equipped nodes on every path.
func ExpectedUnserved(t *tree.Tree, r *tree.Replicas, up []float64, p tree.Policy) (float64, error) {
	n := t.N()
	if r.N() != n {
		return 0, fmt.Errorf("failure: placement covers %d nodes, tree has %d", r.N(), n)
	}
	if len(up) != n {
		return 0, fmt.Errorf("failure: %d up-probabilities for %d nodes", len(up), n)
	}
	for j, q := range up {
		if q < 0 || q > 1 {
			return 0, fmt.Errorf("failure: up-probability %v of node %d outside [0,1]", q, j)
		}
	}
	if !p.Valid() {
		return 0, fmt.Errorf("failure: unknown access policy %v", p)
	}

	exp := 0.0
	switch p {
	case tree.PolicyClosest:
		srv := tree.Assignments(t, r)
		for o := 0; o < n; o++ {
			d := float64(t.ClientSum(o))
			if d == 0 {
				continue
			}
			if srv[o] < 0 {
				exp += d
				continue
			}
			ps := up[o]
			if srv[o] != o {
				ps *= up[srv[o]]
			}
			exp += d * (1 - ps)
		}
	default:
		// allDown[o] is the probability that every equipped node on
		// o's root path (o included) is down; composed top-down.
		allDown := make([]float64, n)
		post := t.PostOrder()
		for i := len(post) - 1; i >= 0; i-- {
			o := post[i]
			pd := 1.0
			if par := t.Parent(o); par >= 0 {
				pd = allDown[par]
			}
			if r.Has(o) {
				pd *= 1 - up[o]
			}
			allDown[o] = pd
			if d := float64(t.ClientSum(o)); d > 0 {
				exp += d * (1 - up[o]*(1-pd))
			}
		}
	}
	return exp, nil
}
