package failure

import (
	"fmt"
	"math"
	"sort"

	"replicatree/internal/rng"
)

// EventKind enumerates the fault transitions a Schedule can carry.
type EventKind uint8

const (
	// NodeCrash takes a node out of service: a replica placed there
	// stops serving and the node's attached clients are disconnected.
	NodeCrash EventKind = iota + 1
	// NodeRecover returns a crashed node to service.
	NodeRecover
	// LinkCut severs the link from a node to its parent, isolating the
	// node's subtree from every server outside it.
	LinkCut
	// LinkRestore repairs a cut link.
	LinkRestore
)

func (k EventKind) String() string {
	switch k {
	case NodeCrash:
		return "crash"
	case NodeRecover:
		return "recover"
	case LinkCut:
		return "cut"
	case LinkRestore:
		return "restore"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one fault transition: at the start of time step Step, Node
// changes state per Kind. For LinkCut/LinkRestore, Node identifies the
// link by its lower endpoint (the link to the node's parent), matching
// the bandwidth convention of tree.Constraints.
type Event struct {
	Step int
	Kind EventKind
	Node int
}

// Mask is the instantaneous up/down view of an n-node tree. It
// implements tree.FaultMask, so it plugs directly into
// tree.Engine.EvalMasked and core.MinCostSolver.SetMask. A nil *Mask
// reports everything up. Methods are not safe for concurrent mutation.
type Mask struct {
	nodeDown []bool
	linkDown []bool
	downN    int // count of down nodes
	downL    int // count of cut links
	gen      uint64
}

// NewMask returns an all-up mask over n nodes.
func NewMask(n int) *Mask {
	return &Mask{nodeDown: make([]bool, n), linkDown: make([]bool, n)}
}

// N returns the number of nodes the mask covers (0 for a nil mask).
func (m *Mask) N() int {
	if m == nil {
		return 0
	}
	return len(m.nodeDown)
}

// NodeUp reports whether node j is operational.
func (m *Mask) NodeUp(j int) bool { return m == nil || !m.nodeDown[j] }

// LinkUp reports whether the link from node j to its parent is intact.
// The root's (nonexistent) upward link is always up.
func (m *Mask) LinkUp(j int) bool { return m == nil || !m.linkDown[j] }

// DownNodes returns the number of currently crashed nodes.
func (m *Mask) DownNodes() int {
	if m == nil {
		return 0
	}
	return m.downN
}

// CutLinks returns the number of currently severed links.
func (m *Mask) CutLinks() int {
	if m == nil {
		return 0
	}
	return m.downL
}

// Generation returns a counter advanced by every state-changing
// transition, letting caches detect that the mask moved between reads.
func (m *Mask) Generation() uint64 {
	if m == nil {
		return 0
	}
	return m.gen
}

// Apply performs one transition and reports whether the mask changed
// (crashing an already-down node is a no-op). Out-of-range nodes and
// unknown kinds are rejected with false rather than a panic: schedules
// may be replayed against trees smaller than the one they were built
// for.
func (m *Mask) Apply(e Event) bool {
	if m == nil || e.Node < 0 || e.Node >= len(m.nodeDown) {
		return false
	}
	switch e.Kind {
	case NodeCrash:
		return m.setNode(e.Node, true)
	case NodeRecover:
		return m.setNode(e.Node, false)
	case LinkCut:
		return m.setLink(e.Node, true)
	case LinkRestore:
		return m.setLink(e.Node, false)
	}
	return false
}

func (m *Mask) setNode(j int, down bool) bool {
	if m.nodeDown[j] == down {
		return false
	}
	m.nodeDown[j] = down
	if down {
		m.downN++
	} else {
		m.downN--
	}
	m.gen++
	return true
}

func (m *Mask) setLink(j int, down bool) bool {
	if m.linkDown[j] == down {
		return false
	}
	m.linkDown[j] = down
	if down {
		m.downL++
	} else {
		m.downL--
	}
	m.gen++
	return true
}

// CrashNode marks node j down; see Apply for the semantics.
func (m *Mask) CrashNode(j int) bool { return m.Apply(Event{Kind: NodeCrash, Node: j}) }

// RecoverNode marks node j up again.
func (m *Mask) RecoverNode(j int) bool { return m.Apply(Event{Kind: NodeRecover, Node: j}) }

// CutLink severs the link from node j to its parent.
func (m *Mask) CutLink(j int) bool { return m.Apply(Event{Kind: LinkCut, Node: j}) }

// RestoreLink repairs the link from node j to its parent.
func (m *Mask) RestoreLink(j int) bool { return m.Apply(Event{Kind: LinkRestore, Node: j}) }

// Reset returns every node and link to the up state.
func (m *Mask) Reset() {
	if m == nil {
		return
	}
	if m.downN > 0 || m.downL > 0 {
		m.gen++
	}
	for j := range m.nodeDown {
		m.nodeDown[j] = false
		m.linkDown[j] = false
	}
	m.downN, m.downL = 0, 0
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	if m == nil {
		return nil
	}
	return &Mask{
		nodeDown: append([]bool(nil), m.nodeDown...),
		linkDown: append([]bool(nil), m.linkDown...),
		downN:    m.downN,
		downL:    m.downL,
		gen:      m.gen,
	}
}

// Schedule is a step-ordered sequence of fault events with a replay
// cursor. Build one by scripting events with Add, by drawing a
// stochastic MTTF/MTTR history with Stochastic, or both (scripted and
// stochastic events merge into one deterministic order). A Schedule is
// not safe for concurrent use.
type Schedule struct {
	events []Event
	sorted bool
	cursor int
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{sorted: true} }

// Add appends a scripted event taking effect at the start of the given
// step. Negative steps and nodes are rejected with a panic: schedules
// are driver code.
func (s *Schedule) Add(step int, kind EventKind, node int) {
	if step < 0 || node < 0 {
		panic(fmt.Sprintf("failure: Add(%d, %v, %d) out of range", step, kind, node))
	}
	s.events = append(s.events, Event{Step: step, Kind: kind, Node: node})
	s.sorted = false
}

// Len returns the total number of events in the schedule.
func (s *Schedule) Len() int { return len(s.events) }

// Events returns the step-ordered event sequence. The slice aliases the
// schedule's storage; callers must not mutate it.
func (s *Schedule) Events() []Event {
	s.sort()
	return s.events
}

// sort establishes the canonical replay order: by step, then node, then
// kind, so the order is a pure function of the event set — independent
// of insertion order — and replays are deterministic.
func (s *Schedule) sort() {
	if s.sorted {
		return
	}
	sort.SliceStable(s.events, func(a, b int) bool {
		ea, eb := s.events[a], s.events[b]
		if ea.Step != eb.Step {
			return ea.Step < eb.Step
		}
		if ea.Node != eb.Node {
			return ea.Node < eb.Node
		}
		return ea.Kind < eb.Kind
	})
	s.sorted = true
}

// AdvanceTo applies every not-yet-applied event scheduled at or before
// step to the mask and reports whether the mask changed. Steps must be
// visited in nondecreasing order between Rewinds; the cursor skips
// already-applied events.
func (s *Schedule) AdvanceTo(step int, m *Mask) bool {
	s.sort()
	changed := false
	for s.cursor < len(s.events) && s.events[s.cursor].Step <= step {
		if m.Apply(s.events[s.cursor]) {
			changed = true
		}
		s.cursor++
	}
	return changed
}

// Rewind resets the replay cursor so the schedule can be replayed from
// step 0 (typically against a freshly Reset mask).
func (s *Schedule) Rewind() { s.cursor = 0 }

// StochasticConfig parameterises Stochastic.
type StochasticConfig struct {
	// Nodes is the number of nodes fault histories are drawn for.
	Nodes int
	// Horizon bounds the drawn history: no event is scheduled at or
	// after this step.
	Horizon int
	// MTTF and MTTR are the mean time to failure and to repair, in
	// steps, of the per-node alternating exponential renewal process.
	MTTF, MTTR float64
	// CrashRoot lets the root crash too (default false: a dead root
	// makes every closest-policy instance trivially lossy, which drowns
	// the signal most experiments are after).
	CrashRoot bool
	// Links draws link-cut histories with the same MTTF/MTTR for every
	// non-root link when set; node crashes are always drawn.
	Links bool
	// Seed drives the per-node rng.Derive streams.
	Seed uint64
}

// Stochastic draws a deterministic fault history: each node (and
// optionally each link) alternates exponentially distributed up
// (mean MTTF) and down (mean MTTR) durations, quantised to whole steps
// of at least one, until the horizon. Distinct nodes draw from
// independent rng.Derive(seed, ·) streams, so the history is a pure
// function of the config regardless of evaluation order.
func Stochastic(cfg StochasticConfig) (*Schedule, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("failure: Stochastic over %d nodes", cfg.Nodes)
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("failure: negative horizon %d", cfg.Horizon)
	}
	if cfg.MTTF <= 0 || cfg.MTTR <= 0 {
		return nil, fmt.Errorf("failure: non-positive MTTF %v or MTTR %v", cfg.MTTF, cfg.MTTR)
	}
	s := NewSchedule()
	for j := 0; j < cfg.Nodes; j++ {
		if j > 0 || cfg.CrashRoot {
			drawHistory(s, rng.Derive(cfg.Seed, j), cfg.Horizon, cfg.MTTF, cfg.MTTR, j, NodeCrash, NodeRecover)
		}
		if cfg.Links && j > 0 {
			// Offsetting by Nodes decorrelates a node's link stream
			// from its crash stream.
			drawHistory(s, rng.Derive(cfg.Seed, cfg.Nodes+j), cfg.Horizon, cfg.MTTF, cfg.MTTR, j, LinkCut, LinkRestore)
		}
	}
	s.sort()
	return s, nil
}

// drawHistory appends one alternating up/down renewal history for node
// j to the schedule (out of global order; Schedule.sort restores it).
func drawHistory(s *Schedule, src *rng.Source, horizon int, mttf, mttr float64, j int, down, up EventKind) {
	s.sorted = false
	step := 0
	for {
		step += expSteps(src, mttf)
		if step >= horizon {
			return
		}
		s.events = append(s.events, Event{Step: step, Kind: down, Node: j})
		step += expSteps(src, mttr)
		if step >= horizon {
			return
		}
		s.events = append(s.events, Event{Step: step, Kind: up, Node: j})
	}
}

// expSteps draws an exponential duration with the given mean, quantised
// to a whole number of steps >= 1.
func expSteps(src *rng.Source, mean float64) int {
	d := -mean * math.Log(1-src.Float64())
	if d < 1 {
		return 1
	}
	if d > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(d)
}

// UpProbability returns the stationary availability MTTF/(MTTF+MTTR) of
// the alternating renewal process Stochastic draws from — the per-node
// up-probability to feed ExpectedUnserved.
func UpProbability(mttf, mttr float64) float64 {
	return mttf / (mttf + mttr)
}
