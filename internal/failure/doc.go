// Package failure models node crashes and link cuts in a distribution
// tree: a Schedule of scripted and stochastic (seeded MTTF/MTTR)
// events, and a Mask — the instantaneous up/down view the rest of the
// stack consults. tree.Engine.EvalMasked routes request flows under a
// mask, netsim replays schedules step by step (Simulator.WithFailures),
// and core.MinCostSolver.SetMask re-solves placement around failed
// nodes incrementally.
//
// # Fault model
//
// A node crash (NodeCrash/NodeRecover) takes the node's server — if one
// is placed there — out of service and disconnects the clients attached
// to the node; traffic from the node's subtree still transits through
// it (the routing fabric survives, only the service and access
// functions fail). A link cut (LinkCut/LinkRestore) severs the edge
// from a node to its parent: no request originating inside the severed
// subtree can reach a server outside it.
//
// # Degradation contract per policy
//
// When a request's server is unavailable the outcome depends on the
// access policy, mirroring how much freedom the policy gives the
// routing:
//
//   - Closest: routing is forced by the placement — a request is bound
//     to its first equipped ancestor whether or not that ancestor is
//     up. A down server, a down access node, or a cut link on the path
//     makes the request fail: it is tallied as failure-unserved
//     (Metrics.UnservedDemand), never rerouted and never silently
//     over-served. Requests whose path carries no server at all keep
//     their pre-failure accounting (they drop at the root, as without
//     failures).
//   - Upwards and Multiple: routing is capacity-aware and may climb, so
//     a down server is treated exactly like an unequipped node — the
//     demand continues toward the root and may be absorbed by a live
//     server higher up. Only demand trapped behind a cut link, or
//     issued at a down access node, is failure-unserved; demand passing
//     the root unabsorbed stays in the ordinary Dropped tally, as
//     without failures.
//
// Under every policy the per-step conservation law holds:
//
//	served + dropped + failure-unserved == issued.
//
// # Masked re-solve and the dirty-chain bound
//
// core.MinCostSolver accepts a mask (SetMask): a down node cannot host
// a replica, while its demand — it may still have attached clients that
// will reconnect on recovery — remains part of the instance. Placement
// feasibility is decided against the full demand, so a repaired
// placement is valid both during and after the outage. Masks are
// node-only on the solver: link cuts degrade service (EvalMasked) but
// never trigger placement changes.
//
// The solver observes mask changes by diffing against the previous
// solve's mask, exactly like pre-existing-set changes: whether node j
// may host a replica is decided in its parent's merge step, so a crash
// or recovery of j dirties parent(j) and, by propagation, the ancestor
// chain of j — and nothing else. An incremental re-solve after a crash
// therefore recomputes O(depth) node tables (the blast radius of the
// event), not O(N), and is byte-identical to a cold solve of the same
// masked instance (differentially tested over random crash/recover
// sequences in the core package).
//
// # Determinism
//
// Stochastic schedules draw per-node exponential up/down durations from
// rng.Derive(seed, node) streams, so a schedule is a pure function of
// (seed, nodes, horizon, MTTF, MTTR) — independent of iteration order,
// worker counts and goroutine scheduling. Replaying one schedule
// through netsim at any solver worker count yields byte-identical
// metrics.
package failure
