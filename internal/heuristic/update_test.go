package heuristic

import (
	"math"
	"testing"
	"testing/quick"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func TestUpdateAwareValidatesArgs(t *testing.T) {
	tr := tree.MustGenerate(tree.FatConfig(10), rng.New(1))
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	if _, err := UpdateAware(tr, tree.NewReplicas(3), 10, c, Options{}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := UpdateAware(tr, nil, 0, c, Options{}); err == nil {
		t.Error("W=0 accepted")
	}
	if _, err := UpdateAware(tr, nil, 10, cost.Simple{Create: -1}, Options{}); err == nil {
		t.Error("negative price accepted")
	}
}

func TestUpdateAwareInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	b.AddClient(0, 99)
	res, err := UpdateAware(b.MustBuild(), nil, 10, cost.Simple{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("found a solution for an infeasible instance")
	}
}

func TestUpdateAwareFigure1(t *testing.T) {
	// The heuristic should recover the optimal decisions of the
	// paper's running example.
	build := func(rootReq int) (*tree.Tree, *tree.Replicas) {
		b := tree.NewBuilder()
		a := b.AddNode(b.Root())
		bb := b.AddNode(a)
		cc := b.AddNode(a)
		b.AddClient(bb, 4)
		b.AddClient(cc, 7)
		if rootReq > 0 {
			b.AddClient(b.Root(), rootReq)
		}
		tr := b.MustBuild()
		ex := tree.ReplicasOf(tr)
		ex.Set(bb, 1)
		return tr, ex
	}
	c := cost.Simple{Create: 0.1, Delete: 0.01}

	tr, ex := build(2)
	res, err := UpdateAware(tr, ex, 10, c, Options{})
	if err != nil || !res.Found {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if math.Abs(res.Cost-2.1) > 1e-9 || res.Reused != 1 {
		t.Fatalf("root demand 2: cost %v reused %d, want 2.1 / 1", res.Cost, res.Reused)
	}

	tr, ex = build(4)
	res, err = UpdateAware(tr, ex, 10, c, Options{})
	if err != nil || !res.Found {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if math.Abs(res.Cost-2.21) > 1e-9 {
		t.Fatalf("root demand 4: cost %v, want 2.21", res.Cost)
	}
}

// Property: the heuristic is always valid, never beats the optimum,
// and never loses to the oblivious greedy it seeds from.
func TestQuickUpdateAwareSandwich(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 50)
		tr := tree.MustGenerate(tree.FatConfig(1+src.IntN(60)), src)
		ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()+1), 1, src)
		c := cost.Simple{
			Create: float64(1+src.IntN(20)) / 20,
			Delete: float64(src.IntN(20)) / 20,
		}
		opt, errOpt := core.MinCost(tr, ex, 10, c)
		res, err := UpdateAware(tr, ex, 10, c, Options{})
		if err != nil {
			return false
		}
		if errOpt != nil {
			return !res.Found
		}
		if !res.Found {
			return false
		}
		if tree.ValidateUniform(tr, res.Placement, 10) != nil {
			return false
		}
		if math.Abs(c.OfReplicas(res.Placement, ex)-res.Cost) > 1e-9 {
			return false
		}
		if res.Cost < opt.Cost-1e-9 {
			t.Logf("seed %d: heuristic %v beat the optimum %v", seed, res.Cost, opt.Cost)
			return false
		}
		g, errG := greedy.MinReplicas(tr, 10)
		if errG != nil {
			return false
		}
		return res.Cost <= c.OfReplicas(g, ex)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateAwareGapIsSmall quantifies the optimality gap on the
// paper's Experiment 1 workload.
func TestUpdateAwareGapIsSmall(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	totalGap, n := 0.0, 0
	for seed := uint64(0); seed < 30; seed++ {
		src := rng.Derive(seed, 51)
		tr := tree.MustGenerate(tree.FatConfig(100), src)
		ex, _ := tree.RandomReplicas(tr, 25, 1, src)
		opt, err := core.MinCost(tr, ex, 10, c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := UpdateAware(tr, ex, 10, c, Options{})
		if err != nil || !res.Found {
			t.Fatalf("seed %d: %+v %v", seed, res, err)
		}
		totalGap += res.Cost/opt.Cost - 1
		n++
	}
	if avg := totalGap / float64(n); avg > 0.05 {
		t.Fatalf("average cost gap %.2f%% exceeds 5%%", avg*100)
	}
}

// Property: the heuristic reuses strictly more than the oblivious
// greedy on average (its purpose).
func TestUpdateAwareImprovesReuse(t *testing.T) {
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	heurReuse, greedyReuse := 0, 0
	for seed := uint64(0); seed < 20; seed++ {
		src := rng.Derive(seed, 52)
		tr := tree.MustGenerate(tree.FatConfig(80), src)
		ex, _ := tree.RandomReplicas(tr, 20, 1, src)
		g, err := greedy.MinReplicas(tr, 10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := UpdateAware(tr, ex, 10, c, Options{})
		if err != nil || !res.Found {
			t.Fatal(err)
		}
		heurReuse += res.Reused
		greedyReuse += g.Reused(ex)
	}
	if heurReuse <= greedyReuse {
		t.Fatalf("heuristic reuse %d not above greedy %d", heurReuse, greedyReuse)
	}
}

func TestUpdateAwareKeepsServersWhenDeleteExpensive(t *testing.T) {
	// With delete >> 1, the reuse seed should keep pre-existing
	// servers that the oblivious greedy would abandon.
	b := tree.NewBuilder()
	ch := b.AddNode(0)
	b.AddClient(ch, 5)
	tr := b.MustBuild()
	ex := tree.ReplicasOf(tr)
	ex.Set(ch, 1)
	c := cost.Simple{Create: 0.9, Delete: 5}
	res, err := UpdateAware(tr, ex, 10, c, Options{})
	if err != nil || !res.Found {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if !res.Placement.Has(ch) {
		t.Fatalf("pre-existing server dropped despite delete=5: %v", res.Placement)
	}
	opt, err := core.MinCost(tr, ex, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-opt.Cost) > 1e-9 {
		t.Fatalf("heuristic %v, optimum %v", res.Cost, opt.Cost)
	}
}

func TestUpdateAwareDeterministic(t *testing.T) {
	src := rng.New(53)
	tr := tree.MustGenerate(tree.FatConfig(70), src)
	ex, _ := tree.RandomReplicas(tr, 15, 1, src)
	c := cost.Simple{Create: 0.1, Delete: 0.01}
	a, err := UpdateAware(tr, ex, 10, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := UpdateAware(tr, ex, 10, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || !a.Placement.Equal(b.Placement) {
		t.Fatal("two runs differ")
	}
}
