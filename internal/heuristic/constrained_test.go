package heuristic

import (
	"errors"
	"math"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// TestUpdateAwareInfeasibleIsNotAnError is the regression test for the
// error-propagation fix: a genuinely unsolvable instance yields
// Found=false with a nil error.
func TestUpdateAwareInfeasibleIsNotAnError(t *testing.T) {
	b := tree.NewBuilder()
	b.AddClient(b.AddNode(b.Root()), 50) // one node demands 50 > W
	res, err := UpdateAware(b.MustBuild(), nil, 10, cost.Simple{Create: 0.1, Delete: 0.01}, Options{})
	if err != nil {
		t.Fatalf("infeasible instance returned error %v, want nil", err)
	}
	if res.Found {
		t.Fatal("infeasible instance reported Found")
	}
}

// TestUpdateAwarePropagatesRealErrors is the other half of the
// regression: a real argument error out of the greedy seeding (here:
// constraints that do not fit the tree) must propagate, not be
// swallowed as "infeasible".
func TestUpdateAwarePropagatesRealErrors(t *testing.T) {
	b := tree.NewBuilder()
	n := b.AddNode(b.Root())
	b.AddClient(n, 5)
	tr := b.MustBuild()

	bigger := tree.NewBuilder()
	bn := bigger.AddNode(bigger.Root())
	bigger.AddNode(bn)
	mismatched := tree.NewConstraints(bigger.MustBuild()) // 3 nodes vs 2

	res, err := UpdateAware(tr, nil, 10, cost.Simple{Create: 0.1, Delete: 0.01},
		Options{Constraints: mismatched})
	if err == nil {
		t.Fatalf("mismatched constraints returned nil error (res = %+v)", res)
	}
	if errors.Is(err, greedy.ErrInfeasible) {
		t.Fatalf("argument error %v wrongly classified as infeasibility", err)
	}
	if res.Found {
		t.Fatal("errored call reported Found")
	}
}

// TestUpdateAwareConstrained checks the heuristic only returns
// constraint-valid placements and still improves on (or matches) the
// constrained greedy seed's cost.
func TestUpdateAwareConstrained(t *testing.T) {
	src := rng.New(17)
	tr := tree.MustGenerate(tree.HighConfig(60), src)
	existing, err := tree.RandomReplicas(tr, 15, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	c := tree.NewConstraints(tr)
	c.SetUniformQoS(tr, 3)
	cs := cost.Simple{Create: 0.25, Delete: 0.05}

	res, err := UpdateAware(tr, existing, 10, cs, Options{Constraints: c})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("constrained instance reported infeasible")
	}
	if err := tree.ValidateConstrained(tr, res.Placement, tree.PolicyClosest, 10, c); err != nil {
		t.Fatalf("heuristic returned a constraint-invalid placement: %v", err)
	}
	seed, err := greedy.MinReplicasConstrained(tr, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	seedCost := cs.OfReplicas(seed, existing)
	if res.Cost > seedCost+1e-9 {
		t.Fatalf("heuristic cost %v above its own seed's cost %v", res.Cost, seedCost)
	}
}

// TestPowerAwareConstrained checks the power heuristic under
// constraints: the result must re-validate with its per-mode
// capacities, QoS and bandwidths.
func TestPowerAwareConstrained(t *testing.T) {
	src := rng.New(23)
	tr := tree.MustGenerate(tree.PowerConfig(40), src)
	pm, cm := paperModels()
	c := tree.NewConstraints(tr)
	c.SetUniformQoS(tr, 4)

	for _, p := range tree.Policies() {
		res, err := PowerAware(tr, nil, pm, cm, math.Inf(1), Options{Policy: p, Constraints: c})
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if !res.Found {
			continue // tight constraints may make the instance infeasible
		}
		e := tree.NewEngine(tr)
		if err := e.ValidateConstrained(res.Placement, p, func(m uint8) int { return pm.Cap(int(m)) }, c); err != nil {
			t.Fatalf("policy %v: constraint-invalid result: %v", p, err)
		}
	}
}
