package heuristic

import (
	"errors"
	"fmt"

	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/tree"
)

// UpdateResult is the outcome of the MinCost update heuristic.
type UpdateResult struct {
	Found     bool
	Placement *tree.Replicas
	Cost      float64
	Servers   int
	Reused    int
	Passes    int
}

// UpdateAware is a fast heuristic for MinCost-WithPre — the paper's
// Section 6 observation that "with frequent updates or low-cost
// servers, we may prefer to resort to faster (but sub-optimal) update
// heuristics" rather than the O(N⁵) optimum. It seeds with the
// oblivious greedy placement and then hill-climbs on the exact cost
// function with three move families:
//
//   - drop: remove a server whose load fits elsewhere;
//   - swap-to-reuse: relocate a newly-created server onto an unused
//     pre-existing node;
//   - slide: relocate a server to its parent or a child.
//
// Every accepted move keeps the placement valid and strictly reduces
// Equation (2). Each pass costs O(N·(E+deg)) flow evaluations of O(N),
// far below the optimal DP, and lands within a few percent of the
// optimal cost on the paper's workloads (see the package tests and
// BenchmarkAblationUpdateHeuristic).
//
// With opts.Constraints set, the seed comes from the constrained
// greedy and every accepted move re-validates under the QoS and
// bandwidth constraints, so the result is always constraint-valid. A
// Found of false means the instance is infeasible; any returned error
// is a real one (invalid tree, arguments or constraints), never
// infeasibility.
func UpdateAware(t *tree.Tree, existing *tree.Replicas, W int, c cost.Simple, opts Options) (UpdateResult, error) {
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	if existing.N() != t.N() {
		return UpdateResult{}, fmt.Errorf("heuristic: existing set covers %d nodes, tree has %d", existing.N(), t.N())
	}
	if W <= 0 {
		return UpdateResult{}, fmt.Errorf("heuristic: non-positive capacity %d", W)
	}
	if err := c.Validate(); err != nil {
		return UpdateResult{}, err
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 10
	}
	if err := opts.Constraints.Validate(t); err != nil {
		return UpdateResult{}, err
	}

	seed, err := greedy.MinReplicasConstrained(t, W, opts.Constraints)
	if err != nil {
		// Only a genuinely unsolvable instance is a non-result; real
		// errors (invalid trees or arguments) propagate to the caller.
		if errors.Is(err, greedy.ErrInfeasible) {
			return UpdateResult{Found: false}, nil
		}
		return UpdateResult{}, err
	}
	h := &updateSearch{t: t, existing: existing, w: W, c: c,
		cons: opts.Constraints, engine: tree.NewEngine(t)}
	best := h.eval(seed)

	// A second seed: keep every pre-existing server that the tree can
	// still use, then let the greedy fill the gaps. Starting from full
	// reuse helps when deletion is expensive.
	if cand, ok := h.reuseSeed(); ok && betterCost(cand, best) {
		best = cand
	}

	passes := 0
	for passes < opts.MaxPasses {
		passes++
		improved := false
		if cand, ok := h.passDrop(best); ok {
			best, improved = cand, true
		}
		if cand, ok := h.passSwapToReuse(best); ok {
			best, improved = cand, true
		}
		if cand, ok := h.passSlide(best); ok {
			best, improved = cand, true
		}
		if !improved {
			break
		}
	}
	return UpdateResult{
		Found:     true,
		Placement: best.placement,
		Cost:      best.cost,
		Servers:   best.placement.Count(),
		Reused:    best.placement.Reused(h.existing),
		Passes:    passes,
	}, nil
}

type updateCand struct {
	placement *tree.Replicas
	cost      float64
}

func betterCost(a, than updateCand) bool { return a.cost < than.cost-1e-12 }

type updateSearch struct {
	t        *tree.Tree
	existing *tree.Replicas
	w        int
	c        cost.Simple
	cons     *tree.Constraints // nil = unconstrained
	engine   *tree.Engine      // reused across the O(N·E) validations per pass
}

func (h *updateSearch) eval(p *tree.Replicas) updateCand {
	return updateCand{placement: p, cost: h.c.OfReplicas(p, h.existing)}
}

// try evaluates a candidate structure and reports an improvement.
func (h *updateSearch) try(p *tree.Replicas, cur updateCand) (updateCand, bool) {
	if h.engine.ValidateUniformConstrained(p, tree.PolicyClosest, h.w, h.cons) != nil {
		return updateCand{}, false
	}
	cand := h.eval(p)
	if !betterCost(cand, cur) {
		return updateCand{}, false
	}
	return cand, true
}

// reuseSeed equips every pre-existing node, fills remaining overflow
// with the greedy, then lets the improvement passes trim it.
func (h *updateSearch) reuseSeed() (updateCand, bool) {
	p := tree.NewReplicas(h.t.N())
	for j := 0; j < h.t.N(); j++ {
		if h.existing.Has(j) {
			p.Set(j, 1)
		}
	}
	// Greedy repair: walk post-order and equip nodes whose flow
	// overflows (heaviest child first), as in greedy.MinReplicas but
	// on top of the reused servers.
	up := make([]int, h.t.N())
	for _, j := range h.t.PostOrder() {
		f := h.t.ClientSum(j)
		if f > h.w {
			return updateCand{}, false
		}
		for _, ch := range h.t.Children(j) {
			f += up[ch]
		}
		if p.Has(j) {
			up[j] = 0
			continue
		}
		if f > h.w {
			// Equip the heaviest contributing children until the
			// residual fits.
			for f > h.w {
				bestCh, bestUp := -1, 0
				for _, ch := range h.t.Children(j) {
					if up[ch] > bestUp {
						bestCh, bestUp = ch, up[ch]
					}
				}
				if bestCh < 0 {
					return updateCand{}, false
				}
				p.Set(bestCh, 1)
				f -= bestUp
				up[bestCh] = 0
			}
		}
		up[j] = f
	}
	if up[h.t.Root()] > 0 {
		p.Set(h.t.Root(), 1)
	}
	// The repair pass is constraint-oblivious; the constrained
	// validation gates any candidate it produces.
	if h.engine.ValidateUniformConstrained(p, tree.PolicyClosest, h.w, h.cons) != nil {
		return updateCand{}, false
	}
	return h.eval(p), true
}

func (h *updateSearch) passDrop(cur updateCand) (updateCand, bool) {
	improved := false
	for j := 0; j < h.t.N(); j++ {
		if !cur.placement.Has(j) {
			continue
		}
		p := cur.placement.Clone()
		p.Unset(j)
		if cand, ok := h.try(p, cur); ok {
			cur, improved = cand, true
		}
	}
	return cur, improved
}

func (h *updateSearch) passSwapToReuse(cur updateCand) (updateCand, bool) {
	improved := false
	for j := 0; j < h.t.N(); j++ {
		if !cur.placement.Has(j) || h.existing.Has(j) {
			continue // only relocate newly-created servers
		}
		for p2 := 0; p2 < h.t.N(); p2++ {
			if !h.existing.Has(p2) || cur.placement.Has(p2) {
				continue
			}
			p := cur.placement.Clone()
			p.Unset(j)
			p.Set(p2, 1)
			if cand, ok := h.try(p, cur); ok {
				cur, improved = cand, true
				break // j relocated; move on
			}
		}
	}
	return cur, improved
}

func (h *updateSearch) passSlide(cur updateCand) (updateCand, bool) {
	improved := false
	for j := 0; j < h.t.N(); j++ {
		if !cur.placement.Has(j) {
			continue
		}
		var targets []int
		if p := h.t.Parent(j); p >= 0 {
			targets = append(targets, p)
		}
		targets = append(targets, h.t.Children(j)...)
		for _, to := range targets {
			if cur.placement.Has(to) {
				continue
			}
			p := cur.placement.Clone()
			p.Unset(j)
			p.Set(to, 1)
			if cand, ok := h.try(p, cur); ok {
				cur, improved = cand, true
				break
			}
		}
	}
	return cur, improved
}
