// Package heuristic implements the polynomial-time heuristic the paper
// sketches as future work (Section 6): local optimisations that
// re-balance requests across replicas to reduce power consumption under
// a cost bound, at a fraction of the optimal dynamic program's cost.
//
// The heuristic seeds from the best greedy capacity-sweep solution (and
// a few other cheap candidates) and then hill-climbs with four move
// families — server removal, server addition, moving a server to a
// neighbour, and mode reassignment — accepting only moves that keep the
// solution valid and affordable while strictly reducing power (ties
// broken by cost). Each pass is O(N²) flow evaluations; the pass count
// is bounded by Options.MaxPasses.
package heuristic

import (
	"fmt"
	"math"
	"sort"

	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// Options tunes the search.
type Options struct {
	// MaxPasses bounds the number of full improvement passes
	// (default 10).
	MaxPasses int
	// Policy selects the access policy candidate placements are
	// validated under (default tree.PolicyClosest). The weaker Upwards
	// and Multiple policies admit more structures, so the search can
	// reach placements the closest policy would reject.
	Policy tree.Policy
	// Constraints adds QoS and bandwidth constraints (nil =
	// unconstrained): every seed and every accepted move is validated
	// under them, so the search only traverses constraint-valid
	// placements.
	Constraints *tree.Constraints
	// HedgeK, when above 1, restricts the search to availability-hedged
	// placements: every client-bearing node must keep min(HedgeK,
	// depth+1) equipped nodes on its root path (greedy.CoverageOK), so
	// any single server failure leaves a standby on the path. Seeds are
	// padded with greedy.HedgePlacement to satisfy the bar; moves that
	// would break it are rejected. 0 or 1 disables hedging.
	HedgeK int
}

// Result is the heuristic's outcome.
type Result struct {
	// Found is false when no valid solution within the bound was
	// discovered; the remaining fields are then meaningless.
	Found     bool
	Placement *tree.Replicas
	Cost      float64
	Power     float64
	// Passes is the number of improvement passes performed.
	Passes int
}

// PowerAware computes a placement for MinPower-BoundedCost heuristically.
func PowerAware(t *tree.Tree, existing *tree.Replicas, pm power.Model, cm cost.Modal, bound float64, opts Options) (Result, error) {
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	if existing.N() != t.N() {
		return Result{}, fmt.Errorf("heuristic: existing set covers %d nodes, tree has %d", existing.N(), t.N())
	}
	if err := pm.Validate(); err != nil {
		return Result{}, err
	}
	if err := cm.Validate(); err != nil {
		return Result{}, err
	}
	if cm.M() != pm.M() {
		return Result{}, fmt.Errorf("heuristic: cost model has %d modes, power model %d", cm.M(), pm.M())
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 10
	}
	if !opts.Policy.Valid() {
		return Result{}, fmt.Errorf("heuristic: unknown access policy %v", opts.Policy)
	}
	if err := opts.Constraints.Validate(t); err != nil {
		return Result{}, err
	}

	if opts.HedgeK < 0 {
		return Result{}, fmt.Errorf("heuristic: negative hedge redundancy %d", opts.HedgeK)
	}
	h := &search{t: t, existing: existing, pm: pm, cm: cm, bound: bound,
		policy: opts.Policy, cons: opts.Constraints, hedgeK: opts.HedgeK, engine: tree.NewEngine(t)}
	best, found := h.seed()
	if !found {
		return Result{Found: false}, nil
	}

	passes := 0
	for passes < opts.MaxPasses {
		passes++
		improved := false
		if cand, ok := h.passRemove(best); ok {
			best, improved = cand, true
		}
		if cand, ok := h.passAdd(best); ok {
			best, improved = cand, true
		}
		if cand, ok := h.passMove(best); ok {
			best, improved = cand, true
		}
		if !improved {
			break
		}
	}
	return Result{
		Found:     true,
		Placement: best.placement,
		Cost:      best.cost,
		Power:     best.power,
		Passes:    passes,
	}, nil
}

// candidate is an evaluated placement.
type candidate struct {
	placement *tree.Replicas
	cost      float64
	power     float64
}

type search struct {
	t        *tree.Tree
	existing *tree.Replicas
	pm       power.Model
	cm       cost.Modal
	bound    float64
	policy   tree.Policy
	cons     *tree.Constraints // nil = unconstrained
	hedgeK   int               // <= 1 means no coverage bar
	engine   *tree.Engine
}

// better implements the acceptance order: strictly less power, or equal
// power at strictly lower cost.
func better(a candidate, than candidate) bool {
	const eps = 1e-12
	if a.power < than.power-eps {
		return true
	}
	return math.Abs(a.power-than.power) <= eps && a.cost < than.cost-eps
}

// seed evaluates the cheap starting points and returns the best.
func (h *search) seed() (candidate, bool) {
	var best candidate
	found := false
	try := func(c candidate, ok bool) {
		if ok && (!found || better(c, best)) {
			best, found = c, true
		}
	}

	// The capacity sweeps place without constraints; their candidates
	// only qualify as seeds once the constrained validation passes.
	sweepOK := func(p *tree.Replicas) bool {
		if h.cons == nil {
			return true
		}
		return h.engine.ValidateConstrained(p, h.policy, func(m uint8) int { return h.pm.Cap(int(m)) }, h.cons) == nil
	}
	// With hedging active, every sweep solution is also offered in a
	// padded variant (extra standby servers up to the coverage bar);
	// the unpadded original goes through try only when it meets the bar
	// itself. assignModes re-derives modes and affordability for the
	// padded structure, since the added servers shift loads and fees.
	trySweep := func(sw greedy.SweepResult) {
		if h.hedgeK > 1 {
			hedged := sw.Solution.Clone()
			greedy.HedgePlacement(h.t, hedged, h.hedgeK)
			try(h.assignModes(hedged))
			if !greedy.CoverageOK(h.t, sw.Solution, h.hedgeK) {
				return
			}
		}
		try(candidate{placement: sw.Solution, cost: sw.Cost, power: sw.Power}, true)
	}
	if sw, err := greedy.PowerSweepPolicy(h.t, h.existing, h.pm, h.cm, h.bound, h.policy); err == nil && sw.Found && sweepOK(sw.Solution) {
		trySweep(sw)
	}
	if h.policy != tree.PolicyClosest {
		// Any closest-valid placement stays valid under the relaxed
		// policies, so the plain closest sweep is one more seed — and
		// it guarantees the search never ends above that baseline.
		if sw, err := greedy.PowerSweep(h.t, h.existing, h.pm, h.cm, h.bound); err == nil && sw.Found && sweepOK(sw.Solution) {
			trySweep(sw)
		}
	}
	// Reuse the pre-existing deployment as-is.
	try(h.assignModes(h.existing))
	// Every node equipped (always valid; expensive but a fallback).
	full := tree.NewReplicas(h.t.N())
	for j := 0; j < h.t.N(); j++ {
		full.Set(j, 1)
	}
	try(h.assignModes(full))
	return best, found
}

// assignModes evaluates a structure (which nodes are equipped): every
// server gets its minimal covering mode; if the resulting cost exceeds
// the bound, reused servers are greedily switched back to their initial
// modes — zero change fee — in increasing order of power penalty until
// the solution is affordable. ok is false when the structure cannot be
// made valid and affordable this way.
func (h *search) assignModes(structure *tree.Replicas) (candidate, bool) {
	if h.hedgeK > 1 && !greedy.CoverageOK(h.t, structure, h.hedgeK) {
		return candidate{}, false
	}
	// Routing under the upwards/multiple policies is capacity-aware;
	// evaluating at the fastest mode W_M shows the most each server can
	// be asked to carry (for the closest policy capacities are ignored
	// and this is the plain flow evaluation).
	res := h.engine.EvalUniformConstrained(structure, h.policy, h.pm.MaxCap(), h.cons)
	loads, unserved := res.Loads, res.Unserved
	if unserved > 0 {
		return candidate{}, false
	}
	p := tree.NewReplicas(h.t.N())
	for j := 0; j < h.t.N(); j++ {
		if !structure.Has(j) {
			continue
		}
		m, ok := h.pm.ModeFor(loads[j])
		if !ok {
			return candidate{}, false
		}
		p.Set(j, uint8(m))
	}
	c, err := h.cm.OfReplicas(p, h.existing)
	if err != nil {
		return candidate{}, false
	}
	if c > h.bound {
		p, c = h.relaxToInitialModes(p, loads)
		if c > h.bound {
			return candidate{}, false
		}
	}
	if h.policy != tree.PolicyClosest || h.cons != nil {
		// Shrinking capacities from W_M to the assigned modes can shift
		// the capacity-aware routing; keep only structures that still
		// validate. (Under the closest policy loads are mode-independent
		// and the minimal covering mode is valid by construction, but
		// QoS and bandwidth constraints still depend on the structure.)
		if h.engine.ValidateConstrained(p, h.policy, func(m uint8) int { return h.pm.Cap(int(m)) }, h.cons) != nil {
			return candidate{}, false
		}
	}
	return candidate{placement: p, cost: c, power: h.pm.OfReplicas(p)}, true
}

// relaxToInitialModes switches reused servers from their minimal mode to
// their (covering) initial mode to shed change fees, cheapest power
// penalty first.
func (h *search) relaxToInitialModes(p *tree.Replicas, loads []int) (*tree.Replicas, float64) {
	type swap struct {
		node    int
		penalty float64
	}
	var swaps []swap
	for j := 0; j < h.t.N(); j++ {
		if !p.Has(j) || !h.existing.Has(j) {
			continue
		}
		init := int(h.existing.Mode(j))
		cur := int(p.Mode(j))
		if init == cur || h.pm.Cap(init) < loads[j] {
			continue
		}
		swaps = append(swaps, swap{node: j, penalty: h.pm.NodePower(init) - h.pm.NodePower(cur)})
	}
	sort.Slice(swaps, func(a, b int) bool {
		if swaps[a].penalty != swaps[b].penalty {
			return swaps[a].penalty < swaps[b].penalty
		}
		return swaps[a].node < swaps[b].node
	})
	out := p.Clone()
	for _, s := range swaps {
		c, err := h.cm.OfReplicas(out, h.existing)
		if err != nil || c <= h.bound {
			break
		}
		out.Set(s.node, h.existing.Mode(s.node))
	}
	c, err := h.cm.OfReplicas(out, h.existing)
	if err != nil {
		return p, math.Inf(1)
	}
	return out, c
}

// tryStructure evaluates a structural variant and reports whether it
// improves on cur while staying valid and affordable.
func (h *search) tryStructure(structure *tree.Replicas, cur candidate) (candidate, bool) {
	cand, ok := h.assignModes(structure)
	if !ok || !better(cand, cur) {
		return candidate{}, false
	}
	return cand, true
}

// passRemove tries dropping each server (first improvement wins).
func (h *search) passRemove(cur candidate) (candidate, bool) {
	improvedAny := false
	for j := 0; j < h.t.N(); j++ {
		if !cur.placement.Has(j) {
			continue
		}
		s := cur.placement.Clone()
		s.Unset(j)
		if cand, ok := h.tryStructure(s, cur); ok {
			cur = cand
			improvedAny = true
		}
	}
	return cur, improvedAny
}

// passAdd tries equipping each empty node.
func (h *search) passAdd(cur candidate) (candidate, bool) {
	improvedAny := false
	for j := 0; j < h.t.N(); j++ {
		if cur.placement.Has(j) {
			continue
		}
		s := cur.placement.Clone()
		s.Set(j, 1)
		if cand, ok := h.tryStructure(s, cur); ok {
			cur = cand
			improvedAny = true
		}
	}
	return cur, improvedAny
}

// passMove tries relocating each server to its parent or a child.
func (h *search) passMove(cur candidate) (candidate, bool) {
	improvedAny := false
	for j := 0; j < h.t.N(); j++ {
		if !cur.placement.Has(j) {
			continue
		}
		var targets []int
		if p := h.t.Parent(j); p >= 0 {
			targets = append(targets, p)
		}
		targets = append(targets, h.t.Children(j)...)
		for _, to := range targets {
			if cur.placement.Has(to) {
				continue
			}
			s := cur.placement.Clone()
			s.Unset(j)
			s.Set(to, 1)
			if cand, ok := h.tryStructure(s, cur); ok {
				cur = cand
				improvedAny = true
				break // j moved; stop trying its other targets
			}
		}
	}
	return cur, improvedAny
}
