package heuristic

import (
	"math"
	"testing"
	"testing/quick"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func paperModels() (power.Model, cost.Modal) {
	return power.MustNew([]int{5, 10}, 12.5, 3), cost.UniformModal(2, 0.1, 0.01, 0.001)
}

func TestPowerAwareValidatesArgs(t *testing.T) {
	tr := tree.MustGenerate(tree.PowerConfig(10), rng.New(1))
	pm, cm := paperModels()
	if _, err := PowerAware(tr, tree.NewReplicas(3), pm, cm, 10, Options{}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := PowerAware(tr, nil, power.Model{}, cm, 10, Options{}); err == nil {
		t.Error("invalid power model accepted")
	}
	if _, err := PowerAware(tr, nil, pm, cost.UniformModal(3, 0, 0, 0), 10, Options{}); err == nil {
		t.Error("mode mismatch accepted")
	}
}

func TestPowerAwareFindsValidSolutions(t *testing.T) {
	pm, cm := paperModels()
	for seed := uint64(0); seed < 20; seed++ {
		src := rng.Derive(seed, 31)
		tr := tree.MustGenerate(tree.PowerConfig(5+src.IntN(40)), src)
		ex, _ := tree.RandomReplicas(tr, src.IntN(tr.N()/3+1), 2, src)
		res, err := PowerAware(tr, ex, pm, cm, 30, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			continue
		}
		if err := tree.Validate(tr, res.Placement, func(m uint8) int { return pm.Cap(int(m)) }); err != nil {
			t.Fatalf("seed %d: invalid placement: %v", seed, err)
		}
		if res.Cost > 30+1e-9 {
			t.Fatalf("seed %d: cost %v exceeds bound", seed, res.Cost)
		}
		c, err := cm.OfReplicas(res.Placement, ex)
		if err != nil || math.Abs(c-res.Cost) > 1e-9 {
			t.Fatalf("seed %d: reported cost %v, recomputed %v", seed, res.Cost, c)
		}
		if math.Abs(pm.OfReplicas(res.Placement)-res.Power) > 1e-9 {
			t.Fatalf("seed %d: power mismatch", seed)
		}
	}
}

func TestPowerAwareNeverWorseThanGreedySweep(t *testing.T) {
	pm, cm := paperModels()
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 32)
		tr := tree.MustGenerate(tree.PowerConfig(1+src.IntN(40)), src)
		ex, _ := tree.RandomReplicas(tr, src.IntN(min(6, tr.N()+1)), 2, src)
		bound := 5 + float64(src.IntN(30))
		gr, err := greedy.PowerSweep(tr, ex, pm, cm, bound)
		if err != nil {
			return false
		}
		res, err := PowerAware(tr, ex, pm, cm, bound, Options{})
		if err != nil {
			return false
		}
		if gr.Found && !res.Found {
			return false // the sweep is a seed, so it can never be lost
		}
		if gr.Found && res.Power > gr.Power+1e-9 {
			t.Logf("seed %d: heuristic %v worse than sweep %v", seed, res.Power, gr.Power)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerAwareBoundedByOptimal(t *testing.T) {
	pm, cm := paperModels()
	gaps := 0.0
	n := 0
	for seed := uint64(0); seed < 25; seed++ {
		src := rng.Derive(seed, 33)
		tr := tree.MustGenerate(tree.PowerConfig(3+src.IntN(20)), src)
		ex, _ := tree.RandomReplicas(tr, src.IntN(4), 2, src)
		bound := 5 + float64(src.IntN(20))
		solver, err := core.SolvePower(core.PowerProblem{Tree: tr, Existing: ex, Power: pm, Cost: cm})
		if err != nil {
			t.Fatal(err)
		}
		opt, optOK := solver.Best(bound)
		res, err := PowerAware(tr, ex, pm, cm, bound, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found && !optOK {
			t.Fatalf("seed %d: heuristic found a solution the optimum says is impossible", seed)
		}
		if !optOK || !res.Found {
			continue
		}
		if res.Power < opt.Power-1e-9 {
			t.Fatalf("seed %d: heuristic power %v below optimum %v", seed, res.Power, opt.Power)
		}
		gaps += res.Power/opt.Power - 1
		n++
	}
	if n == 0 {
		t.Fatal("no instance produced comparable solutions")
	}
	if avg := gaps / float64(n); avg > 0.25 {
		t.Fatalf("average optimality gap %.1f%% too large for a local-search heuristic", avg*100)
	}
}

func TestPowerAwareImpossibleBound(t *testing.T) {
	pm, cm := paperModels()
	tr := tree.MustGenerate(tree.PowerConfig(20), rng.New(4))
	res, err := PowerAware(tr, nil, pm, cm, 0.001, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("found %v under an impossible bound", res.Placement)
	}
}

func TestPowerAwareUsesInitialModesUnderTightBound(t *testing.T) {
	// Single node, pre-existing at mode 2, expensive downgrades: the
	// heuristic must keep mode 2 to stay within the bound.
	b := tree.NewBuilder()
	b.AddClient(0, 3)
	tr := b.MustBuild()
	pm := power.MustNew([]int{5, 10}, 0, 2)
	cm := cost.Modal{
		Create: []float64{0, 0},
		Delete: []float64{0, 0},
		Change: [][]float64{{0, 10}, {10, 0}},
	}
	ex := tree.ReplicasOf(tr)
	ex.Set(0, 2)
	res, err := PowerAware(tr, ex, pm, cm, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Placement.Mode(0) != 2 {
		t.Fatalf("result: %+v", res)
	}
}

func TestPowerAwareDeterministic(t *testing.T) {
	pm, cm := paperModels()
	tr := tree.MustGenerate(tree.PowerConfig(30), rng.New(5))
	ex, _ := tree.RandomReplicas(tr, 4, 2, rng.New(6))
	a, err := PowerAware(tr, ex, pm, cm, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := PowerAware(tr, ex, pm, cm, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Found != b2.Found || a.Power != b2.Power || !a.Placement.Equal(b2.Placement) {
		t.Fatal("two runs differ")
	}
}

func TestPowerAwarePassLimit(t *testing.T) {
	pm, cm := paperModels()
	tr := tree.MustGenerate(tree.PowerConfig(40), rng.New(7))
	res, err := PowerAware(tr, nil, pm, cm, 30, Options{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found && res.Passes > 1 {
		t.Fatalf("passes = %d, limit 1", res.Passes)
	}
}

func TestPowerAwarePolicyValidAndNoWorse(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		src := rng.Derive(seed, 11)
		tr := tree.MustGenerate(tree.PowerConfig(30), src)
		existing, err := tree.RandomReplicas(tr, 4, 2, src)
		if err != nil {
			t.Fatal(err)
		}
		pm := power.MustNew([]int{5, 10}, 12.5, 3)
		cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
		e := tree.NewEngine(tr)
		sweep, err := greedy.PowerSweep(tr, existing, pm, cm, math.Inf(1))
		if err != nil || !sweep.Found {
			t.Fatalf("seed %d: greedy sweep baseline failed: %v", seed, err)
		}
		for _, p := range tree.Policies() {
			res, err := PowerAware(tr, existing, pm, cm, math.Inf(1), Options{Policy: p})
			if err != nil {
				t.Fatalf("seed %d policy %v: %v", seed, p, err)
			}
			if !res.Found {
				t.Fatalf("seed %d policy %v: nothing found with an unbounded budget", seed, p)
			}
			if verr := e.Validate(res.Placement, p, func(m uint8) int { return pm.Cap(int(m)) }); verr != nil {
				t.Fatalf("seed %d policy %v: invalid placement: %v", seed, p, verr)
			}
			// The closest greedy sweep seeds every policy's search
			// (its placements are valid under all three), so no run
			// may end above that baseline.
			if res.Power > sweep.Power+1e-9 {
				t.Fatalf("seed %d policy %v: power %v worse than the greedy sweep's %v",
					seed, p, res.Power, sweep.Power)
			}
		}
	}
}

func TestPowerAwareRejectsUnknownPolicy(t *testing.T) {
	tr := tree.MustGenerate(tree.PowerConfig(10), rng.New(1))
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	if _, err := PowerAware(tr, nil, pm, cm, math.Inf(1), Options{Policy: tree.Policy(9)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPowerAwareClosestUnchangedByPolicyField(t *testing.T) {
	src := rng.New(77)
	tr := tree.MustGenerate(tree.PowerConfig(30), src)
	existing, _ := tree.RandomReplicas(tr, 4, 2, src)
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	a, err := PowerAware(tr, existing, pm, cm, math.Inf(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerAware(tr, existing, pm, cm, math.Inf(1), Options{Policy: tree.PolicyClosest})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Placement.Equal(b.Placement) || a.Cost != b.Cost || a.Power != b.Power {
		t.Fatal("explicit PolicyClosest changed the default result")
	}
}

// TestPowerAwareHedged pins the HedgeK option: every found solution
// meets the coverage bar, stays valid, and the search still finds
// solutions when the bound is generous (the hedged seed exists because
// padding a sweep solution never invalidates it).
func TestPowerAwareHedged(t *testing.T) {
	pm, cm := paperModels()
	found := 0
	for seed := uint64(0); seed < 20; seed++ {
		src := rng.Derive(seed, 77)
		tr := tree.MustGenerate(tree.PowerConfig(5+src.IntN(40)), src)
		res, err := PowerAware(tr, nil, pm, cm, 1e9, Options{HedgeK: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			continue
		}
		found++
		if !greedy.CoverageOK(tr, res.Placement, 2) {
			t.Fatalf("seed %d: hedged search returned an unhedged placement %v", seed, res.Placement)
		}
		if err := tree.Validate(tr, res.Placement, func(m uint8) int { return pm.Cap(int(m)) }); err != nil {
			t.Fatalf("seed %d: invalid placement: %v", seed, err)
		}
		// The hedged optimum can never beat the unhedged one.
		plain, err := PowerAware(tr, nil, pm, cm, 1e9, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Found && res.Power < plain.Power-1e-9 {
			t.Fatalf("seed %d: hedged power %v below unhedged %v", seed, res.Power, plain.Power)
		}
	}
	if found == 0 {
		t.Fatal("hedged search found nothing across all seeds")
	}
	if _, err := PowerAware(tree.MustGenerate(tree.PowerConfig(10), rng.New(1)), nil, pm, cm, 10, Options{HedgeK: -1}); err == nil {
		t.Error("negative HedgeK accepted")
	}
}
