package netsim

import (
	"testing"

	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// constrainedChain builds root -> 1 -> 2 with a 5-request client at the
// deepest node and a single server at the root.
func constrainedChain() (*tree.Tree, *tree.Replicas) {
	b := tree.NewBuilder()
	n1 := b.AddNode(b.Root())
	n2 := b.AddNode(n1)
	b.AddClient(n2, 5)
	t := b.MustBuild()
	r := tree.ReplicasOf(t)
	r.Set(t.Root(), 1)
	return t, r
}

// TestStepClosestConstraintTallies checks the closest policy's SLA
// accounting: forced routing still serves, but QoS misses and link
// overflows are tallied per step.
func TestStepClosestConstraintTallies(t *testing.T) {
	tr, r := constrainedChain()
	pm := power.MustNew([]int{10}, 1, 2)
	c := tree.NewConstraints(tr)
	c.SetQoS(2, 0, 2)       // the root is 3 hops away
	c.SetBandwidth(1, 3)    // 5 requests cross link 1->0
	c.SetBandwidth(2, 1000) // slack link: no overflow

	s, err := NewConstrained(tr, r, pm, tree.PolicyClosest, c)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(3)
	m := s.Metrics()
	if m.Served != 15 || m.Dropped != 0 {
		t.Fatalf("served/dropped = %d/%d, want 15/0 (closest routing is forced)", m.Served, m.Dropped)
	}
	if m.QoSMisses != 15 {
		t.Fatalf("QoSMisses = %d, want 15 (5 requests x 3 steps)", m.QoSMisses)
	}
	if m.LinkOverflows != 6 {
		t.Fatalf("LinkOverflows = %d, want 6 (2 excess units x 3 steps)", m.LinkOverflows)
	}
}

// TestStepRelaxedConstraintDrops checks that under the relaxed policies
// constraint-blocked requests are dropped rather than tallied.
func TestStepRelaxedConstraintDrops(t *testing.T) {
	tr, r := constrainedChain()
	pm := power.MustNew([]int{10}, 1, 2)
	for _, p := range []tree.Policy{tree.PolicyUpwards, tree.PolicyMultiple} {
		c := tree.NewConstraints(tr)
		c.SetQoS(2, 0, 2)
		s, err := NewConstrained(tr, r, pm, p, c)
		if err != nil {
			t.Fatal(err)
		}
		s.Step(2)
		m := s.Metrics()
		if m.Served != 0 || m.Dropped != 10 {
			t.Fatalf("%v: served/dropped = %d/%d, want 0/10", p, m.Served, m.Dropped)
		}
		if m.QoSMisses != 0 || m.LinkOverflows != 0 {
			t.Fatalf("%v: tallies = %d/%d, want zero (relaxed policies drop instead)",
				p, m.QoSMisses, m.LinkOverflows)
		}
	}
}

// TestNewConstrainedValidates checks the constructor's constraint
// validation.
func TestNewConstrainedValidates(t *testing.T) {
	tr, r := constrainedChain()
	pm := power.MustNew([]int{10}, 1, 2)
	b := tree.NewBuilder()
	b.AddNode(b.Root())
	wrong := tree.NewConstraints(b.MustBuild()) // 2 nodes vs 3
	if _, err := NewConstrained(tr, r, pm, tree.PolicyClosest, wrong); err == nil {
		t.Fatal("mismatched constraints accepted")
	}
}
