// Package netsim is a time-stepped request-flow simulator for
// distribution trees: the operational counterpart of the paper's static
// model. Each step, every client issues its per-time-unit requests,
// requests are routed to servers according to the configured access
// policy, servers process up to their mode's capacity, and the
// simulator accounts served and dropped requests, per-server
// utilisation, and energy (power × time). Placements can be swapped
// mid-run with a reconfiguration cost tally, which is how the dynamic
// examples replay the paper's Experiment 2 setting end to end.
//
// Routing follows the placement's access policy (see tree.Policy).
// Under the default closest policy a server receives every request
// whose first equipped ancestor it is, and requests beyond its capacity
// are dropped at the server (a capacity violation). Under the upwards
// policy whole clients that do not fit a server climb further toward
// the root, and under the multiple policy flows split so that every
// server absorbs exactly up to its capacity; under both, requests are
// only dropped when they pass the root, and no server ever runs beyond
// its capacity.
//
// A simulator built with NewConstrained additionally models QoS and
// bandwidth constraints (tree.Constraints). Under the relaxed policies
// the constrained routing drops requests that cannot reach any server
// within their QoS range or across a saturated link (they appear in
// Dropped). Under the closest policy the routing is forced by the
// placement, so constraint breaches cannot reroute traffic; they are
// tallied instead: QoSMisses counts requests served beyond their QoS
// bound (SLA misses) and LinkOverflows counts request units crossing a
// link beyond its bandwidth.
package netsim

import (
	"fmt"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// Metrics accumulates simulation results.
type Metrics struct {
	// Steps is the number of simulated time units.
	Steps int
	// Served and Dropped count requests over all steps. Requests are
	// dropped when they reach the root unserved or exceed their
	// server's capacity.
	Served, Dropped int
	// Energy is the integral of total power over time (power model
	// units × steps).
	Energy float64
	// Violations counts (server, step) pairs whose load exceeded the
	// operating mode's capacity.
	Violations int
	// PeakUtilisation is the maximum load/capacity ratio observed.
	PeakUtilisation float64
	// ReconfigCost accumulates the modal cost of every Reconfigure
	// call.
	ReconfigCost float64
	// Reconfigurations counts Reconfigure calls.
	Reconfigurations int
	// QoSMisses counts requests routed to a server beyond their QoS
	// bound under the closest policy — routing-level SLA misses,
	// counted whether or not an overloaded server also dropped part of
	// that load (the relaxed policies drop such requests instead; see
	// the package documentation). Zero without constraints.
	QoSMisses int
	// LinkOverflows counts request units crossing a link beyond its
	// bandwidth under the closest policy. Zero without constraints.
	LinkOverflows int

	// The remaining fields accumulate only while failure injection is
	// active (see Simulator.WithFailures); all stay zero otherwise.

	// Issued counts every request the clients issued, so
	// Issued == Served + Dropped + UnservedDemand at all times.
	Issued int
	// UnservedDemand counts the requests lost to failures: clients at
	// down nodes, requests bound to a down or unreachable server under
	// the closest policy, and requests trapped behind cut links. Demand
	// lost for capacity or placement reasons stays in Dropped, exactly
	// as without failures.
	UnservedDemand int
	// DowntimeSteps is the integral of down nodes over time: the sum,
	// over all steps, of the number of nodes down during that step.
	DowntimeSteps int
	// RepairCount counts the successful online re-solves (each also
	// appears in Reconfigurations and ReconfigCost). RepairSkipped
	// counts the fault transitions where no valid masked placement
	// existed (or mode assignment failed) and the old placement was
	// kept instead.
	RepairCount, RepairSkipped int
}

// Simulator replays traffic on one tree. The tree's request counts may
// be mutated between steps (tree.SetClientRequests or
// tree.RedrawRequests) to model demand changes.
type Simulator struct {
	t         *tree.Tree
	pm        power.Model
	placement *tree.Replicas
	policy    tree.Policy
	cons      *tree.Constraints
	engine    *tree.Engine
	caps      tree.CapOf // mode -> capacity, built once to keep Step allocation-free
	m         Metrics
	fail      *failureState // nil until WithFailures
}

// New validates the placement's modes against the power model and
// returns a simulator routing under the closest policy. An invalid or
// lossy placement is accepted — the point of simulating is to observe
// drops and violations — but mode indices must exist in the model.
func New(t *tree.Tree, placement *tree.Replicas, pm power.Model) (*Simulator, error) {
	return NewPolicy(t, placement, pm, tree.PolicyClosest)
}

// NewPolicy is New with an explicit access policy.
func NewPolicy(t *tree.Tree, placement *tree.Replicas, pm power.Model, p tree.Policy) (*Simulator, error) {
	return NewConstrained(t, placement, pm, p, nil)
}

// NewConstrained is NewPolicy with QoS and bandwidth constraints (a nil
// set is NewPolicy). See the package documentation for how constraints
// surface in the metrics per policy.
func NewConstrained(t *tree.Tree, placement *tree.Replicas, pm power.Model, p tree.Policy, c *tree.Constraints) (*Simulator, error) {
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	if !p.Valid() {
		return nil, fmt.Errorf("netsim: unknown access policy %v", p)
	}
	if placement.N() != t.N() {
		return nil, fmt.Errorf("netsim: placement covers %d nodes, tree has %d", placement.N(), t.N())
	}
	if err := c.Validate(t); err != nil {
		return nil, err
	}
	for j := 0; j < t.N(); j++ {
		if m := placement.Mode(j); m != tree.NoMode && int(m) > pm.M() {
			return nil, fmt.Errorf("netsim: node %d uses mode %d, model has %d", j, m, pm.M())
		}
	}
	s := &Simulator{t: t, pm: pm, placement: placement.Clone(),
		policy: p, cons: c.Clone(), engine: tree.NewEngine(t)}
	s.caps = func(m uint8) int { return s.pm.Cap(int(m)) }
	return s, nil
}

// Policy returns the access policy the simulator routes under.
func (s *Simulator) Policy() tree.Policy { return s.policy }

// Placement returns a copy of the active placement.
func (s *Simulator) Placement() *tree.Replicas { return s.placement.Clone() }

// Step advances the simulation by n time units under the current
// request rates and placement. With failure injection active (see
// WithFailures) the units are simulated one at a time, applying the
// schedule's events as their steps come due; otherwise one evaluation
// covers all n units.
func (s *Simulator) Step(n int) {
	if n <= 0 {
		return
	}
	if s.fail != nil {
		for i := 0; i < n; i++ {
			s.stepFailure()
		}
		return
	}
	res := s.engine.EvalConstrained(s.placement, s.policy, s.caps, s.cons)
	served, dropped, violations := 0, 0, 0
	stepPower := 0.0
	peak := s.m.PeakUtilisation
	for j, load := range res.Loads {
		if !s.placement.Has(j) {
			continue
		}
		capacity := s.pm.Cap(int(s.placement.Mode(j)))
		stepPower += s.pm.NodePower(int(s.placement.Mode(j)))
		if load > capacity {
			// Closest policy only: capacity-aware routing never
			// overloads a server.
			violations++
			served += capacity
			dropped += load - capacity
		} else {
			served += load
		}
		if u := float64(load) / float64(capacity); u > peak {
			peak = u
		}
	}
	dropped += res.Unserved
	s.m.Steps += n
	s.m.Served += served * n
	s.m.Dropped += dropped * n
	s.m.Violations += violations * n
	s.m.Energy += stepPower * float64(n)
	s.m.PeakUtilisation = peak
	if s.cons != nil && s.policy == tree.PolicyClosest {
		misses, overflows := s.closestConstraintTally()
		s.m.QoSMisses += misses * n
		s.m.LinkOverflows += overflows * n
	}
}

// closestConstraintTally counts QoS misses and bandwidth overflows for
// one time unit from the engine's forced closest routing. O(N),
// allocation-free on the engine's scratch.
func (s *Simulator) closestConstraintTally() (misses, overflows int) {
	t := s.t
	up, srv := s.engine.ClosestRouting(s.placement)
	for j := 0; j < t.N(); j++ {
		for k, d := range t.Clients(j) {
			if d == 0 || srv[j] < 0 {
				continue // unserved requests are already in Dropped
			}
			if q := s.cons.QoS(j, k); q > 0 && t.Depth(j)-srv[j]+1 > q {
				misses += d
			}
		}
		if bw := s.cons.Bandwidth(j); bw >= 0 && up[j] > bw {
			overflows += up[j] - bw
		}
	}
	return misses, overflows
}

// Reconfigure swaps in a new placement, pricing the transition with the
// modal cost model (creations, deletions, mode changes) and returning
// that cost.
func (s *Simulator) Reconfigure(next *tree.Replicas, cm cost.Modal) (float64, error) {
	if next.N() != s.t.N() {
		return 0, fmt.Errorf("netsim: placement covers %d nodes, tree has %d", next.N(), s.t.N())
	}
	c, err := cm.OfReplicas(next, s.placement)
	if err != nil {
		return 0, err
	}
	// The returned value is the paper's full Equation (4): the R
	// operating term plus creation, deletion and mode-change fees for
	// the transition from the current placement.
	s.placement = next.Clone()
	s.m.ReconfigCost += c
	s.m.Reconfigurations++
	return c, nil
}

// Metrics returns the accumulated metrics.
func (s *Simulator) Metrics() Metrics { return s.m }
