package netsim

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/failure"
	"replicatree/internal/tree"
)

// FailureOptions configures failure injection (see WithFailures).
type FailureOptions struct {
	// Repair turns on the online repair loop: after every fault
	// transition the placement is re-solved with the failed nodes
	// masked out (an incremental MinCost solve whose dirty set is the
	// failed node's ancestor chain) and swapped in via Reconfigure.
	Repair bool
	// Cost prices the masked re-solve (reuse discount, creation and
	// deletion fees). The zero value counts servers only.
	Cost cost.Simple
	// Modal prices the reconfiguration swap in Metrics.ReconfigCost. A
	// zero value charges nothing.
	Modal cost.Modal
	// Workers sets the repair solver's worker count (<= 1 runs
	// sequentially). Results are bit-identical for every setting.
	Workers int
}

// failureState holds the per-simulator failure machinery.
type failureState struct {
	sched *failure.Schedule
	mask  *failure.Mask
	opts  FailureOptions

	// Online repair: one retained solver (its cached tables make each
	// repair an O(depth) incremental solve) and a destination buffer
	// ping-ponged against the active placement.
	solver *core.MinCostSolver
	dst    *tree.Replicas

	// Per-node degradation tallies for Availability.
	issuedAt []int
	failedAt []int
}

// WithFailures arms the simulator with a failure schedule: from the
// next Step on, time advances one unit at a time, the schedule's events
// due at each unit are applied to an internal fault mask first, and
// routing degrades per the access policy's contract (see the failure
// package) — requests whose servers are down climb under the upwards
// and multiple policies and are tallied as UnservedDemand under the
// closest policy, never served beyond capacity and never panicking.
// The schedule is rewound and replayed from step 0 relative to the
// simulator's current step count; it must not be shared with another
// simulator running concurrently.
//
// With opts.Repair set, every fault transition triggers a masked
// incremental re-solve (capacity W_M, pricing opts.Cost) that keeps as
// much of the current placement as the fees favour, followed by a
// Reconfigure priced with opts.Modal. A transition with no feasible
// masked placement keeps the old placement and counts RepairSkipped.
//
// Failure injection does not compose with QoS/bandwidth constraints
// (NewConstrained): the constrained routing has no degradation
// contract, so WithFailures errors on a constrained simulator.
func (s *Simulator) WithFailures(sched *failure.Schedule, opts FailureOptions) error {
	if sched == nil {
		return fmt.Errorf("netsim: nil failure schedule")
	}
	if s.cons != nil {
		return fmt.Errorf("netsim: failure injection does not compose with QoS/bandwidth constraints")
	}
	if s.fail != nil {
		return fmt.Errorf("netsim: failure injection already configured")
	}
	n := s.t.N()
	for _, e := range sched.Events() {
		if e.Node >= n {
			return fmt.Errorf("netsim: schedule event for node %d, tree has %d", e.Node, n)
		}
	}
	f := &failureState{
		sched:    sched,
		mask:     failure.NewMask(n),
		opts:     opts,
		issuedAt: make([]int, n),
		failedAt: make([]int, n),
	}
	if len(f.opts.Modal.Create) == 0 {
		f.opts.Modal = cost.UniformModal(s.pm.M(), 0, 0, 0)
	}
	if opts.Repair {
		f.solver = core.NewMinCostSolver(s.t)
		f.solver.SetMask(f.mask)
		if opts.Workers > 1 {
			f.solver.SetWorkers(opts.Workers)
		}
		f.dst = tree.ReplicasOf(s.t)
	}
	sched.Rewind()
	s.fail = f
	return nil
}

// Availability returns, per node, the fraction of its clients' issued
// requests not lost to failures so far (1 for nodes that issued
// nothing, including all nodes before the first failure-mode step).
// Requests dropped for capacity or placement reasons do not lower
// availability — they are the placement's fault, not the fault
// injector's.
func (s *Simulator) Availability() []float64 {
	out := make([]float64, s.t.N())
	for j := range out {
		out[j] = 1
		if s.fail != nil && s.fail.issuedAt[j] > 0 {
			out[j] = 1 - float64(s.fail.failedAt[j])/float64(s.fail.issuedAt[j])
		}
	}
	return out
}

// DownNodes reports how many nodes the fault mask currently holds down
// (0 without failure injection).
func (s *Simulator) DownNodes() int {
	if s.fail == nil {
		return 0
	}
	return s.fail.mask.DownNodes()
}

// stepFailure advances the simulation by one time unit under the fault
// schedule: apply due events, optionally repair, evaluate masked,
// account.
func (s *Simulator) stepFailure() {
	f := s.fail
	if f.sched.AdvanceTo(s.m.Steps, f.mask) && f.opts.Repair {
		s.repair()
	}
	s.m.DowntimeSteps += f.mask.DownNodes()

	res := s.engine.EvalMasked(s.placement, s.policy, s.caps, f.mask)
	served, dropped, violations := 0, 0, 0
	stepPower := 0.0
	peak := s.m.PeakUtilisation
	for j, load := range res.Loads {
		if !s.placement.Has(j) || !f.mask.NodeUp(j) {
			continue // a down server carries no load and draws no power
		}
		capacity := s.pm.Cap(int(s.placement.Mode(j)))
		stepPower += s.pm.NodePower(int(s.placement.Mode(j)))
		if load > capacity {
			violations++
			served += capacity
			dropped += load - capacity
		} else {
			served += load
		}
		if u := float64(load) / float64(capacity); u > peak {
			peak = u
		}
	}
	dropped += res.Unserved
	s.m.Steps++
	s.m.Served += served
	s.m.Dropped += dropped
	s.m.Violations += violations
	s.m.Energy += stepPower
	s.m.PeakUtilisation = peak
	s.m.Issued += res.Issued
	s.m.UnservedDemand += res.FailUnserved
	for j := 0; j < s.t.N(); j++ {
		f.issuedAt[j] += s.t.ClientSum(j)
		f.failedAt[j] += res.UnservedAt[j]
	}
}

// repair re-solves the placement with the current fault mask applied
// and swaps the solution in. The solver's retained tables make the
// solve incremental — a single crash or recovery dirties only the
// flipped node's ancestor chain — and the current placement is the
// pre-existing set, so the pricing favours keeping what already runs.
func (s *Simulator) repair() {
	f := s.fail
	res, err := f.solver.SolveInto(s.placement, s.pm.MaxCap(), f.opts.Cost, f.dst)
	if err != nil {
		s.m.RepairSkipped++
		return
	}
	if err := s.pm.AssignModes(s.t, res.Placement); err != nil {
		// Cannot happen: the masked solve is closest-valid for the full
		// demand at W_M. Kept as a guard rather than a panic.
		s.m.RepairSkipped++
		return
	}
	if s.placement.Equal(res.Placement) {
		return // the running placement is already the masked optimum
	}
	if _, err := s.Reconfigure(res.Placement, f.opts.Modal); err != nil {
		s.m.RepairSkipped++
		return
	}
	s.m.RepairCount++
}
