package netsim

import (
	"math"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func testTree() *tree.Tree {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	cc := b.AddNode(a)
	b.AddClient(bb, 4)
	b.AddClient(cc, 7)
	b.AddClient(b.Root(), 2)
	return b.MustBuild()
}

func TestNewValidates(t *testing.T) {
	tr := testTree()
	pm := power.MustNew([]int{5, 10}, 1, 2)
	if _, err := New(tr, tree.NewReplicas(2), pm); err == nil {
		t.Error("size mismatch accepted")
	}
	bad := tree.ReplicasOf(tr)
	bad.Set(0, 3)
	if _, err := New(tr, bad, pm); err == nil {
		t.Error("mode above M accepted")
	}
	if _, err := New(tr, tree.ReplicasOf(tr), power.Model{}); err == nil {
		t.Error("invalid power model accepted")
	}
}

func TestStepServesAndMeters(t *testing.T) {
	tr := testTree()
	pm := power.MustNew([]int{5, 10}, 1, 2)
	p := tree.ReplicasOf(tr)
	p.Set(3, 2) // C: 7 requests at mode 2
	p.Set(0, 2) // root: 2 + 4 = 6 requests at mode 2
	s, err := New(tr, p, pm)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(3)
	m := s.Metrics()
	if m.Steps != 3 {
		t.Fatalf("Steps = %d", m.Steps)
	}
	if m.Served != 13*3 || m.Dropped != 0 || m.Violations != 0 {
		t.Fatalf("Served=%d Dropped=%d Violations=%d", m.Served, m.Dropped, m.Violations)
	}
	// Energy per step = 2 servers at mode 2 = 2·(1+100).
	if !almost(m.Energy, 3*2*101) {
		t.Fatalf("Energy = %v, want %v", m.Energy, 3*2*101.0)
	}
	if !almost(m.PeakUtilisation, 0.7) {
		t.Fatalf("PeakUtilisation = %v, want 0.7", m.PeakUtilisation)
	}
}

func TestStepZeroOrNegative(t *testing.T) {
	tr := testTree()
	pm := power.MustNew([]int{5, 10}, 1, 2)
	s, err := New(tr, tree.ReplicasOf(tr), pm)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(0)
	s.Step(-5)
	if s.Metrics().Steps != 0 {
		t.Fatal("zero/negative steps advanced the clock")
	}
}

func TestStepCountsDropsAndViolations(t *testing.T) {
	tr := testTree()
	pm := power.MustNew([]int{5, 10}, 1, 2)
	p := tree.ReplicasOf(tr)
	p.Set(3, 1) // C: 7 requests at mode 1 (cap 5): 2 dropped, violation
	// B's 4 and root's 2 requests reach the root unserved.
	s, err := New(tr, p, pm)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(2)
	m := s.Metrics()
	if m.Violations != 2 {
		t.Fatalf("Violations = %d, want 2", m.Violations)
	}
	if m.Served != 5*2 {
		t.Fatalf("Served = %d, want 10", m.Served)
	}
	if m.Dropped != (2+6)*2 {
		t.Fatalf("Dropped = %d, want 16", m.Dropped)
	}
	if m.PeakUtilisation < 1.39 || m.PeakUtilisation > 1.41 {
		t.Fatalf("PeakUtilisation = %v, want 1.4", m.PeakUtilisation)
	}
}

func TestEnergyMatchesAnalyticPower(t *testing.T) {
	// For a valid placement, energy per step must equal the power
	// model's total for the placement.
	tr := tree.MustGenerate(tree.PowerConfig(40), rng.New(3))
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	solver, err := core.SolvePower(core.PowerProblem{
		Tree: tr, Power: pm, Cost: cost.UniformModal(2, 0, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := solver.MinPower()
	s, err := New(tr, opt.Placement, pm)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(10)
	m := s.Metrics()
	if m.Dropped != 0 || m.Violations != 0 {
		t.Fatalf("optimal placement dropped traffic: %+v", m)
	}
	if !almost(m.Energy, 10*opt.Power) {
		t.Fatalf("Energy = %v, want %v", m.Energy, 10*opt.Power)
	}
	if m.Served != 10*tr.TotalRequests() {
		t.Fatalf("Served = %d, want %d", m.Served, 10*tr.TotalRequests())
	}
}

func TestReconfigureCostAndPlacement(t *testing.T) {
	tr := testTree()
	pm := power.MustNew([]int{5, 10}, 1, 2)
	cm := cost.UniformModal(2, 0.5, 0.25, 0.125)
	p1 := tree.ReplicasOf(tr)
	p1.Set(3, 1)
	s, err := New(tr, p1, pm)
	if err != nil {
		t.Fatal(err)
	}
	p2 := tree.ReplicasOf(tr)
	p2.Set(3, 2) // mode change
	p2.Set(0, 1) // creation
	c, err := s.Reconfigure(p2, cm)
	if err != nil {
		t.Fatal(err)
	}
	// Equation (4): R=2, one creation (0.5), one change (0.125).
	if !almost(c, 2+0.5+0.125) {
		t.Fatalf("cost = %v, want 2.625", c)
	}
	if !s.Placement().Equal(p2) {
		t.Fatal("placement not swapped")
	}
	m := s.Metrics()
	if m.Reconfigurations != 1 || !almost(m.ReconfigCost, 2.625) {
		t.Fatalf("metrics: %+v", m)
	}
	// The simulator owns a copy: mutating the caller's set must not
	// leak in.
	p2.Set(1, 1)
	if s.Placement().Has(1) {
		t.Fatal("simulator aliased caller placement")
	}
}

func TestReconfigureErrors(t *testing.T) {
	tr := testTree()
	pm := power.MustNew([]int{5, 10}, 1, 2)
	s, err := New(tr, tree.ReplicasOf(tr), pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reconfigure(tree.NewReplicas(1), cost.UniformModal(2, 0, 0, 0)); err == nil {
		t.Error("size mismatch accepted")
	}
	bad := tree.ReplicasOf(tr)
	bad.Set(0, 3)
	if _, err := s.Reconfigure(bad, cost.UniformModal(2, 0, 0, 0)); err == nil {
		t.Error("mode above cost model accepted")
	}
}

func TestDynamicWorkloadEndToEnd(t *testing.T) {
	// Experiment-2-style loop: redraw demand, re-optimise with the DP
	// against the current deployment, reconfigure, and simulate. The
	// run must never drop requests and the reconfiguration cost of an
	// unchanged placement is exactly its operating cost R.
	cfg := tree.FatConfig(30)
	tr := tree.MustGenerate(cfg, rng.New(9))
	pm := power.MustNew([]int{10}, 1, 2)
	cm := cost.UniformModal(1, 0.01, 0.001, 0)
	sc := cost.Simple{Create: 0.01, Delete: 0.001}

	res, err := core.MinCost(tr, nil, 10, sc)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(tr, res.Placement, pm)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(5)
	src := rng.New(10)
	for step := 0; step < 5; step++ {
		tree.RedrawRequests(tr, cfg, src)
		res, err = core.MinCost(tr, sim.Placement(), 10, sc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Reconfigure(res.Placement, cm); err != nil {
			t.Fatal(err)
		}
		sim.Step(5)
	}
	m := sim.Metrics()
	if m.Dropped != 0 || m.Violations != 0 {
		t.Fatalf("optimally managed run dropped traffic: %+v", m)
	}
	if m.Reconfigurations != 5 {
		t.Fatalf("Reconfigurations = %d", m.Reconfigurations)
	}
}

func TestPolicyRoutingSplitsAndClimbs(t *testing.T) {
	// root(0) - A(1) - B(2); clients {4,3} at B; servers at B and root,
	// both capacity 5 (mode 1).
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	b.AddClient(bb, 4)
	b.AddClient(bb, 3)
	tr := b.MustBuild()
	pm := power.MustNew([]int{5}, 1, 2)
	p := tree.ReplicasOf(tr)
	p.Set(2, 1)
	p.Set(0, 1)

	// Closest: all 7 requests hit B (capacity 5): 2 dropped there, a
	// violation every step.
	s, err := New(tr, p, pm)
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != tree.PolicyClosest {
		t.Fatalf("New routes under %v", s.Policy())
	}
	s.Step(2)
	if m := s.Metrics(); m.Served != 5*2 || m.Dropped != 2*2 || m.Violations != 1*2 {
		t.Fatalf("closest metrics = %+v", m)
	}

	// Upwards: the 3-request client climbs to the root; everything is
	// served with no violations.
	s, err = NewPolicy(tr, p, pm, tree.PolicyUpwards)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(2)
	if m := s.Metrics(); m.Served != 7*2 || m.Dropped != 0 || m.Violations != 0 {
		t.Fatalf("upwards metrics = %+v", m)
	}
	if m := s.Metrics(); !almost(m.PeakUtilisation, 4.0/5) {
		t.Fatalf("upwards peak utilisation = %v, want 0.8", m.PeakUtilisation)
	}

	// Multiple: B saturates at 5, the root takes the 2-request
	// overflow.
	s, err = NewPolicy(tr, p, pm, tree.PolicyMultiple)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(1)
	if m := s.Metrics(); m.Served != 7 || m.Dropped != 0 || m.Violations != 0 || !almost(m.PeakUtilisation, 1) {
		t.Fatalf("multiple metrics = %+v", m)
	}
}

func TestPolicyRoutingDropsOnlyAtRoot(t *testing.T) {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	b.AddClient(a, 9)
	tr := b.MustBuild()
	pm := power.MustNew([]int{4}, 1, 2)
	p := tree.ReplicasOf(tr)
	p.Set(1, 1)
	p.Set(0, 1)
	s, err := NewPolicy(tr, p, pm, tree.PolicyMultiple)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(1)
	if m := s.Metrics(); m.Served != 8 || m.Dropped != 1 || m.Violations != 0 {
		t.Fatalf("metrics = %+v, want 8 served, 1 dropped past the root", m)
	}
}

func TestNewPolicyRejectsUnknown(t *testing.T) {
	tr := testTree()
	pm := power.MustNew([]int{5}, 1, 2)
	if _, err := NewPolicy(tr, tree.ReplicasOf(tr), pm, tree.Policy(7)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
