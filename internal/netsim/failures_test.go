package netsim

import (
	"reflect"
	"testing"

	"replicatree/internal/cost"
	"replicatree/internal/failure"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// failureSim builds a simulator over a random tree with a stochastic
// schedule armed, returning the pieces the tests reuse.
func failureSim(t *testing.T, seed uint64, policy tree.Policy, horizon int, opts FailureOptions) (*Simulator, *tree.Tree) {
	t.Helper()
	src := rng.Derive(seed, int(policy))
	tr := tree.MustGenerate(tree.HighConfig(60), src)
	pm := power.MustNew([]int{5, 10}, 1, 2)
	pl, err := tree.RandomReplicas(tr, 1+src.IntN(tr.N()/2), pm.M(), src)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewPolicy(tr, pl, pm, policy)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := failure.Stochastic(failure.StochasticConfig{
		Nodes: tr.N(), Horizon: horizon, MTTF: 25, MTTR: 6, Links: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.WithFailures(sched, opts); err != nil {
		t.Fatal(err)
	}
	return sim, tr
}

// TestFailureConservation is the netsim-level property test: under
// every policy, with and without repair, every step's demand is fully
// accounted — Issued == Served + Dropped + UnservedDemand — and
// availability stays within [0, 1].
func TestFailureConservation(t *testing.T) {
	for _, policy := range tree.Policies() {
		for _, repair := range []bool{false, true} {
			for seed := uint64(0); seed < 8; seed++ {
				sim, tr := failureSim(t, seed, policy, 80, FailureOptions{Repair: repair})
				sim.Step(80)
				m := sim.Metrics()
				issuedPerStep := 0
				for j := 0; j < tr.N(); j++ {
					issuedPerStep += tr.ClientSum(j)
				}
				if m.Issued != 80*issuedPerStep {
					t.Fatalf("%v repair=%v seed %d: issued %d, want %d", policy, repair, seed, m.Issued, 80*issuedPerStep)
				}
				if m.Served+m.Dropped+m.UnservedDemand != m.Issued {
					t.Fatalf("%v repair=%v seed %d: served %d + dropped %d + unserved %d != issued %d",
						policy, repair, seed, m.Served, m.Dropped, m.UnservedDemand, m.Issued)
				}
				if policy != tree.PolicyClosest && m.Violations != 0 {
					t.Fatalf("%v repair=%v seed %d: capacity-aware policy reported %d violations",
						policy, repair, seed, m.Violations)
				}
				for j, a := range sim.Availability() {
					if a < 0 || a > 1 {
						t.Fatalf("%v repair=%v seed %d: availability[%d] = %v", policy, repair, seed, j, a)
					}
				}
				if repair && m.RepairCount+m.RepairSkipped == 0 && m.Reconfigurations != m.RepairCount {
					t.Fatalf("%v seed %d: repair bookkeeping inconsistent: %+v", policy, seed, m)
				}
			}
		}
	}
}

// TestRelaxedPolicyCapacityProperty pins the degradation contract for
// the capacity-aware policies: under upwards and multiple, no server
// ever exceeds its capacity and every issued request is accounted for
// (served + dropped + unserved == issued) — with and without failure
// injection, at repair-solver worker counts 1 and 8. CI runs this under
// -race, where the worker variation also shakes out data races in the
// parallel masked re-solve.
func TestRelaxedPolicyCapacityProperty(t *testing.T) {
	const horizon = 60
	for _, policy := range []tree.Policy{tree.PolicyUpwards, tree.PolicyMultiple} {
		for _, withFail := range []bool{false, true} {
			for _, workers := range []int{1, 8} {
				for seed := uint64(0); seed < 4; seed++ {
					var sim *Simulator
					var tr *tree.Tree
					if withFail {
						sim, tr = failureSim(t, seed, policy, horizon,
							FailureOptions{Repair: true, Workers: workers})
					} else {
						src := rng.Derive(seed, int(policy))
						tr = tree.MustGenerate(tree.HighConfig(60), src)
						pm := power.MustNew([]int{5, 10}, 1, 2)
						pl, err := tree.RandomReplicas(tr, 1+src.IntN(tr.N()/2), pm.M(), src)
						if err != nil {
							t.Fatal(err)
						}
						sim, err = NewPolicy(tr, pl, pm, policy)
						if err != nil {
							t.Fatal(err)
						}
					}
					sim.Step(horizon)
					m := sim.Metrics()
					if m.Violations != 0 {
						t.Fatalf("%v fail=%v workers=%d seed %d: %d capacity violations",
							policy, withFail, workers, seed, m.Violations)
					}
					if m.PeakUtilisation > 1 {
						t.Fatalf("%v fail=%v workers=%d seed %d: peak utilisation %v > 1",
							policy, withFail, workers, seed, m.PeakUtilisation)
					}
					issued := 0
					for j := 0; j < tr.N(); j++ {
						issued += tr.ClientSum(j)
					}
					issued *= horizon
					if got := m.Served + m.Dropped + m.UnservedDemand; got != issued {
						t.Fatalf("%v fail=%v workers=%d seed %d: accounted %d of %d issued",
							policy, withFail, workers, seed, got, issued)
					}
					if withFail && m.Issued != issued {
						t.Fatalf("%v fail=%v workers=%d seed %d: Issued = %d, want %d",
							policy, withFail, workers, seed, m.Issued, issued)
					}
				}
			}
		}
	}
}

// TestFailureReplayDeterministic is the acceptance determinism check: a
// seeded schedule replayed with repair solvers at 1 and 8 workers must
// produce byte-identical metrics and availability.
func TestFailureReplayDeterministic(t *testing.T) {
	for _, policy := range tree.Policies() {
		run := func(workers int) (Metrics, []float64) {
			sim, _ := failureSim(t, 42, policy, 120, FailureOptions{
				Repair:  true,
				Cost:    cost.Simple{Create: 0.2, Delete: 0.05},
				Workers: workers,
			})
			sim.Step(120)
			return sim.Metrics(), sim.Availability()
		}
		m1, a1 := run(1)
		m8, a8 := run(8)
		if !reflect.DeepEqual(m1, m8) {
			t.Fatalf("%v: metrics differ between 1 and 8 workers:\n%+v\n%+v", policy, m1, m8)
		}
		if !reflect.DeepEqual(a1, a8) {
			t.Fatalf("%v: availability differs between 1 and 8 workers", policy)
		}
	}
}

// TestFailureDegradationAndRepair pins the end-to-end story on a
// concrete chain: a crash of the only server loses demand under the
// closest policy without repair, while the repair loop re-equips a live
// node and keeps serving.
func TestFailureDegradationAndRepair(t *testing.T) {
	build := func() (*tree.Tree, *tree.Replicas, power.Model) {
		b := tree.NewBuilder()
		n1 := b.AddNode(b.Root())
		n2 := b.AddNode(n1)
		b.AddClient(n2, 4)
		tr := b.MustBuild()
		pl := tree.ReplicasOf(tr)
		pl.Set(n1, 1)
		return tr, pl, power.MustNew([]int{5, 10}, 1, 2)
	}
	sched := func() *failure.Schedule {
		s := failure.NewSchedule()
		s.Add(1, failure.NodeCrash, 1)
		s.Add(3, failure.NodeRecover, 1)
		return s
	}

	// Without repair: steps 1 and 2 lose all 4 requests.
	tr, pl, pm := build()
	sim, err := New(tr, pl, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.WithFailures(sched(), FailureOptions{}); err != nil {
		t.Fatal(err)
	}
	sim.Step(5)
	m := sim.Metrics()
	if m.UnservedDemand != 8 || m.Served != 12 || m.DowntimeSteps != 2 {
		t.Fatalf("no repair: unserved %d served %d downtime %d, want 8/12/2", m.UnservedDemand, m.Served, m.DowntimeSteps)
	}
	if a := sim.Availability(); a[2] != 1-8.0/20.0 {
		t.Fatalf("no repair: availability %v", a[2])
	}

	// With repair: the crash step re-equips a live node, so only the
	// crash instant's evaluation happens on the repaired placement and
	// nothing is lost.
	tr, pl, pm = build()
	sim, err = New(tr, pl, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.WithFailures(sched(), FailureOptions{Repair: true}); err != nil {
		t.Fatal(err)
	}
	sim.Step(5)
	m = sim.Metrics()
	if m.UnservedDemand != 0 || m.Served != 20 {
		t.Fatalf("repair: unserved %d served %d, want 0/20", m.UnservedDemand, m.Served)
	}
	if m.RepairCount == 0 {
		t.Fatal("repair: no repair recorded")
	}
}

// TestWithFailuresValidates pins the argument contract.
func TestWithFailuresValidates(t *testing.T) {
	tr := testTree()
	pm := power.MustNew([]int{5, 10}, 1, 2)
	sim, err := New(tr, tree.ReplicasOf(tr), pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.WithFailures(nil, FailureOptions{}); err == nil {
		t.Error("nil schedule accepted")
	}
	oob := failure.NewSchedule()
	oob.Add(0, failure.NodeCrash, 99)
	if err := sim.WithFailures(oob, FailureOptions{}); err == nil {
		t.Error("out-of-range event accepted")
	}
	ok := failure.NewSchedule()
	if err := sim.WithFailures(ok, FailureOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sim.WithFailures(ok, FailureOptions{}); err == nil {
		t.Error("double configuration accepted")
	}

	cons := tree.NewConstraints(tr)
	csim, err := NewConstrained(tr, tree.ReplicasOf(tr), pm, tree.PolicyClosest, cons)
	if err != nil {
		t.Fatal(err)
	}
	if err := csim.WithFailures(failure.NewSchedule(), FailureOptions{}); err == nil {
		t.Error("constrained simulator accepted failures")
	}
}
