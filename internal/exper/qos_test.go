package exper

import (
	"strings"
	"testing"

	"replicatree/internal/tree"
)

// TestRunQoSCompareSmall runs the constraint experiment at a reduced
// scale and checks its internal invariants: the exact count never
// exceeds the greedy count (enforced inside the runner), counts are
// monotone as the QoS bound tightens, and the unconstrained point
// matches the classical optimum.
func TestRunQoSCompareSmall(t *testing.T) {
	cfg := DefaultQoSCompare(true)
	cfg.Trees = 4
	cfg.Gen = tree.HighConfig(40)
	res, err := RunQoSCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.QoS) {
		t.Fatalf("%d points for %d bounds", len(res.Points), len(cfg.QoS))
	}
	// cfg.QoS runs from loose to tight, so the exact average must be
	// non-decreasing over the feasible points (constraints only shrink
	// the feasible set).
	prev := -1.0
	for _, pt := range res.Points {
		if pt.Feasible != cfg.Trees {
			t.Fatalf("qos=%d: %d/%d feasible (links are unconstrained, so all trees must be)",
				pt.QoS, pt.Feasible, cfg.Trees)
		}
		if pt.AvgExact < prev-1e-9 {
			t.Fatalf("exact average decreased while tightening QoS: %v", res.Points)
		}
		prev = pt.AvgExact
		if pt.AvgGreedy < pt.AvgExact-1e-9 {
			t.Fatalf("greedy average %v below exact %v", pt.AvgGreedy, pt.AvgExact)
		}
	}

	var sb strings.Builder
	if err := res.Report(&sb, "qos test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "exact DP") {
		t.Fatalf("report lacks the table header:\n%s", sb.String())
	}
}

// TestRunQoSCompareBandwidth exercises the bandwidth dimension: very
// tight links force more replicas than the unconstrained baseline.
func TestRunQoSCompareBandwidth(t *testing.T) {
	cfg := DefaultQoSCompare(false)
	cfg.Trees = 3
	cfg.Gen = tree.FatConfig(30)
	cfg.QoS = []int{0}
	cfg.Bandwidth = 2
	res, err := RunQoSCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFree := cfg
	cfgFree.Bandwidth = -1
	free, err := RunQoSCompare(cfgFree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Feasible > 0 && free.Points[0].Feasible > 0 &&
		res.Points[0].AvgExact < free.Points[0].AvgExact-1e-9 {
		t.Fatalf("bandwidth-capped instance needs fewer replicas (%v) than the free one (%v)",
			res.Points[0].AvgExact, free.Points[0].AvgExact)
	}
	if err := RunQoSCompareInvalid(); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// RunQoSCompareInvalid exercises the config validation path.
func RunQoSCompareInvalid() error {
	cfg := DefaultQoSCompare(false)
	cfg.QoS = nil
	_, err := RunQoSCompare(cfg)
	return err
}
