package exper

import (
	"bytes"
	"strings"
	"testing"

	"replicatree/internal/tree"
)

func smallIntervals() IntervalConfig {
	cfg := DefaultIntervals()
	cfg.Trees = 6
	cfg.Gen = tree.FatConfig(30)
	cfg.Horizon = 20
	cfg.Intervals = []int{1, 4, 10}
	return cfg
}

func TestRunIntervalsShape(t *testing.T) {
	cfg := smallIntervals()
	res, err := RunIntervals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // lazy + 3 intervals
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]IntervalRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	lazy, ok1 := byName["lazy"]
	sys, ok2 := byName["systematic"]
	if !ok1 || !ok2 {
		t.Fatalf("missing strategies: %v", res.Rows)
	}
	// Lazy reconfigures least; systematic reconfigures every step.
	if lazy.Updates > sys.Updates {
		t.Fatalf("lazy updates %.1f above systematic %.1f", lazy.Updates, sys.Updates)
	}
	if sys.Updates != float64(cfg.Horizon) {
		t.Fatalf("systematic updates %.1f, want %d", sys.Updates, cfg.Horizon)
	}
	if sys.Forced != 0 {
		t.Fatalf("systematic forced updates %.1f", sys.Forced)
	}
	// Systematic keeps the per-step optimal server count, so its
	// average can never exceed any other strategy's.
	for _, r := range res.Rows {
		if sys.AvgServers > r.AvgServers+1e-9 {
			t.Fatalf("systematic avg servers %.2f above %s's %.2f", sys.AvgServers, r.Name, r.AvgServers)
		}
		if r.UpdateCost < 0 || r.TotalCost < r.UpdateCost {
			t.Fatalf("inconsistent costs in %+v", r)
		}
	}
	// Lazy pays the least update cost.
	for _, r := range res.Rows {
		if lazy.UpdateCost > r.UpdateCost+1e-9 {
			t.Fatalf("lazy update cost %.2f above %s's %.2f", lazy.UpdateCost, r.Name, r.UpdateCost)
		}
	}
}

func TestRunIntervalsDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallIntervals()
	cfg.Trees = 4
	a, err := RunIntervals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunIntervals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestRunIntervalsValidation(t *testing.T) {
	cfg := smallIntervals()
	cfg.Horizon = 0
	if _, err := RunIntervals(cfg); err == nil {
		t.Error("Horizon=0 accepted")
	}
	cfg = smallIntervals()
	cfg.DriftProb = 2
	if _, err := RunIntervals(cfg); err == nil {
		t.Error("DriftProb=2 accepted")
	}
	cfg = smallIntervals()
	cfg.Intervals = []int{0}
	if _, err := RunIntervals(cfg); err == nil {
		t.Error("interval 0 accepted")
	}
}

func TestRunIntervalsZeroDrift(t *testing.T) {
	// Without drift the lazy strategy never needs to reconfigure.
	cfg := smallIntervals()
	cfg.DriftProb = 0
	res, err := RunIntervals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Name == "lazy" && r.Updates != 0 {
			t.Fatalf("lazy updates %.1f without drift", r.Updates)
		}
	}
}

func TestIntervalsReport(t *testing.T) {
	cfg := smallIntervals()
	cfg.Trees = 3
	res, err := RunIntervals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Report(&buf, "update intervals"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"lazy", "systematic", "total cost"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
