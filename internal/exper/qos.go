package exper

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"replicatree/internal/core"
	"replicatree/internal/greedy"
	"replicatree/internal/par"
	"replicatree/internal/rng"
	"replicatree/internal/textplot"
	"replicatree/internal/tree"
)

// QoSCompareConfig parameterises the constraint experiment: on the
// paper's fat or high trees, sweep a uniform per-client QoS bound (and
// optionally a uniform per-link bandwidth) and compare the number of
// replicas needed with and without the constraints, placing with both
// the exact polynomial algorithm of arXiv 0706.3350
// (core.MinReplicasQoS) and the constrained greedy baseline
// (greedy.MinReplicasConstrained). Every placement is validated before
// it is counted.
type QoSCompareConfig struct {
	Trees int
	Gen   tree.GenConfig
	// W is the uniform server capacity.
	W int
	// QoS lists the uniform per-client bounds swept; 0 is the
	// unconstrained baseline.
	QoS []int
	// Bandwidth caps every link uniformly during the whole sweep;
	// negative leaves links unconstrained.
	Bandwidth int
	Seed      uint64
	Workers   int
}

// DefaultQoSCompare returns the default workload: fat (or high) trees
// of 100 nodes as in Experiment 1 with the paper's W=10, QoS bounds
// swept from unconstrained down to 2 hops, and unconstrained links.
func DefaultQoSCompare(high bool) QoSCompareConfig {
	gen := tree.FatConfig(100)
	if high {
		gen = tree.HighConfig(100)
	}
	return QoSCompareConfig{
		Trees:     50,
		Gen:       gen,
		W:         10,
		QoS:       []int{0, 6, 4, 3, 2},
		Bandwidth: -1,
		Seed:      DefaultSeed,
	}
}

// QoSPoint aggregates one swept QoS bound. Averages are over the trees
// where a valid placement exists at all (Feasible counts them;
// tightening QoS can make instances infeasible only through bandwidth,
// so with unconstrained links Feasible stays at Trees).
type QoSPoint struct {
	QoS      int // 0 = unconstrained
	Feasible int
	// AvgExact and AvgGreedy are the average replica counts of the
	// exact DP and the constrained greedy over the feasible trees.
	AvgExact  float64
	AvgGreedy float64
}

// QoSCompareResult aggregates the constraint experiment.
type QoSCompareResult struct {
	W         int
	Bandwidth int
	Points    []QoSPoint
}

func (c QoSCompareConfig) validate() error {
	if c.Trees <= 0 {
		return fmt.Errorf("exper: Trees = %d", c.Trees)
	}
	if c.W <= 0 {
		return fmt.Errorf("exper: non-positive capacity %d", c.W)
	}
	if len(c.QoS) == 0 {
		return fmt.Errorf("exper: no QoS bounds to sweep")
	}
	for _, q := range c.QoS {
		if q < 0 {
			return fmt.Errorf("exper: negative QoS bound %d", q)
		}
	}
	_, err := tree.Generate(c.Gen, rng.New(0))
	return err
}

// RunQoSCompare executes the constraint experiment. Runs are parallel
// across trees and deterministic for a fixed seed.
func RunQoSCompare(cfg QoSCompareConfig) (*QoSCompareResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	type treeOut struct {
		// exact[qi] and grdy[qi] are replica counts at cfg.QoS[qi], or
		// -1 when no valid placement exists.
		exact []int
		grdy  []int
		err   error
	}
	// One arena-backed solver, destination set and mutable constraint
	// set per worker, rebound to each tree via the Reset family and
	// reused across the whole QoS sweep.
	type state struct {
		solver *core.QoSSolver
		dst    *tree.Replicas
		cons   *tree.Constraints
	}
	outs := par.MapPooled(cfg.Trees, cfg.Workers, func() *state { return new(state) }, func(st *state, i int) treeOut {
		src := rng.Derive(cfg.Seed, i)
		t := tree.MustGenerate(cfg.Gen, src)
		if st.solver == nil {
			st.solver = core.NewQoSSolver(t)
			st.cons = tree.NewConstraints(t)
		} else {
			st.solver.Reset(t)
			st.cons.Reset(t)
		}
		if st.dst == nil || st.dst.N() != t.N() {
			st.dst = tree.ReplicasOf(t)
		}
		solver, dst := st.solver, st.dst
		sweepCons := st.cons
		out := treeOut{exact: make([]int, len(cfg.QoS)), grdy: make([]int, len(cfg.QoS))}
		for qi, q := range cfg.QoS {
			out.exact[qi], out.grdy[qi] = -1, -1
			var cons *tree.Constraints
			if q > 0 || cfg.Bandwidth >= 0 {
				cons = sweepCons
				cons.SetUniformQoS(t, q) // q = 0 clears the previous bound
				if cfg.Bandwidth >= 0 {
					cons.SetUniformBandwidth(cfg.Bandwidth)
				}
			}
			exact, err := solver.Solve(cfg.W, cons, dst)
			if err != nil {
				if errors.Is(err, core.ErrInfeasible) {
					continue // infeasible under these constraints
				}
				out.err = fmt.Errorf("exper: tree %d qos=%d: %w", i, q, err)
				return out
			}
			out.exact[qi] = exact.Count()
			grdy, err := greedy.MinReplicasConstrained(t, cfg.W, cons)
			if err != nil {
				out.err = fmt.Errorf("exper: tree %d qos=%d: greedy failed where the DP succeeded: %w", i, q, err)
				return out
			}
			if err := tree.ValidateConstrained(t, grdy, tree.PolicyClosest, cfg.W, cons); err != nil {
				out.err = fmt.Errorf("exper: tree %d qos=%d: invalid greedy placement: %w", i, q, err)
				return out
			}
			if grdy.Count() < exact.Count() {
				out.err = fmt.Errorf("exper: tree %d qos=%d: greedy beat the exact DP (%d < %d)",
					i, q, grdy.Count(), exact.Count())
				return out
			}
			out.grdy[qi] = grdy.Count()
		}
		return out
	})

	res := &QoSCompareResult{W: cfg.W, Bandwidth: cfg.Bandwidth}
	for qi, q := range cfg.QoS {
		pt := QoSPoint{QoS: q}
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			if o.exact[qi] >= 0 {
				pt.Feasible++
				pt.AvgExact += float64(o.exact[qi])
				pt.AvgGreedy += float64(o.grdy[qi])
			}
		}
		if pt.Feasible > 0 {
			pt.AvgExact /= float64(pt.Feasible)
			pt.AvgGreedy /= float64(pt.Feasible)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Report renders the constraint experiment: the replica-count table and
// a plot of the constrained-over-unconstrained replica overhead.
func (r *QoSCompareResult) Report(w io.Writer, title string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%6s %8s %12s %12s %10s\n", "qos", "ok", "exact DP", "greedy", "greedy +%")
	var xs []float64
	exactSeries := textplot.Series{Name: "exact"}
	greedySeries := textplot.Series{Name: "greedy"}
	for _, pt := range r.Points {
		label := "inf"
		if pt.QoS > 0 {
			label = fmt.Sprintf("%d", pt.QoS)
		}
		over := 0.0
		if pt.AvgExact > 0 {
			over = (pt.AvgGreedy/pt.AvgExact - 1) * 100
		}
		fmt.Fprintf(&sb, "%6s %8d %12.2f %12.2f %9.1f%%\n",
			label, pt.Feasible, pt.AvgExact, pt.AvgGreedy, over)
		if pt.Feasible > 0 && pt.QoS > 0 {
			xs = append(xs, float64(pt.QoS))
			exactSeries.Ys = append(exactSeries.Ys, pt.AvgExact)
			greedySeries.Ys = append(greedySeries.Ys, pt.AvgGreedy)
		}
	}
	sb.WriteByte('\n')
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	if len(xs) > 1 {
		return textplot.Plot(w, fmt.Sprintf("average replicas vs QoS bound (W=%d)", r.W),
			xs, []textplot.Series{exactSeries, greedySeries}, 60, 16)
	}
	return nil
}
