// Crash-chaos experiment: SIGKILL a replicaserved daemon at a
// randomized point inside a drift burst, restart it over the same data
// directory, and require the recovered instance to be byte-identical —
// placement, costs and Pareto front — to an uninterrupted twin fed the
// durable prefix of the burst. The daemon is spawned as a real process
// (the journal's fsync contract only means something across an actual
// kill -9), the twin runs in-process over the same HTTP surface.
package exper

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"replicatree/internal/rng"
	"replicatree/internal/serve"
)

// CrashChaosConfig parameterises one chaos campaign.
type CrashChaosConfig struct {
	// Daemon is the argv prefix that launches a replicaserved daemon;
	// the harness appends -addr and -data. Tests pass their own binary
	// re-execed into serve.Run via an environment flag.
	Daemon []string
	// Env is extra environment for the daemon process, on top of the
	// harness's own environment.
	Env []string
	// WorkDir hosts the per-trial data directories.
	WorkDir string
	// Trials is the number of seeded kill points (default 25). Each
	// trial derives its kill tick, kill delay and drift seeds from
	// Seed, so a campaign is reproducible end to end.
	Trials int
	Seed   uint64
	// Nodes, W, Drifts and RedrawProb shape the burst: a power-model
	// chained instance (the fullest durable state) taking Drifts
	// sequential redraw ticks. Defaults: 30 nodes, W=10, 100 drifts,
	// probability 0.05.
	Nodes      int
	W          int
	Drifts     int
	RedrawProb float64
	// Stdout receives one line per trial when non-nil.
	Stdout io.Writer
}

// DefaultCrashChaos is the acceptance-scale campaign: 25 seeded kill
// points in a 100-drift burst.
func DefaultCrashChaos(daemon []string, workDir string) CrashChaosConfig {
	return CrashChaosConfig{
		Daemon:     daemon,
		WorkDir:    workDir,
		Trials:     25,
		Seed:       DefaultSeed,
		Nodes:      30,
		W:          10,
		Drifts:     100,
		RedrawProb: 0.05,
	}
}

// CrashChaosResult summarises a campaign.
type CrashChaosResult struct {
	Trials int
	// Durable counts trials where the drift in flight at the kill
	// instant had already been journaled (recovery at tick killAt);
	// LostTail counts trials where the kill won the race (recovery at
	// killAt-1). Both are correct outcomes — the invariant is that
	// recovery lands on one of the two and matches the twin exactly.
	Durable  int
	LostTail int
	Elapsed  time.Duration
}

func (r *CrashChaosResult) String() string {
	return fmt.Sprintf("crashchaos: trials=%d durable=%d lost_tail=%d elapsed=%s",
		r.Trials, r.Durable, r.LostTail, r.Elapsed.Round(time.Millisecond))
}

// chaosDaemon is one spawned daemon process.
type chaosDaemon struct {
	cmd     *exec.Cmd
	baseURL string
}

// startDaemon spawns the daemon over dir and waits for its listen
// announcement.
func startDaemon(cfg *CrashChaosConfig, dir string) (*chaosDaemon, error) {
	argv := append(append([]string{}, cfg.Daemon...), "-addr", "127.0.0.1:0", "-data", dir)
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), cfg.Env...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	const banner = "replicaserved listening on "
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, banner) {
			addr := strings.TrimSpace(line[len(banner):])
			// Keep draining stdout so the daemon never blocks on a full
			// pipe; the remaining output is uninteresting.
			go func() {
				for sc.Scan() {
				}
			}()
			return &chaosDaemon{cmd: cmd, baseURL: "http://" + addr}, nil
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("exper: crashchaos: daemon exited before announcing its address")
}

// kill delivers SIGKILL and reaps the process.
func (d *chaosDaemon) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// chaosLoad is the instance definition every participant loads: a
// chained power-model instance, so recovery must reproduce chained
// existing sets and the Pareto front, not just a stateless placement.
func chaosLoad(cfg *CrashChaosConfig, genSeed uint64) map[string]any {
	return map[string]any{
		"id": "chaos", "w": cfg.W, "chain": true,
		"cost":  map[string]float64{"create": 0.1, "delete": 0.01},
		"power": map[string]any{"caps": []int{5, 10}, "static": 0.5, "alpha": 2, "change": 0.05},
		"gen":   map[string]any{"nodes": cfg.Nodes, "shape": "power", "seed": genSeed},
	}
}

// chaosDrift is the i-th drift of a trial; daemon and twin must send
// byte-identical bodies for replay equivalence to mean anything.
func chaosDrift(cfg *CrashChaosConfig, trial, i int) map[string]any {
	return map[string]any{"redraw": map[string]any{
		"prob": cfg.RedrawProb,
		"seed": cfg.Seed + uint64(trial)*1_000_000 + uint64(i),
	}}
}

// loadChaosInstance POSTs the instance and fails on anything but 201.
func loadChaosInstance(client *http.Client, baseURL string, body map[string]any) error {
	code, resp, err := postJSON(client, baseURL+"/instances", body)
	if err != nil {
		return err
	}
	if code != http.StatusCreated {
		return fmt.Errorf("exper: crashchaos: loading instance: status %d: %s", code, resp)
	}
	return nil
}

// driftChaos POSTs one drift and fails on anything but 200.
func driftChaos(client *http.Client, baseURL string, body map[string]any) error {
	code, resp, err := postJSON(client, baseURL+"/instances/chaos/drift", body)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("exper: crashchaos: drift: status %d: %s", code, resp)
	}
	return nil
}

// samePlacementErr compares the durable content of two snapshots —
// everything a recovery must reproduce byte-identically. Runtime stats
// and timings are excluded; reconfiguration cost and the reused/new
// split are not (replay goes through the normal tick path, so even
// path-dependent values must match).
func samePlacementErr(what string, a, b *serve.Snapshot) error {
	if a.Tick != b.Tick {
		return fmt.Errorf("%s: ticks %d vs %d", what, a.Tick, b.Tick)
	}
	if !reflect.DeepEqual(a.Modes, b.Modes) {
		return fmt.Errorf("%s: placement modes differ at tick %d", what, a.Tick)
	}
	if a.Servers != b.Servers || a.Reused != b.Reused || a.New != b.New || a.Cost != b.Cost {
		return fmt.Errorf("%s: summaries differ: (%d,%d,%d,%g) vs (%d,%d,%d,%g)", what,
			a.Servers, a.Reused, a.New, a.Cost, b.Servers, b.Reused, b.New, b.Cost)
	}
	if (a.Power == nil) != (b.Power == nil) {
		return fmt.Errorf("%s: power view presence differs", what)
	}
	if a.Power != nil {
		if !reflect.DeepEqual(a.Power.Modes, b.Power.Modes) {
			return fmt.Errorf("%s: power modes differ at tick %d", what, a.Tick)
		}
		if a.Power.Servers != b.Power.Servers || a.Power.Cost != b.Power.Cost || a.Power.Power != b.Power.Power {
			return fmt.Errorf("%s: power summaries differ", what)
		}
		if !reflect.DeepEqual(a.Power.Front, b.Power.Front) {
			return fmt.Errorf("%s: pareto fronts differ: %d vs %d points", what,
				len(a.Power.Front), len(b.Power.Front))
		}
	}
	if (a.QoS == nil) != (b.QoS == nil) {
		return fmt.Errorf("%s: qos view presence differs", what)
	}
	if a.QoS != nil && !reflect.DeepEqual(a.QoS.Modes, b.QoS.Modes) {
		return fmt.Errorf("%s: qos modes differ", what)
	}
	return nil
}

// RunCrashChaos runs the campaign and fails fast on the first trial
// whose recovery diverges from its twin.
func RunCrashChaos(cfg CrashChaosConfig) (*CrashChaosResult, error) {
	if len(cfg.Daemon) == 0 {
		return nil, fmt.Errorf("exper: crashchaos needs a daemon command")
	}
	if cfg.WorkDir == "" {
		return nil, fmt.Errorf("exper: crashchaos needs a work directory")
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 25
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 30
	}
	if cfg.W <= 0 {
		cfg.W = 10
	}
	if cfg.Drifts <= 0 {
		cfg.Drifts = 100
	}
	if cfg.RedrawProb == 0 {
		cfg.RedrawProb = 0.05
	}

	res := &CrashChaosResult{Trials: cfg.Trials}
	start := time.Now()
	for trial := 0; trial < cfg.Trials; trial++ {
		if err := runChaosTrial(&cfg, trial, res); err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func runChaosTrial(cfg *CrashChaosConfig, trial int, res *CrashChaosResult) error {
	r := rng.Derive(cfg.Seed, trial)
	killAt := 1 + r.IntN(cfg.Drifts)                                // drift index whose tick the kill races
	killDelay := time.Duration(r.IntN(3_000_001)) * time.Nanosecond // 0–3ms after firing it
	genSeed := cfg.Seed + uint64(trial)

	dir := filepath.Join(cfg.WorkDir, fmt.Sprintf("trial%d", trial))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	client := &http.Client{}

	// Victim daemon: load, drift up to the kill point, then SIGKILL
	// with the killAt-th drift in flight.
	victim, err := startDaemon(cfg, dir)
	if err != nil {
		return err
	}
	defer victim.kill()
	if err := loadChaosInstance(client, victim.baseURL, chaosLoad(cfg, genSeed)); err != nil {
		return err
	}
	for i := 1; i < killAt; i++ {
		if err := driftChaos(client, victim.baseURL, chaosDrift(cfg, trial, i)); err != nil {
			return err
		}
	}
	fired := make(chan struct{})
	go func() {
		// The response is expected to die with the process; only the
		// journal decides whether this tick survived.
		driftChaos(&http.Client{}, victim.baseURL, chaosDrift(cfg, trial, killAt))
		close(fired)
	}()
	time.Sleep(killDelay)
	victim.kill()
	<-fired

	// Recovery: a fresh daemon over the same directory replays the
	// journal. It must land exactly one of the two ticks the kill
	// could have left durable.
	revived, err := startDaemon(cfg, dir)
	if err != nil {
		return err
	}
	defer revived.kill()
	var recovered serve.Snapshot
	if err := getJSON(client, revived.baseURL+"/instances/chaos/placement", &recovered); err != nil {
		return fmt.Errorf("recovered daemon lost the instance: %w", err)
	}
	tick := int(recovered.Tick)
	switch tick {
	case killAt:
		res.Durable++
	case killAt - 1:
		res.LostTail++
	default:
		return fmt.Errorf("recovered at tick %d, kill raced drift %d (want %d or %d)",
			tick, killAt, killAt-1, killAt)
	}

	// Twin: an uninterrupted in-process daemon fed the durable prefix.
	twin := httptest.NewServer(serve.NewServer(serve.ServerOptions{}).Handler())
	defer twin.Close()
	if err := loadChaosInstance(twin.Client(), twin.URL, chaosLoad(cfg, genSeed)); err != nil {
		return err
	}
	for i := 1; i <= tick; i++ {
		if err := driftChaos(twin.Client(), twin.URL, chaosDrift(cfg, trial, i)); err != nil {
			return err
		}
	}
	var want serve.Snapshot
	if err := getJSON(twin.Client(), twin.URL+"/instances/chaos/placement", &want); err != nil {
		return err
	}
	if err := samePlacementErr("recovered state", &recovered, &want); err != nil {
		return err
	}

	// The recovered daemon's future must match the twin's: finish the
	// burst on both and compare again.
	for i := tick + 1; i <= cfg.Drifts; i++ {
		body := chaosDrift(cfg, trial, i)
		if err := driftChaos(client, revived.baseURL, body); err != nil {
			return err
		}
		if err := driftChaos(twin.Client(), twin.URL, body); err != nil {
			return err
		}
	}
	var gotEnd, wantEnd serve.Snapshot
	if err := getJSON(client, revived.baseURL+"/instances/chaos/placement", &gotEnd); err != nil {
		return err
	}
	if err := getJSON(twin.Client(), twin.URL+"/instances/chaos/placement", &wantEnd); err != nil {
		return err
	}
	if err := samePlacementErr("post-recovery burst", &gotEnd, &wantEnd); err != nil {
		return err
	}

	if cfg.Stdout != nil {
		outcome := "durable"
		if tick == killAt-1 {
			outcome = "lost tail"
		}
		fmt.Fprintf(cfg.Stdout, "crashchaos trial %d: kill at drift %d (+%s), recovered tick %d (%s), burst finished identical\n",
			trial, killAt, killDelay.Round(time.Microsecond), tick, outcome)
	}
	return nil
}
