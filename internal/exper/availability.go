package exper

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/failure"
	"replicatree/internal/greedy"
	"replicatree/internal/netsim"
	"replicatree/internal/par"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// AvailabilityConfig parameterises the availability experiment: on
// random trees whose nodes fail and recover stochastically (seeded
// MTTF/MTTR histories, stationary up-probability MTTF/(MTTF+MTTR)),
// compare placement strategies on three axes — server count, the
// analytic expected unserved demand of the failure package, and the
// demand actually lost over a simulated horizon, with and without the
// online repair loop.
//
// The strategies are the exact MinCost DP (fewest servers, no
// redundancy), the greedy baseline, and the availability-hedged greedy
// (greedy.MinReplicasHedged) keeping HedgeK servers on every client's
// root path: the hedge pays extra servers up front to shrink the
// demand lost between failure and repair.
type AvailabilityConfig struct {
	Trees int
	Gen   tree.GenConfig
	// Power supplies the capacity (placements use W_M) and the modes
	// the simulator meters energy with.
	Power power.Model
	// MTTF and MTTR are the per-node mean steps to failure and repair.
	MTTF, MTTR float64
	// Horizon is the number of simulated steps per tree.
	Horizon int
	// HedgeK is the hedged strategy's per-client coverage target.
	HedgeK int
	// Repair enables the second simulated pass with the online repair
	// loop; when false the RepairLostFrac/Repairs columns stay zero and
	// the experiment runs roughly twice as fast.
	Repair  bool
	Seed    uint64
	Workers int
}

// DefaultAvailability returns the default workload: 30 fat (or high)
// trees of 100 nodes, nodes up ~86% of the time (MTTF 60, MTTR 10),
// 300 steps, and K=2 hedging.
func DefaultAvailability(high bool) AvailabilityConfig {
	gen := tree.FatConfig(100)
	if high {
		gen = tree.HighConfig(100)
	}
	return AvailabilityConfig{
		Trees:   30,
		Gen:     gen,
		Power:   Exp3Power(),
		MTTF:    60,
		MTTR:    10,
		Horizon: 300,
		HedgeK:  2,
		Repair:  true,
		Seed:    DefaultSeed,
	}
}

// AvailabilityRow aggregates one strategy over all feasible trees.
// The fractions are demand-weighted: total lost demand over total
// issued demand across trees and steps.
type AvailabilityRow struct {
	Strategy string
	// Feasible counts the trees where the strategy produced a valid
	// placement.
	Feasible int
	// Servers is the average placement size.
	Servers float64
	// ExpectedFrac is the analytic expected unserved fraction at the
	// stationary up-probability (failure.ExpectedUnserved).
	ExpectedFrac float64
	// LostFrac and Availability describe the simulated run without
	// repair: the fraction of issued demand lost to failures, and its
	// complement.
	LostFrac     float64
	Availability float64
	// RepairLostFrac is the lost fraction with the online repair loop
	// re-solving after every fault transition; Repairs is the average
	// number of successful repairs per tree.
	RepairLostFrac float64
	Repairs        float64
}

// AvailabilityResult is the availability experiment's outcome.
type AvailabilityResult struct {
	Rows    []AvailabilityRow
	Horizon int
	// UpProbability is the stationary per-node availability implied by
	// MTTF and MTTR.
	UpProbability float64
}

func (c AvailabilityConfig) validate() error {
	if c.Trees <= 0 {
		return fmt.Errorf("exper: Trees = %d", c.Trees)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("exper: Horizon = %d", c.Horizon)
	}
	if c.MTTF <= 0 || c.MTTR < 0 {
		return fmt.Errorf("exper: MTTF %v, MTTR %v", c.MTTF, c.MTTR)
	}
	if c.HedgeK < 0 {
		return fmt.Errorf("exper: HedgeK = %d", c.HedgeK)
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	_, err := tree.Generate(c.Gen, rng.New(0))
	return err
}

// availabilityStrategies names the compared strategies in report order.
func availabilityStrategies(hedgeK int) []string {
	return []string{"exact DP", "greedy", fmt.Sprintf("hedged K=%d", hedgeK)}
}

// RunAvailability executes the availability experiment. Runs are
// parallel across trees and deterministic for a fixed seed and any
// worker count.
func RunAvailability(cfg AvailabilityConfig) (*AvailabilityResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	names := availabilityStrategies(cfg.HedgeK)
	upP := failure.UpProbability(cfg.MTTF, cfg.MTTR)

	type stratOut struct {
		feasible              bool
		servers               int
		expected, demand      float64 // expected unserved per step, issued per step
		lost, repairLost      int
		issued, repairRepairs int
	}
	type treeOut struct {
		strat []stratOut
		err   error
	}
	outs := par.Map(cfg.Trees, cfg.Workers, func(i int) treeOut {
		src := rng.Derive(cfg.Seed, i)
		t := tree.MustGenerate(cfg.Gen, src)
		W := cfg.Power.MaxCap()
		schedSeed := src.Uint64()

		up := make([]float64, t.N())
		for j := range up {
			up[j] = upP
		}

		placements := make([]*tree.Replicas, len(names))
		if res, err := core.MinCost(t, nil, W, cost.Simple{}); err == nil {
			placements[0] = res.Placement
		}
		if r, err := greedy.MinReplicas(t, W); err == nil {
			placements[1] = r
		}
		if r, err := greedy.MinReplicasHedged(t, W, cfg.HedgeK); err == nil {
			placements[2] = r
		}

		out := treeOut{strat: make([]stratOut, len(names))}
		for si, pl := range placements {
			if pl == nil {
				continue
			}
			s := &out.strat[si]
			s.feasible = true
			s.servers = pl.Count()

			exp, err := failure.ExpectedUnserved(t, pl, up, tree.PolicyClosest)
			if err != nil {
				out.err = fmt.Errorf("exper: tree %d strategy %s: %w", i, names[si], err)
				return out
			}
			s.expected = exp
			for j := 0; j < t.N(); j++ {
				s.demand += float64(t.ClientSum(j))
			}

			for _, repair := range []bool{false, true} {
				if repair && !cfg.Repair {
					continue
				}
				sched, err := failure.Stochastic(failure.StochasticConfig{
					Nodes: t.N(), Horizon: cfg.Horizon,
					MTTF: cfg.MTTF, MTTR: cfg.MTTR, Seed: schedSeed,
				})
				if err != nil {
					out.err = err
					return out
				}
				modes := pl.Clone()
				if err := cfg.Power.AssignModes(t, modes); err != nil {
					out.err = fmt.Errorf("exper: tree %d strategy %s: %w", i, names[si], err)
					return out
				}
				sim, err := netsim.New(t, modes, cfg.Power)
				if err != nil {
					out.err = err
					return out
				}
				if err := sim.WithFailures(sched, netsim.FailureOptions{Repair: repair}); err != nil {
					out.err = err
					return out
				}
				sim.Step(cfg.Horizon)
				m := sim.Metrics()
				if repair {
					s.repairLost = m.UnservedDemand
					s.repairRepairs = m.RepairCount
				} else {
					s.lost = m.UnservedDemand
					s.issued = m.Issued
				}
			}
		}
		return out
	})

	res := &AvailabilityResult{Horizon: cfg.Horizon, UpProbability: upP}
	for si, name := range names {
		row := AvailabilityRow{Strategy: name}
		var expected, demand float64
		var lost, repairLost, issued, repairs int
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			s := o.strat[si]
			if !s.feasible {
				continue
			}
			row.Feasible++
			row.Servers += float64(s.servers)
			expected += s.expected
			demand += s.demand
			lost += s.lost
			repairLost += s.repairLost
			issued += s.issued
			repairs += s.repairRepairs
		}
		if row.Feasible > 0 {
			row.Servers /= float64(row.Feasible)
			row.Repairs = float64(repairs) / float64(row.Feasible)
		}
		if demand > 0 {
			row.ExpectedFrac = expected / demand
		}
		if issued > 0 {
			row.LostFrac = float64(lost) / float64(issued)
			row.Availability = 1 - row.LostFrac
			row.RepairLostFrac = float64(repairLost) / float64(issued)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
