package exper

import (
	"fmt"
	"runtime"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// ScaleConfig parameterises the scalability measurements reported in the
// last paragraph of the paper's Section 5.2: MinCost on a 500-node tree
// with 125 pre-existing servers (paper: 30 minutes), power without
// pre-existing servers on 300 nodes (paper: one hour), and power with 10
// pre-existing servers on 70 nodes (paper: around one hour).
type ScaleConfig struct {
	MinCostNodes, MinCostPre           int
	PowerNoPreNodes                    int
	PowerWithPreNodes, PowerWithPrePre int
	Seed                               uint64
}

// PaperScale returns the paper's instance sizes.
func PaperScale() ScaleConfig {
	return ScaleConfig{
		MinCostNodes: 500, MinCostPre: 125,
		PowerNoPreNodes:   300,
		PowerWithPreNodes: 70, PowerWithPrePre: 10,
		Seed: DefaultSeed,
	}
}

// QuickScale returns reduced sizes suitable for tests and CI.
func QuickScale() ScaleConfig {
	return ScaleConfig{
		MinCostNodes: 120, MinCostPre: 30,
		PowerNoPreNodes:   60,
		PowerWithPreNodes: 30, PowerWithPrePre: 4,
		Seed: DefaultSeed,
	}
}

// ScaleRow is one scalability measurement.
type ScaleRow struct {
	Name    string
	Nodes   int
	Pre     int
	Elapsed time.Duration
	Detail  string
}

// RunScale executes the three scalability cases sequentially (each case
// is a single solver invocation; parallelism would only blur the
// timings) and reports wall-clock durations.
func RunScale(cfg ScaleConfig) ([]ScaleRow, error) {
	var rows []ScaleRow
	// Both power cases thread one PowerDP (rebound via Reset between
	// the trees), so the second case starts from already-warm arenas —
	// the same cross-tree pooling the sweep runners use per worker.
	var dp *core.PowerDP
	var front []core.ParetoPoint

	{ // MinCost-WithPre at scale.
		src := rng.Derive(cfg.Seed, 101)
		t := tree.MustGenerate(tree.FatConfig(cfg.MinCostNodes), src)
		existing, err := tree.RandomReplicas(t, cfg.MinCostPre, 1, src)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := core.NewMinCostSolver(t).Solve(existing, DefaultW, Exp1Cost())
		if err != nil {
			return nil, fmt.Errorf("exper: scale MinCost: %w", err)
		}
		rows = append(rows, ScaleRow{
			Name: "MinCost-WithPre", Nodes: cfg.MinCostNodes, Pre: cfg.MinCostPre,
			Elapsed: time.Since(start),
			Detail:  fmt.Sprintf("servers=%d reused=%d cost=%.3f", res.Servers, res.Reused, res.Cost),
		})
	}

	{ // MinPower-BoundedCost-NoPre at scale, serial and parallel. The
		// serial and parallel runs share one arena-backed PowerDP, so
		// the second run also measures the warmed-scratch steady state.
		src := rng.Derive(cfg.Seed, 102)
		t := tree.MustGenerate(tree.PowerConfig(cfg.PowerNoPreNodes), src)
		dp = core.NewPowerDP(t)
		for _, workers := range []int{1, runtime.NumCPU()} {
			// Invalidate between worker runs: the incremental solver
			// would otherwise skip the whole re-solve of an identical
			// instance, and the row must time a full solve.
			dp.Invalidate()
			start := time.Now()
			solver, err := dp.Solve(core.PowerProblem{
				Power: Exp3Power(), Cost: Exp3Cost(), Workers: workers,
			})
			if err != nil {
				return nil, fmt.Errorf("exper: scale power NoPre: %w", err)
			}
			opt := solver.MinPower()
			front = solver.FrontInto(front)
			rows = append(rows, ScaleRow{
				Name: fmt.Sprintf("MinPower-BoundedCost-NoPre/w=%d", workers), Nodes: cfg.PowerNoPreNodes,
				Elapsed: time.Since(start),
				Detail:  fmt.Sprintf("minPower=%.1f servers=%d front=%d", opt.Power, opt.Placement.Count(), len(front)),
			})
		}
	}

	{ // MinPower-BoundedCost-WithPre at scale, serial and parallel.
		src := rng.Derive(cfg.Seed, 103)
		t := tree.MustGenerate(tree.PowerConfig(cfg.PowerWithPreNodes), src)
		existing, err := tree.RandomReplicas(t, cfg.PowerWithPrePre, 2, src)
		if err != nil {
			return nil, err
		}
		dp.Reset(t)
		for _, workers := range []int{1, runtime.NumCPU()} {
			dp.Invalidate() // time a full solve, not the skip path
			start := time.Now()
			solver, err := dp.Solve(core.PowerProblem{
				Existing: existing, Power: Exp3Power(), Cost: Exp3Cost(), Workers: workers,
			})
			if err != nil {
				return nil, fmt.Errorf("exper: scale power WithPre: %w", err)
			}
			opt := solver.MinPower()
			front = solver.FrontInto(front)
			rows = append(rows, ScaleRow{
				Name: fmt.Sprintf("MinPower-BoundedCost-WithPre/w=%d", workers), Nodes: cfg.PowerWithPreNodes, Pre: cfg.PowerWithPrePre,
				Elapsed: time.Since(start),
				Detail:  fmt.Sprintf("minPower=%.1f servers=%d front=%d", opt.Power, opt.Placement.Count(), len(front)),
			})
		}
	}

	return rows, nil
}
