package exper

import (
	"fmt"

	"replicatree/internal/greedy"
	"replicatree/internal/par"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// PolicyCompareConfig parameterises the cross-policy experiment: on the
// paper's fat or high trees, compare the number of replicas (and the
// power of the load-determined-mode solution) needed to serve every
// client under the Closest, Upwards and Multiple access policies of
// Benoit, Rehn & Robert (arXiv cs/0611034). Placements come from the
// policy-aware greedy (greedy.MinReplicasPolicy); every placement is
// validated under its policy before it is counted.
type PolicyCompareConfig struct {
	Trees int
	Gen   tree.GenConfig
	// Ws are the uniform server capacities swept for the replica-count
	// comparison.
	Ws []int
	// Power is the model used for the power comparison, which places
	// with capacity W_M and assigns load-determined modes per policy.
	Power   power.Model
	Seed    uint64
	Workers int
}

// DefaultPolicyCompare returns the default workload: 50 fat (or high)
// trees of 100 nodes as in Experiment 1, capacities swept around the
// paper's W=10, and the Experiment 3 power model.
func DefaultPolicyCompare(high bool) PolicyCompareConfig {
	gen := tree.FatConfig(100)
	if high {
		gen = tree.HighConfig(100)
	}
	return PolicyCompareConfig{
		Trees: 50,
		Gen:   gen,
		Ws:    []int{4, 6, 8, 10, 12, 14},
		Power: Exp3Power(),
		Seed:  DefaultSeed,
	}
}

// PolicyCountPoint aggregates the replica-count comparison at one
// capacity. Averages are over the trees where the policy admitted a
// valid placement at all (Feasible counts them); the relaxed policies
// can be feasible where Closest is not.
type PolicyCountPoint struct {
	W        int
	Servers  []float64 // avg replica count per policy, tree.Policies() order
	Feasible []int     // trees with a valid placement per policy
}

// PolicyPowerRow aggregates the power comparison for one policy.
type PolicyPowerRow struct {
	Policy     tree.Policy
	Feasible   int
	AvgServers float64
	AvgPower   float64
}

// PolicyCompareResult aggregates the cross-policy experiment.
type PolicyCompareResult struct {
	Policies []tree.Policy
	Counts   []PolicyCountPoint
	Power    []PolicyPowerRow
}

func (c PolicyCompareConfig) validate() error {
	if c.Trees <= 0 {
		return fmt.Errorf("exper: Trees = %d", c.Trees)
	}
	if len(c.Ws) == 0 {
		return fmt.Errorf("exper: no capacities to sweep")
	}
	for _, w := range c.Ws {
		if w <= 0 {
			return fmt.Errorf("exper: non-positive capacity %d", w)
		}
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	_, err := tree.Generate(c.Gen, rng.New(0))
	return err
}

// RunPolicyCompare executes the cross-policy experiment. Runs are
// parallel across trees and deterministic for a fixed seed.
func RunPolicyCompare(cfg PolicyCompareConfig) (*PolicyCompareResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	policies := tree.Policies()
	type treeOut struct {
		// servers[wi][pi] is the replica count at cfg.Ws[wi] under
		// policies[pi], or -1 when no valid placement was found.
		servers [][]int
		// power[pi] and pservers[pi] describe the W_M placement with
		// load-determined modes, or -1 when infeasible.
		power    []float64
		pservers []int
		err      error
	}
	outs := par.Map(cfg.Trees, cfg.Workers, func(i int) treeOut {
		src := rng.Derive(cfg.Seed, i)
		t := tree.MustGenerate(cfg.Gen, src)
		e := tree.NewEngine(t)
		out := treeOut{
			servers:  make([][]int, len(cfg.Ws)),
			power:    make([]float64, len(policies)),
			pservers: make([]int, len(policies)),
		}
		for wi, w := range cfg.Ws {
			out.servers[wi] = make([]int, len(policies))
			for pi, p := range policies {
				out.servers[wi][pi] = -1
				sol, err := greedy.MinReplicasPolicy(t, w, p)
				if err != nil {
					continue // infeasible at this capacity
				}
				if err := e.ValidateUniform(sol, p, w); err != nil {
					out.err = fmt.Errorf("exper: tree %d W=%d policy %v: invalid greedy placement: %w", i, w, p, err)
					return out
				}
				out.servers[wi][pi] = sol.Count()
			}
		}
		for pi, p := range policies {
			out.power[pi], out.pservers[pi] = -1, -1
			sol, err := greedy.MinReplicasPolicy(t, cfg.Power.MaxCap(), p)
			if err != nil {
				continue
			}
			if err := cfg.Power.AssignModesEngine(e, sol, p); err != nil {
				continue
			}
			out.power[pi] = cfg.Power.OfReplicas(sol)
			out.pservers[pi] = sol.Count()
		}
		return out
	})

	res := &PolicyCompareResult{Policies: policies}
	for wi, w := range cfg.Ws {
		pt := PolicyCountPoint{
			W:        w,
			Servers:  make([]float64, len(policies)),
			Feasible: make([]int, len(policies)),
		}
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			for pi := range policies {
				if s := o.servers[wi][pi]; s >= 0 {
					pt.Feasible[pi]++
					pt.Servers[pi] += float64(s)
				}
			}
		}
		for pi := range policies {
			if pt.Feasible[pi] > 0 {
				pt.Servers[pi] /= float64(pt.Feasible[pi])
			}
		}
		res.Counts = append(res.Counts, pt)
	}
	for pi, p := range policies {
		row := PolicyPowerRow{Policy: p}
		for _, o := range outs {
			if o.power[pi] >= 0 {
				row.Feasible++
				row.AvgPower += o.power[pi]
				row.AvgServers += float64(o.pservers[pi])
			}
		}
		if row.Feasible > 0 {
			row.AvgPower /= float64(row.Feasible)
			row.AvgServers /= float64(row.Feasible)
		}
		res.Power = append(res.Power, row)
	}
	return res, nil
}
