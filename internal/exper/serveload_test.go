package exper

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"replicatree/internal/serve"
)

// placementOf fetches an instance's published snapshot over HTTP.
func placementOf(tb testing.TB, ts *httptest.Server, id string) *serve.Snapshot {
	tb.Helper()
	var sn serve.Snapshot
	if err := getJSON(ts.Client(), ts.URL+"/instances/"+id+"/placement", &sn); err != nil {
		tb.Fatalf("placement: %v", err)
	}
	return &sn
}

// samePlacement compares the durable placement content of two
// snapshots: tick and everything the solvers derived, ignoring runtime
// stats (a restored session's initial solve is cold where the
// original's last tick was incremental).
func samePlacement(tb testing.TB, what string, a, b *serve.Snapshot) {
	tb.Helper()
	if a.Tick != b.Tick {
		tb.Fatalf("%s: ticks %d vs %d", what, a.Tick, b.Tick)
	}
	if !reflect.DeepEqual(a.Modes, b.Modes) {
		tb.Errorf("%s: placements differ", what)
	}
	if a.Servers != b.Servers || a.Reused != b.Reused || a.New != b.New || a.Cost != b.Cost {
		tb.Errorf("%s: summaries differ: (%d,%d,%d,%g) vs (%d,%d,%d,%g)", what,
			a.Servers, a.Reused, a.New, a.Cost, b.Servers, b.Reused, b.New, b.Cost)
	}
}

// TestServeLoadAcceptance is the in-process end-to-end acceptance run:
// a 10^4-node instance takes a 100-request concurrent drift burst that
// the daemon coalesces into ticks (p99 tick latency read back from
// /metrics), and a snapshot/restore cycle afterwards resumes with
// byte-identical placements — including after further identical drift.
func TestServeLoadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale load run")
	}
	dir := t.TempDir()
	srv1 := serve.NewServer(serve.ServerOptions{DataDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	defer ts1.Close()

	cfg := DefaultServeLoad(ts1.URL)
	cfg.Client = ts1.Client()
	res, err := RunServeLoad(cfg)
	if err != nil {
		t.Fatalf("RunServeLoad: %v", err)
	}
	t.Log(res.String())
	if res.Failed != 0 {
		t.Fatalf("%d of %d drift requests failed", res.Failed, res.Requests)
	}
	if res.Ticks < 1 || res.Ticks > res.Requests {
		t.Fatalf("burst produced %d ticks for %d requests", res.Ticks, res.Requests)
	}
	if res.FinalTick != uint64(res.Ticks) {
		t.Fatalf("final snapshot tick %d, ticks_total %d", res.FinalTick, res.Ticks)
	}
	if res.Coalesce < 1 {
		t.Fatalf("coalesce factor %.2f < 1", res.Coalesce)
	}
	if res.Servers <= 0 {
		t.Fatalf("no servers in the published placement")
	}
	if res.P99 <= 0 || res.P50 > res.P99 {
		t.Fatalf("tick latency quantiles p50=%g p99=%g", res.P50, res.P99)
	}

	// Kill/restart: snapshot, bring up a second daemon over the same
	// data directory, and require the restored instance to serve the
	// same placement at the same tick.
	if code, body, err := postJSON(ts1.Client(), ts1.URL+"/instances/load/snapshot", map[string]any{}); err != nil || code != http.StatusOK {
		t.Fatalf("snapshot: status %d, err %v: %s", code, err, body)
	}
	before := placementOf(t, ts1, "load")

	srv2 := serve.NewServer(serve.ServerOptions{DataDir: dir})
	if n, err := srv2.RestoreAll(); err != nil || n != 1 {
		t.Fatalf("RestoreAll: %d instances, err %v", n, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	after := placementOf(t, ts2, "load")
	samePlacement(t, "restored placement", before, after)

	// The restored daemon's future must match the original's: the same
	// deterministic drift lands on identical state.
	drift := map[string]any{"redraw": map[string]any{"prob": 0.05, "seed": 424242}}
	for _, ts := range []*httptest.Server{ts1, ts2} {
		if code, body, err := postJSON(ts.Client(), ts.URL+"/instances/load/drift", drift); err != nil || code != http.StatusOK {
			t.Fatalf("post-restore drift: status %d, err %v: %s", code, err, body)
		}
	}
	samePlacement(t, "post-restore drift", placementOf(t, ts1, "load"), placementOf(t, ts2, "load"))
}

// TestScrapeMetricsParsesDaemonOutput pins the scraper against the live
// metric rendering rather than a fixture, so format drift breaks the
// build here and not in CI's smoke script.
func TestScrapeMetricsParsesDaemonOutput(t *testing.T) {
	srv := serve.NewServer(serve.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	load := map[string]any{
		"id": "m", "w": 10,
		"cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen":  map[string]any{"nodes": 150, "shape": "fat", "seed": 5},
	}
	if code, body, err := postJSON(ts.Client(), ts.URL+"/instances", load); err != nil || code != http.StatusCreated {
		t.Fatalf("load: status %d, err %v: %s", code, err, body)
	}
	for i := 0; i < 4; i++ {
		drift := map[string]any{"redraw": map[string]any{"prob": 0.3, "seed": i}}
		if code, body, err := postJSON(ts.Client(), ts.URL+"/instances/m/drift", drift); err != nil || code != http.StatusOK {
			t.Fatalf("drift: status %d, err %v: %s", code, err, body)
		}
	}
	m, err := scrapeMetrics(ts.Client(), ts.URL, "m")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if m.ticks != 4 || m.samples != 4 {
		t.Fatalf("scraped ticks=%d samples=%d, want 4", m.ticks, m.samples)
	}
	if len(m.bounds) == 0 || m.cumul[len(m.cumul)-1] > m.samples {
		t.Fatalf("scraped %d buckets, last cumulative %d of %d", len(m.bounds), m.cumul[len(m.cumul)-1], m.samples)
	}
	if q := m.quantile(0.5); q <= 0 {
		t.Fatalf("p50 = %g", q)
	}

	// Unknown instance scrapes cleanly as zero.
	empty, err := scrapeMetrics(ts.Client(), ts.URL, "ghost")
	if err != nil {
		t.Fatalf("scrape ghost: %v", err)
	}
	if empty.ticks != 0 || empty.samples != 0 {
		t.Fatalf("ghost instance scraped ticks=%d samples=%d", empty.ticks, empty.samples)
	}
	if q := empty.quantile(0.99); q != 0 {
		t.Fatalf("ghost p99 = %g", q)
	}
}
