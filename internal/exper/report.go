package exper

import (
	"fmt"
	"io"
	"strings"

	"replicatree/internal/textplot"
)

// Report renders an Experiment 1 result as a table followed by the
// Figure 4/6 plot.
func (r *Exp1Result) Report(w io.Writer, title string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%6s %12s %12s %8s\n", "E", "DP reuse", "GR reuse", "gain")
	xs := make([]float64, len(r.Points))
	dp := make([]float64, len(r.Points))
	gr := make([]float64, len(r.Points))
	for i, p := range r.Points {
		fmt.Fprintf(&sb, "%6d %12.2f %12.2f %8.2f\n", p.E, p.DP, p.GR, p.DP-p.GR)
		xs[i], dp[i], gr[i] = float64(p.E), p.DP, p.GR
	}
	fmt.Fprintf(&sb, "avg gain (DP-GR) over all (tree,E): %.2f servers; max gain: %d; count mismatches: %d\n\n",
		r.AvgGain, r.MaxGain, r.Mismatches)
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	return textplot.Plot(w, "reused pre-existing servers vs E", xs,
		[]textplot.Series{{Name: "DP", Ys: dp}, {Name: "GR", Ys: gr}}, 60, 16)
}

// Report renders an Experiment 2 result: the cumulative-reuse table and
// plot (left figure) and the reuse-difference histogram (right figure).
func (r *Exp2Result) Report(w io.Writer, title string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%6s %14s %14s\n", "step", "cum DP reuse", "cum GR reuse")
	xs := make([]float64, len(r.CumDP))
	for s := range r.CumDP {
		fmt.Fprintf(&sb, "%6d %14.1f %14.1f\n", s+1, r.CumDP[s], r.CumGR[s])
		xs[s] = float64(s + 1)
	}
	fmt.Fprintf(&sb, "count mismatches: %d\n\n", r.Mismatches)
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	if err := textplot.Plot(w, "cumulative reused servers vs step", xs,
		[]textplot.Series{{Name: "DP", Ys: r.CumDP}, {Name: "GR", Ys: r.CumGR}}, 60, 14); err != nil {
		return err
	}
	sb.Reset()
	fmt.Fprintf(&sb, "\nhistogram of (reused in DP) - (reused in GR), avg steps per tree:\n")
	for _, bin := range r.Hist.Bins() {
		bar := strings.Repeat("#", int(r.Hist.Count(bin)*4+0.5))
		fmt.Fprintf(&sb, "%+4d %6.2f %s\n", bin, r.Hist.Count(bin), bar)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Report renders an Experiment 3 result as the Figure 8-11 table and
// plot.
func (r *Exp3Result) Report(w io.Writer, title string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%8s %12s %12s %8s %8s %10s\n",
		"bound", "DP 1/power", "GR 1/power", "DP#", "GR#", "GR excess")
	xs := make([]float64, len(r.Points))
	dp := make([]float64, len(r.Points))
	gr := make([]float64, len(r.Points))
	for i, p := range r.Points {
		fmt.Fprintf(&sb, "%8.1f %12.6f %12.6f %8d %8d %9.1f%%\n",
			p.Bound, p.DPInv, p.GRInv, p.DPFound, p.GRFound, p.GRExcessPct)
		xs[i], dp[i], gr[i] = p.Bound, p.DPInv, p.GRInv
	}
	fmt.Fprintf(&sb, "avg Pareto front per tree: %.1f points (one DP run answers every bound)\n", r.AvgFront)
	sb.WriteByte('\n')
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	return textplot.Plot(w, "average inverse power vs cost bound", xs,
		[]textplot.Series{{Name: "DP", Ys: dp}, {Name: "GR", Ys: gr}}, 60, 16)
}

// Report renders the scalability rows.
func ReportScale(w io.Writer, rows []ScaleRow) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scalability (single solver invocations)\n")
	fmt.Fprintf(&sb, "%-30s %6s %5s %12s  %s\n", "case", "nodes", "pre", "elapsed", "detail")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-30s %6d %5d %12s  %s\n", r.Name, r.Nodes, r.Pre, r.Elapsed.Round(1e6), r.Detail)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Report renders a cross-policy comparison: the replica-count table and
// plot over the capacity sweep, followed by the power table.
func (r *PolicyCompareResult) Report(w io.Writer, title string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%6s", "W")
	for _, p := range r.Policies {
		fmt.Fprintf(&sb, " %10s %5s", p, "ok")
	}
	sb.WriteByte('\n')
	var xs []float64
	series := make([]textplot.Series, len(r.Policies))
	for pi, p := range r.Policies {
		series[pi] = textplot.Series{Name: p.String()}
	}
	for _, pt := range r.Counts {
		fmt.Fprintf(&sb, "%6d", pt.W)
		allFeasible := true
		for pi := range r.Policies {
			fmt.Fprintf(&sb, " %10.2f %5d", pt.Servers[pi], pt.Feasible[pi])
			if pt.Feasible[pi] == 0 {
				allFeasible = false
			}
		}
		sb.WriteByte('\n')
		// A zero average means "no feasible tree", not "zero replicas";
		// plotting it would invert the story, so the plot keeps only
		// capacities every policy can serve.
		if allFeasible {
			xs = append(xs, float64(pt.W))
			for pi := range r.Policies {
				series[pi].Ys = append(series[pi].Ys, pt.Servers[pi])
			}
		}
	}
	sb.WriteByte('\n')
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	if len(xs) > 0 {
		if err := textplot.Plot(w, "average replicas vs capacity W (capacities feasible under every policy)",
			xs, series, 60, 16); err != nil {
			return err
		}
	}
	sb.Reset()
	fmt.Fprintf(&sb, "\npower at load-determined modes (capacity W_M placements):\n")
	fmt.Fprintf(&sb, "%10s %8s %12s %12s\n", "policy", "ok", "avg servers", "avg power")
	for _, row := range r.Power {
		fmt.Fprintf(&sb, "%10s %8d %12.2f %12.1f\n", row.Policy, row.Feasible, row.AvgServers, row.AvgPower)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Report renders the availability experiment: one row per strategy,
// comparing placement size against analytic and simulated demand loss,
// with and without online repair.
func (r *AvailabilityResult) Report(w io.Writer, title string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "per-node stationary availability %.3f, horizon %d steps\n", r.UpProbability, r.Horizon)
	fmt.Fprintf(&sb, "%-12s %4s %9s %10s %10s %12s %10s %9s\n",
		"strategy", "ok", "servers", "E[lost]", "lost", "availability", "lost+fix", "repairs")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %4d %9.2f %9.2f%% %9.2f%% %12.4f %9.2f%% %9.1f\n",
			row.Strategy, row.Feasible, row.Servers,
			100*row.ExpectedFrac, 100*row.LostFrac, row.Availability,
			100*row.RepairLostFrac, row.Repairs)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
