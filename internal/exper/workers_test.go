package exper

import (
	"reflect"
	"testing"

	"replicatree/internal/tree"
)

// The sweep runners fan (tree, swept value) cells across goroutines
// with one arena-backed solver per worker. These tests run the fanned
// paths with Workers > 1 — exercised under the race detector by the CI
// short suite — and check they reproduce the sequential results bit for
// bit.

func TestRunExp1WorkersDeterministic(t *testing.T) {
	cfg := DefaultExp1(false, 25)
	cfg.Trees = 6
	cfg.Gen = tree.FatConfig(40)
	cfg.EValues = []int{0, 10, 20}

	serial := cfg
	serial.Workers = 1
	want, err := RunExp1(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := cfg
	parallel.Workers = 4
	got, err := RunExp1(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Workers=4 result differs from Workers=1:\n%+v\n%+v", got, want)
	}
}

func TestRunExp2WorkersDeterministic(t *testing.T) {
	cfg := DefaultExp2(false)
	cfg.Trees = 4
	cfg.Gen = tree.FatConfig(40)
	cfg.Steps = 4

	serial := cfg
	serial.Workers = 1
	want, err := RunExp2(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := cfg
	parallel.Workers = 4
	got, err := RunExp2(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Workers=4 result differs from Workers=1:\n%+v\n%+v", got, want)
	}
}

func TestRunExp3WorkersDeterministic(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Trees = 4
	cfg.Gen = tree.PowerConfig(25)
	cfg.Bounds = []float64{20, 30, 40}

	serial := cfg
	serial.Workers = 1
	want, err := RunExp3(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := cfg
	parallel.Workers = 4
	got, err := RunExp3(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Workers=4 result differs from Workers=1:\n%+v\n%+v", got, want)
	}
}

func TestRunQoSCompareWorkersDeterministic(t *testing.T) {
	cfg := DefaultQoSCompare(false)
	cfg.Trees = 6
	cfg.Gen = tree.FatConfig(40)
	cfg.QoS = []int{0, 4, 2}

	serial := cfg
	serial.Workers = 1
	want, err := RunQoSCompare(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := cfg
	parallel.Workers = 4
	got, err := RunQoSCompare(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Workers=4 result differs from Workers=1:\n%+v\n%+v", got, want)
	}
}
