package exper

import (
	"fmt"
	"os"
	"testing"

	"replicatree/internal/serve"
)

// TestMain doubles this test binary as the chaos daemon: when re-execed
// with the flag variable set, it runs serve.Run with the remaining argv
// instead of the test suite — so RunCrashChaos kills a real process with
// real fsyncs, not a goroutine.
func TestMain(m *testing.M) {
	if os.Getenv("REPLICATREE_CHAOS_DAEMON") == "1" {
		if err := serve.Run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestCrashChaos is the acceptance campaign: 25 seeded SIGKILL points
// inside a 100-drift burst on a chained power instance, each required
// to recover byte-identically (Pareto front included) to an
// uninterrupted twin and to finish the burst in lockstep with it.
func TestCrashChaos(t *testing.T) {
	cfg := DefaultCrashChaos([]string{os.Args[0]}, t.TempDir())
	cfg.Env = []string{"REPLICATREE_CHAOS_DAEMON=1"}
	cfg.Stdout = testLogWriter{t}
	if testing.Short() {
		cfg.Trials = 4
	}

	res, err := RunCrashChaos(cfg)
	if err != nil {
		t.Fatalf("RunCrashChaos: %v", err)
	}
	t.Log(res.String())
	if res.Trials != cfg.Trials || res.Durable+res.LostTail != cfg.Trials {
		t.Fatalf("campaign accounting off: %+v", res)
	}
}

// TestCrashChaosValidation pins the config guardrails.
func TestCrashChaosValidation(t *testing.T) {
	if _, err := RunCrashChaos(CrashChaosConfig{WorkDir: t.TempDir()}); err == nil {
		t.Fatal("no daemon command accepted")
	}
	if _, err := RunCrashChaos(CrashChaosConfig{Daemon: []string{"x"}}); err == nil {
		t.Fatal("no work directory accepted")
	}
}

// testLogWriter adapts t.Log to io.Writer for harness progress lines.
type testLogWriter struct{ tb testing.TB }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.tb.Log(string(p))
	return len(p), nil
}
