package exper

import (
	"bytes"
	"strings"
	"testing"

	"replicatree/internal/tree"
)

// smallExp1 keeps Experiment 1 fast for tests.
func smallExp1() Exp1Config {
	cfg := DefaultExp1(false, 10)
	cfg.Trees = 12
	cfg.Gen = tree.FatConfig(40)
	cfg.EValues = []int{0, 10, 20, 40}
	return cfg
}

func TestRunExp1Shape(t *testing.T) {
	cfg := smallExp1()
	res, err := RunExp1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.EValues) {
		t.Fatalf("%d points, want %d", len(res.Points), len(cfg.EValues))
	}
	// The DP reuses at least as many servers as the oblivious greedy,
	// on average, at every E (its cost model maximises reuse).
	for _, p := range res.Points {
		if p.DP < p.GR-1e-9 {
			t.Fatalf("E=%d: DP %.2f < GR %.2f", p.E, p.DP, p.GR)
		}
	}
	// With E=0 both reuse nothing.
	if res.Points[0].DP != 0 || res.Points[0].GR != 0 {
		t.Fatalf("E=0 reuse: %+v", res.Points[0])
	}
	// With E=N every chosen server is a reuse for both algorithms, so
	// the curves meet (the paper's extreme case).
	last := res.Points[len(res.Points)-1]
	if last.DP != last.GR {
		t.Fatalf("E=N: DP %.2f != GR %.2f", last.DP, last.GR)
	}
	if res.AvgGain < 0 {
		t.Fatalf("negative average gain %v", res.AvgGain)
	}
	if res.Mismatches != 0 {
		t.Fatalf("server-count mismatches: %d", res.Mismatches)
	}
}

func TestRunExp1Deterministic(t *testing.T) {
	cfg := smallExp1()
	cfg.Trees = 6
	a, err := RunExp1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunExp1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across worker counts", i)
		}
	}
}

func TestRunExp1Validation(t *testing.T) {
	cfg := smallExp1()
	cfg.Trees = 0
	if _, err := RunExp1(cfg); err == nil {
		t.Error("Trees=0 accepted")
	}
	cfg = smallExp1()
	cfg.EValues = []int{999}
	if _, err := RunExp1(cfg); err == nil {
		t.Error("E above N accepted")
	}
	cfg = smallExp1()
	cfg.EValues = nil
	if _, err := RunExp1(cfg); err == nil {
		t.Error("empty EValues accepted")
	}
	cfg = smallExp1()
	cfg.Gen.MinChildren = 0
	if _, err := RunExp1(cfg); err == nil {
		t.Error("bad generator config accepted")
	}
}

func TestRunExp2Shape(t *testing.T) {
	cfg := DefaultExp2(false)
	cfg.Trees = 8
	cfg.Gen = tree.FatConfig(30)
	cfg.Steps = 6
	res, err := RunExp2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CumDP) != cfg.Steps || len(res.CumGR) != cfg.Steps {
		t.Fatalf("series lengths %d/%d", len(res.CumDP), len(res.CumGR))
	}
	// Cumulative series are non-decreasing and DP dominates GR.
	for s := 1; s < cfg.Steps; s++ {
		if res.CumDP[s] < res.CumDP[s-1] || res.CumGR[s] < res.CumGR[s-1] {
			t.Fatalf("cumulative series decreased at step %d", s)
		}
	}
	final := cfg.Steps - 1
	if res.CumDP[final] < res.CumGR[final] {
		t.Fatalf("DP cumulative reuse %.1f below GR %.1f", res.CumDP[final], res.CumGR[final])
	}
	// Step 1 has no pre-existing servers: zero reuse for both.
	if res.CumDP[0] != 0 || res.CumGR[0] != 0 {
		t.Fatalf("step 1 reuse: %v / %v", res.CumDP[0], res.CumGR[0])
	}
	if res.Mismatches != 0 {
		t.Fatalf("mismatches: %d", res.Mismatches)
	}
	// Histogram mass: one entry per (tree, step), scaled by 1/trees.
	mass := 0.0
	for _, b := range res.Hist.Bins() {
		mass += res.Hist.Count(b)
	}
	if mass < float64(cfg.Steps)-1e-6 || mass > float64(cfg.Steps)+1e-6 {
		t.Fatalf("histogram mass %.2f, want %d", mass, cfg.Steps)
	}
}

func TestRunExp3Shape(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Trees = 6
	cfg.Gen = tree.PowerConfig(16)
	cfg.Pre = 2
	cfg.Bounds = seqFloats(2, 14, 2)
	res, err := RunExp3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.Bounds) {
		t.Fatalf("%d points, want %d", len(res.Points), len(cfg.Bounds))
	}
	prevDP := -1.0
	for _, p := range res.Points {
		// The optimum dominates the greedy sweep everywhere.
		if p.DPInv < p.GRInv-1e-12 {
			t.Fatalf("bound %v: DP %.6f < GR %.6f", p.Bound, p.DPInv, p.GRInv)
		}
		// More budget never hurts.
		if p.DPInv < prevDP-1e-12 {
			t.Fatalf("bound %v: DP inverse power decreased", p.Bound)
		}
		prevDP = p.DPInv
		if p.DPFound < p.GRFound {
			t.Fatalf("bound %v: DP found %d < GR found %d", p.Bound, p.DPFound, p.GRFound)
		}
	}
	// At a generous bound every tree is solved by both algorithms.
	last := res.Points[len(res.Points)-1]
	if last.DPFound != cfg.Trees {
		t.Fatalf("DP failed on %d trees at the largest bound", cfg.Trees-last.DPFound)
	}
}

func TestRunExp3NoPreMatchesFig9Config(t *testing.T) {
	cfg := Exp3Fig9()
	if cfg.Pre != 0 {
		t.Fatalf("Fig9 Pre = %d", cfg.Pre)
	}
	cfg.Trees = 3
	cfg.Gen = tree.PowerConfig(12)
	cfg.Bounds = []float64{6, 20}
	if _, err := RunExp3(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExp3ConfigVariants(t *testing.T) {
	if c := Exp3Fig10(); c.Gen.MaxChildren != 4 || c.Bounds[0] != 10 {
		t.Fatalf("Fig10 config: %+v", c)
	}
	if c := Exp3Fig11(); c.Cost.Create[0] != 1 || c.Bounds[0] != 30 {
		t.Fatalf("Fig11 config: %+v", c)
	}
	if c := DefaultExp1(true, 5); c.Gen.MaxChildren != 4 {
		t.Fatalf("high Exp1 config: %+v", c)
	}
	if c := DefaultExp2(true); c.Gen.MaxChildren != 4 {
		t.Fatalf("high Exp2 config: %+v", c)
	}
}

func TestRunExp3Validation(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Pre = 999
	if _, err := RunExp3(cfg); err == nil {
		t.Error("Pre above N accepted")
	}
	cfg = DefaultExp3()
	cfg.Bounds = nil
	if _, err := RunExp3(cfg); err == nil {
		t.Error("no bounds accepted")
	}
	cfg = DefaultExp3()
	cfg.Cost = Fig11Cost()
	cfg.Cost.Create = cfg.Cost.Create[:1]
	if _, err := RunExp3(cfg); err == nil {
		t.Error("inconsistent cost model accepted")
	}
}

func TestRunScaleQuick(t *testing.T) {
	rows, err := RunScale(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed <= 0 {
			t.Fatalf("row %q has no timing", r.Name)
		}
		if r.Detail == "" {
			t.Fatalf("row %q has no detail", r.Name)
		}
	}
}

func TestReports(t *testing.T) {
	var buf bytes.Buffer

	e1 := smallExp1()
	e1.Trees = 4
	r1, err := RunExp1(e1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Report(&buf, "fig4"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DP reuse") || !strings.Contains(buf.String(), "avg gain") {
		t.Fatalf("exp1 report incomplete:\n%s", buf.String())
	}

	buf.Reset()
	e2 := DefaultExp2(false)
	e2.Trees = 3
	e2.Gen = tree.FatConfig(25)
	e2.Steps = 4
	r2, err := RunExp2(e2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Report(&buf, "fig5"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "histogram") {
		t.Fatalf("exp2 report incomplete:\n%s", buf.String())
	}

	buf.Reset()
	e3 := DefaultExp3()
	e3.Trees = 3
	e3.Gen = tree.PowerConfig(12)
	e3.Pre = 1
	e3.Bounds = []float64{5, 10, 20}
	r3, err := RunExp3(e3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Report(&buf, "fig8"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GR excess") {
		t.Fatalf("exp3 report incomplete:\n%s", buf.String())
	}

	buf.Reset()
	rows, err := RunScale(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if err := ReportScale(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MinPower-BoundedCost-WithPre") {
		t.Fatalf("scale report incomplete:\n%s", buf.String())
	}
}
