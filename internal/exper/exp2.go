package exper

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/par"
	"replicatree/internal/rng"
	"replicatree/internal/stats"
	"replicatree/internal/tree"
)

// Exp2Config parameterises the paper's Experiment 2 (Figures 5 and 7):
// a dynamic setting with consecutive update steps. At each step the
// per-client request counts are redrawn and both algorithms recompute a
// placement, each taking its own previous placement as the pre-existing
// servers.
type Exp2Config struct {
	Trees int
	Gen   tree.GenConfig
	W     int
	Steps int
	Cost  cost.Simple
	// Drift, when in (0, 1), redraws each client's demand with that
	// probability per step instead of the paper's full redraw (0 or 1
	// keeps the paper's Experiment 2 behaviour). Smaller drifts leave
	// most subtree tables valid, so the incremental solver recomputes
	// only the dirty ancestor chains of the changed clients.
	Drift   float64
	Seed    uint64
	Workers int
}

// DefaultExp2 returns the paper's Figure 5 settings (200 fat trees of
// 100 nodes, 20 steps). high switches to the Figure 7 high trees.
func DefaultExp2(high bool) Exp2Config {
	gen := tree.FatConfig(100)
	if high {
		gen = tree.HighConfig(100)
	}
	return Exp2Config{
		Trees: 200,
		Gen:   gen,
		W:     DefaultW,
		Steps: 20,
		Cost:  Exp1Cost(),
		Seed:  DefaultSeed,
	}
}

// Exp2Result aggregates Experiment 2. CumDP/CumGR are the left plots of
// Figures 5 and 7: the cumulative number of reused servers after each
// step, averaged over trees. Hist is the right plot: for each value of
// (DP reuse − GR reuse), the average number of steps per tree at which
// it occurred.
type Exp2Result struct {
	CumDP, CumGR []float64
	Hist         *stats.Histogram
	// Mismatches counts steps where the two algorithms used different
	// numbers of servers (both should be minimal).
	Mismatches int
}

func (c Exp2Config) validate() error {
	if c.Trees <= 0 || c.Steps <= 0 {
		return fmt.Errorf("exper: Trees = %d, Steps = %d", c.Trees, c.Steps)
	}
	if c.Drift < 0 || c.Drift > 1 {
		return fmt.Errorf("exper: Drift = %v out of [0,1]", c.Drift)
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	_, err := tree.Generate(c.Gen, rng.New(0))
	return err
}

// RunExp2 executes Experiment 2.
func RunExp2(cfg Exp2Config) (*Exp2Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	type treeOut struct {
		dp, gr     []int // per-step reuse
		mismatches int
		err        error
	}
	// One arena-backed solver per worker, rebound to each tree via
	// Reset. Each step mutates demands in place (through the
	// generation-stamping mutators) and re-solves incrementally: only
	// the dirty ancestor chains of changed clients and of placement
	// diffs are recomputed. The previous step's placement and the next
	// one double-buffer so the DP never writes the set it is reading.
	type state struct {
		solver             *core.MinCostSolver
		exDP, nextDP, exGR *tree.Replicas
	}
	outs := par.MapPooled(cfg.Trees, cfg.Workers, func() *state { return new(state) }, func(st *state, i int) treeOut {
		src := rng.Derive(cfg.Seed, i)
		t := tree.MustGenerate(cfg.Gen, src)
		if st.solver == nil {
			st.solver = core.NewMinCostSolver(t)
		} else {
			st.solver.Reset(t)
		}
		if st.exDP == nil || st.exDP.N() != t.N() {
			st.exDP = tree.ReplicasOf(t)
			st.nextDP = tree.ReplicasOf(t)
			st.exGR = tree.ReplicasOf(t)
		} else {
			st.exDP.Reset()
			st.nextDP.Reset()
			st.exGR.Reset()
		}
		solver := st.solver
		exDP := st.exDP // no pre-existing servers initially
		nextDP := st.nextDP
		exGR := st.exGR
		out := treeOut{dp: make([]int, cfg.Steps), gr: make([]int, cfg.Steps)}
		for s := 0; s < cfg.Steps; s++ {
			if cfg.Drift > 0 && cfg.Drift < 1 {
				tree.DriftRequests(t, cfg.Gen, cfg.Drift, src)
			} else {
				tree.RedrawRequests(t, cfg.Gen, src)
			}
			res, err := solver.SolveInto(exDP, cfg.W, cfg.Cost, nextDP)
			if err != nil {
				return treeOut{err: fmt.Errorf("exper: tree %d step %d: %w", i, s, err)}
			}
			g, err := greedy.MinReplicas(t, cfg.W)
			if err != nil {
				return treeOut{err: fmt.Errorf("exper: tree %d step %d: %w", i, s, err)}
			}
			out.dp[s] = res.Reused
			out.gr[s] = g.Reused(exGR)
			if res.Servers != g.Count() {
				out.mismatches++
			}
			exDP, nextDP = res.Placement, exDP
			exGR = g
		}
		return out
	})

	res := &Exp2Result{
		CumDP: make([]float64, cfg.Steps),
		CumGR: make([]float64, cfg.Steps),
		Hist:  stats.NewHistogram(),
	}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		cumDP, cumGR := 0, 0
		for s := 0; s < cfg.Steps; s++ {
			cumDP += o.dp[s]
			cumGR += o.gr[s]
			res.CumDP[s] += float64(cumDP)
			res.CumGR[s] += float64(cumGR)
			res.Hist.Add(o.dp[s] - o.gr[s])
		}
		res.Mismatches += o.mismatches
	}
	for s := 0; s < cfg.Steps; s++ {
		res.CumDP[s] /= float64(cfg.Trees)
		res.CumGR[s] /= float64(cfg.Trees)
	}
	// Average occurrences per tree, as in the paper's right plots.
	res.Hist.Scale(1 / float64(cfg.Trees))
	return res, nil
}
