package exper

import (
	"testing"

	"replicatree/internal/tree"
)

func TestPaperScaleSizes(t *testing.T) {
	cfg := PaperScale()
	if cfg.MinCostNodes != 500 || cfg.MinCostPre != 125 {
		t.Fatalf("MinCost case: %+v", cfg)
	}
	if cfg.PowerNoPreNodes != 300 {
		t.Fatalf("power NoPre case: %+v", cfg)
	}
	if cfg.PowerWithPreNodes != 70 || cfg.PowerWithPrePre != 10 {
		t.Fatalf("power WithPre case: %+v", cfg)
	}
}

func TestExpensiveIntervalsRegime(t *testing.T) {
	cheap, exp := DefaultIntervals(), ExpensiveIntervals()
	if exp.Cost.Create <= cheap.Cost.Create {
		t.Fatalf("expensive regime not more expensive: %v vs %v", exp.Cost, cheap.Cost)
	}
	if exp.DriftProb != cheap.DriftProb || exp.Horizon != cheap.Horizon {
		t.Fatal("regimes differ in more than prices")
	}
}

func TestExp2Validation(t *testing.T) {
	cfg := DefaultExp2(false)
	cfg.Steps = 0
	if _, err := RunExp2(cfg); err == nil {
		t.Error("Steps=0 accepted")
	}
	cfg = DefaultExp2(false)
	cfg.Cost.Create = -1
	if _, err := RunExp2(cfg); err == nil {
		t.Error("negative price accepted")
	}
	cfg = DefaultExp2(false)
	cfg.Gen.MinChildren = 0
	if _, err := RunExp2(cfg); err == nil {
		t.Error("bad generator accepted")
	}
}

func TestExp3ValidationMore(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Trees = 0
	if _, err := RunExp3(cfg); err == nil {
		t.Error("Trees=0 accepted")
	}
	cfg = DefaultExp3()
	cfg.Power.Caps = nil
	if _, err := RunExp3(cfg); err == nil {
		t.Error("invalid power model accepted")
	}
	cfg = DefaultExp3()
	cfg.Gen.ReqMax = -1
	if _, err := RunExp3(cfg); err == nil {
		t.Error("bad generator accepted")
	}
}

func TestPaperConstants(t *testing.T) {
	pm := Exp3Power()
	if pm.M() != 2 || pm.Cap(1) != 5 || pm.Cap(2) != 10 {
		t.Fatalf("Exp3Power: %+v", pm)
	}
	if pm.Static != 12.5 || pm.Alpha != 3 {
		t.Fatalf("Exp3Power constants: %+v", pm)
	}
	cm := Exp3Cost()
	if cm.Create[0] != 0.1 || cm.Delete[1] != 0.01 || cm.Change[0][1] != 0.001 {
		t.Fatalf("Exp3Cost: %+v", cm)
	}
	if !Exp1Cost().PrefersFewServers() {
		t.Fatal("Exp1Cost must satisfy create + 2·delete < 1")
	}
	if c := HighPowerConfig(50); c.MaxChildren != 4 || c.ReqMax != 5 {
		t.Fatalf("HighPowerConfig: %+v", c)
	}
	if got := seqInts(2, 8, 3); len(got) != 3 || got[2] != 8 {
		t.Fatalf("seqInts: %v", got)
	}
	if got := seqFloats(1, 2, 0.5); len(got) != 3 {
		t.Fatalf("seqFloats: %v", got)
	}
}

func TestGenConfigsMatchPaper(t *testing.T) {
	fat := tree.FatConfig(100)
	if fat.MinChildren != 6 || fat.MaxChildren != 9 || fat.ClientProb != 0.5 || fat.ReqMax != 6 {
		t.Fatalf("FatConfig: %+v", fat)
	}
	high := tree.HighConfig(100)
	if high.MinChildren != 2 || high.MaxChildren != 4 {
		t.Fatalf("HighConfig: %+v", high)
	}
	pw := tree.PowerConfig(50)
	if pw.ReqMax != 5 || pw.Nodes != 50 {
		t.Fatalf("PowerConfig: %+v", pw)
	}
}
