package exper

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/par"
	"replicatree/internal/rng"
	"replicatree/internal/stats"
	"replicatree/internal/tree"
)

// Exp1Config parameterises the paper's Experiment 1 (Figures 4 and 6):
// random trees receive E random pre-existing servers, and the number of
// servers reused by the optimal DP is compared with the pre-existing
// servers that the oblivious greedy happens to hit.
type Exp1Config struct {
	Trees   int
	Gen     tree.GenConfig
	W       int
	EValues []int
	Cost    cost.Simple
	Seed    uint64
	Workers int
}

// DefaultExp1 returns the paper's Figure 4 settings (200 fat trees of
// 100 nodes, E = 0..100) sampling E every eStep values. high switches to
// the Figure 6 high trees.
func DefaultExp1(high bool, eStep int) Exp1Config {
	gen := tree.FatConfig(100)
	if high {
		gen = tree.HighConfig(100)
	}
	return Exp1Config{
		Trees:   200,
		Gen:     gen,
		W:       DefaultW,
		EValues: seqInts(0, gen.Nodes, eStep),
		Cost:    Exp1Cost(),
		Seed:    DefaultSeed,
	}
}

// Exp1Point is one x position of Figure 4/6: the average number of
// reused pre-existing servers for both algorithms at a given E.
type Exp1Point struct {
	E  int
	DP float64
	GR float64
}

// Exp1Result aggregates Experiment 1.
type Exp1Result struct {
	Points []Exp1Point
	// AvgGain and MaxGain are the paper's summary numbers: the mean
	// and maximum over every (tree, E) pair of (DP reuse − GR reuse).
	AvgGain float64
	MaxGain int
	// Mismatches counts (tree, E) pairs where the DP's server count
	// differed from the greedy's; with the experiment's cost model
	// both must be minimal, so this should be zero.
	Mismatches int
}

func (c Exp1Config) validate() error {
	if c.Trees <= 0 {
		return fmt.Errorf("exper: Trees = %d", c.Trees)
	}
	if len(c.EValues) == 0 {
		return fmt.Errorf("exper: no E values")
	}
	for _, e := range c.EValues {
		if e < 0 || e > c.Gen.Nodes {
			return fmt.Errorf("exper: E = %d out of [0,%d]", e, c.Gen.Nodes)
		}
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	_, err := tree.Generate(c.Gen, rng.New(0))
	return err
}

// RunExp1 executes Experiment 1.
func RunExp1(cfg Exp1Config) (*Exp1Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	type treeOut struct {
		dp, gr     []int
		mismatches int
		err        error
	}
	// One arena-backed solver per worker, rebound to each drawn tree
	// via Reset: the whole sweep shares one warmed set of scratch and
	// retained tables per worker instead of re-growing them per tree.
	type state struct {
		solver *core.MinCostSolver
		dst    *tree.Replicas
	}
	outs := par.MapPooled(cfg.Trees, cfg.Workers, func() *state { return new(state) }, func(st *state, i int) treeOut {
		src := rng.Derive(cfg.Seed, i)
		t := tree.MustGenerate(cfg.Gen, src)
		g, err := greedy.MinReplicas(t, cfg.W)
		if err != nil {
			return treeOut{err: fmt.Errorf("exper: tree %d: %w", i, err)}
		}
		if st.solver == nil {
			st.solver = core.NewMinCostSolver(t)
		} else {
			st.solver.Reset(t)
		}
		if st.dst == nil || st.dst.N() != t.N() {
			st.dst = tree.ReplicasOf(t)
		}
		solver, dst := st.solver, st.dst
		out := treeOut{dp: make([]int, len(cfg.EValues)), gr: make([]int, len(cfg.EValues))}
		for ei, E := range cfg.EValues {
			existing, err := tree.RandomReplicas(t, E, 1, src)
			if err != nil {
				return treeOut{err: fmt.Errorf("exper: tree %d E=%d: %w", i, E, err)}
			}
			res, err := solver.SolveInto(existing, cfg.W, cfg.Cost, dst)
			if err != nil {
				return treeOut{err: fmt.Errorf("exper: tree %d E=%d: %w", i, E, err)}
			}
			out.dp[ei] = res.Reused
			out.gr[ei] = g.Reused(existing)
			if res.Servers != g.Count() {
				out.mismatches++
			}
		}
		return out
	})

	res := &Exp1Result{Points: make([]Exp1Point, len(cfg.EValues))}
	var gains []float64
	for ei, E := range cfg.EValues {
		var dp, gr []float64
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			dp = append(dp, float64(o.dp[ei]))
			gr = append(gr, float64(o.gr[ei]))
			gain := o.dp[ei] - o.gr[ei]
			gains = append(gains, float64(gain))
			if gain > res.MaxGain {
				res.MaxGain = gain
			}
		}
		res.Points[ei] = Exp1Point{E: E, DP: stats.Mean(dp), GR: stats.Mean(gr)}
	}
	for _, o := range outs {
		res.Mismatches += o.mismatches
	}
	res.AvgGain = stats.Mean(gains)
	return res, nil
}
