package exper

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/greedy"
	"replicatree/internal/par"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/stats"
	"replicatree/internal/tree"
)

// Exp3Config parameterises the paper's Experiment 3 (Figures 8-11):
// minimise power under a cost bound, optimal DP versus the greedy
// capacity sweep, plotted as average inverse power against the bound.
type Exp3Config struct {
	Trees   int
	Gen     tree.GenConfig
	Pre     int // number of pre-existing servers per tree
	Power   power.Model
	Cost    cost.Modal
	Bounds  []float64
	Seed    uint64
	Workers int
}

// DefaultExp3 returns the paper's Figure 8 settings: 100 fat trees of
// 50 nodes, 5 pre-existing servers, modes {5,10}, cost bounds 15..45.
// Figure 9 sets Pre = 0; Figure 10 uses high trees with bounds 10..35;
// Figure 11 uses Fig11Cost with bounds 30..90.
func DefaultExp3() Exp3Config {
	return Exp3Config{
		Trees:  100,
		Gen:    tree.PowerConfig(50),
		Pre:    5,
		Power:  Exp3Power(),
		Cost:   Exp3Cost(),
		Bounds: seqFloats(15, 45, 1),
		Seed:   DefaultSeed,
	}
}

// Exp3Fig9 is Figure 9: Experiment 3 without pre-existing replicas.
func Exp3Fig9() Exp3Config {
	c := DefaultExp3()
	c.Pre = 0
	return c
}

// Exp3Fig10 is Figure 10: Experiment 3 on high trees.
func Exp3Fig10() Exp3Config {
	c := DefaultExp3()
	c.Gen = HighPowerConfig(50)
	c.Bounds = seqFloats(10, 35, 1)
	return c
}

// Exp3Fig11 is Figure 11: Experiment 3 with expensive creation and
// deletion (createᵢ = deleteᵢ = 1, changedᵢᵢ' = 0.1).
func Exp3Fig11() Exp3Config {
	c := DefaultExp3()
	c.Cost = Fig11Cost()
	c.Bounds = seqFloats(30, 90, 2)
	return c
}

// Exp3Point is one x position of Figures 8-11.
type Exp3Point struct {
	Bound float64
	// DPInv and GRInv are the paper's y values: the inverse of the
	// power of the solution found under the bound, 0 when no solution
	// exists, averaged over trees.
	DPInv, GRInv float64
	// DPFound/GRFound count trees where each algorithm found a
	// solution within the bound.
	DPFound, GRFound int
	// GRExcessPct is the mean percentage of extra power consumed by
	// the greedy solution relative to the optimum, over trees where
	// both found a solution (the paper's "GR consumes 30% more").
	GRExcessPct float64
}

// Exp3Result aggregates Experiment 3.
type Exp3Result struct {
	Points []Exp3Point
	// AvgFront is the mean Pareto-front size per tree — every cost
	// bound of a tree is answered from this one front.
	AvgFront float64
}

func (c Exp3Config) validate() error {
	if c.Trees <= 0 {
		return fmt.Errorf("exper: Trees = %d", c.Trees)
	}
	if c.Pre < 0 || c.Pre > c.Gen.Nodes {
		return fmt.Errorf("exper: Pre = %d out of [0,%d]", c.Pre, c.Gen.Nodes)
	}
	if len(c.Bounds) == 0 {
		return fmt.Errorf("exper: no cost bounds")
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if c.Cost.M() != c.Power.M() {
		return fmt.Errorf("exper: cost has %d modes, power %d", c.Cost.M(), c.Power.M())
	}
	_, err := tree.Generate(c.Gen, rng.New(0))
	return err
}

// RunExp3 executes Experiment 3. The dynamic program runs once per tree;
// its root table answers every cost bound (see core.PowerSolver).
func RunExp3(cfg Exp3Config) (*Exp3Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	type treeOut struct {
		dpPower, grPower []float64 // per bound; 0 = not found
		frontLen         int
		err              error
	}
	// One arena-backed PowerDP per worker, rebound to each tree it
	// draws via Reset, so arena warm-up amortises across the whole
	// sweep instead of repeating per tree; the per-worker destination
	// set and front buffer keep the per-bound reconstructions and the
	// front read allocation-free.
	type state struct {
		dp    *core.PowerDP
		dst   *tree.Replicas
		front []core.ParetoPoint
	}
	outs := par.MapPooled(cfg.Trees, cfg.Workers, func() *state { return new(state) }, func(st *state, i int) treeOut {
		src := rng.Derive(cfg.Seed, i)
		t := tree.MustGenerate(cfg.Gen, src)
		existing, err := tree.RandomReplicas(t, cfg.Pre, cfg.Power.M(), src)
		if err != nil {
			return treeOut{err: fmt.Errorf("exper: tree %d: %w", i, err)}
		}
		if st.dp == nil {
			st.dp = core.NewPowerDP(t)
		} else {
			st.dp.Reset(t)
		}
		if st.dst == nil || st.dst.N() != t.N() {
			st.dst = tree.ReplicasOf(t)
		}
		solver, err := st.dp.Solve(core.PowerProblem{
			Existing: existing, Power: cfg.Power, Cost: cfg.Cost,
		})
		if err != nil {
			return treeOut{err: fmt.Errorf("exper: tree %d: %w", i, err)}
		}
		st.front = solver.FrontInto(st.front)
		out := treeOut{
			dpPower:  make([]float64, len(cfg.Bounds)),
			grPower:  make([]float64, len(cfg.Bounds)),
			frontLen: len(st.front),
		}
		for bi, bound := range cfg.Bounds {
			if res, ok := solver.BestInto(bound, st.dst); ok {
				out.dpPower[bi] = res.Power
			}
			gr, err := greedy.PowerSweep(t, existing, cfg.Power, cfg.Cost, bound)
			if err != nil {
				return treeOut{err: fmt.Errorf("exper: tree %d bound %v: %w", i, bound, err)}
			}
			if gr.Found {
				out.grPower[bi] = gr.Power
			}
		}
		return out
	})

	res := &Exp3Result{Points: make([]Exp3Point, len(cfg.Bounds))}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.AvgFront += float64(o.frontLen)
	}
	res.AvgFront /= float64(cfg.Trees)
	for bi, bound := range cfg.Bounds {
		var dpInv, grInv, excess []float64
		p := Exp3Point{Bound: bound}
		for _, o := range outs {
			dp, gr := o.dpPower[bi], o.grPower[bi]
			if dp > 0 {
				p.DPFound++
				dpInv = append(dpInv, 1/dp)
			} else {
				dpInv = append(dpInv, 0)
			}
			if gr > 0 {
				p.GRFound++
				grInv = append(grInv, 1/gr)
			} else {
				grInv = append(grInv, 0)
			}
			if dp > 0 && gr > 0 {
				excess = append(excess, (gr/dp-1)*100)
			}
		}
		p.DPInv = stats.Mean(dpInv)
		p.GRInv = stats.Mean(grInv)
		p.GRExcessPct = stats.Mean(excess)
		res.Points[bi] = p
	}
	return res, nil
}
