// Package exper regenerates the paper's evaluation (Section 5): the
// pre-existing-server experiments behind Figures 4-7, the
// power-versus-cost experiments behind Figures 8-11, and the in-text
// scalability measurements. Each runner draws its workload exactly as
// described in the paper, executes the optimal dynamic programs of the
// core package against the greedy baseline, and aggregates the same
// quantities the figures plot. Runs are parallel across trees and
// deterministic for a fixed seed.
package exper

import (
	"math"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// Paper-wide default parameters (Section 5).
const (
	// DefaultW is the uniform server capacity of Experiments 1 and 2.
	DefaultW = 10
	// DefaultSeed makes default runs reproducible.
	DefaultSeed = 2011 // IPPS 2011
)

// Exp1Cost is the cost model used for the update experiments. The paper
// fixes only create + 2·delete < 1 (priority to few servers); the exact
// prices are not stated. These values keep cost order lexicographic in
// (server count, reuse) for every tree size used here, matching the
// paper's observation that both algorithms always return the minimal
// number of replicas. See DESIGN.md §5.
func Exp1Cost() cost.Simple { return cost.Simple{Create: 0.01, Delete: 0.001} }

// Exp3Power is the paper's Experiment 3 power model: two modes W1=5 and
// W2=10 with P_i = W1³/10 + W_i³ (static power 12.5, α = 3).
func Exp3Power() power.Model {
	return power.MustNew([]int{5, 10}, math.Pow(5, 3)/10, 3)
}

// Exp3Cost is the paper's first Experiment 3 cost function:
// createᵢ = 0.1, deleteᵢ = 0.01, changedᵢᵢ' = 0.001.
func Exp3Cost() cost.Modal { return cost.UniformModal(2, 0.1, 0.01, 0.001) }

// Fig11Cost is the paper's "different cost" variant (Figure 11):
// createᵢ = deleteᵢ = 1 and changedᵢᵢ' = 0.1.
func Fig11Cost() cost.Modal { return cost.UniformModal(2, 1, 1, 0.1) }

// HighPowerConfig is the Experiment 3 workload on the paper's high
// trees (2-4 children), used by Figure 10.
func HighPowerConfig(nodes int) tree.GenConfig {
	c := tree.HighConfig(nodes)
	c.ReqMin, c.ReqMax = 1, 5
	return c
}

// seqFloats returns lo, lo+step, …, up to and including hi.
func seqFloats(lo, hi, step float64) []float64 {
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// seqInts returns lo, lo+step, …, up to and including hi.
func seqInts(lo, hi, step int) []int {
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}
