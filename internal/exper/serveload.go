// Serve-load experiment: drive a running replicaserved daemon over its
// HTTP API with a concurrent drift burst and measure how the batcher
// coalesces the burst into ticks, reading per-tick latency back from
// the daemon's own /metrics histogram. The generator only speaks HTTP —
// it works identically against an httptest server (the e2e test), a
// locally spawned daemon (the CI smoke script) or a remote deployment.
package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"replicatree/internal/serve"
)

// ServeLoadConfig parameterises one load run against a daemon.
type ServeLoadConfig struct {
	// BaseURL is the daemon's address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ID names the instance to load (it must not exist yet).
	ID string
	// Nodes, Shape and Seed are passed to the server-side generator.
	Nodes int
	Shape string
	Seed  uint64
	// W is the server capacity; Chain selects continuous placement.
	W     int
	Chain bool
	// Requests is the size of the drift burst; Concurrency how many
	// submitters fire it. Each request is one redraw drift with a
	// distinct deterministic seed.
	Requests    int
	Concurrency int
	// RedrawProb is the per-client redraw probability of each drift
	// (default 0.01).
	RedrawProb float64
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// DefaultServeLoad is the acceptance-scale run: a 10^4-node scale-tier
// instance under a 100-request burst.
func DefaultServeLoad(baseURL string) ServeLoadConfig {
	return ServeLoadConfig{
		BaseURL:     baseURL,
		ID:          "load",
		Nodes:       10_000,
		Shape:       "scale",
		Seed:        DefaultSeed,
		W:           100,
		Chain:       true,
		Requests:    100,
		Concurrency: 16,
		RedrawProb:  0.01,
	}
}

// ServeLoadResult is what one load run measured.
type ServeLoadResult struct {
	Nodes    int
	Requests int
	Failed   int
	// Ticks is how many solver ticks absorbed the burst (plus the
	// load-time solve's tick 0 not being counted: ticks_total counts
	// drift ticks only). Coalesce is Requests/Ticks.
	Ticks    int
	Coalesce float64
	// FinalTick, Servers and Cost describe the placement published
	// after the burst.
	FinalTick uint64
	Servers   int
	Cost      float64
	// P50 and P99 are tick-latency quantile estimates read back from
	// the daemon's /metrics histogram, in seconds (bucket upper
	// bounds, as histogram_quantile would report).
	P50, P99 float64
	Elapsed  time.Duration
}

func (r *ServeLoadResult) String() string {
	return fmt.Sprintf(
		"serveload: n=%d burst=%d failed=%d ticks=%d (%.1fx coalesced) servers=%d tick_p50=%.4fs tick_p99=%.4fs elapsed=%s",
		r.Nodes, r.Requests, r.Failed, r.Ticks, r.Coalesce, r.Servers, r.P50, r.P99, r.Elapsed.Round(time.Millisecond))
}

// RunServeLoad loads an instance into the daemon at cfg.BaseURL, fires
// the drift burst and collects the measurements. The instance is left
// loaded so callers can snapshot or inspect it afterwards.
func RunServeLoad(cfg ServeLoadConfig) (*ServeLoadResult, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("exper: serveload needs a base URL")
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.RedrawProb == 0 {
		cfg.RedrawProb = 0.01
	}

	load := map[string]any{
		"id": cfg.ID, "w": cfg.W, "chain": cfg.Chain,
		"cost": map[string]float64{"create": 0.1, "delete": 0.01},
		"gen":  map[string]any{"nodes": cfg.Nodes, "shape": cfg.Shape, "seed": cfg.Seed},
	}
	if code, body, err := postJSON(client, cfg.BaseURL+"/instances", load); err != nil {
		return nil, err
	} else if code != http.StatusCreated {
		return nil, fmt.Errorf("exper: serveload: loading instance: status %d: %s", code, body)
	}

	start := time.Now()
	var failed atomic.Int64
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				drift := map[string]any{"redraw": map[string]any{
					"prob": cfg.RedrawProb, "seed": cfg.Seed + uint64(i) + 1,
				}}
				code, _, err := postJSON(client, cfg.BaseURL+"/instances/"+cfg.ID+"/drift", drift)
				if err != nil || code != http.StatusOK {
					failed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	var snap serve.Snapshot
	if err := getJSON(client, cfg.BaseURL+"/instances/"+cfg.ID+"/placement", &snap); err != nil {
		return nil, err
	}
	met, err := scrapeMetrics(client, cfg.BaseURL, cfg.ID)
	if err != nil {
		return nil, err
	}

	res := &ServeLoadResult{
		Nodes:     cfg.Nodes,
		Requests:  cfg.Requests,
		Failed:    int(failed.Load()),
		Ticks:     met.ticks,
		FinalTick: snap.Tick,
		Servers:   snap.Servers,
		Cost:      snap.Cost,
		P50:       met.quantile(0.50),
		P99:       met.quantile(0.99),
		Elapsed:   elapsed,
	}
	if res.Ticks > 0 {
		res.Coalesce = float64(res.Requests) / float64(res.Ticks)
	}
	return res, nil
}

func postJSON(client *http.Client, url string, v any) (int, string, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, strings.TrimSpace(string(data)), nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("exper: GET %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// tickMetrics is the slice of /metrics the load generator cares about:
// the drift tick counter and the cumulative tick-latency histogram of
// one instance.
type tickMetrics struct {
	ticks   int
	bounds  []float64 // ascending bucket upper bounds (excluding +Inf)
	cumul   []uint64  // cumulative counts per bound
	samples uint64    // total observations (+Inf cumulative count)
}

// quantile mirrors Prometheus histogram_quantile over the scraped
// cumulative buckets: the upper bound of the bucket holding the q-th
// observation.
func (m *tickMetrics) quantile(q float64) float64 {
	if m.samples == 0 {
		return 0
	}
	rank := uint64(q * float64(m.samples))
	if rank >= m.samples {
		rank = m.samples - 1
	}
	for i, c := range m.cumul {
		if c > rank {
			return m.bounds[i]
		}
	}
	return math.Inf(1)
}

// scrapeMetrics fetches and parses /metrics for one instance.
func scrapeMetrics(client *http.Client, baseURL, id string) (*tickMetrics, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}

	m := &tickMetrics{}
	tickSeries := fmt.Sprintf("replicaserved_ticks_total{instance=%q}", id)
	bucketPrefix := fmt.Sprintf("replicaserved_tick_seconds_bucket{instance=%q,le=", id)
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, tickSeries):
			v, err := strconv.Atoi(strings.TrimSpace(line[len(tickSeries):]))
			if err != nil {
				return nil, fmt.Errorf("exper: parsing %q: %w", line, err)
			}
			m.ticks = v
		case strings.HasPrefix(line, bucketPrefix):
			rest := line[len(bucketPrefix):]
			end := strings.Index(rest, `"}`)
			if !strings.HasPrefix(rest, `"`) || end < 0 {
				return nil, fmt.Errorf("exper: malformed bucket line %q", line)
			}
			le := rest[1:end]
			count, err := strconv.ParseUint(strings.TrimSpace(rest[end+2:]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("exper: parsing %q: %w", line, err)
			}
			if le == "+Inf" {
				m.samples = count
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("exper: parsing %q: %w", line, err)
			}
			m.bounds = append(m.bounds, bound)
			m.cumul = append(m.cumul, count)
		}
	}
	if !sort.Float64sAreSorted(m.bounds) {
		return nil, fmt.Errorf("exper: tick histogram buckets out of order")
	}
	return m, nil
}
