package exper

import (
	"fmt"
	"io"
	"strings"

	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/par"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// IntervalConfig parameterises the update-interval study sketched in
// the paper's conclusion (Section 6): when client demand drifts over
// time, the overall cost trades off between "lazy" updates (reconfigure
// only when the placement becomes invalid: minimal update cost, drifting
// resource usage) and "systematic" updates (reconfigure every step:
// optimal resource usage, maximal update cost). This harness quantifies
// that trade-off; it is an extension beyond the paper's evaluation,
// built from its stated framing.
type IntervalConfig struct {
	Trees   int
	Gen     tree.GenConfig
	W       int
	Horizon int
	// DriftProb is the per-step probability that each client redraws
	// its demand (the paper's "rates of the variations").
	DriftProb float64
	// Intervals lists the periodic strategies to evaluate: an entry k
	// reconfigures every k steps (k = 1 is the systematic strategy).
	// The lazy strategy is always evaluated.
	Intervals []int
	Cost      cost.Simple
	// OperatingWeight is the per-step cost of one running server; the
	// update cost of a reconfiguration counts only the transition
	// fees of Equation (2), (R−e)·create + (E−e)·delete, so that
	// operating and updating are not double-counted.
	OperatingWeight float64
	Seed            uint64
	Workers         int
}

// DefaultIntervals studies a 100-node Experiment-1 workload over 60
// steps of gentle drift with cheap updates; in this regime systematic
// updating wins. ExpensiveIntervals flips the regime.
func DefaultIntervals() IntervalConfig {
	return IntervalConfig{
		Trees:           50,
		Gen:             tree.FatConfig(100),
		W:               DefaultW,
		Horizon:         60,
		DriftProb:       0.02,
		Intervals:       []int{1, 2, 5, 10, 20},
		Cost:            cost.Simple{Create: 0.25, Delete: 0.05},
		OperatingWeight: 0.02,
		Seed:            DefaultSeed,
	}
}

// ExpensiveIntervals prices updates four times higher, the regime where
// the paper's conclusion expects lazy updating to win.
func ExpensiveIntervals() IntervalConfig {
	cfg := DefaultIntervals()
	cfg.Cost = cost.Simple{Create: 1, Delete: 0.2}
	return cfg
}

// IntervalRow aggregates one strategy.
type IntervalRow struct {
	Name string
	// Updates is the average number of reconfigurations per tree
	// (scheduled and forced); Forced counts only those triggered by an
	// invalid placement.
	Updates, Forced float64
	// UpdateCost is the average total transition cost per tree.
	UpdateCost float64
	// AvgServers is the average number of running servers per step.
	AvgServers float64
	// TotalCost = UpdateCost + OperatingWeight·(server-steps).
	TotalCost float64
}

// IntervalResult holds one row per strategy, lazy first.
type IntervalResult struct {
	Rows []IntervalRow
}

func (c IntervalConfig) validate() error {
	if c.Trees <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("exper: Trees = %d, Horizon = %d", c.Trees, c.Horizon)
	}
	if c.DriftProb < 0 || c.DriftProb > 1 {
		return fmt.Errorf("exper: DriftProb = %v", c.DriftProb)
	}
	for _, k := range c.Intervals {
		if k <= 0 {
			return fmt.Errorf("exper: interval %d", k)
		}
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	_, err := tree.Generate(c.Gen, rng.New(0))
	return err
}

// RunIntervals executes the study. Every strategy replays the identical
// demand trace per tree (drift is drawn from a dedicated stream), so
// rows are directly comparable.
func RunIntervals(cfg IntervalConfig) (*IntervalResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	strategies := make([]int, 0, len(cfg.Intervals)+1)
	strategies = append(strategies, 0) // 0 = lazy
	strategies = append(strategies, cfg.Intervals...)

	type acc struct {
		updates, forced int
		updateCost      float64
		serverSteps     int
		err             error
	}
	// One arena-backed solver and flow engine per worker, rebound to
	// each strategy's replay tree via Reset, so the whole study shares
	// one warmed buffer set per worker.
	type state struct {
		solver *core.MinCostSolver
		engine *tree.Engine
	}
	outs := par.MapPooled(cfg.Trees, cfg.Workers, func() *state { return new(state) }, func(st *state, i int) []acc {
		res := make([]acc, len(strategies))
		base := tree.MustGenerate(cfg.Gen, rng.Derive(cfg.Seed, i))
		// One demand trace, replayed identically for every strategy:
		// trace[s] lists the redrawn (node, client index, value)
		// triples of step s.
		drift := rng.Derive(cfg.Seed, 1_000_000+i)
		type change struct{ node, idx, value int }
		trace := make([][]change, cfg.Horizon)
		probe := base.Clone()
		for s := range trace {
			for j := 0; j < probe.N(); j++ {
				for ci := range probe.Clients(j) {
					if drift.Bool(cfg.DriftProb) {
						trace[s] = append(trace[s], change{j, ci, drift.Between(cfg.Gen.ReqMin, cfg.Gen.ReqMax)})
					}
				}
			}
		}

		for si, k := range strategies {
			t := base.Clone()
			// The pooled solver rebinds to each strategy's replay tree;
			// the current placement and a spare set double-buffer across
			// updates. Drift steps mutate demands in place through
			// SetDemand, so a re-solve after k changed clients recomputes
			// only their dirty ancestor chains, not the whole tree.
			if st.solver == nil {
				st.solver = core.NewMinCostSolver(t)
				st.engine = tree.NewEngine(t)
			} else {
				st.solver.Reset(t)
				st.engine.Reset(t)
			}
			solver, engine := st.solver, st.engine
			init, err := solver.Solve(nil, cfg.W, cfg.Cost)
			if err != nil {
				res[si].err = err
				continue
			}
			placement := init.Placement
			spare := tree.ReplicasOf(t)
			a := &res[si]
			for s := 0; s < cfg.Horizon; s++ {
				for _, ch := range trace[s] {
					t.SetDemand(ch.node, ch.idx, ch.value)
				}
				scheduled := k > 0 && s%k == 0
				invalid := engine.ValidateUniform(placement, tree.PolicyClosest, cfg.W) != nil
				if scheduled || invalid {
					upd, err := solver.SolveInto(placement, cfg.W, cfg.Cost, spare)
					if err != nil {
						a.err = err
						break
					}
					a.updates++
					if invalid && !scheduled {
						a.forced++
					}
					// Transition fees only (Equation (2) minus R).
					a.updateCost += float64(upd.New)*cfg.Cost.Create +
						float64(placement.Count()-upd.Reused)*cfg.Cost.Delete
					placement, spare = upd.Placement, placement
				}
				a.serverSteps += placement.Count()
			}
		}
		return res
	})

	result := &IntervalResult{Rows: make([]IntervalRow, len(strategies))}
	for si, k := range strategies {
		row := IntervalRow{Name: "lazy"}
		if k > 0 {
			row.Name = fmt.Sprintf("every-%d", k)
			if k == 1 {
				row.Name = "systematic"
			}
		}
		for _, treeAcc := range outs {
			a := treeAcc[si]
			if a.err != nil {
				return nil, a.err
			}
			row.Updates += float64(a.updates)
			row.Forced += float64(a.forced)
			row.UpdateCost += a.updateCost
			row.AvgServers += float64(a.serverSteps)
		}
		n := float64(cfg.Trees)
		row.Updates /= n
		row.Forced /= n
		row.UpdateCost /= n
		serverSteps := row.AvgServers / n
		row.AvgServers = serverSteps / float64(cfg.Horizon)
		row.TotalCost = row.UpdateCost + cfg.OperatingWeight*serverSteps
		result.Rows[si] = row
	}
	return result, nil
}

// Report renders the study as a table.
func (r *IntervalResult) Report(w io.Writer, title string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-12s %9s %8s %12s %12s %12s\n",
		"strategy", "updates", "forced", "update cost", "avg servers", "total cost")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %9.1f %8.1f %12.2f %12.2f %12.2f\n",
			row.Name, row.Updates, row.Forced, row.UpdateCost, row.AvgServers, row.TotalCost)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
