package exper

import (
	"bytes"
	"reflect"
	"testing"

	"replicatree/internal/tree"
)

func TestRunAvailability(t *testing.T) {
	cfg := DefaultAvailability(false)
	cfg.Trees = 6
	cfg.Horizon = 60
	res, err := RunAvailability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 strategy rows, got %d", len(res.Rows))
	}
	exact, hedged := res.Rows[0], res.Rows[2]
	if exact.Feasible == 0 || hedged.Feasible == 0 {
		t.Fatalf("strategies infeasible: %+v", res.Rows)
	}
	// Hedging adds servers and can only improve (or match) expected
	// loss relative to the greedy it pads.
	greedyRow := res.Rows[1]
	if hedged.Servers < greedyRow.Servers {
		t.Fatalf("hedged uses fewer servers (%v) than greedy (%v)", hedged.Servers, greedyRow.Servers)
	}
	for _, row := range res.Rows {
		if row.LostFrac < 0 || row.LostFrac > 1 || row.Availability < 0 || row.Availability > 1 {
			t.Fatalf("fractions out of range: %+v", row)
		}
		if row.RepairLostFrac > row.LostFrac+1e-9 {
			t.Fatalf("%s: repair increased loss (%v > %v)", row.Strategy, row.RepairLostFrac, row.LostFrac)
		}
	}

	// Determinism across worker counts.
	cfg.Workers = 4
	res2, err := RunAvailability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("availability experiment depends on worker count")
	}

	var buf bytes.Buffer
	if err := res.Report(&buf, "availability"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestRunAvailabilityValidates(t *testing.T) {
	cfg := DefaultAvailability(true)
	cfg.Trees = 0
	if _, err := RunAvailability(cfg); err == nil {
		t.Error("zero trees accepted")
	}
	cfg = DefaultAvailability(true)
	cfg.MTTF = 0
	if _, err := RunAvailability(cfg); err == nil {
		t.Error("zero MTTF accepted")
	}
	cfg = DefaultAvailability(true)
	cfg.Gen = tree.GenConfig{}
	if _, err := RunAvailability(cfg); err == nil {
		t.Error("bad generator accepted")
	}
}
