package exper

import (
	"strings"
	"testing"

	"replicatree/internal/tree"
)

func quickPolicyCfg() PolicyCompareConfig {
	cfg := DefaultPolicyCompare(false)
	cfg.Trees = 4
	cfg.Gen = tree.FatConfig(40)
	cfg.Ws = []int{4, 10}
	return cfg
}

func TestRunPolicyCompareShape(t *testing.T) {
	cfg := quickPolicyCfg()
	res, err := RunPolicyCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 3 {
		t.Fatalf("policies = %v", res.Policies)
	}
	if len(res.Counts) != len(cfg.Ws) {
		t.Fatalf("%d count points for %d capacities", len(res.Counts), len(cfg.Ws))
	}
	for _, pt := range res.Counts {
		for pi, p := range res.Policies {
			if pt.Feasible[pi] < 0 || pt.Feasible[pi] > cfg.Trees {
				t.Fatalf("W=%d policy %v: feasible = %d", pt.W, p, pt.Feasible[pi])
			}
			if pt.Feasible[pi] > 0 && pt.Servers[pi] <= 0 {
				t.Fatalf("W=%d policy %v: avg servers = %v with %d feasible trees",
					pt.W, p, pt.Servers[pi], pt.Feasible[pi])
			}
		}
	}
	// W=10 covers every client demand (ReqMax 6), so every policy must
	// serve every tree; relaxation never loses feasibility.
	last := res.Counts[len(res.Counts)-1]
	for pi, p := range res.Policies {
		if last.Feasible[pi] != cfg.Trees {
			t.Fatalf("W=10 policy %v: only %d/%d trees feasible", p, last.Feasible[pi], cfg.Trees)
		}
	}
	// Relaxed policies never need more feasible trees' worth of
	// servers than closest on average (their greedy starts from the
	// closest solution and prunes).
	if last.Servers[1] > last.Servers[0]+1e-9 || last.Servers[2] > last.Servers[0]+1e-9 {
		t.Fatalf("relaxed policies used more servers than closest: %v", last.Servers)
	}
	for pi := range res.Policies {
		if res.Power[pi].Feasible != cfg.Trees {
			t.Fatalf("power row %d: %d/%d feasible", pi, res.Power[pi].Feasible, cfg.Trees)
		}
		if res.Power[pi].AvgPower <= 0 {
			t.Fatalf("power row %d: avg power %v", pi, res.Power[pi].AvgPower)
		}
	}
}

func TestRunPolicyCompareDeterministic(t *testing.T) {
	cfg := quickPolicyCfg()
	a, err := RunPolicyCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunPolicyCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Counts {
		for pi := range a.Policies {
			if a.Counts[i].Servers[pi] != b.Counts[i].Servers[pi] ||
				a.Counts[i].Feasible[pi] != b.Counts[i].Feasible[pi] {
				t.Fatalf("worker count changed the result at point %d", i)
			}
		}
	}
	for pi := range a.Policies {
		if a.Power[pi] != b.Power[pi] {
			t.Fatalf("worker count changed the power row %d", pi)
		}
	}
}

func TestRunPolicyCompareValidation(t *testing.T) {
	cfg := quickPolicyCfg()
	cfg.Trees = 0
	if _, err := RunPolicyCompare(cfg); err == nil {
		t.Fatal("Trees=0 accepted")
	}
	cfg = quickPolicyCfg()
	cfg.Ws = nil
	if _, err := RunPolicyCompare(cfg); err == nil {
		t.Fatal("empty capacity sweep accepted")
	}
	cfg = quickPolicyCfg()
	cfg.Ws = []int{0}
	if _, err := RunPolicyCompare(cfg); err == nil {
		t.Fatal("W=0 accepted")
	}
}

func TestPolicyCompareReport(t *testing.T) {
	res, err := RunPolicyCompare(quickPolicyCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Report(&sb, "policies"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"policies", "closest", "upwards", "multiple", "avg power"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
