package tree

import (
	"encoding/json"
	"fmt"
	"io"
)

// treeJSON is the on-disk representation of a tree: the parent vector
// (node 0 is the root with parent -1) and the per-node client request
// lists.
type treeJSON struct {
	Parents []int   `json:"parents"`
	Clients [][]int `json:"clients"`
}

// replicasJSON is the on-disk representation of a replica set: the
// per-node operating mode, 0 meaning "no replica". Modes are plain
// integers (a []uint8 field would serialise as base64).
type replicasJSON struct {
	Modes []int `json:"modes"`
}

// MarshalJSON implements json.Marshaler.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{Parents: t.parent, Clients: t.clientLists()})
}

// UnmarshalJSON implements json.Unmarshaler, validating the topology.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var raw treeJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("tree: decoding: %w", err)
	}
	built, err := FromParents(raw.Parents, raw.Clients)
	if err != nil {
		return err
	}
	*t = *built
	return nil
}

// WriteJSON writes the tree to w as indented JSON.
func (t *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTreeJSON decodes a tree from r.
func ReadTreeJSON(r io.Reader) (*Tree, error) {
	var t Tree
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

// MarshalJSON implements json.Marshaler.
func (r *Replicas) MarshalJSON() ([]byte, error) {
	modes := make([]int, len(r.mode))
	for i, m := range r.mode {
		modes[i] = int(m)
	}
	return json.Marshal(replicasJSON{Modes: modes})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Replicas) UnmarshalJSON(data []byte) error {
	var raw replicasJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("tree: decoding replicas: %w", err)
	}
	modes := make([]uint8, len(raw.Modes))
	for i, m := range raw.Modes {
		if m < 0 || m > 255 {
			return fmt.Errorf("tree: replica mode %d out of range", m)
		}
		modes[i] = uint8(m)
	}
	r.mode = modes
	return nil
}

// instanceJSON is the on-disk representation of a constrained instance:
// the tree plus optional per-client QoS bounds (aligned with clients; 0
// = unbounded) and per-link bandwidths (bandwidth[j] caps the link
// j -> parent(j); negative = unbounded; entry 0 is ignored). A plain
// tree file is a valid instance with nil constraints, and instance
// files decode as plain trees through ReadTreeJSON (the extra fields
// are ignored).
type instanceJSON struct {
	Parents   []int   `json:"parents"`
	Clients   [][]int `json:"clients"`
	QoS       [][]int `json:"qos,omitempty"`
	Bandwidth []int   `json:"bandwidth,omitempty"`
}

// ReadInstanceJSON decodes a tree and its optional QoS/bandwidth
// constraints from r. When the file carries neither a "qos" nor a
// "bandwidth" field the returned constraints are nil.
func ReadInstanceJSON(rd io.Reader) (*Tree, *Constraints, error) {
	var raw instanceJSON
	if err := json.NewDecoder(rd).Decode(&raw); err != nil {
		return nil, nil, fmt.Errorf("tree: decoding instance: %w", err)
	}
	t, err := FromParents(raw.Parents, raw.Clients)
	if err != nil {
		return nil, nil, err
	}
	if raw.QoS == nil && raw.Bandwidth == nil {
		return t, nil, nil
	}
	c := NewConstraints(t)
	if raw.QoS != nil {
		if len(raw.QoS) > t.N() {
			return nil, nil, fmt.Errorf("tree: %d QoS lists for %d nodes", len(raw.QoS), t.N())
		}
		for j := range raw.QoS {
			for k, q := range raw.QoS[j] {
				c.SetQoS(j, k, q)
			}
		}
	}
	if raw.Bandwidth != nil {
		if len(raw.Bandwidth) != t.N() {
			return nil, nil, fmt.Errorf("tree: %d bandwidth entries for %d nodes", len(raw.Bandwidth), t.N())
		}
		for j := 1; j < t.N(); j++ {
			c.SetBandwidth(j, raw.Bandwidth[j])
		}
	}
	if err := c.Validate(t); err != nil {
		return nil, nil, err
	}
	return t, c, nil
}

// WriteInstanceJSON writes the tree and its constraints to w as
// indented JSON. A nil constraint set writes a plain tree file.
func WriteInstanceJSON(w io.Writer, t *Tree, c *Constraints) error {
	raw := instanceJSON{Parents: t.parent, Clients: t.clientLists()}
	if c != nil {
		if err := c.Validate(t); err != nil {
			return err
		}
		if c.Bounded() {
			raw.QoS = make([][]int, t.N())
			for j := 0; j < t.N(); j++ {
				raw.QoS[j] = make([]int, len(t.Clients(j)))
				for k := range t.Clients(j) {
					raw.QoS[j][k] = c.QoS(j, k)
				}
			}
			raw.Bandwidth = make([]int, t.N())
			raw.Bandwidth[0] = NoBandwidthLimit
			for j := 1; j < t.N(); j++ {
				raw.Bandwidth[j] = c.Bandwidth(j)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(raw)
}

// ReadReplicasJSON decodes a replica set from rd and checks it is sized
// for t.
func ReadReplicasJSON(rd io.Reader, t *Tree) (*Replicas, error) {
	var r Replicas
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if r.N() != t.N() {
		return nil, fmt.Errorf("tree: replica set covers %d nodes, tree has %d", r.N(), t.N())
	}
	return &r, nil
}
