package tree

import (
	"encoding/json"
	"fmt"
	"io"
)

// treeJSON is the on-disk representation of a tree: the parent vector
// (node 0 is the root with parent -1) and the per-node client request
// lists.
type treeJSON struct {
	Parents []int   `json:"parents"`
	Clients [][]int `json:"clients"`
}

// replicasJSON is the on-disk representation of a replica set: the
// per-node operating mode, 0 meaning "no replica". Modes are plain
// integers (a []uint8 field would serialise as base64).
type replicasJSON struct {
	Modes []int `json:"modes"`
}

// MarshalJSON implements json.Marshaler.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{Parents: t.parent, Clients: t.clients})
}

// UnmarshalJSON implements json.Unmarshaler, validating the topology.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var raw treeJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("tree: decoding: %w", err)
	}
	built, err := FromParents(raw.Parents, raw.Clients)
	if err != nil {
		return err
	}
	*t = *built
	return nil
}

// WriteJSON writes the tree to w as indented JSON.
func (t *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTreeJSON decodes a tree from r.
func ReadTreeJSON(r io.Reader) (*Tree, error) {
	var t Tree
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

// MarshalJSON implements json.Marshaler.
func (r *Replicas) MarshalJSON() ([]byte, error) {
	modes := make([]int, len(r.mode))
	for i, m := range r.mode {
		modes[i] = int(m)
	}
	return json.Marshal(replicasJSON{Modes: modes})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Replicas) UnmarshalJSON(data []byte) error {
	var raw replicasJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("tree: decoding replicas: %w", err)
	}
	modes := make([]uint8, len(raw.Modes))
	for i, m := range raw.Modes {
		if m < 0 || m > 255 {
			return fmt.Errorf("tree: replica mode %d out of range", m)
		}
		modes[i] = uint8(m)
	}
	r.mode = modes
	return nil
}

// ReadReplicasJSON decodes a replica set from rd and checks it is sized
// for t.
func ReadReplicasJSON(rd io.Reader, t *Tree) (*Replicas, error) {
	var r Replicas
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if r.N() != t.N() {
		return nil, fmt.Errorf("tree: replica set covers %d nodes, tree has %d", r.N(), t.N())
	}
	return &r, nil
}
