package tree

import (
	"testing"
)

// paperTree builds the Figure 1 topology: root r with a client, child A,
// A's children B (4 requests below) and C (7 requests below).
//
//	r ── A ── B ── client(4)
//	│         └ C ── client(7)
//	└ client(rootReq)
func paperTree(rootReq int) *Tree {
	b := NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	cc := b.AddNode(a)
	b.AddClient(bb, 4)
	b.AddClient(cc, 7)
	if rootReq > 0 {
		b.AddClient(b.Root(), rootReq)
	}
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	tr := paperTree(2)
	if tr.N() != 4 {
		t.Fatalf("N = %d, want 4", tr.N())
	}
	if tr.Root() != 0 {
		t.Fatalf("Root = %d", tr.Root())
	}
	if tr.Parent(0) != -1 {
		t.Fatalf("root parent = %d", tr.Parent(0))
	}
	if got := tr.Children(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("children of A = %v", got)
	}
	if tr.ClientSum(2) != 4 || tr.ClientSum(3) != 7 || tr.ClientSum(0) != 2 {
		t.Fatalf("client sums = %d,%d,%d", tr.ClientSum(2), tr.ClientSum(3), tr.ClientSum(0))
	}
	if tr.TotalRequests() != 13 {
		t.Fatalf("TotalRequests = %d", tr.TotalRequests())
	}
	if tr.ClientCount() != 3 {
		t.Fatalf("ClientCount = %d", tr.ClientCount())
	}
}

func TestPostOrderChildrenFirst(t *testing.T) {
	tr := paperTree(2)
	pos := make(map[int]int)
	for i, j := range tr.PostOrder() {
		pos[j] = i
	}
	if len(pos) != tr.N() {
		t.Fatalf("post order has %d entries, want %d", len(pos), tr.N())
	}
	for j := 0; j < tr.N(); j++ {
		for _, c := range tr.Children(j) {
			if pos[c] > pos[j] {
				t.Fatalf("child %d after parent %d in post order", c, j)
			}
		}
	}
}

func TestDepthAndHeight(t *testing.T) {
	tr := paperTree(0)
	want := []int{0, 1, 2, 2}
	for j, d := range want {
		if tr.Depth(j) != d {
			t.Errorf("Depth(%d) = %d, want %d", j, tr.Depth(j), d)
		}
	}
	if tr.Height() != 2 {
		t.Fatalf("Height = %d", tr.Height())
	}
}

func TestSubtreeNodes(t *testing.T) {
	tr := paperTree(0)
	got := tr.SubtreeNodes(1)
	if len(got) != 2 {
		t.Fatalf("SubtreeNodes(A) = %v", got)
	}
	seen := map[int]bool{}
	for _, j := range got {
		seen[j] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatalf("SubtreeNodes(A) = %v, want {2,3}", got)
	}
	if len(tr.SubtreeNodes(2)) != 0 {
		t.Fatalf("SubtreeNodes(leaf) = %v", tr.SubtreeNodes(2))
	}
	if got := tr.SubtreeNodes(0); len(got) != 3 {
		t.Fatalf("SubtreeNodes(root) = %v", got)
	}
}

func TestIsAncestor(t *testing.T) {
	tr := paperTree(0)
	cases := []struct {
		a, d int
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {0, 3, true},
		{1, 2, true}, {1, 3, true},
		{2, 3, false}, {3, 2, false},
		{1, 0, false}, {2, 2, false},
	}
	for _, c := range cases {
		if got := tr.IsAncestor(c.a, c.d); got != c.want {
			t.Errorf("IsAncestor(%d,%d) = %v, want %v", c.a, c.d, got, c.want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := paperTree(2)
	cl := tr.Clone()
	cl.SetClientRequests(2, []int{9, 9})
	if tr.ClientSum(2) != 4 {
		t.Fatalf("mutating clone changed original: %d", tr.ClientSum(2))
	}
	if cl.ClientSum(2) != 18 {
		t.Fatalf("clone mutation lost: %d", cl.ClientSum(2))
	}
}

func TestSetClientRequests(t *testing.T) {
	tr := paperTree(0)
	tr.SetClientRequests(0, []int{1, 2, 3})
	if tr.ClientSum(0) != 6 || len(tr.Clients(0)) != 3 {
		t.Fatalf("SetClientRequests: sum=%d len=%d", tr.ClientSum(0), len(tr.Clients(0)))
	}
	// Caller's slice must not alias the tree.
	in := []int{5}
	tr.SetClientRequests(1, in)
	in[0] = 99
	if tr.ClientSum(1) != 5 {
		t.Fatalf("SetClientRequests aliased caller slice")
	}
}

func TestDemandGenerations(t *testing.T) {
	tr := paperTree(0)
	tr.SetClientRequests(0, []int{1, 2, 3})
	g := tr.DemandGen(0)

	// SetDemand: a real change stamps, a no-op does not.
	if !tr.SetDemand(0, 1, 7) || tr.DemandGen(0) <= g {
		t.Fatalf("SetDemand change did not stamp: gen %d -> %d", g, tr.DemandGen(0))
	}
	g = tr.DemandGen(0)
	if tr.SetDemand(0, 1, 7) || tr.DemandGen(0) != g {
		t.Fatal("SetDemand no-op stamped")
	}

	// SetClientRequests: an equal fresh slice is a no-op...
	tr.SetClientRequests(0, []int{1, 7, 3})
	if tr.DemandGen(0) != g {
		t.Fatal("equal SetClientRequests stamped")
	}
	// ...but the tree's own slice mutated in place (against Clients'
	// contract) must stamp: self-comparison cannot detect the change.
	own := tr.Clients(0)
	own[0] = 42
	tr.SetClientRequests(0, own)
	if tr.DemandGen(0) <= g || tr.ClientSum(0) != 42+7+3 {
		t.Fatalf("aliased SetClientRequests skipped the stamp (gen %d, sum %d)", tr.DemandGen(0), tr.ClientSum(0))
	}

	// Clones carry the stamps and diverge independently.
	g = tr.DemandGen(0)
	cl := tr.Clone()
	if cl.DemandGen(0) != g {
		t.Fatalf("clone lost demand gen: %d != %d", cl.DemandGen(0), g)
	}
	cl.SetDemand(0, 0, 1)
	if tr.DemandGen(0) != g {
		t.Fatal("clone mutation stamped the original")
	}
}

func TestSetDemandPanicsOnBadInput(t *testing.T) {
	tr := paperTree(0)
	tr.SetClientRequests(0, []int{1})
	for name, f := range map[string]func(){
		"negative":     func() { tr.SetDemand(0, 0, -1) },
		"out-of-range": func() { tr.SetDemand(0, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestMaxClientSum(t *testing.T) {
	tr := paperTree(2)
	if got := tr.MaxClientSum(); got != 7 {
		t.Fatalf("MaxClientSum = %d, want 7", got)
	}
}

func TestSummary(t *testing.T) {
	tr := paperTree(2)
	s := tr.Summary()
	if s.Nodes != 4 || s.Clients != 3 || s.TotalRequests != 13 || s.Height != 2 || s.Leaves != 2 || s.MaxClientSum != 7 {
		t.Fatalf("Summary = %+v", s)
	}
	if tr.String() == "" {
		t.Fatal("String empty")
	}
}

func TestFromParentsValid(t *testing.T) {
	tr, err := FromParents([]int{-1, 0, 0, 1}, [][]int{{3}, nil, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 4 || tr.ClientSum(2) != 3 || tr.ClientSum(0) != 3 {
		t.Fatalf("FromParents: %v", tr)
	}
}

func TestFromParentsErrors(t *testing.T) {
	cases := []struct {
		name    string
		parents []int
		clients [][]int
	}{
		{"empty", nil, nil},
		{"root not -1", []int{0}, nil},
		{"out of range parent", []int{-1, 5}, nil},
		{"self parent", []int{-1, 1}, nil},
		{"negative parent non-root", []int{-1, -1}, nil},
		{"too many client lists", []int{-1}, [][]int{nil, nil}},
		{"negative requests", []int{-1}, [][]int{{-2}}},
		{"two-cycle", []int{-1, 2, 1}, nil},
	}
	for _, c := range cases {
		if _, err := FromParents(c.parents, c.clients); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	b := NewBuilder()
	mustPanic("AddNode bad parent", func() { b.AddNode(7) })
	mustPanic("AddClient bad node", func() { b.AddClient(3, 1) })
	mustPanic("AddClient negative", func() { b.AddClient(0, -1) })
}

func TestSingleNodeTree(t *testing.T) {
	b := NewBuilder()
	b.AddClient(0, 5)
	tr := b.MustBuild()
	if tr.N() != 1 || tr.TotalRequests() != 5 || tr.Height() != 0 {
		t.Fatalf("single node tree: %v", tr)
	}
	if len(tr.PostOrder()) != 1 || tr.PostOrder()[0] != 0 {
		t.Fatalf("post order: %v", tr.PostOrder())
	}
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder()
	b.AddNode(0)
	t1 := b.MustBuild()
	b.AddNode(0)
	t2 := b.MustBuild()
	if t1.N() != 2 || t2.N() != 3 {
		t.Fatalf("builds: %d then %d nodes", t1.N(), t2.N())
	}
}
