package tree

import (
	"testing"

	"replicatree/internal/rng"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := FatConfig(100)
	a := MustGenerate(cfg, rng.New(1))
	b := MustGenerate(cfg, rng.New(1))
	if a.N() != b.N() {
		t.Fatalf("sizes differ: %d vs %d", a.N(), b.N())
	}
	for j := 0; j < a.N(); j++ {
		if a.Parent(j) != b.Parent(j) || a.ClientSum(j) != b.ClientSum(j) {
			t.Fatalf("trees differ at node %d", j)
		}
	}
}

func TestGenerateNodeCount(t *testing.T) {
	for _, n := range []int{1, 2, 10, 50, 100, 257} {
		tr := MustGenerate(FatConfig(n), rng.New(uint64(n)))
		if tr.N() != n {
			t.Fatalf("Generate(%d) produced %d nodes", n, tr.N())
		}
	}
}

func TestGenerateChildrenRange(t *testing.T) {
	cfg := FatConfig(200)
	tr := MustGenerate(cfg, rng.New(7))
	// All internal nodes except those truncated at the end must have
	// between MinChildren and MaxChildren children; nodes with zero
	// children are the frontier that never drew. Nothing may exceed max.
	for j := 0; j < tr.N(); j++ {
		k := len(tr.Children(j))
		if k > cfg.MaxChildren {
			t.Fatalf("node %d has %d children > max %d", j, k, cfg.MaxChildren)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("fat 200-node tree with height %d", tr.Height())
	}
}

func TestHighTreesAreTaller(t *testing.T) {
	fat := MustGenerate(FatConfig(100), rng.New(3))
	high := MustGenerate(HighConfig(100), rng.New(3))
	if high.Height() <= fat.Height() {
		t.Fatalf("high tree height %d not above fat tree height %d", high.Height(), fat.Height())
	}
}

func TestGenerateClientRanges(t *testing.T) {
	cfg := PowerConfig(120)
	tr := MustGenerate(cfg, rng.New(9))
	for j := 0; j < tr.N(); j++ {
		for _, r := range tr.Clients(j) {
			if r < cfg.ReqMin || r > cfg.ReqMax {
				t.Fatalf("client request %d out of [%d,%d]", r, cfg.ReqMin, cfg.ReqMax)
			}
		}
		if len(tr.Clients(j)) > 1 {
			t.Fatalf("node %d has %d clients, generator attaches at most one", j, len(tr.Clients(j)))
		}
	}
	if tr.TotalRequests() == 0 {
		t.Fatal("EnsureClient failed to guarantee a client")
	}
}

func TestGenerateEnsureClient(t *testing.T) {
	cfg := GenConfig{Nodes: 5, MinChildren: 2, MaxChildren: 3, ClientProb: 0, ReqMin: 1, ReqMax: 6, EnsureClient: true}
	tr := MustGenerate(cfg, rng.New(1))
	if tr.ClientCount() != 1 {
		t.Fatalf("ClientCount = %d, want exactly the ensured client", tr.ClientCount())
	}
	cfg.EnsureClient = false
	tr = MustGenerate(cfg, rng.New(1))
	if tr.ClientCount() != 0 {
		t.Fatalf("ClientCount = %d, want 0", tr.ClientCount())
	}
}

func TestGenerateConfigErrors(t *testing.T) {
	bad := []GenConfig{
		{Nodes: 0, MinChildren: 1, MaxChildren: 2},
		{Nodes: 5, MinChildren: 0, MaxChildren: 2},
		{Nodes: 5, MinChildren: 3, MaxChildren: 2},
		{Nodes: 5, MinChildren: 1, MaxChildren: 2, ClientProb: 1.5},
		{Nodes: 5, MinChildren: 1, MaxChildren: 2, ReqMin: 3, ReqMax: 2},
		{Nodes: 5, MinChildren: 1, MaxChildren: 2, ReqMin: -1, ReqMax: 2},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg, rng.New(1)); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRedrawRequestsKeepsStructure(t *testing.T) {
	cfg := FatConfig(80)
	tr := MustGenerate(cfg, rng.New(11))
	before := make([]int, tr.N())
	for j := range before {
		before[j] = len(tr.Clients(j))
	}
	RedrawRequests(tr, cfg, rng.New(12))
	for j := 0; j < tr.N(); j++ {
		if len(tr.Clients(j)) != before[j] {
			t.Fatalf("node %d client count changed: %d -> %d", j, before[j], len(tr.Clients(j)))
		}
		for _, r := range tr.Clients(j) {
			if r < cfg.ReqMin || r > cfg.ReqMax {
				t.Fatalf("redrawn request %d out of range", r)
			}
		}
	}
}

func TestRedrawRequestsChangesSomething(t *testing.T) {
	cfg := FatConfig(80)
	tr := MustGenerate(cfg, rng.New(11))
	before := tr.TotalRequests()
	changed := false
	for trial := 0; trial < 5 && !changed; trial++ {
		RedrawRequests(tr, cfg, rng.Derive(50, trial))
		changed = tr.TotalRequests() != before
	}
	if !changed {
		t.Fatal("5 redraws never changed total requests")
	}
}

func TestRandomReplicas(t *testing.T) {
	tr := MustGenerate(FatConfig(60), rng.New(2))
	r, err := RandomReplicas(tr, 15, 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 15 {
		t.Fatalf("Count = %d, want 15", r.Count())
	}
	modes := map[uint8]int{}
	for _, j := range r.Nodes() {
		modes[r.Mode(j)]++
	}
	for m := range modes {
		if m < 1 || m > 2 {
			t.Fatalf("mode %d out of range", m)
		}
	}
	// Single-mode draws always use mode 1.
	r1, err := RandomReplicas(tr, 10, 1, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range r1.Nodes() {
		if r1.Mode(j) != 1 {
			t.Fatalf("single-mode draw used mode %d", r1.Mode(j))
		}
	}
}

func TestRandomReplicasErrors(t *testing.T) {
	tr := MustGenerate(FatConfig(10), rng.New(2))
	if _, err := RandomReplicas(tr, 11, 1, rng.New(1)); err == nil {
		t.Error("count > N accepted")
	}
	if _, err := RandomReplicas(tr, -1, 1, rng.New(1)); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := RandomReplicas(tr, 1, 0, rng.New(1)); err == nil {
		t.Error("zero modes accepted")
	}
	if r, err := RandomReplicas(tr, 0, 1, rng.New(1)); err != nil || r.Count() != 0 {
		t.Errorf("zero count: %v, %v", r, err)
	}
}
