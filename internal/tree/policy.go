package tree

import "fmt"

// Policy selects the access policy that decides which replica servers
// may serve a client's requests, following Benoit, Rehn & Robert,
// "Strategies for Replica Placement in Tree Networks" (arXiv
// cs/0611034):
//
//   - Closest — every request is served by the first equipped node on
//     the path from its client toward the root. Routing is fully
//     determined by the placement; capacities only decide validity.
//     This is the policy of the IPPS 2011 power paper and the default
//     everywhere in this repository.
//   - Upwards — each client is served by exactly one equipped node on
//     its path to the root, but not necessarily the closest one: a
//     request may bypass an overloaded server and be absorbed higher
//     up. A client's requests stay together (no splitting). Deciding
//     feasibility of a fixed placement is NP-complete under Upwards
//     (it embeds bin packing on the root path), so the flow engine
//     certifies feasibility with a deterministic best-fit-decreasing
//     pass that is sound but may miss feasible instances; the core
//     package's brute-force search is the exact reference on small
//     trees.
//   - Multiple — a client's requests may be split between several
//     equipped nodes on its path to the root. The engine's bottom-up
//     saturating pass is an exact feasibility test for this policy
//     (absorbing as low as possible is never worse, because a deeper
//     server can only serve a subset of the clients a higher one can).
//
// Feasible placements nest: any Closest-valid placement is
// Upwards-valid, and any Upwards-valid placement is Multiple-valid.
type Policy uint8

const (
	// PolicyClosest is the paper's closest service policy (default).
	PolicyClosest Policy = iota
	// PolicyUpwards allows a request to bypass equipped ancestors, but
	// each client is served by a single server.
	PolicyUpwards
	// PolicyMultiple allows a client's requests to be split between
	// several servers on its path to the root.
	PolicyMultiple

	numPolicies
)

// Policies lists every access policy in increasing order of permissiveness.
func Policies() []Policy {
	return []Policy{PolicyClosest, PolicyUpwards, PolicyMultiple}
}

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool { return p < numPolicies }

// String implements fmt.Stringer with the paper's policy names.
func (p Policy) String() string {
	switch p {
	case PolicyClosest:
		return "closest"
	case PolicyUpwards:
		return "upwards"
	case PolicyMultiple:
		return "multiple"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy converts a policy name ("closest", "upwards", "multiple")
// to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "closest":
		return PolicyClosest, nil
	case "upwards":
		return PolicyUpwards, nil
	case "multiple":
		return PolicyMultiple, nil
	default:
		return 0, fmt.Errorf("tree: unknown access policy %q (want closest, upwards or multiple)", s)
	}
}
