package tree

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// chainTree builds root -> 1 -> 2 -> ... -> depth with one client of
// demand d at the deepest node.
func qosChainTree(depth, d int) *Tree {
	b := NewBuilder()
	node := b.Root()
	for i := 0; i < depth; i++ {
		node = b.AddNode(node)
	}
	b.AddClient(node, d)
	return b.MustBuild()
}

func TestConstraintsAccessors(t *testing.T) {
	tr := qosChainTree(2, 5)
	c := NewConstraints(tr)
	if c.Bounded() {
		t.Fatal("fresh constraints should be unbounded")
	}
	c.SetQoS(2, 0, 3)
	if got := c.QoS(2, 0); got != 3 {
		t.Fatalf("QoS = %d, want 3", got)
	}
	if got := c.QoS(2, 5); got != 0 {
		t.Fatalf("QoS of unknown client = %d, want 0", got)
	}
	c.SetBandwidth(1, 7)
	if got := c.Bandwidth(1); got != 7 {
		t.Fatalf("Bandwidth = %d, want 7", got)
	}
	if got := c.Bandwidth(0); got != NoBandwidthLimit {
		t.Fatalf("root bandwidth = %d, want unbounded", got)
	}
	if !c.Bounded() {
		t.Fatal("constraints should report bounded")
	}
	clone := c.Clone()
	clone.SetQoS(2, 0, 9)
	if c.QoS(2, 0) != 3 {
		t.Fatal("Clone aliases the original")
	}
	if (*Constraints)(nil).Bounded() {
		t.Fatal("nil constraints should be unbounded")
	}
	if err := (*Constraints)(nil).Validate(tr); err != nil {
		t.Fatalf("nil constraints invalid: %v", err)
	}
}

func TestConstraintsValidateShapes(t *testing.T) {
	tr := qosChainTree(2, 5)
	other := qosChainTree(3, 5)
	c := NewConstraints(tr)
	if err := c.Validate(other); err == nil {
		t.Fatal("size mismatch accepted")
	}
	// More QoS bounds than clients at a node.
	c.SetQoS(1, 0, 2) // node 1 has no clients
	if err := c.Validate(tr); err == nil {
		t.Fatal("excess client bounds accepted")
	}
}

// TestClosestConstrainedValidate exercises the three violation families
// on a chain where the only server is the root.
func TestClosestConstrainedValidate(t *testing.T) {
	tr := qosChainTree(2, 5) // client at node 2, depth 2; server at root = 3 hops
	r := ReplicasOf(tr)
	r.Set(tr.Root(), 1)

	c := NewConstraints(tr)
	if err := ValidateConstrained(tr, r, PolicyClosest, 10, c); err != nil {
		t.Fatalf("unbounded constraints rejected a valid placement: %v", err)
	}

	c.SetQoS(2, 0, 2)
	err := ValidateConstrained(tr, r, PolicyClosest, 10, c)
	var qe *QoSError
	if !errors.As(err, &qe) {
		t.Fatalf("error = %v, want QoSError", err)
	}
	if qe.Node != 2 || qe.Server != 0 || qe.Dist != 3 || qe.Limit != 2 {
		t.Fatalf("QoSError = %+v", qe)
	}
	// A replica within range fixes it.
	r2 := r.Clone()
	r2.Set(1, 1)
	if err := ValidateConstrained(tr, r2, PolicyClosest, 10, c); err != nil {
		t.Fatalf("in-range placement rejected: %v", err)
	}

	c2 := NewConstraints(tr)
	c2.SetBandwidth(1, 4) // 5 requests must cross link 1->0
	err = ValidateConstrained(tr, r, PolicyClosest, 10, c2)
	var be *BandwidthError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v, want BandwidthError", err)
	}
	if be.Node != 1 || be.Flow != 5 || be.Cap != 4 {
		t.Fatalf("BandwidthError = %+v", be)
	}

	// Capacity violations still surface.
	if err := ValidateConstrained(tr, r, PolicyClosest, 4, NewConstraints(tr)); err == nil {
		t.Fatal("overloaded server accepted")
	}
}

// TestRelaxedConstrainedEval checks that under the relaxed policies
// QoS-expired and bandwidth-cut requests surface as Unserved.
func TestRelaxedConstrainedEval(t *testing.T) {
	tr := qosChainTree(2, 5)
	r := ReplicasOf(tr)
	r.Set(tr.Root(), 1)
	for _, p := range []Policy{PolicyUpwards, PolicyMultiple} {
		c := NewConstraints(tr)
		c.SetQoS(2, 0, 2) // the root is out of range
		if res := NewEngine(tr).EvalUniformConstrained(r, p, 10, c); res.Unserved != 5 {
			t.Fatalf("%v: Unserved = %d, want 5 (QoS expiry)", p, res.Unserved)
		}
		c2 := NewConstraints(tr)
		c2.SetBandwidth(2, 3) // only 3 of 5 requests may leave node 2
		res := NewEngine(tr).EvalUniformConstrained(r, p, 10, c2)
		switch p {
		case PolicyMultiple:
			// Splittable: 3 cross and are served, 2 are cut.
			if res.Unserved != 2 || res.Loads[0] != 3 {
				t.Fatalf("multiple: Unserved = %d, root load = %d, want 2 and 3", res.Unserved, res.Loads[0])
			}
		case PolicyUpwards:
			// The whole client cannot cross.
			if res.Unserved != 5 {
				t.Fatalf("upwards: Unserved = %d, want 5", res.Unserved)
			}
		}
	}
}

// TestMultipleConstrainedDeadlines checks the deadline-aware absorb
// order: a server shared by a tight and a loose demand must spend its
// capacity on the tight one.
func TestMultipleConstrainedDeadlines(t *testing.T) {
	// root(0) - 1 - 2; clients: node 2 demand 4 with qos 2 (must be
	// served at depth >= 1), node 2 demand 4 unbounded. Servers at 1
	// (cap 4) and root (cap 4).
	b := NewBuilder()
	n1 := b.AddNode(b.Root())
	n2 := b.AddNode(n1)
	b.AddClient(n2, 4)
	b.AddClient(n2, 4)
	tr := b.MustBuild()
	c := NewConstraints(tr)
	c.SetQoS(n2, 0, 2)
	r := ReplicasOf(tr)
	r.Set(n1, 1)
	r.Set(tr.Root(), 1)
	res := NewEngine(tr).EvalUniformConstrained(r, PolicyMultiple, 4, c)
	if res.Unserved != 0 {
		t.Fatalf("Unserved = %d, want 0 (tight demand must be absorbed at node 1)", res.Unserved)
	}
	if res.Loads[n1] != 4 || res.Loads[tr.Root()] != 4 {
		t.Fatalf("loads = %v, want 4 at both servers", res.Loads)
	}
}

// randomPlacementTree draws a small random tree, constraints and
// placement for the containment property.
func randomPlacementTree(rng *rand.Rand) (*Tree, *Constraints, *Replicas) {
	n := 2 + rng.Intn(9)
	b := NewBuilder()
	nodes := []int{b.Root()}
	for len(nodes) < n {
		p := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, b.AddNode(p))
	}
	for _, j := range nodes {
		for k := rng.Intn(3); k > 0; k-- {
			b.AddClient(j, rng.Intn(5))
		}
	}
	tr := b.MustBuild()
	c := NewConstraints(tr)
	for j := 0; j < tr.N(); j++ {
		for k := range tr.Clients(j) {
			if rng.Intn(2) == 0 {
				c.SetQoS(j, k, 1+rng.Intn(4))
			}
		}
		if j > 0 && rng.Intn(2) == 0 {
			c.SetBandwidth(j, rng.Intn(10))
		}
	}
	r := ReplicasOf(tr)
	for j := 0; j < tr.N(); j++ {
		if rng.Intn(2) == 0 {
			r.Set(j, 1)
		}
	}
	return tr, c, r
}

// TestConstrainedContainment is the randomized containment property:
// a placement the constrained validation accepts is also accepted
// without constraints, and the constrained evaluation never serves more
// than the unconstrained one. The check covers the exact passes
// (Closest and Multiple); the Upwards certifier is a heuristic whose
// assignment order differs between the two variants, so its containment
// is established against the exact references in the core package's
// TestBruteFeasibleConstrainedContainment instead.
func TestConstrainedContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1500; trial++ {
		tr, c, r := randomPlacementTree(rng)
		W := 1 + rng.Intn(10)
		eng := NewEngine(tr)
		for _, p := range []Policy{PolicyClosest, PolicyMultiple} {
			conErr := eng.ValidateUniformConstrained(r, p, W, c)
			unErr := eng.ValidateUniform(r, p, W)
			if conErr == nil && unErr != nil {
				t.Fatalf("trial %d policy %v: constrained-valid but unconstrained-invalid (%v)\ntree %v placement %v",
					trial, p, unErr, tr, r)
			}
			if p == PolicyClosest {
				continue // forced routing: loads identical by definition
			}
			conRes := eng.EvalUniformConstrained(r, p, W, c)
			conServed := 0
			for _, l := range conRes.Loads {
				conServed += l
			}
			unRes := eng.EvalUniform(r, p, W)
			unServed := 0
			for _, l := range unRes.Loads {
				unServed += l
			}
			if conServed > unServed {
				t.Fatalf("trial %d policy %v: constraints increased served requests (%d > %d)",
					trial, p, conServed, unServed)
			}
		}
	}
}

// TestEvalConstrainedNilMatchesEval checks the nil-constraints and
// all-unbounded-constraints paths agree with the plain evaluation.
func TestEvalConstrainedNilMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		tr, _, r := randomPlacementTree(rng)
		W := 1 + rng.Intn(10)
		eng := NewEngine(tr)
		unbounded := NewConstraints(tr)
		for _, p := range Policies() {
			plain := eng.EvalUniform(r, p, W)
			pu, pl := plain.Unserved, append([]int(nil), plain.Loads...)
			if res := eng.EvalUniformConstrained(r, p, W, nil); res.Unserved != pu {
				t.Fatalf("policy %v: nil constraints changed Unserved (%d != %d)", p, res.Unserved, pu)
			}
			res := eng.EvalUniformConstrained(r, p, W, unbounded)
			if res.Unserved != pu {
				t.Fatalf("policy %v: unbounded constraints changed Unserved (%d != %d)", p, res.Unserved, pu)
			}
			if p != PolicyUpwards { // upwards may pick a different but equal-sum assignment
				for j := range pl {
					if res.Loads[j] != pl[j] {
						t.Fatalf("policy %v: unbounded constraints changed loads (%v != %v)", p, res.Loads, pl)
					}
				}
			}
		}
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	tr := qosChainTree(2, 5)
	c := NewConstraints(tr)
	c.SetQoS(2, 0, 3)
	c.SetBandwidth(1, 8)

	var buf bytes.Buffer
	if err := WriteInstanceJSON(&buf, tr, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"qos"`) || !strings.Contains(buf.String(), `"bandwidth"`) {
		t.Fatalf("instance JSON lacks constraint fields:\n%s", buf.String())
	}
	t2, c2, err := ReadInstanceJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if t2.N() != tr.N() {
		t.Fatalf("round-tripped tree has %d nodes, want %d", t2.N(), tr.N())
	}
	if c2 == nil || c2.QoS(2, 0) != 3 || c2.Bandwidth(1) != 8 {
		t.Fatalf("round-tripped constraints = %+v", c2)
	}

	// Instance files still decode as plain trees.
	t3, err := ReadTreeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if t3.N() != tr.N() {
		t.Fatalf("plain decode has %d nodes, want %d", t3.N(), tr.N())
	}

	// A plain tree file reads as an unconstrained instance.
	buf.Reset()
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	_, c4, err := ReadInstanceJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if c4 != nil {
		t.Fatalf("plain tree decoded with constraints %+v", c4)
	}
}

// TestConstraintsReset pins the pooled-solver rebind: Reset must return
// the set to all-unbounded for the new tree, reusing storage, and count
// as a mutation for generation-tracking solvers.
func TestConstraintsReset(t *testing.T) {
	b := NewBuilder()
	n1 := b.AddNode(b.Root())
	b.AddClient(n1, 3)
	b.AddClient(b.Root(), 2)
	tr := b.MustBuild()

	c := NewConstraints(tr)
	c.SetUniformQoS(tr, 3)
	c.SetUniformBandwidth(7)
	gen := c.Generation()

	b2 := NewBuilder()
	n2 := b2.AddNode(b2.Root())
	b2.AddClient(n2, 5)
	tr2 := b2.MustBuild()
	c.Reset(tr2)
	if c.N() != tr2.N() {
		t.Fatalf("reset constraints cover %d nodes, tree has %d", c.N(), tr2.N())
	}
	if c.Bounded() {
		t.Fatal("reset constraints still bounded")
	}
	if q := c.QoS(n2, 0); q != 0 {
		t.Fatalf("reset QoS bound %d, want unbounded", q)
	}
	if bw := c.Bandwidth(n2); bw != NoBandwidthLimit {
		t.Fatalf("reset bandwidth %d, want unlimited", bw)
	}
	if c.Generation() == gen {
		t.Fatal("Reset did not advance the generation")
	}
	if err := c.Validate(tr2); err != nil {
		t.Fatalf("reset constraints invalid: %v", err)
	}
	// The reset set accepts fresh bounds for the new tree.
	c.SetUniformQoS(tr2, 2)
	if q := c.QoS(n2, 0); q != 2 {
		t.Fatalf("post-reset QoS bound %d, want 2", q)
	}
}
