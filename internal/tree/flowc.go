package tree

import "fmt"

// This file extends the flow engine with QoS (distance) and bandwidth
// constraints (arXiv 0706.3350). Every pass reuses the engine's
// preallocated scratch, so constrained evaluations stay allocation-free
// once the pending-demand buffers have grown to their working size.
//
// Semantics per policy:
//
//   - Closest: routing is fully determined by the placement, so
//     EvalConstrained equals Eval; ValidateConstrained additionally
//     reports the first QoS violation (a client served beyond its hop
//     bound) or link overflow (more requests crossing a link than its
//     bandwidth).
//   - Multiple: the bottom-up pass becomes deadline-aware. Each pending
//     demand carries the minimal server depth its QoS allows; equipped
//     nodes absorb the tightest demands first, demands expire (become
//     unserved) once they would have to climb above their allowed
//     depth, and when a link's bandwidth is exceeded the tightest
//     demands are cut first (the loosest have the most chances above).
//     The same exchange argument as the unconstrained pass makes this
//     an exact feasibility test: the ancestors able to serve a pending
//     demand always form a chain, nested by the demand's depth bound
//     (cross-checked against an exhaustive unit-level search in the
//     core package's tests).
//   - Upwards: the best-fit-decreasing certifier serves demands that
//     would expire at the current node first, then the rest; expiry and
//     bandwidth cuts work as under Multiple but on whole clients. As in
//     the unconstrained case the pass is sound (a zero Unserved proves
//     the placement valid) but may over-reject; the core package's
//     exhaustive search is the exact reference.

// QoSError reports a client served beyond its QoS bound under the
// closest policy.
type QoSError struct {
	Node   int // node the client is attached to
	Client int // index within Tree.Clients(Node)
	Server int // node that serves the client
	Dist   int // hops between client and server (client edge included)
	Limit  int // the violated QoS bound
}

func (e *QoSError) Error() string {
	return fmt.Sprintf("tree: client %d of node %d is served by node %d at distance %d > QoS %d",
		e.Client, e.Node, e.Server, e.Dist, e.Limit)
}

// BandwidthError reports a link carrying more requests than its
// bandwidth under the closest policy.
type BandwidthError struct {
	Node int // the link is Node -> parent(Node)
	Flow int // requests crossing the link
	Cap  int // the violated bandwidth
}

func (e *BandwidthError) Error() string {
	return fmt.Sprintf("tree: link %d->parent carries %d requests, bandwidth %d", e.Node, e.Flow, e.Cap)
}

// EvalConstrained evaluates replica set r under policy p with QoS and
// bandwidth constraints c. A nil c is Eval. Under PolicyClosest the
// routing is forced by the placement, so constraints cannot change the
// result and EvalConstrained equals Eval (ValidateConstrained reports
// the violations); under PolicyUpwards and PolicyMultiple requests that
// cannot reach any server within their QoS bound or across a saturated
// link count into Unserved and loads respect both capacities and
// constraints. Like Eval, it panics on a replica set of the wrong size
// or a missing capOf for the relaxed policies; the replicatree facade
// wraps it with error-returning guards for untrusted input.
func (e *Engine) EvalConstrained(r *Replicas, p Policy, capOf CapOf, c *Constraints) Result {
	if c == nil {
		return e.Eval(r, p, capOf)
	}
	if r.N() != e.t.N() {
		panic(fmt.Sprintf("tree: flow evaluation with replica set of size %d on tree of size %d", r.N(), e.t.N()))
	}
	switch p {
	case PolicyClosest:
		return e.evalClosest(r)
	case PolicyUpwards:
		if capOf == nil {
			panic("tree: EvalConstrained under the upwards policy needs capacities")
		}
		return e.evalUpwardsConstrained(r, capOf, c)
	case PolicyMultiple:
		if capOf == nil {
			panic("tree: EvalConstrained under the multiple policy needs capacities")
		}
		return e.evalMultipleConstrained(r, capOf, c)
	default:
		panic(fmt.Sprintf("tree: EvalConstrained with unknown policy %d", uint8(p)))
	}
}

// EvalUniformConstrained is EvalConstrained with a single capacity W.
func (e *Engine) EvalUniformConstrained(r *Replicas, p Policy, W int, c *Constraints) Result {
	if c == nil {
		return e.EvalUniform(r, p, W)
	}
	if p == PolicyClosest {
		return e.EvalConstrained(r, p, nil, c)
	}
	e.w = W
	return e.EvalConstrained(r, p, e.uniform, c)
}

// ValidateConstrained checks that r serves every client under policy p
// within capacities, QoS bounds and link bandwidths. A nil c is
// Validate. Under PolicyClosest the forced routing is checked against
// all three constraint families; under the relaxed policies the
// constrained evaluation already routes within the constraints, so only
// unserved requests remain to report (conservatively for Upwards — see
// Policy).
func (e *Engine) ValidateConstrained(r *Replicas, p Policy, capOf CapOf, c *Constraints) error {
	if c == nil {
		return e.Validate(r, p, capOf)
	}
	res := e.EvalConstrained(r, p, capOf, c)
	if res.Unserved > 0 {
		return &CapacityError{Node: -1, Load: res.Unserved, Policy: p}
	}
	if p != PolicyClosest {
		return nil
	}
	t := e.t
	for j, l := range res.Loads {
		if !r.Has(j) {
			continue
		}
		if cp := capOf(r.Mode(j)); l > cp {
			return &CapacityError{Node: j, Load: l, Cap: cp, Policy: p}
		}
	}
	e.fillServingDepths(r)
	for j := 0; j < t.N(); j++ {
		for k, d := range t.Clients(j) {
			if d == 0 {
				continue
			}
			q := c.QoS(j, k)
			if q <= 0 {
				continue
			}
			// Unserved == 0, so every demand-carrying node has a server.
			if dist := t.depth[j] - e.srv[j] + 1; dist > q {
				server := j
				for !r.Has(server) {
					server = t.parent[server]
				}
				return &QoSError{Node: j, Client: k, Server: server, Dist: dist, Limit: q}
			}
		}
	}
	for j := 1; j < t.N(); j++ {
		if bw := c.Bandwidth(j); bw >= 0 && e.up[j] > bw {
			return &BandwidthError{Node: j, Flow: e.up[j], Cap: bw}
		}
	}
	return nil
}

// ClosestRouting evaluates the forced closest routing of r: up[j] is
// the flow crossing the link j -> parent(j) and servingDepth[j] is the
// depth of the node serving j's clients (-1 when no equipped node
// covers j). It is the single source of truth for closest routing that
// constraint accounting builds on (the simulator's SLA tallies, the
// engine's own constrained validation). Both slices alias engine
// scratch and are only valid until the next evaluation.
func (e *Engine) ClosestRouting(r *Replicas) (up, servingDepth []int) {
	if r.N() != e.t.N() {
		panic(fmt.Sprintf("tree: routing with replica set of size %d on tree of size %d", r.N(), e.t.N()))
	}
	e.evalClosest(r)
	e.fillServingDepths(r)
	return e.up, e.srv
}

// fillServingDepths computes the serving depth of every node into the
// srv scratch, top-down (post order reversed visits parents before
// children).
func (e *Engine) fillServingDepths(r *Replicas) {
	t := e.t
	post := t.post
	for i := len(post) - 1; i >= 0; i-- {
		j := post[i]
		switch {
		case r.Has(j):
			e.srv[j] = t.depth[j]
		case j == t.Root():
			e.srv[j] = -1
		default:
			e.srv[j] = e.srv[t.parent[j]]
		}
	}
}

// ValidateUniformConstrained is ValidateConstrained with a single
// capacity W for every mode.
func (e *Engine) ValidateUniformConstrained(r *Replicas, p Policy, W int, c *Constraints) error {
	e.w = W
	return e.ValidateConstrained(r, p, e.uniform, c)
}

// pushClients appends the positive demands of node j (at depth d) with
// their minimal server depths to the pending stack.
func (e *Engine) pushClients(j, d int, c *Constraints) {
	for k, dem := range e.t.Clients(j) {
		if dem > 0 {
			e.pend = append(e.pend, dem)
			e.pendL = append(e.pendL, c.MinServerDepth(j, k, d))
		}
	}
}

// sortSegByBoundDesc orders pend/pendL[base:] by depth bound descending
// (tightest deadline first), ties by larger demand. Insertion sort: the
// segments are small, nearly sorted after compaction, and sorting in
// place keeps the pass allocation-free.
func (e *Engine) sortSegByBoundDesc(base int) {
	for i := base + 1; i < len(e.pend); i++ {
		d, l := e.pend[i], e.pendL[i]
		k := i - 1
		for k >= base && (e.pendL[k] < l || (e.pendL[k] == l && e.pend[k] < d)) {
			e.pend[k+1], e.pendL[k+1] = e.pend[k], e.pendL[k]
			k--
		}
		e.pend[k+1], e.pendL[k+1] = d, l
	}
}

// compactSeg removes pending entries whose demand was zeroed or marked
// absorbed (negative), preserving order.
func (e *Engine) compactSeg(base int) {
	w := base
	for i := base; i < len(e.pend); i++ {
		if e.pend[i] > 0 {
			e.pend[w], e.pendL[w] = e.pend[i], e.pendL[i]
			w++
		}
	}
	e.pend = e.pend[:w]
	e.pendL = e.pendL[:w]
}

// evalMultipleConstrained routes splittable flows under QoS and
// bandwidth constraints; see the file comment for why the
// tightest-first / cut-tightest rules keep the pass exact.
func (e *Engine) evalMultipleConstrained(r *Replicas, capOf CapOf, c *Constraints) Result {
	t := e.t
	e.pend = e.pend[:0]
	e.pendL = e.pendL[:0]
	unserved := 0
	for i, j := range t.post {
		e.pendBase[i] = len(e.pend)
		e.pushClients(j, t.depth[j], c)
		base := e.pendBase[i-e.size[j]+1]
		e.loads[j] = 0
		if r.Has(j) {
			if cp := capOf(r.Mode(j)); cp > 0 {
				e.sortSegByBoundDesc(base)
				for k := base; k < len(e.pend) && cp > 0; k++ {
					take := min(e.pend[k], cp)
					e.pend[k] -= take
					cp -= take
					e.loads[j] += take
				}
				e.compactSeg(base)
			}
		}
		if j == t.Root() {
			continue // whatever remains past the root is counted below
		}
		pd := t.depth[t.parent[j]]
		total := 0
		for k := base; k < len(e.pend); k++ {
			if e.pendL[k] > pd {
				unserved += e.pend[k]
				e.pend[k] = 0
			} else {
				total += e.pend[k]
			}
		}
		if bw := c.Bandwidth(j); bw >= 0 && total > bw {
			// Cut the tightest demands first: the loosest are servable
			// wherever a tighter one is, and higher still.
			e.sortSegByBoundDesc(base)
			excess := total - bw
			for k := base; k < len(e.pend) && excess > 0; k++ {
				take := min(e.pend[k], excess)
				e.pend[k] -= take
				excess -= take
				unserved += take
			}
		}
		e.compactSeg(base)
	}
	for _, d := range e.pend {
		unserved += d
	}
	return Result{Policy: PolicyMultiple, Loads: e.loads, Unserved: unserved}
}

// evalUpwardsConstrained assigns whole clients to servers under QoS and
// bandwidth constraints: a sound certifier like the unconstrained pass
// (see Policy), serving must-expire demands first at every server.
func (e *Engine) evalUpwardsConstrained(r *Replicas, capOf CapOf, c *Constraints) Result {
	t := e.t
	e.pend = e.pend[:0]
	e.pendL = e.pendL[:0]
	unserved := 0
	for i, j := range t.post {
		e.pendBase[i] = len(e.pend)
		e.pushClients(j, t.depth[j], c)
		base := e.pendBase[i-e.size[j]+1]
		e.loads[j] = 0
		pd := -1 // past the root nothing survives
		if j != t.Root() {
			pd = t.depth[t.parent[j]]
		}
		if r.Has(j) {
			// Tightest bounds (the demands that expire soonest) first,
			// larger demands first within a bound: best-fit-decreasing
			// per deadline class.
			e.sortSegByBoundDesc(base)
			load, cp := 0, capOf(r.Mode(j))
			for k := base; k < len(e.pend); k++ {
				if d := e.pend[k]; load+d <= cp {
					load += d
					e.pend[k] = -1 // absorbed; compacted below
				}
			}
			e.loads[j] = load
			e.compactSeg(base)
		}
		total := 0
		for k := base; k < len(e.pend); k++ {
			if e.pendL[k] > pd {
				unserved += e.pend[k]
				e.pend[k] = 0
			} else {
				total += e.pend[k]
			}
		}
		if bw := c.Bandwidth(j); j != t.Root() && bw >= 0 && total > bw {
			// Forward the loosest demands first (most chances above);
			// whole clients cannot split, so the greedy prefix that
			// fits the link crosses and the rest is dropped.
			e.sortSegByBoundDesc(base)
			room := bw
			for k := len(e.pend) - 1; k >= base; k-- { // loosest at the tail
				if e.pend[k] <= 0 {
					continue
				}
				if e.pend[k] <= room {
					room -= e.pend[k]
				} else {
					unserved += e.pend[k]
					e.pend[k] = 0
				}
			}
		}
		e.compactSeg(base)
	}
	for _, d := range e.pend {
		unserved += d
	}
	return Result{Policy: PolicyUpwards, Loads: e.loads, Unserved: unserved}
}

// FlowsConstrained evaluates a replica set under policy p with a single
// capacity W and constraints c, constructing a throwaway engine (hold a
// NewEngine to evaluate many sets on one tree).
func FlowsConstrained(t *Tree, r *Replicas, p Policy, W int, c *Constraints) (loads []int, unserved int) {
	res := NewEngine(t).EvalUniformConstrained(r, p, W, c)
	return res.Loads, res.Unserved
}

// ValidateConstrained checks a single-capacity solution under policy p
// with constraints c. See Engine.ValidateConstrained.
func ValidateConstrained(t *Tree, r *Replicas, p Policy, W int, c *Constraints) error {
	return NewEngine(t).ValidateUniformConstrained(r, p, W, c)
}
