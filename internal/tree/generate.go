package tree

import (
	"fmt"

	"replicatree/internal/rng"
)

// GenConfig parameterises the random tree generator used throughout the
// paper's evaluation (Section 5): internal nodes are created breadth
// first, each drawing a number of internal children uniformly from
// [MinChildren, MaxChildren] until Nodes nodes exist; each internal node
// independently receives one client with probability ClientProb, issuing
// a request count uniform in [ReqMin, ReqMax].
type GenConfig struct {
	Nodes       int
	MinChildren int
	MaxChildren int
	ClientProb  float64
	ReqMin      int
	ReqMax      int
	// EnsureClient attaches one client to a random node when the
	// probabilistic attachment produced none, so generated instances
	// are never trivially empty.
	EnsureClient bool
}

// FatConfig is the paper's Experiment 1/2 workload: trees whose internal
// nodes have between 6 and 9 children ("fat" trees), one client per node
// with probability 0.5 issuing 1-6 requests.
func FatConfig(nodes int) GenConfig {
	return GenConfig{
		Nodes:        nodes,
		MinChildren:  6,
		MaxChildren:  9,
		ClientProb:   0.5,
		ReqMin:       1,
		ReqMax:       6,
		EnsureClient: true,
	}
}

// HighConfig is the paper's "high trees" variant (Figures 6, 7 and 10):
// internal nodes have between 2 and 4 children.
func HighConfig(nodes int) GenConfig {
	c := FatConfig(nodes)
	c.MinChildren = 2
	c.MaxChildren = 4
	return c
}

// PowerConfig is the paper's Experiment 3 workload: 50-node trees with
// clients issuing 1-5 requests, "so that a solution with replicas in the
// first mode (W1 = 5) can always be found".
func PowerConfig(nodes int) GenConfig {
	c := FatConfig(nodes)
	c.ReqMin, c.ReqMax = 1, 5
	return c
}

// ScalePreset is the mega-tree workload of the BenchmarkScale tier:
// fat trees (6-9 children per internal node, as in Experiment 1) but
// with sparse demand — each node receives one client with probability
// 0.1 issuing 1-6 requests — sized far beyond the paper's experiments
// (10^4-10^6 nodes) to exercise the CSR layout and the
// subtree-parallel DP. Generation is O(N) in time and memory.
func ScalePreset(nodes int) GenConfig {
	return GenConfig{
		Nodes:        nodes,
		MinChildren:  6,
		MaxChildren:  9,
		ClientProb:   0.1,
		ReqMin:       1,
		ReqMax:       6,
		EnsureClient: true,
	}
}

func (c GenConfig) validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("tree: GenConfig.Nodes = %d, need >= 1", c.Nodes)
	case c.MinChildren < 1 || c.MaxChildren < c.MinChildren:
		return fmt.Errorf("tree: GenConfig children range [%d,%d] invalid", c.MinChildren, c.MaxChildren)
	case c.ClientProb < 0 || c.ClientProb > 1:
		return fmt.Errorf("tree: GenConfig.ClientProb = %v out of [0,1]", c.ClientProb)
	case c.ReqMin < 0 || c.ReqMax < c.ReqMin:
		return fmt.Errorf("tree: GenConfig request range [%d,%d] invalid", c.ReqMin, c.ReqMax)
	}
	return nil
}

// Generate draws a random tree from cfg using src. The same (cfg, seed)
// pair always produces the same tree.
func Generate(cfg GenConfig, src *rng.Source) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parent := make([]int, 1, cfg.Nodes)
	parent[0] = -1
	// Frontier of nodes that have not drawn their children yet,
	// consumed in creation order (breadth-first shape).
	for frontier := 0; frontier < len(parent) && len(parent) < cfg.Nodes; frontier++ {
		k := src.Between(cfg.MinChildren, cfg.MaxChildren)
		for i := 0; i < k && len(parent) < cfg.Nodes; i++ {
			parent = append(parent, frontier)
		}
	}
	// Clients are emitted directly in flat CSR form: at mega scale a
	// per-node [][]int would cost one small allocation per client.
	n := len(parent)
	clientStart := make([]int32, n+1)
	clientReqs := make([]int, 0, n/4)
	total := 0
	for j := 0; j < n; j++ {
		clientStart[j] = int32(len(clientReqs))
		if src.Bool(cfg.ClientProb) {
			r := src.Between(cfg.ReqMin, cfg.ReqMax)
			clientReqs = append(clientReqs, r)
			total += r
		}
	}
	clientStart[n] = int32(len(clientReqs))
	if cfg.EnsureClient && total == 0 {
		// Replace node j's (empty or all-zero) client list with the one
		// ensured client, splicing the flat arrays. Rare path: it only
		// triggers when the probabilistic attachment drew no demand.
		j := src.IntN(n)
		r := src.Between(max(cfg.ReqMin, 1), max(cfg.ReqMax, 1))
		lo, hi := clientStart[j], clientStart[j+1]
		tail := append([]int(nil), clientReqs[hi:]...)
		clientReqs = append(append(clientReqs[:lo], r), tail...)
		delta := int32(1) - (hi - lo)
		for k := j + 1; k <= n; k++ {
			clientStart[k] += delta
		}
	}
	rb := &rawBuilder{parent: parent, clientStart: clientStart, clientReqs: clientReqs}
	return rb.finish()
}

// MustGenerate is Generate for callers with a statically valid config.
func MustGenerate(cfg GenConfig, src *rng.Source) *Tree {
	t, err := Generate(cfg, src)
	if err != nil {
		panic(err)
	}
	return t
}

// RedrawRequests re-draws the request count of every existing client
// uniformly in [cfg.ReqMin, cfg.ReqMax], keeping the set of clients
// fixed. This is the per-step mutation of the paper's Experiment 2
// ("we update the number of requests per client"). Mutations go through
// SetDemand, so only nodes whose demand actually changed advance their
// generation and dirty the incremental solvers' caches.
func RedrawRequests(t *Tree, cfg GenConfig, src *rng.Source) {
	for j := 0; j < t.N(); j++ {
		for i := range t.Clients(j) {
			t.SetDemand(j, i, src.Between(cfg.ReqMin, cfg.ReqMax))
		}
	}
}

// DriftRequests re-draws each client's demand independently with
// probability prob (uniformly in [cfg.ReqMin, cfg.ReqMax]), returning
// the number of demands that actually changed. With prob = 1 it is
// RedrawRequests; smaller probabilities model the gentle per-step drift
// of the Section 6 update-interval study, where incremental re-solves
// touch only the dirty ancestor chains.
func DriftRequests(t *Tree, cfg GenConfig, prob float64, src *rng.Source) int {
	changed := 0
	for j := 0; j < t.N(); j++ {
		for i := range t.Clients(j) {
			if src.Bool(prob) && t.SetDemand(j, i, src.Between(cfg.ReqMin, cfg.ReqMax)) {
				changed++
			}
		}
	}
	return changed
}

// RandomReplicas equips count distinct random nodes, each at a mode drawn
// uniformly from [1, modes]. With modes == 1 this realises the paper's
// Experiment 1 pre-existing server placement; with modes == M it also
// draws the initial operating modes needed by Experiment 3 (the paper
// does not specify them; see DESIGN.md §5).
func RandomReplicas(t *Tree, count, modes int, src *rng.Source) (*Replicas, error) {
	if count < 0 || count > t.N() {
		return nil, fmt.Errorf("tree: RandomReplicas count %d out of [0,%d]", count, t.N())
	}
	if modes < 1 {
		return nil, fmt.Errorf("tree: RandomReplicas modes %d < 1", modes)
	}
	r := ReplicasOf(t)
	for _, j := range src.Sample(t.N(), count) {
		r.Set(j, uint8(1+src.IntN(modes)))
	}
	return r, nil
}
