package tree

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzFromParents feeds arbitrary parent vectors to the topology
// validator: it must never panic, and every accepted tree must have a
// complete post-order and consistent child lists.
func FuzzFromParents(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 1, 1})
	f.Add([]byte{0, 2, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		parents := make([]int, len(raw))
		for i, b := range raw {
			// Map bytes to plausible parent ids, including invalid
			// ones, with node 0 forced to be the root.
			parents[i] = int(b)%(len(raw)+2) - 1
		}
		if len(parents) > 0 {
			parents[0] = -1
		}
		tr, err := FromParents(parents, nil)
		if err != nil {
			return
		}
		if len(tr.PostOrder()) != tr.N() {
			t.Fatalf("post order covers %d of %d nodes", len(tr.PostOrder()), tr.N())
		}
		for j := 0; j < tr.N(); j++ {
			for _, c := range tr.Children(j) {
				if tr.Parent(c) != j {
					t.Fatalf("child list of %d contains %d whose parent is %d", j, c, tr.Parent(c))
				}
			}
		}
	})
}

// FuzzTreeJSON round-trips arbitrary JSON through the tree decoder: no
// panics, and anything accepted must re-encode to an equivalent tree.
func FuzzTreeJSON(f *testing.F) {
	f.Add([]byte(`{"parents": [-1], "clients": [[3]]}`))
	f.Add([]byte(`{"parents": [-1, 0, 0], "clients": [[], [1, 2]]}`))
	f.Add([]byte(`{"parents": [0]}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{"parents": [-1, 0, 1, 2, 3], "clients": [[1000000]]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var tr Tree
		if err := json.Unmarshal(raw, &tr); err != nil {
			return
		}
		out, err := json.Marshal(&tr)
		if err != nil {
			t.Fatalf("accepted tree failed to marshal: %v", err)
		}
		var back Tree
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N() != tr.N() || back.TotalRequests() != tr.TotalRequests() {
			t.Fatalf("round trip changed the tree: %v vs %v", &back, &tr)
		}
	})
}

// FuzzLoadInstance hardens the constrained-instance loader: arbitrary
// bytes through ReadInstanceJSON must error or yield a tree (plus
// optional constraints) that validates and round-trips — never panic.
// This is the full untrusted surface of replicatool's file inputs.
func FuzzLoadInstance(f *testing.F) {
	f.Add([]byte(`{"parents": [-1, 0, 0], "clients": [[2], [7], [4]]}`))
	f.Add([]byte(`{"parents": [-1, 0, 0], "clients": [[2], [7], [4]],
		"qos": [[0], [2], [2]], "bandwidth": [-1, 20, 20]}`))
	f.Add([]byte(`{"parents": [-1, 0], "clients": [[1]], "qos": [[1, 1, 1]]}`))
	f.Add([]byte(`{"parents": [-1, 0], "bandwidth": [5]}`))
	f.Add([]byte(`{"parents": [-1, 1], "clients": []}`))
	f.Add([]byte(`{"parents": [-1], "clients": [[2147483647, 1]]}`))
	f.Add([]byte(`{"parents": [-1], "clients": [[9223372036854775807]]}`))
	f.Add([]byte(`{"parents": [-1], "qos": [[9]], "bandwidth": [-1], "clients": [[]]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, cons, err := ReadInstanceJSON(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if err := cons.Validate(tr); err != nil {
			t.Fatalf("accepted instance fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteInstanceJSON(&buf, tr, cons); err != nil {
			t.Fatalf("accepted instance failed to write: %v", err)
		}
		tr2, cons2, err := ReadInstanceJSON(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if tr2.N() != tr.N() || tr2.TotalRequests() != tr.TotalRequests() {
			t.Fatalf("round trip changed the tree: %v vs %v", tr2, tr)
		}
		// An all-unbounded set writes as a plain tree, so only
		// boundedness survives the round trip, not presence.
		if cons.Bounded() != cons2.Bounded() {
			t.Fatalf("round trip changed constraint boundedness: %v vs %v", cons2, cons)
		}
	})
}

// FuzzReplicasJSON round-trips arbitrary replica-set JSON.
func FuzzReplicasJSON(f *testing.F) {
	f.Add([]byte(`{"modes": [0, 1, 2]}`))
	f.Add([]byte(`{"modes": []}`))
	f.Add([]byte(`{"modes": [300]}`))
	f.Add([]byte(`{"modes": [-1]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var r Replicas
		if err := json.Unmarshal(raw, &r); err != nil {
			return
		}
		out, err := json.Marshal(&r)
		if err != nil {
			t.Fatalf("accepted set failed to marshal: %v", err)
		}
		var back Replicas
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !r.Equal(&back) {
			t.Fatalf("round trip changed the set")
		}
	})
}

// FuzzWriteDOT checks the DOT exporter never panics on odd trees.
func FuzzWriteDOT(f *testing.F) {
	f.Add(uint8(1), uint8(0))
	f.Add(uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, n, equipped uint8) {
		size := int(n)%12 + 1
		parents := make([]int, size)
		parents[0] = -1
		for i := 1; i < size; i++ {
			parents[i] = (i - 1) / 2
		}
		clients := make([][]int, size)
		clients[0] = []int{int(equipped)}
		tr, err := FromParents(parents, clients)
		if err != nil {
			t.Fatal(err)
		}
		r := ReplicasOf(tr)
		if int(equipped) < size {
			r.Set(int(equipped), 1)
		}
		var buf bytes.Buffer
		if err := WriteDOT(&buf, tr, r, r); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("empty DOT output")
		}
	})
}
