package tree

import (
	"bytes"
	"testing"

	"replicatree/internal/rng"
)

// csrTrees builds a spread of instances covering every construction
// path: the generator presets (flat CSR emission), the builder
// (per-node client lists) and FromParents.
func csrTrees(t *testing.T) map[string]*Tree {
	t.Helper()
	b := NewBuilder()
	n1 := b.AddNode(b.Root())
	b.AddNode(b.Root())
	b.AddClient(n1, 3)
	b.AddClient(n1, 1)
	b.AddClient(b.Root(), 2)
	built := b.MustBuild()

	fp, err := FromParents([]int{-1, 0, 0, 1, 1, 2, 5}, [][]int{nil, {2}, nil, {1, 4}, nil, nil, {3}})
	if err != nil {
		t.Fatal(err)
	}

	// JSON round-trip of a generated tree: the decode path rebuilds the
	// CSR arrays from the parent-vector wire format.
	var buf bytes.Buffer
	if err := MustGenerate(FatConfig(150), rng.New(5)).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadTreeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	return map[string]*Tree{
		"fat":     MustGenerate(FatConfig(200), rng.New(1)),
		"high":    MustGenerate(HighConfig(200), rng.New(2)),
		"scale":   MustGenerate(ScalePreset(3000), rng.New(3)),
		"builder": built,
		"parents": fp,
		"json":    rt,
		"single":  MustGenerate(GenConfig{Nodes: 1, MinChildren: 1, MaxChildren: 1, ClientProb: 1, ReqMin: 1, ReqMax: 1}, rng.New(4)),
	}
}

// TestCSRLayoutMatchesReference cross-checks the CSR child and client
// spans against a naive reference derived from the parent vector: same
// lists node by node, contiguous monotone offsets, and accessors that
// alias the shared payload arrays rather than copying.
func TestCSRLayoutMatchesReference(t *testing.T) {
	for name, tr := range csrTrees(t) {
		n := tr.N()

		// Reference children: parent vector order, ascending child id —
		// the documented child order of every construction path.
		ref := make([][]int, n)
		edges := 0
		for j := 1; j < n; j++ {
			p := tr.Parent(j)
			ref[p] = append(ref[p], j)
			edges++
		}
		if got := len(tr.childIDs); got != edges {
			t.Fatalf("%s: child payload has %d entries, want %d", name, got, edges)
		}
		for j := 0; j < n; j++ {
			if tr.childStart[j] > tr.childStart[j+1] {
				t.Fatalf("%s: childStart not monotone at %d", name, j)
			}
			kids := tr.Children(j)
			if len(kids) != len(ref[j]) {
				t.Fatalf("%s: node %d has %d children, want %d", name, j, len(kids), len(ref[j]))
			}
			for i, c := range ref[j] {
				if kids[i] != c {
					t.Fatalf("%s: Children(%d) = %v, want %v", name, j, kids, ref[j])
				}
			}
			if len(kids) > 0 && &kids[0] != &tr.childIDs[tr.childStart[j]] {
				t.Fatalf("%s: Children(%d) does not alias the CSR payload", name, j)
			}
			cl := tr.Clients(j)
			if len(cl) > 0 && &cl[0] != &tr.clientReqs[tr.clientStart[j]] {
				t.Fatalf("%s: Clients(%d) does not alias the CSR payload", name, j)
			}
		}
		if int(tr.clientStart[n]) != len(tr.clientReqs) {
			t.Fatalf("%s: client offsets end at %d, payload has %d", name, tr.clientStart[n], len(tr.clientReqs))
		}
		total := 0
		for _, r := range tr.clientReqs {
			total += r
		}
		if total != tr.TotalRequests() {
			t.Fatalf("%s: TotalRequests = %d, payload sums to %d", name, tr.TotalRequests(), total)
		}

		// PostOrder visits every node once, children before parents;
		// depths follow the parent vector.
		visited := make([]bool, n)
		for _, j := range tr.PostOrder() {
			if visited[j] {
				t.Fatalf("%s: node %d visited twice in post-order", name, j)
			}
			for _, c := range tr.Children(j) {
				if !visited[c] {
					t.Fatalf("%s: post-order visits %d before child %d", name, j, c)
				}
			}
			visited[j] = true
			if j == tr.Root() {
				if tr.Depth(j) != 0 {
					t.Fatalf("%s: root depth %d", name, tr.Depth(j))
				}
			} else if tr.Depth(j) != tr.Depth(tr.Parent(j))+1 {
				t.Fatalf("%s: Depth(%d) = %d, parent depth %d", name, j, tr.Depth(j), tr.Depth(tr.Parent(j)))
			}
		}
		for j, v := range visited {
			if !v {
				t.Fatalf("%s: post-order misses node %d", name, j)
			}
		}
	}
}

// TestWaveInvariants checks the height-wave schedule every parallel
// solver relies on: the waves partition the nodes, wave h holds exactly
// the nodes of height h (so children always lie in strictly lower
// waves), the root is the sole member of the last wave, and
// Height() == Waves()-1.
func TestWaveInvariants(t *testing.T) {
	for name, tr := range csrTrees(t) {
		n := tr.N()

		// Reference heights, bottom-up over the post-order.
		height := make([]int, n)
		for _, j := range tr.PostOrder() {
			h := 0
			for _, c := range tr.Children(j) {
				if height[c]+1 > h {
					h = height[c] + 1
				}
			}
			height[j] = h
		}

		if tr.Waves() != height[tr.Root()]+1 {
			t.Fatalf("%s: Waves() = %d, root height %d", name, tr.Waves(), height[tr.Root()])
		}
		if tr.Height() != tr.Waves()-1 {
			t.Fatalf("%s: Height() = %d, Waves() = %d", name, tr.Height(), tr.Waves())
		}
		seen := make([]bool, n)
		count := 0
		for h := 0; h < tr.Waves(); h++ {
			wave := tr.Wave(h)
			if len(wave) == 0 {
				t.Fatalf("%s: wave %d empty", name, h)
			}
			for _, j := range wave {
				if seen[j] {
					t.Fatalf("%s: node %d in two waves", name, j)
				}
				seen[j] = true
				count++
				if height[j] != h {
					t.Fatalf("%s: node %d (height %d) in wave %d", name, j, height[j], h)
				}
				for _, c := range tr.Children(j) {
					if height[c] >= h {
						t.Fatalf("%s: child %d of %d not in a lower wave", name, c, j)
					}
				}
			}
		}
		if count != n {
			t.Fatalf("%s: waves cover %d of %d nodes", name, count, n)
		}
		last := tr.Wave(tr.Waves() - 1)
		if len(last) != 1 || last[0] != tr.Root() {
			t.Fatalf("%s: last wave = %v, want just the root", name, last)
		}
	}
}

// TestSetClientRequestsSplice exercises the CSR slow path: replacing a
// node's client list with one of a different length splices the shared
// payload array and re-bases the offsets, leaving every other node's
// list intact.
func TestSetClientRequestsSplice(t *testing.T) {
	tr := MustGenerate(FatConfig(120), rng.New(9))
	n := tr.N()

	snapshot := func() [][]int {
		s := make([][]int, n)
		for j := 0; j < n; j++ {
			s[j] = append([]int(nil), tr.Clients(j)...)
		}
		return s
	}

	// Pick a node with clients somewhere in the middle of the payload.
	target := -1
	for j := n / 3; j < n; j++ {
		if len(tr.Clients(j)) > 0 {
			target = j
			break
		}
	}
	if target < 0 {
		t.Fatal("no client node found")
	}

	for _, reqs := range [][]int{
		{7, 8, 9, 10}, // grow
		{5},           // shrink
		{},            // drop all clients
		{2, 2},        // regrow from empty
	} {
		before := snapshot()
		gen := tr.DemandGen(target)
		tr.SetClientRequests(target, reqs)
		if tr.DemandGen(target) == gen {
			t.Fatalf("splice to %v did not advance the demand generation", reqs)
		}
		got := tr.Clients(target)
		if len(got) != len(reqs) {
			t.Fatalf("Clients(%d) = %v, want %v", target, got, reqs)
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				t.Fatalf("Clients(%d) = %v, want %v", target, got, reqs)
			}
		}
		for j := 0; j < n; j++ {
			if j == target {
				continue
			}
			cl := tr.Clients(j)
			if len(cl) != len(before[j]) {
				t.Fatalf("splice of %d resized Clients(%d)", target, j)
			}
			for i := range cl {
				if cl[i] != before[j][i] {
					t.Fatalf("splice of %d corrupted Clients(%d)", target, j)
				}
			}
		}
		if int(tr.clientStart[n]) != len(tr.clientReqs) {
			t.Fatal("offsets out of sync with payload after splice")
		}
	}

	// The same-length fast path must stay in place (no re-basing).
	tr.SetClientRequests(target, []int{4, 4})
	if got := tr.Clients(target); len(got) != 2 || got[0] != 4 || got[1] != 4 {
		t.Fatalf("in-place replacement failed: %v", got)
	}
}
