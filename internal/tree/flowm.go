package tree

import (
	"fmt"
	"sort"
)

// FaultMask is the read-only up/down view the masked evaluators and
// solvers consult (implemented by failure.Mask). NodeUp reports whether
// node j is operational: a down node neither serves requests nor admits
// its attached clients, but traffic from its subtree still transits
// through it. LinkUp reports whether the link from node j to its parent
// is intact; a cut link blocks every request originating inside j's
// subtree from reaching a server outside it. LinkUp of the root is
// never consulted.
type FaultMask interface {
	NodeUp(j int) bool
	LinkUp(j int) bool
}

// upMask is the trivial all-up view used when no mask is supplied.
type upMask struct{}

func (upMask) NodeUp(int) bool { return true }
func (upMask) LinkUp(int) bool { return true }

// MaskedResult describes one masked flow evaluation. On top of the
// embedded Result — whose Loads and Unserved keep their usual meaning,
// with Unserved counting only the demand that passes the root or has no
// server on its path (the same demand an unmasked evaluation would
// report lost) — it separates the losses the fault mask caused and
// attributes them to the node whose clients suffered them. Loads and
// UnservedAt alias the engine's scratch and are only valid until the
// engine's next evaluation.
type MaskedResult struct {
	Result
	// Issued is the total demand the tree's clients issued.
	Issued int
	// FailUnserved is the demand lost to failures: clients at down
	// nodes, requests bound (under the closest policy) to a down or
	// unreachable server, and requests trapped behind cut links.
	// Issued == sum(Loads) + Unserved + FailUnserved.
	FailUnserved int
	// UnservedAt[j] is the failure-lost demand of the clients attached
	// to node j; it sums to FailUnserved.
	UnservedAt []int
}

// EvalMasked evaluates replica set r under policy p with fault mask m
// (nil means everything up, reproducing Eval's loads exactly). See
// FaultMask for the fault semantics and the failure package's
// documentation for the degradation contract: under the closest policy
// requests bound to a failed server are lost, under the upwards and
// multiple policies they climb past down servers and may be absorbed
// higher up. capOf may be nil only for PolicyClosest.
func (e *Engine) EvalMasked(r *Replicas, p Policy, capOf CapOf, m FaultMask) MaskedResult {
	if r.N() != e.t.N() {
		panic(fmt.Sprintf("tree: masked evaluation with replica set of size %d on tree of size %d", r.N(), e.t.N()))
	}
	if m == nil {
		m = upMask{}
	}
	switch p {
	case PolicyClosest:
		return e.evalMaskedClosest(r, m)
	case PolicyUpwards:
		if capOf == nil {
			panic("tree: EvalMasked under the upwards policy needs capacities")
		}
		return e.evalMaskedUpwards(r, capOf, m)
	case PolicyMultiple:
		if capOf == nil {
			panic("tree: EvalMasked under the multiple policy needs capacities")
		}
		return e.evalMaskedMultiple(r, capOf, m)
	default:
		panic(fmt.Sprintf("tree: EvalMasked with unknown policy %d", uint8(p)))
	}
}

// EvalUniformMasked is EvalMasked with every mode mapped to capacity W.
func (e *Engine) EvalUniformMasked(r *Replicas, p Policy, W int, m FaultMask) MaskedResult {
	if p == PolicyClosest {
		return e.EvalMasked(r, p, nil, m)
	}
	e.w = W
	return e.EvalMasked(r, p, e.uniform, m)
}

// evalMaskedClosest routes under the forced closest policy: every
// request is bound to its first equipped ancestor whether or not that
// ancestor is up, so a down server, a down access node or a cut link on
// the way loses the request. One top-down pass composes, per node, the
// forced server (reusing e.srv) and whether the path to it is fully
// live (e.up as a 0/1 flag).
func (e *Engine) evalMaskedClosest(r *Replicas, m FaultMask) MaskedResult {
	t := e.t
	n := t.N()
	e.unservedAt = growScratch(e.unservedAt, n)
	for j := 0; j < n; j++ {
		e.loads[j] = 0
		e.unservedAt[j] = 0
	}
	issued, fail, unserved := 0, 0, 0
	post := t.post
	for i := n - 1; i >= 0; i-- {
		j := post[i]
		var srv, live int
		switch {
		case r.Has(j):
			srv = j
			if m.NodeUp(j) {
				live = 1
			}
		case j == t.Root():
			srv = -1
		default:
			p := t.parent[j]
			srv = e.srv[p]
			if srv >= 0 && e.up[p] == 1 && m.LinkUp(j) {
				live = 1
			}
		}
		e.srv[j], e.up[j] = srv, live
		d := t.ClientSum(j)
		if d == 0 {
			continue
		}
		issued += d
		switch {
		case !m.NodeUp(j):
			fail += d
			e.unservedAt[j] += d
		case srv < 0:
			unserved += d // no server on the path: lost as without failures
		case live == 0:
			fail += d
			e.unservedAt[j] += d
		default:
			e.loads[srv] += d
		}
	}
	return MaskedResult{
		Result:       Result{Policy: PolicyClosest, Loads: e.loads, Unserved: unserved},
		Issued:       issued,
		FailUnserved: fail,
		UnservedAt:   e.unservedAt,
	}
}

// pendSort orders a pending-demand segment by (demand, origin node):
// the absorbed multiset matches evalUpwards' plain sort.Ints (so loads
// are identical under an all-up mask) while the origin tie-break keeps
// the per-node loss attribution deterministic.
type pendSort struct{ d, o []int }

func (s pendSort) Len() int { return len(s.d) }
func (s pendSort) Less(a, b int) bool {
	if s.d[a] != s.d[b] {
		return s.d[a] < s.d[b]
	}
	return s.o[a] < s.o[b]
}
func (s pendSort) Swap(a, b int) {
	s.d[a], s.d[b] = s.d[b], s.d[a]
	s.o[a], s.o[b] = s.o[b], s.o[a]
}

// evalMaskedUpwards is evalUpwards with down servers skipped (whole
// clients climb past them), clients at down nodes lost at the source,
// and cut links dropping everything still pending inside their subtree.
func (e *Engine) evalMaskedUpwards(r *Replicas, capOf CapOf, m FaultMask) MaskedResult {
	t := e.t
	n := t.N()
	e.unservedAt = growScratch(e.unservedAt, n)
	for j := 0; j < n; j++ {
		e.unservedAt[j] = 0
	}
	e.pend = e.pend[:0]
	e.porig = e.porig[:0]
	issued, fail := 0, 0
	for i, j := range t.post {
		e.pendBase[i] = len(e.pend)
		nodeUp := m.NodeUp(j)
		for _, d := range t.Clients(j) {
			if d <= 0 {
				continue
			}
			issued += d
			if !nodeUp {
				fail += d
				e.unservedAt[j] += d
				continue
			}
			e.pend = append(e.pend, d)
			e.porig = append(e.porig, j)
		}
		e.loads[j] = 0
		base := e.pendBase[i-e.size[j]+1]
		if r.Has(j) && nodeUp {
			sort.Sort(pendSort{e.pend[base:], e.porig[base:]})
			seg := e.pend[base:]
			load, c := 0, capOf(r.Mode(j))
			for k := len(seg) - 1; k >= 0; k-- {
				if d := seg[k]; load+d <= c {
					load += d
					seg[k] = -1 // absorbed; compacted below
				}
			}
			e.compactPend(base)
			e.loads[j] = load
		}
		if j != t.Root() && !m.LinkUp(j) {
			// The subtree is severed: everything still pending in it can
			// never reach a server.
			for k := base; k < len(e.pend); k++ {
				fail += e.pend[k]
				e.unservedAt[e.porig[k]] += e.pend[k]
			}
			e.pend = e.pend[:base]
			e.porig = e.porig[:base]
		}
	}
	unserved := 0
	for _, d := range e.pend {
		unserved += d
	}
	return MaskedResult{
		Result:       Result{Policy: PolicyUpwards, Loads: e.loads, Unserved: unserved},
		Issued:       issued,
		FailUnserved: fail,
		UnservedAt:   e.unservedAt,
	}
}

// evalMaskedMultiple is evalMultiple with the same fault semantics as
// evalMaskedUpwards; splittable demands are absorbed oldest-first, so
// a live server's load is min(pending flow, capacity) exactly as in the
// unmasked saturation pass.
func (e *Engine) evalMaskedMultiple(r *Replicas, capOf CapOf, m FaultMask) MaskedResult {
	t := e.t
	n := t.N()
	e.unservedAt = growScratch(e.unservedAt, n)
	for j := 0; j < n; j++ {
		e.unservedAt[j] = 0
	}
	e.pend = e.pend[:0]
	e.porig = e.porig[:0]
	issued, fail := 0, 0
	for i, j := range t.post {
		e.pendBase[i] = len(e.pend)
		nodeUp := m.NodeUp(j)
		for _, d := range t.Clients(j) {
			if d <= 0 {
				continue
			}
			issued += d
			if !nodeUp {
				fail += d
				e.unservedAt[j] += d
				continue
			}
			e.pend = append(e.pend, d)
			e.porig = append(e.porig, j)
		}
		e.loads[j] = 0
		base := e.pendBase[i-e.size[j]+1]
		if r.Has(j) && nodeUp {
			if c := capOf(r.Mode(j)); c > 0 {
				rem, load := c, 0
				for k := base; k < len(e.pend) && rem > 0; k++ {
					take := e.pend[k]
					if take > rem {
						take = rem
					}
					e.pend[k] -= take
					rem -= take
					load += take
				}
				if load > 0 {
					e.compactPendZero(base)
				}
				e.loads[j] = load
			}
		}
		if j != t.Root() && !m.LinkUp(j) {
			for k := base; k < len(e.pend); k++ {
				fail += e.pend[k]
				e.unservedAt[e.porig[k]] += e.pend[k]
			}
			e.pend = e.pend[:base]
			e.porig = e.porig[:base]
		}
	}
	unserved := 0
	for _, d := range e.pend {
		unserved += d
	}
	return MaskedResult{
		Result:       Result{Policy: PolicyMultiple, Loads: e.loads, Unserved: unserved},
		Issued:       issued,
		FailUnserved: fail,
		UnservedAt:   e.unservedAt,
	}
}

// compactPend drops the entries marked -1 (absorbed whole demands) from
// the pending stack's tail starting at base, keeping demands and
// origins aligned.
func (e *Engine) compactPend(base int) {
	w := base
	for k := base; k < len(e.pend); k++ {
		if e.pend[k] >= 0 {
			e.pend[w] = e.pend[k]
			e.porig[w] = e.porig[k]
			w++
		}
	}
	e.pend = e.pend[:w]
	e.porig = e.porig[:w]
}

// compactPendZero drops fully absorbed (zero) entries.
func (e *Engine) compactPendZero(base int) {
	w := base
	for k := base; k < len(e.pend); k++ {
		if e.pend[k] > 0 {
			e.pend[w] = e.pend[k]
			e.porig[w] = e.porig[k]
			w++
		}
	}
	e.pend = e.pend[:w]
	e.porig = e.porig[:w]
}
