package tree

import (
	"testing"

	"replicatree/internal/rng"
)

// testMask is a plain FaultMask for the masked-evaluation tests.
type testMask struct {
	node []bool // true = down
	link []bool // true = cut
}

func newTestMask(n int) *testMask {
	return &testMask{node: make([]bool, n), link: make([]bool, n)}
}

func (m *testMask) NodeUp(j int) bool { return !m.node[j] }
func (m *testMask) LinkUp(j int) bool { return !m.link[j] }

// TestEvalMaskedAllUpMatchesEval pins the compatibility contract: under
// an all-up mask (or a nil one) the masked evaluators reproduce the
// plain evaluators' loads and unserved counts bit for bit.
func TestEvalMaskedAllUpMatchesEval(t *testing.T) {
	for _, policy := range Policies() {
		for seed := uint64(0); seed < 20; seed++ {
			src := rng.Derive(seed, int(policy))
			tr := MustGenerate(HighConfig(60), src)
			r, err := RandomReplicas(tr, 1+src.IntN(tr.N()), 1, src)
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngine(tr)
			W := 5 + src.IntN(40)
			want := e.EvalUniform(r, policy, W)
			wantLoads := append([]int(nil), want.Loads...)
			for _, m := range []FaultMask{nil, newTestMask(tr.N())} {
				got := e.EvalUniformMasked(r, policy, W, m)
				if got.Unserved != want.Unserved || got.FailUnserved != 0 {
					t.Fatalf("policy %v seed %d: masked unserved (%d, fail %d), want (%d, 0)",
						policy, seed, got.Unserved, got.FailUnserved, want.Unserved)
				}
				for j, l := range got.Loads {
					if l != wantLoads[j] {
						t.Fatalf("policy %v seed %d: masked load[%d] = %d, want %d", policy, seed, j, l, wantLoads[j])
					}
				}
			}
		}
	}
}

// TestEvalMaskedConservation checks, under random masks, the law
// issued == sum(loads) + unserved + failure-unserved, the per-origin
// attribution, and (for the capacity-aware policies) that no live
// server exceeds its capacity and no down server carries load.
func TestEvalMaskedConservation(t *testing.T) {
	for _, policy := range Policies() {
		for seed := uint64(0); seed < 30; seed++ {
			src := rng.Derive(seed+100, int(policy))
			tr := MustGenerate(HighConfig(80), src)
			n := tr.N()
			r, err := RandomReplicas(tr, 1+src.IntN(n), 1, src)
			if err != nil {
				t.Fatal(err)
			}
			m := newTestMask(n)
			for j := 0; j < n; j++ {
				m.node[j] = src.Bool(0.2)
				if j > 0 {
					m.link[j] = src.Bool(0.1)
				}
			}
			W := 5 + src.IntN(40)
			e := NewEngine(tr)
			res := e.EvalUniformMasked(r, policy, W, m)

			issued := 0
			for j := 0; j < n; j++ {
				issued += tr.ClientSum(j)
			}
			if res.Issued != issued {
				t.Fatalf("policy %v seed %d: issued %d, want %d", policy, seed, res.Issued, issued)
			}
			sumLoads, sumAt := 0, 0
			for j := 0; j < n; j++ {
				l := res.Loads[j]
				sumLoads += l
				sumAt += res.UnservedAt[j]
				if l > 0 && (!r.Has(j) || m.node[j]) {
					t.Fatalf("policy %v seed %d: node %d carries %d while unequipped or down", policy, seed, j, l)
				}
				if policy != PolicyClosest && l > W {
					t.Fatalf("policy %v seed %d: node %d carries %d > W=%d", policy, seed, j, l, W)
				}
			}
			if got := sumLoads + res.Unserved + res.FailUnserved; got != issued {
				t.Fatalf("policy %v seed %d: loads %d + unserved %d + fail %d = %d, want issued %d",
					policy, seed, sumLoads, res.Unserved, res.FailUnserved, got, issued)
			}
			if sumAt != res.FailUnserved {
				t.Fatalf("policy %v seed %d: UnservedAt sums to %d, FailUnserved %d", policy, seed, sumAt, res.FailUnserved)
			}
		}
	}
}

// TestEvalMaskedDegradation pins the per-policy contract on a concrete
// chain: root(0) - 1 - 2 with clients at 2, servers at 1 (and 0 under
// the relaxed-policy variants).
func TestEvalMaskedDegradation(t *testing.T) {
	b := NewBuilder()
	n1 := b.AddNode(b.Root())
	n2 := b.AddNode(n1)
	b.AddClient(n2, 4)
	tr := b.MustBuild()

	r := ReplicasOf(tr)
	r.Set(0, 1)
	r.Set(n1, 1)

	m := newTestMask(tr.N())
	m.node[n1] = true // the closest server is down
	e := NewEngine(tr)

	// Closest: forced to the down server at n1, the demand is lost.
	res := e.EvalUniformMasked(r, PolicyClosest, 10, m)
	if res.FailUnserved != 4 || res.UnservedAt[n2] != 4 || res.Loads[0] != 0 {
		t.Fatalf("closest: fail=%d at[n2]=%d root load=%d, want 4/4/0", res.FailUnserved, res.UnservedAt[n2], res.Loads[0])
	}

	// Upwards and Multiple: the demand climbs past n1 to the live root.
	for _, p := range []Policy{PolicyUpwards, PolicyMultiple} {
		res = e.EvalUniformMasked(r, p, 10, m)
		if res.FailUnserved != 0 || res.Loads[0] != 4 {
			t.Fatalf("%v: fail=%d root load=%d, want 0/4", p, res.FailUnserved, res.Loads[0])
		}
	}

	// A cut link below every server traps the demand under all policies.
	m2 := newTestMask(tr.N())
	m2.link[n2] = true
	for _, p := range Policies() {
		res = e.EvalUniformMasked(r, p, 10, m2)
		if res.FailUnserved != 4 || res.UnservedAt[n2] != 4 {
			t.Fatalf("%v cut link: fail=%d at[n2]=%d, want 4/4", p, res.FailUnserved, res.UnservedAt[n2])
		}
	}

	// A down access node loses its own clients even when it hosts the
	// server itself.
	r2 := ReplicasOf(tr)
	r2.Set(n2, 1)
	m3 := newTestMask(tr.N())
	m3.node[n2] = true
	for _, p := range Policies() {
		res = e.EvalUniformMasked(r2, p, 10, m3)
		if res.FailUnserved != 4 || res.Loads[n2] != 0 {
			t.Fatalf("%v down access node: fail=%d load=%d, want 4/0", p, res.FailUnserved, res.Loads[n2])
		}
	}
}
