package tree

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the tree in Graphviz DOT format for inspection.
// Internal nodes are circles; equipped nodes (per the optional replica
// sets) are filled: existing servers light blue, solution servers light
// green, nodes in both (reused) gold. Clients are small boxes labelled
// with their request count. Either replica set may be nil.
func WriteDOT(w io.Writer, t *Tree, existing, solution *Replicas) error {
	var sb strings.Builder
	sb.WriteString("digraph tree {\n  rankdir=TB;\n  node [fontsize=10];\n")
	for j := 0; j < t.N(); j++ {
		attrs := []string{"shape=circle"}
		inE := existing != nil && existing.Has(j)
		inR := solution != nil && solution.Has(j)
		label := fmt.Sprintf("%d", j)
		switch {
		case inE && inR:
			attrs = append(attrs, `style=filled`, `fillcolor=gold`)
			label += fmt.Sprintf("\\nE@%d R@%d", existing.Mode(j), solution.Mode(j))
		case inE:
			attrs = append(attrs, `style=filled`, `fillcolor=lightblue`)
			label += fmt.Sprintf("\\nE@%d", existing.Mode(j))
		case inR:
			attrs = append(attrs, `style=filled`, `fillcolor=palegreen`)
			label += fmt.Sprintf("\\nR@%d", solution.Mode(j))
		}
		attrs = append(attrs, fmt.Sprintf(`label="%s"`, label))
		fmt.Fprintf(&sb, "  n%d [%s];\n", j, strings.Join(attrs, ", "))
		if p := t.Parent(j); p >= 0 {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", p, j)
		}
		for i, r := range t.Clients(j) {
			fmt.Fprintf(&sb, "  c%d_%d [shape=box, fontsize=8, label=\"%d req\"];\n", j, i, r)
			fmt.Fprintf(&sb, "  n%d -> c%d_%d [style=dashed];\n", j, j, i)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
