package tree

import "fmt"

// Flows evaluates a replica set under the paper's closest service policy:
// every request travels from its client toward the root and is absorbed
// by the first equipped node it meets. It returns the resulting load of
// every node (zero for unequipped nodes) and the number of requests that
// escape the root unserved. A valid solution has unserved == 0.
func Flows(t *Tree, r *Replicas) (loads []int, unserved int) {
	if r.N() != t.N() {
		panic(fmt.Sprintf("tree: Flows with replica set of size %d on tree of size %d", r.N(), t.N()))
	}
	loads = make([]int, t.N())
	up := make([]int, t.N()) // requests leaving node j upward
	for _, j := range t.post {
		f := t.ClientSum(j)
		for _, c := range t.children[j] {
			f += up[c]
		}
		if r.Has(j) {
			loads[j] = f
			up[j] = 0
		} else {
			up[j] = f
		}
	}
	return loads, up[t.Root()]
}

// ServerFor returns the node serving the clients attached to node j under
// the closest policy (j itself if equipped, else its nearest equipped
// ancestor), or -1 if no equipped node lies on the path to the root.
func ServerFor(t *Tree, r *Replicas, j int) int {
	for n := j; n >= 0; n = t.parent[n] {
		if r.Has(n) {
			return n
		}
	}
	return -1
}

// Assignments returns, for every internal node, the server that handles
// the requests of its attached clients (-1 when unserved). Nodes without
// clients still get an entry, describing where their clients would be
// served.
func Assignments(t *Tree, r *Replicas) []int {
	out := make([]int, t.N())
	// Top-down pass: the serving node for j is j if equipped, else the
	// serving node of its parent.
	post := t.post
	for i := len(post) - 1; i >= 0; i-- {
		j := post[i]
		switch {
		case r.Has(j):
			out[j] = j
		case j == t.Root():
			out[j] = -1
		default:
			out[j] = out[t.parent[j]]
		}
	}
	return out
}

// CapacityError describes a violated constraint found by Validate.
type CapacityError struct {
	Node int // overloaded server, or -1 for unserved requests
	Load int // offending load (or count of unserved requests)
	Cap  int // capacity that was exceeded (0 for unserved)
}

func (e *CapacityError) Error() string {
	if e.Node < 0 {
		return fmt.Sprintf("tree: %d requests reach the root unserved", e.Load)
	}
	return fmt.Sprintf("tree: server at node %d carries %d requests, capacity %d", e.Node, e.Load, e.Cap)
}

// Validate checks that r is a valid solution for t: every request is
// served and every equipped node's load is within the capacity of its
// operating mode, as given by capOf (1-based mode index -> capacity).
func Validate(t *Tree, r *Replicas, capOf func(mode uint8) int) error {
	loads, unserved := Flows(t, r)
	if unserved > 0 {
		return &CapacityError{Node: -1, Load: unserved}
	}
	for j, l := range loads {
		if !r.Has(j) {
			continue
		}
		c := capOf(r.Mode(j))
		if l > c {
			return &CapacityError{Node: j, Load: l, Cap: c}
		}
	}
	return nil
}

// ValidateUniform checks a single-capacity solution: every replica
// (whatever its mode) may carry at most W requests.
func ValidateUniform(t *Tree, r *Replicas, W int) error {
	return Validate(t, r, func(uint8) int { return W })
}
