package tree

import (
	"errors"
	"fmt"
	"sort"
)

// CapOf maps a 1-based operating mode to its request capacity. It is
// how the flow engine asks for capacities without depending on the
// power package's model type.
type CapOf func(mode uint8) int

// ErrInfeasible is the module-wide sentinel for "no placement at all
// can serve this instance". Every solver layer (core's exact programs,
// the greedy baseline, the heuristics) wraps it, so a single
// errors.Is(err, ErrInfeasible) distinguishes unsolvable instances
// from real errors whichever layer produced them.
var ErrInfeasible = errors.New("no valid placement exists")

// Result describes one flow evaluation: the number of requests absorbed
// by every node (zero for unequipped nodes) and the number of requests
// that reach past the root unserved. Loads aliases the engine's scratch
// buffer and is only valid until the engine's next evaluation; callers
// that retain it must copy.
type Result struct {
	Policy   Policy
	Loads    []int
	Unserved int
}

// Engine evaluates request flows for one tree under any access policy.
// All scratch state is preallocated and index-addressed at construction,
// so evaluations after the first perform no heap allocations and a
// reused engine turns flow evaluation into a pure array sweep — the
// building block every solver, heuristic and simulator in this
// repository shares. An Engine is not safe for concurrent use; create
// one per goroutine (construction is O(N)).
type Engine struct {
	t *Tree

	loads []int // absorbed requests per node (aliased by Result.Loads)
	up    []int // aggregate flow leaving each node upward

	// Upwards scratch: pending atomic client demands, kept as a stack
	// aligned with the post-order traversal so that the demands still
	// unserved inside subtree(j) form the contiguous tail pend[base:].
	pend     []int
	pendL    []int // minimal server depth per pending demand (constrained passes)
	porig    []int // origin node per pending demand (masked passes)
	pendBase []int // stack length before post[i] was processed
	size     []int // subtree sizes (including the node itself)
	srv      []int // serving-node depth per node (constrained closest validation)

	unservedAt []int // failure-lost demand per origin node (masked passes)

	w       int   // capacity used by the uniform-capacity closure
	uniform CapOf // returns w; avoids a per-call closure allocation
}

// NewEngine returns a flow engine for t. The engine keeps a reference
// to t; topology must not change afterwards (request counts may).
func NewEngine(t *Tree) *Engine {
	e := &Engine{}
	e.uniform = func(uint8) int { return e.w }
	e.Reset(t)
	return e
}

// Reset rebinds the engine to tree t, reusing every scratch slice whose
// capacity suffices, so per-worker pools sweeping many trees skip the
// construction allocations of NewEngine after the first tree of each
// size.
func (e *Engine) Reset(t *Tree) {
	n := t.N()
	e.t = t
	e.loads = growScratch(e.loads, n)
	e.up = growScratch(e.up, n)
	e.pendBase = growScratch(e.pendBase, n)
	e.size = growScratch(e.size, n)
	e.srv = growScratch(e.srv, n)
	for _, j := range t.post {
		s := 1
		for _, c := range t.Children(j) {
			s += e.size[c]
		}
		e.size[j] = s
	}
}

// growScratch returns a slice of length n with unspecified contents,
// reusing s's capacity when possible.
func growScratch(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// Tree returns the tree the engine evaluates.
func (e *Engine) Tree() *Tree { return e.t }

// Eval evaluates replica set r under policy p. capOf supplies per-mode
// capacities; it may be nil for PolicyClosest, whose routing ignores
// capacities (requests stop at the first equipped ancestor even when it
// overloads — Validate reports the overload). For PolicyUpwards and
// PolicyMultiple, routing is capacity-aware: a server absorbs at most
// its capacity and the remainder continues toward the root, so returned
// loads never exceed capacities and Unserved alone decides feasibility.
func (e *Engine) Eval(r *Replicas, p Policy, capOf CapOf) Result {
	if r.N() != e.t.N() {
		panic(fmt.Sprintf("tree: flow evaluation with replica set of size %d on tree of size %d", r.N(), e.t.N()))
	}
	switch p {
	case PolicyClosest:
		return e.evalClosest(r)
	case PolicyUpwards:
		if capOf == nil {
			panic("tree: Eval under the upwards policy needs capacities")
		}
		return e.evalUpwards(r, capOf)
	case PolicyMultiple:
		if capOf == nil {
			panic("tree: Eval under the multiple policy needs capacities")
		}
		return e.evalMultiple(r, capOf)
	default:
		panic(fmt.Sprintf("tree: Eval with unknown policy %d", uint8(p)))
	}
}

// EvalUniform is Eval with every mode mapped to the single capacity W.
func (e *Engine) EvalUniform(r *Replicas, p Policy, W int) Result {
	if p == PolicyClosest {
		return e.Eval(r, p, nil)
	}
	e.w = W
	return e.Eval(r, p, e.uniform)
}

// evalClosest is the paper's closest service policy: every request is
// absorbed by the first equipped node on its way to the root.
func (e *Engine) evalClosest(r *Replicas) Result {
	t := e.t
	for _, j := range t.post {
		f := t.ClientSum(j)
		for _, c := range t.Children(j) {
			f += e.up[c]
		}
		if r.Has(j) {
			e.loads[j] = f
			e.up[j] = 0
		} else {
			e.loads[j] = 0
			e.up[j] = f
		}
	}
	return Result{Policy: PolicyClosest, Loads: e.loads, Unserved: e.up[t.Root()]}
}

// evalMultiple routes splittable flows: each equipped node absorbs as
// much of the traversing flow as its capacity allows and forwards the
// rest. Because a server can only serve requests originating in its own
// subtree — a strict subset of what any ancestor can serve — saturating
// servers bottom-up is never worse than any other split, which makes
// this single pass an exact feasibility test for the multiple policy
// (cross-checked against a max-flow formulation in the core package's
// tests).
func (e *Engine) evalMultiple(r *Replicas, capOf CapOf) Result {
	t := e.t
	for _, j := range t.post {
		f := t.ClientSum(j)
		for _, c := range t.Children(j) {
			f += e.up[c]
		}
		absorbed := 0
		if r.Has(j) {
			if c := capOf(r.Mode(j)); c > 0 {
				absorbed = min(f, c)
			}
		}
		e.loads[j] = absorbed
		e.up[j] = f - absorbed
	}
	return Result{Policy: PolicyMultiple, Loads: e.loads, Unserved: e.up[t.Root()]}
}

// evalUpwards assigns whole clients to servers: pending client demands
// climb toward the root and every equipped node keeps the largest
// demands that fit (best-fit decreasing), forwarding the rest. The pass
// is a sound feasibility certificate — when Unserved is zero the
// constructed assignment proves the placement valid — but deciding
// Upwards feasibility exactly is NP-complete (bin packing on the root
// path), so a non-zero Unserved can over-reject; the core package's
// brute-force search is the exact reference on small trees.
func (e *Engine) evalUpwards(r *Replicas, capOf CapOf) Result {
	t := e.t
	e.pend = e.pend[:0]
	unserved := 0
	for i, j := range t.post {
		e.pendBase[i] = len(e.pend)
		for _, d := range t.Clients(j) {
			if d > 0 {
				e.pend = append(e.pend, d)
			}
		}
		e.loads[j] = 0
		if !r.Has(j) {
			continue
		}
		// The demands still unserved in subtree(j) are the stack tail
		// that accumulated since the subtree's first post-order node.
		base := e.pendBase[i-e.size[j]+1]
		seg := e.pend[base:]
		sort.Ints(seg)
		load, c := 0, capOf(r.Mode(j))
		for k := len(seg) - 1; k >= 0; k-- {
			if d := seg[k]; load+d <= c {
				load += d
				seg[k] = -1 // absorbed; compacted below
			}
		}
		w := base
		for k := base; k < len(e.pend); k++ {
			if e.pend[k] >= 0 {
				e.pend[w] = e.pend[k]
				w++
			}
		}
		e.pend = e.pend[:w]
		e.loads[j] = load
	}
	for _, d := range e.pend {
		unserved += d
	}
	return Result{Policy: PolicyUpwards, Loads: e.loads, Unserved: unserved}
}

// Validate checks that r is a valid solution for the engine's tree
// under policy p: every request is served and no server exceeds the
// capacity of its operating mode. Under PolicyClosest the routing is
// capacity-oblivious, so both unserved requests and overloads can
// occur; under PolicyUpwards and PolicyMultiple routing is
// capacity-aware and only unserved requests remain to report (for
// Upwards the check is conservative — see Policy).
func (e *Engine) Validate(r *Replicas, p Policy, capOf CapOf) error {
	res := e.Eval(r, p, capOf)
	if res.Unserved > 0 {
		return &CapacityError{Node: -1, Load: res.Unserved, Policy: p}
	}
	if p == PolicyClosest {
		for j, l := range res.Loads {
			if !r.Has(j) {
				continue
			}
			if c := capOf(r.Mode(j)); l > c {
				return &CapacityError{Node: j, Load: l, Cap: c, Policy: p}
			}
		}
	}
	return nil
}

// ValidateUniform is Validate with a single capacity W for every mode.
func (e *Engine) ValidateUniform(r *Replicas, p Policy, W int) error {
	e.w = W
	return e.Validate(r, p, e.uniform)
}

// Flows evaluates a replica set under the paper's closest service policy:
// every request travels from its client toward the root and is absorbed
// by the first equipped node it meets. It returns the resulting load of
// every node (zero for unequipped nodes) and the number of requests that
// escape the root unserved. A valid solution has unserved == 0.
//
// Flows constructs a throwaway engine; callers evaluating many replica
// sets on one tree should hold a NewEngine instead.
func Flows(t *Tree, r *Replicas) (loads []int, unserved int) {
	res := NewEngine(t).Eval(r, PolicyClosest, nil)
	return res.Loads, res.Unserved
}

// FlowsPolicy evaluates a replica set under an arbitrary access policy
// with the single capacity W (see Engine.Eval for the semantics).
func FlowsPolicy(t *Tree, r *Replicas, p Policy, W int) (loads []int, unserved int) {
	res := NewEngine(t).EvalUniform(r, p, W)
	return res.Loads, res.Unserved
}

// ServerFor returns the node serving the clients attached to node j under
// the closest policy (j itself if equipped, else its nearest equipped
// ancestor), or -1 if no equipped node lies on the path to the root.
func ServerFor(t *Tree, r *Replicas, j int) int {
	for n := j; n >= 0; n = t.parent[n] {
		if r.Has(n) {
			return n
		}
	}
	return -1
}

// Assignments returns, for every internal node, the server that handles
// the requests of its attached clients (-1 when unserved) under the
// closest policy, the only policy whose node-to-server map is unique.
// Nodes without clients still get an entry, describing where their
// clients would be served.
func Assignments(t *Tree, r *Replicas) []int {
	out := make([]int, t.N())
	// Top-down pass: the serving node for j is j if equipped, else the
	// serving node of its parent.
	post := t.post
	for i := len(post) - 1; i >= 0; i-- {
		j := post[i]
		switch {
		case r.Has(j):
			out[j] = j
		case j == t.Root():
			out[j] = -1
		default:
			out[j] = out[t.parent[j]]
		}
	}
	return out
}

// CapacityError describes a violated constraint found by Validate.
type CapacityError struct {
	Node   int    // overloaded server, or -1 for unserved requests
	Load   int    // offending load (or count of unserved requests)
	Cap    int    // capacity that was exceeded (0 for unserved)
	Policy Policy // access policy the check ran under
}

func (e *CapacityError) Error() string {
	if e.Node < 0 {
		if e.Policy == PolicyClosest {
			return fmt.Sprintf("tree: %d requests reach the root unserved", e.Load)
		}
		return fmt.Sprintf("tree: %d requests reach the root unserved under the %s policy", e.Load, e.Policy)
	}
	return fmt.Sprintf("tree: server at node %d carries %d requests, capacity %d", e.Node, e.Load, e.Cap)
}

// Validate checks that r is a valid solution for t under the closest
// policy: every request is served and every equipped node's load is
// within the capacity of its operating mode, as given by capOf (1-based
// mode index -> capacity). See Engine.Validate for other policies.
func Validate(t *Tree, r *Replicas, capOf func(mode uint8) int) error {
	return NewEngine(t).Validate(r, PolicyClosest, capOf)
}

// ValidateUniform checks a single-capacity closest-policy solution:
// every replica (whatever its mode) may carry at most W requests.
func ValidateUniform(t *Tree, r *Replicas, W int) error {
	return NewEngine(t).ValidateUniform(r, PolicyClosest, W)
}

// ValidatePolicy checks a single-capacity solution under an arbitrary
// access policy.
func ValidatePolicy(t *Tree, r *Replicas, p Policy, W int) error {
	return NewEngine(t).ValidateUniform(r, p, W)
}
