package tree

import (
	"testing"
	"testing/quick"

	"replicatree/internal/rng"
)

// randomInstance draws a small random tree and replica set from a seed.
func randomInstance(seed uint64) (*Tree, *Replicas) {
	src := rng.Derive(seed, 0)
	cfg := GenConfig{
		Nodes:       1 + src.IntN(30),
		MinChildren: 1 + src.IntN(3),
		MaxChildren: 0,
		ClientProb:  src.Float64(),
		ReqMin:      1,
		ReqMax:      1 + src.IntN(8),
	}
	cfg.MaxChildren = cfg.MinChildren + src.IntN(4)
	tr := MustGenerate(cfg, src)
	r := ReplicasOf(tr)
	for j := 0; j < tr.N(); j++ {
		if src.Bool(0.4) {
			r.Set(j, uint8(1+src.IntN(3)))
		}
	}
	return tr, r
}

// Property: flow conservation. Total requests = sum of server loads +
// unserved requests, for any replica set.
func TestQuickFlowConservation(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		loads, unserved := Flows(tr, r)
		sum := unserved
		for _, l := range loads {
			sum += l
		}
		return sum == tr.TotalRequests()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: loads are exactly the closest-policy assignment. For every
// node j, the requests of j's clients count toward ServerFor(j).
func TestQuickFlowsMatchAssignments(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		loads, unserved := Flows(tr, r)
		wantLoad := make([]int, tr.N())
		wantUnserved := 0
		for j := 0; j < tr.N(); j++ {
			s := ServerFor(tr, r, j)
			if s < 0 {
				wantUnserved += tr.ClientSum(j)
			} else {
				wantLoad[s] += tr.ClientSum(j)
			}
		}
		if unserved != wantUnserved {
			return false
		}
		for j := range loads {
			if loads[j] != wantLoad[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: only equipped nodes carry load, and unequipped ancestors
// forward everything.
func TestQuickOnlyServersLoaded(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		loads, _ := Flows(tr, r)
		for j := range loads {
			if loads[j] > 0 && !r.Has(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: equipping every node with ample capacity is always valid.
func TestQuickFullPlacementValid(t *testing.T) {
	f := func(seed uint64) bool {
		tr, _ := randomInstance(seed)
		r := ReplicasOf(tr)
		for j := 0; j < tr.N(); j++ {
			r.Set(j, 1)
		}
		return ValidateUniform(tr, r, tr.MaxClientSum()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round-trips preserve flows for arbitrary instances.
func TestQuickJSONPreservesFlows(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		data, err := tr.MarshalJSON()
		if err != nil {
			return false
		}
		var back Tree
		if err := back.UnmarshalJSON(data); err != nil {
			return false
		}
		l1, u1 := Flows(tr, r)
		l2, u2 := Flows(&back, r)
		if u1 != u2 {
			return false
		}
		for j := range l1 {
			if l1[j] != l2[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: post-order visits each node exactly once, and SubtreeNodes
// sizes are consistent with a recount via IsAncestor.
func TestQuickSubtreeConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		tr, _ := randomInstance(seed)
		if len(tr.PostOrder()) != tr.N() {
			return false
		}
		for j := 0; j < tr.N(); j++ {
			count := 0
			for d := 0; d < tr.N(); d++ {
				if tr.IsAncestor(j, d) {
					count++
				}
			}
			if count != len(tr.SubtreeNodes(j)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomInstanceOn draws a fresh random replica set for an existing
// tree (modes 1..3).
func randomInstanceOn(tr *Tree, seed uint64) (*Tree, *Replicas) {
	src := rng.Derive(seed, 1)
	r := ReplicasOf(tr)
	for j := 0; j < tr.N(); j++ {
		if src.Bool(0.4) {
			r.Set(j, uint8(1+src.IntN(3)))
		}
	}
	return tr, r
}

// Property: flow conservation holds under every access policy: absorbed
// loads plus unserved requests account for every request exactly once.
func TestQuickPolicyFlowConservation(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		e := NewEngine(tr)
		W := 1 + int(seed%17)
		for _, p := range Policies() {
			res := e.EvalUniform(r, p, W)
			sum := res.Unserved
			for _, l := range res.Loads {
				sum += l
			}
			if sum != tr.TotalRequests() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: under the capacity-aware policies no server ever exceeds
// its mode's capacity and only equipped nodes carry load, for arbitrary
// modal capacities.
func TestQuickPolicyLoadsWithinCapacity(t *testing.T) {
	caps := []int{3, 7, 12}
	capOf := func(m uint8) int { return caps[m-1] }
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		e := NewEngine(tr)
		for _, p := range []Policy{PolicyUpwards, PolicyMultiple} {
			res := e.Eval(r, p, capOf)
			for j, l := range res.Loads {
				if l > 0 && !r.Has(j) {
					return false
				}
				if r.Has(j) && l > capOf(r.Mode(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: policy containment. A placement valid under Closest is
// valid under Upwards, and a placement the engine certifies under
// Upwards is valid under Multiple (cs/0611034, Section 3; the exact
// brute-force counterpart lives in the core package's tests).
func TestQuickPolicyContainment(t *testing.T) {
	caps := []int{4, 8, 15}
	capOf := func(m uint8) int { return caps[m-1] }
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		e := NewEngine(tr)
		if e.Validate(r, PolicyClosest, capOf) == nil &&
			e.Validate(r, PolicyUpwards, capOf) != nil {
			return false
		}
		if e.Validate(r, PolicyUpwards, capOf) == nil &&
			e.Validate(r, PolicyMultiple, capOf) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine's closest evaluation is bit-identical to the
// package-level Flows wrapper (the pre-engine semantics).
func TestQuickEngineMatchesFlows(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		loads, unserved := Flows(tr, r)
		res := NewEngine(tr).EvalUniform(r, PolicyClosest, 1)
		if unserved != res.Unserved {
			return false
		}
		for j := range loads {
			if loads[j] != res.Loads[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: serving never degrades when capacity grows, under the exact
// multiple-policy evaluation.
func TestQuickMultipleMonotoneInCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		e := NewEngine(tr)
		prev := int(^uint(0) >> 1)
		for W := 1; W <= 12; W++ {
			res := e.EvalUniform(r, PolicyMultiple, W)
			if res.Unserved > prev {
				return false
			}
			prev = res.Unserved
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
