package tree

import (
	"testing"
	"testing/quick"

	"replicatree/internal/rng"
)

// randomInstance draws a small random tree and replica set from a seed.
func randomInstance(seed uint64) (*Tree, *Replicas) {
	src := rng.Derive(seed, 0)
	cfg := GenConfig{
		Nodes:       1 + src.IntN(30),
		MinChildren: 1 + src.IntN(3),
		MaxChildren: 0,
		ClientProb:  src.Float64(),
		ReqMin:      1,
		ReqMax:      1 + src.IntN(8),
	}
	cfg.MaxChildren = cfg.MinChildren + src.IntN(4)
	tr := MustGenerate(cfg, src)
	r := ReplicasOf(tr)
	for j := 0; j < tr.N(); j++ {
		if src.Bool(0.4) {
			r.Set(j, uint8(1+src.IntN(3)))
		}
	}
	return tr, r
}

// Property: flow conservation. Total requests = sum of server loads +
// unserved requests, for any replica set.
func TestQuickFlowConservation(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		loads, unserved := Flows(tr, r)
		sum := unserved
		for _, l := range loads {
			sum += l
		}
		return sum == tr.TotalRequests()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: loads are exactly the closest-policy assignment. For every
// node j, the requests of j's clients count toward ServerFor(j).
func TestQuickFlowsMatchAssignments(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		loads, unserved := Flows(tr, r)
		wantLoad := make([]int, tr.N())
		wantUnserved := 0
		for j := 0; j < tr.N(); j++ {
			s := ServerFor(tr, r, j)
			if s < 0 {
				wantUnserved += tr.ClientSum(j)
			} else {
				wantLoad[s] += tr.ClientSum(j)
			}
		}
		if unserved != wantUnserved {
			return false
		}
		for j := range loads {
			if loads[j] != wantLoad[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: only equipped nodes carry load, and unequipped ancestors
// forward everything.
func TestQuickOnlyServersLoaded(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		loads, _ := Flows(tr, r)
		for j := range loads {
			if loads[j] > 0 && !r.Has(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: equipping every node with ample capacity is always valid.
func TestQuickFullPlacementValid(t *testing.T) {
	f := func(seed uint64) bool {
		tr, _ := randomInstance(seed)
		r := ReplicasOf(tr)
		for j := 0; j < tr.N(); j++ {
			r.Set(j, 1)
		}
		return ValidateUniform(tr, r, tr.MaxClientSum()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSON round-trips preserve flows for arbitrary instances.
func TestQuickJSONPreservesFlows(t *testing.T) {
	f := func(seed uint64) bool {
		tr, r := randomInstance(seed)
		data, err := tr.MarshalJSON()
		if err != nil {
			return false
		}
		var back Tree
		if err := back.UnmarshalJSON(data); err != nil {
			return false
		}
		l1, u1 := Flows(tr, r)
		l2, u2 := Flows(&back, r)
		if u1 != u2 {
			return false
		}
		for j := range l1 {
			if l1[j] != l2[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: post-order visits each node exactly once, and SubtreeNodes
// sizes are consistent with a recount via IsAncestor.
func TestQuickSubtreeConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		tr, _ := randomInstance(seed)
		if len(tr.PostOrder()) != tr.N() {
			return false
		}
		for j := 0; j < tr.N(); j++ {
			count := 0
			for d := 0; d < tr.N(); d++ {
				if tr.IsAncestor(j, d) {
					count++
				}
			}
			if count != len(tr.SubtreeNodes(j)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
