// Package tree implements the distribution-tree substrate of the paper:
// internal nodes that may host replica servers, leaf clients attached to
// internal nodes that issue requests, replica sets with operating modes,
// and the request-flow engine that every algorithm in this repository
// is built on.
//
// Flow evaluation is parametric in the access policy (see Policy),
// following Benoit, Rehn & Robert, "Strategies for Replica Placement in
// Tree Networks" (arXiv cs/0611034) and Rehn-Sonigo, "Optimal Replica
// Placement in Tree Networks with QoS and Bandwidth Constraints and the
// Closest Allocation Policy" (arXiv 0706.3350): Closest serves each
// request at the first equipped ancestor (the IPPS 2011 power paper's
// model and the default), Upwards lets a whole client bypass equipped
// ancestors, and Multiple additionally splits a client's requests
// across the servers of its root path. Feasible placements nest —
// Closest ⊆ Upwards ⊆ Multiple — which the tests verify against
// exhaustive searches. Engine holds preallocated scratch so that
// repeated evaluations on one tree are allocation-free; Flows,
// Validate and friends are one-shot wrappers around it. Constraints
// adds the per-client QoS bounds and per-link bandwidths of 0706.3350,
// enforced by the engine's constrained passes (see flowc.go).
//
// Internal nodes are identified by dense integer ids 0..N-1 with node 0
// the root. Clients are not materialised as nodes: each internal node
// carries the list of request counts of the clients attached to it, which
// is equivalent to the paper's model (clients are leaves whose unique
// neighbour is an internal node) and keeps every algorithm allocation
// friendly.
package tree

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// Tree is an immutable-topology distribution tree. Request counts are
// mutable through SetDemand and SetClientRequests (used by the
// dynamic-update experiments); the topology is fixed at Build time,
// matching the paper's fixed-network assumption.
//
// Children and client request counts are stored in CSR (compressed
// sparse row) layout: per-node spans into shared flat slices. At the
// 10^5-10^6 node scale the ROADMAP targets, the former [][]int layout
// cost one pointer-chased allocation per node; the flat layout streams
// cache-linearly during the bottom-up DP sweeps and flow passes and is
// built with O(1) allocations. Children(j)/Clients(j) keep returning
// []int by subslicing, so callers are unaffected — but the returned
// slices alias the shared arrays, which makes the long-documented
// "caller must not modify" contract load-bearing: writing through a
// returned slice corrupts neighbouring nodes' spans.
//
// Every demand mutation stamps the touched node with a fresh generation
// from a tree-local clock (see DemandGen). The arena-backed DP solvers
// in internal/core compare these stamps against the generation they
// last folded into each node's cached subtree table, which is what lets
// them recompute only the dirty ancestor chains of changed clients.
type Tree struct {
	parent []int // parent[j] is the parent id of node j; -1 for the root

	// Children of j are childIDs[childStart[j]:childStart[j+1]], in
	// ascending id order. Offsets are int32 (half the footprint of int
	// offsets at mega scale); payloads stay []int so the accessors can
	// subslice without conversion.
	childStart []int32
	childIDs   []int

	// Request counts of the clients attached to j are
	// clientReqs[clientStart[j]:clientStart[j+1]].
	clientStart []int32
	clientReqs  []int

	post  []int // post-order traversal: children before parents
	depth []int // depth[j], root has depth 0

	// Wave schedule for the subtree-parallel DP: wave h holds the nodes
	// of height h (leaves at height 0; height = 1 + max child height),
	// in ascending id order. Children always sit in strictly lower
	// waves, so processing waves in order with a barrier between them
	// is a valid bottom-up schedule whatever the parallelism inside a
	// wave. Stored as CSR spans like children and clients.
	waveStart []int32
	waveNodes []int

	clock     uint64   // monotone demand-mutation counter
	demandGen []uint64 // demandGen[j] is the clock value of node j's last mutation
}

// N returns the number of internal nodes.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the id of the root node (always 0).
func (t *Tree) Root() int { return 0 }

// Parent returns the parent id of node j, or -1 for the root.
func (t *Tree) Parent(j int) int { return t.parent[j] }

// Children returns the internal-node children of node j in ascending id
// order. The returned slice aliases the tree's shared child array; the
// caller must not modify it.
func (t *Tree) Children(j int) []int {
	return t.childIDs[t.childStart[j]:t.childStart[j+1]]
}

// Clients returns the request counts of the clients attached to node j.
// The returned slice aliases the tree's shared client array; the caller
// must not modify it (use SetDemand or SetClientRequests).
func (t *Tree) Clients(j int) []int {
	return t.clientReqs[t.clientStart[j]:t.clientStart[j+1]]
}

// ClientSum returns the total number of requests issued by the clients
// attached to node j (the paper's client(j)).
func (t *Tree) ClientSum(j int) int {
	s := 0
	for _, r := range t.clientReqs[t.clientStart[j]:t.clientStart[j+1]] {
		s += r
	}
	return s
}

// SetClientRequests replaces the request counts of the clients attached to
// node j. The number of clients at j may change; the topology of internal
// nodes does not. The node's demand generation advances unless the new
// list equals the old one. Single-client edits in hot loops should use
// SetDemand, which mutates in place without allocating; a same-length
// replacement here is also in place, while a change in client count
// rebuilds the flat client array in O(total clients).
func (t *Tree) SetClientRequests(j int, reqs []int) {
	// A caller may (against Clients' contract) mutate the returned
	// internal slice in place and pass it back here; comparing it
	// against itself would skip the stamp and leave solver caches
	// stale, so aliased input always stamps.
	cur := t.Clients(j)
	aliased := len(reqs) > 0 && len(cur) > 0 && &reqs[0] == &cur[0]
	if !aliased && slices.Equal(cur, reqs) {
		return
	}
	if len(reqs) == len(cur) {
		copy(cur, reqs)
	} else {
		t.spliceClients(j, reqs)
	}
	t.touch(j)
}

// spliceClients replaces node j's client span with reqs, shifting the
// tail of the flat array and re-basing the offsets of the nodes after j.
func (t *Tree) spliceClients(j int, reqs []int) {
	lo, hi := t.clientStart[j], t.clientStart[j+1]
	tail := append([]int(nil), t.clientReqs[hi:]...)
	t.clientReqs = append(append(t.clientReqs[:lo], reqs...), tail...)
	delta := int32(len(reqs)) - (hi - lo)
	for k := j + 1; k < len(t.clientStart); k++ {
		t.clientStart[k] += delta
	}
}

// SetDemand sets the request count of the k-th client of node j,
// reporting whether the value actually changed. A changed value
// advances the node's demand generation (see DemandGen); setting the
// current value is a no-op and leaves caches warm. It panics on a
// negative count or an out-of-range client index, mirroring the
// builder's contract for driver code.
func (t *Tree) SetDemand(j, k, reqs int) bool {
	if reqs < 0 {
		panic(fmt.Sprintf("tree: SetDemand with negative requests %d", reqs))
	}
	cl := t.Clients(j)
	if k < 0 || k >= len(cl) {
		panic(fmt.Sprintf("tree: SetDemand(%d, %d): node has %d clients", j, k, len(cl)))
	}
	if cl[k] == reqs {
		return false
	}
	cl[k] = reqs
	t.touch(j)
	return true
}

// DemandGen returns the demand generation of node j: a value that
// strictly increases every time one of j's client demands changes.
// Solvers cache it per node to detect which subtrees went stale since
// their last solve. Generations are local to one tree (clones restart
// the comparison base by copying both stamps and clock).
func (t *Tree) DemandGen(j int) uint64 { return t.demandGen[j] }

// touch stamps node j with a fresh demand generation.
func (t *Tree) touch(j int) {
	t.clock++
	t.demandGen[j] = t.clock
}

// PostOrder returns a traversal in which every node appears after all of
// its children. The caller must not modify the returned slice.
func (t *Tree) PostOrder() []int { return t.post }

// Depth returns the depth of node j (root = 0).
func (t *Tree) Depth(j int) int { return t.depth[j] }

// Height returns the maximum node depth (equivalently, the height of
// the root: the length of the longest root-to-leaf path).
func (t *Tree) Height() int { return t.Waves() - 1 }

// Waves returns the number of height levels of the tree. Wave 0 is the
// leaves; the last wave contains exactly the root (the root's height
// strictly exceeds every other node's, since every non-root node lies
// inside one of its children's subtrees).
func (t *Tree) Waves() int { return len(t.waveStart) - 1 }

// Wave returns the nodes of height h in ascending id order. Every
// child of a wave-h node lies in a wave strictly below h, so the
// bottom-up DP sweeps may process any one wave in parallel once the
// previous waves are complete. The caller must not modify the returned
// slice.
func (t *Tree) Wave(h int) []int {
	return t.waveNodes[t.waveStart[h]:t.waveStart[h+1]]
}

// TotalRequests returns the total number of requests issued by all
// clients in the tree.
func (t *Tree) TotalRequests() int {
	s := 0
	for _, r := range t.clientReqs {
		s += r
	}
	return s
}

// ClientCount returns the total number of clients in the tree.
func (t *Tree) ClientCount() int { return len(t.clientReqs) }

// MaxClientSum returns the largest per-node client demand. Any solution
// must serve all clients of a node at a single ancestor server, so an
// instance is infeasible with capacity W whenever MaxClientSum() > W.
func (t *Tree) MaxClientSum() int {
	m := 0
	for j := 0; j < t.N(); j++ {
		if s := t.ClientSum(j); s > m {
			m = s
		}
	}
	return m
}

// SubtreeNodes returns the ids of the internal nodes in the subtree rooted
// at j, excluding j itself (the paper's subtree_j restricted to N).
func (t *Tree) SubtreeNodes(j int) []int {
	var out []int
	var stack []int
	stack = append(stack, t.Children(j)...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		stack = append(stack, t.Children(n)...)
	}
	return out
}

// IsAncestor reports whether a is a strict ancestor of d.
func (t *Tree) IsAncestor(a, d int) bool {
	for p := t.parent[d]; p >= 0; p = t.parent[p] {
		if p == a {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{
		parent:      append([]int(nil), t.parent...),
		childStart:  append([]int32(nil), t.childStart...),
		childIDs:    append([]int(nil), t.childIDs...),
		clientStart: append([]int32(nil), t.clientStart...),
		clientReqs:  append([]int(nil), t.clientReqs...),
		post:        append([]int(nil), t.post...),
		depth:       append([]int(nil), t.depth...),
		waveStart:   append([]int32(nil), t.waveStart...),
		waveNodes:   append([]int(nil), t.waveNodes...),
		clock:       t.clock,
		demandGen:   append([]uint64(nil), t.demandGen...),
	}
}

// clientLists materialises the per-node client request lists as a
// [][]int view (nil for client-less nodes, matching the historical
// in-memory layout). The non-nil entries alias the shared client array.
// Used by the JSON encoders, where the per-node allocation is fine.
func (t *Tree) clientLists() [][]int {
	out := make([][]int, t.N())
	for j := range out {
		if cl := t.Clients(j); len(cl) > 0 {
			out[j] = cl
		}
	}
	return out
}

// Stats summarises a tree for reports and logs.
type Stats struct {
	Nodes         int
	Clients       int
	TotalRequests int
	Height        int
	Leaves        int // internal nodes without internal children
	MaxClientSum  int
}

// Summary returns basic statistics about the tree.
func (t *Tree) Summary() Stats {
	s := Stats{
		Nodes:         t.N(),
		Clients:       t.ClientCount(),
		TotalRequests: t.TotalRequests(),
		Height:        t.Height(),
		MaxClientSum:  t.MaxClientSum(),
		Leaves:        len(t.Wave(0)),
	}
	return s
}

// String implements fmt.Stringer with a one-line summary.
func (t *Tree) String() string {
	s := t.Summary()
	return fmt.Sprintf("tree{nodes=%d clients=%d requests=%d height=%d}",
		s.Nodes, s.Clients, s.TotalRequests, s.Height)
}

// FromParents builds a tree from a parent vector (parents[0] must be -1,
// every other entry must point to a lower-numbered... any valid node) and
// per-node client request lists. clients may be shorter than parents; the
// missing tail is treated as empty.
func FromParents(parents []int, clients [][]int) (*Tree, error) {
	n := len(parents)
	if n == 0 {
		return nil, errors.New("tree: empty parent vector")
	}
	if parents[0] != -1 {
		return nil, fmt.Errorf("tree: node 0 must be the root (parent -1), got %d", parents[0])
	}
	if len(clients) > n {
		return nil, fmt.Errorf("tree: %d client lists for %d nodes", len(clients), n)
	}
	b := newRawBuilder(n)
	for j := 1; j < n; j++ {
		p := parents[j]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("tree: node %d has out-of-range parent %d", j, p)
		}
		if p == j {
			return nil, fmt.Errorf("tree: node %d is its own parent", j)
		}
		b.parent[j] = p
	}
	for j := range clients {
		sum := 0
		for _, r := range clients[j] {
			if r < 0 {
				return nil, fmt.Errorf("tree: node %d has a client with negative requests %d", j, r)
			}
			// The solvers keep per-node demand in int32 DP tables;
			// reject sums whose cast would silently wrap (and keep the
			// running sum itself from overflowing here).
			if r > math.MaxInt32 || sum+r > math.MaxInt32 {
				return nil, fmt.Errorf("tree: node %d carries more than %d requests", j, math.MaxInt32)
			}
			sum += r
		}
		b.clients[j] = append([]int(nil), clients[j]...)
	}
	return b.finish()
}
