package tree

import (
	"errors"
	"fmt"
	"sort"
)

// Builder constructs trees incrementally. The root (node 0) exists from
// the start; every other node is added under an existing parent, which
// makes cycles impossible by construction.
type Builder struct {
	parent  []int
	clients [][]int
}

// NewBuilder returns a builder holding only the root node.
func NewBuilder() *Builder {
	return &Builder{parent: []int{-1}, clients: [][]int{nil}}
}

// Root returns the id of the root node.
func (b *Builder) Root() int { return 0 }

// N returns the number of nodes added so far.
func (b *Builder) N() int { return len(b.parent) }

// AddNode adds an internal node under parent and returns its id. It
// panics if parent does not exist; builders are driver code where an
// invalid parent is a programming error.
func (b *Builder) AddNode(parent int) int {
	if parent < 0 || parent >= len(b.parent) {
		panic(fmt.Sprintf("tree: AddNode under unknown parent %d", parent))
	}
	id := len(b.parent)
	b.parent = append(b.parent, parent)
	b.clients = append(b.clients, nil)
	return id
}

// AddClient attaches a client issuing req requests to node j.
func (b *Builder) AddClient(j, req int) {
	if j < 0 || j >= len(b.parent) {
		panic(fmt.Sprintf("tree: AddClient under unknown node %d", j))
	}
	if req < 0 {
		panic(fmt.Sprintf("tree: AddClient with negative requests %d", req))
	}
	b.clients[j] = append(b.clients[j], req)
}

// Build finalises the tree. The builder remains usable (Build copies).
func (b *Builder) Build() (*Tree, error) {
	raw := newRawBuilder(len(b.parent))
	copy(raw.parent, b.parent)
	for j := range b.clients {
		raw.clients[j] = append([]int(nil), b.clients[j]...)
	}
	return raw.finish()
}

// MustBuild is Build for tests and examples where failure is impossible.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// rawBuilder assembles the derived structures (children lists, post
// order, depths) shared by Builder.Build and FromParents.
type rawBuilder struct {
	parent  []int
	clients [][]int
}

func newRawBuilder(n int) *rawBuilder {
	rb := &rawBuilder{parent: make([]int, n), clients: make([][]int, n)}
	rb.parent[0] = -1
	return rb
}

func (rb *rawBuilder) finish() (*Tree, error) {
	n := len(rb.parent)
	t := &Tree{
		parent:    rb.parent,
		children:  make([][]int, n),
		clients:   rb.clients,
		depth:     make([]int, n),
		demandGen: make([]uint64, n),
	}
	for j := 1; j < n; j++ {
		p := t.parent[j]
		t.children[p] = append(t.children[p], j)
	}
	for j := range t.children {
		sort.Ints(t.children[j])
	}
	// Iterative DFS from the root assigns depths and detects
	// unreachable nodes (which would indicate a cycle among non-root
	// nodes in a FromParents input).
	t.post = make([]int, 0, n)
	visited := make([]bool, n)
	type frame struct{ node, next int }
	stack := []frame{{0, 0}}
	visited[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.children[f.node]) {
			c := t.children[f.node][f.next]
			f.next++
			if visited[c] {
				return nil, fmt.Errorf("tree: node %d reached twice; parent vector has a cycle", c)
			}
			visited[c] = true
			t.depth[c] = t.depth[f.node] + 1
			stack = append(stack, frame{c, 0})
			continue
		}
		t.post = append(t.post, f.node)
		stack = stack[:len(stack)-1]
	}
	if len(t.post) != n {
		return nil, errors.New("tree: parent vector contains nodes unreachable from the root")
	}
	return t, nil
}
